
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/h3_hash.cc" "src/CMakeFiles/emv.dir/common/h3_hash.cc.o" "gcc" "src/CMakeFiles/emv.dir/common/h3_hash.cc.o.d"
  "/root/repo/src/common/intervals.cc" "src/CMakeFiles/emv.dir/common/intervals.cc.o" "gcc" "src/CMakeFiles/emv.dir/common/intervals.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/emv.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/emv.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/emv.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/emv.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/emv.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/emv.dir/common/stats.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/emv.dir/common/types.cc.o" "gcc" "src/CMakeFiles/emv.dir/common/types.cc.o.d"
  "/root/repo/src/core/linear_model.cc" "src/CMakeFiles/emv.dir/core/linear_model.cc.o" "gcc" "src/CMakeFiles/emv.dir/core/linear_model.cc.o.d"
  "/root/repo/src/core/mmu.cc" "src/CMakeFiles/emv.dir/core/mmu.cc.o" "gcc" "src/CMakeFiles/emv.dir/core/mmu.cc.o.d"
  "/root/repo/src/core/mode.cc" "src/CMakeFiles/emv.dir/core/mode.cc.o" "gcc" "src/CMakeFiles/emv.dir/core/mode.cc.o.d"
  "/root/repo/src/mem/buddy_allocator.cc" "src/CMakeFiles/emv.dir/mem/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/emv.dir/mem/buddy_allocator.cc.o.d"
  "/root/repo/src/mem/fragmenter.cc" "src/CMakeFiles/emv.dir/mem/fragmenter.cc.o" "gcc" "src/CMakeFiles/emv.dir/mem/fragmenter.cc.o.d"
  "/root/repo/src/mem/phys_memory.cc" "src/CMakeFiles/emv.dir/mem/phys_memory.cc.o" "gcc" "src/CMakeFiles/emv.dir/mem/phys_memory.cc.o.d"
  "/root/repo/src/os/balloon.cc" "src/CMakeFiles/emv.dir/os/balloon.cc.o" "gcc" "src/CMakeFiles/emv.dir/os/balloon.cc.o.d"
  "/root/repo/src/os/compaction.cc" "src/CMakeFiles/emv.dir/os/compaction.cc.o" "gcc" "src/CMakeFiles/emv.dir/os/compaction.cc.o.d"
  "/root/repo/src/os/guest_os.cc" "src/CMakeFiles/emv.dir/os/guest_os.cc.o" "gcc" "src/CMakeFiles/emv.dir/os/guest_os.cc.o.d"
  "/root/repo/src/os/hotplug.cc" "src/CMakeFiles/emv.dir/os/hotplug.cc.o" "gcc" "src/CMakeFiles/emv.dir/os/hotplug.cc.o.d"
  "/root/repo/src/os/process.cc" "src/CMakeFiles/emv.dir/os/process.cc.o" "gcc" "src/CMakeFiles/emv.dir/os/process.cc.o.d"
  "/root/repo/src/paging/nested_walker.cc" "src/CMakeFiles/emv.dir/paging/nested_walker.cc.o" "gcc" "src/CMakeFiles/emv.dir/paging/nested_walker.cc.o.d"
  "/root/repo/src/paging/page_table.cc" "src/CMakeFiles/emv.dir/paging/page_table.cc.o" "gcc" "src/CMakeFiles/emv.dir/paging/page_table.cc.o.d"
  "/root/repo/src/paging/walker.cc" "src/CMakeFiles/emv.dir/paging/walker.cc.o" "gcc" "src/CMakeFiles/emv.dir/paging/walker.cc.o.d"
  "/root/repo/src/segment/direct_segment.cc" "src/CMakeFiles/emv.dir/segment/direct_segment.cc.o" "gcc" "src/CMakeFiles/emv.dir/segment/direct_segment.cc.o.d"
  "/root/repo/src/segment/escape_filter.cc" "src/CMakeFiles/emv.dir/segment/escape_filter.cc.o" "gcc" "src/CMakeFiles/emv.dir/segment/escape_filter.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/emv.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/emv.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/emv.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/emv.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/emv.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/emv.dir/sim/report.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/CMakeFiles/emv.dir/tlb/tlb.cc.o" "gcc" "src/CMakeFiles/emv.dir/tlb/tlb.cc.o.d"
  "/root/repo/src/tlb/tlb_hierarchy.cc" "src/CMakeFiles/emv.dir/tlb/tlb_hierarchy.cc.o" "gcc" "src/CMakeFiles/emv.dir/tlb/tlb_hierarchy.cc.o.d"
  "/root/repo/src/tlb/walk_cache.cc" "src/CMakeFiles/emv.dir/tlb/walk_cache.cc.o" "gcc" "src/CMakeFiles/emv.dir/tlb/walk_cache.cc.o.d"
  "/root/repo/src/vmm/backing_map.cc" "src/CMakeFiles/emv.dir/vmm/backing_map.cc.o" "gcc" "src/CMakeFiles/emv.dir/vmm/backing_map.cc.o.d"
  "/root/repo/src/vmm/live_migration.cc" "src/CMakeFiles/emv.dir/vmm/live_migration.cc.o" "gcc" "src/CMakeFiles/emv.dir/vmm/live_migration.cc.o.d"
  "/root/repo/src/vmm/memory_slots.cc" "src/CMakeFiles/emv.dir/vmm/memory_slots.cc.o" "gcc" "src/CMakeFiles/emv.dir/vmm/memory_slots.cc.o.d"
  "/root/repo/src/vmm/page_sharing.cc" "src/CMakeFiles/emv.dir/vmm/page_sharing.cc.o" "gcc" "src/CMakeFiles/emv.dir/vmm/page_sharing.cc.o.d"
  "/root/repo/src/vmm/shadow_pager.cc" "src/CMakeFiles/emv.dir/vmm/shadow_pager.cc.o" "gcc" "src/CMakeFiles/emv.dir/vmm/shadow_pager.cc.o.d"
  "/root/repo/src/vmm/vmm.cc" "src/CMakeFiles/emv.dir/vmm/vmm.cc.o" "gcc" "src/CMakeFiles/emv.dir/vmm/vmm.cc.o.d"
  "/root/repo/src/workload/graph500.cc" "src/CMakeFiles/emv.dir/workload/graph500.cc.o" "gcc" "src/CMakeFiles/emv.dir/workload/graph500.cc.o.d"
  "/root/repo/src/workload/gups.cc" "src/CMakeFiles/emv.dir/workload/gups.cc.o" "gcc" "src/CMakeFiles/emv.dir/workload/gups.cc.o.d"
  "/root/repo/src/workload/memcached.cc" "src/CMakeFiles/emv.dir/workload/memcached.cc.o" "gcc" "src/CMakeFiles/emv.dir/workload/memcached.cc.o.d"
  "/root/repo/src/workload/npb_cg.cc" "src/CMakeFiles/emv.dir/workload/npb_cg.cc.o" "gcc" "src/CMakeFiles/emv.dir/workload/npb_cg.cc.o.d"
  "/root/repo/src/workload/parsec.cc" "src/CMakeFiles/emv.dir/workload/parsec.cc.o" "gcc" "src/CMakeFiles/emv.dir/workload/parsec.cc.o.d"
  "/root/repo/src/workload/spec.cc" "src/CMakeFiles/emv.dir/workload/spec.cc.o" "gcc" "src/CMakeFiles/emv.dir/workload/spec.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/emv.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/emv.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
