# Empty compiler generated dependencies file for emv.
# This may be replaced when dependencies are built.
