file(REMOVE_RECURSE
  "libemv.a"
)
