file(REMOVE_RECURSE
  "CMakeFiles/emvsim.dir/emvsim.cc.o"
  "CMakeFiles/emvsim.dir/emvsim.cc.o.d"
  "emvsim"
  "emvsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emvsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
