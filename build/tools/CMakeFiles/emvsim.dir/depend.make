# Empty dependencies file for emvsim.
# This may be replaced when dependencies are built.
