
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/os/test_balloon.cc" "tests/CMakeFiles/test_os.dir/os/test_balloon.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/test_balloon.cc.o.d"
  "/root/repo/tests/os/test_compaction.cc" "tests/CMakeFiles/test_os.dir/os/test_compaction.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/test_compaction.cc.o.d"
  "/root/repo/tests/os/test_guest_os.cc" "tests/CMakeFiles/test_os.dir/os/test_guest_os.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/test_guest_os.cc.o.d"
  "/root/repo/tests/os/test_kernel_pool.cc" "tests/CMakeFiles/test_os.dir/os/test_kernel_pool.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/test_kernel_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
