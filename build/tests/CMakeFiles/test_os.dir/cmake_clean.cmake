file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/os/test_balloon.cc.o"
  "CMakeFiles/test_os.dir/os/test_balloon.cc.o.d"
  "CMakeFiles/test_os.dir/os/test_compaction.cc.o"
  "CMakeFiles/test_os.dir/os/test_compaction.cc.o.d"
  "CMakeFiles/test_os.dir/os/test_guest_os.cc.o"
  "CMakeFiles/test_os.dir/os/test_guest_os.cc.o.d"
  "CMakeFiles/test_os.dir/os/test_kernel_pool.cc.o"
  "CMakeFiles/test_os.dir/os/test_kernel_pool.cc.o.d"
  "test_os"
  "test_os.pdb"
  "test_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
