
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vmm/test_backing_map.cc" "tests/CMakeFiles/test_vmm.dir/vmm/test_backing_map.cc.o" "gcc" "tests/CMakeFiles/test_vmm.dir/vmm/test_backing_map.cc.o.d"
  "/root/repo/tests/vmm/test_live_migration.cc" "tests/CMakeFiles/test_vmm.dir/vmm/test_live_migration.cc.o" "gcc" "tests/CMakeFiles/test_vmm.dir/vmm/test_live_migration.cc.o.d"
  "/root/repo/tests/vmm/test_memory_slots.cc" "tests/CMakeFiles/test_vmm.dir/vmm/test_memory_slots.cc.o" "gcc" "tests/CMakeFiles/test_vmm.dir/vmm/test_memory_slots.cc.o.d"
  "/root/repo/tests/vmm/test_page_sharing.cc" "tests/CMakeFiles/test_vmm.dir/vmm/test_page_sharing.cc.o" "gcc" "tests/CMakeFiles/test_vmm.dir/vmm/test_page_sharing.cc.o.d"
  "/root/repo/tests/vmm/test_shadow_pager.cc" "tests/CMakeFiles/test_vmm.dir/vmm/test_shadow_pager.cc.o" "gcc" "tests/CMakeFiles/test_vmm.dir/vmm/test_shadow_pager.cc.o.d"
  "/root/repo/tests/vmm/test_vmm.cc" "tests/CMakeFiles/test_vmm.dir/vmm/test_vmm.cc.o" "gcc" "tests/CMakeFiles/test_vmm.dir/vmm/test_vmm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
