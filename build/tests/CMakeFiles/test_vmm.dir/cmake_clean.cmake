file(REMOVE_RECURSE
  "CMakeFiles/test_vmm.dir/vmm/test_backing_map.cc.o"
  "CMakeFiles/test_vmm.dir/vmm/test_backing_map.cc.o.d"
  "CMakeFiles/test_vmm.dir/vmm/test_live_migration.cc.o"
  "CMakeFiles/test_vmm.dir/vmm/test_live_migration.cc.o.d"
  "CMakeFiles/test_vmm.dir/vmm/test_memory_slots.cc.o"
  "CMakeFiles/test_vmm.dir/vmm/test_memory_slots.cc.o.d"
  "CMakeFiles/test_vmm.dir/vmm/test_page_sharing.cc.o"
  "CMakeFiles/test_vmm.dir/vmm/test_page_sharing.cc.o.d"
  "CMakeFiles/test_vmm.dir/vmm/test_shadow_pager.cc.o"
  "CMakeFiles/test_vmm.dir/vmm/test_shadow_pager.cc.o.d"
  "CMakeFiles/test_vmm.dir/vmm/test_vmm.cc.o"
  "CMakeFiles/test_vmm.dir/vmm/test_vmm.cc.o.d"
  "test_vmm"
  "test_vmm.pdb"
  "test_vmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
