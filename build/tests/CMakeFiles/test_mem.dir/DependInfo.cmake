
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/test_buddy_allocator.cc" "tests/CMakeFiles/test_mem.dir/mem/test_buddy_allocator.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_buddy_allocator.cc.o.d"
  "/root/repo/tests/mem/test_fragmenter.cc" "tests/CMakeFiles/test_mem.dir/mem/test_fragmenter.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_fragmenter.cc.o.d"
  "/root/repo/tests/mem/test_phys_memory.cc" "tests/CMakeFiles/test_mem.dir/mem/test_phys_memory.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_phys_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
