
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_experiment.cc" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cc.o.d"
  "/root/repo/tests/sim/test_integration.cc" "tests/CMakeFiles/test_sim.dir/sim/test_integration.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_integration.cc.o.d"
  "/root/repo/tests/sim/test_machine.cc" "tests/CMakeFiles/test_sim.dir/sim/test_machine.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_machine.cc.o.d"
  "/root/repo/tests/sim/test_machine_pagesizes.cc" "tests/CMakeFiles/test_sim.dir/sim/test_machine_pagesizes.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_machine_pagesizes.cc.o.d"
  "/root/repo/tests/sim/test_report.cc" "tests/CMakeFiles/test_sim.dir/sim/test_report.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
