file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_experiment.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_experiment.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_integration.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_integration.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_machine.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_machine.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_machine_pagesizes.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_machine_pagesizes.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_report.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_report.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
