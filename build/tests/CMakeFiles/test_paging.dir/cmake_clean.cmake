file(REMOVE_RECURSE
  "CMakeFiles/test_paging.dir/paging/test_nested_walker.cc.o"
  "CMakeFiles/test_paging.dir/paging/test_nested_walker.cc.o.d"
  "CMakeFiles/test_paging.dir/paging/test_page_table.cc.o"
  "CMakeFiles/test_paging.dir/paging/test_page_table.cc.o.d"
  "CMakeFiles/test_paging.dir/paging/test_pte.cc.o"
  "CMakeFiles/test_paging.dir/paging/test_pte.cc.o.d"
  "CMakeFiles/test_paging.dir/paging/test_walk_properties.cc.o"
  "CMakeFiles/test_paging.dir/paging/test_walk_properties.cc.o.d"
  "CMakeFiles/test_paging.dir/paging/test_walker.cc.o"
  "CMakeFiles/test_paging.dir/paging/test_walker.cc.o.d"
  "test_paging"
  "test_paging.pdb"
  "test_paging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
