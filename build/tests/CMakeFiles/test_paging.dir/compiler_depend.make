# Empty compiler generated dependencies file for test_paging.
# This may be replaced when dependencies are built.
