
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/paging/test_nested_walker.cc" "tests/CMakeFiles/test_paging.dir/paging/test_nested_walker.cc.o" "gcc" "tests/CMakeFiles/test_paging.dir/paging/test_nested_walker.cc.o.d"
  "/root/repo/tests/paging/test_page_table.cc" "tests/CMakeFiles/test_paging.dir/paging/test_page_table.cc.o" "gcc" "tests/CMakeFiles/test_paging.dir/paging/test_page_table.cc.o.d"
  "/root/repo/tests/paging/test_pte.cc" "tests/CMakeFiles/test_paging.dir/paging/test_pte.cc.o" "gcc" "tests/CMakeFiles/test_paging.dir/paging/test_pte.cc.o.d"
  "/root/repo/tests/paging/test_walk_properties.cc" "tests/CMakeFiles/test_paging.dir/paging/test_walk_properties.cc.o" "gcc" "tests/CMakeFiles/test_paging.dir/paging/test_walk_properties.cc.o.d"
  "/root/repo/tests/paging/test_walker.cc" "tests/CMakeFiles/test_paging.dir/paging/test_walker.cc.o" "gcc" "tests/CMakeFiles/test_paging.dir/paging/test_walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
