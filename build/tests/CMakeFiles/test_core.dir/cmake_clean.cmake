file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_context_switch.cc.o"
  "CMakeFiles/test_core.dir/core/test_context_switch.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_guard_pages.cc.o"
  "CMakeFiles/test_core.dir/core/test_guard_pages.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_linear_model.cc.o"
  "CMakeFiles/test_core.dir/core/test_linear_model.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_mmu.cc.o"
  "CMakeFiles/test_core.dir/core/test_mmu.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_mode.cc.o"
  "CMakeFiles/test_core.dir/core/test_mode.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
