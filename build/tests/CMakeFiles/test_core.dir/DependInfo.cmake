
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_context_switch.cc" "tests/CMakeFiles/test_core.dir/core/test_context_switch.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_context_switch.cc.o.d"
  "/root/repo/tests/core/test_guard_pages.cc" "tests/CMakeFiles/test_core.dir/core/test_guard_pages.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_guard_pages.cc.o.d"
  "/root/repo/tests/core/test_linear_model.cc" "tests/CMakeFiles/test_core.dir/core/test_linear_model.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_linear_model.cc.o.d"
  "/root/repo/tests/core/test_mmu.cc" "tests/CMakeFiles/test_core.dir/core/test_mmu.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mmu.cc.o.d"
  "/root/repo/tests/core/test_mode.cc" "tests/CMakeFiles/test_core.dir/core/test_mode.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
