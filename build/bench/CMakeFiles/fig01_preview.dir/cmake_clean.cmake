file(REMOVE_RECURSE
  "CMakeFiles/fig01_preview.dir/fig01_preview.cc.o"
  "CMakeFiles/fig01_preview.dir/fig01_preview.cc.o.d"
  "fig01_preview"
  "fig01_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
