# Empty dependencies file for fig01_preview.
# This may be replaced when dependencies are built.
