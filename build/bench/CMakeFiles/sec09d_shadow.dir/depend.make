# Empty dependencies file for sec09d_shadow.
# This may be replaced when dependencies are built.
