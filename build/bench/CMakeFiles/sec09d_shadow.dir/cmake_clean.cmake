file(REMOVE_RECURSE
  "CMakeFiles/sec09d_shadow.dir/sec09d_shadow.cc.o"
  "CMakeFiles/sec09d_shadow.dir/sec09d_shadow.cc.o.d"
  "sec09d_shadow"
  "sec09d_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec09d_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
