file(REMOVE_RECURSE
  "CMakeFiles/tab01_categories.dir/tab01_categories.cc.o"
  "CMakeFiles/tab01_categories.dir/tab01_categories.cc.o.d"
  "tab01_categories"
  "tab01_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
