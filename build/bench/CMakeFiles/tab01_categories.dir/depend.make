# Empty dependencies file for tab01_categories.
# This may be replaced when dependencies are built.
