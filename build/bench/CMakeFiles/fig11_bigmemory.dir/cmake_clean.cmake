file(REMOVE_RECURSE
  "CMakeFiles/fig11_bigmemory.dir/fig11_bigmemory.cc.o"
  "CMakeFiles/fig11_bigmemory.dir/fig11_bigmemory.cc.o.d"
  "fig11_bigmemory"
  "fig11_bigmemory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bigmemory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
