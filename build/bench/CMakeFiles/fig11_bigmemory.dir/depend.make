# Empty dependencies file for fig11_bigmemory.
# This may be replaced when dependencies are built.
