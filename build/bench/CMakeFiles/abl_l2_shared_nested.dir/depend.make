# Empty dependencies file for abl_l2_shared_nested.
# This may be replaced when dependencies are built.
