file(REMOVE_RECURSE
  "CMakeFiles/abl_l2_shared_nested.dir/abl_l2_shared_nested.cc.o"
  "CMakeFiles/abl_l2_shared_nested.dir/abl_l2_shared_nested.cc.o.d"
  "abl_l2_shared_nested"
  "abl_l2_shared_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_l2_shared_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
