# Empty compiler generated dependencies file for tab04_models.
# This may be replaced when dependencies are built.
