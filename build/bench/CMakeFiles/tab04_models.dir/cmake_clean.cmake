file(REMOVE_RECURSE
  "CMakeFiles/tab04_models.dir/tab04_models.cc.o"
  "CMakeFiles/tab04_models.dir/tab04_models.cc.o.d"
  "tab04_models"
  "tab04_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
