# Empty dependencies file for fig12_compute.
# This may be replaced when dependencies are built.
