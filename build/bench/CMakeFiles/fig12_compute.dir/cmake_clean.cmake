file(REMOVE_RECURSE
  "CMakeFiles/fig12_compute.dir/fig12_compute.cc.o"
  "CMakeFiles/fig12_compute.dir/fig12_compute.cc.o.d"
  "fig12_compute"
  "fig12_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
