file(REMOVE_RECURSE
  "CMakeFiles/sec09a_breakdown.dir/sec09a_breakdown.cc.o"
  "CMakeFiles/sec09a_breakdown.dir/sec09a_breakdown.cc.o.d"
  "sec09a_breakdown"
  "sec09a_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec09a_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
