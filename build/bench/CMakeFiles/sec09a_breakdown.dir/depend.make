# Empty dependencies file for sec09a_breakdown.
# This may be replaced when dependencies are built.
