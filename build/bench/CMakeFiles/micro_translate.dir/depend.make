# Empty dependencies file for micro_translate.
# This may be replaced when dependencies are built.
