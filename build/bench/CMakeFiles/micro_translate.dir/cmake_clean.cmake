file(REMOVE_RECURSE
  "CMakeFiles/micro_translate.dir/micro_translate.cc.o"
  "CMakeFiles/micro_translate.dir/micro_translate.cc.o.d"
  "micro_translate"
  "micro_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
