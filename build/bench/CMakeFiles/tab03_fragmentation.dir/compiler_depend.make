# Empty compiler generated dependencies file for tab03_fragmentation.
# This may be replaced when dependencies are built.
