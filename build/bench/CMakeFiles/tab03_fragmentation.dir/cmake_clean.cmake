file(REMOVE_RECURSE
  "CMakeFiles/tab03_fragmentation.dir/tab03_fragmentation.cc.o"
  "CMakeFiles/tab03_fragmentation.dir/tab03_fragmentation.cc.o.d"
  "tab03_fragmentation"
  "tab03_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
