# Empty compiler generated dependencies file for sec09e_sharing.
# This may be replaced when dependencies are built.
