file(REMOVE_RECURSE
  "CMakeFiles/sec09e_sharing.dir/sec09e_sharing.cc.o"
  "CMakeFiles/sec09e_sharing.dir/sec09e_sharing.cc.o.d"
  "sec09e_sharing"
  "sec09e_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec09e_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
