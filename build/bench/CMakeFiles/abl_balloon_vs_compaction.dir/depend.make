# Empty dependencies file for abl_balloon_vs_compaction.
# This may be replaced when dependencies are built.
