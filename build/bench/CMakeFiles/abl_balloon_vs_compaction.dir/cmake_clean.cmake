file(REMOVE_RECURSE
  "CMakeFiles/abl_balloon_vs_compaction.dir/abl_balloon_vs_compaction.cc.o"
  "CMakeFiles/abl_balloon_vs_compaction.dir/abl_balloon_vs_compaction.cc.o.d"
  "abl_balloon_vs_compaction"
  "abl_balloon_vs_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_balloon_vs_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
