file(REMOVE_RECURSE
  "CMakeFiles/abl_walk_cache.dir/abl_walk_cache.cc.o"
  "CMakeFiles/abl_walk_cache.dir/abl_walk_cache.cc.o.d"
  "abl_walk_cache"
  "abl_walk_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_walk_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
