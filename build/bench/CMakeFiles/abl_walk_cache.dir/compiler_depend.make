# Empty compiler generated dependencies file for abl_walk_cache.
# This may be replaced when dependencies are built.
