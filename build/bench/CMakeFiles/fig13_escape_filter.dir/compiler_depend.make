# Empty compiler generated dependencies file for fig13_escape_filter.
# This may be replaced when dependencies are built.
