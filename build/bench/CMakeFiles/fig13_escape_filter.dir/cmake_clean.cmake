file(REMOVE_RECURSE
  "CMakeFiles/fig13_escape_filter.dir/fig13_escape_filter.cc.o"
  "CMakeFiles/fig13_escape_filter.dir/fig13_escape_filter.cc.o.d"
  "fig13_escape_filter"
  "fig13_escape_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_escape_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
