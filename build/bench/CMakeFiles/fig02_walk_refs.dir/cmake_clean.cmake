file(REMOVE_RECURSE
  "CMakeFiles/fig02_walk_refs.dir/fig02_walk_refs.cc.o"
  "CMakeFiles/fig02_walk_refs.dir/fig02_walk_refs.cc.o.d"
  "fig02_walk_refs"
  "fig02_walk_refs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_walk_refs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
