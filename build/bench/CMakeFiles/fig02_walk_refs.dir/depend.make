# Empty dependencies file for fig02_walk_refs.
# This may be replaced when dependencies are built.
