# Empty dependencies file for sec08_cost_breakdown.
# This may be replaced when dependencies are built.
