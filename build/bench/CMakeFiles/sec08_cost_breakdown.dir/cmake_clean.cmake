file(REMOVE_RECURSE
  "CMakeFiles/sec08_cost_breakdown.dir/sec08_cost_breakdown.cc.o"
  "CMakeFiles/sec08_cost_breakdown.dir/sec08_cost_breakdown.cc.o.d"
  "sec08_cost_breakdown"
  "sec08_cost_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec08_cost_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
