# Empty compiler generated dependencies file for tab02_properties.
# This may be replaced when dependencies are built.
