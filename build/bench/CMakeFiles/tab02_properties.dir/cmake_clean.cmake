file(REMOVE_RECURSE
  "CMakeFiles/tab02_properties.dir/tab02_properties.cc.o"
  "CMakeFiles/tab02_properties.dir/tab02_properties.cc.o.d"
  "tab02_properties"
  "tab02_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
