# Empty dependencies file for abl_filter_geometry.
# This may be replaced when dependencies are built.
