file(REMOVE_RECURSE
  "CMakeFiles/abl_filter_geometry.dir/abl_filter_geometry.cc.o"
  "CMakeFiles/abl_filter_geometry.dir/abl_filter_geometry.cc.o.d"
  "abl_filter_geometry"
  "abl_filter_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_filter_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
