# Empty compiler generated dependencies file for escape_filter_demo.
# This may be replaced when dependencies are built.
