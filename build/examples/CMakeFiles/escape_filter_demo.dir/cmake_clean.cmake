file(REMOVE_RECURSE
  "CMakeFiles/escape_filter_demo.dir/escape_filter_demo.cpp.o"
  "CMakeFiles/escape_filter_demo.dir/escape_filter_demo.cpp.o.d"
  "escape_filter_demo"
  "escape_filter_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_filter_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
