file(REMOVE_RECURSE
  "CMakeFiles/fragmentation_recovery.dir/fragmentation_recovery.cpp.o"
  "CMakeFiles/fragmentation_recovery.dir/fragmentation_recovery.cpp.o.d"
  "fragmentation_recovery"
  "fragmentation_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmentation_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
