# Empty compiler generated dependencies file for fragmentation_recovery.
# This may be replaced when dependencies are built.
