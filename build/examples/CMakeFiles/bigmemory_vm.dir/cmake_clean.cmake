file(REMOVE_RECURSE
  "CMakeFiles/bigmemory_vm.dir/bigmemory_vm.cpp.o"
  "CMakeFiles/bigmemory_vm.dir/bigmemory_vm.cpp.o.d"
  "bigmemory_vm"
  "bigmemory_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigmemory_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
