# Empty compiler generated dependencies file for bigmemory_vm.
# This may be replaced when dependencies are built.
