/**
 * @file
 * json_check — tiny validator for the observability outputs.
 *
 * Usage:
 *   json_check <stats.json> [trace.log]
 *   json_check <bench.json>
 *   json_check <fleet.json>
 *   json_check <metrics.jsonl>
 *   json_check <directory>
 *
 * A .json argument must parse as strict JSON and carry one of the
 * known schema tags, which selects the structural checks:
 *
 *   emv-stats-v1 — at least one named stat group with at least one
 *                  counter (the emvsim statsjson= contract);
 *   emv-bench-v1 — a non-empty title, a "cells" array (possibly
 *                  empty — a bench with no simulated cells still
 *                  reports) whose entries each name a workload, a
 *                  config, and a finite numeric overhead, and a
 *                  "throughput" object carrying ops/host_ns plus the
 *                  derived ops_per_sec / host_ns_per_op (the
 *                  BENCH_*.json contract from bench/bench_util.hh);
 *   emv-fleet-v1 — the emv_fleet shard report: a jobs count, a
 *                  non-empty "shards" array whose entries carry the
 *                  per-shard identity, status and retry bookkeeping,
 *                  and a "summary" rollup consistent with the shard
 *                  list.
 *
 * A .jsonl argument is an emv-metrics-v1 telemetry stream (emvsim
 * metrics=): every line must be a strict, duplicate-key-free JSON
 * object tagged emv-metrics-v1 with window indices increasing by one
 * (a resumed stream starts at its checkpointed index, not zero),
 * op_start chaining to the previous op_end, op_end > op_start,
 * non-negative deltas, and finite rate members — the
 * contract that lets emv_top and the fleet rollup trust the last
 * line of a live stream.
 *
 * All schemas additionally reject documents containing duplicate
 * object keys or non-finite numbers (strtod happily parses "1e999"
 * to +Inf; a validator must not wave that through).
 *
 * A directory argument scans for BENCH_*.json files and validates
 * every one (failing when none are found), so CI can gate on the
 * whole bench-output crop with a single invocation.  An optional
 * trailing trace-log argument must exist and be non-empty.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace {

namespace fs = std::filesystem;

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
isString(const emv::json::Value *v)
{
    return v && v->kind == emv::json::Value::Kind::String;
}

bool
isFiniteNumber(const emv::json::Value *v)
{
    return v && v->isNumber() && std::isfinite(v->number);
}

/**
 * Every number anywhere in the document must be finite.  On failure
 * @p where names the offending member ("shards[3].exit_code"-style)
 * for the error message.
 */
bool
allNumbersFinite(const emv::json::Value &v, const std::string &at,
                 std::string &where)
{
    switch (v.kind) {
      case emv::json::Value::Kind::Number:
        if (!std::isfinite(v.number)) {
            where = at.empty() ? "<root>" : at;
            return false;
        }
        return true;
      case emv::json::Value::Kind::Array:
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (!allNumbersFinite(v.array[i],
                                  at + "[" + std::to_string(i) + "]",
                                  where))
                return false;
        }
        return true;
      case emv::json::Value::Kind::Object:
        for (const auto &[name, member] : v.object) {
            if (!allNumbersFinite(member,
                                  at.empty() ? name : at + "." + name,
                                  where))
                return false;
        }
        return true;
      default:
        return true;
    }
}

/** emv-stats-v1: named groups, at least one counter overall. */
int
checkStats(const std::string &path, const emv::json::Value &root)
{
    const emv::json::Value *groups = root.find("groups");
    if (!groups || !groups->isArray() || groups->array.empty()) {
        std::fprintf(stderr, "json_check: %s: no stat groups\n",
                     path.c_str());
        return 1;
    }
    std::size_t counters = 0;
    for (const auto &group : groups->array) {
        const emv::json::Value *name = group.find("name");
        if (!isString(name) || name->string.empty()) {
            std::fprintf(stderr, "json_check: %s: group without a "
                         "name\n", path.c_str());
            return 1;
        }
        if (const emv::json::Value *c = group.find("counters"))
            counters += c->object.size();
    }
    if (counters == 0) {
        std::fprintf(stderr, "json_check: %s: no counters in any "
                     "group\n", path.c_str());
        return 1;
    }
    std::printf("json_check: %s ok (%zu groups, %zu counters)\n",
                path.c_str(), groups->array.size(), counters);
    return 0;
}

/** emv-bench-v1: titled cells + mandatory throughput section. */
int
checkBench(const std::string &path, const emv::json::Value &root)
{
    const emv::json::Value *title = root.find("title");
    if (!isString(title) || title->string.empty()) {
        std::fprintf(stderr, "json_check: %s: missing title\n",
                     path.c_str());
        return 1;
    }
    // An empty cells array is legal (tab02 reports on a static
    // traits table, running no cells), but the member must exist —
    // and every bench must meter its wall-clock throughput.
    const emv::json::Value *cells = root.find("cells");
    if (!cells || !cells->isArray()) {
        std::fprintf(stderr, "json_check: %s: missing cells array\n",
                     path.c_str());
        return 1;
    }
    const emv::json::Value *tp = root.find("throughput");
    if (!tp || !tp->isObject()) {
        std::fprintf(stderr, "json_check: %s: missing throughput "
                     "section\n", path.c_str());
        return 1;
    }
    for (const char *field :
         {"ops", "host_ns", "ops_per_sec", "host_ns_per_op"}) {
        const emv::json::Value *v = tp->find(field);
        if (!isFiniteNumber(v) || v->number < 0) {
            std::fprintf(stderr, "json_check: %s: throughput lacks "
                         "a finite non-negative %s\n", path.c_str(),
                         field);
            return 1;
        }
    }
    for (std::size_t i = 0; i < cells->array.size(); ++i) {
        const emv::json::Value &cell = cells->array[i];
        if (!isString(cell.find("workload")) ||
            !isString(cell.find("config"))) {
            std::fprintf(stderr, "json_check: %s: cell %zu lacks "
                         "workload/config\n", path.c_str(), i);
            return 1;
        }
        const emv::json::Value *overhead = cell.find("overhead");
        if (!overhead || !overhead->isNumber() ||
            !std::isfinite(overhead->number)) {
            std::fprintf(stderr, "json_check: %s: cell %zu lacks a "
                         "finite overhead\n", path.c_str(), i);
            return 1;
        }
    }
    std::printf("json_check: %s ok (%zu cells, %.0f ops)\n",
                path.c_str(), cells->array.size(),
                tp->find("ops")->number);
    return 0;
}

/**
 * emv-metrics-v1 JSONL: one window record per line, each a strict
 * JSON object, with the cross-line chaining invariants that make the
 * stream tail-able (see the file comment).
 */
int
checkMetricsJsonl(const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "json_check: cannot read '%s'\n",
                     path.c_str());
        return 1;
    }

    std::size_t lineno = 0;
    std::size_t windows = 0;
    // A resumed run reopens the sink fresh but continues window
    // numbering from its checkpoint, so the first record sets the
    // baseline; every later one must advance by exactly one.
    double expect_window = -1;  // < 0: no previous window yet.
    double prev_op_end = -1;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        ++lineno;
        if (line.empty())
            continue;
        const auto fail = [&](const char *what) {
            std::fprintf(stderr, "json_check: %s:%zu: %s\n",
                         path.c_str(), lineno, what);
            return 1;
        };
        emv::json::Value rec;
        if (!emv::json::parse(line, rec,
                              /*rejectDuplicateKeys=*/true))
            return fail("not a strict JSON object line");
        std::string non_finite_at;
        if (!allNumbersFinite(rec, "", non_finite_at)) {
            std::fprintf(stderr, "json_check: %s:%zu: non-finite "
                         "number at %s\n", path.c_str(), lineno,
                         non_finite_at.c_str());
            return 1;
        }
        if (!rec.isObject())
            return fail("line is not an object");
        const emv::json::Value *schema = rec.find("schema");
        if (!isString(schema) ||
            schema->string != "emv-metrics-v1")
            return fail("missing emv-metrics-v1 schema tag");

        const emv::json::Value *window = rec.find("window");
        const emv::json::Value *op_start = rec.find("op_start");
        const emv::json::Value *op_end = rec.find("op_end");
        if (!isFiniteNumber(window) || !isFiniteNumber(op_start) ||
            !isFiniteNumber(op_end))
            return fail("missing window/op_start/op_end");
        if (expect_window >= 0 && window->number != expect_window)
            return fail("window index does not increase by one");
        if (window->number < 0)
            return fail("negative window index");
        if (prev_op_end >= 0 && op_start->number != prev_op_end)
            return fail("op_start does not chain to the previous "
                        "window's op_end");
        if (op_end->number <= op_start->number)
            return fail("op_end must exceed op_start");

        const emv::json::Value *rate = rec.find("rate");
        if (!rate || !rate->isObject() ||
            !isFiniteNumber(rate->find("ops_per_sec")) ||
            !isFiniteNumber(rate->find("host_ns_per_op")))
            return fail("missing rate.ops_per_sec / "
                        "rate.host_ns_per_op");

        const emv::json::Value *deltas = rec.find("deltas");
        if (!deltas || !deltas->isObject())
            return fail("missing deltas object");
        for (const auto &[name, v] : deltas->object) {
            if (!v.isNumber() || v.number < 0) {
                std::fprintf(stderr, "json_check: %s:%zu: negative "
                             "delta '%s'\n", path.c_str(), lineno,
                             name.c_str());
                return 1;
            }
        }

        // The latency block is optional (no latency source
        // attached), but when present its tails must be ordered.
        if (const emv::json::Value *lat = rec.find("latency")) {
            const emv::json::Value *p50 = lat->find("p50");
            const emv::json::Value *p99 = lat->find("p99");
            const emv::json::Value *p999 = lat->find("p999");
            if (!isFiniteNumber(p50) || !isFiniteNumber(p99) ||
                !isFiniteNumber(p999))
                return fail("latency block lacks p50/p99/p999");
            if (p50->number > p99->number ||
                p99->number > p999->number)
                return fail("latency percentiles are not "
                            "monotonic");
        }

        expect_window = window->number + 1;
        prev_op_end = op_end->number;
        ++windows;
    }
    if (windows == 0) {
        std::fprintf(stderr, "json_check: %s: no window records\n",
                     path.c_str());
        return 1;
    }
    std::printf("json_check: %s ok (%zu windows, %.0f ops)\n",
                path.c_str(), windows, prev_op_end);
    return 0;
}

/** emv-fleet-v1: jobs count, shard entries, consistent summary. */
int
checkFleet(const std::string &path, const emv::json::Value &root)
{
    const emv::json::Value *jobs = root.find("jobs");
    if (!isFiniteNumber(jobs) || jobs->number < 1) {
        std::fprintf(stderr, "json_check: %s: missing jobs count\n",
                     path.c_str());
        return 1;
    }
    const emv::json::Value *shards = root.find("shards");
    if (!shards || !shards->isArray() || shards->array.empty()) {
        std::fprintf(stderr, "json_check: %s: no shards\n",
                     path.c_str());
        return 1;
    }
    unsigned completed = 0, terminal = 0, quarantined = 0;
    unsigned retried = 0;
    for (std::size_t i = 0; i < shards->array.size(); ++i) {
        const emv::json::Value &shard = shards->array[i];
        if (!isString(shard.find("workload")) ||
            !isString(shard.find("config")) ||
            !isFiniteNumber(shard.find("id")) ||
            !isFiniteNumber(shard.find("seed"))) {
            std::fprintf(stderr, "json_check: %s: shard %zu lacks "
                         "id/workload/config/seed\n", path.c_str(),
                         i);
            return 1;
        }
        const emv::json::Value *status = shard.find("status");
        if (!isString(status) ||
            (status->string != "completed" &&
             status->string != "terminal" &&
             status->string != "quarantined" &&
             status->string != "pending" &&
             status->string != "running")) {
            std::fprintf(stderr, "json_check: %s: shard %zu has an "
                         "invalid status\n", path.c_str(), i);
            return 1;
        }
        for (const char *counter :
             {"attempts", "hangs", "resumes", "exit_code"}) {
            if (!isFiniteNumber(shard.find(counter))) {
                std::fprintf(stderr, "json_check: %s: shard %zu "
                             "lacks a numeric %s\n", path.c_str(), i,
                             counter);
                return 1;
            }
        }
        if (!isString(shard.find("stats_json")) ||
            !isString(shard.find("log"))) {
            std::fprintf(stderr, "json_check: %s: shard %zu lacks "
                         "stats_json/log paths\n", path.c_str(), i);
            return 1;
        }
        completed += status->string == "completed";
        terminal += status->string == "terminal";
        quarantined += status->string == "quarantined";
        retried += shard.find("attempts")->number > 1;
    }
    const emv::json::Value *summary = root.find("summary");
    if (!summary || !summary->isObject()) {
        std::fprintf(stderr, "json_check: %s: missing summary\n",
                     path.c_str());
        return 1;
    }
    const struct { const char *name; unsigned expect; } rollup[] = {
        {"total", static_cast<unsigned>(shards->array.size())},
        {"completed", completed},
        {"terminal", terminal},
        {"quarantined", quarantined},
        {"retried", retried},
    };
    for (const auto &field : rollup) {
        const emv::json::Value *v = summary->find(field.name);
        if (!isFiniteNumber(v)) {
            std::fprintf(stderr, "json_check: %s: summary lacks a "
                         "numeric %s\n", path.c_str(), field.name);
            return 1;
        }
        if (v->number != static_cast<double>(field.expect)) {
            std::fprintf(stderr, "json_check: %s: summary.%s is %g "
                         "but the shard list implies %u\n",
                         path.c_str(), field.name, v->number,
                         field.expect);
            return 1;
        }
    }
    std::printf("json_check: %s ok (%zu shards, %u completed)\n",
                path.c_str(), shards->array.size(), completed);
    return 0;
}

int
checkJsonFile(const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "json_check: cannot read '%s'\n",
                     path.c_str());
        return 1;
    }

    emv::json::Value root;
    if (!emv::json::parse(text, root,
                          /*rejectDuplicateKeys=*/true)) {
        // Distinguish "duplicate keys" (a lenient parse succeeds)
        // from outright malformed JSON in the diagnostic.
        emv::json::Value ignored;
        std::fprintf(stderr,
                     emv::json::parse(text, ignored)
                         ? "json_check: '%s' has duplicate object "
                           "keys\n"
                         : "json_check: '%s' is not well-formed "
                           "JSON\n",
                     path.c_str());
        return 1;
    }
    std::string non_finite_at;
    if (!allNumbersFinite(root, "", non_finite_at)) {
        std::fprintf(stderr, "json_check: %s: non-finite number at "
                     "%s\n", path.c_str(), non_finite_at.c_str());
        return 1;
    }
    if (!root.isObject()) {
        std::fprintf(stderr, "json_check: %s: top level is not an "
                     "object\n", path.c_str());
        return 1;
    }
    const emv::json::Value *schema = root.find("schema");
    if (!isString(schema)) {
        std::fprintf(stderr, "json_check: %s: missing schema tag\n",
                     path.c_str());
        return 1;
    }
    if (schema->string == "emv-stats-v1")
        return checkStats(path, root);
    if (schema->string == "emv-bench-v1")
        return checkBench(path, root);
    if (schema->string == "emv-fleet-v1")
        return checkFleet(path, root);
    std::fprintf(stderr, "json_check: %s: unknown schema \"%s\"\n",
                 path.c_str(), schema->string.c_str());
    return 1;
}

/** Validate every BENCH_*.json under @p dir; fail when none exist. */
int
checkBenchDir(const std::string &dir)
{
    std::vector<std::string> found;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (entry.is_regular_file() &&
            name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json") {
            found.push_back(entry.path().string());
        }
    }
    if (ec) {
        std::fprintf(stderr, "json_check: cannot scan '%s': %s\n",
                     dir.c_str(), ec.message().c_str());
        return 1;
    }
    if (found.empty()) {
        std::fprintf(stderr, "json_check: no BENCH_*.json under "
                     "'%s'\n", dir.c_str());
        return 1;
    }
    std::sort(found.begin(), found.end());
    int rc = 0;
    for (const auto &path : found)
        rc |= checkJsonFile(path);
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argc > 3) {
        std::fprintf(stderr, "usage: json_check <stats.json|"
                     "bench.json|fleet.json|metrics.jsonl|dir> "
                     "[trace.log]\n");
        return 2;
    }

    int rc;
    if (fs::is_directory(argv[1]))
        rc = checkBenchDir(argv[1]);
    else if (fs::path(argv[1]).extension() == ".jsonl")
        rc = checkMetricsJsonl(argv[1]);
    else
        rc = checkJsonFile(argv[1]);
    if (rc != 0)
        return rc;

    if (argc == 3) {
        std::string trace_text;
        if (!readFile(argv[2], trace_text) || trace_text.empty()) {
            std::fprintf(stderr, "json_check: trace file '%s' "
                         "missing or empty\n", argv[2]);
            return 1;
        }
    }
    return 0;
}
