/**
 * @file
 * json_check — tiny validator for the observability outputs.
 *
 * Usage:
 *   json_check <stats.json> [trace.log]
 *
 * Exits 0 when <stats.json> parses as strict JSON, carries the
 * emv-stats-v1 schema tag, and contains at least one group with at
 * least one counter.  When a trace file is given it must exist and
 * be non-empty.  Used by the CTest smoke test to pin down the
 * emvsim statsjson=/tracefile= contract.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hh"

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argc > 3) {
        std::fprintf(stderr,
                     "usage: json_check <stats.json> [trace.log]\n");
        return 2;
    }

    std::string text;
    if (!readFile(argv[1], text)) {
        std::fprintf(stderr, "json_check: cannot read '%s'\n",
                     argv[1]);
        return 1;
    }

    emv::json::Value root;
    if (!emv::json::parse(text, root)) {
        std::fprintf(stderr, "json_check: '%s' is not well-formed "
                     "JSON\n", argv[1]);
        return 1;
    }
    if (!root.isObject()) {
        std::fprintf(stderr, "json_check: top level is not an "
                     "object\n");
        return 1;
    }
    const emv::json::Value *schema = root.find("schema");
    if (!schema || schema->kind != emv::json::Value::Kind::String ||
        schema->string != "emv-stats-v1") {
        std::fprintf(stderr, "json_check: missing or wrong schema "
                     "tag (want \"emv-stats-v1\")\n");
        return 1;
    }
    const emv::json::Value *groups = root.find("groups");
    if (!groups || !groups->isArray() || groups->array.empty()) {
        std::fprintf(stderr, "json_check: no stat groups\n");
        return 1;
    }
    std::size_t counters = 0;
    for (const auto &group : groups->array) {
        const emv::json::Value *name = group.find("name");
        if (!name ||
            name->kind != emv::json::Value::Kind::String ||
            name->string.empty()) {
            std::fprintf(stderr, "json_check: group without a "
                         "name\n");
            return 1;
        }
        if (const emv::json::Value *c = group.find("counters"))
            counters += c->object.size();
    }
    if (counters == 0) {
        std::fprintf(stderr, "json_check: no counters in any "
                     "group\n");
        return 1;
    }

    if (argc == 3) {
        std::string trace_text;
        if (!readFile(argv[2], trace_text) || trace_text.empty()) {
            std::fprintf(stderr, "json_check: trace file '%s' "
                         "missing or empty\n", argv[2]);
            return 1;
        }
    }

    std::printf("json_check: ok (%zu groups, %zu counters)\n",
                groups->array.size(), counters);
    return 0;
}
