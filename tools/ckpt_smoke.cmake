# Checkpoint/resume smoke harness, run as a CTest via `cmake -P`.
#
#   cmake -DMODE=<killresume|exitcodes|fleet> -DEMVSIM=<path>
#         -DWORKDIR=<scratch dir> [-DEMV_FLEET=<path>]
#         [-DJSON_CHECK=<path>] -P ckpt_smoke.cmake
#
# MODE=killresume  a run SIGKILLed mid-measurement and resumed from
#                  its checkpoint must emit stats JSON byte-identical
#                  to the uninterrupted control run.
# MODE=exitcodes   pins the emvsim exit-code contract: 0 completed,
#                  1 usage error, 2 terminal fault, 3 interrupted.
# MODE=fleet       emv_fleet must recover a deterministically
#                  crashing shard by retrying from its checkpoint and
#                  produce a valid emv-fleet-v1 report.

foreach(var MODE EMVSIM WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "ckpt_smoke.cmake: ${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

# Small but representative run: memcached-style churn would also
# work, but gups keeps the smoke fast while still exercising remaps.
set(RUN_ARGS workload=gups config=DD scale=0.05
    ops=60000 warmup=20000 stats=0)

# Runs a command and checks its exit status.  EXPECT may be a number
# or "nonzero" (for the SIGKILL case, where CMake reports the signal
# as a non-numeric result string).
function(run_step name expect)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(expect STREQUAL "nonzero")
    if(rc STREQUAL "0")
      message(FATAL_ERROR "${name}: expected failure, got exit 0\n"
                          "stdout:\n${out}\nstderr:\n${err}")
    endif()
  elseif(NOT rc STREQUAL "${expect}")
    message(FATAL_ERROR "${name}: expected exit ${expect}, got "
                        "'${rc}'\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  message(STATUS "${name}: exit '${rc}' as expected")
endfunction()

if(MODE STREQUAL "killresume")
  # audit=1 keeps the differential auditor live across the resume
  # and makes both runs register identical stat groups (a restored
  # run always carries the checkpoint's audit counters).
  run_step(control 0
           ${EMVSIM} ${RUN_ARGS} audit=1
           statsjson=${WORKDIR}/control.json)

  # crashafter raises SIGKILL mid-measurement; the periodic
  # checkpoints written before the crash are the recovery point.
  run_step(crashed nonzero
           ${EMVSIM} ${RUN_ARGS} audit=1
           ckpt=${WORKDIR}/run.ckpt ckptevery=25000
           crashafter=50000)
  if(NOT EXISTS "${WORKDIR}/run.ckpt")
    message(FATAL_ERROR "no checkpoint survived the crash")
  endif()

  run_step(resumed 0
           ${EMVSIM} resume=${WORKDIR}/run.ckpt stats=0
           statsjson=${WORKDIR}/resumed.json)

  run_step(identical 0
           ${CMAKE_COMMAND} -E compare_files
           ${WORKDIR}/control.json ${WORKDIR}/resumed.json)

elseif(MODE STREQUAL "exitcodes")
  run_step(usage_error 1 ${EMVSIM} workload=gups bogus=1)

  run_step(terminal_fault 2
           ${EMVSIM} ${RUN_ARGS} faults=dram@30000 policy=failfast)

  run_step(interrupted 3
           ${EMVSIM} ${RUN_ARGS} ckpt=${WORKDIR}/stop.ckpt
           stopafter=40000)

  run_step(completed 0
           ${EMVSIM} resume=${WORKDIR}/stop.ckpt stats=0)

elseif(MODE STREQUAL "fleet")
  foreach(var EMV_FLEET JSON_CHECK)
    if(NOT DEFINED ${var})
      message(FATAL_ERROR "ckpt_smoke.cmake: ${var} is required "
                          "for MODE=fleet")
    endif()
  endforeach()

  # The shard's first attempt crashes deterministically at op 50000;
  # the supervisor must retry it, resume from the op-25000/50000
  # checkpoint, and finish with every shard completed.
  run_step(fleet 0
           ${EMV_FLEET} emvsim=${EMVSIM} outdir=${WORKDIR}/fleet
           workloads=gups configs=4K+4K seeds=42 jobs=1
           scale=0.05 ops=60000 warmup=20000 ckptevery=25000
           crashafter=50000 timeout=60 retries=2 backoffms=50)

  run_step(fleet_report_valid 0
           ${JSON_CHECK} ${WORKDIR}/fleet/fleet.json)

  file(READ "${WORKDIR}/fleet/fleet.json" report)
  if(NOT report MATCHES "\"retried\": *[1-9]")
    message(FATAL_ERROR "fleet report does not record the retry:\n"
                        "${report}")
  endif()

else()
  message(FATAL_ERROR "ckpt_smoke.cmake: unknown MODE '${MODE}'")
endif()
