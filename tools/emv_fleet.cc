/**
 * @file
 * emv_fleet — supervised shard runner for emvsim sweeps.
 *
 * Shards the workloads × configs × seeds matrix across N concurrent
 * emvsim child processes and babysits them:
 *
 *   - each shard runs with `ckpt=` so progress survives crashes;
 *   - a per-shard watchdog SIGKILLs children that stop producing
 *     exits within `timeout=` seconds (hung shard);
 *   - failed shards (non-zero exit, crash signal, or hang) are
 *     retried with exponential backoff, resuming from the last good
 *     checkpoint when one exists;
 *   - a shard that fails `retries`+1 consecutive times is
 *     quarantined and no longer scheduled;
 *   - each shard streams emv-metrics-v1 telemetry to
 *     <outdir>/shard-N-metrics.jsonl (watch the whole fleet live
 *     with `emv_top outdir/shard-*-metrics.jsonl`; metrics=0
 *     disables);
 *   - a merged emv-fleet-v1 JSON report records every shard's
 *     outcome, attempts and artifact paths, plus a telemetry
 *     rollup of last-window rates and tails.
 *
 * Usage:
 *   emv_fleet [workloads=gups,...] [configs=4K+4K,...] [seeds=42,...]
 *             [jobs=2] [outdir=fleet-out] [report=<outdir>/fleet.json]
 *             [emvsim=PATH] [timeout=300] [retries=2] [backoffms=200]
 *             [scale=0.25] [ops=1000000] [warmup=200000]
 *             [ckptevery=0] [audit=0] [faults=SPEC] [policy=degrade]
 *             [faultseed=7] [crashafter=N] [hangafter=N]
 *             [metrics=1] [window=100000]
 *
 * `crashafter`/`hangafter` are forwarded to each shard's FIRST
 * attempt only (deterministic failure injection for tests); retries
 * run clean and recover from the checkpoint.
 *
 * Exit code: 0 when every shard completed, 1 otherwise (including
 * usage errors).
 */

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

struct Knob
{
    const char *key;
    const char *help;
};

constexpr Knob kKnobs[] = {
    {"workloads", "CSV of workloads to shard (default gups)"},
    {"configs", "CSV of config labels (default 4K+4K)"},
    {"seeds", "CSV of seeds (default 42)"},
    {"jobs", "max concurrent shards (default 2)"},
    {"outdir", "checkpoints, logs and stats go here "
               "(default fleet-out)"},
    {"report", "emv-fleet-v1 JSON report path "
               "(default <outdir>/fleet.json)"},
    {"emvsim", "emvsim binary (default: next to emv_fleet)"},
    {"timeout", "per-shard watchdog seconds, 0 = off (default 300)"},
    {"retries", "retry attempts per shard before quarantine "
                "(default 2)"},
    {"backoffms", "base retry backoff in ms, doubled per attempt "
                  "(default 200)"},
    {"scale", "forwarded to emvsim (default 0.25)"},
    {"ops", "forwarded to emvsim (default 1000000)"},
    {"warmup", "forwarded to emvsim (default 200000)"},
    {"ckptevery", "forwarded to emvsim (default 0: checkpoint only "
                  "on interrupt/completion)"},
    {"audit", "forwarded to emvsim (default 0)"},
    {"faults", "forwarded to emvsim"},
    {"policy", "forwarded to emvsim"},
    {"faultseed", "forwarded to emvsim"},
    {"crashafter", "forwarded to each shard's first attempt only"},
    {"hangafter", "forwarded to each shard's first attempt only"},
    {"metrics", "per-shard emv-metrics-v1 JSONL streams "
                "(<outdir>/shard-N-metrics.jsonl); 0 disables "
                "(default 1)"},
    {"window", "telemetry window size in trace ops, forwarded to "
               "emvsim (default: emvsim's 100000)"},
};

void
printUsage(std::FILE *out)
{
    std::fprintf(out, "usage: emv_fleet [key=value]...\n\n");
    for (const auto &knob : kKnobs)
        std::fprintf(out, "  %-10s %s\n", knob.key, knob.help);
    std::fprintf(out, "\nexit codes: 0 all shards completed, "
                      "1 otherwise\n");
}

bool
knownKey(const std::string &key)
{
    for (const auto &knob : kKnobs) {
        if (key == knob.key)
            return true;
    }
    return false;
}

const char *
argValue(int argc, char **argv, const char *key)
{
    const std::size_t len = std::strlen(key);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], key, len) == 0 &&
            argv[i][len] == '=') {
            return argv[i] + len + 1;
        }
    }
    return nullptr;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const auto comma = csv.find(',', pos);
        const auto end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > pos)
            out.push_back(csv.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

double
monotonicSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return stat(path.c_str(), &st) == 0;
}

/** Minimal JSON string escaping for the report. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Last newline-terminated line of @p path (the newest complete
 * emv-metrics-v1 window record; the writer flushes whole lines, so
 * anything after the final '\n' is a torn write in flight).
 */
std::string
lastCompleteLine(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (!in)
        return "";
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, got);
    std::fclose(in);
    const auto tail = text.rfind('\n');
    if (tail == std::string::npos)
        return "";
    text.resize(tail);
    const auto prev = text.rfind('\n');
    return prev == std::string::npos ? text : text.substr(prev + 1);
}

/**
 * Value of the first `"key": <number>` at or after @p from in a
 * compact JSON line; NaN-free streams mean a parse failure returns
 * a negative sentinel.  Textual extraction keeps emv_fleet free of
 * the emv library (it is plain POSIX by design); the stream it reads
 * is validated for real by json_check.
 */
double
extractNumber(const std::string &line, const char *key,
              std::size_t from = 0)
{
    const std::string needle = std::string("\"") + key + "\":";
    const auto pos = line.find(needle, from);
    if (pos == std::string::npos)
        return -1.0;
    return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

enum class ShardState {
    Pending,    //!< Waiting for a slot (or for its backoff to end).
    Running,
    Completed,  //!< emvsim exit 0.
    Terminal,   //!< emvsim exit 2: deterministic terminal fault.
    Quarantined //!< Failed retries+1 consecutive times.
};

const char *
shardStateName(ShardState state)
{
    switch (state) {
      case ShardState::Pending: return "pending";
      case ShardState::Running: return "running";
      case ShardState::Completed: return "completed";
      case ShardState::Terminal: return "terminal";
      case ShardState::Quarantined: return "quarantined";
    }
    return "?";
}

struct Shard
{
    unsigned id = 0;
    std::string workload;
    std::string config;
    std::string seed;

    ShardState state = ShardState::Pending;
    unsigned attempts = 0;     //!< Attempts started so far.
    unsigned hangs = 0;        //!< Watchdog kills.
    unsigned resumes = 0;      //!< Retries that resumed a checkpoint.
    int lastExit = -1;         //!< Last exit code (or 128+signal).

    pid_t pid = -1;
    double deadline = 0.0;     //!< Watchdog deadline (monotonic).
    double notBefore = 0.0;    //!< Backoff gate for the next attempt.

    std::string ckptPath;
    std::string statsPath;
    std::string logPath;
    std::string metricsPath;  //!< Empty when metrics=0.
};

struct FleetOptions
{
    std::string emvsimPath;
    std::string outdir = "fleet-out";
    std::string reportPath;
    unsigned jobs = 2;
    unsigned retries = 2;
    double timeoutSec = 300.0;
    std::uint64_t backoffMs = 200;

    // Forwarded per-shard emvsim knobs.
    std::string scale = "0.25";
    std::string ops = "1000000";
    std::string warmup = "200000";
    std::string ckptevery = "0";
    std::string audit = "0";
    std::string faults;
    std::string policy;
    std::string faultseed;
    std::string crashafter;  //!< First attempt only.
    std::string hangafter;   //!< First attempt only.
    bool metrics = true;     //!< Stream per-shard telemetry.
    std::string window;      //!< Telemetry window ops (emvsim default
                             //!< when empty).
};

/** Fork + exec one attempt; returns the child pid or -1. */
pid_t
spawnShard(const FleetOptions &opts, Shard &shard, bool resume)
{
    std::vector<std::string> args;
    args.push_back(opts.emvsimPath);
    if (resume) {
        args.push_back("resume=" + shard.ckptPath);
    } else {
        args.push_back("workload=" + shard.workload);
        args.push_back("config=" + shard.config);
        args.push_back("seed=" + shard.seed);
        args.push_back("scale=" + opts.scale);
        args.push_back("ops=" + opts.ops);
        args.push_back("warmup=" + opts.warmup);
        if (opts.audit != "0")
            args.push_back("audit=" + opts.audit);
        if (!opts.faults.empty())
            args.push_back("faults=" + opts.faults);
        if (!opts.policy.empty())
            args.push_back("policy=" + opts.policy);
        if (!opts.faultseed.empty())
            args.push_back("faultseed=" + opts.faultseed);
        if (shard.attempts == 0) {
            if (!opts.crashafter.empty())
                args.push_back("crashafter=" + opts.crashafter);
            if (!opts.hangafter.empty())
                args.push_back("hangafter=" + opts.hangafter);
        }
    }
    args.push_back("ckpt=" + shard.ckptPath);
    if (opts.ckptevery != "0")
        args.push_back("ckptevery=" + opts.ckptevery);
    args.push_back("statsjson=" + shard.statsPath);
    args.push_back("stats=0");
    // Observability knobs travel on every attempt, resumes
    // included — emvsim accepts them alongside resume= and the
    // restored run continues its window numbering in a fresh file.
    if (!shard.metricsPath.empty()) {
        args.push_back("metrics=" + shard.metricsPath);
        if (!opts.window.empty())
            args.push_back("window=" + opts.window);
    }

    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (auto &arg : args)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) {
        std::fprintf(stderr, "emv_fleet: fork failed: %s\n",
                     std::strerror(errno));
        return -1;
    }
    if (pid == 0) {
        const int fd = open(shard.logPath.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            dup2(fd, STDOUT_FILENO);
            dup2(fd, STDERR_FILENO);
            close(fd);
        }
        execv(argv[0], argv.data());
        std::fprintf(stderr, "emv_fleet: exec '%s' failed: %s\n",
                     argv[0], std::strerror(errno));
        _exit(127);
    }
    return pid;
}

bool
writeReport(const FleetOptions &opts,
            const std::vector<Shard> &shards)
{
    const std::string tmp = opts.reportPath + ".tmp";
    std::FILE *out = std::fopen(tmp.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "emv_fleet: cannot write '%s': %s\n",
                     tmp.c_str(), std::strerror(errno));
        return false;
    }

    unsigned completed = 0, terminal = 0, quarantined = 0;
    unsigned retried = 0;
    for (const auto &shard : shards) {
        completed += shard.state == ShardState::Completed;
        terminal += shard.state == ShardState::Terminal;
        quarantined += shard.state == ShardState::Quarantined;
        retried += shard.attempts > 1;
    }

    std::fprintf(out, "{\n  \"schema\": \"emv-fleet-v1\",\n");
    std::fprintf(out, "  \"generator\": \"emv_fleet\",\n");
    std::fprintf(out, "  \"jobs\": %u,\n", opts.jobs);
    std::fprintf(out, "  \"shards\": [\n");
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const Shard &s = shards[i];
        std::string metrics_member;
        if (!s.metricsPath.empty()) {
            metrics_member = ", \"metrics_jsonl\": \"" +
                             jsonEscape(s.metricsPath) + "\"";
        }
        std::fprintf(
            out,
            "    {\"id\": %u, \"workload\": \"%s\", "
            "\"config\": \"%s\", \"seed\": %s, "
            "\"status\": \"%s\", \"attempts\": %u, "
            "\"hangs\": %u, \"resumes\": %u, "
            "\"exit_code\": %d, "
            "\"stats_json\": \"%s\", \"log\": \"%s\"%s}%s\n",
            s.id, jsonEscape(s.workload).c_str(),
            jsonEscape(s.config).c_str(), s.seed.c_str(),
            shardStateName(s.state), s.attempts, s.hangs,
            s.resumes, s.lastExit, jsonEscape(s.statsPath).c_str(),
            jsonEscape(s.logPath).c_str(), metrics_member.c_str(),
            i + 1 < shards.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");

    // Telemetry rollup: the newest window record of every reporting
    // shard.  Fleet ops/sec sums last-window rates (a liveness
    // aggregate, not a run average); worst_p99 is the worst windowed
    // tail, worst_cumulative_p99 the worst whole-run tail.
    unsigned reporting = 0;
    double fleet_ops_per_sec = 0.0;
    double worst_p99 = -1.0;
    double worst_cum_p99 = -1.0;
    for (const auto &shard : shards) {
        if (shard.metricsPath.empty())
            continue;
        const std::string line = lastCompleteLine(shard.metricsPath);
        if (line.empty() ||
            line.find("\"emv-metrics-v1\"") == std::string::npos)
            continue;
        ++reporting;
        const double rate = extractNumber(line, "ops_per_sec");
        if (rate > 0)
            fleet_ops_per_sec += rate;
        worst_p99 = std::max(worst_p99, extractNumber(line, "p99"));
        const auto cum = line.find("\"cumulative_latency\"");
        if (cum != std::string::npos) {
            worst_cum_p99 = std::max(
                worst_cum_p99, extractNumber(line, "p99", cum));
        }
    }
    std::fprintf(out,
                 "  \"telemetry\": {\"shards_reporting\": %u, "
                 "\"fleet_ops_per_sec\": %.3f, "
                 "\"worst_window_p99\": %.3f, "
                 "\"worst_cumulative_p99\": %.3f},\n",
                 reporting, fleet_ops_per_sec,
                 std::max(0.0, worst_p99),
                 std::max(0.0, worst_cum_p99));

    std::fprintf(out,
                 "  \"summary\": {\"total\": %zu, "
                 "\"completed\": %u, \"terminal\": %u, "
                 "\"quarantined\": %u, \"retried\": %u}\n",
                 shards.size(), completed, terminal, quarantined,
                 retried);
    std::fprintf(out, "}\n");
    if (std::fclose(out) != 0)
        return false;
    if (std::rename(tmp.c_str(), opts.reportPath.c_str()) != 0) {
        std::fprintf(stderr, "emv_fleet: cannot rename '%s': %s\n",
                     tmp.c_str(), std::strerror(errno));
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h" || arg == "help") {
            printUsage(stdout);
            return 0;
        }
        const auto eq = arg.find('=');
        if (eq == std::string::npos ||
            !knownKey(arg.substr(0, eq))) {
            std::fprintf(stderr,
                         "emv_fleet: bad argument '%s'\n\n",
                         arg.c_str());
            printUsage(stderr);
            return 1;
        }
    }

    FleetOptions opts;
    const std::string workloads_csv =
        argValue(argc, argv, "workloads") ?: "gups";
    const std::string configs_csv =
        argValue(argc, argv, "configs") ?: "4K+4K";
    const std::string seeds_csv =
        argValue(argc, argv, "seeds") ?: "42";
    if (const char *v = argValue(argc, argv, "jobs"))
        opts.jobs = std::max(1, std::atoi(v));
    if (const char *v = argValue(argc, argv, "outdir"))
        opts.outdir = v;
    if (const char *v = argValue(argc, argv, "timeout"))
        opts.timeoutSec = std::atof(v);
    if (const char *v = argValue(argc, argv, "retries"))
        opts.retries = static_cast<unsigned>(std::atoi(v));
    if (const char *v = argValue(argc, argv, "backoffms"))
        opts.backoffMs = std::strtoull(v, nullptr, 10);
    if (const char *v = argValue(argc, argv, "scale"))
        opts.scale = v;
    if (const char *v = argValue(argc, argv, "ops"))
        opts.ops = v;
    if (const char *v = argValue(argc, argv, "warmup"))
        opts.warmup = v;
    if (const char *v = argValue(argc, argv, "ckptevery"))
        opts.ckptevery = v;
    if (const char *v = argValue(argc, argv, "audit"))
        opts.audit = v;
    if (const char *v = argValue(argc, argv, "faults"))
        opts.faults = v;
    if (const char *v = argValue(argc, argv, "policy"))
        opts.policy = v;
    if (const char *v = argValue(argc, argv, "faultseed"))
        opts.faultseed = v;
    if (const char *v = argValue(argc, argv, "crashafter"))
        opts.crashafter = v;
    if (const char *v = argValue(argc, argv, "hangafter"))
        opts.hangafter = v;
    if (const char *v = argValue(argc, argv, "metrics"))
        opts.metrics = std::atoi(v) != 0;
    if (const char *v = argValue(argc, argv, "window"))
        opts.window = v;

    if (const char *v = argValue(argc, argv, "emvsim")) {
        opts.emvsimPath = v;
    } else {
        std::string self = argv[0];
        const auto slash = self.rfind('/');
        opts.emvsimPath =
            slash == std::string::npos
                ? std::string("./emvsim")
                : self.substr(0, slash + 1) + "emvsim";
    }
    opts.reportPath = argValue(argc, argv, "report")
                          ?: opts.outdir + "/fleet.json";

    if (mkdir(opts.outdir.c_str(), 0755) != 0 && errno != EEXIST) {
        std::fprintf(stderr,
                     "emv_fleet: cannot create outdir '%s': %s\n",
                     opts.outdir.c_str(), std::strerror(errno));
        return 1;
    }
    if (!fileExists(opts.emvsimPath)) {
        std::fprintf(stderr, "emv_fleet: emvsim binary '%s' not "
                     "found (use emvsim=PATH)\n",
                     opts.emvsimPath.c_str());
        return 1;
    }

    std::vector<Shard> shards;
    for (const auto &wl : splitCsv(workloads_csv)) {
        for (const auto &config : splitCsv(configs_csv)) {
            for (const auto &seed : splitCsv(seeds_csv)) {
                Shard shard;
                shard.id = static_cast<unsigned>(shards.size());
                shard.workload = wl;
                shard.config = config;
                shard.seed = seed;
                const std::string stem =
                    opts.outdir + "/shard-" +
                    std::to_string(shard.id);
                shard.ckptPath = stem + ".ckpt";
                shard.statsPath = stem + "-stats.json";
                shard.logPath = stem + ".log";
                if (opts.metrics)
                    shard.metricsPath = stem + "-metrics.jsonl";
                shards.push_back(shard);
            }
        }
    }
    if (shards.empty()) {
        std::fprintf(stderr, "emv_fleet: empty shard matrix\n");
        return 1;
    }
    std::printf("emv_fleet: %zu shard(s), %u job(s), emvsim=%s\n",
                shards.size(), opts.jobs, opts.emvsimPath.c_str());

    const auto recordFailure = [&](Shard &shard, const char *why) {
        std::printf("shard %u (%s/%s/seed=%s): attempt %u %s\n",
                    shard.id, shard.workload.c_str(),
                    shard.config.c_str(), shard.seed.c_str(),
                    shard.attempts, why);
        if (shard.attempts > opts.retries) {
            shard.state = ShardState::Quarantined;
            std::printf("shard %u: quarantined after %u "
                        "consecutive failures\n",
                        shard.id, shard.attempts);
            return;
        }
        // Exponential backoff: base * 2^(attempt-1).
        const double backoff =
            static_cast<double>(opts.backoffMs) * 1e-3 *
            static_cast<double>(1ull << (shard.attempts - 1));
        shard.state = ShardState::Pending;
        shard.notBefore = monotonicSeconds() + backoff;
    };

    unsigned running = 0;
    for (;;) {
        // Reap every exited child without blocking.
        int status = 0;
        pid_t pid;
        while ((pid = waitpid(-1, &status, WNOHANG)) > 0) {
            const auto it = std::find_if(
                shards.begin(), shards.end(),
                [&](const Shard &s) { return s.pid == pid; });
            if (it == shards.end())
                continue;
            Shard &shard = *it;
            shard.pid = -1;
            --running;
            if (WIFEXITED(status)) {
                shard.lastExit = WEXITSTATUS(status);
                if (shard.lastExit == 0) {
                    shard.state = ShardState::Completed;
                    std::printf("shard %u (%s/%s/seed=%s): "
                                "completed (attempt %u)\n",
                                shard.id, shard.workload.c_str(),
                                shard.config.c_str(),
                                shard.seed.c_str(), shard.attempts);
                } else if (shard.lastExit == 2) {
                    // Deterministic terminal fault: retrying would
                    // reproduce it, so record and move on.
                    shard.state = ShardState::Terminal;
                    std::printf("shard %u: terminal fault "
                                "(exit 2)\n", shard.id);
                } else {
                    recordFailure(shard, "failed");
                }
            } else if (WIFSIGNALED(status)) {
                shard.lastExit = 128 + WTERMSIG(status);
                recordFailure(shard, "crashed");
            }
        }

        // Watchdog: kill shards that blew their deadline.
        const double now = monotonicSeconds();
        for (auto &shard : shards) {
            if (shard.state != ShardState::Running ||
                opts.timeoutSec <= 0.0 || now < shard.deadline) {
                continue;
            }
            std::printf("shard %u: watchdog timeout after %.0fs; "
                        "killing pid %d\n",
                        shard.id, opts.timeoutSec,
                        static_cast<int>(shard.pid));
            ++shard.hangs;
            kill(shard.pid, SIGKILL);
            // The exit is reaped (and retried) on the next pass.
        }

        // Schedule pending shards into free slots.
        for (auto &shard : shards) {
            if (running >= opts.jobs)
                break;
            if (shard.state != ShardState::Pending ||
                now < shard.notBefore) {
                continue;
            }
            const bool resume = shard.attempts > 0 &&
                                fileExists(shard.ckptPath);
            const pid_t child = spawnShard(opts, shard, resume);
            if (child < 0) {
                ++shard.attempts;
                recordFailure(shard, "failed to spawn");
                continue;
            }
            ++shard.attempts;
            shard.resumes += resume;
            shard.pid = child;
            shard.state = ShardState::Running;
            shard.deadline = now + opts.timeoutSec;
            ++running;
            std::printf("shard %u (%s/%s/seed=%s): attempt %u "
                        "%s (pid %d)\n",
                        shard.id, shard.workload.c_str(),
                        shard.config.c_str(), shard.seed.c_str(),
                        shard.attempts,
                        resume ? "resuming" : "started",
                        static_cast<int>(child));
        }

        const bool done = std::all_of(
            shards.begin(), shards.end(), [](const Shard &s) {
                return s.state == ShardState::Completed ||
                       s.state == ShardState::Terminal ||
                       s.state == ShardState::Quarantined;
            });
        if (done)
            break;

        timespec nap{0, 50 * 1000 * 1000};  // 50 ms.
        nanosleep(&nap, nullptr);
    }

    if (!writeReport(opts, shards))
        return 1;

    unsigned failed = 0;
    for (const auto &shard : shards)
        failed += shard.state != ShardState::Completed;
    std::printf("emv_fleet: %zu shard(s), %u failed; report: %s\n",
                shards.size(), failed, opts.reportPath.c_str());
    return failed == 0 ? 0 : 1;
}
