/**
 * @file
 * emv_lint — project-specific static checks for the emv source tree.
 *
 * The general-purpose toolchain (-Wall -Wextra, sanitizers,
 * clang-tidy) cannot express *project* conventions, so this small
 * scanner enforces the ones that keep the simulator deterministic
 * and its output machine-parseable:
 *
 *   raw-rng        no rand()/srand()/std::random_device/time(...)
 *                  seeding outside common/rng — all randomness must
 *                  flow through the seeded SplitMix64/Xoshiro RNG so
 *                  runs are reproducible.
 *   raw-output     no std::cout/std::cerr/printf in src/ outside the
 *                  designated report/trace/logging translation
 *                  units — simulation results must go through the
 *                  stat registry or report layer, not ad-hoc prints.
 *   pragma-once    every header in src/ uses #pragma once.
 *   test-coverage  every .cc in src/ has a matching test file under
 *                  tests/ (with a small alias table for aggregate
 *                  suites).
 *   stat-names     string literals passed to counter()/scalar()/
 *                  distribution()/StatGroup() are lower_snake_case
 *                  dotted paths, matching the exported
 *                  "machine.mmu.*" naming convention.
 *   no-fatal-recovery
 *                  no emv_fatal in recovery-path code (src/fault/
 *                  and sim/machine.cc) — faults there must degrade
 *                  gracefully or produce a structured FaultReport,
 *                  never abort the process.
 *   ckpt-round-trip
 *                  every class exposing a checkpoint serialize()
 *                  must declare the matching deserialize(), and the
 *                  translation unit's test file under tests/ must
 *                  exercise deserialization (a save/restore
 *                  round-trip) — state that can be saved but not
 *                  restored, or restored but never tested, silently
 *                  breaks crash-safe resume.
 *   hot-path-stat-lookup
 *                  no string-keyed StatRegistry lookups (counter(
 *                  "name") and friends) inside the Mmu::translate
 *                  call tree in core/mmu.cc — every translation pays
 *                  for them, so the constructor caches the pointers
 *                  once and the hot path bumps them directly; a
 *                  map lookup per op also skews the telemetry
 *                  throughput meter it feeds.
 *
 * Concurrency-safety rules (see DESIGN.md §12), ahead of the
 * in-process parallel engine:
 *
 *   shared-mutable-state
 *                  namespace-scope variables, mutable static locals
 *                  and static data members must be const/constexpr,
 *                  atomic, a Mutex, thread_local, or carry an
 *                  EMV_GUARDED_BY annotation; anything else is a
 *                  data race waiting for the threaded runner.
 *                  Audited singletons live in an explicit
 *                  "file:name" allowlist.
 *   unguarded-member
 *                  a class that owns a Mutex declares its locking
 *                  story for *every* mutable member: EMV_GUARDED_BY
 *                  / EMV_PT_GUARDED_BY for lock-protected state,
 *                  EMV_THREAD_CONFINED for owner-thread state, or a
 *                  const/atomic type.
 *   nondeterministic-source
 *                  no wall-clock reads (std::chrono clocks, time(),
 *                  clock_gettime, gettimeofday), std::random_device,
 *                  or address-as-hash (std::hash over pointers,
 *                  pointer-to-uintptr casts) inside the
 *                  deterministic sim layers — any of these makes
 *                  emv-ckpt-v1 resume schedule-dependent.  Only the
 *                  injected TelemetryRecorder clock and the
 *                  explicitly wall-clock translation units
 *                  (telemetry, profiling, experiment timing) may
 *                  read real time.
 *
 * Usage: emv_lint <repo-root> [--rules=rule1,rule2,...]
 * With --rules only the named rules report (used by the fixture
 * self-tests under tests/tools/lint_fixtures/ to point one rule at
 * one known-bad mini-tree).
 * Exits 0 when clean; prints "file:line: [rule] message" per
 * violation and exits 1 otherwise.  Registered as a CTest so a
 * convention regression fails the build's test stage.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation
{
    std::string file;
    int line;
    std::string rule;
    std::string message;
};

std::vector<Violation> violations;

/** --rules= filter; empty means every rule reports. */
std::set<std::string> rulesFilter;

bool
ruleEnabled(const std::string &rule)
{
    return rulesFilter.empty() || rulesFilter.count(rule) != 0;
}

void
report(const fs::path &file, int line, const std::string &rule,
       const std::string &message)
{
    if (!ruleEnabled(rule))
        return;
    violations.push_back({file.string(), line, rule, message});
}

/** Strip // and /star star/ comments plus string/char literals so the
 *  pattern rules only see real code.  Line structure is preserved. */
std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    enum class State { Code, Line, Block, Str, Chr } state = State::Code;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::Line;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::Block;
                ++i;
            } else if (c == '"') {
                state = State::Str;
                out += '"';
            } else if (c == '\'') {
                state = State::Chr;
                out += '\'';
            } else {
                out += c;
            }
            break;
        case State::Line:
            if (c == '\n') {
                state = State::Code;
                out += '\n';
            }
            break;
        case State::Block:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            } else if (c == '\n') {
                out += '\n';
            }
            break;
        case State::Str:
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                state = State::Code;
                out += '"';
            } else if (c == '\n') {
                out += '\n';  // Unterminated; keep line counts sane.
                state = State::Code;
            }
            break;
        case State::Chr:
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                out += '\'';
            } else if (c == '\n') {
                out += '\n';
                state = State::Code;
            }
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Relative path with '/' separators, e.g. "common/rng.cc". */
std::string
relName(const fs::path &file, const fs::path &root)
{
    std::string rel = fs::relative(file, root).generic_string();
    return rel;
}

bool
matchesAny(const std::string &rel,
           const std::vector<std::string> &prefixes)
{
    return std::any_of(prefixes.begin(), prefixes.end(),
                       [&](const std::string &p) {
                           return rel.rfind(p, 0) == 0;
                       });
}

// ---------------------------------------------------------------------
// Rule: raw-rng
// ---------------------------------------------------------------------

void
checkRawRng(const fs::path &file, const std::string &rel,
            const std::vector<std::string> &lines)
{
    if (rel.rfind("common/rng", 0) == 0)
        return;  // The one blessed home of raw entropy.
    static const std::regex forbidden(
        R"(std::random_device|[^_[:alnum:]](s?rand)\s*\(|[^_[:alnum:]]time\s*\(\s*(NULL|nullptr|0)?\s*\))");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::regex_search(lines[i], forbidden)) {
            report(file, static_cast<int>(i + 1), "raw-rng",
                   "unseeded randomness or wall-clock seeding; use "
                   "common/rng (deterministic, run-seeded) instead");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: raw-output
// ---------------------------------------------------------------------

void
checkRawOutput(const fs::path &file, const std::string &rel,
               const std::vector<std::string> &lines)
{
    // Translation units whose whole job is producing output.
    static const std::vector<std::string> allowed = {
        "common/logging.",   // emv_warn/emv_info/panic plumbing
        "common/trace.",     // EMV_TRACE sink
        "common/json.",      // serializers write to caller streams
        "common/profile.",   // prof::report
        "common/audit.",     // audit failure records
        "sim/report.",       // human-readable result tables
        "sim/experiment.",   // CLI usage/error reporting
    };
    if (matchesAny(rel, allowed))
        return;
    static const std::regex forbidden(
        R"(std::cout|std::cerr|[^_[:alnum:]](f|v|s|sn|vsn)?printf\s*\()");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::smatch m;
        if (std::regex_search(lines[i], m, forbidden)) {
            // Formatting into buffers is fine; writing is not.
            const std::string tok = m.str();
            if (tok.find("snprintf") != std::string::npos ||
                tok.find("vsnprintf") != std::string::npos ||
                tok.find("sprintf") != std::string::npos) {
                continue;
            }
            report(file, static_cast<int>(i + 1), "raw-output",
                   "direct console output in the simulator core; "
                   "route through stats/report/trace layers");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-fatal-recovery
// ---------------------------------------------------------------------

void
checkNoFatalRecovery(const fs::path &file, const std::string &rel,
                     const std::vector<std::string> &lines)
{
    // Recovery-path translation units: the fault subsystem and the
    // machine layer that owns downgrade/retry/offline handling.
    static const std::vector<std::string> recovery_paths = {
        "fault/",
        "sim/machine.cc",
    };
    if (!matchesAny(rel, recovery_paths))
        return;
    static const std::regex forbidden(
        R"((^|[^_[:alnum:]])emv_fatal\s*\()");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::regex_search(lines[i], forbidden)) {
            report(file, static_cast<int>(i + 1),
                   "no-fatal-recovery",
                   "emv_fatal in recovery-path code; degrade "
                   "gracefully (downgrade/retry/offline) or record "
                   "a structured FaultReport instead of aborting");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: ckpt-round-trip
// ---------------------------------------------------------------------

/** Test files (relative to tests/) that must contain a round-trip,
 *  keyed by the source file (relative to src/) that demanded one. */
std::map<std::string, std::string> ckptTestsWanted;

/** tests/ file covering @p rel for checkpoint round-trip purposes. */
std::string
ckptTestFor(const std::string &rel)
{
    // Aggregate suites mirroring the test-coverage alias table: the
    // workload generators share one suite, Process is covered by the
    // guest-OS suite, and the whole-Machine round trip lives with
    // the checkpoint tests rather than the machine behavior tests.
    if (rel.rfind("workload/", 0) == 0)
        return "workload/test_workloads.cc";
    if (rel.rfind("os/process.", 0) == 0)
        return "os/test_guest_os.cc";
    if (rel.rfind("sim/machine.", 0) == 0)
        return "sim/test_checkpoint.cc";
    const fs::path p(rel);
    return (p.parent_path() /
            ("test_" + p.stem().string() + ".cc")).generic_string();
}

void
checkCkptRoundTrip(const fs::path &file, const std::string &rel,
                   const std::string &stripped)
{
    // Checkpoint entry points: declarations or definitions taking a
    // ckpt:: stream type.  Call sites pass variables, not qualified
    // types, so they do not match.
    static const std::regex method(
        R"((?:([A-Za-z_][A-Za-z0-9_]*)\s*::\s*)?(de)?serialize\s*\()"
        R"(\s*(?:const\s+)?(?:emv::)?ckpt::(Encoder|Decoder|Writer|Reader))");
    static const std::regex classDecl(
        R"((?:class|struct)\s+([A-Za-z_][A-Za-z0-9_]*))");

    // Class/struct name positions, for attributing in-class
    // declarations to their owner.
    std::vector<std::pair<std::size_t, std::string>> owners;
    for (auto it = std::sregex_iterator(stripped.begin(),
                                        stripped.end(), classDecl);
         it != std::sregex_iterator(); ++it) {
        owners.emplace_back(static_cast<std::size_t>(it->position()),
                            (*it)[1].str());
    }

    struct Halves { bool ser = false; bool deser = false; int line = 0; };
    std::map<std::string, Halves> classes;
    for (auto it = std::sregex_iterator(stripped.begin(),
                                        stripped.end(), method);
         it != std::sregex_iterator(); ++it) {
        const auto pos = static_cast<std::size_t>(it->position());
        std::string owner = (*it)[1].str();
        if (owner.empty()) {
            // In-class declaration: nearest preceding class name.
            for (const auto &[at, name] : owners) {
                if (at > pos)
                    break;
                owner = name;
            }
            if (owner.empty())
                continue;  // Free function; not a class contract.
        }
        Halves &h = classes[owner];
        if ((*it)[2].matched)
            h.deser = true;
        else
            h.ser = true;
        if (h.line == 0) {
            h.line = 1 + static_cast<int>(std::count(
                stripped.begin(), stripped.begin() + pos, '\n'));
        }
    }

    bool any_serialize = false;
    for (const auto &[name, h] : classes) {
        any_serialize |= h.ser;
        if (h.ser && !h.deser) {
            report(file, h.line, "ckpt-round-trip",
                   "class " + name + " exposes serialize() without "
                   "a matching deserialize(); checkpoints it writes "
                   "could never be restored");
        } else if (h.deser && !h.ser) {
            report(file, h.line, "ckpt-round-trip",
                   "class " + name + " exposes deserialize() "
                   "without a matching serialize()");
        }
    }
    if (any_serialize)
        ckptTestsWanted.emplace(ckptTestFor(rel), rel);
}

/** After the scan: every demanded test file must restore state. */
void
finalizeCkptRoundTrip(const fs::path &root)
{
    for (const auto &[test_rel, src_rel] : ckptTestsWanted) {
        const fs::path test = root / "tests" / test_rel;
        bool restores = false;
        if (fs::exists(test)) {
            const std::string text = readFile(test);
            // Either a direct deserialize() call or the shared
            // test_support.hh ckptRestore() helper counts.
            restores =
                text.find("deserialize") != std::string::npos ||
                text.find("ckptRestore") != std::string::npos ||
                text.find("restoreMachine") != std::string::npos;
        }
        if (!restores) {
            report(root / "src" / src_rel, 1, "ckpt-round-trip",
                   "serializable state with no save/restore "
                   "round-trip test; " + test.string() +
                       " must exercise deserialize()");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: hot-path-stat-lookup
// ---------------------------------------------------------------------

void
checkHotPathStatLookup(const fs::path &file, const std::string &rel,
                       const std::string &stripped)
{
    if (rel != "core/mmu.cc")
        return;
    // The translate call tree: everything a single translation can
    // execute.  Cold control-plane methods (set*/flush*/fraction*)
    // may look stats up by name; these may not.
    static const char *const hot[] = {
        "translate", "translateImpl", "doWalk",
        "nestedToHost", "segmentToHost", "priceTrace",
    };
    static const std::regex lookup(
        R"((counter|scalar|distribution|counterValue|scalarValue)\s*\(\s*")");
    for (const char *name : hot) {
        const std::regex def("Mmu::" + std::string(name) +
                             R"(\s*\()");
        auto from = stripped.cbegin();
        std::smatch m;
        while (std::regex_search(from, stripped.cend(), m, def)) {
            auto it = m[0].second;
            // Find the body; a ';' first would mean a declaration.
            while (it != stripped.cend() && *it != '{' && *it != ';')
                ++it;
            if (it == stripped.cend() || *it == ';') {
                from = it;
                continue;
            }
            int depth = 0;
            const auto body_begin = it;
            for (; it != stripped.cend(); ++it) {
                if (*it == '{')
                    ++depth;
                else if (*it == '}' && --depth == 0)
                    break;
            }
            const std::string body(body_begin, it);
            std::smatch hit;
            if (std::regex_search(body, hit, lookup)) {
                const auto off = static_cast<std::size_t>(
                    (body_begin - stripped.cbegin()) +
                    hit.position());
                const int line = 1 + static_cast<int>(std::count(
                    stripped.begin(), stripped.begin() + off, '\n'));
                report(file, line, "hot-path-stat-lookup",
                       "string-keyed stat lookup inside Mmu::" +
                           std::string(name) +
                           "; cache the counter/scalar pointer in "
                           "the constructor and bump it directly");
            }
            from = it;
        }
    }
}

// ---------------------------------------------------------------------
// Scope-aware declaration scan, shared by shared-mutable-state and
// unguarded-member.
// ---------------------------------------------------------------------

struct Stmt
{
    std::string text;
    int line;
};

struct TypeScope
{
    std::string name;
    int line;
    std::vector<Stmt> members;
};

enum class ScopeKind { Namespace, Type, Other };

/**
 * Split the stripped text into namespace-scope statements, per-type
 * member statements, and function-local `static` statements by
 * classifying what each `{` opens.  An `{` whose header names no
 * namespace/class/struct/union/enum is Other — a function body,
 * control block, or brace initializer; its pending header is kept
 * only when the matching `}` is followed by `;` (a declaration whose
 * initializer we just skipped).
 */
void
collectScopes(const std::string &stripped,
              std::vector<Stmt> &nsStmts,
              std::vector<TypeScope> &types,
              std::vector<Stmt> &fnStmts)
{
    static const std::regex nsRe(R"(\bnamespace\b)");
    static const std::regex typeRe(R"(\b(class|struct|union|enum)\b)");
    static const std::regex typeNameRe(
        R"((?:class|struct|union|enum)(?:\s+class)?)"
        R"((?:\s+EMV_[A-Z_]+\s*\([^()]*\))?\s+([A-Za-z_][A-Za-z0-9_]*))");
    static const std::regex tmplParams(R"(template\s*<[^<>]*>)");

    std::vector<ScopeKind> stack;
    std::vector<int> typeOf;          // Index into types; -1 if not.
    std::vector<std::string> pending; // Saved headers of Other scopes.
    std::vector<int> pendingLine;

    std::string cur;
    int line = 1;
    int stmtLine = 1;

    auto trimmed = [](const std::string &s) {
        const auto b = s.find_first_not_of(" \t");
        if (b == std::string::npos)
            return std::string();
        const auto e = s.find_last_not_of(" \t");
        return s.substr(b, e - b + 1);
    };
    auto record = [&]() {
        const std::string text = trimmed(cur);
        cur.clear();
        if (text.empty())
            return;
        const ScopeKind kind =
            stack.empty() ? ScopeKind::Namespace : stack.back();
        switch (kind) {
        case ScopeKind::Namespace:
            nsStmts.push_back({text, stmtLine});
            break;
        case ScopeKind::Type:
            if (typeOf.back() >= 0)
                types[static_cast<std::size_t>(typeOf.back())]
                    .members.push_back({text, stmtLine});
            break;
        case ScopeKind::Other:
            // Function bodies: only static locals are interesting.
            if (text.rfind("static ", 0) == 0)
                fnStmts.push_back({text, stmtLine});
            break;
        }
    };

    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const char c = stripped[i];
        if (c == '\n') {
            ++line;
            cur += ' ';
            continue;
        }
        if (c == ';') {
            record();
            stmtLine = line;
            continue;
        }
        if (c == '{') {
            // Strip template parameter lists so `template <class T>`
            // does not read as a type definition.
            const std::string head =
                std::regex_replace(trimmed(cur), tmplParams, "");
            ScopeKind kind = ScopeKind::Other;
            if (std::regex_search(head, nsRe))
                kind = ScopeKind::Namespace;
            else if (std::regex_search(head, typeRe))
                kind = ScopeKind::Type;
            stack.push_back(kind);
            if (kind == ScopeKind::Type) {
                std::smatch m;
                std::string name = "<anonymous>";
                if (std::regex_search(head, m, typeNameRe))
                    name = m[1].str();
                typeOf.push_back(static_cast<int>(types.size()));
                types.push_back({name, stmtLine, {}});
            } else {
                typeOf.push_back(-1);
            }
            pending.push_back(kind == ScopeKind::Other ? cur : "");
            pendingLine.push_back(stmtLine);
            cur.clear();
            stmtLine = line;
            continue;
        }
        if (c == '}') {
            if (stack.empty())
                continue;
            const ScopeKind kind = stack.back();
            const std::string saved = pending.back();
            const int savedLine = pendingLine.back();
            stack.pop_back();
            typeOf.pop_back();
            pending.pop_back();
            pendingLine.pop_back();
            cur.clear();
            if (kind == ScopeKind::Other) {
                // Brace initializer?  Restore the declaration header
                // so the upcoming ';' records it.
                std::size_t j = i + 1;
                while (j < stripped.size() &&
                       (stripped[j] == ' ' || stripped[j] == '\t' ||
                        stripped[j] == '\n')) {
                    ++j;
                }
                if (j < stripped.size() && stripped[j] == ';') {
                    cur = saved;
                    stmtLine = savedLine;
                }
            }
            continue;
        }
        if (cur.empty() || trimmed(cur).empty())
            stmtLine = line;
        cur += c;
    }
}

/** EMV_*(...) attribute macros (and the bare EMV_THREAD_CONFINED)
 *  removed, so leftover parentheses mean "function-like". */
std::string
stripEmvAttrs(const std::string &s)
{
    static const std::regex attr(R"(EMV_[A-Z_]+\s*\([^()]*\))");
    static const std::regex bare(R"(EMV_THREAD_CONFINED)");
    return std::regex_replace(std::regex_replace(s, attr, ""), bare,
                              "");
}

/** Types/annotations under which shared state is race-free. */
bool
allowedSharedDecl(const std::string &s)
{
    static const std::regex allowed(
        R"(^(extern\s+)?(static\s+)?(inline\s+)?(mutable\s+)?const(expr)?\b)"
        R"(|\bconstexpr\b|thread_local|std::atomic|\bAtomic[A-Za-z0-9_]*)"
        R"(|\bMutex\b|std::mutex|std::once_flag)"
        R"(|EMV_GUARDED_BY|EMV_PT_GUARDED_BY)");
    return std::regex_search(s, allowed);
}

/** Last identifier of the declarator (initializer stripped). */
std::string
declaredName(const std::string &stmt)
{
    std::string head = stmt;
    const auto eq = head.find('=');
    if (eq != std::string::npos)
        head = head.substr(0, eq);
    const auto br = head.find('[');
    if (br != std::string::npos)
        head = head.substr(0, br);
    static const std::regex ident(R"(([A-Za-z_][A-Za-z0-9_]*)\s*$)");
    std::smatch m;
    if (std::regex_search(head, m, ident))
        return m[1].str();
    return "<unknown>";
}

/** Statements that are not object declarations at all. */
bool
isNonVariableStmt(const std::string &s)
{
    static const std::regex nonVar(
        R"(^(using|typedef|template|friend|public|private|protected)\b)"
        R"(|^#|\b(class|struct|union|enum)\b|^static_assert\b)");
    return std::regex_search(s, nonVar);
}

// ---------------------------------------------------------------------
// Rule: shared-mutable-state
// ---------------------------------------------------------------------

void
checkSharedMutableState(const fs::path &file, const std::string &rel,
                        const std::vector<Stmt> &nsStmts,
                        const std::vector<TypeScope> &types,
                        const std::vector<Stmt> &fnStmts)
{
    // Audited process-wide singletons ("file:name"), each with an
    // internally-synchronized implementation (DESIGN.md §12).
    static const std::set<std::string> allowlist = {
        // Leaked singleton; its entry list is Mutex-guarded.
        "common/stat_registry.cc:registry",
        // Function-local audit counters behind AuditStats::mutex.
        "common/audit.cc:stats",
    };
    auto flag = [&](const Stmt &stmt, const char *what) {
        const std::string bare = stripEmvAttrs(stmt.text);
        if (isNonVariableStmt(bare) ||
            bare.find('(') != std::string::npos) {
            return;  // Function/type/alias declaration, not state.
        }
        if (allowedSharedDecl(stmt.text))
            return;
        const std::string name = declaredName(bare);
        if (allowlist.count(rel + ":" + name))
            return;
        report(file, stmt.line, "shared-mutable-state",
               std::string(what) + " '" + name +
                   "' is mutable and unsynchronized; make it "
                   "const/atomic, guard it with a Mutex + "
                   "EMV_GUARDED_BY, or add it to the audited "
                   "allowlist in emv_lint");
    };
    for (const Stmt &stmt : nsStmts)
        flag(stmt, "namespace-scope variable");
    for (const Stmt &stmt : fnStmts)
        flag(stmt, "static local");
    for (const TypeScope &type : types) {
        for (const Stmt &stmt : type.members) {
            if (stmt.text.rfind("static ", 0) == 0)
                flag(stmt, "static data member");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: unguarded-member
// ---------------------------------------------------------------------

void
checkUnguardedMember(const fs::path &file, const std::string &rel,
                     const std::vector<TypeScope> &types)
{
    (void)rel;
    static const std::regex ownsMutex(
        R"((^|\s)(mutable\s+)?Mutex\s+[A-Za-z_][A-Za-z0-9_]*\s*$)");
    static const std::regex annotated(
        R"(EMV_GUARDED_BY|EMV_PT_GUARDED_BY|EMV_THREAD_CONFINED)");
    for (const TypeScope &type : types) {
        const bool owner = std::any_of(
            type.members.begin(), type.members.end(),
            [](const Stmt &m) {
                return std::regex_search(stripEmvAttrs(m.text),
                                         ownsMutex);
            });
        if (!owner)
            continue;
        for (const Stmt &member : type.members) {
            if (std::regex_search(member.text, annotated))
                continue;
            const std::string bare = stripEmvAttrs(member.text);
            if (std::regex_search(bare, ownsMutex))
                continue;  // The lock itself.
            if (isNonVariableStmt(bare) ||
                bare.find('(') != std::string::npos) {
                continue;  // Methods, nested types, aliases.
            }
            if (bare.rfind("static ", 0) == 0)
                continue;  // shared-mutable-state's business.
            if (allowedSharedDecl(member.text))
                continue;
            report(file, member.line, "unguarded-member",
                   "class " + type.name +
                       " owns a Mutex but member '" +
                       declaredName(bare) +
                       "' declares no locking story; annotate it "
                       "EMV_GUARDED_BY(mutex), EMV_THREAD_CONFINED, "
                       "or make it const/atomic");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: nondeterministic-source
// ---------------------------------------------------------------------

void
checkNondeterministicSource(const fs::path &file,
                            const std::string &rel,
                            const std::vector<std::string> &lines)
{
    // Translation units allowed to read real time: telemetry wall_ms
    // (presentation-only, excluded from checkpoint identity),
    // simulator self-profiling, and the experiment driver's elapsed
    // clock.  Everything else in src/ must be schedule-independent
    // or emv-ckpt-v1 resume breaks.
    static const std::vector<std::string> allowed = {
        "common/telemetry.",
        "common/profile.",
        "sim/experiment.",
    };
    if (matchesAny(rel, allowed))
        return;
    static const std::regex forbidden(
        R"(std::chrono::(steady_clock|system_clock|high_resolution_clock))"
        R"(|std::random_device)"
        R"(|[^_[:alnum:]](time|clock_gettime|gettimeofday|clock)\s*\(\s*(NULL|nullptr|0)?\s*\))"
        R"(|std::hash<[^>]*\*)"
        R"(|reinterpret_cast<\s*std::u?intptr_t)");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::regex_search(lines[i], forbidden)) {
            report(file, static_cast<int>(i + 1),
                   "nondeterministic-source",
                   "wall-clock / entropy / address-dependent value "
                   "in a deterministic sim layer; inject the "
                   "TelemetryRecorder clock or use the seeded Rng "
                   "so checkpointed runs replay byte-identically");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: pragma-once
// ---------------------------------------------------------------------

void
checkPragmaOnce(const fs::path &file, const std::string &stripped)
{
    const auto lines = splitLines(stripped);
    for (const std::string &line : lines) {
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        if (line.compare(first, 12, "#pragma once") == 0)
            return;
        // First non-blank, non-comment token is not the pragma.
        break;
    }
    report(file, 1, "pragma-once",
           "header must open with #pragma once (after the file "
           "comment), not a classic include guard");
}

// ---------------------------------------------------------------------
// Rule: test-coverage
// ---------------------------------------------------------------------

void
checkTestCoverage(const fs::path &root)
{
    // Aggregate suites that intentionally cover several sources.
    static const std::map<std::string, std::string> aliases = {
        {"common/stat_registry.cc", "common/test_stat_export.cc"},
        {"common/audit.cc", "common/test_audit.cc"},
        {"core/differential_auditor.cc",
         "core/test_differential_audit.cc"},
        {"os/process.cc", "os/test_guest_os.cc"},
        {"os/hotplug.cc", "os/test_kernel_pool.cc"},
        {"workload/workload.cc", "workload/test_workloads.cc"},
        {"workload/gups.cc", "workload/test_workloads.cc"},
        {"workload/graph500.cc", "workload/test_workloads.cc"},
        {"workload/memcached.cc", "workload/test_workloads.cc"},
        {"workload/npb_cg.cc", "workload/test_workloads.cc"},
        {"workload/spec.cc", "workload/test_workloads.cc"},
        {"workload/parsec.cc", "workload/test_workloads.cc"},
    };
    const fs::path src = root / "src";
    const fs::path tests = root / "tests";
    for (const auto &entry : fs::recursive_directory_iterator(src)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".cc") {
            continue;
        }
        const std::string rel = relName(entry.path(), src);
        fs::path expected;
        auto alias = aliases.find(rel);
        if (alias != aliases.end()) {
            expected = tests / alias->second;
        } else {
            fs::path p(rel);
            expected = tests / p.parent_path() /
                       ("test_" + p.filename().string());
        }
        if (!fs::exists(expected)) {
            report(entry.path(), 1, "test-coverage",
                   "no test file " + expected.string() +
                       " for this translation unit");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: stat-names
// ---------------------------------------------------------------------

void
checkStatNames(const fs::path &file, const std::string &text)
{
    // Stat identifiers become "machine.mmu.walk_cycles"-style dotted
    // paths in the JSON export; enforce lower_snake_case components.
    static const std::regex call(
        R"((?:\.|->)(counter|scalar|distribution)\s*\(\s*"([^"]*)\")"
        R"(|StatGroup\s*(?:[A-Za-z_][A-Za-z0-9_]*\s*)?[({]\s*"([^"]*)\")");
    static const std::regex good(
        R"([a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*)");
    auto begin = std::sregex_iterator(text.begin(), text.end(), call);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string name =
            (*it)[2].matched ? (*it)[2].str() : (*it)[3].str();
        if (name.empty())
            continue;  // Dynamic names checked at runtime.
        if (!std::regex_match(name, good)) {
            const auto off = static_cast<std::size_t>(it->position());
            const int line = 1 + static_cast<int>(std::count(
                text.begin(), text.begin() + off, '\n'));
            report(file, line, "stat-names",
                   "stat name \"" + name +
                       "\" is not a lower_snake_case dotted path "
                       "(convention: machine.mmu.*)");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const char *rootArg = nullptr;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--rules=", 0) == 0) {
            std::string csv = arg.substr(8);
            std::size_t pos = 0;
            while (pos <= csv.size()) {
                std::size_t comma = csv.find(',', pos);
                if (comma == std::string::npos)
                    comma = csv.size();
                const std::string rule = csv.substr(pos, comma - pos);
                if (!rule.empty())
                    rulesFilter.insert(rule);
                pos = comma + 1;
            }
        } else if (!rootArg) {
            rootArg = argv[i];
        } else {
            rootArg = nullptr;
            break;
        }
    }
    if (!rootArg) {
        std::fprintf(stderr,
                     "usage: %s <repo-root> [--rules=r1,r2,...]\n",
                     argv[0]);
        return 2;
    }
    const fs::path root(rootArg);
    const fs::path src = root / "src";
    if (!fs::is_directory(src)) {
        std::fprintf(stderr, "emv_lint: %s is not a repo root\n",
                     rootArg);
        return 2;
    }

    int scanned = 0;
    for (const auto &entry : fs::recursive_directory_iterator(src)) {
        if (!entry.is_regular_file())
            continue;
        const fs::path &path = entry.path();
        const std::string ext = path.extension().string();
        if (ext != ".cc" && ext != ".hh")
            continue;
        ++scanned;
        const std::string rel = relName(path, src);
        const std::string text = readFile(path);
        const std::string stripped = stripCommentsAndStrings(text);
        const auto lines = splitLines(stripped);

        checkRawRng(path, rel, lines);
        checkRawOutput(path, rel, lines);
        checkNoFatalRecovery(path, rel, lines);
        checkCkptRoundTrip(path, rel, stripped);
        checkHotPathStatLookup(path, rel, stripped);
        if (ext == ".hh")
            checkPragmaOnce(path, stripped);
        checkStatNames(path, text);
        checkNondeterministicSource(path, rel, lines);

        std::vector<Stmt> nsStmts, fnStmts;
        std::vector<TypeScope> types;
        collectScopes(stripped, nsStmts, types, fnStmts);
        checkSharedMutableState(path, rel, nsStmts, types, fnStmts);
        checkUnguardedMember(path, rel, types);
    }
    checkTestCoverage(root);
    finalizeCkptRoundTrip(root);

    std::sort(violations.begin(), violations.end(),
              [](const Violation &a, const Violation &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    for (const auto &v : violations) {
        std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(),
                     v.line, v.rule.c_str(), v.message.c_str());
    }
    std::fprintf(stderr, "emv_lint: %d files scanned, %zu violations\n",
                 scanned, violations.size());
    return violations.empty() ? 0 : 1;
}
