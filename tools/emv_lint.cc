/**
 * @file
 * emv_lint — project-specific static checks for the emv source tree.
 *
 * The general-purpose toolchain (-Wall -Wextra, sanitizers,
 * clang-tidy) cannot express *project* conventions, so this small
 * scanner enforces the ones that keep the simulator deterministic
 * and its output machine-parseable:
 *
 *   raw-rng        no rand()/srand()/std::random_device/time(...)
 *                  seeding outside common/rng — all randomness must
 *                  flow through the seeded SplitMix64/Xoshiro RNG so
 *                  runs are reproducible.
 *   raw-output     no std::cout/std::cerr/printf in src/ outside the
 *                  designated report/trace/logging translation
 *                  units — simulation results must go through the
 *                  stat registry or report layer, not ad-hoc prints.
 *   pragma-once    every header in src/ uses #pragma once.
 *   test-coverage  every .cc in src/ has a matching test file under
 *                  tests/ (with a small alias table for aggregate
 *                  suites).
 *   stat-names     string literals passed to counter()/scalar()/
 *                  distribution()/StatGroup() are lower_snake_case
 *                  dotted paths, matching the exported
 *                  "machine.mmu.*" naming convention.
 *   no-fatal-recovery
 *                  no emv_fatal in recovery-path code (src/fault/
 *                  and sim/machine.cc) — faults there must degrade
 *                  gracefully or produce a structured FaultReport,
 *                  never abort the process.
 *   ckpt-round-trip
 *                  every class exposing a checkpoint serialize()
 *                  must declare the matching deserialize(), and the
 *                  translation unit's test file under tests/ must
 *                  exercise deserialization (a save/restore
 *                  round-trip) — state that can be saved but not
 *                  restored, or restored but never tested, silently
 *                  breaks crash-safe resume.
 *   hot-path-stat-lookup
 *                  no string-keyed StatRegistry lookups (counter(
 *                  "name") and friends) inside the Mmu::translate
 *                  call tree in core/mmu.cc — every translation pays
 *                  for them, so the constructor caches the pointers
 *                  once and the hot path bumps them directly; a
 *                  map lookup per op also skews the telemetry
 *                  throughput meter it feeds.
 *
 * Usage: emv_lint <repo-root>
 * Exits 0 when clean; prints "file:line: [rule] message" per
 * violation and exits 1 otherwise.  Registered as a CTest so a
 * convention regression fails the build's test stage.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation
{
    std::string file;
    int line;
    std::string rule;
    std::string message;
};

std::vector<Violation> violations;

void
report(const fs::path &file, int line, const std::string &rule,
       const std::string &message)
{
    violations.push_back({file.string(), line, rule, message});
}

/** Strip // and /star star/ comments plus string/char literals so the
 *  pattern rules only see real code.  Line structure is preserved. */
std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    enum class State { Code, Line, Block, Str, Chr } state = State::Code;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::Line;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::Block;
                ++i;
            } else if (c == '"') {
                state = State::Str;
                out += '"';
            } else if (c == '\'') {
                state = State::Chr;
                out += '\'';
            } else {
                out += c;
            }
            break;
        case State::Line:
            if (c == '\n') {
                state = State::Code;
                out += '\n';
            }
            break;
        case State::Block:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            } else if (c == '\n') {
                out += '\n';
            }
            break;
        case State::Str:
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                state = State::Code;
                out += '"';
            } else if (c == '\n') {
                out += '\n';  // Unterminated; keep line counts sane.
                state = State::Code;
            }
            break;
        case State::Chr:
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                out += '\'';
            } else if (c == '\n') {
                out += '\n';
                state = State::Code;
            }
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Relative path with '/' separators, e.g. "common/rng.cc". */
std::string
relName(const fs::path &file, const fs::path &root)
{
    std::string rel = fs::relative(file, root).generic_string();
    return rel;
}

bool
matchesAny(const std::string &rel,
           const std::vector<std::string> &prefixes)
{
    return std::any_of(prefixes.begin(), prefixes.end(),
                       [&](const std::string &p) {
                           return rel.rfind(p, 0) == 0;
                       });
}

// ---------------------------------------------------------------------
// Rule: raw-rng
// ---------------------------------------------------------------------

void
checkRawRng(const fs::path &file, const std::string &rel,
            const std::vector<std::string> &lines)
{
    if (rel.rfind("common/rng", 0) == 0)
        return;  // The one blessed home of raw entropy.
    static const std::regex forbidden(
        R"(std::random_device|[^_[:alnum:]](s?rand)\s*\(|[^_[:alnum:]]time\s*\(\s*(NULL|nullptr|0)?\s*\))");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::regex_search(lines[i], forbidden)) {
            report(file, static_cast<int>(i + 1), "raw-rng",
                   "unseeded randomness or wall-clock seeding; use "
                   "common/rng (deterministic, run-seeded) instead");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: raw-output
// ---------------------------------------------------------------------

void
checkRawOutput(const fs::path &file, const std::string &rel,
               const std::vector<std::string> &lines)
{
    // Translation units whose whole job is producing output.
    static const std::vector<std::string> allowed = {
        "common/logging.",   // emv_warn/emv_info/panic plumbing
        "common/trace.",     // EMV_TRACE sink
        "common/json.",      // serializers write to caller streams
        "common/profile.",   // prof::report
        "common/audit.",     // audit failure records
        "sim/report.",       // human-readable result tables
        "sim/experiment.",   // CLI usage/error reporting
    };
    if (matchesAny(rel, allowed))
        return;
    static const std::regex forbidden(
        R"(std::cout|std::cerr|[^_[:alnum:]](f|v|s|sn|vsn)?printf\s*\()");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::smatch m;
        if (std::regex_search(lines[i], m, forbidden)) {
            // Formatting into buffers is fine; writing is not.
            const std::string tok = m.str();
            if (tok.find("snprintf") != std::string::npos ||
                tok.find("vsnprintf") != std::string::npos ||
                tok.find("sprintf") != std::string::npos) {
                continue;
            }
            report(file, static_cast<int>(i + 1), "raw-output",
                   "direct console output in the simulator core; "
                   "route through stats/report/trace layers");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-fatal-recovery
// ---------------------------------------------------------------------

void
checkNoFatalRecovery(const fs::path &file, const std::string &rel,
                     const std::vector<std::string> &lines)
{
    // Recovery-path translation units: the fault subsystem and the
    // machine layer that owns downgrade/retry/offline handling.
    static const std::vector<std::string> recovery_paths = {
        "fault/",
        "sim/machine.cc",
    };
    if (!matchesAny(rel, recovery_paths))
        return;
    static const std::regex forbidden(
        R"((^|[^_[:alnum:]])emv_fatal\s*\()");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::regex_search(lines[i], forbidden)) {
            report(file, static_cast<int>(i + 1),
                   "no-fatal-recovery",
                   "emv_fatal in recovery-path code; degrade "
                   "gracefully (downgrade/retry/offline) or record "
                   "a structured FaultReport instead of aborting");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: ckpt-round-trip
// ---------------------------------------------------------------------

/** Test files (relative to tests/) that must contain a round-trip,
 *  keyed by the source file (relative to src/) that demanded one. */
std::map<std::string, std::string> ckptTestsWanted;

/** tests/ file covering @p rel for checkpoint round-trip purposes. */
std::string
ckptTestFor(const std::string &rel)
{
    // Aggregate suites mirroring the test-coverage alias table: the
    // workload generators share one suite, Process is covered by the
    // guest-OS suite, and the whole-Machine round trip lives with
    // the checkpoint tests rather than the machine behavior tests.
    if (rel.rfind("workload/", 0) == 0)
        return "workload/test_workloads.cc";
    if (rel.rfind("os/process.", 0) == 0)
        return "os/test_guest_os.cc";
    if (rel.rfind("sim/machine.", 0) == 0)
        return "sim/test_checkpoint.cc";
    const fs::path p(rel);
    return (p.parent_path() /
            ("test_" + p.stem().string() + ".cc")).generic_string();
}

void
checkCkptRoundTrip(const fs::path &file, const std::string &rel,
                   const std::string &stripped)
{
    // Checkpoint entry points: declarations or definitions taking a
    // ckpt:: stream type.  Call sites pass variables, not qualified
    // types, so they do not match.
    static const std::regex method(
        R"((?:([A-Za-z_][A-Za-z0-9_]*)\s*::\s*)?(de)?serialize\s*\()"
        R"(\s*(?:const\s+)?(?:emv::)?ckpt::(Encoder|Decoder|Writer|Reader))");
    static const std::regex classDecl(
        R"((?:class|struct)\s+([A-Za-z_][A-Za-z0-9_]*))");

    // Class/struct name positions, for attributing in-class
    // declarations to their owner.
    std::vector<std::pair<std::size_t, std::string>> owners;
    for (auto it = std::sregex_iterator(stripped.begin(),
                                        stripped.end(), classDecl);
         it != std::sregex_iterator(); ++it) {
        owners.emplace_back(static_cast<std::size_t>(it->position()),
                            (*it)[1].str());
    }

    struct Halves { bool ser = false; bool deser = false; int line = 0; };
    std::map<std::string, Halves> classes;
    for (auto it = std::sregex_iterator(stripped.begin(),
                                        stripped.end(), method);
         it != std::sregex_iterator(); ++it) {
        const auto pos = static_cast<std::size_t>(it->position());
        std::string owner = (*it)[1].str();
        if (owner.empty()) {
            // In-class declaration: nearest preceding class name.
            for (const auto &[at, name] : owners) {
                if (at > pos)
                    break;
                owner = name;
            }
            if (owner.empty())
                continue;  // Free function; not a class contract.
        }
        Halves &h = classes[owner];
        if ((*it)[2].matched)
            h.deser = true;
        else
            h.ser = true;
        if (h.line == 0) {
            h.line = 1 + static_cast<int>(std::count(
                stripped.begin(), stripped.begin() + pos, '\n'));
        }
    }

    bool any_serialize = false;
    for (const auto &[name, h] : classes) {
        any_serialize |= h.ser;
        if (h.ser && !h.deser) {
            report(file, h.line, "ckpt-round-trip",
                   "class " + name + " exposes serialize() without "
                   "a matching deserialize(); checkpoints it writes "
                   "could never be restored");
        } else if (h.deser && !h.ser) {
            report(file, h.line, "ckpt-round-trip",
                   "class " + name + " exposes deserialize() "
                   "without a matching serialize()");
        }
    }
    if (any_serialize)
        ckptTestsWanted.emplace(ckptTestFor(rel), rel);
}

/** After the scan: every demanded test file must restore state. */
void
finalizeCkptRoundTrip(const fs::path &root)
{
    for (const auto &[test_rel, src_rel] : ckptTestsWanted) {
        const fs::path test = root / "tests" / test_rel;
        bool restores = false;
        if (fs::exists(test)) {
            const std::string text = readFile(test);
            // Either a direct deserialize() call or the shared
            // test_support.hh ckptRestore() helper counts.
            restores =
                text.find("deserialize") != std::string::npos ||
                text.find("ckptRestore") != std::string::npos ||
                text.find("restoreMachine") != std::string::npos;
        }
        if (!restores) {
            report(root / "src" / src_rel, 1, "ckpt-round-trip",
                   "serializable state with no save/restore "
                   "round-trip test; " + test.string() +
                       " must exercise deserialize()");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: hot-path-stat-lookup
// ---------------------------------------------------------------------

void
checkHotPathStatLookup(const fs::path &file, const std::string &rel,
                       const std::string &stripped)
{
    if (rel != "core/mmu.cc")
        return;
    // The translate call tree: everything a single translation can
    // execute.  Cold control-plane methods (set*/flush*/fraction*)
    // may look stats up by name; these may not.
    static const char *const hot[] = {
        "translate", "translateImpl", "doWalk",
        "nestedToHost", "segmentToHost", "priceTrace",
    };
    static const std::regex lookup(
        R"((counter|scalar|distribution|counterValue|scalarValue)\s*\(\s*")");
    for (const char *name : hot) {
        const std::regex def("Mmu::" + std::string(name) +
                             R"(\s*\()");
        auto from = stripped.cbegin();
        std::smatch m;
        while (std::regex_search(from, stripped.cend(), m, def)) {
            auto it = m[0].second;
            // Find the body; a ';' first would mean a declaration.
            while (it != stripped.cend() && *it != '{' && *it != ';')
                ++it;
            if (it == stripped.cend() || *it == ';') {
                from = it;
                continue;
            }
            int depth = 0;
            const auto body_begin = it;
            for (; it != stripped.cend(); ++it) {
                if (*it == '{')
                    ++depth;
                else if (*it == '}' && --depth == 0)
                    break;
            }
            const std::string body(body_begin, it);
            std::smatch hit;
            if (std::regex_search(body, hit, lookup)) {
                const auto off = static_cast<std::size_t>(
                    (body_begin - stripped.cbegin()) +
                    hit.position());
                const int line = 1 + static_cast<int>(std::count(
                    stripped.begin(), stripped.begin() + off, '\n'));
                report(file, line, "hot-path-stat-lookup",
                       "string-keyed stat lookup inside Mmu::" +
                           std::string(name) +
                           "; cache the counter/scalar pointer in "
                           "the constructor and bump it directly");
            }
            from = it;
        }
    }
}

// ---------------------------------------------------------------------
// Rule: pragma-once
// ---------------------------------------------------------------------

void
checkPragmaOnce(const fs::path &file, const std::string &stripped)
{
    const auto lines = splitLines(stripped);
    for (const std::string &line : lines) {
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        if (line.compare(first, 12, "#pragma once") == 0)
            return;
        // First non-blank, non-comment token is not the pragma.
        break;
    }
    report(file, 1, "pragma-once",
           "header must open with #pragma once (after the file "
           "comment), not a classic include guard");
}

// ---------------------------------------------------------------------
// Rule: test-coverage
// ---------------------------------------------------------------------

void
checkTestCoverage(const fs::path &root)
{
    // Aggregate suites that intentionally cover several sources.
    static const std::map<std::string, std::string> aliases = {
        {"common/stat_registry.cc", "common/test_stat_export.cc"},
        {"common/audit.cc", "common/test_audit.cc"},
        {"core/differential_auditor.cc",
         "core/test_differential_audit.cc"},
        {"os/process.cc", "os/test_guest_os.cc"},
        {"os/hotplug.cc", "os/test_kernel_pool.cc"},
        {"workload/workload.cc", "workload/test_workloads.cc"},
        {"workload/gups.cc", "workload/test_workloads.cc"},
        {"workload/graph500.cc", "workload/test_workloads.cc"},
        {"workload/memcached.cc", "workload/test_workloads.cc"},
        {"workload/npb_cg.cc", "workload/test_workloads.cc"},
        {"workload/spec.cc", "workload/test_workloads.cc"},
        {"workload/parsec.cc", "workload/test_workloads.cc"},
    };
    const fs::path src = root / "src";
    const fs::path tests = root / "tests";
    for (const auto &entry : fs::recursive_directory_iterator(src)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".cc") {
            continue;
        }
        const std::string rel = relName(entry.path(), src);
        fs::path expected;
        auto alias = aliases.find(rel);
        if (alias != aliases.end()) {
            expected = tests / alias->second;
        } else {
            fs::path p(rel);
            expected = tests / p.parent_path() /
                       ("test_" + p.filename().string());
        }
        if (!fs::exists(expected)) {
            report(entry.path(), 1, "test-coverage",
                   "no test file " + expected.string() +
                       " for this translation unit");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: stat-names
// ---------------------------------------------------------------------

void
checkStatNames(const fs::path &file, const std::string &text)
{
    // Stat identifiers become "machine.mmu.walk_cycles"-style dotted
    // paths in the JSON export; enforce lower_snake_case components.
    static const std::regex call(
        R"((?:\.|->)(counter|scalar|distribution)\s*\(\s*"([^"]*)\")"
        R"(|StatGroup\s*(?:[A-Za-z_][A-Za-z0-9_]*\s*)?[({]\s*"([^"]*)\")");
    static const std::regex good(
        R"([a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*)");
    auto begin = std::sregex_iterator(text.begin(), text.end(), call);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string name =
            (*it)[2].matched ? (*it)[2].str() : (*it)[3].str();
        if (name.empty())
            continue;  // Dynamic names checked at runtime.
        if (!std::regex_match(name, good)) {
            const auto off = static_cast<std::size_t>(it->position());
            const int line = 1 + static_cast<int>(std::count(
                text.begin(), text.begin() + off, '\n'));
            report(file, line, "stat-names",
                   "stat name \"" + name +
                       "\" is not a lower_snake_case dotted path "
                       "(convention: machine.mmu.*)");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <repo-root>\n", argv[0]);
        return 2;
    }
    const fs::path root(argv[1]);
    const fs::path src = root / "src";
    if (!fs::is_directory(src)) {
        std::fprintf(stderr, "emv_lint: %s is not a repo root\n",
                     argv[1]);
        return 2;
    }

    int scanned = 0;
    for (const auto &entry : fs::recursive_directory_iterator(src)) {
        if (!entry.is_regular_file())
            continue;
        const fs::path &path = entry.path();
        const std::string ext = path.extension().string();
        if (ext != ".cc" && ext != ".hh")
            continue;
        ++scanned;
        const std::string rel = relName(path, src);
        const std::string text = readFile(path);
        const std::string stripped = stripCommentsAndStrings(text);
        const auto lines = splitLines(stripped);

        checkRawRng(path, rel, lines);
        checkRawOutput(path, rel, lines);
        checkNoFatalRecovery(path, rel, lines);
        checkCkptRoundTrip(path, rel, stripped);
        checkHotPathStatLookup(path, rel, stripped);
        if (ext == ".hh")
            checkPragmaOnce(path, stripped);
        checkStatNames(path, text);
    }
    checkTestCoverage(root);
    finalizeCkptRoundTrip(root);

    std::sort(violations.begin(), violations.end(),
              [](const Violation &a, const Violation &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    for (const auto &v : violations) {
        std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(),
                     v.line, v.rule.c_str(), v.message.c_str());
    }
    std::fprintf(stderr, "emv_lint: %d files scanned, %zu violations\n",
                 scanned, violations.size());
    return violations.empty() ? 0 : 1;
}
