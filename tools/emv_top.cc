/**
 * @file
 * emv_top — live fleet monitor over emv-metrics-v1 JSONL streams.
 *
 * Tails one metrics file per shard (each written by `emvsim
 * metrics=...`, one atomically-flushed JSON object per window) and
 * renders a refreshing one-line-per-shard view:
 *
 *   SHARD                WIN        OPS    OPS/SEC      P99     P999  FILL  MODE
 *   fleet-out/shard-0      4     500000   12.3M/s        38       72  0.02  Dual Direct
 *
 * Columns: last closed window index, cumulative ops, wall-clock
 * simulation rate of the last window, modeled-latency tail cycles
 * (p99/p999 of the last window), guest escape-filter fill and the
 * translation mode at window close.  A trailing `*` after MODE
 * flags windows that carried events (mode transitions, faults).
 *
 * Because every line in the stream is written with a single
 * fwrite+flush, the reader only ever sees whole records; a torn
 * final line (file mid-write on a slow filesystem) is simply
 * ignored until it completes.
 *
 * Usage:
 *   emv_top [--once] [--interval=SEC] <metrics.jsonl>...
 *
 *   --once          render a single frame and exit (no ANSI clear);
 *                   exit 1 when no file yielded a complete record —
 *                   the CI smoke-test contract.
 *   --interval=SEC  refresh period (default 2).
 *
 * Exit codes: 0 ok, 1 usage error or (--once) no data.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/json.hh"

namespace {

/** What one rendered row needs from the newest window record. */
struct ShardView
{
    std::string path;
    bool valid = false;
    std::uint64_t window = 0;
    std::uint64_t opEnd = 0;
    double opsPerSec = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double filterFill = 0.0;
    std::string mode;
    bool hadEvents = false;
};

/**
 * Last complete (newline-terminated) line of @p path; empty when the
 * file is missing, empty, or holds only a torn partial line.
 */
std::string
lastCompleteLine(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    // Drop any torn trailing fragment: everything after the last
    // newline is a write in flight.
    const auto tail = text.rfind('\n');
    if (tail == std::string::npos)
        return "";
    text.resize(tail);  // text now ends with a complete line.
    const auto prev = text.rfind('\n');
    return prev == std::string::npos ? text : text.substr(prev + 1);
}

double
numberOr(const emv::json::Value *v, double fallback)
{
    return v && v->isNumber() && std::isfinite(v->number) ? v->number
                                                          : fallback;
}

ShardView
readShard(const std::string &path)
{
    ShardView view;
    view.path = path;
    const std::string line = lastCompleteLine(path);
    if (line.empty())
        return view;
    emv::json::Value doc;
    if (!emv::json::parse(line, doc) || !doc.isObject())
        return view;
    const auto *schema = doc.find("schema");
    if (!schema || schema->string != "emv-metrics-v1")
        return view;

    view.valid = true;
    view.window = static_cast<std::uint64_t>(
        numberOr(doc.find("window"), 0.0));
    view.opEnd = static_cast<std::uint64_t>(
        numberOr(doc.find("op_end"), 0.0));
    if (const auto *rate = doc.find("rate"))
        view.opsPerSec = numberOr(rate->find("ops_per_sec"), 0.0);
    if (const auto *latency = doc.find("latency")) {
        view.p99 = numberOr(latency->find("p99"), 0.0);
        view.p999 = numberOr(latency->find("p999"), 0.0);
    }
    if (const auto *gauges = doc.find("gauges")) {
        view.filterFill =
            numberOr(gauges->find("guest_filter_fill"), 0.0);
    }
    if (const auto *mode = doc.find("mode");
        mode && mode->kind == emv::json::Value::Kind::String) {
        view.mode = mode->string;
    }
    if (const auto *events = doc.find("events"))
        view.hadEvents = events->isArray() && !events->array.empty();
    return view;
}

/** "12.3M/s" style rate. */
std::string
rateStr(double ops_per_sec)
{
    char buf[32];
    if (ops_per_sec >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.1fM/s", ops_per_sec / 1e6);
    else if (ops_per_sec >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fK/s", ops_per_sec / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f/s", ops_per_sec);
    return buf;
}

/** One frame: header + one row per shard.  @return rows with data. */
unsigned
render(const std::vector<std::string> &paths)
{
    unsigned live = 0;
    std::printf("%-28s %6s %10s %10s %8s %8s %6s  %s\n", "SHARD",
                "WIN", "OPS", "OPS/SEC", "P99", "P999", "FILL",
                "MODE");
    for (const auto &path : paths) {
        const ShardView view = readShard(path);
        if (!view.valid) {
            std::printf("%-28s %s\n", path.c_str(), "(no data)");
            continue;
        }
        ++live;
        std::printf("%-28s %6llu %10llu %10s %8.0f %8.0f %6.2f  "
                    "%s%s\n",
                    view.path.c_str(),
                    static_cast<unsigned long long>(view.window),
                    static_cast<unsigned long long>(view.opEnd),
                    rateStr(view.opsPerSec).c_str(), view.p99,
                    view.p999, view.filterFill, view.mode.c_str(),
                    view.hadEvents ? " *" : "");
    }
    return live;
}

} // namespace

int
main(int argc, char **argv)
{
    bool once = false;
    double interval = 2.0;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("usage: emv_top [--once] [--interval=SEC] "
                        "<metrics.jsonl>...\n");
            return 0;
        }
        if (arg == "--once") {
            once = true;
        } else if (arg.rfind("--interval=", 0) == 0) {
            interval = std::atof(arg.c_str() + 11);
            if (interval <= 0.0) {
                std::fprintf(stderr,
                             "emv_top: bad interval '%s'\n",
                             arg.c_str());
                return 1;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "emv_top: unknown option '%s'\n",
                         arg.c_str());
            return 1;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr, "usage: emv_top [--once] "
                             "[--interval=SEC] <metrics.jsonl>...\n");
        return 1;
    }

    if (once)
        return render(paths) > 0 ? 0 : 1;

    for (;;) {
        // Home + clear-to-end keeps the frame flicker-free on any
        // VT100-compatible terminal.
        std::printf("\x1b[H\x1b[2J");
        render(paths);
        std::fflush(stdout);
        timespec nap{};
        nap.tv_sec = static_cast<time_t>(interval);
        nap.tv_nsec = static_cast<long>(
            (interval - static_cast<double>(nap.tv_sec)) * 1e9);
        nanosleep(&nap, nullptr);
    }
}
