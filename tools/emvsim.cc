/**
 * @file
 * emvsim — command-line driver for one (workload, configuration)
 * cell, with full statistics dump.
 *
 * Usage:
 *   emvsim [workload=gups] [config=4K+4K] [scale=0.25]
 *          [ops=1000000] [warmup=200000] [seed=42] [badframes=0]
 *          [fragguest=0] [fraghost=0] [stats=1]
 *          [statsjson=stats.json] [trace=Tlb,Walk]
 *          [tracefile=trace.log] [profile=1] [audit=1]
 *          [faults=dram@5000x8] [policy=degrade] [faultseed=7]
 *
 * Arguments are strictly validated: anything that is not a known
 * `key=value` pair (a typo like `tracefil=t.log`, a bare word, an
 * unknown key) is a usage error.  `--help` lists every knob.
 *
 * `config` accepts the paper's labels: 4K 2M 1G THP, A+B combos,
 * DS DD 4K+VD 4K+GD 2M+VD THP+VD sh4K sh2M ...
 * `fragguest`/`fraghost` set the max free-run size in MB (0 = no
 * fragmentation).
 *
 * Observability:
 *   statsjson=PATH   dump every stat group as emv-stats-v1 JSON.
 *   trace=FLAGS      comma-separated debug-trace flags (Tlb, Walk,
 *                    Segment, Filter, Balloon, Compaction, Vmm,
 *                    Hotplug, Fault, or All).
 *   tracefile=PATH   send trace records to PATH instead of stderr.
 *   profile=1        print a phase-timing summary (RAII timers).
 *   audit=1          enable runtime invariants plus the differential
 *                    auditor: every MMU translation is re-derived
 *                    through the reference 2D nested walk and
 *                    compared.  Results appear as machine.audit.*
 *                    stats; any mismatch makes emvsim exit 1.
 *
 * Fault injection:
 *   faults=SPEC      schedule of mid-run faults at trace-op
 *                    granularity: "kind@op[xCOUNT],..." with kinds
 *                    dram guestpte nestedpte filtersat balloonfail
 *                    hotplugfail compactfail slotrevoke.
 *   policy=POLICY    degrade (recover: offline frames, retry with
 *                    backoff, downgrade modes along Table III) or
 *                    failfast (first hardware fault ends the run
 *                    with a structured report and exit code 2).
 *   faultseed=N      seed for victim selection and filter noise.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/profile.hh"
#include "fault/fault_plan.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace emv;

namespace {

/** Every accepted key=value knob, with its help line. */
struct Knob
{
    const char *key;
    const char *help;
};

constexpr Knob kKnobs[] = {
    {"workload", "gups graph500 memcached npb:cg cactusADM GemsFDTD "
                 "mcf omnetpp canneal streamcluster (default gups)"},
    {"config", "paper label: 4K 2M 1G THP A+B DS DD 4K+VD 4K+GD "
               "sh4K sh2M ... (default 4K+4K)"},
    {"scale", "workload footprint scale (default 0.25)"},
    {"ops", "measured trace ops (default 1000000)"},
    {"warmup", "warmup trace ops (default 200000)"},
    {"seed", "workload / machine seed (default 42)"},
    {"badframes", "boot-time hard faults in the segment backing "
                  "(Fig. 13; default 0)"},
    {"fragguest", "guest fragmentation: max free-run MB (0 = off)"},
    {"fraghost", "host fragmentation: max free-run MB (0 = off)"},
    {"stats", "print counter dumps (default 1)"},
    {"statsjson", "dump every stat group as emv-stats-v1 JSON"},
    {"trace", "debug-trace flags, e.g. Tlb,Walk or All"},
    {"tracefile", "send trace records to this file"},
    {"profile", "print a phase-timing summary (default 0)"},
    {"audit", "differential audit; mismatches exit 1 (default 0)"},
    {"faults", "mid-run fault schedule, e.g. "
               "dram@5000x8,balloonfail@7000,filtersat@9000"},
    {"policy", "fault policy: degrade (default) or failfast"},
    {"faultseed", "fault victim-selection seed (default 7)"},
};

void
printUsage(std::FILE *out)
{
    std::fprintf(out, "usage: emvsim [key=value]...\n\n");
    for (const auto &knob : kKnobs)
        std::fprintf(out, "  %-10s %s\n", knob.key, knob.help);
}

bool
knownKey(const std::string &key)
{
    for (const auto &knob : kKnobs) {
        if (key == knob.key)
            return true;
    }
    return false;
}

/** Reject anything that is not `known_key=value`. */
bool
validateArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            std::fprintf(stderr, "emvsim: malformed argument '%s' "
                         "(expected key=value)\n", arg.c_str());
            return false;
        }
        const std::string key = arg.substr(0, eq);
        if (!knownKey(key)) {
            std::fprintf(stderr, "emvsim: unknown argument '%s'\n",
                         key.c_str());
            return false;
        }
    }
    return true;
}

const char *
argValue(int argc, char **argv, const char *key)
{
    const std::size_t len = std::strlen(key);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], key, len) == 0 &&
            argv[i][len] == '=') {
            return argv[i] + len + 1;
        }
    }
    return nullptr;
}

std::optional<workload::WorkloadKind>
workloadByName(const std::string &name)
{
    using workload::WorkloadKind;
    for (auto kind :
         {WorkloadKind::Gups, WorkloadKind::Graph500,
          WorkloadKind::Memcached, WorkloadKind::NpbCg,
          WorkloadKind::CactusADM, WorkloadKind::GemsFDTD,
          WorkloadKind::Mcf, WorkloadKind::Omnetpp,
          WorkloadKind::Canneal, WorkloadKind::Streamcluster}) {
        if (name == workload::workloadName(kind))
            return kind;
    }
    return std::nullopt;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h" || arg == "help") {
            printUsage(stdout);
            return 0;
        }
    }
    if (!validateArgs(argc, argv)) {
        std::fprintf(stderr, "\n");
        printUsage(stderr);
        return 2;
    }

    const std::string wl_name =
        argValue(argc, argv, "workload") ?: "gups";
    const std::string config_label =
        argValue(argc, argv, "config") ?: "4K+4K";

    auto kind = workloadByName(wl_name);
    if (!kind) {
        std::fprintf(stderr,
                     "unknown workload '%s'; one of: gups graph500 "
                     "memcached npb:cg cactusADM GemsFDTD mcf "
                     "omnetpp canneal streamcluster\n",
                     wl_name.c_str());
        return 2;
    }
    auto spec = sim::specFromLabel(config_label);
    if (!spec) {
        std::fprintf(stderr, "unknown config label '%s'\n",
                     config_label.c_str());
        return 2;
    }

    sim::RunParams params;
    params.scale = 0.25;
    params.warmupOps = 200000;
    params.measureOps = 1000000;
    if (const char *v = argValue(argc, argv, "scale"))
        params.scale = std::atof(v);
    if (const char *v = argValue(argc, argv, "ops"))
        params.measureOps = std::strtoull(v, nullptr, 10);
    if (const char *v = argValue(argc, argv, "warmup"))
        params.warmupOps = std::strtoull(v, nullptr, 10);
    if (const char *v = argValue(argc, argv, "seed"))
        params.seed = std::strtoull(v, nullptr, 10);
    if (const char *v = argValue(argc, argv, "badframes"))
        params.badFrames = static_cast<unsigned>(std::atoi(v));
    if (const char *v = argValue(argc, argv, "statsjson"))
        params.statsJsonPath = v;
    if (const char *v = argValue(argc, argv, "trace"))
        params.traceFlags = v;
    if (const char *v = argValue(argc, argv, "tracefile"))
        params.traceFilePath = v;
    if (const char *v = argValue(argc, argv, "profile"))
        params.profile = std::atoi(v) != 0;
    if (const char *v = argValue(argc, argv, "audit"))
        params.audit = std::atoi(v) != 0;
    if (const char *v = argValue(argc, argv, "faults")) {
        if (!fault::FaultPlan::parse(v)) {
            std::fprintf(stderr, "emvsim: bad fault spec '%s' "
                         "(expected kind@op[xCOUNT],...)\n", v);
            return 2;
        }
        params.faultSpec = v;
    }
    if (const char *v = argValue(argc, argv, "policy")) {
        if (!fault::faultPolicyByName(v)) {
            std::fprintf(stderr, "emvsim: bad fault policy '%s' "
                         "(degrade or failfast)\n", v);
            return 2;
        }
        params.faultPolicy = v;
    }
    if (const char *v = argValue(argc, argv, "faultseed"))
        params.faultSeed = std::strtoull(v, nullptr, 10);
    params.applyObservability();

    auto wl = workload::makeWorkload(*kind, params.seed,
                                     params.scale);
    auto cfg = sim::makeMachineConfig(*spec, params);
    if (const char *v = argValue(argc, argv, "fragguest")) {
        if (std::atoi(v) > 0) {
            cfg.guestFragmentation.enabled = true;
            cfg.guestFragmentation.maxRunBytes =
                static_cast<Addr>(std::atoi(v)) * MiB;
        }
    }
    if (const char *v = argValue(argc, argv, "fraghost")) {
        if (std::atoi(v) > 0) {
            cfg.hostFragmentation.enabled = true;
            cfg.hostFragmentation.maxRunBytes =
                static_cast<Addr>(std::atoi(v)) * MiB;
            cfg.contiguousHostReservation = false;
        }
    }

    std::printf("emvsim: %s under %s (scale=%.3g, %s footprint)\n",
                wl->info().name.c_str(), config_label.c_str(),
                params.scale,
                sim::bytesStr(wl->info().footprintBytes).c_str());
    if (!params.faultSpec.empty()) {
        std::printf("fault plan: %s (policy=%s)\n",
                    params.faultSpec.c_str(),
                    params.faultPolicy.c_str());
    }

    sim::Machine machine(cfg, *wl);
    machine.run(params.warmupOps);
    machine.resetStats();
    auto run = machine.run(params.measureOps);

    std::printf("\n-- results --\n");
    std::printf("translation overhead: %s\n",
                sim::pct(run.translationOverhead()).c_str());
    std::printf("total overhead:       %s\n",
                sim::pct(run.totalOverhead()).c_str());
    std::printf("L1 misses:            %llu\n",
                static_cast<unsigned long long>(run.l1Misses));
    std::printf("L2 misses (walks):    %llu (%llu)\n",
                static_cast<unsigned long long>(run.l2Misses),
                static_cast<unsigned long long>(run.walks));
    std::printf("cycles per walk:      %.1f\n", run.cyclesPerWalk);
    std::printf("coverage F_VD/F_GD/F_DD: %s / %s / %s\n",
                sim::pct(run.fractionVmmOnly).c_str(),
                sim::pct(run.fractionGuestOnly).c_str(),
                sim::pct(run.fractionBoth).c_str());
    std::printf("guest segment: %s\nVMM segment:   %s\n",
                machine.guestSegment().toString().c_str(),
                machine.vmmSegment().toString().c_str());
    if (!params.faultSpec.empty()) {
        std::printf("final mode:    %s\n",
                    core::modeName(machine.config().mode));
    }

    const char *stats_arg = argValue(argc, argv, "stats");
    if (!stats_arg || std::atoi(stats_arg) != 0) {
        std::printf("\n-- mmu counters --\n");
        machine.mmu().stats().dump(std::cout);
        if (machine.vm()) {
            std::printf("\n-- vm counters --\n");
            machine.vm()->stats().dump(std::cout);
        }
        std::printf("\n-- os counters --\n");
        machine.os().stats().dump(std::cout);
        if (!params.faultSpec.empty()) {
            std::printf("\n-- fault counters --\n");
            machine.faultInjector().stats().dump(std::cout);
        }
    }

    if (!params.statsJsonPath.empty()) {
        if (sim::writeStatsJson(params.statsJsonPath)) {
            std::printf("\nwrote %s\n",
                        params.statsJsonPath.c_str());
        } else {
            std::fprintf(stderr, "cannot write '%s'\n",
                         params.statsJsonPath.c_str());
            return 1;
        }
    }
    if (params.profile) {
        std::printf("\n");
        prof::report(std::cout);
    }
    if (params.audit) {
        std::printf("\naudit checks:     %llu\n"
                    "audit mismatches: %llu\n",
                    static_cast<unsigned long long>(
                        audit::checkCount()),
                    static_cast<unsigned long long>(
                        audit::mismatchCount()));
    }

    // A terminal fault is a clean, structured, non-zero exit — not
    // an abort: stats and JSON above still reflect the partial run.
    if (const auto *terminal = machine.terminalFault()) {
        std::printf("\n-- terminal fault --\n"
                    "reason: %s\n"
                    "space:  %s\n"
                    "addr:   %s\n"
                    "op:     %llu\n",
                    terminal->reason.c_str(),
                    core::toString(terminal->space),
                    hexAddr(terminal->addr).c_str(),
                    static_cast<unsigned long long>(
                        terminal->opIndex));
        return 2;
    }
    if (params.audit && (audit::mismatchCount() != 0 ||
                         audit::failureCount() != 0)) {
        return 1;
    }
    return 0;
}
