/**
 * @file
 * emvsim — command-line driver for one (workload, configuration)
 * cell, with full statistics dump and crash-safe checkpointing.
 *
 * Usage:
 *   emvsim [workload=gups] [config=4K+4K] [scale=0.25]
 *          [ops=1000000] [warmup=200000] [seed=42] [badframes=0]
 *          [fragguest=0] [fraghost=0] [stats=1]
 *          [statsjson=stats.json] [metrics=out.jsonl]
 *          [window=100000] [trace=Tlb,Walk]
 *          [tracefile=trace.log] [profile=1] [audit=1]
 *          [faults=dram@5000x8] [policy=degrade] [faultseed=7]
 *          [ckpt=run.ckpt] [ckptevery=100000] [resume=run.ckpt]
 *          [stopafter=N] [crashafter=N] [hangafter=N] [threads=N]
 *
 * Arguments are strictly validated: anything that is not a known
 * `key=value` pair (a typo like `tracefil=t.log`, a bare word, an
 * unknown key) is a usage error.  `--help` lists every knob.
 *
 * `config` accepts the paper's labels: 4K 2M 1G THP, A+B combos,
 * DS DD 4K+VD 4K+GD 2M+VD THP+VD sh4K sh2M ...
 * `fragguest`/`fraghost` set the max free-run size in MB (0 = no
 * fragmentation).
 *
 * Checkpoint / resume (emv-ckpt-v1; see DESIGN.md §10):
 *   ckpt=PATH        write checkpoints to PATH (atomic write+rename;
 *                    a crash mid-write never destroys the last good
 *                    file).  Written every `ckptevery` ops, on
 *                    SIGTERM/SIGINT, and at normal completion.
 *   ckptevery=N      periodic checkpoint interval in trace ops
 *                    (warmup + measured; requires ckpt=).
 *   resume=PATH      restore a checkpointed run and continue it.
 *                    The run's identity (workload, config, seeds,
 *                    fault plan, op counts) comes from the
 *                    checkpoint; only observability and checkpoint
 *                    knobs may be combined with resume=.  A resumed
 *                    run finishes with stats output bit-identical
 *                    to the uninterrupted run.
 *
 * Test knobs (deterministic interruption points, in total trace
 * ops; fresh runs only — they cannot be combined with resume=):
 *   stopafter=N      stop at op N exactly as if SIGTERM had arrived:
 *                    flush a final checkpoint (when ckpt= is set)
 *                    and exit 3.
 *   crashafter=N     raise SIGKILL at op N (simulated hard crash).
 *   hangafter=N      stop making progress at op N (simulated hang;
 *                    for watchdog tests).
 *
 * Exit codes:
 *   0  run completed; no audit mismatches.
 *   1  usage error, audit mismatch, or unreadable/corrupt
 *      checkpoint (structured message on stderr).
 *   2  terminal fault ended the run (structured report printed).
 *   3  interrupted (signal or stopafter); when ckpt= was set, a
 *      final checkpoint was flushed and the run can be resumed.
 *
 * Observability:
 *   statsjson=PATH   dump every stat group as emv-stats-v1 JSON.
 *   metrics=PATH     stream emv-metrics-v1 windowed snapshots (one
 *                    JSON object per line) to PATH over the measured
 *                    interval: per-window counter deltas, wall-clock
 *                    ops/sec, latency percentiles (p50/p99/p999),
 *                    escape-filter fill, mode transitions and fault
 *                    events.  The file is truncated at open; each
 *                    line is written atomically so `emv_top` can
 *                    tail it live.  Works with resume=: a resumed
 *                    run restores its window cursor from the
 *                    checkpoint and continues at the next window.
 *   window=N         telemetry window size in measured trace ops
 *                    (default 100000; requires metrics=).
 *   trace=FLAGS      comma-separated debug-trace flags (Tlb, Walk,
 *                    Segment, Filter, Balloon, Compaction, Vmm,
 *                    Hotplug, Fault, or All).
 *   tracefile=PATH   send trace records to PATH instead of stderr.
 *   profile=1        print a phase-timing summary (RAII timers).
 *   audit=1          enable runtime invariants plus the differential
 *                    auditor: every MMU translation is re-derived
 *                    through the reference 2D nested walk and
 *                    compared.  Results appear as machine.audit.*
 *                    stats; any mismatch makes emvsim exit 1.
 *
 * Fault injection:
 * Parallel smoke:
 *   threads=N        run N independent machines on N worker threads
 *                    in one process, all sharing the stat registry,
 *                    audit counters and (with metrics=) one
 *                    telemetry recorder.  Machine t runs the same
 *                    workload with seed+t.  This is the concurrency
 *                    smoke for the in-process parallel engine (run
 *                    it under the tsan preset); checkpoint/resume,
 *                    the interruption test knobs and statsjson= are
 *                    serial-only and rejected with threads>1.
 *
 *   faults=SPEC      schedule of mid-run faults at trace-op
 *                    granularity: "kind@op[xCOUNT],..." with kinds
 *                    dram guestpte nestedpte filtersat balloonfail
 *                    hotplugfail compactfail slotrevoke.
 *   policy=POLICY    degrade (recover: offline frames, retry with
 *                    backoff, downgrade modes along Table III) or
 *                    failfast (first hardware fault ends the run
 *                    with a structured report and exit code 2).
 *   faultseed=N      seed for victim selection and filter noise.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/profile.hh"
#include "common/telemetry.hh"
#include "fault/fault_plan.hh"
#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace emv;

namespace {

/** Largest run() slice between interruption checks. */
constexpr std::uint64_t kSubChunkOps = 65536;

/** Exit codes (documented above and in README.md). */
enum ExitCode : int {
    kExitOk = 0,
    kExitUsageOrAudit = 1,
    kExitTerminalFault = 2,
    kExitInterrupted = 3,
};

/** Every accepted key=value knob, with its help line. */
struct Knob
{
    const char *key;
    const char *help;
};

constexpr Knob kKnobs[] = {
    {"workload", "gups graph500 memcached npb:cg cactusADM GemsFDTD "
                 "mcf omnetpp canneal streamcluster (default gups)"},
    {"config", "paper label: 4K 2M 1G THP A+B DS DD 4K+VD 4K+GD "
               "sh4K sh2M ... (default 4K+4K)"},
    {"scale", "workload footprint scale (default 0.25)"},
    {"ops", "measured trace ops (default 1000000)"},
    {"warmup", "warmup trace ops (default 200000)"},
    {"seed", "workload / machine seed (default 42)"},
    {"badframes", "boot-time hard faults in the segment backing "
                  "(Fig. 13; default 0)"},
    {"fragguest", "guest fragmentation: max free-run MB (0 = off)"},
    {"fraghost", "host fragmentation: max free-run MB (0 = off)"},
    {"stats", "print counter dumps (default 1)"},
    {"statsjson", "dump every stat group as emv-stats-v1 JSON"},
    {"metrics", "stream emv-metrics-v1 windowed snapshots to this "
                "JSONL path (tail with emv_top)"},
    {"window", "telemetry window size in measured trace ops "
               "(default 100000; requires metrics=)"},
    {"trace", "debug-trace flags, e.g. Tlb,Walk or All"},
    {"tracefile", "send trace records to this file"},
    {"profile", "print a phase-timing summary (default 0)"},
    {"audit", "differential audit; mismatches exit 1 (default 0)"},
    {"faults", "mid-run fault schedule, e.g. "
               "dram@5000x8,balloonfail@7000,filtersat@9000"},
    {"policy", "fault policy: degrade (default) or failfast"},
    {"faultseed", "fault victim-selection seed (default 7)"},
    {"ckpt", "write emv-ckpt-v1 checkpoints to this path (atomic "
             "write+rename; also flushed on SIGTERM/SIGINT)"},
    {"ckptevery", "periodic checkpoint interval in trace ops "
                  "(requires ckpt=)"},
    {"resume", "restore a checkpoint and continue the run (run "
               "identity comes from the checkpoint)"},
    {"stopafter", "stop at trace op N as if SIGTERM arrived: flush "
                  "checkpoint, exit 3 (test knob)"},
    {"crashafter", "raise SIGKILL at trace op N (test knob)"},
    {"hangafter", "stop progressing at trace op N (test knob)"},
    {"threads", "run N independent machines on N worker threads "
                "sharing the registry/telemetry (concurrency smoke; "
                "default 1)"},
};

/** Serial-only knobs, rejected when threads>1. */
constexpr const char *kSerialOnlyKeys[] = {
    "ckpt", "ckptevery", "resume", "stopafter", "crashafter",
    "hangafter", "statsjson",
};

/** Identity knobs come from the checkpoint on resume. */
constexpr const char *kIdentityKeys[] = {
    "workload", "config",    "scale",     "ops",
    "warmup",   "seed",      "badframes", "fragguest",
    "fraghost", "faults",    "policy",    "faultseed",
    "audit",    "stopafter", "crashafter", "hangafter",
};

void
printUsage(std::FILE *out)
{
    std::fprintf(out, "usage: emvsim [key=value]...\n\n");
    for (const auto &knob : kKnobs)
        std::fprintf(out, "  %-10s %s\n", knob.key, knob.help);
    std::fprintf(out,
                 "\nexit codes:\n"
                 "  0  run completed; no audit mismatches\n"
                 "  1  usage error, audit mismatch, or corrupt "
                 "checkpoint\n"
                 "  2  terminal fault ended the run\n"
                 "  3  interrupted (signal or stopafter); "
                 "checkpoint flushed when ckpt= is set\n");
}

bool
knownKey(const std::string &key)
{
    for (const auto &knob : kKnobs) {
        if (key == knob.key)
            return true;
    }
    return false;
}

/** Reject anything that is not `known_key=value`. */
bool
validateArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            std::fprintf(stderr, "emvsim: malformed argument '%s' "
                         "(expected key=value)\n", arg.c_str());
            return false;
        }
        const std::string key = arg.substr(0, eq);
        if (!knownKey(key)) {
            std::fprintf(stderr, "emvsim: unknown argument '%s'\n",
                         key.c_str());
            return false;
        }
    }
    return true;
}

const char *
argValue(int argc, char **argv, const char *key)
{
    const std::size_t len = std::strlen(key);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], key, len) == 0 &&
            argv[i][len] == '=') {
            return argv[i] + len + 1;
        }
    }
    return nullptr;
}

std::optional<workload::WorkloadKind>
workloadByName(const std::string &name)
{
    using workload::WorkloadKind;
    for (auto kind :
         {WorkloadKind::Gups, WorkloadKind::Graph500,
          WorkloadKind::Memcached, WorkloadKind::NpbCg,
          WorkloadKind::CactusADM, WorkloadKind::GemsFDTD,
          WorkloadKind::Mcf, WorkloadKind::Omnetpp,
          WorkloadKind::Canneal, WorkloadKind::Streamcluster}) {
        if (name == workload::workloadName(kind))
            return kind;
    }
    return std::nullopt;
}

// Atomic (not volatile sig_atomic_t) so threads=N workers can poll
// it without a data race; a lock-free atomic store is async-signal
// safe.
std::atomic<int> gStopRequested{0};

void
onStopSignal(int)
{
    gStopRequested.store(1, std::memory_order_relaxed);
}

bool
stopRequested()
{
    return gStopRequested.load(std::memory_order_relaxed) != 0;
}

/**
 * threads=N: run N independent machines on N worker threads in one
 * process.  Everything process-wide — the stat registry, the audit
 * counters, the trace sink, the telemetry recorder — is shared and
 * internally synchronized (thread_safety.hh documents the contract);
 * each Machine itself stays confined to its worker thread.
 *
 * Machines are constructed and destroyed *in-thread* so their stat
 * groups register with and retire from the shared registry
 * concurrently.  With metrics=, the driver owns the recorder's
 * sources (per-machine source names would collide across N
 * machines): a race-free atomic op counter plus the shard count;
 * the machines only drive the shared window clock through
 * Machine::attachTelemetryTicker().
 */
int
runParallel(unsigned nthreads, workload::WorkloadKind kind,
            const sim::ConfigSpec &spec,
            const sim::CheckpointMeta &meta,
            const sim::RunParams &base_params,
            const std::string &metrics_path,
            std::uint64_t window_ops)
{
    std::optional<telemetry::TelemetryRecorder> recorder;
    std::atomic<std::uint64_t> ops_done{0};
    if (!metrics_path.empty()) {
        telemetry::TelemetryConfig tcfg;
        tcfg.path = metrics_path;
        tcfg.windowOps = window_ops;
        recorder.emplace(tcfg);
        recorder->addCounter("ops", [&ops_done] {
            return ops_done.load(std::memory_order_relaxed);
        });
        recorder->addGauge("threads", [nthreads] {
            return static_cast<double>(nthreads);
        });
        recorder->setModeSource(
            [label = spec.label] { return label; });
        std::string error;
        if (!recorder->openSink(&error)) {
            std::fprintf(stderr,
                         "emvsim: cannot write metrics '%s': %s\n",
                         metrics_path.c_str(), error.c_str());
            return kExitUsageOrAudit;
        }
    }

    struct Shard
    {
        sim::RunResult run;
        bool terminal = false;
        bool interrupted = false;
    };
    std::vector<Shard> shards(nthreads);
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) {
        workers.emplace_back([&, t] {
            Shard &shard = shards[t];
            sim::RunParams params = base_params;
            params.seed = base_params.seed + t;
            auto wl = workload::makeWorkload(kind, params.seed,
                                             params.scale);
            auto cfg = sim::makeMachineConfig(spec, params);
            if (meta.fragGuestBytes) {
                cfg.guestFragmentation.enabled = true;
                cfg.guestFragmentation.maxRunBytes =
                    meta.fragGuestBytes;
            }
            if (meta.fragHostBytes) {
                cfg.hostFragmentation.enabled = true;
                cfg.hostFragmentation.maxRunBytes =
                    meta.fragHostBytes;
                cfg.contiguousHostReservation = false;
            }
            sim::Machine machine(cfg, *wl);

            std::uint64_t done = 0;
            while (done < params.warmupOps) {
                if (stopRequested()) {
                    shard.interrupted = true;
                    return;
                }
                const std::uint64_t slice =
                    std::min(params.warmupOps - done, kSubChunkOps);
                if (!machine.run(slice).completed) {
                    shard.terminal = true;
                    return;
                }
                done += slice;
            }
            // The warmup-boundary reset runs before the ticker is
            // attached, so the shared recorder's op space is exactly
            // the union of the measured intervals (and no worker
            // rebases the shared baselines mid-run).
            machine.resetStats();
            if (recorder)
                machine.attachTelemetryTicker(&*recorder);
            done = 0;
            while (done < params.measureOps) {
                if (stopRequested()) {
                    shard.interrupted = true;
                    break;
                }
                const std::uint64_t slice =
                    std::min(params.measureOps - done, kSubChunkOps);
                // Accounted at dispatch: every recorder tick inside
                // run() then happens-after its slice's add, so the
                // window deltas reconcile exactly with the
                // recorder's op space (a terminal fault mid-slice
                // overcounts by at most one slice).
                ops_done.fetch_add(slice,
                                   std::memory_order_relaxed);
                if (!machine.run(slice).completed) {
                    shard.terminal = true;
                    break;
                }
                done += slice;
            }
            shard.run = machine.measuredResult();
        });
    }
    for (auto &worker : workers)
        worker.join();
    if (recorder)
        recorder->finish();

    bool terminal = false;
    bool interrupted = false;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t walks = 0;
    std::printf("\n-- results (%u shards) --\n", nthreads);
    for (unsigned t = 0; t < nthreads; ++t) {
        const Shard &shard = shards[t];
        std::printf("shard %u: translation %s, total %s, "
                    "walks %llu%s%s\n",
                    t, sim::pct(shard.run.translationOverhead()).c_str(),
                    sim::pct(shard.run.totalOverhead()).c_str(),
                    static_cast<unsigned long long>(shard.run.walks),
                    shard.terminal ? " [terminal fault]" : "",
                    shard.interrupted ? " [interrupted]" : "");
        terminal = terminal || shard.terminal;
        interrupted = interrupted || shard.interrupted;
        l1_misses += shard.run.l1Misses;
        l2_misses += shard.run.l2Misses;
        walks += shard.run.walks;
    }
    std::printf("aggregate: L1 misses %llu, L2 misses %llu, "
                "walks %llu\n",
                static_cast<unsigned long long>(l1_misses),
                static_cast<unsigned long long>(l2_misses),
                static_cast<unsigned long long>(walks));
    if (recorder) {
        std::printf("metrics:   %s (%llu windows)\n",
                    metrics_path.c_str(),
                    static_cast<unsigned long long>(
                        recorder->windowsEmitted()));
    }
    if (base_params.audit) {
        std::printf("audit checks:     %llu\n"
                    "audit mismatches: %llu\n",
                    static_cast<unsigned long long>(
                        audit::checkCount()),
                    static_cast<unsigned long long>(
                        audit::mismatchCount()));
    }

    if (terminal)
        return kExitTerminalFault;
    if (base_params.audit && (audit::mismatchCount() != 0 ||
                              audit::failureCount() != 0)) {
        return kExitUsageOrAudit;
    }
    return interrupted ? kExitInterrupted : kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h" || arg == "help") {
            printUsage(stdout);
            return kExitOk;
        }
    }
    if (!validateArgs(argc, argv)) {
        std::fprintf(stderr, "\n");
        printUsage(stderr);
        return kExitUsageOrAudit;
    }

    unsigned nthreads = 1;
    if (const char *v = argValue(argc, argv, "threads")) {
        const int n = std::atoi(v);
        if (n < 1) {
            std::fprintf(stderr, "emvsim: threads= must be a "
                         "positive thread count\n");
            return kExitUsageOrAudit;
        }
        nthreads = static_cast<unsigned>(n);
    }
    if (nthreads > 1) {
        for (const char *key : kSerialOnlyKeys) {
            if (argValue(argc, argv, key)) {
                std::fprintf(stderr, "emvsim: '%s' cannot be "
                             "combined with threads=%u (serial-only "
                             "knob)\n", key, nthreads);
                return kExitUsageOrAudit;
            }
        }
    }

    const char *resume_path = argValue(argc, argv, "resume");
    sim::CheckpointMeta meta;

    if (resume_path) {
        // The checkpoint is the single source of truth for the
        // run's identity; conflicting knobs are a usage error, not
        // a silent override.
        for (const char *key : kIdentityKeys) {
            if (argValue(argc, argv, key)) {
                std::fprintf(stderr, "emvsim: '%s' cannot be "
                             "combined with resume= (the checkpoint "
                             "defines the run)\n", key);
                return kExitUsageOrAudit;
            }
        }
    } else {
        meta.scale = 0.25;
        meta.warmupOps = 200000;
        meta.measureOps = 1000000;
        if (const char *v = argValue(argc, argv, "workload"))
            meta.workload = v;
        if (const char *v = argValue(argc, argv, "config"))
            meta.configLabel = v;
        if (const char *v = argValue(argc, argv, "scale"))
            meta.scale = std::atof(v);
        if (const char *v = argValue(argc, argv, "ops"))
            meta.measureOps = std::strtoull(v, nullptr, 10);
        if (const char *v = argValue(argc, argv, "warmup"))
            meta.warmupOps = std::strtoull(v, nullptr, 10);
        if (const char *v = argValue(argc, argv, "seed"))
            meta.seed = std::strtoull(v, nullptr, 10);
        if (const char *v = argValue(argc, argv, "badframes"))
            meta.badFrames = static_cast<unsigned>(std::atoi(v));
        if (const char *v = argValue(argc, argv, "fragguest")) {
            if (std::atoi(v) > 0)
                meta.fragGuestBytes =
                    static_cast<Addr>(std::atoi(v)) * MiB;
        }
        if (const char *v = argValue(argc, argv, "fraghost")) {
            if (std::atoi(v) > 0)
                meta.fragHostBytes =
                    static_cast<Addr>(std::atoi(v)) * MiB;
        }
        if (const char *v = argValue(argc, argv, "audit"))
            meta.audit = std::atoi(v) != 0;
        if (const char *v = argValue(argc, argv, "faults")) {
            if (!fault::FaultPlan::parse(v)) {
                std::fprintf(stderr, "emvsim: bad fault spec '%s' "
                             "(expected kind@op[xCOUNT],...)\n", v);
                return kExitUsageOrAudit;
            }
            meta.faultSpec = v;
        }
        if (const char *v = argValue(argc, argv, "policy")) {
            if (!fault::faultPolicyByName(v)) {
                std::fprintf(stderr, "emvsim: bad fault policy '%s' "
                             "(degrade or failfast)\n", v);
                return kExitUsageOrAudit;
            }
            meta.faultPolicy = v;
        }
        if (const char *v = argValue(argc, argv, "faultseed"))
            meta.faultSeed = std::strtoull(v, nullptr, 10);
    }

    std::string ckpt_path;
    std::uint64_t ckpt_every = 0;
    std::uint64_t stop_after = 0;
    std::uint64_t crash_after = 0;
    std::uint64_t hang_after = 0;
    if (const char *v = argValue(argc, argv, "ckpt"))
        ckpt_path = v;
    if (const char *v = argValue(argc, argv, "ckptevery"))
        ckpt_every = std::strtoull(v, nullptr, 10);
    if (const char *v = argValue(argc, argv, "stopafter"))
        stop_after = std::strtoull(v, nullptr, 10);
    if (const char *v = argValue(argc, argv, "crashafter"))
        crash_after = std::strtoull(v, nullptr, 10);
    if (const char *v = argValue(argc, argv, "hangafter"))
        hang_after = std::strtoull(v, nullptr, 10);
    if (ckpt_every && ckpt_path.empty()) {
        std::fprintf(stderr,
                     "emvsim: ckptevery= requires ckpt=\n");
        return kExitUsageOrAudit;
    }

    std::string metrics_path;
    std::uint64_t window_ops = 100000;
    if (const char *v = argValue(argc, argv, "metrics"))
        metrics_path = v;
    if (const char *v = argValue(argc, argv, "window")) {
        if (metrics_path.empty()) {
            std::fprintf(stderr,
                         "emvsim: window= requires metrics=\n");
            return kExitUsageOrAudit;
        }
        window_ops = std::strtoull(v, nullptr, 10);
        if (window_ops == 0) {
            std::fprintf(stderr,
                         "emvsim: window= must be a positive op "
                         "count\n");
            return kExitUsageOrAudit;
        }
    }

    sim::LoadedCheckpoint loaded;
    if (resume_path) {
        std::string error;
        if (!sim::loadCheckpoint(resume_path, loaded, error)) {
            std::fprintf(stderr, "emvsim: cannot resume '%s': %s\n",
                         resume_path, error.c_str());
            return kExitUsageOrAudit;
        }
        meta = loaded.meta;
    }

    auto kind = workloadByName(meta.workload);
    if (!kind) {
        std::fprintf(stderr,
                     "unknown workload '%s'; one of: gups graph500 "
                     "memcached npb:cg cactusADM GemsFDTD mcf "
                     "omnetpp canneal streamcluster\n",
                     meta.workload.c_str());
        return kExitUsageOrAudit;
    }
    auto spec = sim::specFromLabel(meta.configLabel);
    if (!spec) {
        std::fprintf(stderr, "unknown config label '%s'\n",
                     meta.configLabel.c_str());
        return kExitUsageOrAudit;
    }

    sim::RunParams params;
    params.scale = meta.scale;
    params.measureOps = meta.measureOps;
    params.warmupOps = meta.warmupOps;
    params.seed = meta.seed;
    params.badFrames = meta.badFrames;
    params.badFrameSeed = meta.badFrameSeed;
    params.faultSpec = meta.faultSpec;
    params.faultPolicy = meta.faultPolicy;
    params.faultSeed = meta.faultSeed;
    params.audit = meta.audit;
    if (const char *v = argValue(argc, argv, "statsjson"))
        params.statsJsonPath = v;
    if (const char *v = argValue(argc, argv, "trace"))
        params.traceFlags = v;
    if (const char *v = argValue(argc, argv, "tracefile"))
        params.traceFilePath = v;
    if (const char *v = argValue(argc, argv, "profile"))
        params.profile = std::atoi(v) != 0;
    params.applyObservability();

    if (nthreads > 1) {
        std::printf("emvsim: %s under %s x%u threads "
                    "(scale=%.3g)\n",
                    meta.workload.c_str(), meta.configLabel.c_str(),
                    nthreads, params.scale);
        if (!params.faultSpec.empty()) {
            std::printf("fault plan: %s (policy=%s, per shard)\n",
                        params.faultSpec.c_str(),
                        params.faultPolicy.c_str());
        }
        std::signal(SIGTERM, onStopSignal);
        std::signal(SIGINT, onStopSignal);
        return runParallel(nthreads, *kind, *spec, meta, params,
                           metrics_path, window_ops);
    }

    auto wl = workload::makeWorkload(*kind, params.seed,
                                     params.scale);
    auto cfg = sim::makeMachineConfig(*spec, params);
    if (meta.fragGuestBytes) {
        cfg.guestFragmentation.enabled = true;
        cfg.guestFragmentation.maxRunBytes = meta.fragGuestBytes;
    }
    if (meta.fragHostBytes) {
        cfg.hostFragmentation.enabled = true;
        cfg.hostFragmentation.maxRunBytes = meta.fragHostBytes;
        cfg.contiguousHostReservation = false;
    }

    std::printf("emvsim: %s under %s (scale=%.3g, %s footprint)\n",
                wl->info().name.c_str(), meta.configLabel.c_str(),
                params.scale,
                sim::bytesStr(wl->info().footprintBytes).c_str());
    if (!params.faultSpec.empty()) {
        std::printf("fault plan: %s (policy=%s)\n",
                    params.faultSpec.c_str(),
                    params.faultPolicy.c_str());
    }

    sim::Machine machine(cfg, *wl);

    std::optional<telemetry::TelemetryRecorder> recorder;
    if (!metrics_path.empty()) {
        telemetry::TelemetryConfig tcfg;
        tcfg.path = metrics_path;
        tcfg.windowOps = window_ops;
        recorder.emplace(tcfg);
    }
    telemetry::TelemetryRecorder *telem = nullptr;

    // Telemetry attaches at the start of the measured interval (the
    // warmup-boundary resetStats) so recorder op space == measured
    // ops.  On a resume past that boundary it attaches immediately,
    // restoring its window cursor from the checkpoint.
    const auto attachTelemetry = [&](bool from_checkpoint) {
        if (!recorder || telem)
            return true;
        machine.attachTelemetry(&*recorder);
        telem = &*recorder;
        std::string error;
        if (from_checkpoint &&
            !sim::restoreTelemetry(loaded, *recorder, error)) {
            std::fprintf(stderr, "emvsim: cannot resume '%s': %s\n",
                         resume_path, error.c_str());
            return false;
        }
        if (!recorder->openSink(&error)) {
            std::fprintf(stderr,
                         "emvsim: cannot write metrics '%s': %s\n",
                         metrics_path.c_str(), error.c_str());
            return false;
        }
        return true;
    };

    bool did_reset = false;
    if (resume_path) {
        std::string error;
        if (!sim::restoreMachine(loaded, machine, error)) {
            std::fprintf(stderr, "emvsim: cannot resume '%s': %s\n",
                         resume_path, error.c_str());
            return kExitUsageOrAudit;
        }
        // A checkpoint taken at or past the warmup boundary was
        // written after resetStats(); do not reset again.
        did_reset = meta.warmupDone == meta.warmupOps;
        if (did_reset && !attachTelemetry(true))
            return kExitUsageOrAudit;
        std::printf("resumed from %s (warmup %llu/%llu, measured "
                    "%llu/%llu)\n", resume_path,
                    static_cast<unsigned long long>(meta.warmupDone),
                    static_cast<unsigned long long>(meta.warmupOps),
                    static_cast<unsigned long long>(meta.measuredOps),
                    static_cast<unsigned long long>(meta.measureOps));
    }

    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);

    const auto flushCheckpoint = [&]() {
        if (ckpt_path.empty())
            return true;
        std::string error;
        if (!sim::saveCheckpoint(ckpt_path, meta, machine, error,
                                 telem)) {
            std::fprintf(stderr, "emvsim: checkpoint failed: %s\n",
                         error.c_str());
            return false;
        }
        return true;
    };

    // Replay in bounded slices so signals, periodic checkpoints and
    // the deterministic test knobs all land on exact op boundaries.
    std::uint64_t since_ckpt = 0;
    bool interrupted = false;
    bool terminal = false;
    while (!interrupted && !terminal) {
        if (!did_reset && meta.warmupDone == meta.warmupOps) {
            machine.resetStats();
            did_reset = true;
            if (!attachTelemetry(false))
                return kExitUsageOrAudit;
        }
        const bool in_warmup = meta.warmupDone < meta.warmupOps;
        const std::uint64_t remaining =
            in_warmup ? meta.warmupOps - meta.warmupDone
                      : meta.measureOps - meta.measuredOps;
        if (!in_warmup && remaining == 0)
            break;

        std::uint64_t slice = std::min(remaining, kSubChunkOps);
        const std::uint64_t done =
            meta.warmupDone + meta.measuredOps;
        const auto boundAt = [&](std::uint64_t target) {
            if (target > done && target - done < slice)
                slice = target - done;
        };
        if (ckpt_every)
            boundAt(done + (ckpt_every - since_ckpt));
        if (stop_after)
            boundAt(stop_after);
        if (crash_after)
            boundAt(crash_after);
        if (hang_after)
            boundAt(hang_after);

        const auto result = machine.run(slice);
        if (!result.completed) {
            terminal = true;
            break;
        }
        if (in_warmup)
            meta.warmupDone += slice;
        else
            meta.measuredOps += slice;
        since_ckpt += slice;
        if (!did_reset && meta.warmupDone == meta.warmupOps) {
            machine.resetStats();
            did_reset = true;
            if (!attachTelemetry(false))
                return kExitUsageOrAudit;
        }

        const std::uint64_t total =
            meta.warmupDone + meta.measuredOps;
        if (crash_after && total >= crash_after)
            raise(SIGKILL);
        if (hang_after && total >= hang_after) {
            for (;;)
                sleep(3600);
        }
        const bool want_stop =
            stopRequested() || (stop_after && total >= stop_after);
        if (want_stop || (ckpt_every && since_ckpt >= ckpt_every)) {
            if (!flushCheckpoint())
                return kExitUsageOrAudit;
            since_ckpt = 0;
        }
        interrupted = want_stop;
    }

    if (interrupted) {
        std::printf("\n-- interrupted --\n"
                    "ops:        %llu of %llu (warmup %llu)\n",
                    static_cast<unsigned long long>(
                        meta.warmupDone + meta.measuredOps),
                    static_cast<unsigned long long>(
                        meta.warmupOps + meta.measureOps),
                    static_cast<unsigned long long>(meta.warmupDone));
        if (!ckpt_path.empty()) {
            std::printf("checkpoint: %s (resume=%s)\n",
                        ckpt_path.c_str(), ckpt_path.c_str());
        }
        return kExitInterrupted;
    }

    if (!ckpt_path.empty() && !flushCheckpoint())
        return kExitUsageOrAudit;

    // Interrupted runs leave the open window in the checkpoint for
    // the resumed run to finish; completed runs flush it here.
    if (telem)
        telem->finish();

    const auto run = machine.measuredResult();

    std::printf("\n-- results --\n");
    std::printf("translation overhead: %s\n",
                sim::pct(run.translationOverhead()).c_str());
    std::printf("total overhead:       %s\n",
                sim::pct(run.totalOverhead()).c_str());
    std::printf("L1 misses:            %llu\n",
                static_cast<unsigned long long>(run.l1Misses));
    std::printf("L2 misses (walks):    %llu (%llu)\n",
                static_cast<unsigned long long>(run.l2Misses),
                static_cast<unsigned long long>(run.walks));
    std::printf("cycles per walk:      %.1f\n", run.cyclesPerWalk);
    std::printf("coverage F_VD/F_GD/F_DD: %s / %s / %s\n",
                sim::pct(run.fractionVmmOnly).c_str(),
                sim::pct(run.fractionGuestOnly).c_str(),
                sim::pct(run.fractionBoth).c_str());
    std::printf("guest segment: %s\nVMM segment:   %s\n",
                machine.guestSegment().toString().c_str(),
                machine.vmmSegment().toString().c_str());
    if (telem) {
        std::printf("metrics:       %s (%llu windows)\n",
                    metrics_path.c_str(),
                    static_cast<unsigned long long>(
                        telem->windowsEmitted()));
    }
    if (!params.faultSpec.empty()) {
        std::printf("final mode:    %s\n",
                    core::modeName(machine.config().mode));
    }

    const char *stats_arg = argValue(argc, argv, "stats");
    if (!stats_arg || std::atoi(stats_arg) != 0) {
        std::printf("\n-- mmu counters --\n");
        machine.mmu().stats().dump(std::cout);
        if (machine.vm()) {
            std::printf("\n-- vm counters --\n");
            machine.vm()->stats().dump(std::cout);
        }
        std::printf("\n-- os counters --\n");
        machine.os().stats().dump(std::cout);
        if (!params.faultSpec.empty()) {
            std::printf("\n-- fault counters --\n");
            machine.faultInjector().stats().dump(std::cout);
        }
    }

    if (!params.statsJsonPath.empty()) {
        if (sim::writeStatsJson(params.statsJsonPath)) {
            std::printf("\nwrote %s\n",
                        params.statsJsonPath.c_str());
        } else {
            std::fprintf(stderr, "cannot write '%s'\n",
                         params.statsJsonPath.c_str());
            return kExitUsageOrAudit;
        }
    }
    if (params.profile) {
        std::printf("\n");
        prof::report(std::cout);
    }
    if (params.audit) {
        std::printf("\naudit checks:     %llu\n"
                    "audit mismatches: %llu\n",
                    static_cast<unsigned long long>(
                        audit::checkCount()),
                    static_cast<unsigned long long>(
                        audit::mismatchCount()));
    }

    // A terminal fault is a clean, structured, non-zero exit — not
    // an abort: stats and JSON above still reflect the partial run.
    if (const auto *terminal_fault = machine.terminalFault()) {
        std::printf("\n-- terminal fault --\n"
                    "reason: %s\n"
                    "space:  %s\n"
                    "addr:   %s\n"
                    "op:     %llu\n",
                    terminal_fault->reason.c_str(),
                    core::toString(terminal_fault->space),
                    hexAddr(terminal_fault->addr).c_str(),
                    static_cast<unsigned long long>(
                        terminal_fault->opIndex));
        return kExitTerminalFault;
    }
    if (params.audit && (audit::mismatchCount() != 0 ||
                         audit::failureCount() != 0)) {
        return kExitUsageOrAudit;
    }
    return kExitOk;
}
