/**
 * @file
 * emv_soak — randomized fault-injection soak harness.
 *
 * For every translation mode and a batch of seeds, generate a mixed
 * fault schedule (FaultPlan::random: DRAM faults, PTE corruptions,
 * request failures, slot revocations, the odd filter saturation),
 * replay it under policy=degrade with the differential auditor
 * enabled, and demand that every run completes with zero audit
 * mismatches.  Exit 0 only when the whole matrix is clean.
 *
 * Usage:
 *   emv_soak [seeds=5] [ops=20000] [warmup=4000] [scale=0.05]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/audit.hh"
#include "common/logging.hh"
#include "fault/fault_plan.hh"
#include "sim/experiment.hh"
#include "workload/workload.hh"

using namespace emv;

namespace {

const char *const kConfigs[] = {"4K",    "DS",    "4K+4K",
                                "DD",    "4K+VD", "4K+GD"};

void
printUsage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: emv_soak [seeds=N] [ops=N] [warmup=N] "
                 "[scale=F]\n"
                 "exit codes: 0 all runs clean, 1 usage error or "
                 "failing runs\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    unsigned seeds = 5;
    std::uint64_t ops = 20000;
    std::uint64_t warmup = 4000;
    double scale = 0.05;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            printUsage(stdout);
            return 0;
        }
        if (std::strncmp(arg, "seeds=", 6) == 0)
            seeds = static_cast<unsigned>(std::atoi(arg + 6));
        else if (std::strncmp(arg, "ops=", 4) == 0)
            ops = std::strtoull(arg + 4, nullptr, 10);
        else if (std::strncmp(arg, "warmup=", 7) == 0)
            warmup = std::strtoull(arg + 7, nullptr, 10);
        else if (std::strncmp(arg, "scale=", 6) == 0)
            scale = std::atof(arg + 6);
        else {
            std::fprintf(stderr, "emv_soak: unknown argument '%s'\n",
                         arg);
            printUsage(stderr);
            return 1;
        }
    }
    if (seeds == 0 || ops + warmup < 100 || scale <= 0.0) {
        std::fprintf(stderr, "emv_soak: bad parameters\n");
        return 1;
    }

    sim::RunParams params;
    params.scale = scale;
    params.warmupOps = warmup;
    params.measureOps = ops;
    params.audit = true;
    params.applyObservability();

    std::printf("emv_soak: %zu configs x %u seeds, %llu+%llu ops, "
                "scale=%.3g\n\n",
                std::size(kConfigs), seeds,
                static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(ops), scale);
    std::printf("%-6s %-5s %-9s %-6s %-7s %-7s %s\n", "config",
                "seed", "done", "downgr", "mismat", "events",
                "plan");

    unsigned bad = 0;
    for (const char *label : kConfigs) {
        auto spec = sim::specFromLabel(label);
        if (!spec) {
            std::fprintf(stderr, "bad config label '%s'\n", label);
            return 1;
        }
        for (unsigned s = 0; s < seeds; ++s) {
            params.seed = 42 + s;
            const std::uint64_t plan_seed =
                1000ull * (s + 1) + std::strlen(label);
            auto plan =
                fault::FaultPlan::random(plan_seed, warmup + ops);

            auto wl = workload::makeWorkload(
                workload::WorkloadKind::Gups, params.seed,
                params.scale);
            auto cfg = sim::makeMachineConfig(*spec, params);
            cfg.faultPlan = plan;
            cfg.faultSeed = 100 + s;

            audit::resetCounters();
            sim::Machine machine(cfg, *wl);
            machine.run(params.warmupOps);
            machine.resetStats();
            auto run = machine.run(params.measureOps);

            const std::uint64_t mismatches =
                audit::mismatchCount() + audit::failureCount();
            const std::uint64_t downgrades =
                machine.faultInjector().stats().counterValue(
                    "downgrades");
            const std::uint64_t delivered =
                machine.faultInjector().stats().counterValue(
                    "delivered_events");
            const bool terminal =
                machine.terminalFault() != nullptr;
            const bool ok =
                run.completed && !terminal && mismatches == 0;
            if (!ok)
                ++bad;

            std::printf("%-6s %-5u %-9s %-6llu %-7llu %-7llu %s\n",
                        label, s, ok ? "ok" : "FAIL",
                        static_cast<unsigned long long>(downgrades),
                        static_cast<unsigned long long>(mismatches),
                        static_cast<unsigned long long>(delivered),
                        plan.toString().c_str());
            if (terminal) {
                std::printf("       terminal fault: %s\n",
                            machine.terminalFault()->reason.c_str());
            }
        }
    }

    std::printf("\nemv_soak: %u failing runs\n", bad);
    return bad == 0 ? 0 : 1;
}
