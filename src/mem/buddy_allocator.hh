/**
 * @file
 * Binary buddy frame allocator.
 *
 * Both the guest OS (over gPA) and the VMM (over hPA) need a real
 * physical-frame allocator: the paper's mechanisms — reservation of
 * contiguous segment memory at boot (§VI.A), fragmentation that
 * defeats segment creation (§IV), ballooning out an *arbitrary* set
 * of frames, hot-unplugging *specific* frames below the I/O gap, and
 * compaction migrating frames to restore contiguity — are all
 * operations on the free-frame map.  A Linux-style buddy system (
 * orders 0..18, i.e. 4 KB to 1 GB blocks) gives them an honest
 * substrate.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/intervals.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::mem {

/**
 * Buddy allocator managing 4 KB frames within [base, base + size).
 *
 * Order n manages blocks of 2^n frames; maxOrder 18 covers 1 GB.
 */
class BuddyAllocator
{
  public:
    static constexpr unsigned kMaxOrder = 18;

    /**
     * @param base Base address of the managed range (4K aligned).
     * @param size_bytes Length of the managed range (4K multiple).
     */
    BuddyAllocator(Addr base, Addr size_bytes);

    /**
     * Allocate a block of 2^order frames, naturally aligned.
     * @return Block base address, or nullopt if no memory.
     */
    std::optional<Addr> allocate(unsigned order);

    /** Allocate @p bytes of contiguous memory (rounded to a block). */
    std::optional<Addr> allocateBytes(Addr bytes);

    /**
     * Reserve a specific range [start, start+length) if it is
     * entirely free (hot-unplug of *specific* addresses, boot-time
     * segment reservation).  @return true on success.
     */
    bool allocateRange(Addr start, Addr length);

    /** Free a block previously returned by allocate(). */
    void free(Addr block, unsigned order);

    /** Free a specific range previously reserved. */
    void freeRange(Addr start, Addr length);

    /** True if every frame of [start, start+length) is free. */
    bool rangeFree(Addr start, Addr length) const;

    /** Total free bytes. */
    Addr freeBytes() const;

    /** Size in bytes of the largest free contiguous block run. */
    Addr largestFreeRun() const;

    /** Free memory as a coalesced interval set (for planners). */
    IntervalSet freeIntervals() const;

    /**
     * Fraction of free memory NOT in the largest free run — a
     * simple external-fragmentation index in [0, 1].
     */
    double fragmentationIndex() const;

    Addr base() const { return rangeBase; }
    Addr size() const { return rangeSize; }

    StatGroup &stats() { return _stats; }

    /**
     * Audit-mode structural check (EMV_INVARIANT): every free block
     * is naturally aligned and inside the managed range, no two
     * buddies sit uncoalesced on the same free list, and the free
     * lists' byte accounting matches their coalesced interval
     * coverage (i.e. no block is on two lists and none overlap).
     * Called automatically by the allocation paths under auditing.
     */
    void auditInvariants() const;

    /** Order of the smallest block covering @p bytes. */
    static unsigned orderForBytes(Addr bytes);

    /** Checkpoint the free lists and stats. */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    /** Split blocks down until a block of @p order is available. */
    bool splitTo(unsigned order);

    /** Insert a free block and coalesce with its buddy upward. */
    void insertFree(Addr block, unsigned order);

    Addr rangeBase;
    Addr rangeSize;
    /** freeLists[n] holds bases of free blocks of order n. */
    std::vector<std::set<Addr>> freeLists;
    StatGroup _stats{"buddy"};
};

} // namespace emv::mem

