#include "mem/fragmenter.hh"

#include "common/logging.hh"
#include "common/profile.hh"

namespace emv::mem {

namespace {

constexpr Addr
orderBytes(unsigned order)
{
    return kPage4K << order;
}

} // namespace

std::vector<PinnedBlock>
Fragmenter::fragmentToRun(BuddyAllocator &buddy, Addr max_run_bytes,
                          unsigned pin_order)
{
    prof::Scope frag_scope(prof::Phase::Fragmentation);
    emv_assert(max_run_bytes >= kPage4K,
               "fragmentation target below one page");
    std::vector<PinnedBlock> pins;
    const Addr pin_bytes = orderBytes(pin_order);

    // Repeatedly split the largest free run by pinning a small block
    // inside it, until no run exceeds the target.
    for (;;) {
        auto largest = buddy.freeIntervals().largest();
        if (!largest || largest->length() <= max_run_bytes)
            break;
        // Place the pin so both remaining sides shrink: a random
        // point in the middle half of the run.
        const Addr span = largest->length() - pin_bytes;
        const Addr lo = span / 4;
        const Addr hi = span - span / 4;
        Addr offset = lo == hi ? lo : lo + rng.nextBelow(hi - lo);
        offset = alignDown(offset, pin_bytes);
        const Addr base = largest->start + offset;
        if (!buddy.allocateRange(base, pin_bytes)) {
            // Should not happen on a free interval; fall back to a
            // plain allocation to guarantee progress.
            auto block = buddy.allocate(pin_order);
            emv_assert(block.has_value(),
                       "fragmenter could not pin any block");
            pins.push_back({*block, pin_order});
            continue;
        }
        pins.push_back({base, pin_order});
    }
    return pins;
}

std::vector<PinnedBlock>
Fragmenter::pinFraction(BuddyAllocator &buddy, double fraction,
                        unsigned pin_order)
{
    prof::Scope frag_scope(prof::Phase::Fragmentation);
    emv_assert(fraction >= 0.0 && fraction <= 1.0,
               "pin fraction %f out of [0, 1]", fraction);
    std::vector<PinnedBlock> pins;
    const Addr pin_bytes = orderBytes(pin_order);
    const Addr target =
        static_cast<Addr>(fraction *
                          static_cast<double>(buddy.freeBytes()));
    Addr pinned = 0;

    while (pinned + pin_bytes <= target) {
        auto free_set = buddy.freeIntervals();
        auto ivs = free_set.intervals();
        if (ivs.empty())
            break;
        // Pick a random interval weighted by index, then a random
        // aligned offset within it.
        const auto &iv = ivs[rng.nextBelow(ivs.size())];
        if (iv.length() < pin_bytes)
            continue;
        const Addr span = iv.length() - pin_bytes;
        Addr offset = span ? rng.nextBelow(span + 1) : 0;
        offset = alignDown(offset, pin_bytes);
        if (!buddy.allocateRange(iv.start + offset, pin_bytes))
            continue;
        pins.push_back({iv.start + offset, pin_order});
        pinned += pin_bytes;
    }
    return pins;
}

void
Fragmenter::release(BuddyAllocator &buddy,
                    const std::vector<PinnedBlock> &pins)
{
    for (const auto &pin : pins)
        buddy.free(pin.base, pin.order);
}

} // namespace emv::mem
