/**
 * @file
 * Fragmentation injection for experiments.
 *
 * §IV of the paper studies systems whose guest and/or host physical
 * memory is too fragmented to create a direct segment (Table III).
 * The Fragmenter produces such states deterministically by pinning a
 * random scatter of blocks inside a BuddyAllocator, emulating the
 * residue of a long-running mixed workload.
 */

#pragma once

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "mem/buddy_allocator.hh"

namespace emv::mem {

/** One pinned allocation created by the fragmenter. */
struct PinnedBlock
{
    Addr base = 0;
    unsigned order = 0;
};

/**
 * Deterministically fragments a buddy allocator by allocating many
 * small blocks and freeing a random subset, leaving pinned holes.
 */
class Fragmenter
{
  public:
    explicit Fragmenter(std::uint64_t seed) : rng(seed) {}

    /**
     * Fragment @p buddy until its largest free run is at most
     * @p max_run_bytes, by pinning scattered small blocks.
     *
     * @param pin_order Order of the pinned blocks (default 4 KB).
     * @return The pinned blocks; pass to release() to undo.
     */
    std::vector<PinnedBlock> fragmentToRun(BuddyAllocator &buddy,
                                           Addr max_run_bytes,
                                           unsigned pin_order = 0);

    /**
     * Pin @p fraction of currently free memory in scattered blocks
     * of @p pin_order.
     */
    std::vector<PinnedBlock> pinFraction(BuddyAllocator &buddy,
                                         double fraction,
                                         unsigned pin_order = 0);

    /** Free all blocks in @p pins. */
    static void release(BuddyAllocator &buddy,
                        const std::vector<PinnedBlock> &pins);

  private:
    Rng rng;
};

} // namespace emv::mem

