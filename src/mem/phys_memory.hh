/**
 * @file
 * Simulated physical memory.
 *
 * Page tables in emv are not abstract maps: they are genuine radix
 * trees of x86-64-encoded 64-bit entries stored in a PhysMemory, and
 * the walkers load each entry with read64().  That keeps the paper's
 * headline count — up to 24 memory references per 2D walk (Fig. 2) —
 * an emergent property rather than an assertion.
 *
 * The store is sparse (4 KB frames materialized on first touch) so a
 * simulated multi-GB machine costs only what the page tables and
 * touched data actually occupy.  PhysMemory also owns the hard-fault
 * model: frames can be marked bad (paper §V), and the escape filter
 * machinery consults that registry.
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::mem {

/**
 * Sparse word-addressable physical memory of a fixed size with a
 * bad-frame (hard fault) registry.
 */
class PhysMemory
{
  public:
    /** @param size_bytes Total physical address space size. */
    explicit PhysMemory(Addr size_bytes);

    Addr size() const { return sizeBytes; }

    /** Load a naturally aligned 64-bit word. */
    std::uint64_t read64(Addr addr) const;

    /** Store a naturally aligned 64-bit word. */
    void write64(Addr addr, std::uint64_t value);

    /** Zero a whole 4 KB frame (used for fresh page tables). */
    void zeroFrame(Addr frame_base);

    /** Copy a 4 KB frame (compaction / page migration). */
    void copyFrame(Addr dst_base, Addr src_base);

    /** 64-bit FNV-1a content hash of a 4 KB frame. */
    std::uint64_t hashFrame(Addr frame_base) const;

    /** Mark the 4 KB frame containing @p addr as having hard faults. */
    void markBad(Addr addr);
    /** Clear a bad-frame mark. */
    void clearBad(Addr addr);
    /** True if the frame containing @p addr is faulty. */
    bool isBad(Addr addr) const;
    /** True if any 4 KB frame in [base, base+len) is faulty. */
    bool anyBadInRange(Addr base, Addr len) const;
    /** Frame bases of faulty frames in [base, base+len), sorted. */
    std::vector<Addr> badFramesInRange(Addr base, Addr len) const;
    /** Number of faulty frames. */
    std::size_t badFrameCount() const { return badFrames.size(); }

    /** Number of frames actually materialized. */
    std::size_t residentFrames() const { return frames.size(); }

    StatGroup &stats() { return _stats; }

    /**
     * Checkpoint all resident frame contents plus the bad-frame
     * registry (sorted, so files are byte-stable across runs).  This
     * is the chunk that captures every page-table radix tree.
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    using Frame = std::array<std::uint64_t, 512>;

    Frame &frameFor(Addr addr);
    const Frame *frameForConst(Addr addr) const;

    Addr sizeBytes;
    mutable StatGroup _stats{"physmem"};
    std::unordered_map<std::uint64_t, std::unique_ptr<Frame>> frames;
    std::unordered_set<std::uint64_t> badFrames;
};

} // namespace emv::mem

