#include "mem/phys_memory.hh"

#include <algorithm>

#include "common/audit.hh"
#include "common/logging.hh"

namespace emv::mem {

PhysMemory::PhysMemory(Addr size_bytes)
    : sizeBytes(size_bytes)
{
    emv_assert(size_bytes > 0 && isAligned(size_bytes, kPage4K),
               "physical memory size must be a positive multiple of 4K");
}

PhysMemory::Frame &
PhysMemory::frameFor(Addr addr)
{
    emv_assert(addr < sizeBytes,
               "physical access %s beyond memory size %s",
               hexAddr(addr).c_str(), hexAddr(sizeBytes).c_str());
    const std::uint64_t frame_no = addr >> 12;
    auto &slot = frames[frame_no];
    if (!slot)
        slot = std::make_unique<Frame>();
    return *slot;
}

const PhysMemory::Frame *
PhysMemory::frameForConst(Addr addr) const
{
    emv_assert(addr < sizeBytes,
               "physical access %s beyond memory size %s",
               hexAddr(addr).c_str(), hexAddr(sizeBytes).c_str());
    auto it = frames.find(addr >> 12);
    return it == frames.end() ? nullptr : it->second.get();
}

std::uint64_t
PhysMemory::read64(Addr addr) const
{
    emv_assert(isAligned(addr, 8), "misaligned 64-bit read at %s",
               hexAddr(addr).c_str());
    EMV_CHECK(addr < sizeBytes, "read of %s beyond physical size %s",
              hexAddr(addr).c_str(), hexAddr(sizeBytes).c_str());
    ++_stats.counter("reads");
    const Frame *frame = frameForConst(addr);
    if (!frame)
        return 0;  // Untouched memory reads as zero.
    return (*frame)[(addr & (kPage4K - 1)) >> 3];
}

void
PhysMemory::write64(Addr addr, std::uint64_t value)
{
    emv_assert(isAligned(addr, 8), "misaligned 64-bit write at %s",
               hexAddr(addr).c_str());
    EMV_CHECK(addr < sizeBytes, "write of %s beyond physical size %s",
              hexAddr(addr).c_str(), hexAddr(sizeBytes).c_str());
    ++_stats.counter("writes");
    frameFor(addr)[(addr & (kPage4K - 1)) >> 3] = value;
}

void
PhysMemory::zeroFrame(Addr frame_base)
{
    emv_assert(isAligned(frame_base, kPage4K),
               "zeroFrame base %s not 4K aligned",
               hexAddr(frame_base).c_str());
    frameFor(frame_base).fill(0);
}

void
PhysMemory::copyFrame(Addr dst_base, Addr src_base)
{
    emv_assert(isAligned(dst_base, kPage4K) &&
               isAligned(src_base, kPage4K),
               "copyFrame bases must be 4K aligned");
    ++_stats.counter("frame_copies");
    const Frame *src = frameForConst(src_base);
    if (!src) {
        zeroFrame(dst_base);
        return;
    }
    frameFor(dst_base) = *src;
}

std::uint64_t
PhysMemory::hashFrame(Addr frame_base) const
{
    emv_assert(isAligned(frame_base, kPage4K),
               "hashFrame base %s not 4K aligned",
               hexAddr(frame_base).c_str());
    const Frame *frame = frameForConst(frame_base);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    constexpr std::uint64_t prime = 0x100000001b3ull;
    if (!frame) {
        // All-zero frame: hash 512 zero words.
        for (int i = 0; i < 512; ++i)
            hash = (hash ^ 0) * prime;
        return hash;
    }
    for (std::uint64_t word : *frame)
        hash = (hash ^ word) * prime;
    return hash;
}

void
PhysMemory::markBad(Addr addr)
{
    emv_assert(addr < sizeBytes, "bad-frame mark beyond memory");
    badFrames.insert(addr >> 12);
}

void
PhysMemory::clearBad(Addr addr)
{
    badFrames.erase(addr >> 12);
}

bool
PhysMemory::isBad(Addr addr) const
{
    return badFrames.count(addr >> 12) != 0;
}

std::vector<Addr>
PhysMemory::badFramesInRange(Addr base, Addr len) const
{
    std::vector<Addr> out;
    const std::uint64_t lo = base >> 12;
    const std::uint64_t hi = (base + len - 1) >> 12;
    for (std::uint64_t frame : badFrames) {
        if (frame >= lo && frame <= hi)
            out.push_back(frame << 12);
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
PhysMemory::anyBadInRange(Addr base, Addr len) const
{
    // The bad-frame set is tiny (a handful of hard faults); scan it
    // rather than the range.
    const std::uint64_t lo = base >> 12;
    const std::uint64_t hi = (base + len - 1) >> 12;
    for (std::uint64_t frame : badFrames) {
        if (frame >= lo && frame <= hi)
            return true;
    }
    return false;
}

} // namespace emv::mem
