#include "mem/phys_memory.hh"

#include <algorithm>

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"

namespace emv::mem {

PhysMemory::PhysMemory(Addr size_bytes)
    : sizeBytes(size_bytes)
{
    emv_assert(size_bytes > 0 && isAligned(size_bytes, kPage4K),
               "physical memory size must be a positive multiple of 4K");
}

PhysMemory::Frame &
PhysMemory::frameFor(Addr addr)
{
    emv_assert(addr < sizeBytes,
               "physical access %s beyond memory size %s",
               hexAddr(addr).c_str(), hexAddr(sizeBytes).c_str());
    const std::uint64_t frame_no = addr >> 12;
    auto &slot = frames[frame_no];
    if (!slot)
        slot = std::make_unique<Frame>();
    return *slot;
}

const PhysMemory::Frame *
PhysMemory::frameForConst(Addr addr) const
{
    emv_assert(addr < sizeBytes,
               "physical access %s beyond memory size %s",
               hexAddr(addr).c_str(), hexAddr(sizeBytes).c_str());
    auto it = frames.find(addr >> 12);
    return it == frames.end() ? nullptr : it->second.get();
}

std::uint64_t
PhysMemory::read64(Addr addr) const
{
    emv_assert(isAligned(addr, 8), "misaligned 64-bit read at %s",
               hexAddr(addr).c_str());
    EMV_CHECK(addr < sizeBytes, "read of %s beyond physical size %s",
              hexAddr(addr).c_str(), hexAddr(sizeBytes).c_str());
    ++_stats.counter("reads");
    const Frame *frame = frameForConst(addr);
    if (!frame)
        return 0;  // Untouched memory reads as zero.
    return (*frame)[(addr & (kPage4K - 1)) >> 3];
}

void
PhysMemory::write64(Addr addr, std::uint64_t value)
{
    emv_assert(isAligned(addr, 8), "misaligned 64-bit write at %s",
               hexAddr(addr).c_str());
    EMV_CHECK(addr < sizeBytes, "write of %s beyond physical size %s",
              hexAddr(addr).c_str(), hexAddr(sizeBytes).c_str());
    ++_stats.counter("writes");
    frameFor(addr)[(addr & (kPage4K - 1)) >> 3] = value;
}

void
PhysMemory::zeroFrame(Addr frame_base)
{
    emv_assert(isAligned(frame_base, kPage4K),
               "zeroFrame base %s not 4K aligned",
               hexAddr(frame_base).c_str());
    frameFor(frame_base).fill(0);
}

void
PhysMemory::copyFrame(Addr dst_base, Addr src_base)
{
    emv_assert(isAligned(dst_base, kPage4K) &&
               isAligned(src_base, kPage4K),
               "copyFrame bases must be 4K aligned");
    ++_stats.counter("frame_copies");
    const Frame *src = frameForConst(src_base);
    if (!src) {
        zeroFrame(dst_base);
        return;
    }
    frameFor(dst_base) = *src;
}

std::uint64_t
PhysMemory::hashFrame(Addr frame_base) const
{
    emv_assert(isAligned(frame_base, kPage4K),
               "hashFrame base %s not 4K aligned",
               hexAddr(frame_base).c_str());
    const Frame *frame = frameForConst(frame_base);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    constexpr std::uint64_t prime = 0x100000001b3ull;
    if (!frame) {
        // All-zero frame: hash 512 zero words.
        for (int i = 0; i < 512; ++i)
            hash = (hash ^ 0) * prime;
        return hash;
    }
    for (std::uint64_t word : *frame)
        hash = (hash ^ word) * prime;
    return hash;
}

void
PhysMemory::markBad(Addr addr)
{
    emv_assert(addr < sizeBytes, "bad-frame mark beyond memory");
    badFrames.insert(addr >> 12);
}

void
PhysMemory::clearBad(Addr addr)
{
    badFrames.erase(addr >> 12);
}

bool
PhysMemory::isBad(Addr addr) const
{
    return badFrames.count(addr >> 12) != 0;
}

std::vector<Addr>
PhysMemory::badFramesInRange(Addr base, Addr len) const
{
    std::vector<Addr> out;
    const std::uint64_t lo = base >> 12;
    const std::uint64_t hi = (base + len - 1) >> 12;
    for (std::uint64_t frame : badFrames) {
        if (frame >= lo && frame <= hi)
            out.push_back(frame << 12);
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
PhysMemory::anyBadInRange(Addr base, Addr len) const
{
    // The bad-frame set is tiny (a handful of hard faults); scan it
    // rather than the range.
    const std::uint64_t lo = base >> 12;
    const std::uint64_t hi = (base + len - 1) >> 12;
    for (std::uint64_t frame : badFrames) {
        if (frame >= lo && frame <= hi)
            return true;
    }
    return false;
}

void
PhysMemory::serialize(ckpt::Encoder &enc) const
{
    enc.u64(sizeBytes);

    std::vector<std::uint64_t> keys;
    keys.reserve(frames.size());
    for (const auto &[index, frame] : frames)
        keys.push_back(index);
    std::sort(keys.begin(), keys.end());
    enc.u64(keys.size());
    for (std::uint64_t index : keys) {
        enc.u64(index);
        const Frame &frame = *frames.at(index);
        for (std::uint64_t word : frame)
            enc.u64(word);
    }

    std::vector<std::uint64_t> bad(badFrames.begin(),
                                   badFrames.end());
    std::sort(bad.begin(), bad.end());
    enc.u64(bad.size());
    for (std::uint64_t frame : bad)
        enc.u64(frame);

    _stats.serialize(enc);
}

bool
PhysMemory::deserialize(ckpt::Decoder &dec)
{
    const Addr savedSize = dec.u64();
    if (dec.ok() && savedSize != sizeBytes) {
        dec.fail("physmem: size mismatch");
        return false;
    }

    frames.clear();
    const std::uint64_t nframes = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < nframes; ++i) {
        const std::uint64_t index = dec.u64();
        auto frame = std::make_unique<Frame>();
        for (auto &word : *frame)
            word = dec.u64();
        if (dec.ok())
            frames.emplace(index, std::move(frame));
    }

    badFrames.clear();
    const std::uint64_t nbad = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < nbad; ++i)
        badFrames.insert(dec.u64());

    if (!_stats.deserialize(dec))
        return false;
    return dec.ok();
}

} // namespace emv::mem
