#include "mem/buddy_allocator.hh"

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"

namespace emv::mem {

namespace {

constexpr Addr
orderBytes(unsigned order)
{
    return kPage4K << order;
}

} // namespace

unsigned
BuddyAllocator::orderForBytes(Addr bytes)
{
    unsigned order = 0;
    while (orderBytes(order) < bytes && order < kMaxOrder)
        ++order;
    emv_assert(orderBytes(order) >= bytes,
               "allocation of %llu bytes exceeds max order block",
               static_cast<unsigned long long>(bytes));
    return order;
}

BuddyAllocator::BuddyAllocator(Addr base, Addr size_bytes)
    : rangeBase(base), rangeSize(size_bytes),
      freeLists(kMaxOrder + 1)
{
    emv_assert(isAligned(base, kPage4K), "buddy base must be 4K aligned");
    emv_assert(size_bytes > 0 && isAligned(size_bytes, kPage4K),
               "buddy size must be a positive 4K multiple");

    // Seed the free lists with the largest naturally aligned blocks
    // (alignment is relative to rangeBase) covering the range.
    Addr offset = 0;
    while (offset < size_bytes) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               (!isAligned(offset, orderBytes(order)) ||
                offset + orderBytes(order) > size_bytes)) {
            --order;
        }
        freeLists[order].insert(base + offset);
        offset += orderBytes(order);
    }
}

bool
BuddyAllocator::splitTo(unsigned order)
{
    // Retained for API compatibility: true if allocate(order) could
    // succeed.
    for (unsigned k = order; k <= kMaxOrder; ++k) {
        if (!freeLists[k].empty())
            return true;
    }
    return false;
}

std::optional<Addr>
BuddyAllocator::allocate(unsigned order)
{
    emv_assert(order <= kMaxOrder, "order %u beyond max", order);

    // Globally top-down: choose the candidate block (across all
    // orders >= requested) with the highest end address, so low
    // "kernel" memory is consumed last — like Linux preferring
    // higher zones for movable allocations.
    int best_order = -1;
    Addr best_end = 0;
    for (unsigned k = order; k <= kMaxOrder; ++k) {
        if (freeLists[k].empty())
            continue;
        const Addr block = *std::prev(freeLists[k].end());
        const Addr end = block + orderBytes(k);
        if (best_order < 0 || end > best_end) {
            best_order = static_cast<int>(k);
            best_end = end;
        }
    }
    if (best_order < 0) {
        ++_stats.counter("alloc_failures");
        return std::nullopt;
    }

    unsigned k = static_cast<unsigned>(best_order);
    auto it = std::prev(freeLists[k].end());
    Addr block = *it;
    freeLists[k].erase(it);
    // Split down, keeping the top half each time.
    while (k > order) {
        --k;
        freeLists[k].insert(block);
        block += orderBytes(k);
    }
    ++_stats.counter("allocations");
    if (audit::enabled())
        auditInvariants();
    return block;
}

std::optional<Addr>
BuddyAllocator::allocateBytes(Addr bytes)
{
    return allocate(orderForBytes(bytes));
}

void
BuddyAllocator::insertFree(Addr block, unsigned order)
{
    // Coalesce with the buddy as long as it is also free.
    while (order < kMaxOrder) {
        const Addr offset = block - rangeBase;
        const Addr buddy_offset = offset ^ orderBytes(order);
        const Addr buddy = rangeBase + buddy_offset;
        auto it = freeLists[order].find(buddy);
        if (it == freeLists[order].end())
            break;
        freeLists[order].erase(it);
        block = rangeBase + std::min(offset, buddy_offset);
        ++order;
    }
    freeLists[order].insert(block);
}

void
BuddyAllocator::free(Addr block, unsigned order)
{
    emv_assert(order <= kMaxOrder, "order %u beyond max", order);
    emv_assert(block >= rangeBase &&
               block + orderBytes(order) <= rangeBase + rangeSize,
               "freed block %s outside managed range",
               hexAddr(block).c_str());
    ++_stats.counter("frees");
    insertFree(block, order);
    if (audit::enabled())
        auditInvariants();
}

bool
BuddyAllocator::rangeFree(Addr start, Addr length) const
{
    return freeIntervals().containsRange(start, start + length);
}

bool
BuddyAllocator::allocateRange(Addr start, Addr length)
{
    emv_assert(isAligned(start, kPage4K) && isAligned(length, kPage4K),
               "allocateRange arguments must be 4K aligned");
    if (length == 0)
        return true;
    if (start < rangeBase || start + length > rangeBase + rangeSize)
        return false;
    if (!rangeFree(start, length))
        return false;

    const Addr end = start + length;
    // Carve every free block that intersects [start, end): split
    // blocks recursively; pieces fully inside are consumed, pieces
    // outside go back on the free lists.
    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        auto &list = freeLists[order];
        for (auto it = list.begin(); it != list.end();) {
            const Addr bstart = *it;
            const Addr bend = bstart + orderBytes(order);
            if (bend <= start || bstart >= end) {
                ++it;
                continue;
            }
            it = list.erase(it);
            // Split this block into 4K pieces lazily: push halves
            // that straddle the boundary back through the same logic.
            struct Piece { Addr base; unsigned order; };
            std::vector<Piece> work{{bstart, order}};
            while (!work.empty()) {
                Piece p = work.back();
                work.pop_back();
                const Addr pend = p.base + orderBytes(p.order);
                if (p.base >= start && pend <= end)
                    continue;  // Fully consumed by the reservation.
                if (pend <= start || p.base >= end) {
                    insertFree(p.base, p.order);
                    continue;
                }
                emv_assert(p.order > 0, "carve reached order 0 straddle");
                const unsigned h = p.order - 1;
                work.push_back({p.base, h});
                work.push_back({p.base + orderBytes(h), h});
            }
        }
    }
    ++_stats.counter("range_allocations");
    if (audit::enabled())
        auditInvariants();
    return true;
}

void
BuddyAllocator::freeRange(Addr start, Addr length)
{
    emv_assert(isAligned(start, kPage4K) && isAligned(length, kPage4K),
               "freeRange arguments must be 4K aligned");
    // Return the range as order-0..n blocks with natural alignment.
    Addr addr = start;
    const Addr end = start + length;
    while (addr < end) {
        unsigned order = 0;
        const Addr offset = addr - rangeBase;
        while (order < kMaxOrder &&
               isAligned(offset, orderBytes(order + 1)) &&
               addr + orderBytes(order + 1) <= end) {
            ++order;
        }
        insertFree(addr, order);
        addr += orderBytes(order);
    }
    ++_stats.counter("range_frees");
    if (audit::enabled())
        auditInvariants();
}

void
BuddyAllocator::auditInvariants() const
{
    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        for (Addr block : freeLists[order]) {
            const Addr offset = block - rangeBase;
            EMV_INVARIANT(block >= rangeBase &&
                          offset + orderBytes(order) <= rangeSize,
                          "buddy: free block %s order %u outside "
                          "managed range", hexAddr(block).c_str(),
                          order);
            EMV_INVARIANT(isAligned(offset, orderBytes(order)),
                          "buddy: free block %s not aligned to "
                          "order %u", hexAddr(block).c_str(), order);
            if (order < kMaxOrder) {
                const Addr buddy =
                    rangeBase + (offset ^ orderBytes(order));
                EMV_INVARIANT(freeLists[order].count(buddy) == 0 ||
                              buddy == block,
                              "buddy: blocks %s and %s are free "
                              "buddies left uncoalesced at order %u",
                              hexAddr(std::min(block, buddy)).c_str(),
                              hexAddr(std::max(block, buddy)).c_str(),
                              order);
            }
        }
    }
    // If any block sat on two lists or two blocks overlapped, the
    // coalesced interval coverage would be short of the list total.
    EMV_INVARIANT(freeIntervals().totalLength() == freeBytes(),
                  "buddy: free-list accounting mismatch (%llu "
                  "interval bytes vs %llu list bytes)",
                  static_cast<unsigned long long>(
                      freeIntervals().totalLength()),
                  static_cast<unsigned long long>(freeBytes()));
}

Addr
BuddyAllocator::freeBytes() const
{
    Addr total = 0;
    for (unsigned order = 0; order <= kMaxOrder; ++order)
        total += freeLists[order].size() * orderBytes(order);
    return total;
}

IntervalSet
BuddyAllocator::freeIntervals() const
{
    IntervalSet set;
    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        for (Addr block : freeLists[order])
            set.insert(block, block + orderBytes(order));
    }
    return set;
}

Addr
BuddyAllocator::largestFreeRun() const
{
    auto largest = freeIntervals().largest();
    return largest ? largest->length() : 0;
}

double
BuddyAllocator::fragmentationIndex() const
{
    const Addr free_total = freeBytes();
    if (free_total == 0)
        return 0.0;
    const Addr run = largestFreeRun();
    return 1.0 - static_cast<double>(run) /
                 static_cast<double>(free_total);
}

void
BuddyAllocator::serialize(ckpt::Encoder &enc) const
{
    enc.u64(rangeBase);
    enc.u64(rangeSize);
    enc.u64(freeLists.size());
    for (const auto &list : freeLists) {
        enc.u64(list.size());
        for (Addr block : list)
            enc.u64(block);
    }
    _stats.serialize(enc);
}

bool
BuddyAllocator::deserialize(ckpt::Decoder &dec)
{
    const Addr savedBase = dec.u64();
    const Addr savedSize = dec.u64();
    if (dec.ok() &&
        (savedBase != rangeBase || savedSize != rangeSize)) {
        dec.fail("buddy: managed range mismatch");
        return false;
    }
    const std::uint64_t norders = dec.u64();
    if (dec.ok() && norders != freeLists.size()) {
        dec.fail("buddy: order count mismatch");
        return false;
    }
    for (std::uint64_t o = 0; dec.ok() && o < norders; ++o) {
        auto &list = freeLists[static_cast<std::size_t>(o)];
        list.clear();
        const std::uint64_t n = dec.u64();
        for (std::uint64_t i = 0; dec.ok() && i < n; ++i)
            list.insert(dec.u64());
    }
    if (!_stats.deserialize(dec))
        return false;
    return dec.ok();
}

} // namespace emv::mem
