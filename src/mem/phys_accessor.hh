/**
 * @file
 * Access to "my physical memory" for a kernel-level component.
 *
 * A native OS reads and writes host physical memory directly; a
 * guest OS reaches its guest-physical memory through whatever the
 * VMM mapped each gPA to.  PhysAccessor abstracts that difference so
 * emv::os::GuestOs runs unmodified in both roles — the same way one
 * Linux image runs bare-metal or under KVM.
 */

#pragma once

#include <cstdint>

#include "common/types.hh"
#include "mem/phys_memory.hh"

namespace emv::mem {

/** Word access to an OS's own physical address space. */
class PhysAccessor
{
  public:
    virtual ~PhysAccessor() = default;

    virtual std::uint64_t read64(Addr pa) const = 0;
    virtual void write64(Addr pa, std::uint64_t value) = 0;

    /** Zero a 4 KB frame (default: 512 word writes). */
    virtual void
    zeroFrame(Addr frame_base)
    {
        for (unsigned i = 0; i < 512; ++i)
            write64(frame_base + 8ull * i, 0);
    }

    /** Copy a 4 KB frame (page migration). */
    virtual void
    copyFrame(Addr dst_base, Addr src_base)
    {
        for (unsigned i = 0; i < 512; ++i)
            write64(dst_base + 8ull * i, read64(src_base + 8ull * i));
    }

    /** True if the underlying host frame has hard faults. */
    virtual bool isBad(Addr pa) const = 0;

    /** True if any 4 KB frame in [base, base+len) is faulty. */
    virtual bool
    anyBadInRange(Addr base, Addr len) const
    {
        for (Addr pa = base; pa < base + len; pa += kPage4K) {
            if (isBad(pa))
                return true;
        }
        return false;
    }
};

/** Identity accessor: the native case (PA == hPA). */
class HostPhysAccessor : public PhysAccessor
{
  public:
    explicit HostPhysAccessor(PhysMemory &mem) : mem(mem) {}

    std::uint64_t
    read64(Addr pa) const override
    {
        return mem.read64(pa);
    }

    void
    write64(Addr pa, std::uint64_t value) override
    {
        mem.write64(pa, value);
    }

    void
    zeroFrame(Addr frame_base) override
    {
        mem.zeroFrame(frame_base);
    }

    void
    copyFrame(Addr dst_base, Addr src_base) override
    {
        mem.copyFrame(dst_base, src_base);
    }

    bool
    isBad(Addr pa) const override
    {
        return mem.isBad(pa);
    }

    bool
    anyBadInRange(Addr base, Addr len) const override
    {
        return mem.anyBadInRange(base, len);
    }

  private:
    PhysMemory &mem;
};

} // namespace emv::mem

