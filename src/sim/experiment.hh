/**
 * @file
 * Experiment descriptors: the paper's configuration bars and the
 * machinery to run one (workload, configuration) cell.
 *
 * Labels follow the paper's figures: "4K" / "2M" / "1G" are native
 * page sizes; "A+B" is guest size A with VMM size B; "THP" enables
 * transparent huge pages; "DS" is the unvirtualized direct
 * segment; "DD", "4K+VD", "4K+GD" are the proposed modes; "sh4K"
 * and "sh2M" are shadow paging.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "workload/workload.hh"

namespace emv::sim {

/** One bar of a figure. */
struct ConfigSpec
{
    std::string label;
    core::Mode mode = core::Mode::Native;
    PageSize guestPageSize = PageSize::Size4K;
    PageSize vmmPageSize = PageSize::Size4K;
    bool thp = false;
    bool shadow = false;
};

/** Parse a label like "4K+2M", "DD", "THP", "sh4K". */
std::optional<ConfigSpec> specFromLabel(const std::string &label);

/** Fig. 11 bars (big-memory workloads). */
std::vector<ConfigSpec> figure11Configs();

/** Fig. 12 bars (compute workloads). */
std::vector<ConfigSpec> figure12Configs();

/** Fig. 1 preview bars. */
std::vector<ConfigSpec> figure1Configs();

/** Common run parameters. */
struct RunParams
{
    std::uint64_t warmupOps = 1000000;
    std::uint64_t measureOps = 3000000;
    double scale = 1.0;           //!< Workload footprint scale.
    std::uint64_t seed = 42;
    unsigned badFrames = 0;       //!< Hard faults (Fig. 13).
    std::uint64_t badFrameSeed = 99;

    // Fault injection (see fault/fault_plan.hh).
    std::string faultSpec;        //!< Plan, e.g. "dram@5000x8".
    std::string faultPolicy = "degrade";  //!< Or "failfast".
    std::uint64_t faultSeed = 7;  //!< Victim-selection seed.

    // Observability (see common/trace.hh, common/profile.hh).
    std::string statsJsonPath;    //!< Dump registry JSON here.
    std::string traceFlags;       //!< CSV of flags, e.g. "Tlb,Walk".
    std::string traceFilePath;    //!< Trace sink file ("" = stderr).
    bool profile = false;         //!< Collect phase timings.
    bool audit = false;           //!< Differential audit (audit.hh).

    /**
     * Parse "scale=0.25 ops=1000000 warmup=100000 trace=Tlb,Walk
     * tracefile=t.log statsjson=s.json profile=1" style argv.
     */
    void parseArgs(int argc, char **argv);

    /**
     * Push the trace/profile options into the global facilities.
     * Call once after parseArgs, before building machines.
     */
    void applyObservability() const;
};

/** One measured cell. */
struct CellResult
{
    std::string workload;
    std::string config;
    RunResult run;

    /** @{ Wall-clock throughput of the measure phase (how fast the
     * simulator itself ran, as opposed to the modeled cycles). */
    std::uint64_t measuredOps = 0;  //!< Trace ops measured.
    std::uint64_t hostNs = 0;       //!< Host wall time of those ops.

    double
    opsPerSec() const
    {
        return hostNs ? static_cast<double>(measuredOps) * 1e9 /
                            static_cast<double>(hostNs)
                      : 0.0;
    }

    double
    hostNsPerOp() const
    {
        return measuredOps ? static_cast<double>(hostNs) /
                                 static_cast<double>(measuredOps)
                           : 0.0;
    }
    /** @} */

    /** The paper's y-axis: execution-time overhead vs T_2Mideal. */
    double overhead() const { return run.totalOverhead(); }
};

/** Build a MachineConfig for a bar. */
MachineConfig makeMachineConfig(const ConfigSpec &spec,
                                const RunParams &params);

/** Run one (workload, config) cell: build, warm up, measure. */
CellResult runCell(workload::WorkloadKind kind,
                   const ConfigSpec &spec, const RunParams &params);

} // namespace emv::sim

