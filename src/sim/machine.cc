#include "sim/machine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/profile.hh"
#include "os/hotplug.hh"

namespace emv::sim {

using core::FaultSpace;
using core::Mode;

namespace {

constexpr Addr kRegionBase = 1ull << 40;     // 1 TB.
constexpr Addr kRegionStride = 1ull << 39;   // 512 GB apart.
constexpr Addr kIoGapStart = 3 * GiB;
constexpr Addr kIoGapEnd = 4 * GiB;
constexpr Addr kKernelKeepBytes = 256 * MiB;

Addr
autoGuestRam(Addr footprint)
{
    // Footprint + page tables + kernel + generous slack, so the
    // segment reservation and ordinary allocations both fit.
    return alignUp(footprint + footprint / 4 + 4 * GiB, kPage2M);
}

Addr
autoHostRam(Addr guest_ram)
{
    return alignUp(guest_ram + guest_ram / 16 + 2 * GiB, kPage2M);
}

} // namespace

Machine::Machine(const MachineConfig &config,
                 workload::Workload &workload)
    : cfg(config), wl(workload)
{
    prof::Scope build_scope(prof::Phase::MachineBuild);
    emv_assert(!cfg.shadowPaging ||
               cfg.mode == Mode::BaseVirtualized,
               "shadow paging replaces nested paging; use "
               "BaseVirtualized as the mode");

    if (core::isVirtualized(cfg.mode))
        buildVirtualized();
    else
        buildNative();

    placeRegions();

    // Guest segment first: populate() then skips its region.
    if (core::usesGuestSegment(cfg.mode)) {
        auto regs = _os->createGuestSegment(*proc);
        if (!regs) {
            emv_warn("guest segment creation failed (fragmented "
                     "gPA); falling back to paging");
        }
    }

    if (cfg.prePopulate)
        populate();

    injectBadFrames();
    setupSegments();
    wireMmu();
}

Machine::~Machine() = default;

void
Machine::buildNative()
{
    const Addr footprint = wl.info().footprintBytes;
    Addr ram = cfg.hostRamBytes ? cfg.hostRamBytes
                                : autoGuestRam(footprint);
    emv_assert(ram > kIoGapStart, "native machine too small");
    // Native physical space keeps the architectural I/O gap too.
    const Addr span = ram + (kIoGapEnd - kIoGapStart);
    _hostMem = std::make_unique<mem::PhysMemory>(span);
    hostAccessor = std::make_unique<mem::HostPhysAccessor>(*_hostMem);

    os::OsConfig os_cfg;
    os_cfg.thp = cfg.thp;
    std::vector<Interval> ram_ranges = {
        Interval{0, kIoGapStart}, Interval{kIoGapEnd, span}};
    _os = std::make_unique<os::GuestOs>(*hostAccessor, span,
                                        ram_ranges, os_cfg);

    if (cfg.guestFragmentation.enabled)
        applyGuestFragmentation();

    proc = &_os->createProcess();
}

void
Machine::buildVirtualized()
{
    // VMM-segment modes relocate the memory below the I/O gap to
    // the top (§VI.C); reserve gPA (and host) room for the move *in
    // addition to* any reserve the experiment wants for
    // self-ballooning.
    if (cfg.reclaimIoGap && core::usesVmmSegment(cfg.mode))
        cfg.extensionReserve += kIoGapStart - kKernelKeepBytes;

    const Addr footprint = wl.info().footprintBytes;
    const Addr guest_ram = cfg.guestRamBytes
                               ? cfg.guestRamBytes
                               : autoGuestRam(footprint);
    const Addr host_ram = cfg.hostRamBytes
                              ? cfg.hostRamBytes
                              : autoHostRam(guest_ram +
                                            cfg.extensionReserve);

    _hostMem = std::make_unique<mem::PhysMemory>(host_ram);
    _vmm = std::make_unique<vmm::Vmm>(*_hostMem, host_ram);

    if (cfg.hostFragmentation.enabled) {
        // Host fragmentation comes from *another VM's* scattered
        // pages: movable by host compaction, unlike pinned memory.
        mem::Fragmenter frag(cfg.hostFragmentation.seed);
        auto pins = frag.fragmentToRun(
            _vmm->hostBuddy(), cfg.hostFragmentation.maxRunBytes);
        vmm::VmConfig neighbor_cfg;
        neighbor_cfg.ramBytes =
            alignUp(pins.size() * kPage4K + 64 * MiB, kPage2M) +
            kIoGapEnd;
        neighbor_cfg.lowRamBytes = kIoGapStart;
        neighbor_cfg.eagerBacking = false;
        auto &neighbor = _vmm->createVm("neighbor", neighbor_cfg);
        Addr gpa = kIoGapEnd;
        for (const auto &pin : pins) {
            for (Addr off = 0; off < (kPage4K << pin.order);
                 off += kPage4K) {
                const bool ok =
                    neighbor.backWithFrame(gpa, pin.base + off);
                emv_assert(ok, "neighbor backing failed");
                gpa += kPage4K;
            }
        }
    }

    vmm::VmConfig vm_cfg;
    vm_cfg.ramBytes = guest_ram;
    vm_cfg.lowRamBytes = kIoGapStart;
    vm_cfg.ioGapStart = kIoGapStart;
    vm_cfg.ioGapEnd = kIoGapEnd;
    vm_cfg.extensionReserve = cfg.extensionReserve;
    vm_cfg.nestedPageSize = cfg.vmmPageSize;
    vm_cfg.eagerBacking = cfg.eagerBacking;
    vm_cfg.contiguousHostReservation = cfg.contiguousHostReservation;
    _vm = &_vmm->createVm("vm0", vm_cfg);

    os::OsConfig os_cfg;
    os_cfg.thp = cfg.thp;
    // Guest page tables go above the I/O gap so they live inside a
    // VMM direct segment (§III.B's kernel-module change).
    os_cfg.kernelAllocBase = kIoGapEnd;
    _os = std::make_unique<os::GuestOs>(_vm->guestPhys(),
                                        _vm->gpaSpan(),
                                        _vm->guestRamLayout(), os_cfg);

    // Reclaim the I/O gap when a VMM segment should cover (almost)
    // all guest memory (§VI.C).  This is a boot-time step: it must
    // precede the fragmentation that accumulates at runtime.
    if (cfg.reclaimIoGap && core::usesVmmSegment(cfg.mode)) {
        auto moved = os::reclaimIoGap(*_os, *_vm, kIoGapStart,
                                      kKernelKeepBytes);
        if (!moved)
            emv_warn("I/O gap reclamation failed");
    }

    if (cfg.guestFragmentation.enabled)
        applyGuestFragmentation();

    proc = &_os->createProcess();
}

void
Machine::applyGuestFragmentation()
{
    mem::Fragmenter frag(cfg.guestFragmentation.seed);
    auto pins = frag.fragmentToRun(
        _os->buddy(), cfg.guestFragmentation.maxRunBytes);
    if (!cfg.guestFragmentation.movable) {
        // Pinned fragmentation (driver buffers, balloons): immune
        // to compaction.
        for (const auto &pin : pins)
            _os->markUnmovable(pin.base, kPage4K << pin.order);
        return;
    }
    // Movable fragmentation: the scattered pages belong to a
    // background process, so compaction can migrate them.
    auto &background = _os->createProcess();
    Addr total = 0;
    for (const auto &pin : pins)
        total += kPage4K << pin.order;
    const Addr region_base = 1ull << 39;  // Below workload regions.
    _os->defineRegion(background, "background", region_base,
                      alignUp(std::max<Addr>(total, kPage4K),
                              kPage4K),
                      PageSize::Size4K);
    Addr va = region_base;
    for (const auto &pin : pins) {
        for (Addr off = 0; off < (kPage4K << pin.order);
             off += kPage4K) {
            background.pageTable().map(va, pin.base + off,
                                       PageSize::Size4K);
            va += kPage4K;
        }
    }
}

void
Machine::placeRegions()
{
    const auto &specs = wl.regions();
    std::vector<Addr> bases;
    bases.reserve(specs.size());
    Addr next = kRegionBase;
    for (const auto &spec : specs) {
        bases.push_back(next);
        _os->defineRegion(*proc, spec.name, next, spec.bytes,
                          cfg.guestPageSize, spec.primary);
        next = alignUp(next + spec.bytes + kRegionStride,
                       kRegionStride);
    }
    wl.bindRegions(bases);
}

void
Machine::populate()
{
    const auto &seg = proc->guestSegment();
    for (const auto &region : proc->regions()) {
        // Segment-covered memory needs no page tables: translation
        // bypasses them entirely (Table I), and escape/fallback
        // pages are faulted in lazily per §VI.B.
        if (seg.enabled() && seg.contains(region.base) &&
            seg.contains(region.end() - 1)) {
            continue;
        }
        _os->populateRange(*proc, region.base, region.bytes);
    }
}

void
Machine::injectBadFrames()
{
    if (cfg.badFrames == 0)
        return;
    // Faults land inside the (future) segment backing, where they
    // would otherwise forbid segment creation (§V).
    Addr lo = 0;
    Addr len = 0;
    if (core::isVirtualized(cfg.mode)) {
        auto extent = _vm->backingMap().largestExtent();
        emv_assert(extent.has_value(), "no backing to poison");
        lo = extent->hpa;
        len = extent->bytes;
    } else {
        const auto &seg = proc->guestSegment();
        emv_assert(seg.enabled(),
                   "bad-frame injection needs a native segment");
        lo = seg.base() + seg.offset();
        len = seg.length();
    }
    Rng rng(cfg.badFrameSeed);
    unsigned injected = 0;
    while (injected < cfg.badFrames) {
        const Addr frame =
            lo + alignDown(rng.nextBelow(len), kPage4K);
        if (_hostMem->isBad(frame))
            continue;
        _hostMem->markBad(frame);
        ++injected;
    }
}

void
Machine::setupSegments()
{
    if (core::usesVmmSegment(cfg.mode)) {
        const Addr high_ram =
            _vm->config().ramBytes - _vm->config().lowRamBytes;
        // Cover at least the RAM above the gap (plus whatever the
        // I/O-gap reclaim moved there).
        auto info = _vm->createVmmSegment(high_ram);
        if (info) {
            vmmSegmentInfo = *info;
        } else {
            emv_warn("VMM segment creation failed (fragmented "
                     "host); staying on nested paging");
        }
    }
}

void
Machine::wireMmu()
{
    _mmu = std::make_unique<core::Mmu>(*_hostMem, cfg.mmu);

    if (cfg.shadowPaging) {
        shadow = std::make_unique<vmm::ShadowPager>(*_vm, *proc);
        shadow->rebuildAll();
        _mmu->setMode(Mode::Native);
        _mmu->setNativeRoot(shadow->shadowRoot());
    } else {
        _mmu->setMode(cfg.mode);
        if (core::isVirtualized(cfg.mode)) {
            _mmu->setGuestRoot(proc->pageTable().root());
            _mmu->setNestedRoot(_vm->nestedRoot());
        } else {
            _mmu->setNativeRoot(proc->pageTable().root());
        }
    }

    // Segments + escape filters.
    if (core::usesGuestSegment(cfg.mode) &&
        proc->guestSegment().enabled()) {
        _mmu->setGuestSegment(proc->guestSegment());
        if (cfg.mode == Mode::NativeDirect) {
            const auto &seg = proc->guestSegment();
            for (Addr bad : _hostMem->badFramesInRange(
                     seg.base() + seg.offset(), seg.length())) {
                _mmu->guestFilter().insertPage(bad - seg.offset());
            }
        }
    }
    if (vmmSegmentInfo) {
        _mmu->setVmmSegment(vmmSegmentInfo->regs);
        for (Addr gpa : vmmSegmentInfo->escapedGpas)
            _mmu->vmmFilter().insertPage(gpa);
    }

    // TLB / shadow coherence hooks.
    if (_vm) {
        _vm->setNestedChangeHook([this](Addr gpa, PageSize size) {
            _mmu->invalidateNestedPage(gpa, size);
            if (shadow)
                shadow->onBackingChanged(gpa, pageBytes(size));
        });
    }
    _os->setMappingHook([this](os::Process &p, Addr va, Addr bytes,
                               PageSize size, bool mapped) {
        if (&p != proc)
            return;
        if (mapped) {
            if (shadow)
                shadow->onGuestMapped(va, bytes);
        } else {
            _mmu->invalidateGuestPage(va, size);
            shootdownCyclesPool += static_cast<double>(
                cfg.mmu.costs.shootdownCycles);
            if (shadow)
                shadow->onGuestUnmapped(va, bytes);
        }
    });

    vmExitBase = _vm ? _vm->vmExits() : 0;
    shadowExitBase = shadow ? shadow->syncExits() : 0;

    // Export every component under a common "machine" root so stat
    // dumps read "machine.mmu.l1_misses", "machine.os.major_faults".
    _mmu->stats().setParent("machine");
    _os->stats().setParent("machine");
    _os->buddy().stats().setParent(&_os->stats());
    _hostMem->stats().setParent("machine");
    if (_vmm) {
        _vmm->stats().setParent("machine");
        _vmm->hostBuddy().stats().setParent(&_vmm->stats());
    }
    if (_vm)
        _vm->stats().setParent("machine");
    if (shadow)
        shadow->stats().setParent("machine");
}

bool
Machine::serviceFault(const core::TranslationResult &result)
{
    prof::Scope fault_scope(prof::Phase::FaultService);
    if (result.faultSpace == FaultSpace::Nested) {
        emv_assert(_vm, "nested fault without a VM");
        if (!_vm->ensureBacked(result.faultAddr))
            emv_fatal("unbackable nested fault at %s",
                      hexAddr(result.faultAddr).c_str());
        return true;
    }
    auto outcome = _os->handleFault(*proc, result.faultAddr);
    if (!outcome.ok)
        emv_fatal("guest segfault at %s",
                  hexAddr(result.faultAddr).c_str());
    ++guestFaultCount;
    faultCyclesPool +=
        static_cast<double>(cfg.mmu.costs.guestFaultCycles);
    return true;
}

void
Machine::resetStats()
{
    _mmu->stats().resetAll();
    faultCyclesPool = 0.0;
    shootdownCyclesPool = 0.0;
    guestFaultCount = 0;
    remapCount = 0;
    accessCount = 0;
    baseCyclesPool = 0.0;
    vmExitBase = _vm ? _vm->vmExits() : 0;
    shadowExitBase = shadow ? shadow->syncExits() : 0;
}

RunResult
Machine::run(std::uint64_t ops)
{
    const auto &stats = _mmu->stats();
    struct Snapshot
    {
        std::uint64_t l1m, l2m, walks, dd, ds, cb, cv, cg, cn;
        double walkCycles, transCycles;
    };
    auto snap = [&]() {
        return Snapshot{
            stats.counterValue("l1_misses"),
            stats.counterValue("l2_misses"),
            stats.counterValue("walks"),
            stats.counterValue("dd_fast_hits"),
            stats.counterValue("ds_fast_hits"),
            stats.counterValue("cat_both"),
            stats.counterValue("cat_vmm_only"),
            stats.counterValue("cat_guest_only"),
            stats.counterValue("cat_neither"),
            stats.scalarValue("walk_cycles"),
            stats.scalarValue("translation_cycles"),
        };
    };
    const Snapshot before = snap();
    const double fault0 = faultCyclesPool;
    const double shoot0 = shootdownCyclesPool;
    const double base0 = baseCyclesPool;
    const std::uint64_t faults0 = guestFaultCount;
    const std::uint64_t access0 = accessCount;
    const std::uint64_t remap0 = remapCount;
    const std::uint64_t exits0 = _vm ? _vm->vmExits() : 0;
    const std::uint64_t shadow0 = shadow ? shadow->syncExits() : 0;

    const double base_per_access = wl.info().baseCyclesPerAccess;

    for (std::uint64_t i = 0; i < ops; ++i) {
        const auto op = wl.next();
        if (op.kind == workload::Op::Kind::Remap) {
            ++remapCount;
            _os->unmapRange(*proc, op.va, op.bytes);
            _os->populateRange(*proc, op.va, op.bytes);
            // First-touch faults for the fresh mapping.
            faultCyclesPool +=
                static_cast<double>(op.bytes / kPage4K) *
                static_cast<double>(cfg.mmu.costs.guestFaultCycles) /
                512.0;
            continue;
        }
        ++accessCount;
        baseCyclesPool += base_per_access;
        prof::Scope xlate_scope(prof::Phase::Translate);
        auto result = _mmu->translate(op.va);
        int retries = 0;
        while (!result.ok) {
            emv_assert(retries++ < 4, "translation livelock at %s",
                       hexAddr(op.va).c_str());
            serviceFault(result);
            result = _mmu->translate(op.va);
        }
    }

    const Snapshot after = snap();
    RunResult out;
    out.accessOps = accessCount - access0;
    out.remapOps = remapCount - remap0;
    out.baseCycles = baseCyclesPool - base0;
    out.translationCycles = after.transCycles - before.transCycles;
    out.faultCycles = faultCyclesPool - fault0;
    out.shootdownCycles = shootdownCyclesPool - shoot0;
    const std::uint64_t exits =
        (_vm ? _vm->vmExits() : 0) - exits0 +
        (shadow ? shadow->syncExits() : 0) - shadow0;
    out.vmExitCycles = static_cast<double>(exits) *
                       static_cast<double>(cfg.mmu.costs.vmExitCycles);
    out.l1Misses = after.l1m - before.l1m;
    out.l2Misses = after.l2m - before.l2m;
    out.walks = after.walks - before.walks;
    out.guestFaults = guestFaultCount - faults0;
    out.ddFastHits = after.dd - before.dd;
    out.dsFastHits = after.ds - before.ds;
    const double walk_cycles = after.walkCycles - before.walkCycles;
    out.cyclesPerWalk =
        out.walks ? walk_cycles / static_cast<double>(out.walks)
                  : 0.0;
    const double denom = static_cast<double>(out.walks + out.ddFastHits +
                                             out.dsFastHits);
    if (denom > 0.0) {
        out.fractionBoth =
            static_cast<double>(after.cb - before.cb) / denom;
        out.fractionVmmOnly =
            static_cast<double>(after.cv - before.cv) / denom;
        out.fractionGuestOnly =
            static_cast<double>(after.cg - before.cg) / denom;
    }
    return out;
}

std::optional<std::uint64_t>
Machine::upgradeWithHostCompaction(std::uint64_t max_migrations)
{
    emv_assert(_vm, "host compaction needs a VM");
    // GuestDirect -> DualDirect only needs the *guest segment's*
    // backing to be host-contiguous (segment-covered translations
    // never touch the guest page tables).  BaseVirtualized -> VMM
    // Direct needs the whole high range (page tables included).
    Addr target_base = kIoGapEnd;
    Addr target_bytes =
        _vm->config().ramBytes - _vm->config().lowRamBytes;
    const auto &gseg = proc->guestSegment();
    if (cfg.mode == Mode::GuestDirect && gseg.enabled()) {
        target_base = gseg.base() + gseg.offset();
        target_bytes = gseg.length();
    }
    auto migrated = _vm->materializeVmmSegmentBacking(
        target_base, target_bytes, max_migrations);
    if (!migrated)
        return std::nullopt;
    auto info = _vm->createVmmSegment(target_bytes);
    if (!info)
        return std::nullopt;
    vmmSegmentInfo = *info;
    _mmu->setVmmSegment(info->regs);
    for (Addr gpa : info->escapedGpas)
        _mmu->vmmFilter().insertPage(gpa);
    const Mode next = cfg.mode == Mode::GuestDirect
                          ? Mode::DualDirect
                          : Mode::VmmDirect;
    cfg.mode = next;
    _mmu->setMode(next);
    return migrated;
}

bool
Machine::selfBalloonGuestSegment()
{
    emv_assert(_vm, "self-ballooning needs a VM");
    const auto *primary = proc->primaryRegion();
    if (!primary)
        return false;
    if (!balloon)
        balloon = std::make_unique<os::BalloonDriver>(*_os, *_vm);
    auto ext = balloon->selfBalloon(primary->bytes);
    if (!ext)
        return false;
    auto regs = _os->createGuestSegment(*proc);
    if (!regs)
        return false;
    _mmu->setGuestSegment(*regs);
    _mmu->flushGuestContext();

    // The hot-added extension enlarged the backing extent; refresh
    // the VMM segment so Dual Direct covers the new guest segment.
    if (core::usesVmmSegment(cfg.mode)) {
        auto info = _vm->createVmmSegment(primary->bytes);
        if (info) {
            vmmSegmentInfo = *info;
            _mmu->setVmmSegment(info->regs);
            _mmu->vmmFilter().clear();
            for (Addr gpa : info->escapedGpas)
                _mmu->vmmFilter().insertPage(gpa);
            _mmu->flushAll();
        }
    }
    return true;
}

} // namespace emv::sim
