#include "sim/machine.hh"

#include <algorithm>

#include "common/ckpt.hh"
#include "common/logging.hh"
#include "common/profile.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"
#include "os/hotplug.hh"

namespace emv::sim {

using core::FaultSpace;
using core::Mode;

namespace {

constexpr Addr kRegionBase = 1ull << 40;     // 1 TB.
constexpr Addr kRegionStride = 1ull << 39;   // 512 GB apart.
constexpr Addr kIoGapStart = 3 * GiB;
constexpr Addr kIoGapEnd = 4 * GiB;
constexpr Addr kKernelKeepBytes = 256 * MiB;

Addr
autoGuestRam(Addr footprint)
{
    // Footprint + page tables + kernel + generous slack, so the
    // segment reservation and ordinary allocations both fit.
    return alignUp(footprint + footprint / 4 + 4 * GiB, kPage2M);
}

Addr
autoHostRam(Addr guest_ram)
{
    return alignUp(guest_ram + guest_ram / 16 + 2 * GiB, kPage2M);
}

} // namespace

Machine::Machine(const MachineConfig &config,
                 workload::Workload &workload)
    : cfg(config), wl(workload)
{
    prof::Scope build_scope(prof::Phase::MachineBuild);
    emv_assert(!cfg.shadowPaging ||
               cfg.mode == Mode::BaseVirtualized,
               "shadow paging replaces nested paging; use "
               "BaseVirtualized as the mode");

    if (core::isVirtualized(cfg.mode))
        buildVirtualized();
    else
        buildNative();

    placeRegions();

    // Guest segment first: populate() then skips its region.
    if (core::usesGuestSegment(cfg.mode)) {
        auto regs = _os->createGuestSegment(*proc);
        if (!regs) {
            emv_warn("guest segment creation failed (fragmented "
                     "gPA); falling back to paging");
        }
    }

    if (cfg.prePopulate)
        populate();

    injectBadFrames();
    setupSegments();
    wireMmu();
}

Machine::~Machine() = default;

void
Machine::buildNative()
{
    const Addr footprint = wl.info().footprintBytes;
    Addr ram = cfg.hostRamBytes ? cfg.hostRamBytes
                                : autoGuestRam(footprint);
    emv_assert(ram > kIoGapStart, "native machine too small");
    // Native physical space keeps the architectural I/O gap too.
    const Addr span = ram + (kIoGapEnd - kIoGapStart);
    _hostMem = std::make_unique<mem::PhysMemory>(span);
    hostAccessor = std::make_unique<mem::HostPhysAccessor>(*_hostMem);

    os::OsConfig os_cfg;
    os_cfg.thp = cfg.thp;
    std::vector<Interval> ram_ranges = {
        Interval{0, kIoGapStart}, Interval{kIoGapEnd, span}};
    _os = std::make_unique<os::GuestOs>(*hostAccessor, span,
                                        ram_ranges, os_cfg);

    if (cfg.guestFragmentation.enabled)
        applyGuestFragmentation();

    proc = &_os->createProcess();
}

void
Machine::buildVirtualized()
{
    // VMM-segment modes relocate the memory below the I/O gap to
    // the top (§VI.C); reserve gPA (and host) room for the move *in
    // addition to* any reserve the experiment wants for
    // self-ballooning.
    if (cfg.reclaimIoGap && core::usesVmmSegment(cfg.mode))
        cfg.extensionReserve += kIoGapStart - kKernelKeepBytes;

    const Addr footprint = wl.info().footprintBytes;
    const Addr guest_ram = cfg.guestRamBytes
                               ? cfg.guestRamBytes
                               : autoGuestRam(footprint);
    const Addr host_ram = cfg.hostRamBytes
                              ? cfg.hostRamBytes
                              : autoHostRam(guest_ram +
                                            cfg.extensionReserve);

    _hostMem = std::make_unique<mem::PhysMemory>(host_ram);
    _vmm = std::make_unique<vmm::Vmm>(*_hostMem, host_ram);

    if (cfg.hostFragmentation.enabled) {
        // Host fragmentation comes from *another VM's* scattered
        // pages: movable by host compaction, unlike pinned memory.
        mem::Fragmenter frag(cfg.hostFragmentation.seed);
        auto pins = frag.fragmentToRun(
            _vmm->hostBuddy(), cfg.hostFragmentation.maxRunBytes);
        vmm::VmConfig neighbor_cfg;
        neighbor_cfg.ramBytes =
            alignUp(pins.size() * kPage4K + 64 * MiB, kPage2M) +
            kIoGapEnd;
        neighbor_cfg.lowRamBytes = kIoGapStart;
        neighbor_cfg.eagerBacking = false;
        auto &neighbor = _vmm->createVm("neighbor", neighbor_cfg);
        Addr gpa = kIoGapEnd;
        for (const auto &pin : pins) {
            for (Addr off = 0; off < (kPage4K << pin.order);
                 off += kPage4K) {
                const bool ok =
                    neighbor.backWithFrame(gpa, pin.base + off);
                emv_assert(ok, "neighbor backing failed");
                gpa += kPage4K;
            }
        }
    }

    vmm::VmConfig vm_cfg;
    vm_cfg.ramBytes = guest_ram;
    vm_cfg.lowRamBytes = kIoGapStart;
    vm_cfg.ioGapStart = kIoGapStart;
    vm_cfg.ioGapEnd = kIoGapEnd;
    vm_cfg.extensionReserve = cfg.extensionReserve;
    vm_cfg.nestedPageSize = cfg.vmmPageSize;
    vm_cfg.eagerBacking = cfg.eagerBacking;
    vm_cfg.contiguousHostReservation = cfg.contiguousHostReservation;
    _vm = &_vmm->createVm("vm0", vm_cfg);

    os::OsConfig os_cfg;
    os_cfg.thp = cfg.thp;
    // Guest page tables go above the I/O gap so they live inside a
    // VMM direct segment (§III.B's kernel-module change).
    os_cfg.kernelAllocBase = kIoGapEnd;
    _os = std::make_unique<os::GuestOs>(_vm->guestPhys(),
                                        _vm->gpaSpan(),
                                        _vm->guestRamLayout(), os_cfg);

    // Reclaim the I/O gap when a VMM segment should cover (almost)
    // all guest memory (§VI.C).  This is a boot-time step: it must
    // precede the fragmentation that accumulates at runtime.
    if (cfg.reclaimIoGap && core::usesVmmSegment(cfg.mode)) {
        auto moved = os::reclaimIoGap(*_os, *_vm, kIoGapStart,
                                      kKernelKeepBytes);
        if (!moved)
            emv_warn("I/O gap reclamation failed");
    }

    if (cfg.guestFragmentation.enabled)
        applyGuestFragmentation();

    proc = &_os->createProcess();
}

void
Machine::applyGuestFragmentation()
{
    mem::Fragmenter frag(cfg.guestFragmentation.seed);
    auto pins = frag.fragmentToRun(
        _os->buddy(), cfg.guestFragmentation.maxRunBytes);
    if (!cfg.guestFragmentation.movable) {
        // Pinned fragmentation (driver buffers, balloons): immune
        // to compaction.
        for (const auto &pin : pins)
            _os->markUnmovable(pin.base, kPage4K << pin.order);
        return;
    }
    // Movable fragmentation: the scattered pages belong to a
    // background process, so compaction can migrate them.
    auto &background = _os->createProcess();
    Addr total = 0;
    for (const auto &pin : pins)
        total += kPage4K << pin.order;
    const Addr region_base = 1ull << 39;  // Below workload regions.
    _os->defineRegion(background, "background", region_base,
                      alignUp(std::max<Addr>(total, kPage4K),
                              kPage4K),
                      PageSize::Size4K);
    Addr va = region_base;
    for (const auto &pin : pins) {
        for (Addr off = 0; off < (kPage4K << pin.order);
             off += kPage4K) {
            background.pageTable().map(va, pin.base + off,
                                       PageSize::Size4K);
            va += kPage4K;
        }
    }
}

void
Machine::placeRegions()
{
    const auto &specs = wl.regions();
    std::vector<Addr> bases;
    bases.reserve(specs.size());
    Addr next = kRegionBase;
    for (const auto &spec : specs) {
        bases.push_back(next);
        _os->defineRegion(*proc, spec.name, next, spec.bytes,
                          cfg.guestPageSize, spec.primary);
        next = alignUp(next + spec.bytes + kRegionStride,
                       kRegionStride);
    }
    wl.bindRegions(bases);
}

void
Machine::populate()
{
    const auto &seg = proc->guestSegment();
    for (const auto &region : proc->regions()) {
        // Segment-covered memory needs no page tables: translation
        // bypasses them entirely (Table I), and escape/fallback
        // pages are faulted in lazily per §VI.B.
        if (seg.enabled() && seg.contains(region.base) &&
            seg.contains(region.end() - 1)) {
            continue;
        }
        _os->populateRange(*proc, region.base, region.bytes);
    }
}

void
Machine::injectBadFrames()
{
    if (cfg.badFrames == 0)
        return;
    // Faults land inside the (future) segment backing, where they
    // would otherwise forbid segment creation (§V).
    Addr lo = 0;
    Addr len = 0;
    if (core::isVirtualized(cfg.mode)) {
        auto extent = _vm->backingMap().largestExtent();
        emv_assert(extent.has_value(), "no backing to poison");
        lo = extent->hpa;
        len = extent->bytes;
    } else {
        const auto &seg = proc->guestSegment();
        emv_assert(seg.enabled(),
                   "bad-frame injection needs a native segment");
        lo = seg.base() + seg.offset();
        len = seg.length();
    }
    Rng rng(cfg.badFrameSeed);
    unsigned injected = 0;
    while (injected < cfg.badFrames) {
        const Addr frame =
            lo + alignDown(rng.nextBelow(len), kPage4K);
        if (_hostMem->isBad(frame))
            continue;
        _hostMem->markBad(frame);
        ++injected;
    }
}

void
Machine::setupSegments()
{
    if (core::usesVmmSegment(cfg.mode)) {
        const Addr high_ram =
            _vm->config().ramBytes - _vm->config().lowRamBytes;
        // Cover at least the RAM above the gap (plus whatever the
        // I/O-gap reclaim moved there).
        auto info = _vm->createVmmSegment(high_ram);
        if (info) {
            vmmSegmentInfo = *info;
        } else {
            emv_warn("VMM segment creation failed (fragmented "
                     "host); staying on nested paging");
        }
    }
}

void
Machine::wireMmu()
{
    _mmu = std::make_unique<core::Mmu>(*_hostMem, cfg.mmu);

    if (cfg.shadowPaging) {
        shadow = std::make_unique<vmm::ShadowPager>(*_vm, *proc);
        shadow->rebuildAll();
        _mmu->setMode(Mode::Native);
        _mmu->setNativeRoot(shadow->shadowRoot());
    } else {
        _mmu->setMode(cfg.mode);
        if (core::isVirtualized(cfg.mode)) {
            _mmu->setGuestRoot(proc->pageTable().root());
            _mmu->setNestedRoot(_vm->nestedRoot());
        } else {
            _mmu->setNativeRoot(proc->pageTable().root());
        }
    }

    // Segments + escape filters.
    if (core::usesGuestSegment(cfg.mode) &&
        proc->guestSegment().enabled()) {
        _mmu->setGuestSegment(proc->guestSegment());
        if (cfg.mode == Mode::NativeDirect) {
            const auto &seg = proc->guestSegment();
            for (Addr bad : _hostMem->badFramesInRange(
                     seg.base() + seg.offset(), seg.length())) {
                _mmu->guestFilter().insertPage(bad - seg.offset());
            }
        }
    }
    if (vmmSegmentInfo) {
        _mmu->setVmmSegment(vmmSegmentInfo->regs);
        for (Addr gpa : vmmSegmentInfo->escapedGpas)
            _mmu->vmmFilter().insertPage(gpa);
    }

    // TLB / shadow coherence hooks.
    if (_vm) {
        _vm->setNestedChangeHook([this](Addr gpa, PageSize size) {
            _mmu->invalidateNestedPage(gpa, size);
            if (shadow)
                shadow->onBackingChanged(gpa, pageBytes(size));
        });
    }
    _os->setMappingHook([this](os::Process &p, Addr va, Addr bytes,
                               PageSize size, bool mapped) {
        if (&p != proc)
            return;
        if (mapped) {
            if (shadow)
                shadow->onGuestMapped(va, bytes);
        } else {
            _mmu->invalidateGuestPage(va, size);
            shootdownCyclesPool += static_cast<double>(
                cfg.mmu.costs.shootdownCycles);
            if (shadow)
                shadow->onGuestUnmapped(va, bytes);
        }
    });

    vmExitBase = _vm ? _vm->vmExits() : 0;
    shadowExitBase = shadow ? shadow->syncExits() : 0;

    // Fault injection: always built so the hot loop's pending()
    // check is one branch; an empty plan never fires.
    injector = std::make_unique<fault::FaultInjector>(cfg.faultPlan,
                                                      cfg.faultSeed);

    // Export every component under a common "machine" root so stat
    // dumps read "machine.mmu.l1_misses", "machine.os.major_faults".
    _mmu->stats().setParent("machine");
    _os->stats().setParent("machine");
    _os->buddy().stats().setParent(&_os->stats());
    _hostMem->stats().setParent("machine");
    if (_vmm) {
        _vmm->stats().setParent("machine");
        _vmm->hostBuddy().stats().setParent(&_vmm->stats());
    }
    if (_vm)
        _vm->stats().setParent("machine");
    if (shadow)
        shadow->stats().setParent("machine");
    injector->stats().setParent("machine");
}

bool
Machine::serviceFault(const core::TranslationResult &result)
{
    prof::Scope fault_scope(prof::Phase::FaultService);
    if (result.faultSpace == FaultSpace::Nested) {
        emv_assert(_vm, "nested fault without a VM");
        if (!_vm->ensureBacked(result.faultAddr)) {
            return recordTerminalFault("unbackable nested fault",
                                       FaultSpace::Nested,
                                       result.faultAddr);
        }
        return true;
    }
    auto outcome = _os->handleFault(*proc, result.faultAddr);
    if (!outcome.ok) {
        return recordTerminalFault("guest segfault",
                                   FaultSpace::Guest,
                                   result.faultAddr);
    }
    ++guestFaultCount;
    faultCyclesPool +=
        static_cast<double>(cfg.mmu.costs.guestFaultCycles);
    return true;
}

void
Machine::resetStats()
{
    _mmu->stats().resetAll();
    _mmu->resetTranslationLatency();
    faultCyclesPool = 0.0;
    shootdownCyclesPool = 0.0;
    guestFaultCount = 0;
    remapCount = 0;
    accessCount = 0;
    baseCyclesPool = 0.0;
    vmExitBase = _vm ? _vm->vmExits() : 0;
    shadowExitBase = shadow ? shadow->syncExits() : 0;
    // Counter sources just moved backwards; re-baseline the window.
    if (telem)
        telem->rebase();
}

void
Machine::attachTelemetry(telemetry::TelemetryRecorder *recorder)
{
    telem = recorder;
    if (!telem)
        return;

    const auto &stats = _mmu->stats();
    const auto ctr = [&stats](const char *name) {
        return [&stats, name] { return stats.counterValue(name); };
    };
    telem->addCounter("accesses", ctr("accesses"));
    telem->addCounter("l1_misses", ctr("l1_misses"));
    telem->addCounter("l2_misses", ctr("l2_misses"));
    telem->addCounter("walks", ctr("walks"));
    telem->addCounter("guest_refs", ctr("guest_refs"));
    telem->addCounter("nested_refs", ctr("nested_refs"));
    telem->addCounter("native_refs", ctr("native_refs"));
    telem->addCounter("dd_fast_hits", ctr("dd_fast_hits"));
    telem->addCounter("ds_fast_hits", ctr("ds_fast_hits"));
    telem->addCounter("escape_slow_paths",
                      ctr("escape_slow_paths"));
    telem->addCounter("faults", ctr("faults"));
    telem->addCounter("guest_faults",
                      [this] { return guestFaultCount; });
    telem->addCounter("remaps", [this] { return remapCount; });
    telem->addCounter("downgrades", [this] {
        return injector->stats().counterValue("downgrades");
    });
    telem->addScalar("translation_cycles", [&stats] {
        return stats.scalarValue("translation_cycles");
    });
    telem->addScalar("base_cycles",
                     [this] { return baseCyclesPool; });
    telem->addScalar("fault_cycles",
                     [this] { return faultCyclesPool; });
    telem->addScalar("shootdown_cycles",
                     [this] { return shootdownCyclesPool; });
    telem->addGauge("guest_filter_fill", [this] {
        return _mmu->guestFilter().fillRatio();
    });
    telem->addGauge("vmm_filter_fill", [this] {
        return _mmu->vmmFilter().fillRatio();
    });
    telem->setLatencySource(&_mmu->translationLatency());
    telem->setModeSource(
        [this] { return std::string(core::modeName(cfg.mode)); });
    telem->rebase();
}

RunResult
Machine::run(std::uint64_t ops)
{
    if (_terminalFault) {
        // A previous interval aborted; there is nothing to replay.
        RunResult out;
        out.completed = false;
        return out;
    }
    const auto &stats = _mmu->stats();
    struct Snapshot
    {
        std::uint64_t l1m, l2m, walks, dd, ds, cb, cv, cg, cn;
        double walkCycles, transCycles;
    };
    auto snap = [&]() {
        return Snapshot{
            stats.counterValue("l1_misses"),
            stats.counterValue("l2_misses"),
            stats.counterValue("walks"),
            stats.counterValue("dd_fast_hits"),
            stats.counterValue("ds_fast_hits"),
            stats.counterValue("cat_both"),
            stats.counterValue("cat_vmm_only"),
            stats.counterValue("cat_guest_only"),
            stats.counterValue("cat_neither"),
            stats.scalarValue("walk_cycles"),
            stats.scalarValue("translation_cycles"),
        };
    };
    const Snapshot before = snap();
    const double fault0 = faultCyclesPool;
    const double shoot0 = shootdownCyclesPool;
    const double base0 = baseCyclesPool;
    const std::uint64_t faults0 = guestFaultCount;
    const std::uint64_t access0 = accessCount;
    const std::uint64_t remap0 = remapCount;
    const std::uint64_t exits0 = _vm ? _vm->vmExits() : 0;
    const std::uint64_t shadow0 = shadow ? shadow->syncExits() : 0;

    const double base_per_access = wl.info().baseCyclesPerAccess;

    for (std::uint64_t i = 0; i < ops; ++i) {
        // Deliver scheduled faults before the op they precede.
        if (injector->pending(opCursor))
            applyScheduledFaults();
        if (_terminalFault)
            break;
        const auto op = wl.next();
        ++opCursor;
        if (op.kind == workload::Op::Kind::Remap) {
            ++remapCount;
            _os->unmapRange(*proc, op.va, op.bytes);
            _os->populateRange(*proc, op.va, op.bytes);
            // First-touch faults for the fresh mapping.
            faultCyclesPool +=
                static_cast<double>(op.bytes / kPage4K) *
                static_cast<double>(cfg.mmu.costs.guestFaultCycles) /
                512.0;
            if (telem)
                telem->onOp();
            continue;
        }
        ++accessCount;
        baseCyclesPool += base_per_access;
        prof::Scope xlate_scope(prof::Phase::Translate);
        auto result = _mmu->translate(op.va);
        int retries = 0;
        bool aborted = false;
        while (!result.ok) {
            emv_assert(retries++ < 4, "translation livelock at %s",
                       hexAddr(op.va).c_str());
            if (!serviceFault(result)) {
                aborted = true;
                break;
            }
            result = _mmu->translate(op.va);
        }
        if (aborted)
            break;
        if (telem)
            telem->onOp();
    }

    const Snapshot after = snap();
    RunResult out;
    out.completed = !_terminalFault;
    out.accessOps = accessCount - access0;
    out.remapOps = remapCount - remap0;
    out.baseCycles = baseCyclesPool - base0;
    out.translationCycles = after.transCycles - before.transCycles;
    out.faultCycles = faultCyclesPool - fault0;
    out.shootdownCycles = shootdownCyclesPool - shoot0;
    const std::uint64_t exits =
        (_vm ? _vm->vmExits() : 0) - exits0 +
        (shadow ? shadow->syncExits() : 0) - shadow0;
    out.vmExitCycles = static_cast<double>(exits) *
                       static_cast<double>(cfg.mmu.costs.vmExitCycles);
    out.l1Misses = after.l1m - before.l1m;
    out.l2Misses = after.l2m - before.l2m;
    out.walks = after.walks - before.walks;
    out.guestFaults = guestFaultCount - faults0;
    out.ddFastHits = after.dd - before.dd;
    out.dsFastHits = after.ds - before.ds;
    const double walk_cycles = after.walkCycles - before.walkCycles;
    out.cyclesPerWalk =
        out.walks ? walk_cycles / static_cast<double>(out.walks)
                  : 0.0;
    const double denom = static_cast<double>(out.walks + out.ddFastHits +
                                             out.dsFastHits);
    if (denom > 0.0) {
        out.fractionBoth =
            static_cast<double>(after.cb - before.cb) / denom;
        out.fractionVmmOnly =
            static_cast<double>(after.cv - before.cv) / denom;
        out.fractionGuestOnly =
            static_cast<double>(after.cg - before.cg) / denom;
    }
    return out;
}

RunResult
Machine::measuredResult() const
{
    const auto &stats = _mmu->stats();
    RunResult out;
    out.completed = !_terminalFault;
    out.accessOps = accessCount;
    out.remapOps = remapCount;
    out.baseCycles = baseCyclesPool;
    out.translationCycles = stats.scalarValue("translation_cycles");
    out.faultCycles = faultCyclesPool;
    out.shootdownCycles = shootdownCyclesPool;
    const std::uint64_t exits =
        (_vm ? _vm->vmExits() : 0) - vmExitBase +
        (shadow ? shadow->syncExits() : 0) - shadowExitBase;
    out.vmExitCycles = static_cast<double>(exits) *
                       static_cast<double>(cfg.mmu.costs.vmExitCycles);
    out.l1Misses = stats.counterValue("l1_misses");
    out.l2Misses = stats.counterValue("l2_misses");
    out.walks = stats.counterValue("walks");
    out.guestFaults = guestFaultCount;
    out.ddFastHits = stats.counterValue("dd_fast_hits");
    out.dsFastHits = stats.counterValue("ds_fast_hits");
    const double walk_cycles = stats.scalarValue("walk_cycles");
    out.cyclesPerWalk =
        out.walks ? walk_cycles / static_cast<double>(out.walks)
                  : 0.0;
    const double denom = static_cast<double>(out.walks + out.ddFastHits +
                                             out.dsFastHits);
    if (denom > 0.0) {
        out.fractionBoth =
            static_cast<double>(stats.counterValue("cat_both")) / denom;
        out.fractionVmmOnly =
            static_cast<double>(stats.counterValue("cat_vmm_only")) /
            denom;
        out.fractionGuestOnly =
            static_cast<double>(stats.counterValue("cat_guest_only")) /
            denom;
    }
    return out;
}

void
Machine::serialize(ckpt::Writer &writer) const
{
    ckpt::Encoder m;
    m.u8(static_cast<std::uint8_t>(cfg.mode));
    m.u64(opCursor);
    m.f64(faultCyclesPool);
    m.f64(shootdownCyclesPool);
    m.f64(baseCyclesPool);
    m.u64(guestFaultCount);
    m.u64(remapCount);
    m.u64(accessCount);
    m.u64(vmExitBase);
    m.u64(shadowExitBase);

    m.u8(_terminalFault ? 1 : 0);
    if (_terminalFault) {
        m.str(_terminalFault->reason);
        m.u8(static_cast<std::uint8_t>(_terminalFault->space));
        m.u64(_terminalFault->addr);
        m.u64(_terminalFault->opIndex);
    }

    m.u8(vmmSegmentInfo ? 1 : 0);
    if (vmmSegmentInfo) {
        m.u64(vmmSegmentInfo->regs.base());
        m.u64(vmmSegmentInfo->regs.limit());
        m.u64(vmmSegmentInfo->regs.offset());
        m.u64(vmmSegmentInfo->escapedGpas.size());
        for (Addr gpa : vmmSegmentInfo->escapedGpas)
            m.u64(gpa);
    }

    // The balloon driver and compaction daemon are created lazily
    // mid-run; an existence flag lets restore recreate them.
    m.u8(balloon ? 1 : 0);
    if (balloon)
        balloon->serialize(m);
    m.u8(compactor ? 1 : 0);
    if (compactor)
        compactor->serialize(m);
    writer.chunk("machine", m);

    ckpt::Encoder w;
    wl.serialize(w);
    writer.chunk("workload", w);

    ckpt::Encoder pm;
    _hostMem->serialize(pm);
    writer.chunk("physmem", pm);

    if (_vmm) {
        ckpt::Encoder v;
        _vmm->serialize(v);
        writer.chunk("vmm", v);
    }

    ckpt::Encoder o;
    _os->serialize(o);
    writer.chunk("os", o);

    ckpt::Encoder mmu_enc;
    _mmu->serialize(mmu_enc);
    writer.chunk("mmu", mmu_enc);

    if (shadow) {
        ckpt::Encoder s;
        shadow->serialize(s);
        writer.chunk("shadow", s);
    }

    ckpt::Encoder f;
    injector->serialize(f);
    writer.chunk("fault", f);
}

bool
Machine::deserialize(const ckpt::Reader &reader, std::string &error)
{
    const auto restore = [&](const char *tag, auto &&fn) {
        ckpt::Decoder dec = reader.chunk(tag);
        if (!fn(dec) || !dec.ok()) {
            error = std::string("chunk '") + tag + "': " +
                    (dec.error().empty() ? "malformed payload"
                                         : dec.error());
            return false;
        }
        return true;
    };

    // Presence of the optional layers is fixed at construction, so
    // a mismatch means the checkpoint was taken under a different
    // boot configuration.
    if (static_cast<bool>(_vmm) != reader.hasChunk("vmm")) {
        error = "vmm state mismatch (checkpoint was taken under a "
                "different configuration)";
        return false;
    }
    if (static_cast<bool>(shadow) != reader.hasChunk("shadow")) {
        error = "shadow-pager state mismatch (checkpoint was taken "
                "under a different configuration)";
        return false;
    }

    // Physical memory first: it holds every page-table node the
    // later layers' roots point into.
    if (!restore("physmem", [&](ckpt::Decoder &d) {
            return _hostMem->deserialize(d);
        }))
        return false;
    if (_vmm && !restore("vmm", [&](ckpt::Decoder &d) {
            return _vmm->deserialize(d);
        }))
        return false;
    if (!restore("os", [&](ckpt::Decoder &d) {
            return _os->deserialize(d);
        }))
        return false;
    if (!restore("mmu", [&](ckpt::Decoder &d) {
            return _mmu->deserialize(d);
        }))
        return false;
    if (shadow && !restore("shadow", [&](ckpt::Decoder &d) {
            return shadow->deserialize(d);
        }))
        return false;
    if (!restore("fault", [&](ckpt::Decoder &d) {
            return injector->deserialize(d);
        }))
        return false;
    if (!restore("workload", [&](ckpt::Decoder &d) {
            return wl.deserialize(d);
        }))
        return false;

    return restore("machine", [&](ckpt::Decoder &d) {
        const std::uint8_t mode = d.u8();
        if (d.ok() &&
            mode > static_cast<std::uint8_t>(Mode::GuestDirect)) {
            d.fail("machine: invalid mode value");
            return false;
        }
        cfg.mode = static_cast<Mode>(mode);
        opCursor = d.u64();
        faultCyclesPool = d.f64();
        shootdownCyclesPool = d.f64();
        baseCyclesPool = d.f64();
        guestFaultCount = d.u64();
        remapCount = d.u64();
        accessCount = d.u64();
        vmExitBase = d.u64();
        shadowExitBase = d.u64();

        if (d.u8() != 0) {
            FaultReport report;
            report.reason = d.str();
            const std::uint8_t space = d.u8();
            if (d.ok() && space > static_cast<std::uint8_t>(
                              FaultSpace::Nested)) {
                d.fail("machine: invalid fault space");
                return false;
            }
            report.space = static_cast<FaultSpace>(space);
            report.addr = d.u64();
            report.opIndex = d.u64();
            if (d.ok())
                _terminalFault = report;
        } else {
            _terminalFault.reset();
        }

        if (d.u8() != 0) {
            vmm::VmmSegmentInfo info;
            const Addr seg_base = d.u64();
            const Addr seg_limit = d.u64();
            const Addr seg_offset = d.u64();
            info.regs = segment::SegmentRegs(seg_base, seg_limit,
                                             seg_offset);
            const std::uint64_t n = d.u64();
            for (std::uint64_t i = 0; d.ok() && i < n; ++i)
                info.escapedGpas.push_back(d.u64());
            if (d.ok())
                vmmSegmentInfo = info;
        } else {
            vmmSegmentInfo.reset();
        }

        if (d.u8() != 0) {
            if (!_vm) {
                d.fail("machine: balloon state without a VM");
                return false;
            }
            if (!balloon) {
                balloon =
                    std::make_unique<os::BalloonDriver>(*_os, *_vm);
            }
            if (!balloon->deserialize(d))
                return false;
        } else {
            balloon.reset();
        }

        if (d.u8() != 0) {
            compactionDaemon();
            if (!compactor->deserialize(d))
                return false;
        } else {
            compactor.reset();
        }
        return d.ok();
    });
}

std::optional<std::uint64_t>
Machine::upgradeWithHostCompaction(std::uint64_t max_migrations)
{
    emv_assert(_vm, "host compaction needs a VM");
    // GuestDirect -> DualDirect only needs the *guest segment's*
    // backing to be host-contiguous (segment-covered translations
    // never touch the guest page tables).  BaseVirtualized -> VMM
    // Direct needs the whole high range (page tables included).
    Addr target_base = kIoGapEnd;
    Addr target_bytes =
        _vm->config().ramBytes - _vm->config().lowRamBytes;
    const auto &gseg = proc->guestSegment();
    if (cfg.mode == Mode::GuestDirect && gseg.enabled()) {
        target_base = gseg.base() + gseg.offset();
        target_bytes = gseg.length();
    }
    std::optional<std::uint64_t> migrated;
    retryWithBackoff("host compaction", [&] {
        migrated = _vm->materializeVmmSegmentBacking(
            target_base, target_bytes, max_migrations);
        return migrated.has_value();
    });
    if (!migrated)
        return std::nullopt;
    auto info = _vm->createVmmSegment(target_bytes);
    if (!info)
        return std::nullopt;
    vmmSegmentInfo = *info;
    _mmu->setVmmSegment(info->regs);
    for (Addr gpa : info->escapedGpas)
        _mmu->vmmFilter().insertPage(gpa);
    const Mode next = cfg.mode == Mode::GuestDirect
                          ? Mode::DualDirect
                          : Mode::VmmDirect;
    if (telem) {
        telem->event("upgrade",
                     std::string(core::modeName(cfg.mode)) + "->" +
                         core::modeName(next));
    }
    cfg.mode = next;
    _mmu->setMode(next);
    return migrated;
}

bool
Machine::selfBalloonGuestSegment()
{
    emv_assert(_vm, "self-ballooning needs a VM");
    const auto *primary = proc->primaryRegion();
    if (!primary)
        return false;
    if (!balloon)
        balloon = std::make_unique<os::BalloonDriver>(*_os, *_vm);
    std::optional<Interval> ext;
    retryWithBackoff("self-balloon", [&] {
        ext = balloon->selfBalloon(primary->bytes);
        return ext.has_value();
    });
    if (!ext) {
        // Table III slow path: when the balloon/hotplug protocol
        // keeps failing, compact guest memory into one free run the
        // segment allocator can use instead.
        if (!compactionDaemon().createFreeRun(primary->bytes))
            return false;
        ++injector->stats().counter("compaction_fallbacks");
    }
    auto regs = _os->createGuestSegment(*proc);
    if (!regs)
        return false;
    _mmu->setGuestSegment(*regs);
    _mmu->flushGuestContext();

    // The hot-added extension enlarged the backing extent; refresh
    // the VMM segment so Dual Direct covers the new guest segment.
    if (core::usesVmmSegment(cfg.mode)) {
        auto info = _vm->createVmmSegment(primary->bytes);
        if (info) {
            vmmSegmentInfo = *info;
            _mmu->setVmmSegment(info->regs);
            _mmu->vmmFilter().clear();
            for (Addr gpa : info->escapedGpas)
                _mmu->vmmFilter().insertPage(gpa);
            _mmu->flushAll();
        }
    }
    return true;
}

bool
Machine::downgradeMode()
{
    Mode next;
    switch (cfg.mode) {
      case Mode::DualDirect:
        next = Mode::VmmDirect;
        _mmu->retireGuestSegment();
        break;
      case Mode::VmmDirect:
        next = Mode::BaseVirtualized;
        _mmu->retireVmmSegment();
        vmmSegmentInfo.reset();
        break;
      case Mode::GuestDirect:
        next = Mode::BaseVirtualized;
        _mmu->retireGuestSegment();
        break;
      case Mode::NativeDirect:
        next = Mode::Native;
        _mmu->retireGuestSegment();
        break;
      default:
        return false;  // Native / BaseVirtualized: lattice bottom.
    }
    // The process keeps its segment registers: §VI.B's emulation
    // lazily re-faults retired-segment addresses onto conventional
    // PTEs with byte-identical translations, so a differential
    // audit stays clean across the transition.
    EMV_TRACE(Fault, "mode downgrade %s -> %s",
              core::modeName(cfg.mode), core::modeName(next));
    if (telem) {
        telem->event("downgrade",
                     std::string(core::modeName(cfg.mode)) + "->" +
                         core::modeName(next));
    }
    cfg.mode = next;
    _mmu->setMode(next);
    ++injector->stats().counter("downgrades");
    faultCyclesPool +=
        static_cast<double>(cfg.recovery.recoveryCycles);
    return true;
}

void
Machine::maybeDowngradeForSaturation()
{
    const double fill = cfg.recovery.filterSaturationFill;
    const bool guest_sat = _mmu->guestSegment().enabled() &&
                           _mmu->guestFilter().saturated(fill);
    const bool vmm_sat = _mmu->vmmSegment().enabled() &&
                         _mmu->vmmFilter().saturated(fill);
    if (guest_sat || vmm_sat)
        downgradeMode();
}

bool
Machine::recordTerminalFault(const char *what, core::FaultSpace space,
                             Addr addr)
{
    if (_terminalFault)
        return false;
    _terminalFault = FaultReport{what, space, addr, opCursor};
    ++injector->stats().counter("terminal_faults");
    if (telem)
        telem->event("terminal_fault", what);
    EMV_TRACE(Fault, "terminal fault: %s space=%s addr=%s op=%llu",
              what, core::toString(space), hexAddr(addr).c_str(),
              static_cast<unsigned long long>(opCursor));
    emv_warn("terminal fault: %s at %s (op %llu)", what,
             hexAddr(addr).c_str(),
             static_cast<unsigned long long>(opCursor));
    return false;
}

bool
Machine::retryWithBackoff(const char *what,
                          const std::function<bool()> &attempt)
{
    const unsigned budget =
        cfg.faultPolicy == fault::FaultPolicy::Degrade
            ? cfg.recovery.maxRetries
            : 0;
    Cycles backoff = cfg.recovery.backoffBaseCycles;
    for (unsigned tries = 0;; ++tries) {
        if (attempt()) {
            if (tries > 0)
                ++injector->stats().counter("recoveries");
            return true;
        }
        if (tries >= budget)
            break;
        ++injector->stats().counter("retries");
        faultCyclesPool += static_cast<double>(backoff);
        backoff *= 2;
        EMV_TRACE(Fault, "%s request failed; retry %u of %u", what,
                  tries + 1, budget);
    }
    ++injector->stats().counter("request_failures");
    emv_warn("%s request failed after %u attempts", what, budget + 1);
    return false;
}

os::CompactionDaemon &
Machine::compactionDaemon()
{
    if (!compactor) {
        compactor = std::make_unique<os::CompactionDaemon>(
            *_os, [this](os::Process &p, Addr va, PageSize size) {
                if (&p != proc)
                    return;
                _mmu->invalidateGuestPage(va, size);
                shootdownCyclesPool += static_cast<double>(
                    cfg.mmu.costs.shootdownCycles);
            });
    }
    return *compactor;
}

void
Machine::applyScheduledFaults()
{
    for (const auto &event : injector->eventsDue(opCursor)) {
        if (_terminalFault)
            break;
        if (telem) {
            telem->event("fault",
                         std::string(
                             fault::faultKindName(event.kind)) +
                             "x" + std::to_string(event.count));
        }
        applyFault(event);
    }
}

void
Machine::applyFault(const fault::FaultEvent &event)
{
    using fault::FaultKind;
    switch (event.kind) {
      case FaultKind::DramFault:
        for (unsigned i = 0; i < event.count && !_terminalFault; ++i)
            injectDramFault();
        break;
      case FaultKind::GuestPteCorrupt:
        for (unsigned i = 0; i < event.count && !_terminalFault; ++i)
            injectGuestPteCorruption();
        break;
      case FaultKind::NestedPteCorrupt:
        for (unsigned i = 0; i < event.count && !_terminalFault; ++i)
            injectNestedPteCorruption();
        break;
      case FaultKind::FilterSaturate:
        injectFilterSaturation();
        break;
      case FaultKind::BalloonFail:
        performBalloonRequest(event.count);
        break;
      case FaultKind::HotplugFail:
        performHotplugRequest(event.count);
        break;
      case FaultKind::CompactionFail:
        performCompactionRequest(event.count);
        break;
      case FaultKind::SlotRevoke:
        for (unsigned i = 0; i < event.count && !_terminalFault; ++i)
            injectSlotRevocation();
        break;
      default:
        break;
    }
}

void
Machine::injectDramFault()
{
    auto &fstats = injector->stats();
    auto &rng = injector->rng();

    if (core::isVirtualized(cfg.mode)) {
        // Fault a backed frame — preferentially under the active
        // VMM segment, where a hard fault is most disruptive (§V).
        Interval region = _vm->activeSegmentRegion();
        if (region.empty()) {
            auto extent = _vm->backingMap().largestExtent();
            if (!extent) {
                ++fstats.counter("injected_skipped");
                return;
            }
            region = Interval{extent->gpa,
                              extent->gpa + extent->bytes};
        }
        for (unsigned tries = 0; tries < 64; ++tries) {
            const Addr gpa =
                region.start +
                alignDown(rng.nextBelow(region.length()), kPage4K);
            auto hpa = _vm->gpaToHpa(gpa);
            if (!hpa || _hostMem->isBad(*hpa))
                continue;
            _hostMem->markBad(*hpa);
            ++fstats.counter("injected_dram");
            EMV_TRACE(Fault, "dram fault: gpa=%s hpa=%s",
                      hexAddr(gpa).c_str(), hexAddr(*hpa).c_str());
            if (cfg.faultPolicy == fault::FaultPolicy::FailFast) {
                recordTerminalFault("dram hard fault (failfast)",
                                    FaultSpace::Nested, gpa);
                return;
            }
            // Recover: copy to a healthy frame and repoint; under a
            // segment the page then escapes through the filter.
            if (!_vm->offlineFrame(gpa)) {
                recordTerminalFault("dram fault: no healthy frame",
                                    FaultSpace::Nested, gpa);
                return;
            }
            faultCyclesPool +=
                static_cast<double>(cfg.recovery.recoveryCycles);
            const auto &vseg = _mmu->vmmSegment();
            if (vseg.enabled() && vseg.contains(gpa)) {
                _mmu->vmmFilter().insertPage(gpa);
                ++fstats.counter("filter_escapes");
                maybeDowngradeForSaturation();
            }
            return;
        }
        ++fstats.counter("injected_skipped");
        return;
    }

    // Native: fault a frame inside the direct segment's backing.
    const auto &seg = proc->guestSegment();
    if (!seg.enabled()) {
        ++fstats.counter("injected_skipped");
        return;
    }
    for (unsigned tries = 0; tries < 64; ++tries) {
        const Addr pa = seg.base() + seg.offset() +
                        alignDown(rng.nextBelow(seg.length()),
                                  kPage4K);
        if (_hostMem->isBad(pa))
            continue;
        _hostMem->markBad(pa);
        ++fstats.counter("injected_dram");
        const Addr va = pa - seg.offset();
        EMV_TRACE(Fault, "dram fault: va=%s pa=%s",
                  hexAddr(va).c_str(), hexAddr(pa).c_str());
        if (cfg.faultPolicy == fault::FaultPolicy::FailFast) {
            recordTerminalFault("dram hard fault (failfast)",
                                FaultSpace::Guest, va);
            return;
        }
        // Recover: escape the page so the next access walks the
        // page table; the fault handler's §VI.B path remaps it to a
        // healthy frame.
        _os->unmapRange(*proc, va, kPage4K);
        if (_mmu->guestSegment().enabled() &&
            _mmu->guestSegment().contains(va)) {
            _mmu->guestFilter().insertPage(va);
            ++fstats.counter("filter_escapes");
        }
        _mmu->invalidateGuestPage(va, PageSize::Size4K);
        faultCyclesPool +=
            static_cast<double>(cfg.recovery.recoveryCycles);
        maybeDowngradeForSaturation();
        return;
    }
    ++fstats.counter("injected_skipped");
}

void
Machine::injectGuestPteCorruption()
{
    auto &fstats = injector->stats();
    auto &rng = injector->rng();
    const auto &regions = proc->regions();
    if (regions.empty()) {
        ++fstats.counter("injected_skipped");
        return;
    }
    for (unsigned tries = 0; tries < 32; ++tries) {
        const auto &region = regions[static_cast<std::size_t>(
            rng.nextBelow(regions.size()))];
        const Addr page =
            region.base +
            alignDown(rng.nextBelow(region.bytes), kPage4K);
        auto xlat = proc->pageTable().translate(page);
        if (!xlat)
            continue;  // Segment-covered or never faulted in.
        ++fstats.counter("injected_guest_pte");
        EMV_TRACE(Fault, "guest pte corrupt: va=%s",
                  hexAddr(page).c_str());
        if (cfg.faultPolicy == fault::FaultPolicy::FailFast) {
            recordTerminalFault("guest pte corruption",
                                FaultSpace::Guest, page);
            return;
        }
        // Detection discards the whole (possibly large) leaf; the
        // next access re-faults it in.
        const Addr leaf_bytes = pageBytes(xlat->size);
        _os->unmapRange(*proc, alignDown(page, leaf_bytes),
                        leaf_bytes);
        faultCyclesPool +=
            static_cast<double>(cfg.recovery.recoveryCycles);
        return;
    }
    ++fstats.counter("injected_skipped");
}

void
Machine::injectNestedPteCorruption()
{
    auto &fstats = injector->stats();
    auto &rng = injector->rng();
    if (!_vm) {
        ++fstats.counter("injected_skipped");
        return;
    }
    auto extent = _vm->backingMap().largestExtent();
    if (!extent) {
        ++fstats.counter("injected_skipped");
        return;
    }
    const Addr gpa =
        extent->gpa +
        alignDown(rng.nextBelow(extent->bytes), kPage4K);
    ++fstats.counter("injected_nested_pte");
    EMV_TRACE(Fault, "nested pte corrupt: gpa=%s",
              hexAddr(gpa).c_str());
    if (cfg.faultPolicy == fault::FaultPolicy::FailFast) {
        recordTerminalFault("nested pte corruption",
                            FaultSpace::Nested, gpa);
        return;
    }
    // The backing map stays authoritative; the next nested fault on
    // the page repairs the leaf (Vm::ensureBacked).
    _vm->dropNestedMapping(gpa);
    faultCyclesPool +=
        static_cast<double>(cfg.recovery.recoveryCycles);
}

void
Machine::injectFilterSaturation()
{
    auto &fstats = injector->stats();
    segment::EscapeFilter *filter = nullptr;
    if (_mmu->guestSegment().enabled())
        filter = &_mmu->guestFilter();
    else if (_mmu->vmmSegment().enabled())
        filter = &_mmu->vmmFilter();
    if (!filter) {
        ++fstats.counter("injected_skipped");
        return;
    }
    // Flood with noise pages until the popcount bound: past it the
    // filter answers "maybe" for nearly everything and the segment
    // no longer earns its keep.
    auto &rng = injector->rng();
    for (unsigned i = 0;
         i < filter->sizeBits() &&
         !filter->saturated(cfg.recovery.filterSaturationFill);
         ++i) {
        filter->insertPage(rng.nextBelow(1ull << 36) << 12);
    }
    ++fstats.counter("filter_saturations");
    EMV_TRACE(Fault, "filter saturated: %u/%u bits set",
              filter->popcount(), filter->sizeBits());
    if (cfg.faultPolicy == fault::FaultPolicy::FailFast) {
        recordTerminalFault("escape filter saturated",
                            FaultSpace::None, 0);
        return;
    }
    maybeDowngradeForSaturation();
}

void
Machine::injectSlotRevocation()
{
    auto &fstats = injector->stats();
    if (!_vm) {
        ++fstats.counter("injected_skipped");
        return;
    }
    // A legitimate VMM action under both policies: revoke the
    // backing of one resident page outside the active segment; the
    // next nested fault swaps it back in.
    auto &rng = injector->rng();
    const auto extents = _vm->backingMap().extents();
    if (extents.empty()) {
        ++fstats.counter("injected_skipped");
        return;
    }
    for (unsigned tries = 0; tries < 32; ++tries) {
        const auto &extent = extents[static_cast<std::size_t>(
            rng.nextBelow(extents.size()))];
        const Addr gpa =
            extent.gpa +
            alignDown(rng.nextBelow(extent.bytes), kPage4K);
        if (_vm->activeSegmentRegion().contains(gpa))
            continue;
        if (_vm->swapOutPage(gpa)) {
            ++fstats.counter("injected_slot_revokes");
            EMV_TRACE(Fault, "slot revoked: gpa=%s",
                      hexAddr(gpa).c_str());
            return;
        }
    }
    ++fstats.counter("injected_skipped");
}

void
Machine::performBalloonRequest(unsigned failures)
{
    if (!_vm) {
        ++injector->stats().counter("injected_skipped");
        return;
    }
    injector->armFailures(fault::FaultPoint::BalloonReclaim,
                          failures);
    if (!balloon)
        balloon = std::make_unique<os::BalloonDriver>(*_os, *_vm);
    balloon->setRequestFaultHook([this] {
        return injector->shouldFail(
            fault::FaultPoint::BalloonReclaim);
    });
    // A host-pressure maintenance request; persistent failure is
    // survivable (the host simply stays pressured).
    retryWithBackoff("balloon", [&] {
        return balloon->inflate(4 * MiB) > 0;
    });
}

void
Machine::performHotplugRequest(unsigned failures)
{
    if (!_vm) {
        ++injector->stats().counter("injected_skipped");
        return;
    }
    injector->armFailures(fault::FaultPoint::HotplugExtend, failures);
    _vm->setExtensionFaultHook([this] {
        return injector->shouldFail(fault::FaultPoint::HotplugExtend);
    });
    retryWithBackoff("hotplug", [&] {
        auto base = _vm->grantExtension(4 * MiB);
        if (!base)
            return false;
        _os->hotAdd(*base, 4 * MiB);
        return true;
    });
}

void
Machine::performCompactionRequest(unsigned failures)
{
    injector->armFailures(fault::FaultPoint::Compaction, failures);
    auto &daemon = compactionDaemon();
    daemon.setFaultHook([this] {
        return injector->shouldFail(fault::FaultPoint::Compaction);
    });
    retryWithBackoff("compaction", [&] {
        return daemon.createFreeRun(16 * MiB).has_value();
    });
}

} // namespace emv::sim
