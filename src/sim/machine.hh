/**
 * @file
 * The full-system assembly: host memory + (optional) VMM/VM + OS +
 * process + MMU + workload driver.
 *
 * A Machine corresponds to one configuration cell of the paper's
 * evaluation (e.g. "graph500 under 4K+2M", or "memcached under
 * Dual Direct"): it builds the whole stack for a translation mode,
 * pre-faults the workload's regions, then replays the trace through
 * the MMU, charging translation, fault, VM-exit and shootdown
 * cycles.  Overheads are reported exactly as the paper defines them
 * (§VIII): extra time relative to ideal base execution.
 */

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/types.hh"
#include "core/mmu.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "mem/fragmenter.hh"
#include "mem/phys_accessor.hh"
#include "mem/phys_memory.hh"
#include "os/balloon.hh"
#include "os/compaction.hh"
#include "os/guest_os.hh"
#include "vmm/shadow_pager.hh"
#include "vmm/vmm.hh"
#include "workload/workload.hh"

namespace emv {
namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt
namespace telemetry {
class TelemetryRecorder;
} // namespace telemetry
} // namespace emv

namespace emv::sim {

/** Deterministic fragmentation to apply before segment creation. */
struct FragmentationSpec
{
    bool enabled = false;
    Addr maxRunBytes = 64 * MiB;  //!< Largest free run to leave.
    std::uint64_t seed = 1;
    /** Guest only: fragmentation pages belong to a background
     *  process (movable by compaction) instead of being pinned. */
    bool movable = false;
};

/** One configuration cell. */
struct MachineConfig
{
    core::Mode mode = core::Mode::Native;

    /** Guest OS page size for data regions ("4K", "2M", "1G"). */
    PageSize guestPageSize = PageSize::Size4K;
    /** Nested (VMM) page size ("+4K", "+2M", "+1G"). */
    PageSize vmmPageSize = PageSize::Size4K;
    /** Transparent huge pages in the guest. */
    bool thp = false;

    /** Shadow paging instead of nested paging (§IX.D); the MMU then
     *  performs native 1D walks over the shadow table. */
    bool shadowPaging = false;

    Addr hostRamBytes = 0;   //!< 0 = auto-size from the workload.
    Addr guestRamBytes = 0;  //!< 0 = auto-size from the workload.
    Addr extensionReserve = 0;  //!< gPA hot-add reserve.

    bool eagerBacking = true;
    bool contiguousHostReservation = true;
    /** Relocate below-gap guest memory at boot (§VI.C); applies to
     *  modes that want a VMM segment. */
    bool reclaimIoGap = true;
    bool prePopulate = true;

    /** Hard-fault injection into the segment backing (Fig. 13). */
    unsigned badFrames = 0;
    std::uint64_t badFrameSeed = 99;

    FragmentationSpec hostFragmentation;
    FragmentationSpec guestFragmentation;

    /** Mid-run fault schedule (trace-op granularity) and what to do
     *  when a scheduled fault fires. */
    fault::FaultPlan faultPlan;
    fault::FaultPolicy faultPolicy = fault::FaultPolicy::Degrade;
    std::uint64_t faultSeed = 7;
    fault::RecoveryConfig recovery;

    core::MmuConfig mmu{};
    std::uint64_t seed = 42;
};

/**
 * Structured record of an unrecoverable fault (replaces the old
 * emv_fatal dead-ends): what happened, where, and at which trace op.
 */
struct FaultReport
{
    std::string reason;
    core::FaultSpace space = core::FaultSpace::None;
    Addr addr = 0;
    std::uint64_t opIndex = 0;
};

/** Measured outcome of a run() interval. */
struct RunResult
{
    std::uint64_t accessOps = 0;
    std::uint64_t remapOps = 0;

    double baseCycles = 0.0;
    double translationCycles = 0.0;
    double faultCycles = 0.0;
    double vmExitCycles = 0.0;
    double shootdownCycles = 0.0;

    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t walks = 0;
    std::uint64_t guestFaults = 0;
    std::uint64_t ddFastHits = 0;
    std::uint64_t dsFastHits = 0;

    /** False when the run aborted on an unrecoverable fault (see
     *  Machine::terminalFault()). */
    bool completed = true;

    double cyclesPerWalk = 0.0;
    double fractionBoth = 0.0;
    double fractionVmmOnly = 0.0;
    double fractionGuestOnly = 0.0;

    double
    execCycles() const
    {
        return baseCycles + translationCycles + faultCycles +
               vmExitCycles + shootdownCycles;
    }

    /** The paper's address-translation overhead vs ideal base. */
    double
    translationOverhead() const
    {
        return baseCycles > 0.0 ? translationCycles / baseCycles
                                : 0.0;
    }

    /** Overhead including faults, exits and shootdowns. */
    double
    totalOverhead() const
    {
        return baseCycles > 0.0
                   ? (execCycles() - baseCycles) / baseCycles
                   : 0.0;
    }
};

/**
 * The machine.
 *
 * Thread-safety: a Machine and everything it owns (OS, VMM, MMU,
 * workload, RNG streams, per-machine stat groups) is confined to
 * one worker thread.  The only process-wide services it touches —
 * StatRegistry registration, audit counters, trace/log sinks, a
 * shared TelemetryRecorder — are internally synchronized (see
 * common/thread_safety.hh).  emvsim threads=N runs N machines on N
 * threads under exactly this contract.
 */
class Machine
{
  public:
    Machine(const MachineConfig &config,
            workload::Workload &workload);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Replay @p ops trace events; returns this interval's stats. */
    RunResult run(std::uint64_t ops);

    /** Zero all statistics (end of warmup). */
    void resetStats();

    /**
     * Measured result accumulated since the last resetStats(),
     * regardless of how many run() intervals it spans.  Computed
     * from the live (checkpointable) counters, so a run resumed
     * from a mid-measure checkpoint reports bit-identical numbers
     * to the uninterrupted run.
     */
    RunResult measuredResult() const;

    /** @{ Crash-safe checkpointing (emv-ckpt-v1).
     * serialize() packs every mutable layer into tagged chunks;
     * deserialize() overwrites the state of a machine that was
     * *constructed from the same configuration and workload* (same
     * seeds, sizes, fault plan — geometry mismatches are structured
     * errors).  Hooks, H3 filter matrices and the differential
     * auditor are deterministic or lazily rebuilt, not stored. */
    void serialize(ckpt::Writer &writer) const;
    bool deserialize(const ckpt::Reader &reader, std::string &error);
    /** @} */

    /** @{ Table III mode transitions. */
    /**
     * Host compaction path: materialize contiguous backing for the
     * guest's RAM above the I/O gap, create the VMM segment, and
     * upgrade GuestDirect→DualDirect or BaseVirtualized→VmmDirect.
     * @return Pages migrated, or nullopt (failed / over budget).
     */
    std::optional<std::uint64_t>
    upgradeWithHostCompaction(std::uint64_t max_migrations = 0);

    /**
     * Self-ballooning path: create a contiguous gPA extension and
     * move the guest segment onto it (fragmented guest memory).
     * @return true when the guest segment was (re)created.
     */
    bool selfBalloonGuestSegment();

    /**
     * Table III downgrade, one lattice step: DualDirect→VmmDirect,
     * VmmDirect→BaseVirtualized, GuestDirect→BaseVirtualized,
     * NativeDirect→Native.  Retires the segment the step loses
     * (registers nulled, filter cleared, TLBs flushed); covered
     * addresses lazily re-fault onto byte-identical conventional
     * mappings (§VI.B emulation), so a differential audit stays
     * clean across the transition.
     * @return false when the current mode has no downgrade.
     */
    bool downgradeMode();
    /** @} */

    /** @{ Time-series telemetry (common/telemetry.hh).
     * attachTelemetry() registers the standard metric sources on
     * @p recorder (TLB misses, walk refs, escapes, faults, mode
     * transitions, modeled cycles, filter fills, the per-translation
     * latency histogram and the current mode), re-baselines it, and
     * starts ticking it once per trace op; mode transitions and
     * injected faults are marked as window events.  Call after the
     * warmup-boundary resetStats() so window deltas reconcile with
     * the measured-interval aggregates.  Pass nullptr to detach. */
    void attachTelemetry(telemetry::TelemetryRecorder *recorder);
    telemetry::TelemetryRecorder *telemetry() { return telem; }

    /** Tick @p recorder once per trace op WITHOUT registering this
     *  machine's metric sources.  For threads=N runs that share one
     *  internally-synchronized recorder: per-machine source names
     *  would collide across machines (duplicate JSON keys), so the
     *  driver registers race-free aggregate sources itself and each
     *  machine only drives the shared window clock. */
    void attachTelemetryTicker(telemetry::TelemetryRecorder *recorder)
    { telem = recorder; }
    /** @} */

    /** @{ Fault injection and reporting. */
    /** The fault that aborted the run, if any. */
    const FaultReport *terminalFault() const
    { return _terminalFault ? &*_terminalFault : nullptr; }

    fault::FaultInjector &faultInjector() { return *injector; }
    /** @} */

    /** @{ Component access (examples, tests, benches). */
    core::Mmu &mmu() { return *_mmu; }
    os::GuestOs &os() { return *_os; }
    os::Process &process() { return *proc; }
    vmm::Vm *vm() { return _vm; }
    vmm::Vmm *vmm() { return _vmm.get(); }
    vmm::ShadowPager *shadowPager() { return shadow.get(); }
    mem::PhysMemory &hostMem() { return *_hostMem; }
    workload::Workload &workload() { return wl; }
    const MachineConfig &config() const { return cfg; }
    const segment::SegmentRegs &vmmSegment() const
    { return _mmu->vmmSegment(); }
    const segment::SegmentRegs &guestSegment() const
    { return _mmu->guestSegment(); }
    /** @} */

  private:
    void buildNative();
    void buildVirtualized();
    void applyGuestFragmentation();
    void placeRegions();
    void populate();
    void setupSegments();
    void wireMmu();
    void injectBadFrames();

    /** Handle a faulting translation; true if retry makes sense,
     *  false when the run must abort (terminalFault() is set). */
    bool serviceFault(const core::TranslationResult &result);

    /** @{ Scheduled-fault delivery (one call per due event). */
    void applyScheduledFaults();
    void applyFault(const fault::FaultEvent &event);
    void injectDramFault();
    void injectGuestPteCorruption();
    void injectNestedPteCorruption();
    void injectFilterSaturation();
    void injectSlotRevocation();
    void performBalloonRequest(unsigned failures);
    void performHotplugRequest(unsigned failures);
    void performCompactionRequest(unsigned failures);
    /** @} */

    /** Downgrade when either live filter crossed its fill bound. */
    void maybeDowngradeForSaturation();

    /** Record an unrecoverable fault; always returns false. */
    bool recordTerminalFault(const char *what, core::FaultSpace space,
                             Addr addr);

    /** Run @p attempt up to 1 + maxRetries times (Degrade policy;
     *  FailFast gets a single attempt), charging exponential backoff
     *  cycles between tries.  @return true on eventual success. */
    bool retryWithBackoff(const char *what,
                          const std::function<bool()> &attempt);

    /** Lazily built guest compaction daemon wired for TLB
     *  invalidation on migration. */
    os::CompactionDaemon &compactionDaemon();

    MachineConfig cfg;
    workload::Workload &wl;

    std::unique_ptr<mem::PhysMemory> _hostMem;
    std::unique_ptr<mem::HostPhysAccessor> hostAccessor;
    std::unique_ptr<vmm::Vmm> _vmm;
    vmm::Vm *_vm = nullptr;
    std::unique_ptr<os::GuestOs> _os;
    os::Process *proc = nullptr;
    std::unique_ptr<core::Mmu> _mmu;
    std::unique_ptr<vmm::ShadowPager> shadow;
    std::unique_ptr<os::BalloonDriver> balloon;
    std::unique_ptr<os::CompactionDaemon> compactor;
    std::optional<vmm::VmmSegmentInfo> vmmSegmentInfo;

    /** Borrowed windowed-metrics recorder (see attachTelemetry). */
    telemetry::TelemetryRecorder *telem = nullptr;

    /** Fault machinery (always built; the plan may be empty). */
    std::unique_ptr<fault::FaultInjector> injector;
    std::optional<FaultReport> _terminalFault;
    /** Trace ops replayed since construction (warmup + measure);
     *  fault events are scheduled against this cursor. */
    std::uint64_t opCursor = 0;

    /** Cycle pools accumulated outside the MMU. */
    double faultCyclesPool = 0.0;
    double shootdownCyclesPool = 0.0;
    std::uint64_t guestFaultCount = 0;
    std::uint64_t remapCount = 0;
    std::uint64_t accessCount = 0;
    double baseCyclesPool = 0.0;
    std::uint64_t vmExitBase = 0;
    std::uint64_t shadowExitBase = 0;
};

} // namespace emv::sim

