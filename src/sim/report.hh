/**
 * @file
 * Plain-text report formatting for the bench binaries: fixed-width
 * tables (the "rows and series" of each paper figure) plus small
 * number-formatting helpers.
 */

#ifndef EMV_SIM_REPORT_HH
#define EMV_SIM_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace emv::sim {

/** Fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** "12.3%" (one decimal). */
std::string pct(double fraction);

/** Fixed-precision double. */
std::string fmt(double value, int precision = 2);

/** "1.25 GB" style byte counts. */
std::string bytesStr(std::uint64_t bytes);

} // namespace emv::sim

#endif // EMV_SIM_REPORT_HH
