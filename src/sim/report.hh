/**
 * @file
 * Plain-text report formatting for the bench binaries: fixed-width
 * tables (the "rows and series" of each paper figure) plus small
 * number-formatting helpers.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace emv::sim {

/** Fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** "12.3%" (one decimal). */
std::string pct(double fraction);

/** Fixed-precision double. */
std::string fmt(double value, int precision = 2);

/** "1.25 GB" style byte counts. */
std::string bytesStr(std::uint64_t bytes);

struct CellResult;

/**
 * Dump every registered StatGroup as emv-stats-v1 JSON.  The path
 * variant truncates the file; @return false when it cannot be
 * opened.  Both run under the StatsExport profiling phase.
 */
void writeStatsJson(std::ostream &os);
bool writeStatsJson(const std::string &path);

/**
 * Machine-readable companion to the bench bar charts: one object per
 * (workload, config) cell with overheads, misses, walk costs and
 * wall-clock throughput (ops_per_sec / host_ns_per_op), plus a
 * top-level "throughput" object aggregated over every cell.
 * Schema "emv-bench-v1".
 */
void writeCellMatrixJson(std::ostream &os, const std::string &title,
                         const std::vector<CellResult> &cells);
bool writeCellMatrixJson(const std::string &path,
                         const std::string &title,
                         const std::vector<CellResult> &cells);

/**
 * emv-bench-v1 output for a bench with no cell matrix: an empty
 * "cells" array plus the "throughput" object for @p ops trace ops
 * that took @p host_ns of wall time.
 */
void writeBenchThroughputJson(std::ostream &os,
                              const std::string &title,
                              std::uint64_t ops,
                              std::uint64_t host_ns);
bool writeBenchThroughputJson(const std::string &path,
                              const std::string &title,
                              std::uint64_t ops,
                              std::uint64_t host_ns);

/** "Fig. 11: Big-memory" -> "fig_11_big_memory" (for file names). */
std::string slugify(const std::string &title);

} // namespace emv::sim

