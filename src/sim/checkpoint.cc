#include "sim/checkpoint.hh"

#include "common/audit.hh"

namespace emv::sim {

namespace {

/** Layout version of the params chunk itself. */
constexpr std::uint32_t kMetaVersion = 1;

} // namespace

bool
saveCheckpoint(const std::string &path, const CheckpointMeta &meta,
               const Machine &machine, std::string &error,
               const telemetry::TelemetryRecorder *recorder)
{
    ckpt::Writer writer;

    ckpt::Encoder p;
    p.u32(kMetaVersion);
    p.str(meta.workload);
    p.str(meta.configLabel);
    p.f64(meta.scale);
    p.u64(meta.seed);
    p.u64(meta.warmupOps);
    p.u64(meta.measureOps);
    p.u32(meta.badFrames);
    p.u64(meta.badFrameSeed);
    p.str(meta.faultSpec);
    p.str(meta.faultPolicy);
    p.u64(meta.faultSeed);
    p.u64(meta.fragGuestBytes);
    p.u64(meta.fragHostBytes);
    p.u8(meta.audit ? 1 : 0);
    p.u64(meta.warmupDone);
    p.u64(meta.measuredOps);
    writer.chunk("params", p);

    ckpt::Encoder a;
    audit::stats().serialize(a);
    writer.chunk("audit", a);

    if (recorder) {
        ckpt::Encoder t;
        recorder->serialize(t);
        writer.chunk("telemetry", t);
    }

    machine.serialize(writer);
    return writer.writeFile(path, &error);
}

bool
loadCheckpoint(const std::string &path, LoadedCheckpoint &out,
               std::string &error)
{
    if (!out.reader.loadFile(path)) {
        error = out.reader.error();
        return false;
    }
    ckpt::Decoder dec = out.reader.chunk("params");
    const std::uint32_t meta_version = dec.u32();
    if (dec.ok() && meta_version != kMetaVersion) {
        dec.fail("params: unsupported meta version " +
                 std::to_string(meta_version));
    }
    CheckpointMeta &meta = out.meta;
    meta.workload = dec.str();
    meta.configLabel = dec.str();
    meta.scale = dec.f64();
    meta.seed = dec.u64();
    meta.warmupOps = dec.u64();
    meta.measureOps = dec.u64();
    meta.badFrames = dec.u32();
    meta.badFrameSeed = dec.u64();
    meta.faultSpec = dec.str();
    meta.faultPolicy = dec.str();
    meta.faultSeed = dec.u64();
    meta.fragGuestBytes = dec.u64();
    meta.fragHostBytes = dec.u64();
    meta.audit = dec.u8() != 0;
    meta.warmupDone = dec.u64();
    meta.measuredOps = dec.u64();
    if (!dec.ok()) {
        error = "chunk 'params': " + dec.error();
        return false;
    }
    if (meta.warmupDone > meta.warmupOps ||
        meta.measuredOps > meta.measureOps) {
        error = "chunk 'params': progress exceeds requested ops";
        return false;
    }
    return true;
}

bool
restoreMachine(const LoadedCheckpoint &file, Machine &machine,
               std::string &error)
{
    ckpt::Decoder a = file.reader.chunk("audit");
    if (!audit::stats().deserialize(a) || !a.ok()) {
        error = "chunk 'audit': " +
                (a.error().empty() ? std::string("malformed payload")
                                   : a.error());
        return false;
    }
    return machine.deserialize(file.reader, error);
}

bool
restoreTelemetry(const LoadedCheckpoint &file,
                 telemetry::TelemetryRecorder &recorder,
                 std::string &error)
{
    if (!file.reader.hasChunk("telemetry"))
        return true;
    ckpt::Decoder t = file.reader.chunk("telemetry");
    if (!recorder.deserialize(t) || !t.ok()) {
        error = "chunk 'telemetry': " +
                (t.error().empty() ? std::string("malformed payload")
                                   : t.error());
        return false;
    }
    return true;
}

} // namespace emv::sim
