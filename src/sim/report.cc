#include "sim/report.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace emv::sim {

Table::Table(std::vector<std::string> headers)
    : head(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    emv_assert(cells.size() == head.size(),
               "table row has %zu cells, expected %zu", cells.size(),
               head.size());
    body.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << '\n';
    };

    emit_row(head);
    std::size_t total = head.size() ? 2 * (head.size() - 1) : 0;
    for (auto w : widths)
        total += w;
    os << std::string(total, '-') << '\n';
    for (const auto &row : body)
        emit_row(row);
}

std::string
pct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

std::string
fmt(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
bytesStr(std::uint64_t bytes)
{
    char buf[48];
    if (bytes >= (1ull << 30)) {
        std::snprintf(buf, sizeof(buf), "%.2f GB",
                      static_cast<double>(bytes) / (1ull << 30));
    } else if (bytes >= (1ull << 20)) {
        std::snprintf(buf, sizeof(buf), "%.2f MB",
                      static_cast<double>(bytes) / (1ull << 20));
    } else if (bytes >= (1ull << 10)) {
        std::snprintf(buf, sizeof(buf), "%.2f KB",
                      static_cast<double>(bytes) / (1ull << 10));
    } else {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

} // namespace emv::sim
