#include "sim/report.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/profile.hh"
#include "common/stat_registry.hh"
#include "sim/experiment.hh"

namespace emv::sim {

Table::Table(std::vector<std::string> headers)
    : head(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    emv_assert(cells.size() == head.size(),
               "table row has %zu cells, expected %zu", cells.size(),
               head.size());
    body.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << '\n';
    };

    emit_row(head);
    std::size_t total = head.size() ? 2 * (head.size() - 1) : 0;
    for (auto w : widths)
        total += w;
    os << std::string(total, '-') << '\n';
    for (const auto &row : body)
        emit_row(row);
}

std::string
pct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

std::string
fmt(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
bytesStr(std::uint64_t bytes)
{
    char buf[48];
    if (bytes >= (1ull << 30)) {
        std::snprintf(buf, sizeof(buf), "%.2f GB",
                      static_cast<double>(bytes) / (1ull << 30));
    } else if (bytes >= (1ull << 20)) {
        std::snprintf(buf, sizeof(buf), "%.2f MB",
                      static_cast<double>(bytes) / (1ull << 20));
    } else if (bytes >= (1ull << 10)) {
        std::snprintf(buf, sizeof(buf), "%.2f KB",
                      static_cast<double>(bytes) / (1ull << 10));
    } else {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

void
writeStatsJson(std::ostream &os)
{
    prof::Scope export_scope(prof::Phase::StatsExport);
    exportStatsJson(os, StatRegistry::instance().groups());
}

bool
writeStatsJson(const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    writeStatsJson(out);
    return static_cast<bool>(out);
}

namespace {

/** The "throughput" object shared by both emv-bench-v1 writers. */
void
writeThroughputObject(json::Writer &w, std::uint64_t ops,
                      std::uint64_t host_ns)
{
    w.key("throughput");
    w.beginObject();
    w.member("ops", ops);
    w.member("host_ns", host_ns);
    w.member("ops_per_sec",
             host_ns ? static_cast<double>(ops) * 1e9 /
                           static_cast<double>(host_ns)
                     : 0.0);
    w.member("host_ns_per_op",
             ops ? static_cast<double>(host_ns) /
                       static_cast<double>(ops)
                 : 0.0);
    w.endObject();
}

} // namespace

void
writeCellMatrixJson(std::ostream &os, const std::string &title,
                    const std::vector<CellResult> &cells)
{
    prof::Scope export_scope(prof::Phase::StatsExport);
    json::Writer w(os);
    w.beginObject();
    w.member("schema", "emv-bench-v1");
    w.member("title", title);
    w.key("cells");
    w.beginArray();
    std::uint64_t total_ops = 0;
    std::uint64_t total_ns = 0;
    for (const auto &cell : cells) {
        w.beginObject();
        w.member("workload", cell.workload);
        w.member("config", cell.config);
        w.member("overhead", cell.overhead());
        w.member("translation_overhead",
                 cell.run.translationOverhead());
        w.member("base_cycles", cell.run.baseCycles);
        w.member("translation_cycles", cell.run.translationCycles);
        w.member("fault_cycles", cell.run.faultCycles);
        w.member("vmexit_cycles", cell.run.vmExitCycles);
        w.member("shootdown_cycles", cell.run.shootdownCycles);
        w.member("access_ops", cell.run.accessOps);
        w.member("l1_misses", cell.run.l1Misses);
        w.member("l2_misses", cell.run.l2Misses);
        w.member("walks", cell.run.walks);
        w.member("cycles_per_walk", cell.run.cyclesPerWalk);
        w.member("ops", cell.measuredOps);
        w.member("host_ns", cell.hostNs);
        w.member("ops_per_sec", cell.opsPerSec());
        w.member("host_ns_per_op", cell.hostNsPerOp());
        w.endObject();
        total_ops += cell.measuredOps;
        total_ns += cell.hostNs;
    }
    w.endArray();
    writeThroughputObject(w, total_ops, total_ns);
    w.endObject();
    w.finish();
}

bool
writeCellMatrixJson(const std::string &path, const std::string &title,
                    const std::vector<CellResult> &cells)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    writeCellMatrixJson(out, title, cells);
    return static_cast<bool>(out);
}

void
writeBenchThroughputJson(std::ostream &os, const std::string &title,
                         std::uint64_t ops, std::uint64_t host_ns)
{
    json::Writer w(os);
    w.beginObject();
    w.member("schema", "emv-bench-v1");
    w.member("title", title);
    w.key("cells");
    w.beginArray();
    w.endArray();
    writeThroughputObject(w, ops, host_ns);
    w.endObject();
    w.finish();
}

bool
writeBenchThroughputJson(const std::string &path,
                         const std::string &title, std::uint64_t ops,
                         std::uint64_t host_ns)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    writeBenchThroughputJson(out, title, ops, host_ns);
    return static_cast<bool>(out);
}

std::string
slugify(const std::string &title)
{
    std::string out;
    bool pending_sep = false;
    for (char ch : title) {
        const unsigned char c = static_cast<unsigned char>(ch);
        if (std::isalnum(c)) {
            if (pending_sep && !out.empty())
                out += '_';
            pending_sep = false;
            out += static_cast<char>(std::tolower(c));
        } else {
            pending_sep = true;
        }
    }
    return out.empty() ? "untitled" : out;
}

} // namespace emv::sim
