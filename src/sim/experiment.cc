#include "sim/experiment.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/profile.hh"
#include "common/trace.hh"

namespace emv::sim {

using core::Mode;

std::optional<ConfigSpec>
specFromLabel(const std::string &label)
{
    auto parse_size = [](const std::string &s,
                         PageSize &out) -> bool {
        if (s == "4K") {
            out = PageSize::Size4K;
            return true;
        }
        if (s == "2M") {
            out = PageSize::Size2M;
            return true;
        }
        if (s == "1G") {
            out = PageSize::Size1G;
            return true;
        }
        return false;
    };

    ConfigSpec spec;
    spec.label = label;

    if (label == "DS") {
        spec.mode = Mode::NativeDirect;
        return spec;
    }
    if (label == "DD") {
        spec.mode = Mode::DualDirect;
        return spec;
    }
    if (label == "THP") {
        spec.mode = Mode::Native;
        spec.thp = true;
        return spec;
    }
    if (label == "sh4K" || label == "sh2M") {
        spec.mode = Mode::BaseVirtualized;
        spec.shadow = true;
        if (label == "sh2M") {
            spec.guestPageSize = PageSize::Size2M;
            spec.vmmPageSize = PageSize::Size2M;
        }
        return spec;
    }

    const auto plus = label.find('+');
    if (plus == std::string::npos) {
        // Native page size.
        if (!parse_size(label, spec.guestPageSize))
            return std::nullopt;
        spec.mode = Mode::Native;
        return spec;
    }

    const std::string left = label.substr(0, plus);
    const std::string right = label.substr(plus + 1);
    if (left == "THP")
        spec.thp = true;
    else if (!parse_size(left, spec.guestPageSize))
        return std::nullopt;

    if (right == "VD") {
        spec.mode = Mode::VmmDirect;
        return spec;
    }
    if (right == "GD") {
        spec.mode = Mode::GuestDirect;
        return spec;
    }
    if (!parse_size(right, spec.vmmPageSize))
        return std::nullopt;
    spec.mode = Mode::BaseVirtualized;
    return spec;
}

namespace {

std::vector<ConfigSpec>
fromLabels(const std::vector<std::string> &labels)
{
    std::vector<ConfigSpec> out;
    for (const auto &label : labels) {
        auto spec = specFromLabel(label);
        emv_assert(spec.has_value(), "bad config label '%s'",
                   label.c_str());
        out.push_back(*spec);
    }
    return out;
}

} // namespace

std::vector<ConfigSpec>
figure11Configs()
{
    return fromLabels({"4K", "2M", "1G", "4K+4K", "4K+2M", "4K+1G",
                       "2M+2M", "2M+1G", "1G+1G", "DS", "DD",
                       "4K+VD", "4K+GD"});
}

std::vector<ConfigSpec>
figure12Configs()
{
    return fromLabels({"4K", "THP", "4K+4K", "4K+2M", "THP+2M",
                       "4K+VD", "THP+VD"});
}

std::vector<ConfigSpec>
figure1Configs()
{
    return fromLabels(
        {"4K", "4K+4K", "4K+2M", "4K+1G", "DD", "4K+VD"});
}

void
RunParams::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "scale=", 6) == 0)
            scale = std::atof(arg + 6);
        else if (std::strncmp(arg, "ops=", 4) == 0)
            measureOps = std::strtoull(arg + 4, nullptr, 10);
        else if (std::strncmp(arg, "warmup=", 7) == 0)
            warmupOps = std::strtoull(arg + 7, nullptr, 10);
        else if (std::strncmp(arg, "seed=", 5) == 0)
            seed = std::strtoull(arg + 5, nullptr, 10);
        else if (std::strncmp(arg, "statsjson=", 10) == 0)
            statsJsonPath = arg + 10;
        else if (std::strncmp(arg, "trace=", 6) == 0)
            traceFlags = arg + 6;
        else if (std::strncmp(arg, "tracefile=", 10) == 0)
            traceFilePath = arg + 10;
        else if (std::strncmp(arg, "profile=", 8) == 0)
            profile = std::atoi(arg + 8) != 0;
        else if (std::strncmp(arg, "audit=", 6) == 0)
            audit = std::atoi(arg + 6) != 0;
        else if (std::strncmp(arg, "faults=", 7) == 0)
            faultSpec = arg + 7;
        else if (std::strncmp(arg, "policy=", 7) == 0)
            faultPolicy = arg + 7;
        else if (std::strncmp(arg, "faultseed=", 10) == 0)
            faultSeed = std::strtoull(arg + 10, nullptr, 10);
        else
            emv_warn("ignoring unknown argument '%s'", arg);
    }
    emv_assert(scale > 0.0, "scale must be positive");
}

void
RunParams::applyObservability() const
{
    // The user asked for these by name, so report problems straight
    // to stderr even under quiet logging (emvsim runs quiet).
    if (!traceFilePath.empty() &&
        !trace::openTraceFile(traceFilePath)) {
        std::fprintf(stderr,
                     "warning: cannot open trace file '%s'; "
                     "tracing to stderr\n", traceFilePath.c_str());
    }
    if (!traceFlags.empty() && !trace::setFlags(traceFlags)) {
        std::fprintf(stderr,
                     "warning: bad trace flags '%s'; known: %s "
                     "and All\n", traceFlags.c_str(),
                     trace::allFlagNames().c_str());
    }
    prof::setEnabled(profile);
    audit::setEnabled(audit);
}

MachineConfig
makeMachineConfig(const ConfigSpec &spec, const RunParams &params)
{
    MachineConfig cfg;
    cfg.mode = spec.mode;
    cfg.guestPageSize = spec.guestPageSize;
    cfg.vmmPageSize = spec.vmmPageSize;
    cfg.thp = spec.thp;
    cfg.shadowPaging = spec.shadow;
    cfg.seed = params.seed;
    cfg.badFrames = params.badFrames;
    cfg.badFrameSeed = params.badFrameSeed;
    if (!params.faultSpec.empty()) {
        auto plan = fault::FaultPlan::parse(params.faultSpec);
        emv_assert(plan.has_value(), "bad fault spec '%s'",
                   params.faultSpec.c_str());
        cfg.faultPlan = *plan;
    }
    auto policy = fault::faultPolicyByName(params.faultPolicy);
    emv_assert(policy.has_value(), "bad fault policy '%s'",
               params.faultPolicy.c_str());
    cfg.faultPolicy = *policy;
    cfg.faultSeed = params.faultSeed;
    return cfg;
}

CellResult
runCell(workload::WorkloadKind kind, const ConfigSpec &spec,
        const RunParams &params)
{
    std::unique_ptr<workload::Workload> wl;
    {
        prof::Scope gen_scope(prof::Phase::WorkloadGen);
        wl = workload::makeWorkload(kind, params.seed, params.scale);
    }
    const MachineConfig cfg = makeMachineConfig(spec, params);
    Machine machine(cfg, *wl);
    machine.run(params.warmupOps);
    machine.resetStats();

    CellResult cell;
    cell.workload = workload::workloadName(kind);
    cell.config = spec.label;
    const auto t0 = std::chrono::steady_clock::now();
    cell.run = machine.run(params.measureOps);
    cell.hostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    cell.measuredOps = params.measureOps;
    return cell;
}

} // namespace emv::sim
