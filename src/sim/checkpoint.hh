/**
 * @file
 * Whole-run checkpointing for emvsim-style drivers.
 *
 * A run checkpoint is an emv-ckpt-v1 container holding
 *
 *   "params"  — how to rebuild the run: workload, configuration
 *               label, scale, seeds, fault plan, and how far the
 *               run had progressed (warmup / measured op counts);
 *   "audit"   — the process-wide machine.audit counters;
 *   "telemetry" (optional) — the TelemetryRecorder's window cursor
 *               and per-source baselines, present only when the run
 *               had a metrics sink attached;
 *   the Machine's per-layer chunks (see Machine::serialize).
 *
 * Restore is construct-then-overwrite: the driver rebuilds the
 * workload and Machine from the params chunk exactly as a fresh run
 * would, then deserializes every mutable layer on top.  Because the
 * RNG streams, stat registries and cycle pools are restored
 * bit-exactly, a resumed run finishes with output identical to the
 * uninterrupted run.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/ckpt.hh"
#include "common/telemetry.hh"
#include "sim/machine.hh"

namespace emv::sim {

/** Everything needed to rebuild and resume a run. */
struct CheckpointMeta
{
    /** @{ Identity: the run's full configuration. */
    std::string workload = "gups";
    std::string configLabel = "4K+4K";
    double scale = 1.0;
    std::uint64_t seed = 42;
    std::uint64_t warmupOps = 0;
    std::uint64_t measureOps = 0;
    unsigned badFrames = 0;
    std::uint64_t badFrameSeed = 99;
    std::string faultSpec;
    std::string faultPolicy = "degrade";
    std::uint64_t faultSeed = 7;
    Addr fragGuestBytes = 0;  //!< 0 = no guest fragmentation.
    Addr fragHostBytes = 0;   //!< 0 = no host fragmentation.
    bool audit = false;
    /** @} */

    /** @{ Progress at checkpoint time. */
    std::uint64_t warmupDone = 0;   //!< Warmup ops completed.
    std::uint64_t measuredOps = 0;  //!< Measure ops completed.
    /** @} */
};

/** A parsed and CRC-validated checkpoint plus its decoded meta. */
struct LoadedCheckpoint
{
    ckpt::Reader reader;
    CheckpointMeta meta;
};

/**
 * Atomically write meta + audit counters + every machine layer to
 * @p path.  When @p recorder is non-null its window cursor and
 * baselines are saved in a "telemetry" chunk so a resumed run
 * continues at the next window index.  False (with @p error set) on
 * any I/O failure; an existing file at @p path survives a failed
 * write intact.
 */
bool saveCheckpoint(const std::string &path,
                    const CheckpointMeta &meta, const Machine &machine,
                    std::string &error,
                    const telemetry::TelemetryRecorder *recorder =
                        nullptr);

/**
 * Read, parse and fully validate @p path (magic, version, framing,
 * CRCs) and decode its params chunk.  All failures are structured:
 * false with @p error explaining the defect.
 */
bool loadCheckpoint(const std::string &path, LoadedCheckpoint &out,
                    std::string &error);

/**
 * Overwrite @p machine's mutable state (and the global audit
 * counters) from a loaded checkpoint.  The machine must have been
 * built from the checkpoint's own params; geometry or configuration
 * mismatches fail with a structured @p error.
 */
bool restoreMachine(const LoadedCheckpoint &file, Machine &machine,
                    std::string &error);

/**
 * Restore @p recorder's window cursor and baselines from the
 * checkpoint's "telemetry" chunk, if one is present.  The recorder
 * must already be attached to the rebuilt machine (same sources, in
 * the same order) and configured with the same window size.  A
 * checkpoint without the chunk (run saved with no metrics sink) is
 * not an error: the recorder is left at window 0.
 */
bool restoreTelemetry(const LoadedCheckpoint &file,
                      telemetry::TelemetryRecorder &recorder,
                      std::string &error);

} // namespace emv::sim
