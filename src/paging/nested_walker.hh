/**
 * @file
 * Two-dimensional nested page-table walker (Fig. 2).
 *
 * The guest page table's nodes are addressed by gPA, so every step
 * of the guest walk needs its own gPA→hPA translation before the
 * guest entry can be read.  On x86-64 that multiplies a 4-reference
 * native walk into up to 5*4 + 4 = 24 references.
 *
 * *How* a gPA becomes an hPA is exactly what the paper's modes vary
 * (nested walk, nested-TLB hit, VMM direct segment, escape filter),
 * so the walker delegates it to a GpaTranslator supplied by the MMU.
 */

#pragma once

#include "common/types.hh"
#include "paging/walk.hh"
#include "tlb/walk_cache.hh"

namespace emv::mem { class PhysMemory; }

namespace emv::paging {

/**
 * Strategy for the second dimension (gPA→hPA) of a nested walk.
 * Implementations record their own references/calculations in the
 * supplied trace.
 */
class GpaTranslator
{
  public:
    virtual ~GpaTranslator() = default;

    /** Translate @p gpa to host physical. ok=false means nested fault. */
    virtual WalkOutcome toHost(Addr gpa, WalkTrace &trace) = 0;
};

/**
 * The 2D walker: guest dimension here, nested dimension via the
 * GpaTranslator.
 */
class NestedWalker
{
  public:
    explicit NestedWalker(const mem::PhysMemory &host_mem);

    /**
     * Perform the full 2D walk of @p gva.
     *
     * @param guest_root_gpa Guest-physical base of the guest PML4.
     * @param gva            Guest virtual address to translate.
     * @param nested         Second-dimension translation strategy.
     * @param trace          Trace accumulating both dimensions.
     * @param guest_cache    Optional guest paging-structure cache.
     * @return Final hPA; size is the min of the guest and nested
     *         leaf granules (what a real TLB entry could cover).
     */
    WalkOutcome walk(Addr guest_root_gpa, Addr gva,
                     GpaTranslator &nested, WalkTrace &trace,
                     tlb::WalkCache *guest_cache = nullptr) const;

  private:
    const mem::PhysMemory &hostMem;
};

} // namespace emv::paging

