/**
 * @file
 * x86-64 page-table entry encodings and radix-tree geometry.
 *
 * Both dimensions of translation in the paper use the same 4-level
 * x86-64 long-mode format (each address space can be 2^48 bytes), so
 * one encoding serves the guest page table (gVA→gPA) and the nested
 * page table (gPA→hPA).
 */

#pragma once

#include <cstdint>

#include "common/types.hh"

namespace emv::paging {

/** Number of radix levels in x86-64 long mode. */
constexpr int kLevels = 4;

/** Entries per table node (512 = 9 index bits). */
constexpr int kEntriesPerTable = 512;

/** PTE flag bits (subset of the architectural definition). */
enum PteBits : std::uint64_t {
    kPtePresent  = 1ull << 0,
    kPteWritable = 1ull << 1,
    kPteUser     = 1ull << 2,
    kPteAccessed = 1ull << 5,
    kPteDirty    = 1ull << 6,
    kPtePageSize = 1ull << 7,   //!< Leaf at PDPT (1G) or PD (2M).
    kPteNx       = 1ull << 63,
};

/** Mask of the physical-frame field (bits 12..51). */
constexpr std::uint64_t kPteFrameMask = 0x000ffffffffff000ull;

/**
 * Index into the table at @p level for virtual address @p va.
 * Level 4 = PML4 (bits 47..39) ... level 1 = PT (bits 20..12).
 */
constexpr unsigned
tableIndex(Addr va, int level)
{
    return (va >> (12 + 9 * (level - 1))) & 0x1ff;
}

/** Page size mapped by a leaf at @p level (1=4K, 2=2M, 3=1G). */
constexpr PageSize
leafSize(int level)
{
    return level == 3 ? PageSize::Size1G
         : level == 2 ? PageSize::Size2M
                      : PageSize::Size4K;
}

/** Level at which a leaf of @p size lives. */
constexpr int
leafLevel(PageSize size)
{
    return size == PageSize::Size1G ? 3
         : size == PageSize::Size2M ? 2
                                    : 1;
}

/** Decoded view of a 64-bit entry. */
struct Pte
{
    std::uint64_t raw = 0;

    bool present() const { return raw & kPtePresent; }
    bool writable() const { return raw & kPteWritable; }
    bool user() const { return raw & kPteUser; }
    bool pageSize() const { return raw & kPtePageSize; }
    bool nx() const { return raw & kPteNx; }
    Addr frame() const { return raw & kPteFrameMask; }

    static std::uint64_t
    makeTable(Addr next_table)
    {
        return (next_table & kPteFrameMask) | kPtePresent |
               kPteWritable | kPteUser;
    }

    static std::uint64_t
    makeLeaf(Addr frame, int level, bool writable, bool user_mode)
    {
        std::uint64_t raw = (frame & kPteFrameMask) | kPtePresent;
        if (writable)
            raw |= kPteWritable;
        if (user_mode)
            raw |= kPteUser;
        if (level > 1)
            raw |= kPtePageSize;
        return raw;
    }
};

} // namespace emv::paging

