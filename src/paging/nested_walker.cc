#include "paging/nested_walker.hh"

#include <algorithm>

#include "common/trace.hh"
#include "mem/phys_memory.hh"
#include "paging/pte.hh"

namespace emv::paging {

NestedWalker::NestedWalker(const mem::PhysMemory &host_mem)
    : hostMem(host_mem)
{
}

WalkOutcome
NestedWalker::walk(Addr guest_root_gpa, Addr gva,
                   GpaTranslator &nested, WalkTrace &trace,
                   tlb::WalkCache *guest_cache) const
{
    Addr table_gpa = guest_root_gpa;
    int start_level = kLevels;

    // Guest-side paging-structure cache: skipping a guest level also
    // skips the nested translation of that level's entry pointer,
    // which is where most of the 2D blow-up lives.
    if (guest_cache) {
        for (int level = 2; level <= kLevels; ++level) {
            auto hit =
                guest_cache->lookup(tlb::WalkCache::key(level, gva));
            if (hit) {
                table_gpa = *hit;
                start_level = level - 1;
                EMV_TRACE(Walk, "psc hit guest gva=%s skip_to=L%d",
                          hexAddr(gva).c_str(), start_level);
                break;
            }
        }
    }

    for (int level = start_level; level >= 1; --level) {
        // Second dimension: locate the guest entry in host memory.
        const Addr entry_gpa =
            table_gpa + 8ull * tableIndex(gva, level);
        const WalkOutcome entry_host = nested.toHost(entry_gpa, trace);
        if (!entry_host.ok)
            return WalkOutcome{0, PageSize::Size4K, false};

        // First dimension: read the guest entry itself.
        trace.addRef(entry_host.pa, RefStage::GuestTable, level);
        EMV_TRACE(Walk, "ref guest L%d gva=%s entry_gpa=%s hpa=%s",
                  level, hexAddr(gva).c_str(),
                  hexAddr(entry_gpa).c_str(),
                  hexAddr(entry_host.pa).c_str());
        Pte pte{hostMem.read64(entry_host.pa)};
        if (!pte.present())
            return WalkOutcome{0, PageSize::Size4K, false};

        const bool leaf = level == 1 || pte.pageSize();
        if (leaf) {
            const PageSize guest_size = leafSize(level);
            const Addr data_gpa =
                pte.frame() + (gva & (pageBytes(guest_size) - 1));
            // Final nested translation of the data gPA.
            const WalkOutcome data_host = nested.toHost(data_gpa, trace);
            if (!data_host.ok)
                return WalkOutcome{0, PageSize::Size4K, false};
            WalkOutcome out;
            out.pa = data_host.pa;
            // A single TLB entry can only cover the intersection of
            // the two granules.
            out.size = std::min(guest_size, data_host.size);
            out.ok = true;
            return out;
        }
        if (guest_cache && level >= 2) {
            guest_cache->insert(tlb::WalkCache::key(level, gva),
                                pte.frame());
        }
        table_gpa = pte.frame();
    }
    return WalkOutcome{0, PageSize::Size4K, false};
}

} // namespace emv::paging
