/**
 * @file
 * Walk traces: the raw material of the paper's cost analysis.
 *
 * Every simulated page walk produces a WalkTrace listing each memory
 * reference (tagged with which dimension and level issued it) and
 * each base-bound calculation.  Fig. 2's "24 references" and Table
 * I/II's "4 accesses + 5 calculations" drop straight out of these
 * traces; the cost model then prices them.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace emv::paging {

/** Which table a walk reference read. */
enum class RefStage : std::uint8_t {
    GuestTable,   //!< gVA→gPA guest page-table entry (read via hPA).
    NestedTable,  //!< gPA→hPA nested page-table entry.
    NativeTable,  //!< Native (unvirtualized) page-table entry.
    ShadowTable,  //!< Shadow (gVA→hPA) page-table entry.
};

/** Printable stage name for trace records. */
inline const char *
refStageName(RefStage stage)
{
    switch (stage) {
      case RefStage::GuestTable: return "guest";
      case RefStage::NestedTable: return "nested";
      case RefStage::NativeTable: return "native";
      case RefStage::ShadowTable: return "shadow";
    }
    return "?";
}

/** One memory reference made by the page-walk hardware. */
struct WalkRef
{
    Addr hpa = 0;        //!< Host physical address actually read.
    RefStage stage = RefStage::NativeTable;
    std::int8_t level = 0;  //!< Radix level (4..1) of the entry.
};

/** Full record of one translation's walk activity. */
struct WalkTrace
{
    std::vector<WalkRef> refs;
    unsigned calculations = 0;  //!< Base-bound checks / segment adds.

    void
    addRef(Addr hpa, RefStage stage, int level)
    {
        refs.push_back(WalkRef{hpa, stage,
                               static_cast<std::int8_t>(level)});
    }

    std::size_t
    countStage(RefStage stage) const
    {
        std::size_t n = 0;
        for (const auto &ref : refs)
            n += ref.stage == stage ? 1 : 0;
        return n;
    }

    void
    clear()
    {
        refs.clear();
        calculations = 0;
    }
};

/** Result of a simulated walk. */
struct WalkOutcome
{
    Addr pa = 0;                       //!< Translated address.
    PageSize size = PageSize::Size4K;  //!< Granule of the mapping.
    bool ok = false;                   //!< False on a page fault.
};

} // namespace emv::paging

