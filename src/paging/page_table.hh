/**
 * @file
 * x86-64 four-level page-table builder.
 *
 * A PageTable is a real radix tree of encoded 64-bit entries stored
 * through a MemSpace.  The MemSpace abstraction captures *whose*
 * memory the table nodes live in:
 *
 *  - the nested page table's nodes live directly in host physical
 *    memory (the VMM runs natively);
 *  - the guest page table's nodes live in *guest physical* memory,
 *    whose bytes physically reside wherever the VMM mapped each gPA
 *    — so guest-table reads/writes are themselves translated, which
 *    is precisely what makes the 2D walk two-dimensional.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "paging/pte.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::paging {

/**
 * Address space in which a page table's nodes are allocated and
 * accessed.  Implementations: identity over host memory, or a
 * guest-physical view that routes through the VMM's mapping.
 */
class MemSpace
{
  public:
    virtual ~MemSpace() = default;

    /** Load a 64-bit word at an address in this space. */
    virtual std::uint64_t read64(Addr addr) const = 0;

    /** Store a 64-bit word at an address in this space. */
    virtual void write64(Addr addr, std::uint64_t value) = 0;

    /** Allocate and zero a 4 KB frame for a table node. */
    virtual Addr allocTableFrame() = 0;

    /** Release a table-node frame. */
    virtual void freeTableFrame(Addr frame) = 0;
};

/** Result of a software (non-simulated) translation. */
struct SoftTranslation
{
    Addr pa = 0;            //!< Full translated address.
    PageSize size = PageSize::Size4K;
    bool writable = false;
};

/**
 * Four-level x86-64 page table.
 *
 * map()/unmap() maintain the radix tree; translate() is a software
 * walk used for correctness checks and by the shadow pager.  The
 * simulated, cycle-accounted walks live in walker.hh.
 */
class PageTable
{
  public:
    explicit PageTable(MemSpace &space);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Map the page of @p size containing @p va to the frame at
     * @p pa.  Both must be size-aligned.  Panics on conflicting
     * existing mappings (callers unmap first).
     */
    void map(Addr va, Addr pa, PageSize size, bool writable = true,
             bool user_mode = true);

    /**
     * Remove the mapping of the page of @p size at @p va.
     * @return true if a mapping was removed.
     */
    bool unmap(Addr va, PageSize size);

    /** Software walk; nullopt if not mapped. */
    std::optional<SoftTranslation> translate(Addr va) const;

    /** One leaf mapping, as visited by forEachLeaf(). */
    struct Leaf
    {
        Addr va = 0;
        Addr pa = 0;       //!< Frame base.
        PageSize size = PageSize::Size4K;
        bool writable = false;
    };

    /**
     * Visit every leaf mapping in ascending VA order (reverse-map
     * construction for compaction and the shadow pager).
     */
    void forEachLeaf(const std::function<void(const Leaf &)> &fn) const;

    /** True if @p va has any mapping. */
    bool isMapped(Addr va) const { return translate(va).has_value(); }

    /**
     * True if mapping a page of @p size at @p va would conflict:
     * either a covering leaf exists above/at that level, or any
     * smaller mappings exist below it.  O(levels), not O(pages).
     */
    bool leafRangeOccupied(Addr va, PageSize size) const;

    /** Root node address (in this table's MemSpace). */
    Addr root() const { return rootFrame; }

    /** Number of live leaf mappings. */
    std::uint64_t mappedLeaves() const { return leaves; }

    /** Number of table nodes (including the root). */
    std::uint64_t tableNodes() const { return nodes; }

    /** Monotonic count of map/unmap operations (PT update events). */
    std::uint64_t updateCount() const { return updates; }

    /** Bytes of memory consumed by table nodes. */
    Addr tableBytes() const { return nodes * kPage4K; }

    /**
     * Checkpoint table metadata (root, node/leaf/update counts).
     * The tree contents themselves live in the MemSpace's physical
     * memory and are captured by the PhysMemory chunk.
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    /** Recursively free an entire subtree. */
    void freeSubtree(Addr table, int level);

    /** Recursive helper for forEachLeaf(). */
    void visitLeaves(Addr table, int level, Addr va_prefix,
                     const std::function<void(const Leaf &)> &fn) const;

    /** True if the node holds no present entries. */
    bool nodeEmpty(Addr table) const;

    MemSpace &space;
    Addr rootFrame;
    std::uint64_t leaves = 0;
    std::uint64_t nodes = 0;
    std::uint64_t updates = 0;
};

} // namespace emv::paging

