#include "paging/walker.hh"

#include "common/trace.hh"
#include "mem/phys_memory.hh"
#include "paging/pte.hh"

namespace emv::paging {

using tlb::WalkCache;

Walker::Walker(const mem::PhysMemory &host_mem)
    : hostMem(host_mem)
{
}

WalkOutcome
Walker::walk(Addr root, Addr va, RefStage stage, WalkTrace &trace,
             tlb::WalkCache *cache) const
{
    Addr table = root;
    int start_level = kLevels;

    // Paging-structure cache: start at the deepest cached level.
    if (cache) {
        for (int level = 2; level <= kLevels; ++level) {
            if (auto hit = cache->lookup(WalkCache::key(level, va))) {
                table = *hit;
                start_level = level - 1;
                EMV_TRACE(Walk, "psc hit %s va=%s skip_to=L%d",
                          refStageName(stage), hexAddr(va).c_str(),
                          start_level);
                break;
            }
        }
    }

    for (int level = start_level; level >= 1; --level) {
        const Addr entry_addr = table + 8ull * tableIndex(va, level);
        trace.addRef(entry_addr, stage, level);
        EMV_TRACE(Walk, "ref %s L%d va=%s entry=%s",
                  refStageName(stage), level, hexAddr(va).c_str(),
                  hexAddr(entry_addr).c_str());
        Pte pte{hostMem.read64(entry_addr)};
        if (!pte.present())
            return WalkOutcome{0, PageSize::Size4K, false};

        const bool leaf = level == 1 || pte.pageSize();
        if (leaf) {
            const PageSize size = leafSize(level);
            WalkOutcome out;
            out.size = size;
            out.pa = pte.frame() + (va & (pageBytes(size) - 1));
            out.ok = true;
            return out;
        }
        if (cache && level >= 2)
            cache->insert(WalkCache::key(level, va), pte.frame());
        table = pte.frame();
    }
    return WalkOutcome{0, PageSize::Size4K, false};
}

} // namespace emv::paging
