#include "paging/page_table.hh"

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"

namespace emv::paging {

PageTable::PageTable(MemSpace &space)
    : space(space), rootFrame(space.allocTableFrame()), nodes(1)
{
}

PageTable::~PageTable()
{
    freeSubtree(rootFrame, kLevels);
}

void
PageTable::freeSubtree(Addr table, int level)
{
    if (level > 1) {
        for (int i = 0; i < kEntriesPerTable; ++i) {
            Pte pte{space.read64(table + 8ull * i)};
            if (pte.present() && !pte.pageSize())
                freeSubtree(pte.frame(), level - 1);
        }
    }
    space.freeTableFrame(table);
    --nodes;
}

bool
PageTable::nodeEmpty(Addr table) const
{
    for (int i = 0; i < kEntriesPerTable; ++i) {
        Pte pte{space.read64(table + 8ull * i)};
        if (pte.present())
            return false;
    }
    return true;
}

void
PageTable::map(Addr va, Addr pa, PageSize size, bool writable,
               bool user_mode)
{
    emv_assert(isAligned(va, pageBytes(size)),
               "map: va %s not aligned to %s page",
               hexAddr(va).c_str(), pageSizeName(size));
    emv_assert(isAligned(pa, pageBytes(size)),
               "map: pa %s not aligned to %s page",
               hexAddr(pa).c_str(), pageSizeName(size));

    const int target = leafLevel(size);
    Addr table = rootFrame;
    for (int level = kLevels; level > target; --level) {
        const Addr entry_addr = table + 8ull * tableIndex(va, level);
        Pte pte{space.read64(entry_addr)};
        if (!pte.present()) {
            const Addr child = space.allocTableFrame();
            ++nodes;
            space.write64(entry_addr, Pte::makeTable(child));
            table = child;
        } else {
            emv_assert(!pte.pageSize(),
                       "map: %s page at va %s conflicts with an "
                       "existing %s leaf",
                       pageSizeName(size), hexAddr(va).c_str(),
                       pageSizeName(leafSize(level)));
            table = pte.frame();
        }
    }

    const Addr entry_addr = table + 8ull * tableIndex(va, target);
    Pte existing{space.read64(entry_addr)};
    emv_assert(!existing.present(),
               "map: va %s already mapped (unmap first)",
               hexAddr(va).c_str());
    space.write64(entry_addr,
                  Pte::makeLeaf(pa, target, writable, user_mode));
    ++leaves;
    ++updates;
    EMV_CHECK([&] {
                  auto readback = translate(va);
                  return readback && readback->pa == pa &&
                         readback->size == size;
              }(),
              "map: software readback of va %s disagrees with the "
              "just-installed %s leaf at pa %s",
              hexAddr(va).c_str(), pageSizeName(size),
              hexAddr(pa).c_str());
}

bool
PageTable::unmap(Addr va, PageSize size)
{
    emv_assert(isAligned(va, pageBytes(size)),
               "unmap: va %s not aligned to %s page",
               hexAddr(va).c_str(), pageSizeName(size));

    const int target = leafLevel(size);
    // Record the path so empty tables can be reclaimed bottom-up.
    Addr path_tables[kLevels];
    Addr path_entries[kLevels];
    int depth = 0;

    Addr table = rootFrame;
    for (int level = kLevels; level > target; --level) {
        const Addr entry_addr = table + 8ull * tableIndex(va, level);
        Pte pte{space.read64(entry_addr)};
        if (!pte.present() || pte.pageSize())
            return false;
        path_tables[depth] = table;
        path_entries[depth] = entry_addr;
        ++depth;
        table = pte.frame();
    }

    const Addr entry_addr = table + 8ull * tableIndex(va, target);
    Pte pte{space.read64(entry_addr)};
    if (!pte.present())
        return false;
    const bool is_leaf_here = target > 1 ? pte.pageSize() : true;
    if (!is_leaf_here)
        return false;  // A smaller mapping exists below this level.
    space.write64(entry_addr, 0);
    --leaves;
    ++updates;

    // Reclaim now-empty intermediate tables (not the root).
    Addr child = table;
    for (int i = depth - 1; i >= 0; --i) {
        if (child == rootFrame || !nodeEmpty(child))
            break;
        space.write64(path_entries[i], 0);
        space.freeTableFrame(child);
        --nodes;
        child = path_tables[i];
    }
    return true;
}

void
PageTable::visitLeaves(Addr table, int level, Addr va_prefix,
                       const std::function<void(const Leaf &)> &fn)
    const
{
    const Addr step = 1ull << (12 + 9 * (level - 1));
    for (int i = 0; i < kEntriesPerTable; ++i) {
        Pte pte{space.read64(table + 8ull * i)};
        if (!pte.present())
            continue;
        const Addr va = va_prefix + static_cast<Addr>(i) * step;
        const bool leaf = level == 1 || pte.pageSize();
        if (leaf) {
            Leaf out;
            out.va = va;
            out.pa = pte.frame();
            out.size = leafSize(level);
            out.writable = pte.writable();
            fn(out);
        } else {
            visitLeaves(pte.frame(), level - 1, va, fn);
        }
    }
}

void
PageTable::forEachLeaf(const std::function<void(const Leaf &)> &fn)
    const
{
    visitLeaves(rootFrame, kLevels, 0, fn);
}

bool
PageTable::leafRangeOccupied(Addr va, PageSize size) const
{
    const int target = leafLevel(size);
    Addr table = rootFrame;
    for (int level = kLevels; level > target; --level) {
        Pte pte{space.read64(table + 8ull * tableIndex(va, level))};
        if (!pte.present())
            return false;
        if (pte.pageSize())
            return true;  // Covered by a larger leaf.
        table = pte.frame();
    }
    // Present at the target level — as a leaf *or* as a table of
    // smaller mappings — means the range is occupied.
    Pte pte{space.read64(table + 8ull * tableIndex(va, target))};
    return pte.present();
}

std::optional<SoftTranslation>
PageTable::translate(Addr va) const
{
    Addr table = rootFrame;
    for (int level = kLevels; level >= 1; --level) {
        const Addr entry_addr = table + 8ull * tableIndex(va, level);
        Pte pte{space.read64(entry_addr)};
        if (!pte.present())
            return std::nullopt;
        const bool leaf = level == 1 || pte.pageSize();
        if (leaf) {
            const PageSize size = leafSize(level);
            SoftTranslation out;
            out.size = size;
            out.writable = pte.writable();
            out.pa = pte.frame() + (va & (pageBytes(size) - 1));
            return out;
        }
        table = pte.frame();
    }
    return std::nullopt;
}

void
PageTable::serialize(ckpt::Encoder &enc) const
{
    enc.u64(rootFrame);
    enc.u64(leaves);
    enc.u64(nodes);
    enc.u64(updates);
}

bool
PageTable::deserialize(ckpt::Decoder &dec)
{
    // The entries themselves are restored with physical memory; only
    // the tree metadata lives here.  The constructor-allocated root
    // is superseded by the saved root (its frame is accounted for by
    // the restored allocator state).
    rootFrame = dec.u64();
    leaves = dec.u64();
    nodes = dec.u64();
    updates = dec.u64();
    return dec.ok();
}

} // namespace emv::paging
