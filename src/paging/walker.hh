/**
 * @file
 * One-dimensional page-table walker.
 *
 * Walks a 4-level table whose nodes live directly in host physical
 * memory: the native walk, the shadow-table walk, and the nested
 * (gPA→hPA) dimension of a 2D walk all use this engine.  Every
 * entry read is recorded in the WalkTrace; an optional WalkCache
 * lets the walk start below the root (paging-structure caching).
 */

#pragma once

#include "common/types.hh"
#include "paging/walk.hh"
#include "tlb/walk_cache.hh"

namespace emv::mem { class PhysMemory; }

namespace emv::paging {

/** Walker over tables resident in host physical memory. */
class Walker
{
  public:
    explicit Walker(const mem::PhysMemory &host_mem);

    /**
     * Walk the table rooted at @p root for address @p va.
     *
     * @param root  Host-physical base of the level-4 table.
     * @param va    Address to translate (gVA, gPA or native VA).
     * @param stage Tag recorded on every reference.
     * @param trace Trace to append references to.
     * @param cache Optional paging-structure cache.
     */
    WalkOutcome walk(Addr root, Addr va, RefStage stage,
                     WalkTrace &trace,
                     tlb::WalkCache *cache = nullptr) const;

  private:
    const mem::PhysMemory &hostMem;
};

} // namespace emv::paging

