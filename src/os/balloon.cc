#include "os/balloon.hh"

#include "common/ckpt.hh"
#include "common/logging.hh"
#include "common/profile.hh"
#include "common/trace.hh"
#include "os/guest_os.hh"

namespace emv::os {

BalloonDriver::BalloonDriver(GuestOs &os, BalloonBackend &backend)
    : os(os), backend(backend)
{
}

Addr
BalloonDriver::inflate(Addr bytes)
{
    prof::Scope balloon_scope(prof::Phase::Balloon);
    emv_assert(isAligned(bytes, kPage4K),
               "balloon size must be 4K aligned");
    if (requestFaultHook && requestFaultHook()) {
        EMV_TRACE(Balloon, "inflate request failed (injected)");
        return 0;
    }
    std::vector<Addr> batch;
    Addr got = 0;
    while (got < bytes) {
        // Like the virtio balloon, take whatever free 4K pages the
        // allocator hands out — typically scattered when memory is
        // fragmented.
        auto page = os.buddy().allocate(0);
        if (!page)
            break;
        os.markUnmovable(*page, kPage4K);  // Pinned, not swappable.
        batch.push_back(*page);
        got += kPage4K;
    }
    EMV_TRACE(Balloon, "inflate wanted=%llu got=%llu pages=%zu",
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(got), batch.size());
    if (!batch.empty()) {
        backend.reclaimGuestPages(batch);
        pinned.insert(pinned.end(), batch.begin(), batch.end());
        _inflatedBytes += got;
    }
    if (got < bytes) {
        emv_warn("balloon inflate short: wanted %llu got %llu bytes",
                 static_cast<unsigned long long>(bytes),
                 static_cast<unsigned long long>(got));
    }
    return got;
}

std::optional<Interval>
BalloonDriver::selfBalloon(Addr bytes)
{
    prof::Scope balloon_scope(prof::Phase::Balloon);
    const Addr got = inflate(bytes);
    if (got < bytes)
        return std::nullopt;
    auto base = backend.grantExtension(bytes);
    if (!base)
        return std::nullopt;
    os.hotAdd(*base, bytes);
    EMV_TRACE(Balloon, "self-balloon extension [%s, +%s)",
              hexAddr(*base).c_str(), hexAddr(bytes).c_str());
    return Interval{*base, *base + bytes};
}

void
BalloonDriver::serialize(ckpt::Encoder &enc) const
{
    enc.u64(pinned.size());
    for (Addr page : pinned)
        enc.u64(page);
    enc.u64(_inflatedBytes);
}

bool
BalloonDriver::deserialize(ckpt::Decoder &dec)
{
    pinned.clear();
    const std::uint64_t n = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < n; ++i)
        pinned.push_back(dec.u64());
    _inflatedBytes = dec.u64();
    return dec.ok();
}

} // namespace emv::os
