#include "os/guest_os.hh"

#include "common/ckpt.hh"
#include "common/logging.hh"
#include "common/trace.hh"

namespace emv::os {

namespace {

unsigned
orderFor(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return 0;
      case PageSize::Size2M: return 9;
      case PageSize::Size1G: return 18;
    }
    return 0;
}

} // namespace

/**
 * MemSpace backing per-process page tables: words go through the
 * PhysAccessor (so guest PT bytes physically live wherever the VMM
 * put them), table frames come from the OS buddy allocator.
 */
class GuestOs::OsMemSpace : public paging::MemSpace
{
  public:
    explicit OsMemSpace(GuestOs &os) : os(os) {}

    std::uint64_t
    read64(Addr addr) const override
    {
        return os._phys.read64(addr);
    }

    void
    write64(Addr addr, std::uint64_t value) override
    {
        os._phys.write64(addr, value);
    }

    Addr
    allocTableFrame() override
    {
        auto frame = os.allocKernelFrame();
        if (!frame)
            emv_fatal("out of physical memory for page tables");
        os._phys.zeroFrame(*frame);
        return *frame;
    }

    void
    freeTableFrame(Addr frame) override
    {
        os.freeKernelFrame(frame);
    }

  private:
    GuestOs &os;
};

GuestOs::GuestOs(mem::PhysAccessor &phys, Addr span,
                 const std::vector<Interval> &ram, OsConfig config)
    : _phys(phys), config(config), span(span)
{
    emv_assert(span > 0 && isAligned(span, kPage4K),
               "OS physical span must be a positive 4K multiple");
    _buddy = std::make_unique<mem::BuddyAllocator>(0, span);
    // Nothing is RAM until declared: reserve the whole span, then
    // hot-add the boot RAM ranges.
    const bool reserved = _buddy->allocateRange(0, span);
    emv_assert(reserved, "fresh buddy must allow full reservation");
    for (const auto &range : ram)
        hotAdd(range.start, range.length());
    space = std::make_unique<OsMemSpace>(*this);
}

GuestOs::~GuestOs()
{
    // Page tables free frames through the mem space; drop processes
    // before the space and buddy go away.
    processes.clear();
}

Process &
GuestOs::createProcess()
{
    processes.push_back(
        std::make_unique<Process>(nextPid++, *space));
    return *processes.back();
}

paging::MemSpace &
GuestOs::memSpace()
{
    return *space;
}

std::vector<Process *>
GuestOs::liveProcesses()
{
    std::vector<Process *> out;
    out.reserve(processes.size());
    for (auto &proc : processes)
        out.push_back(proc.get());
    return out;
}

void
GuestOs::hotAdd(Addr base, Addr bytes)
{
    emv_assert(base + bytes <= span,
               "hot-add [%s, +%s) beyond the physical span",
               hexAddr(base).c_str(), hexAddr(bytes).c_str());
    emv_assert(!ramSet.containsRange(base, base + bytes) || bytes == 0,
               "hot-add of already present RAM at %s",
               hexAddr(base).c_str());
    EMV_TRACE(Hotplug, "hot-add [%s, +%s)",
              hexAddr(base).c_str(), hexAddr(bytes).c_str());
    ramSet.insert(base, base + bytes);
    _buddy->freeRange(base, bytes);
    ++_stats.counter("hot_adds");
    _stats.counter("hot_added_bytes") += bytes;
}

bool
GuestOs::hotRemove(Addr base, Addr bytes)
{
    if (!ramSet.containsRange(base, base + bytes))
        return false;
    if (!_buddy->allocateRange(base, bytes))
        return false;  // In use: hot-unplug needs free memory.
    EMV_TRACE(Hotplug, "hot-remove [%s, +%s)",
              hexAddr(base).c_str(), hexAddr(bytes).c_str());
    ramSet.erase(base, base + bytes);
    ++_stats.counter("hot_removes");
    _stats.counter("hot_removed_bytes") += bytes;
    return true;
}

std::optional<Addr>
GuestOs::allocDataBlock(PageSize size)
{
    const unsigned order = orderFor(size);
    for (;;) {
        auto block = _buddy->allocate(order);
        if (!block)
            return std::nullopt;
        if (!_phys.anyBadInRange(*block, pageBytes(size)))
            return block;
        // Commodity-OS behaviour: retire faulty frames to the
        // bad-page list [26] and try again.  Healthy 4K siblings of
        // a large block are returned to the allocator.
        for (Addr pa = *block; pa < *block + pageBytes(size);
             pa += kPage4K) {
            if (_phys.isBad(pa)) {
                badPages.push_back(pa);
                markUnmovable(pa, kPage4K);
                ++_stats.counter("bad_pages_retired");
            } else {
                _buddy->freeRange(pa, kPage4K);
            }
        }
    }
}

void
GuestOs::freeDataBlock(Addr base, PageSize size)
{
    _buddy->free(base, orderFor(size));
}

std::optional<Addr>
GuestOs::allocKernelFrame()
{
    if (kernelFreeList.empty()) {
        // Grow the pool by one chunk, preferentially placed at the
        // configured kernel base so unmovable kernel memory stays
        // clustered (and, under VMM Direct, inside the segment).
        Addr chunk_bytes = config.kernelChunkBytes;
        auto fit = _buddy->freeIntervals().findFitLowAbove(
            chunk_bytes, kPage4K, config.kernelAllocBase);
        if (fit && _buddy->allocateRange(fit->start, chunk_bytes)) {
            markUnmovable(fit->start, chunk_bytes);
            ++_stats.counter("kernel_chunks");
            for (Addr off = 0; off < chunk_bytes; off += kPage4K) {
                if (!_phys.isBad(fit->start + off))
                    kernelFreeList.push_back(fit->start + off);
            }
        } else {
            // Desperate path: single frames from the allocator.
            auto frame = allocDataBlock(PageSize::Size4K);
            if (!frame)
                return std::nullopt;
            markUnmovable(*frame, kPage4K);
            kernelFreeList.push_back(*frame);
        }
    }
    const Addr frame = kernelFreeList.back();
    kernelFreeList.pop_back();
    return frame;
}

void
GuestOs::freeKernelFrame(Addr frame)
{
    // Pool chunks never shrink; recycle within the pool.
    kernelFreeList.push_back(frame);
}

void
GuestOs::defineRegion(Process &proc, std::string name, Addr va,
                      Addr bytes, PageSize preferred, bool primary)
{
    Region region;
    region.name = std::move(name);
    region.base = va;
    region.bytes = bytes;
    region.primary = primary;
    region.pageSize = preferred;
    proc.addRegion(region);
}

bool
GuestOs::mapPage(Process &proc, const Region &region, Addr va_page)
{
    auto &pt = proc.pageTable();
    if (pt.translate(va_page))
        return true;  // Raced / already mapped.

    // Segment-backed pages: compute the physical address from the
    // segment offset (§VI.B) unless the target frame is faulty.
    const auto &seg = proc.guestSegment();
    if (seg.contains(va_page)) {
        const Addr pa = seg.translate(va_page);
        if (!_phys.isBad(pa)) {
            pt.map(va_page, pa, PageSize::Size4K);
            ++_stats.counter("segment_offset_maps");
            if (mappingHook) {
                mappingHook(proc, va_page, kPage4K, PageSize::Size4K,
                            true);
            }
            return true;
        }
        // Escape: remap the faulty page to a healthy frame.
        auto healthy = allocDataBlock(PageSize::Size4K);
        if (!healthy)
            return false;
        pt.map(va_page, *healthy, PageSize::Size4K);
        ++_stats.counter("escape_remaps");
        if (mappingHook) {
            mappingHook(proc, va_page, kPage4K, PageSize::Size4K,
                        true);
        }
        return true;
    }

    PageSize size = region.pageSize;
    Addr base = alignDown(va_page, pageBytes(size));

    // THP: opportunistically promote 4K regions to 2M mappings.
    if (config.thp && size == PageSize::Size4K &&
        thpRng.nextBool(config.thpCoverage)) {
        const Addr base2m = alignDown(va_page, kPage2M);
        if (base2m >= region.base &&
            base2m + kPage2M <= region.end() &&
            !pt.leafRangeOccupied(base2m, PageSize::Size2M)) {
            if (auto frame = allocDataBlock(PageSize::Size2M)) {
                pt.map(base2m, *frame, PageSize::Size2M);
                ++_stats.counter("thp_promotions");
                if (mappingHook) {
                    mappingHook(proc, base2m, kPage2M,
                                PageSize::Size2M, true);
                }
                return true;
            }
        }
    }

    // Fall back to smaller sizes when large blocks are unavailable
    // or the region edge does not fit one.
    while (true) {
        base = alignDown(va_page, pageBytes(size));
        const bool fits = base >= region.base &&
                          base + pageBytes(size) <= region.end();
        if (fits) {
            if (auto frame = allocDataBlock(size)) {
                proc.pageTable().map(base, *frame, size);
                ++_stats.counter("pages_mapped");
                if (mappingHook) {
                    mappingHook(proc, base, pageBytes(size), size,
                                true);
                }
                return true;
            }
        }
        if (size == PageSize::Size4K)
            return false;
        size = size == PageSize::Size1G ? PageSize::Size2M
                                        : PageSize::Size4K;
        ++_stats.counter("size_fallbacks");
    }
}

FaultOutcome
GuestOs::handleFault(Process &proc, Addr gva)
{
    FaultOutcome outcome;
    const Region *region = proc.findRegion(gva);
    if (!region) {
        ++_stats.counter("segfaults");
        return outcome;
    }
    ++_stats.counter("faults");
    const Addr page = alignDown(gva, kPage4K);
    const bool in_segment = proc.guestSegment().contains(page);
    if (!mapPage(proc, *region, page))
        return outcome;
    auto mapping = proc.pageTable().translate(page);
    emv_assert(mapping.has_value(), "fault handler failed to map");
    outcome.ok = true;
    outcome.mappedSize = mapping->size;
    outcome.usedSegmentOffset = in_segment;
    outcome.remappedBadPage =
        in_segment &&
        mapping->pa != proc.guestSegment().translate(page);
    return outcome;
}

void
GuestOs::populateRange(Process &proc, Addr va, Addr bytes)
{
    const Addr end = va + bytes;
    Addr page = alignDown(va, kPage4K);
    while (page < end) {
        const Region *region = proc.findRegion(page);
        emv_assert(region, "populate outside any region at %s",
                   hexAddr(page).c_str());
        if (!mapPage(proc, *region, page))
            emv_fatal("out of memory populating %s",
                      hexAddr(page).c_str());
        auto mapping = proc.pageTable().translate(page);
        page = alignDown(page, pageBytes(mapping->size)) +
               pageBytes(mapping->size);
    }
}

std::uint64_t
GuestOs::unmapRange(Process &proc, Addr va, Addr bytes)
{
    auto &pt = proc.pageTable();
    const auto &seg = proc.guestSegment();
    const Addr end = va + bytes;
    std::uint64_t unmapped = 0;
    Addr page = alignDown(va, kPage4K);
    while (page < end) {
        auto mapping = pt.translate(page);
        if (!mapping) {
            page += kPage4K;
            continue;
        }
        const Addr base = alignDown(page, pageBytes(mapping->size));
        const Addr frame = mapping->pa & ~(pageBytes(mapping->size) - 1);
        pt.unmap(base, mapping->size);
        // Frames inside a segment reservation stay reserved; frames
        // the escape path allocated (or ordinary data frames) are
        // returned to the allocator.
        const bool segment_backed =
            seg.contains(base) && frame == seg.translate(base);
        if (!segment_backed)
            freeDataBlock(frame, mapping->size);
        if (mappingHook) {
            mappingHook(proc, base, pageBytes(mapping->size),
                        mapping->size, false);
        }
        ++unmapped;
        ++_stats.counter("pages_unmapped");
        page = base + pageBytes(mapping->size);
    }
    return unmapped;
}

std::optional<segment::SegmentRegs>
GuestOs::createGuestSegment(Process &proc)
{
    const Region *primary = proc.primaryRegion();
    if (!primary) {
        ++_stats.counter("segment_failures");
        return std::nullopt;
    }
    // Take the highest fit: post-reclaim this is the hot-added /
    // high memory that a VMM segment covers, and it keeps low
    // kernel memory free (2M-aligned so Guest Direct can compose
    // with 2M nested pages).
    auto fit =
        _buddy->freeIntervals().findFitHigh(primary->bytes, kPage2M);
    if (!fit || !_buddy->allocateRange(fit->start, primary->bytes)) {
        ++_stats.counter("segment_failures");
        return std::nullopt;
    }
    auto regs = segment::SegmentRegs::fromRanges(
        primary->base, primary->bytes, fit->start);
    proc.setGuestSegment(regs);
    // Segment backing cannot be migrated out from under the regs.
    markUnmovable(fit->start, primary->bytes);
    ++_stats.counter("segments_created");
    EMV_TRACE(Segment, "guest segment created: %s",
              regs.toString().c_str());
    return regs;
}

void
GuestOs::releaseGuestSegment(Process &proc)
{
    const auto &seg = proc.guestSegment();
    if (!seg.enabled())
        return;
    // Drop PTEs created by the §VI.B emulation path first so their
    // frames are not double-freed.
    unmapRange(proc, seg.base(), seg.length());
    clearUnmovable(seg.base() + seg.offset(), seg.length());
    _buddy->freeRange(seg.base() + seg.offset(), seg.length());
    proc.clearGuestSegment();
    ++_stats.counter("segments_released");
}

void
GuestOs::serialize(ckpt::Encoder &enc) const
{
    ramSet.serialize(enc);
    _buddy->serialize(enc);
    enc.u64(processes.size());
    for (const auto &proc : processes)
        proc->serialize(enc);
    enc.u64(badPages.size());
    for (Addr page : badPages)
        enc.u64(page);
    unmovableSet.serialize(enc);
    enc.u64(kernelFreeList.size());
    for (Addr frame : kernelFreeList)
        enc.u64(frame);
    thpRng.serialize(enc);
    _stats.serialize(enc);
    enc.u32(static_cast<std::uint32_t>(nextPid));
}

bool
GuestOs::deserialize(ckpt::Decoder &dec)
{
    if (!ramSet.deserialize(dec) || !_buddy->deserialize(dec))
        return false;
    const std::uint64_t nprocs = dec.u64();
    if (dec.ok() && nprocs != processes.size()) {
        dec.fail("os: process count mismatch (restore requires the "
                 "same boot configuration)");
        return false;
    }
    for (std::uint64_t i = 0; dec.ok() && i < nprocs; ++i) {
        if (!processes[static_cast<std::size_t>(i)]->deserialize(dec))
            return false;
    }
    badPages.clear();
    const std::uint64_t nbad = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < nbad; ++i)
        badPages.push_back(dec.u64());
    if (!unmovableSet.deserialize(dec))
        return false;
    kernelFreeList.clear();
    const std::uint64_t nkernel = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < nkernel; ++i)
        kernelFreeList.push_back(dec.u64());
    if (!thpRng.deserialize(dec) || !_stats.deserialize(dec))
        return false;
    nextPid = static_cast<int>(dec.u32());
    return dec.ok();
}

} // namespace emv::os
