/**
 * @file
 * Balloon driver and self-ballooning (§IV, Fig. 9).
 *
 * A classic balloon driver [52] asks the guest OS for pages the VMM
 * may reclaim.  *Self-ballooning* chains that with memory hotplug:
 * the guest balloons out an arbitrary (fragmented) set of pages, the
 * VMM reclaims their backing, and the same amount of memory is
 * hot-added back as *contiguous* guest-physical addresses — turning
 * fragmented free memory into segment-grade contiguity without
 * paying for compaction.
 */

#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/intervals.hh"
#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::os {

class GuestOs;

/**
 * VMM half of the balloon/hotplug protocol (implemented by
 * emv::vmm::Vmm; abstract here so the guest side is testable
 * without a hypervisor).
 */
class BalloonBackend
{
  public:
    virtual ~BalloonBackend() = default;

    /** Guest surrenders these 4 KB gPAs; VMM reclaims backing. */
    virtual void reclaimGuestPages(const std::vector<Addr> &gpas) = 0;

    /** Guest hot-unplugged a whole range (I/O-gap reclaim); the
     *  VMM may free its backing.  Default: keep it. */
    virtual void reclaimGuestRange(Addr base, Addr bytes)
    { (void)base; (void)bytes; }

    /**
     * VMM extends guest-physical memory by @p bytes of *contiguous*
     * gPA (hot-add, KVM slot extension per §VI.C).
     * @return Base of the new range, or nullopt if exhausted.
     */
    virtual std::optional<Addr> grantExtension(Addr bytes) = 0;
};

/** The guest-resident driver. */
class BalloonDriver
{
  public:
    BalloonDriver(GuestOs &os, BalloonBackend &backend);

    /**
     * Inflate the balloon by @p bytes: pin free guest pages
     * (arbitrary addresses, as the kernel provides them) and hand
     * them to the VMM.  @return Bytes actually ballooned.
     */
    Addr inflate(Addr bytes);

    /**
     * Self-balloon: inflate @p bytes, then hot-add the same amount
     * of contiguous gPA granted by the VMM.
     * @return The new contiguous range on success.
     */
    std::optional<Interval> selfBalloon(Addr bytes);

    /** Total bytes currently ballooned out. */
    Addr inflatedBytes() const { return _inflatedBytes; }

    /** Pages currently held by the balloon. */
    const std::vector<Addr> &pinnedPages() const { return pinned; }

    /** Inject transient request failures: while the hook returns
     *  true, inflate() (and hence selfBalloon()) fails without
     *  touching guest memory — the caller retries with backoff. */
    void setRequestFaultHook(std::function<bool()> hook)
    { requestFaultHook = std::move(hook); }

    /** Checkpoint the pinned-page list and inflated byte count. */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    GuestOs &os;
    BalloonBackend &backend;
    std::vector<Addr> pinned;
    Addr _inflatedBytes = 0;
    std::function<bool()> requestFaultHook;
};

} // namespace emv::os

