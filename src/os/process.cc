#include "os/process.hh"

#include "common/logging.hh"

namespace emv::os {

Process::Process(int pid, paging::MemSpace &space)
    : _pid(pid), pt(std::make_unique<paging::PageTable>(space))
{
}

void
Process::addRegion(const Region &region)
{
    emv_assert(region.bytes > 0, "empty region '%s'",
               region.name.c_str());
    emv_assert(isAligned(region.base, kPage4K) &&
               isAligned(region.bytes, kPage4K),
               "region '%s' not page aligned", region.name.c_str());
    for (const auto &existing : _regions) {
        emv_assert(region.base >= existing.end() ||
                   region.end() <= existing.base,
                   "region '%s' overlaps '%s'", region.name.c_str(),
                   existing.name.c_str());
    }
    _regions.push_back(region);
}

const Region *
Process::findRegion(Addr va) const
{
    for (const auto &region : _regions) {
        if (region.contains(va))
            return &region;
    }
    return nullptr;
}

Region *
Process::findRegion(Addr va)
{
    for (auto &region : _regions) {
        if (region.contains(va))
            return &region;
    }
    return nullptr;
}

const Region *
Process::primaryRegion() const
{
    for (const auto &region : _regions) {
        if (region.primary)
            return &region;
    }
    return nullptr;
}

} // namespace emv::os
