#include "os/process.hh"

#include "common/ckpt.hh"
#include "common/logging.hh"

namespace emv::os {

Process::Process(int pid, paging::MemSpace &space)
    : _pid(pid), pt(std::make_unique<paging::PageTable>(space))
{
}

void
Process::addRegion(const Region &region)
{
    emv_assert(region.bytes > 0, "empty region '%s'",
               region.name.c_str());
    emv_assert(isAligned(region.base, kPage4K) &&
               isAligned(region.bytes, kPage4K),
               "region '%s' not page aligned", region.name.c_str());
    for (const auto &existing : _regions) {
        emv_assert(region.base >= existing.end() ||
                   region.end() <= existing.base,
                   "region '%s' overlaps '%s'", region.name.c_str(),
                   existing.name.c_str());
    }
    _regions.push_back(region);
}

const Region *
Process::findRegion(Addr va) const
{
    for (const auto &region : _regions) {
        if (region.contains(va))
            return &region;
    }
    return nullptr;
}

Region *
Process::findRegion(Addr va)
{
    for (auto &region : _regions) {
        if (region.contains(va))
            return &region;
    }
    return nullptr;
}

const Region *
Process::primaryRegion() const
{
    for (const auto &region : _regions) {
        if (region.primary)
            return &region;
    }
    return nullptr;
}

void
Process::serialize(ckpt::Encoder &enc) const
{
    enc.u32(static_cast<std::uint32_t>(_pid));
    pt->serialize(enc);
    enc.u64(_regions.size());
    for (const auto &region : _regions) {
        enc.str(region.name);
        enc.u64(region.base);
        enc.u64(region.bytes);
        enc.u8(region.primary ? 1 : 0);
        enc.u8(static_cast<std::uint8_t>(region.pageSize));
    }
    enc.u64(_guestSegment.base());
    enc.u64(_guestSegment.limit());
    enc.u64(_guestSegment.offset());
}

bool
Process::deserialize(ckpt::Decoder &dec)
{
    const int savedPid = static_cast<int>(dec.u32());
    if (dec.ok() && savedPid != _pid) {
        dec.fail("process: pid mismatch (restore requires the same "
                 "boot configuration)");
        return false;
    }
    if (!pt->deserialize(dec))
        return false;
    _regions.clear();
    const std::uint64_t nregions = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < nregions; ++i) {
        Region region;
        region.name = dec.str();
        region.base = dec.u64();
        region.bytes = dec.u64();
        region.primary = dec.u8() != 0;
        region.pageSize = static_cast<PageSize>(dec.u8());
        if (dec.ok())
            _regions.push_back(std::move(region));
    }
    const Addr base = dec.u64();
    const Addr limit = dec.u64();
    const std::uint64_t offset = dec.u64();
    _guestSegment = segment::SegmentRegs(base, limit, offset);
    return dec.ok();
}

} // namespace emv::os
