#include "os/compaction.hh"

#include <algorithm>
#include <vector>

#include "common/ckpt.hh"
#include "common/logging.hh"
#include "common/profile.hh"
#include "common/trace.hh"
#include "os/guest_os.hh"

namespace emv::os {

CompactionDaemon::CompactionDaemon(GuestOs &os, RemapHook on_remap)
    : os(os), onRemap(std::move(on_remap))
{
}

std::optional<CompactionDaemon::Window>
CompactionDaemon::bestWindow(Addr bytes) const
{
    const IntervalSet free_set = os.buddy().freeIntervals();
    const IntervalSet &unmovable = os.unmovable();

    std::optional<Window> best;
    // Slide a window at 2M steps inside each RAM interval.
    for (const auto &ram : os.ram().intervals()) {
        if (ram.length() < bytes)
            continue;
        for (Addr w = alignUp(ram.start, kPage2M);
             w + bytes <= ram.end; w += kPage2M) {
            if (unmovable.intersectsRange(w, w + bytes))
                continue;
            const Addr free_in =
                free_set.coveredBytesInRange(w, w + bytes);
            const Addr allocated = bytes - free_in;
            if (!best || allocated < best->allocatedBytes)
                best = Window{w, allocated};
            if (best->allocatedBytes == 0)
                return best;
        }
    }
    return best;
}

std::optional<std::uint64_t>
CompactionDaemon::estimateMigrations(Addr bytes)
{
    if (os.buddy().largestFreeRun() >= bytes)
        return 0;
    auto window = bestWindow(bytes);
    if (!window)
        return std::nullopt;
    EMV_TRACE(Compaction,
              "window base=%s bytes=%s allocated=%s",
              hexAddr(window->base).c_str(),
              hexAddr(bytes).c_str(),
              hexAddr(window->allocatedBytes).c_str());
    return window->allocatedBytes / kPage4K;
}

std::optional<Interval>
CompactionDaemon::createFreeRun(Addr bytes, std::uint64_t
                                                max_migrations)
{
    prof::Scope compaction_scope(prof::Phase::Compaction);
    emv_assert(bytes > 0 && isAligned(bytes, kPage4K),
               "compaction target must be a positive 4K multiple");
    if (faultHook && faultHook()) {
        EMV_TRACE(Compaction, "createFreeRun failed (injected)");
        return std::nullopt;
    }

    // Already available?
    if (auto run = os.buddy().freeIntervals().largest();
        run && run->length() >= bytes) {
        return Interval{run->start, run->start + bytes};
    }

    auto window = bestWindow(bytes);
    if (!window)
        return std::nullopt;
    if (max_migrations &&
        window->allocatedBytes / kPage4K > max_migrations) {
        return std::nullopt;
    }

    const Addr wstart = window->base;
    const Addr wend = window->base + bytes;
    auto &buddy = os.buddy();

    // 1. Reserve every currently free piece of the window so the
    //    migration targets we allocate land outside it.
    const auto free_pieces = buddy.freeIntervals();
    for (const auto &piece : free_pieces.intervals()) {
        const Addr lo = std::max(piece.start, wstart);
        const Addr hi = std::min(piece.end, wend);
        if (hi > lo) {
            const bool ok = buddy.allocateRange(lo, hi - lo);
            emv_assert(ok, "window free piece vanished");
        }
    }

    // 2. Reverse-map the window: find every leaf whose frame block
    //    overlaps it.
    struct Victim
    {
        Process *proc;
        Addr va;
        Addr pa;
        PageSize size;
    };
    std::vector<Victim> victims;
    for (Process *proc : os.liveProcesses()) {
        proc->pageTable().forEachLeaf(
            [&](const paging::PageTable::Leaf &leaf) {
                const Addr lo = leaf.pa;
                const Addr hi = leaf.pa + pageBytes(leaf.size);
                if (hi > wstart && lo < wend) {
                    victims.push_back(
                        {proc, leaf.va, leaf.pa, leaf.size});
                }
            });
    }

    // 2b. Every allocated byte of the window must belong to some
    //     page-table leaf; anonymous allocations cannot be migrated
    //     safely.  Undo the reservations and fail if any exist.
    Addr victim_bytes = 0;
    for (const auto &victim : victims) {
        const Addr lo = std::max(victim.pa, wstart);
        const Addr hi =
            std::min(victim.pa + pageBytes(victim.size), wend);
        victim_bytes += hi - lo;
    }
    if (victim_bytes != window->allocatedBytes) {
        emv_warn("compaction: window holds %llu unowned bytes; "
                 "aborting",
                 static_cast<unsigned long long>(
                     window->allocatedBytes - victim_bytes));
        for (const auto &piece : free_pieces.intervals()) {
            const Addr lo = std::max(piece.start, wstart);
            const Addr hi = std::min(piece.end, wend);
            if (hi > lo)
                buddy.freeRange(lo, hi - lo);
        }
        return std::nullopt;
    }

    // 3. Migrate each victim to freshly allocated memory (outside
    //    the window by construction of step 1).
    for (const auto &victim : victims) {
        auto target = os.allocDataBlock(victim.size);
        if (!target) {
            emv_warn("compaction: out of migration targets");
            return std::nullopt;
        }
        const Addr block_bytes = pageBytes(victim.size);
        for (Addr off = 0; off < block_bytes; off += kPage4K)
            os.phys().copyFrame(*target + off, victim.pa + off);
        victim.proc->pageTable().unmap(victim.va, victim.size);
        victim.proc->pageTable().map(victim.va, *target, victim.size);
        if (onRemap)
            onRemap(*victim.proc, victim.va, victim.size);
        ++migrated;
        // Pieces of the old block outside the window return to the
        // allocator; pieces inside join our window reservation.
        const Addr lo = victim.pa;
        const Addr hi = victim.pa + block_bytes;
        if (lo < wstart)
            buddy.freeRange(lo, wstart - lo);
        if (hi > wend)
            buddy.freeRange(wend, hi - wend);
    }

    // 4. The entire window is now reserved by the daemon; release it
    //    as one contiguous free run.
    buddy.freeRange(wstart, bytes);
    EMV_TRACE(Compaction,
              "free run [%s, %s) after %llu migrations",
              hexAddr(wstart).c_str(), hexAddr(wend).c_str(),
              static_cast<unsigned long long>(migrated));
    return Interval{wstart, wend};
}

void
CompactionDaemon::serialize(ckpt::Encoder &enc) const
{
    enc.u64(migrated);
}

bool
CompactionDaemon::deserialize(ckpt::Decoder &dec)
{
    migrated = dec.u64();
    return dec.ok();
}

} // namespace emv::os
