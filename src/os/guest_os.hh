/**
 * @file
 * The operating-system model.
 *
 * GuestOs manages one physical address space: a Linux-like buddy
 * allocator over its RAM, demand paging into per-process x86-64
 * page tables, primary-region tracking and guest-segment creation,
 * hot-add/hot-remove of RAM ranges (the hotplug substrate used by
 * self-ballooning and I/O-gap reclaim), and a commodity-OS bad-page
 * list (§V).
 *
 * The same class serves as the native OS (PhysAccessor = host
 * memory, RAM = host RAM) and as the guest OS inside a VM
 * (PhysAccessor provided by the VMM, RAM = guest-physical layout
 * with the x86-64 I/O gap carved out).
 *
 * Per the paper's own prototype strategy (§VI.B), direct segments
 * are also *emulated* in the page tables: a fault on a
 * segment-backed address computes its physical address from the
 * segment offset and installs a conventional PTE.  This is what
 * keeps escape-filter fallbacks (bad pages, false positives) and
 * non-segment modes functionally correct.
 */

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/intervals.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/buddy_allocator.hh"
#include "mem/phys_accessor.hh"
#include "os/process.hh"
#include "paging/page_table.hh"
#include "segment/direct_segment.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::os {

/** OS-level policy knobs. */
struct OsConfig
{
    /** Transparent huge pages: opportunistic 2M mappings for
     *  regions whose preferred size is 4K. */
    bool thp = false;

    /** Fraction of 4K faults THP manages to promote (alignment and
     *  availability permitting); models THP's imperfect coverage. */
    double thpCoverage = 0.9;

    /**
     * Preferred placement for kernel (page-table) pool chunks.
     * The machine layer sets this to the end of the I/O gap for
     * virtualized builds so guest page tables land inside the VMM
     * direct segment — the paper's "guest kernel module" change
     * (§III.B).  Kernel chunks cluster here, keeping unmovable
     * memory out of compaction's way.
     */
    Addr kernelAllocBase = 0;

    /** Kernel pool growth granule. */
    Addr kernelChunkBytes = 4 * MiB;
};

/** Outcome of a fault (for cost accounting). */
struct FaultOutcome
{
    bool ok = false;
    bool usedSegmentOffset = false;  //!< §VI.B emulation path.
    bool remappedBadPage = false;    //!< Escaped a faulty frame.
    PageSize mappedSize = PageSize::Size4K;
};

/** The OS. */
class GuestOs
{
  public:
    /**
     * @param phys     Access to this OS's physical address space.
     * @param span     Total physical address-space span [0, span).
     * @param ram      Initially present RAM ranges within the span.
     * @param config   Policy knobs.
     */
    GuestOs(mem::PhysAccessor &phys, Addr span,
            const std::vector<Interval> &ram, OsConfig config = {});
    ~GuestOs();

    GuestOs(const GuestOs &) = delete;
    GuestOs &operator=(const GuestOs &) = delete;

    /** @{ Processes and regions. */
    Process &createProcess();

    void defineRegion(Process &proc, std::string name, Addr va,
                      Addr bytes, PageSize preferred,
                      bool primary = false);

    /** Demand-page the address @p gva (guest page-fault handler). */
    FaultOutcome handleFault(Process &proc, Addr gva);

    /** Eagerly populate [va, va+bytes) of a defined region. */
    void populateRange(Process &proc, Addr va, Addr bytes);

    /**
     * Unmap [va, va+bytes), freeing backing frames (except frames
     * owned by a segment reservation, which stay reserved).
     * @return Number of pages unmapped.
     */
    std::uint64_t unmapRange(Process &proc, Addr va, Addr bytes);
    /** @} */

    /**
     * Create a guest segment backing the process's primary region
     * with contiguous physical memory (best-fit in the buddy's free
     * intervals).  Fails if fragmentation prevents a single run.
     */
    std::optional<segment::SegmentRegs>
    createGuestSegment(Process &proc);

    /** Release a process's guest-segment reservation. */
    void releaseGuestSegment(Process &proc);

    /** @{ Hotplug (memory-hotplug substrate [38]). */
    /** Hot-add RAM (must lie in the span and not be present). */
    void hotAdd(Addr base, Addr bytes);
    /** Hot-remove RAM; fails unless the range is entirely free. */
    bool hotRemove(Addr base, Addr bytes);
    /** Present RAM ranges. */
    const IntervalSet &ram() const { return ramSet; }
    /** @} */

    /** @{ Physical-memory services. */
    mem::BuddyAllocator &buddy() { return *_buddy; }
    mem::PhysAccessor &phys() { return _phys; }
    paging::MemSpace &memSpace();

    /** Allocate a data block, retiring faulty frames to the
     *  bad-page list.  Returns nullopt when out of memory. */
    std::optional<Addr> allocDataBlock(PageSize size);

    /** Free a data block previously allocated. */
    void freeDataBlock(Addr base, PageSize size);

    /**
     * Allocate one 4 KB kernel frame (page tables, driver state)
     * from the pooled, unmovable kernel area.
     */
    std::optional<Addr> allocKernelFrame();

    /** Return a kernel frame to the pool free list. */
    void freeKernelFrame(Addr frame);

    /** Frames retired due to hard faults. */
    const std::vector<Addr> &badPageList() const { return badPages; }

    /** @{ Movability (for compaction): page-table frames and pinned
     *     balloon pages cannot be migrated. */
    void markUnmovable(Addr base, Addr bytes)
    { unmovableSet.insert(base, base + bytes); }
    void clearUnmovable(Addr base, Addr bytes)
    { unmovableSet.erase(base, base + bytes); }
    const IntervalSet &unmovable() const { return unmovableSet; }
    /** @} */

    /** All live processes (compaction reverse maps, tests). */
    std::vector<Process *> liveProcesses();
    /** @} */

    /**
     * Observer of mapping changes: fired after a page is mapped
     * (mapped=true) or unmapped (mapped=false).  The machine layer
     * uses it for TLB invalidation and shadow-table coherence.
     */
    using MappingHook = std::function<void(
        Process &, Addr va, Addr bytes, PageSize size, bool mapped)>;
    void setMappingHook(MappingHook hook)
    { mappingHook = std::move(hook); }

    StatGroup &stats() { return _stats; }

    /**
     * Checkpoint RAM layout, buddy state, every process (by index —
     * the roster is fixed after boot), bad pages, unmovable set,
     * kernel pool, THP RNG and stats.  Hooks are not serialized;
     * owners re-wire them after restore.
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    class OsMemSpace;

    /** Map one page of @p region at @p va_page; true on success. */
    bool mapPage(Process &proc, const Region &region, Addr va_page);

    mem::PhysAccessor &_phys;
    OsConfig config;
    Addr span;
    IntervalSet ramSet;
    std::unique_ptr<mem::BuddyAllocator> _buddy;
    std::unique_ptr<OsMemSpace> space;
    std::vector<std::unique_ptr<Process>> processes;
    std::vector<Addr> badPages;
    IntervalSet unmovableSet;
    MappingHook mappingHook;
    std::vector<Addr> kernelFreeList;
    Rng thpRng{0x7709};
    StatGroup _stats{"os"};
    int nextPid = 1;
};

} // namespace emv::os

