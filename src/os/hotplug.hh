/**
 * @file
 * I/O-gap reclamation via hot-unplug (§IV, §VI.C).
 *
 * x86-64 reserves roughly [3 GB, 4 GB) of the physical address space
 * for memory-mapped I/O, splitting RAM-backed addresses into a
 * below-gap and an above-gap piece and preventing one direct segment
 * from covering (almost) all guest memory.  The fix: hot-unplug most
 * memory *below* the gap (hot-unplug, unlike ballooning, removes
 * specific addresses) and extend guest memory by the same amount at
 * the top — leaving a small kernel reservation below the gap (the
 * paper found 256 MB suffices to boot Linux).
 */

#pragma once

#include <optional>

#include "common/intervals.hh"
#include "common/types.hh"
#include "os/balloon.hh"

namespace emv::os {

class GuestOs;

/** Result of an I/O-gap reclamation. */
struct IoGapReclaim
{
    Addr movedBytes = 0;       //!< Unplugged below, added above.
    Interval extension{};      //!< New top-of-memory range.
};

/**
 * Relocate memory below the I/O gap to the top of guest-physical
 * memory.  Must run at "boot", while below-gap memory is still free.
 *
 * @param os           The guest OS.
 * @param backend      VMM hotplug backend (slot extension).
 * @param io_gap_start Start of the I/O gap (typically 3 GB).
 * @param keep_bytes   Low memory to keep for the kernel (256 MB).
 * @return Details on success; nullopt if the memory was in use or
 *         the VMM could not extend.
 */
std::optional<IoGapReclaim>
reclaimIoGap(GuestOs &os, BalloonBackend &backend, Addr io_gap_start,
             Addr keep_bytes);

} // namespace emv::os

