#include "os/hotplug.hh"

#include "common/logging.hh"
#include "common/trace.hh"
#include "os/guest_os.hh"

namespace emv::os {

std::optional<IoGapReclaim>
reclaimIoGap(GuestOs &os, BalloonBackend &backend, Addr io_gap_start,
             Addr keep_bytes)
{
    emv_assert(isAligned(io_gap_start, kPage4K) &&
               isAligned(keep_bytes, kPage4K),
               "I/O gap parameters must be page aligned");
    if (keep_bytes >= io_gap_start)
        return std::nullopt;

    // How much below-gap RAM is actually present?
    Addr below = 0;
    for (const auto &iv : os.ram().intervals()) {
        if (iv.start >= io_gap_start)
            continue;
        const Addr end = std::min(iv.end, io_gap_start);
        below += end - iv.start;
    }
    if (below <= keep_bytes)
        return std::nullopt;

    const Addr move = below - keep_bytes;
    if (!os.hotRemove(keep_bytes, move)) {
        emv_warn("I/O gap reclaim: below-gap memory busy");
        return std::nullopt;
    }
    auto base = backend.grantExtension(move);
    if (!base) {
        // Roll back: put the memory back where it was.
        os.hotAdd(keep_bytes, move);
        return std::nullopt;
    }
    backend.reclaimGuestRange(keep_bytes, move);
    os.hotAdd(*base, move);

    EMV_TRACE(Hotplug,
              "I/O gap reclaim moved %s bytes to extension at %s",
              hexAddr(move).c_str(), hexAddr(*base).c_str());
    IoGapReclaim out;
    out.movedBytes = move;
    out.extension = Interval{*base, *base + move};
    return out;
}

} // namespace emv::os
