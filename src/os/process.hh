/**
 * @file
 * A guest (or native) process: address space, page table, and the
 * primary-region / guest-segment state of §II.B.
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "paging/page_table.hh"
#include "segment/direct_segment.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::os {

/**
 * One mapped virtual region.  A *primary region* (Basu et al. [9])
 * is a contiguous chunk of anonymous memory with uniform
 * permissions, eligible for direct-segment backing.
 */
struct Region
{
    std::string name;
    Addr base = 0;
    Addr bytes = 0;
    bool primary = false;     //!< Eligible for a direct segment.
    PageSize pageSize = PageSize::Size4K;  //!< Preferred mapping size.

    Addr end() const { return base + bytes; }
    bool contains(Addr va) const { return va >= base && va < end(); }
};

/** Per-process state owned by the OS. */
class Process
{
  public:
    Process(int pid, paging::MemSpace &space);

    int pid() const { return _pid; }
    paging::PageTable &pageTable() { return *pt; }
    const paging::PageTable &pageTable() const { return *pt; }

    /** @{ Region bookkeeping (set up by GuestOs). */
    void addRegion(const Region &region);
    const std::vector<Region> &regions() const { return _regions; }
    const Region *findRegion(Addr va) const;
    Region *findRegion(Addr va);
    const Region *primaryRegion() const;
    /** @} */

    /**
     * Guest segment covering (part of) the primary region, if the
     * OS managed to create one.  Saved/restored on context switch.
     */
    const segment::SegmentRegs &guestSegment() const
    { return _guestSegment; }
    void setGuestSegment(const segment::SegmentRegs &regs)
    { _guestSegment = regs; }
    void clearGuestSegment() { _guestSegment.clear(); }

    /** Checkpoint page-table metadata, regions and segment regs. */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    int _pid;
    std::unique_ptr<paging::PageTable> pt;
    std::vector<Region> _regions;
    segment::SegmentRegs _guestSegment;
};

} // namespace emv::os

