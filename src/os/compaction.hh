/**
 * @file
 * Memory-compaction daemon (§IV, "Memory compaction").
 *
 * Linux-style compaction [20]: pick a target window, migrate every
 * movable allocated page out of it, and hand back one large free
 * run — the slow path for creating direct segments on fragmented
 * memory (Table III's "slowly converted ... with host memory
 * compaction" rows describe the same mechanism on the host side,
 * implemented by emv::vmm::Vmm::compactHost()).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/intervals.hh"
#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::os {

class GuestOs;
class Process;

/** Guest-side compaction daemon. */
class CompactionDaemon
{
  public:
    /**
     * @param on_remap Invoked after a page migrates so the machine
     *        layer can invalidate TLB entries for the moved VA.
     */
    using RemapHook =
        std::function<void(Process &, Addr va, PageSize size)>;

    explicit CompactionDaemon(GuestOs &os, RemapHook on_remap = {});

    /**
     * Migrate pages until a free run of @p bytes exists.
     *
     * @param bytes           Required contiguous free length.
     * @param max_migrations  Work budget in pages (0 = unlimited);
     *                        if the best window needs more, nothing
     *                        is migrated and nullopt is returned.
     * @return The free run on success.
     */
    std::optional<Interval> createFreeRun(Addr bytes,
                                          std::uint64_t
                                              max_migrations = 0);

    /** Pages the cheapest viable window would need to migrate. */
    std::optional<std::uint64_t> estimateMigrations(Addr bytes);

    /** Pages migrated over this daemon's lifetime. */
    std::uint64_t migratedPages() const { return migrated; }

    /** Inject transient failures: while the hook returns true,
     *  createFreeRun() fails without migrating anything. */
    void setFaultHook(std::function<bool()> hook)
    { faultHook = std::move(hook); }

    /** Checkpoint the lifetime migration counter. */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    /** One candidate window and its cost. */
    struct Window
    {
        Addr base = 0;
        Addr allocatedBytes = 0;
    };

    std::optional<Window> bestWindow(Addr bytes) const;

    GuestOs &os;
    RemapHook onRemap;
    std::function<bool()> faultHook;
    std::uint64_t migrated = 0;
};

} // namespace emv::os

