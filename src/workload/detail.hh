/**
 * @file
 * Shared plumbing for workload generators (region bookkeeping,
 * footprint scaling).  Internal to the workload library.
 */

#pragma once

#include "common/logging.hh"
#include "workload/workload.hh"

namespace emv::workload {

/** Base class handling region specs and binding. */
class BasicWorkload : public Workload
{
  public:
    explicit BasicWorkload(std::uint64_t seed) : Workload(seed) {}

    const WorkloadInfo &
    info() const override
    {
        return _info;
    }

    const std::vector<RegionSpec> &
    regions() const override
    {
        return specs;
    }

    void
    bindRegions(const std::vector<Addr> &b) override
    {
        emv_assert(b.size() == specs.size(),
                   "bindRegions: %zu bases for %zu regions", b.size(),
                   specs.size());
        bases = b;
    }

  protected:
    /** Base VA of region @p i (after binding). */
    Addr
    base(std::size_t i) const
    {
        emv_assert(i < bases.size(),
                   "region %zu accessed before binding", i);
        return bases[i];
    }

    Addr
    bytesOf(std::size_t i) const
    {
        return specs[i].bytes;
    }

    /** Scale a footprint, keeping 2M alignment and a sane floor. */
    static Addr
    scaleBytes(Addr bytes, double scale)
    {
        auto scaled = static_cast<Addr>(
            static_cast<double>(bytes) * scale);
        scaled = alignUp(std::max<Addr>(scaled, 4 * MiB), kPage2M);
        return scaled;
    }

    /** Uniform random 8-byte-aligned address within region @p i. */
    Addr
    randomIn(std::size_t i)
    {
        return base(i) + (rng.nextBelow(bytesOf(i) / 8) * 8);
    }

    /** Total footprint across regions (for info()). */
    Addr
    totalFootprint() const
    {
        Addr total = 0;
        for (const auto &spec : specs)
            total += spec.bytes;
        return total;
    }

    WorkloadInfo _info;
    std::vector<RegionSpec> specs;
    std::vector<Addr> bases;
};

} // namespace emv::workload

