#include "workload/workload.hh"

#include "common/ckpt.hh"
#include "common/logging.hh"
#include "workload/graph500.hh"
#include "workload/gups.hh"
#include "workload/memcached.hh"
#include "workload/npb_cg.hh"
#include "workload/parsec.hh"
#include "workload/spec.hh"

namespace emv::workload {

void
Workload::serialize(ckpt::Encoder &enc) const
{
    rng.serialize(enc);
}

bool
Workload::deserialize(ckpt::Decoder &dec)
{
    return rng.deserialize(dec);
}

const char *
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Gups: return "gups";
      case WorkloadKind::Graph500: return "graph500";
      case WorkloadKind::Memcached: return "memcached";
      case WorkloadKind::NpbCg: return "npb:cg";
      case WorkloadKind::CactusADM: return "cactusADM";
      case WorkloadKind::GemsFDTD: return "GemsFDTD";
      case WorkloadKind::Mcf: return "mcf";
      case WorkloadKind::Omnetpp: return "omnetpp";
      case WorkloadKind::Canneal: return "canneal";
      case WorkloadKind::Streamcluster: return "streamcluster";
    }
    return "?";
}

bool
isBigMemory(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Gups:
      case WorkloadKind::Graph500:
      case WorkloadKind::Memcached:
      case WorkloadKind::NpbCg:
        return true;
      default:
        return false;
    }
}

std::vector<WorkloadKind>
bigMemoryWorkloads()
{
    return {WorkloadKind::Graph500, WorkloadKind::Memcached,
            WorkloadKind::NpbCg, WorkloadKind::Gups};
}

std::vector<WorkloadKind>
computeWorkloads()
{
    return {WorkloadKind::CactusADM, WorkloadKind::GemsFDTD,
            WorkloadKind::Mcf, WorkloadKind::Omnetpp,
            WorkloadKind::Canneal, WorkloadKind::Streamcluster};
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, std::uint64_t seed, double scale)
{
    emv_assert(scale > 0.0, "workload scale must be positive");
    switch (kind) {
      case WorkloadKind::Gups:
        return makeGups(seed, scale);
      case WorkloadKind::Graph500:
        return makeGraph500(seed, scale);
      case WorkloadKind::Memcached:
        return makeMemcached(seed, scale);
      case WorkloadKind::NpbCg:
        return makeNpbCg(seed, scale);
      case WorkloadKind::CactusADM:
        return makeCactusAdm(seed, scale);
      case WorkloadKind::GemsFDTD:
        return makeGemsFdtd(seed, scale);
      case WorkloadKind::Mcf:
        return makeMcf(seed, scale);
      case WorkloadKind::Omnetpp:
        return makeOmnetpp(seed, scale);
      case WorkloadKind::Canneal:
        return makeCanneal(seed, scale);
      case WorkloadKind::Streamcluster:
        return makeStreamcluster(seed, scale);
    }
    emv_panic("unknown workload kind");
}

} // namespace emv::workload
