/** @file SPEC workload factories (internal; use makeWorkload()). */

#pragma once

#include <memory>

#include "workload/workload.hh"

namespace emv::workload {

std::unique_ptr<Workload> makeCactusAdm(std::uint64_t seed,
                                        double scale);
std::unique_ptr<Workload> makeGemsFdtd(std::uint64_t seed,
                                       double scale);
std::unique_ptr<Workload> makeMcf(std::uint64_t seed, double scale);
std::unique_ptr<Workload> makeOmnetpp(std::uint64_t seed, double scale,
                                      std::uint64_t churn_period =
                                          60000);

} // namespace emv::workload

