/** @file memcached workload factory (internal; use makeWorkload()). */

#pragma once

#include <memory>

#include "workload/workload.hh"

namespace emv::workload {

/**
 * @param churn_period Emit one 2M slab Remap every this many ops
 *        (0 disables churn).
 */
std::unique_ptr<Workload> makeMemcached(std::uint64_t seed,
                                        double scale,
                                        std::uint64_t churn_period =
                                            250000);

} // namespace emv::workload

