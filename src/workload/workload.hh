/**
 * @file
 * Workload trace generators (Table V).
 *
 * The paper drives its analysis with big-memory workloads
 * (graph500, memcached, NPB:CG), the GUPS micro-benchmark, and
 * compute workloads (SPEC 2006: cactusADM, GemsFDTD, mcf, omnetpp;
 * PARSEC: canneal, streamcluster).  We cannot ship those binaries
 * or their 60–75 GB datasets, so each workload is a deterministic
 * generator reproducing the *access-pattern class* that determines
 * TLB behaviour — footprint, locality mix, stride structure, and
 * allocation churn — over a scaled-down footprint (see DESIGN.md §2
 * for why this preserves the paper's comparisons).
 *
 * Every generator emits a stream of Ops: loads, stores, and Remap
 * events (allocation churn, the input that separates shadow paging
 * winners from losers in §IX.D).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::workload {

/** A virtual-memory region the workload wants mapped. */
struct RegionSpec
{
    std::string name;
    Addr bytes = 0;
    bool primary = false;  //!< The big-memory heap (segment-eligible).
};

/** One trace event. */
struct Op
{
    enum class Kind : std::uint8_t {
        Read,
        Write,
        Remap,  //!< Free + re-allocate [va, va+bytes) (churn).
    };

    Kind kind = Kind::Read;
    Addr va = 0;
    Addr bytes = 0;  //!< Remap length.
};

/** Static description used for sizing and reporting. */
struct WorkloadInfo
{
    std::string name;
    /** Cycles of non-translation work per memory access (models
     *  compute + data-cache stalls; calibrated per workload). */
    double baseCyclesPerAccess = 10.0;
    Addr footprintBytes = 0;
    bool bigMemory = false;
};

/** Trace-generator interface. */
class Workload
{
  public:
    explicit Workload(std::uint64_t seed) : rng(seed) {}
    virtual ~Workload() = default;

    virtual const WorkloadInfo &info() const = 0;

    /** Regions to map, in declaration order. */
    virtual const std::vector<RegionSpec> &regions() const = 0;

    /**
     * The machine places each region and reports the bases here
     * (parallel to regions()) before the first next() call.
     */
    virtual void bindRegions(const std::vector<Addr> &bases) = 0;

    /** Produce the next trace event. */
    virtual Op next() = 0;

    /**
     * Checkpoint the generator cursor state.  The base class covers
     * the RNG stream; generators with private cursors override and
     * call the base first.  Region specs, bases and info are
     * reconstructed from (kind, seed, scale) and are not stored.
     */
    virtual void serialize(ckpt::Encoder &enc) const;
    virtual bool deserialize(ckpt::Decoder &dec);

  protected:
    Rng rng;
};

/** The paper's workload suite. */
enum class WorkloadKind {
    Gups,
    Graph500,
    Memcached,
    NpbCg,
    CactusADM,
    GemsFDTD,
    Mcf,
    Omnetpp,
    Canneal,
    Streamcluster,
};

/** Printable name ("graph500", "mcf", ...). */
const char *workloadName(WorkloadKind kind);

/** True for the big-memory set (Fig. 11); false for Fig. 12. */
bool isBigMemory(WorkloadKind kind);

/** The Fig. 11 set. */
std::vector<WorkloadKind> bigMemoryWorkloads();

/** The Fig. 12 set. */
std::vector<WorkloadKind> computeWorkloads();

/**
 * Build a workload.
 *
 * @param kind  Which generator.
 * @param seed  Determinism seed.
 * @param scale Footprint multiplier (1.0 = default sizes; tests use
 *              much smaller values).
 */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind,
                                       std::uint64_t seed,
                                       double scale = 1.0);

} // namespace emv::workload

