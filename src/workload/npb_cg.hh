/** @file NPB:CG workload factory (internal; use makeWorkload()). */

#ifndef EMV_WORKLOAD_NPB_CG_HH
#define EMV_WORKLOAD_NPB_CG_HH

#include <memory>

#include "workload/workload.hh"

namespace emv::workload {

std::unique_ptr<Workload> makeNpbCg(std::uint64_t seed, double scale);

} // namespace emv::workload

#endif // EMV_WORKLOAD_NPB_CG_HH
