/** @file NPB:CG workload factory (internal; use makeWorkload()). */

#pragma once

#include <memory>

#include "workload/workload.hh"

namespace emv::workload {

std::unique_ptr<Workload> makeNpbCg(std::uint64_t seed, double scale);

} // namespace emv::workload

