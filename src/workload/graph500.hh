/** @file graph500 workload factory (internal; use makeWorkload()). */

#ifndef EMV_WORKLOAD_GRAPH500_HH
#define EMV_WORKLOAD_GRAPH500_HH

#include <memory>

#include "workload/workload.hh"

namespace emv::workload {

std::unique_ptr<Workload> makeGraph500(std::uint64_t seed,
                                       double scale);

} // namespace emv::workload

#endif // EMV_WORKLOAD_GRAPH500_HH
