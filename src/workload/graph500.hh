/** @file graph500 workload factory (internal; use makeWorkload()). */

#pragma once

#include <memory>

#include "workload/workload.hh"

namespace emv::workload {

std::unique_ptr<Workload> makeGraph500(std::uint64_t seed,
                                       double scale);

} // namespace emv::workload

