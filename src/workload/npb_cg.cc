/**
 * @file
 * NPB:CG — conjugate gradient over a sparse random matrix.
 *
 * The dominant kernel is sparse matrix-vector multiply: streaming
 * reads of the value/column arrays interleaved with gathers from
 * the dense vector at random column offsets.  The streaming half
 * has perfect spatial locality; the gather half behaves like a
 * random workload bounded by the vector size.
 */

#include "common/ckpt.hh"
#include "workload/detail.hh"
#include "workload/npb_cg.hh"

namespace emv::workload {

namespace {

class NpbCgWorkload : public BasicWorkload
{
  public:
    NpbCgWorkload(std::uint64_t seed, double scale)
        : BasicWorkload(seed)
    {
        // One heap, as CG allocates it: sparse matrix (values +
        // colidx) in the front 7/8, dense vectors in the tail —
        // all inside the primary region, like Basu et al.'s
        // primary-region abstraction covers the whole data heap.
        specs.push_back({"heap", scaleBytes(4096 * MiB, scale),
                         true});
        _info.name = "npb:cg";
        _info.baseCyclesPerAccess = 60.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = true;
    }

    Op
    next() override
    {
        const Addr matrix_bytes = bytesOf(0) / 8 * 7;
        const Addr vec_base = base(0) + matrix_bytes;
        const Addr vec_bytes = bytesOf(0) - matrix_bytes;
        if (phase++ % 2 == 0) {
            // Stream values + colidx (64B effective stride).
            sweepPos = (sweepPos + 64) % matrix_bytes;
            return Op{Op::Kind::Read, base(0) + sweepPos, 0};
        }
        // Gather x[col[i]]: random within the vectors; the result
        // vector write happens once per row (~1/16 of ops).
        const Addr va = vec_base + rng.nextBelow(vec_bytes / 8) * 8;
        if (phase % 32 == 1)
            return Op{Op::Kind::Write, va, 0};
        return Op{Op::Kind::Read, va, 0};
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u64(sweepPos);
        enc.u64(phase);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        sweepPos = dec.u64();
        phase = dec.u64();
        return dec.ok();
    }

  private:
    Addr sweepPos = 0;
    std::uint64_t phase = 0;
};

} // namespace

std::unique_ptr<Workload>
makeNpbCg(std::uint64_t seed, double scale)
{
    return std::make_unique<NpbCgWorkload>(seed, scale);
}

} // namespace emv::workload
