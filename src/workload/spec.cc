/**
 * @file
 * SPEC CPU2006 compute-workload models (Fig. 12 set): cactusADM,
 * GemsFDTD, mcf, omnetpp.  Each reproduces the pattern class that
 * drives its TLB behaviour in the literature:
 *
 *  - cactusADM: 3D stencil sweeps whose plane/row strides touch a
 *    new 4K page on almost every neighbour access (the classic
 *    "high overhead even with THP" case).
 *  - GemsFDTD: several field arrays swept in lockstep (multiple
 *    concurrent streams) with far strided accesses.
 *  - mcf: pointer chasing over the arc array — windowed locality
 *    plus a uniform tail.
 *  - omnetpp: a heap of small event objects, Zipf-hot, with heavy
 *    allocation churn (the other shadow-paging loser in §IX.D).
 */

#include "common/ckpt.hh"
#include "workload/detail.hh"
#include "workload/spec.hh"

namespace emv::workload {

namespace {

class CactusWorkload : public BasicWorkload
{
  public:
    CactusWorkload(std::uint64_t seed, double scale)
        : BasicWorkload(seed)
    {
        specs.push_back({"grid", scaleBytes(1408 * MiB, scale),
                         true});
        _info.name = "cactusADM";
        _info.baseCyclesPerAccess = 22.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = false;
    }

    Op
    next() override
    {
        // The grid is swept in pencil order: consecutive accesses
        // stride by a whole plane (z-major inner loop), touching a
        // fresh page almost every access — the access pattern that
        // makes cactusADM a TLB benchmark even under THP.
        const Addr bytes = bytesOf(0);
        const Addr plane = 8 * MiB;
        const Addr planes = bytes / plane;
        const Addr va = base(0) + z * plane + pencil;
        const bool write = (z % 4) == 0;
        if (++z >= planes) {
            z = 0;
            pencil = (pencil + 8) % plane;
        }
        return Op{write ? Op::Kind::Write : Op::Kind::Read, va, 0};
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u64(z);
        enc.u64(pencil);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        z = dec.u64();
        pencil = dec.u64();
        return dec.ok();
    }

  private:
    Addr z = 0;
    Addr pencil = 0;
};

class GemsWorkload : public BasicWorkload
{
  public:
    GemsWorkload(std::uint64_t seed, double scale)
        : BasicWorkload(seed)
    {
        specs.push_back({"fields", scaleBytes(1200 * MiB, scale),
                         true});
        _info.name = "GemsFDTD";
        _info.baseCyclesPerAccess = 26.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = false;
    }

    Op
    next() override
    {
        const Addr field_bytes = bytesOf(0) / kStreams;
        const unsigned s = stream;
        stream = (stream + 1) % kStreams;
        if (s == 0)
            pos = (pos + 64) % field_bytes;
        if (s == kStreams - 1) {
            // One field is traversed in the slow (strided) axis:
            // 1 MB jumps between consecutive touches.
            zpos = (zpos + 1 * MiB + 64) % field_bytes;
            return Op{Op::Kind::Read,
                      base(0) + s * field_bytes + zpos, 0};
        }
        const Addr va = base(0) + s * field_bytes + pos;
        // Field updates write one stream, read the others.
        return Op{s == 0 ? Op::Kind::Write : Op::Kind::Read, va, 0};
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u32(stream);
        enc.u64(pos);
        enc.u64(zpos);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        stream = dec.u32();
        pos = dec.u64();
        zpos = dec.u64();
        return dec.ok();
    }

  private:
    static constexpr unsigned kStreams = 6;
    unsigned stream = 0;
    Addr pos = 0;
    Addr zpos = 0;
};

class McfWorkload : public BasicWorkload
{
  public:
    McfWorkload(std::uint64_t seed, double scale)
        : BasicWorkload(seed)
    {
        specs.push_back({"arcs", scaleBytes(1700 * MiB, scale),
                         true});
        _info.name = "mcf";
        _info.baseCyclesPerAccess = 140.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = false;
        cursor = 0;
    }

    Op
    next() override
    {
        const Addr bytes = bytesOf(0);
        if (rng.nextBool(0.6)) {
            // Chase within a 32K window of the cursor.
            const Addr window = 32 * KiB;
            cursor = (cursor + rng.nextBelow(window / 8) * 8) % bytes;
        } else {
            cursor = rng.nextBelow(bytes / 8) * 8;
        }
        const bool write = rng.nextBool(0.25);
        return Op{write ? Op::Kind::Write : Op::Kind::Read,
                  base(0) + cursor, 0};
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u64(cursor);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        cursor = dec.u64();
        return dec.ok();
    }

  private:
    Addr cursor = 0;
};

class OmnetppWorkload : public BasicWorkload
{
  public:
    OmnetppWorkload(std::uint64_t seed, double scale,
                    std::uint64_t churn_period)
        : BasicWorkload(seed), churnPeriod(churn_period)
    {
        specs.push_back({"heap", scaleBytes(400 * MiB, scale),
                         true});
        _info.name = "omnetpp";
        _info.baseCyclesPerAccess = 34.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = false;
    }

    Op
    next() override
    {
        ++tick;
        if (churnPeriod && tick % churnPeriod == 0) {
            // Event-object pool recycling.
            const Addr chunk = 256 * KiB;
            const Addr chunks = bytesOf(0) / chunk;
            return Op{Op::Kind::Remap,
                      base(0) + rng.nextBelow(chunks) * chunk, chunk};
        }
        const Addr objects = bytesOf(0) / 256;
        const Addr va =
            base(0) + rng.nextZipf(objects, 1.05) * 256;
        return Op{rng.nextBool(0.3) ? Op::Kind::Write
                                    : Op::Kind::Read,
                  va, 0};
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u64(tick);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        tick = dec.u64();
        return dec.ok();
    }

  private:
    std::uint64_t churnPeriod;
    std::uint64_t tick = 0;
};

} // namespace

std::unique_ptr<Workload>
makeCactusAdm(std::uint64_t seed, double scale)
{
    return std::make_unique<CactusWorkload>(seed, scale);
}

std::unique_ptr<Workload>
makeGemsFdtd(std::uint64_t seed, double scale)
{
    return std::make_unique<GemsWorkload>(seed, scale);
}

std::unique_ptr<Workload>
makeMcf(std::uint64_t seed, double scale)
{
    return std::make_unique<McfWorkload>(seed, scale);
}

std::unique_ptr<Workload>
makeOmnetpp(std::uint64_t seed, double scale,
            std::uint64_t churn_period)
{
    return std::make_unique<OmnetppWorkload>(seed, scale,
                                             churn_period);
}

} // namespace emv::workload
