/**
 * @file
 * PARSEC compute-workload models (Fig. 12 set): canneal and
 * streamcluster.
 *
 *  - canneal: simulated annealing over a large netlist — dominated
 *    by uniform random element swaps with a small local component.
 *  - streamcluster: online clustering — long streaming passes over
 *    the point set punctuated by random accesses to the current
 *    medoid working set.
 */

#include "common/ckpt.hh"
#include "workload/detail.hh"
#include "workload/parsec.hh"

namespace emv::workload {

namespace {

class CannealWorkload : public BasicWorkload
{
  public:
    CannealWorkload(std::uint64_t seed, double scale)
        : BasicWorkload(seed)
    {
        specs.push_back({"netlist", scaleBytes(1024 * MiB, scale),
                         true});
        _info.name = "canneal";
        _info.baseCyclesPerAccess = 110.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = false;
    }

    Op
    next() override
    {
        if (localLeft > 0) {
            // Walk the element's neighbour list.
            --localLeft;
            localPos += 64;
            return Op{Op::Kind::Read,
                      base(0) + localPos % bytesOf(0), 0};
        }
        // Pick two random elements to consider swapping.
        localPos = randomIn(0) - base(0);
        localLeft = 4;
        return Op{rng.nextBool(0.15) ? Op::Kind::Write
                                     : Op::Kind::Read,
                  randomIn(0), 0};
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u64(localPos);
        enc.u64(localLeft);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        localPos = dec.u64();
        localLeft = dec.u64();
        return dec.ok();
    }

  private:
    Addr localPos = 0;
    std::uint64_t localLeft = 0;
};

class StreamclusterWorkload : public BasicWorkload
{
  public:
    StreamclusterWorkload(std::uint64_t seed, double scale)
        : BasicWorkload(seed)
    {
        specs.push_back({"points", scaleBytes(512 * MiB, scale),
                         true});
        specs.push_back({"medoids", scaleBytes(8 * MiB, scale),
                         false});
        _info.name = "streamcluster";
        _info.baseCyclesPerAccess = 14.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = false;
    }

    Op
    next() override
    {
        if (++tick % 8 == 0) {
            // Distance computation against a current medoid.
            return Op{Op::Kind::Read, randomIn(1), 0};
        }
        pos = (pos + 64) % bytesOf(0);
        return Op{Op::Kind::Read, base(0) + pos, 0};
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u64(pos);
        enc.u64(tick);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        pos = dec.u64();
        tick = dec.u64();
        return dec.ok();
    }

  private:
    Addr pos = 0;
    std::uint64_t tick = 0;
};

} // namespace

std::unique_ptr<Workload>
makeCanneal(std::uint64_t seed, double scale)
{
    return std::make_unique<CannealWorkload>(seed, scale);
}

std::unique_ptr<Workload>
makeStreamcluster(std::uint64_t seed, double scale)
{
    return std::make_unique<StreamclusterWorkload>(seed, scale);
}

} // namespace emv::workload
