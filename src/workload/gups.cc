/**
 * @file
 * GUPS (Giga-Updates Per Second), the HPC Challenge random-access
 * micro-benchmark: read-modify-write of random 8-byte words in one
 * huge table.  The worst case for any TLB — essentially every
 * access misses — which is why the paper plots it on its own axis.
 */

#include "common/ckpt.hh"
#include "workload/detail.hh"
#include "workload/gups.hh"

namespace emv::workload {

namespace {

class GupsWorkload : public BasicWorkload
{
  public:
    GupsWorkload(std::uint64_t seed, double scale)
        : BasicWorkload(seed)
    {
        // 10 GB default: even at half scale the table exceeds the
        // 4-entry 1G L1 TLB reach, exposing the paper's "limited
        // 1GB TLB entries" effect.
        specs.push_back(
            {"table", scaleBytes(10 * GiB, scale), true});
        specs.push_back({"stream", scaleBytes(16 * MiB, scale),
                         false});
        _info.name = "gups";
        _info.baseCyclesPerAccess = 210.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = true;
    }

    Op
    next() override
    {
        // Finish the write half of a pending update first.
        if (pendingWrite) {
            pendingWrite = false;
            return Op{Op::Kind::Write, pendingVa, 0};
        }
        ++tick;
        if (tick % 9 == 0) {
            // Sequential pass over the random-number stream.
            streamPos = (streamPos + 64) % bytesOf(1);
            return Op{Op::Kind::Read, base(1) + streamPos, 0};
        }
        pendingVa = randomIn(0);
        pendingWrite = true;
        return Op{Op::Kind::Read, pendingVa, 0};
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u64(pendingVa);
        enc.u8(pendingWrite ? 1 : 0);
        enc.u64(streamPos);
        enc.u64(tick);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        pendingVa = dec.u64();
        pendingWrite = dec.u8() != 0;
        streamPos = dec.u64();
        tick = dec.u64();
        return dec.ok();
    }

  private:
    Addr pendingVa = 0;
    bool pendingWrite = false;
    Addr streamPos = 0;
    std::uint64_t tick = 0;
};

} // namespace

std::unique_ptr<Workload>
makeGups(std::uint64_t seed, double scale)
{
    return std::make_unique<GupsWorkload>(seed, scale);
}

} // namespace emv::workload
