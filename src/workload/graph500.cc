/**
 * @file
 * Graph500-style breadth-first search over a power-law graph.
 *
 * BFS alternates two phases with very different memory behaviour:
 * frontier scans stream through the vertex arrays with good
 * spatial locality, while neighbour expansion gathers edge lists
 * (short sequential bursts at random offsets in the huge CSR edge
 * array) and scatters parent/visited updates across the vertex
 * array.  Degrees follow a power law, so a few vertices produce
 * long bursts and most produce short ones.
 */

#include "common/ckpt.hh"
#include "workload/detail.hh"
#include "workload/graph500.hh"

namespace emv::workload {

namespace {

class Graph500Workload : public BasicWorkload
{
  public:
    Graph500Workload(std::uint64_t seed, double scale)
        : BasicWorkload(seed)
    {
        // One primary heap: vertex arrays in the front quarter,
        // CSR edges in the rest (as a real CSR allocation would be).
        specs.push_back({"heap", scaleBytes(6 * GiB, scale), true});
        _info.name = "graph500";
        _info.baseCyclesPerAccess = 150.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = true;
    }

    Op
    next() override
    {
        const Addr heap = base(0);
        const Addr vtx_bytes = bytesOf(0) / 4;
        const Addr edge_base = heap + vtx_bytes;
        const Addr edge_bytes = bytesOf(0) - vtx_bytes;

        if (scanLeft > 0) {
            // Frontier scan: sequential over the vertex array.
            --scanLeft;
            scanPos = (scanPos + 64) % vtx_bytes;
            return Op{Op::Kind::Read, heap + scanPos, 0};
        }
        if (burstLeft > 0) {
            --burstLeft;
            if (burstLeft % 2 == 0) {
                // Edge read: sequential within this vertex's list.
                burstPos += 8;
                return Op{Op::Kind::Read, edge_base + burstPos %
                                              edge_bytes, 0};
            }
            // Parent/visited update: scatter into vertices.
            return Op{Op::Kind::Write,
                      heap + (rng.nextBelow(vtx_bytes / 8) * 8), 0};
        }

        // Pick the next activity.
        if (rng.nextBool(0.15)) {
            scanLeft = 192;  // ~3 pages of sequential vertex reads.
            return next();
        }
        // Expand a vertex: power-law out-degree, 2 accesses/edge.
        const std::uint64_t degree = 1 + rng.nextZipf(64, 0.8);
        burstLeft = 2 * degree;
        burstPos = rng.nextBelow(edge_bytes / 8) * 8;
        return next();
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u64(scanPos);
        enc.u64(scanLeft);
        enc.u64(burstLeft);
        enc.u64(burstPos);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        scanPos = dec.u64();
        scanLeft = dec.u64();
        burstLeft = dec.u64();
        burstPos = dec.u64();
        return dec.ok();
    }

  private:
    Addr scanPos = 0;
    std::uint64_t scanLeft = 0;
    std::uint64_t burstLeft = 0;
    Addr burstPos = 0;
};

} // namespace

std::unique_ptr<Workload>
makeGraph500(std::uint64_t seed, double scale)
{
    return std::make_unique<Graph500Workload>(seed, scale);
}

} // namespace emv::workload
