/** @file PARSEC workload factories (internal; use makeWorkload()). */

#pragma once

#include <memory>

#include "workload/workload.hh"

namespace emv::workload {

std::unique_ptr<Workload> makeCanneal(std::uint64_t seed,
                                      double scale);
std::unique_ptr<Workload> makeStreamcluster(std::uint64_t seed,
                                            double scale);

} // namespace emv::workload

