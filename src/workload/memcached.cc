/**
 * @file
 * Memcached-style in-memory key-value cache.
 *
 * Each GET hashes a key (random probe into the hash-bucket index at
 * the front of the heap), then touches the item: header plus a
 * couple of adjacent cache lines in the slab area.  Keys are
 * Zipf-distributed — web caches are famously skewed — but the slab
 * area is so large that even the hot set defeats TLB reach.
 * A SET fraction writes items, and the slab allocator periodically
 * recycles a slab (a Remap event): exactly the "frequent memory
 * allocations and deallocations" that make shadow paging slow for
 * memcached in §IX.D.
 */

#include "common/ckpt.hh"
#include "workload/detail.hh"
#include "workload/memcached.hh"

namespace emv::workload {

namespace {

class MemcachedWorkload : public BasicWorkload
{
  public:
    MemcachedWorkload(std::uint64_t seed, double scale,
                      std::uint64_t churn_period)
        : BasicWorkload(seed), churnPeriod(churn_period)
    {
        specs.push_back({"heap", scaleBytes(8 * GiB, scale), true});
        _info.name = "memcached";
        _info.baseCyclesPerAccess = 130.0;
        _info.footprintBytes = totalFootprint();
        _info.bigMemory = true;
        itemCount = bytesOf0() / kItemBytes;
    }

    Op
    next() override
    {
        const Addr heap = base(0);
        const Addr index_bytes = bytesOf(0) / 16;
        const Addr slab_base = heap + index_bytes;
        const Addr slab_bytes = bytesOf(0) - index_bytes;

        ++tick;
        // Slab recycling: free + reallocate one 2M slab.
        if (churnPeriod && tick % churnPeriod == 0) {
            const Addr slabs = slab_bytes / kPage2M;
            const Addr victim =
                slab_base + rng.nextBelow(slabs) * kPage2M;
            return Op{Op::Kind::Remap, victim, kPage2M};
        }

        switch (phase++) {
          case 0:
            // Hash-bucket probe: uniform over the index.
            return Op{Op::Kind::Read,
                      heap + rng.nextBelow(index_bytes / 8) * 8, 0};
          case 1: {
            // Item header: Zipf-popular item.
            const std::uint64_t items = slab_bytes / kItemBytes;
            currentItem =
                slab_base + rng.nextZipf(items, 0.99) * kItemBytes;
            return Op{Op::Kind::Read, currentItem, 0};
          }
          default:
            phase = 0;
            // Payload line; ~10% of ops are SETs.
            if (rng.nextBool(0.1))
                return Op{Op::Kind::Write, currentItem + 64, 0};
            return Op{Op::Kind::Read, currentItem + 64, 0};
        }
    }

    void
    serialize(ckpt::Encoder &enc) const override
    {
        Workload::serialize(enc);
        enc.u64(tick);
        enc.u32(phase);
        enc.u64(currentItem);
    }

    bool
    deserialize(ckpt::Decoder &dec) override
    {
        if (!Workload::deserialize(dec))
            return false;
        tick = dec.u64();
        phase = dec.u32();
        currentItem = dec.u64();
        return dec.ok();
    }

  private:
    static constexpr Addr kItemBytes = 1024;

    Addr
    bytesOf0() const
    {
        return specs[0].bytes;
    }

    std::uint64_t churnPeriod;
    std::uint64_t itemCount = 0;
    std::uint64_t tick = 0;
    unsigned phase = 0;
    Addr currentItem = 0;
};

} // namespace

std::unique_ptr<Workload>
makeMemcached(std::uint64_t seed, double scale,
              std::uint64_t churn_period)
{
    return std::make_unique<MemcachedWorkload>(seed, scale,
                                               churn_period);
}

} // namespace emv::workload
