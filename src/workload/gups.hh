/** @file GUPS workload factory (internal; use makeWorkload()). */

#ifndef EMV_WORKLOAD_GUPS_HH
#define EMV_WORKLOAD_GUPS_HH

#include <memory>

#include "workload/workload.hh"

namespace emv::workload {

std::unique_ptr<Workload> makeGups(std::uint64_t seed, double scale);

} // namespace emv::workload

#endif // EMV_WORKLOAD_GUPS_HH
