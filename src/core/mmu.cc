#include "core/mmu.hh"

#include <algorithm>

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "core/differential_auditor.hh"
#include "mem/phys_memory.hh"

namespace emv::core {

using paging::RefStage;
using paging::WalkOutcome;
using paging::WalkTrace;

const char *
toString(FaultSpace space)
{
    switch (space) {
      case FaultSpace::None: return "None";
      case FaultSpace::Guest: return "Guest";
      case FaultSpace::Nested: return "Nested";
    }
    return "?";
}

const char *
toString(TranslatePath path)
{
    switch (path) {
      case TranslatePath::L1Hit: return "L1Hit";
      case TranslatePath::DualSegment: return "DualSegment";
      case TranslatePath::NativeSegment: return "NativeSegment";
      case TranslatePath::L2Hit: return "L2Hit";
      case TranslatePath::Walk: return "Walk";
      case TranslatePath::Fault: return "Fault";
    }
    return "?";
}

std::ostream &
operator<<(std::ostream &os, FaultSpace space)
{
    return os << toString(space);
}

std::ostream &
operator<<(std::ostream &os, TranslatePath path)
{
    return os << toString(path);
}

Mmu::Mmu(mem::PhysMemory &host_mem, const MmuConfig &config)
    : hostMem(host_mem), config(config),
      walker(host_mem), nestedWalker(host_mem),
      tlbHier(config.tlbGeometry),
      guestPsc(config.pscSets, config.pscWays, "guest_psc"),
      nestedPsc(config.pscSets, config.pscWays, "nested_psc"),
      pteLines(config.pteLineSets, config.pteLineWays),
      _vmmFilter(std::make_unique<segment::EscapeFilter>(
          config.filterBits, config.filterHashes, config.filterSeed)),
      _guestFilter(std::make_unique<segment::EscapeFilter>(
          config.filterBits, config.filterHashes,
          config.filterSeed ^ 0x9e3779b9ull)),
      accessesCtr(&_stats.counter("accesses")),
      l1HitsCtr(&_stats.counter("l1_hits")),
      l1MissesCtr(&_stats.counter("l1_misses")),
      l2HitsCtr(&_stats.counter("l2_hits")),
      l2MissesCtr(&_stats.counter("l2_misses")),
      walksCtr(&_stats.counter("walks")),
      ddFastHitsCtr(&_stats.counter("dd_fast_hits")),
      dsFastHitsCtr(&_stats.counter("ds_fast_hits")),
      catBothCtr(&_stats.counter("cat_both")),
      catVmmOnlyCtr(&_stats.counter("cat_vmm_only")),
      catGuestOnlyCtr(&_stats.counter("cat_guest_only")),
      catNeitherCtr(&_stats.counter("cat_neither")),
      guestRefsCtr(&_stats.counter("guest_refs")),
      nestedRefsCtr(&_stats.counter("nested_refs")),
      nativeRefsCtr(&_stats.counter("native_refs")),
      calcsCtr(&_stats.counter("calculations")),
      nestedTlbHitsCtr(&_stats.counter("nested_tlb_hits")),
      nestedTlbMissesCtr(&_stats.counter("nested_tlb_misses")),
      escapeSlowCtr(&_stats.counter("escape_slow_paths")),
      faultsCtr(&_stats.counter("faults")),
      walkCyclesScl(&_stats.scalar("walk_cycles")),
      translationCyclesScl(&_stats.scalar("translation_cycles")),
      perWalkCyclesDist(&_stats.distribution("cycles_per_walk"))
{
    // Child structures export under the MMU's name, so a registry
    // dump reads "mmu.l1tlb4k.misses", "mmu.guest_psc.hits", ...
    tlbHier.setStatsParent(&_stats);
    guestPsc.stats().setParent(&_stats);
    nestedPsc.stats().setParent(&_stats);
    pteLines.stats().setParent(&_stats);
    _vmmFilter->stats().setParent(&_stats);
    _guestFilter->stats().setParent(&_stats);
}

Mmu::~Mmu() = default;

void
Mmu::setMode(Mode mode)
{
    if (mode == _mode)
        return;
    _mode = mode;
    // Mode changes re-interpret TLB content conservatively.
    flushAll();
}

void
Mmu::setNativeRoot(Addr root_pa)
{
    nativeRoot = root_pa;
    nativeRootValid = true;
}

void
Mmu::setGuestRoot(Addr root_gpa)
{
    guestRoot = root_gpa;
    guestRootValid = true;
}

void
Mmu::setNestedRoot(Addr root_hpa)
{
    nestedRoot = root_hpa;
    nestedRootValid = true;
}

void
Mmu::setGuestSegment(const segment::SegmentRegs &regs)
{
    emv_assert(isAligned(regs.base(), kPage4K) &&
               isAligned(regs.limit(), kPage4K) &&
               isAligned(regs.offset(), kPage4K),
               "guest segment registers must be page aligned");
    guestSeg = regs;
    EMV_TRACE(Segment, "guest segment set: %s",
              regs.toString().c_str());
}

void
Mmu::setVmmSegment(const segment::SegmentRegs &regs)
{
    emv_assert(isAligned(regs.base(), kPage4K) &&
               isAligned(regs.limit(), kPage4K) &&
               isAligned(regs.offset(), kPage4K),
               "VMM segment registers must be page aligned");
    vmmSeg = regs;
    EMV_TRACE(Segment, "VMM segment set: %s",
              regs.toString().c_str());
}

void
Mmu::retireGuestSegment()
{
    EMV_TRACE(Segment, "guest segment retired: %s",
              guestSeg.toString().c_str());
    guestSeg.clear();
    _guestFilter->clear();
    ++_stats.counter("segment_retirements");
    flushAll();
}

void
Mmu::retireVmmSegment()
{
    EMV_TRACE(Segment, "VMM segment retired: %s",
              vmmSeg.toString().c_str());
    vmmSeg.clear();
    _vmmFilter->clear();
    ++_stats.counter("segment_retirements");
    flushAll();
}

void
Mmu::flushGuestContext()
{
    tlbHier.flushGuest();
    guestPsc.flush();
}

void
Mmu::flushAll()
{
    tlbHier.flushAll();
    guestPsc.flush();
    nestedPsc.flush();
    pteLines.flush();
}

void
Mmu::invalidateGuestPage(Addr gva, PageSize size)
{
    tlbHier.flushGuestPage(gva, size);
    // A conservative hardware would also drop PSC entries along the
    // path; flushing the guest PSC entirely models an INVLPG's
    // effect on paging-structure caches.
    guestPsc.flush();
}

void
Mmu::invalidateNestedPage(Addr gpa, PageSize size)
{
    tlbHier.flushNestedPage(gpa, size);
    nestedPsc.flush();
    // Guest entries whose translations flow through this nested page
    // are stale; without reverse maps, hardware flushes them all.
    tlbHier.flushGuest();
}

PageSize
Mmu::segmentGranule(std::uint64_t offset)
{
    if (isAligned(offset, kPage1G))
        return PageSize::Size1G;
    if (isAligned(offset, kPage2M))
        return PageSize::Size2M;
    return PageSize::Size4K;
}

Cycles
Mmu::priceTrace(const WalkTrace &trace, unsigned &line_hits)
{
    const CostModel &costs = config.costs;
    Cycles cycles =
        trace.calculations * costs.segmentCheckCycles;
    for (const auto &ref : trace.refs) {
        if (pteLines.access(ref.hpa)) {
            cycles += costs.pteCacheHitCycles;
            ++line_hits;
        } else {
            cycles += costs.pteMemCycles;
        }
    }
    return cycles;
}

WalkOutcome
Mmu::nestedToHost(Addr gpa, WalkTrace &trace)
{
    emv_assert(nestedRootValid, "nested walk without a nested root");
    if (config.nestedTlbShared) {
        if (auto hit = tlbHier.lookupNested(gpa)) {
            ++*nestedTlbHitsCtr;
            walkSideCycles += config.costs.nestedTlbHitCycles;
            WalkOutcome out;
            out.pa = hit->frame + (gpa & (pageBytes(hit->size) - 1));
            out.size = hit->size;
            out.ok = true;
            return out;
        }
        ++*nestedTlbMissesCtr;
    }
    WalkOutcome out =
        walker.walk(nestedRoot, gpa, RefStage::NestedTable, trace,
                    config.walkCachesEnabled ? &nestedPsc : nullptr);
    if (!out.ok) {
        pendingFaultSpace = FaultSpace::Nested;
        pendingFaultAddr = gpa;
        return out;
    }
    if (config.nestedTlbShared) {
        tlbHier.insertNested(alignDown(gpa, pageBytes(out.size)),
                             alignDown(out.pa, pageBytes(out.size)),
                             out.size);
    }
    return out;
}

WalkOutcome
Mmu::segmentToHost(Addr gpa, WalkTrace &trace, bool &used_paging)
{
    if (vmmSeg.enabled()) {
        ++trace.calculations;  // The base-bound check always runs.
        if (vmmSeg.contains(gpa)) {
            if (!_vmmFilter->mayContain(gpa)) {
                WalkOutcome out;
                out.pa = vmmSeg.translate(gpa);
                // Granule limited by offset alignment and by the
                // page staying inside the segment.
                PageSize granule = segmentGranule(vmmSeg.offset());
                while (granule != PageSize::Size4K) {
                    const Addr page = alignDown(gpa, pageBytes(granule));
                    if (page >= vmmSeg.base() &&
                        page + pageBytes(granule) <= vmmSeg.limit()) {
                        break;
                    }
                    granule = granule == PageSize::Size1G
                                  ? PageSize::Size2M
                                  : PageSize::Size4K;
                }
                out.size = granule;
                out.ok = true;
                return out;
            }
            ++*escapeSlowCtr;
        }
    }
    used_paging = true;
    return nestedToHost(gpa, trace);
}

/** Adapter: nested paging only (base virtualized, guest direct). */
class NestedPagingTranslator : public paging::GpaTranslator
{
  public:
    explicit NestedPagingTranslator(Mmu &mmu) : mmu(mmu) {}

    WalkOutcome
    toHost(Addr gpa, WalkTrace &trace) override
    {
        return mmu.nestedToHost(gpa, trace);
    }

  private:
    Mmu &mmu;
};

/** Adapter: VMM segment first, nested paging fallback. */
class SegmentFirstTranslator : public paging::GpaTranslator
{
  public:
    explicit SegmentFirstTranslator(Mmu &mmu) : mmu(mmu) {}

    WalkOutcome
    toHost(Addr gpa, WalkTrace &trace) override
    {
        return mmu.segmentToHost(gpa, trace, usedPaging);
    }

    bool usedPaging = false;

  private:
    Mmu &mmu;
};

WalkOutcome
Mmu::doWalk(Addr gva, WalkTrace &trace, TranslationResult &result)
{
    (void)result;
    switch (_mode) {
      case Mode::Native:
      case Mode::NativeDirect: {
        emv_assert(nativeRootValid, "native walk without a root");
        return walker.walk(
            nativeRoot, gva, RefStage::NativeTable, trace,
            config.walkCachesEnabled ? &guestPsc : nullptr);
      }

      case Mode::BaseVirtualized: {
        emv_assert(guestRootValid, "2D walk without a guest root");
        NestedPagingTranslator tx(*this);
        return nestedWalker.walk(
            guestRoot, gva, tx, trace,
            config.walkCachesEnabled ? &guestPsc : nullptr);
      }

      case Mode::VmmDirect: {
        emv_assert(guestRootValid, "2D walk without a guest root");
        SegmentFirstTranslator tx(*this);
        WalkOutcome out = nestedWalker.walk(
            guestRoot, gva, tx, trace,
            config.walkCachesEnabled ? &guestPsc : nullptr);
        if (out.ok) {
            if (vmmSeg.enabled() && !tx.usedPaging)
                ++*catVmmOnlyCtr;
            else
                ++*catNeitherCtr;
        }
        return out;
      }

      case Mode::GuestDirect: {
        if (guestSeg.contains(gva) &&
            !_guestFilter->mayContain(gva)) {
            ++trace.calculations;
            const Addr gpa = guestSeg.translate(gva);
            WalkOutcome out = nestedToHost(gpa, trace);
            if (out.ok) {
                ++*catGuestOnlyCtr;
                // The linear gVA→gPA map adds no granule limit
                // beyond the guest-segment offset alignment.
                out.size = std::min(out.size,
                                    segmentGranule(guestSeg.offset()));
            }
            return out;
        }
        if (guestSeg.enabled())
            ++trace.calculations;  // Failed base-bound check.
        emv_assert(guestRootValid, "2D walk without a guest root");
        NestedPagingTranslator tx(*this);
        WalkOutcome out = nestedWalker.walk(
            guestRoot, gva, tx, trace,
            config.walkCachesEnabled ? &guestPsc : nullptr);
        if (out.ok)
            ++*catNeitherCtr;
        return out;
      }

      case Mode::DualDirect: {
        if (guestSeg.contains(gva) &&
            !_guestFilter->mayContain(gva)) {
            // "Guest segment only" (Table I): the both-segments case
            // was already handled before the L2 lookup.
            ++trace.calculations;
            const Addr gpa = guestSeg.translate(gva);
            bool used_paging = false;
            WalkOutcome out = segmentToHost(gpa, trace, used_paging);
            if (out.ok) {
                if (used_paging)
                    ++*catGuestOnlyCtr;
                else
                    ++*catBothCtr;  // Escape-filter re-check passed.
                out.size = std::min(out.size,
                                    segmentGranule(guestSeg.offset()));
            }
            return out;
        }
        if (guestSeg.enabled())
            ++trace.calculations;
        emv_assert(guestRootValid, "2D walk without a guest root");
        SegmentFirstTranslator tx(*this);
        WalkOutcome out = nestedWalker.walk(
            guestRoot, gva, tx, trace,
            config.walkCachesEnabled ? &guestPsc : nullptr);
        if (out.ok) {
            if (vmmSeg.enabled() && !tx.usedPaging)
                ++*catVmmOnlyCtr;
            else
                ++*catNeitherCtr;
        }
        return out;
      }
    }
    emv_panic("unhandled mode in doWalk");
}

TranslationResult
Mmu::translate(Addr gva)
{
    TranslationResult result = translateImpl(gva);
    if (result.ok)
        translationLatencyHist.record(result.cycles);
    if (audit::enabled()) {
        if (!auditor)
            auditor = std::make_unique<DifferentialAuditor>(*this);
        auditor->auditTranslation(gva, result);
        EMV_CHECK(!result.ok || result.hpa < hostMem.size(),
                  "translated hPA %s beyond physical memory (%s)",
                  hexAddr(result.hpa).c_str(),
                  hexAddr(hostMem.size()).c_str());
    }
    return result;
}

TranslationResult
Mmu::translateImpl(Addr gva)
{
    ++*accessesCtr;
    TranslationResult result;
    const CostModel &costs = config.costs;

    // 1. L1 TLB.
    if (auto hit = tlbHier.lookupL1(gva)) {
        ++*l1HitsCtr;
        result.hpa = hit->frame + (gva & (pageBytes(hit->size) - 1));
        result.ok = true;
        result.cycles = costs.l1HitCycles;
        result.path = TranslatePath::L1Hit;
        EMV_TRACE(Tlb, "L1 hit gva=%s frame=%s size=%s",
                  hexAddr(gva).c_str(), hexAddr(hit->frame).c_str(),
                  pageSizeName(hit->size));
        *translationCyclesScl += static_cast<double>(result.cycles);
        return result;
    }
    ++*l1MissesCtr;
    EMV_TRACE(Tlb, "L1 miss gva=%s", hexAddr(gva).c_str());

    // 2. Dual Direct fast path: both segments hit => 0D walk.  The
    //    guest-level escape filter (the §V "both levels" extension,
    //    e.g. guard pages) is checked in parallel with the guest
    //    segment registers.
    if (_mode == Mode::DualDirect && guestSeg.contains(gva) &&
        !_guestFilter->mayContain(gva)) {
        const Addr gpa = guestSeg.translate(gva);
        if (vmmSeg.contains(gpa) && !_vmmFilter->mayContain(gpa)) {
            ++*ddFastHitsCtr;
            ++*catBothCtr;
            const Addr hpa = vmmSeg.translate(gpa);
            // Table II: one (combined) base-bound check.
            result.cycles = costs.segmentCheckCycles;
            result.hpa = hpa;
            result.ok = true;
            result.path = TranslatePath::DualSegment;
            tlbHier.l1For(PageSize::Size4K)
                .insert(tlb::EntryKind::Guest, gva,
                        alignDown(hpa, kPage4K), PageSize::Size4K);
            *translationCyclesScl += static_cast<double>(result.cycles);
            return result;
        }
    }

    // 2b. Unvirtualized direct segment: checked in parallel with the
    //     L2 lookup (§III.D's less intrusive placement).
    if (_mode == Mode::NativeDirect && guestSeg.contains(gva) &&
        _guestFilter->mayContain(gva)) {
        ++*escapeSlowCtr;  // Escaped page: conventional paging.
    }
    if (_mode == Mode::NativeDirect && guestSeg.contains(gva) &&
        !_guestFilter->mayContain(gva)) {
        ++*dsFastHitsCtr;
        const Addr pa = guestSeg.translate(gva);
        result.cycles = costs.segmentCheckCycles;
        result.hpa = pa;
        result.ok = true;
        result.path = TranslatePath::NativeSegment;
        tlbHier.l1For(PageSize::Size4K)
            .insert(tlb::EntryKind::Guest, gva, alignDown(pa, kPage4K),
                    PageSize::Size4K);
        *translationCyclesScl += static_cast<double>(result.cycles);
        return result;
    }

    // 3. L2 TLB.
    if (auto hit = tlbHier.lookupL2(gva)) {
        ++*l2HitsCtr;
        EMV_TRACE(Tlb, "L2 hit gva=%s frame=%s size=%s",
                  hexAddr(gva).c_str(), hexAddr(hit->frame).c_str(),
                  pageSizeName(hit->size));
        result.hpa = hit->frame + (gva & (pageBytes(hit->size) - 1));
        result.ok = true;
        result.cycles = costs.l2HitCycles;
        result.path = TranslatePath::L2Hit;
        tlbHier.l1For(hit->size)
            .insert(tlb::EntryKind::Guest,
                    alignDown(gva, pageBytes(hit->size)), hit->frame,
                    hit->size);
        *translationCyclesScl += static_cast<double>(result.cycles);
        return result;
    }
    ++*l2MissesCtr;
    EMV_TRACE(Tlb, "L2 miss gva=%s", hexAddr(gva).c_str());

    // 4. Page walk (mode-flattened).
    pendingFaultSpace = FaultSpace::None;
    pendingFaultAddr = 0;
    walkSideCycles = 0;
    WalkTrace trace;
    trace.refs.reserve(24);
    WalkOutcome out = doWalk(gva, trace, result);
    if (!out.ok) {
        ++*faultsCtr;
        result.ok = false;
        result.path = TranslatePath::Fault;
        result.faultSpace = pendingFaultSpace == FaultSpace::None
                                ? FaultSpace::Guest
                                : pendingFaultSpace;
        result.faultAddr = pendingFaultSpace == FaultSpace::None
                               ? gva
                               : pendingFaultAddr;
        EMV_TRACE(Walk,
                  "record gva=%s mode=\"%s\" path=Fault space=%s "
                  "fault_addr=%s refs=%zu",
                  hexAddr(gva).c_str(), modeName(_mode),
                  toString(result.faultSpace),
                  hexAddr(result.faultAddr).c_str(),
                  trace.refs.size());
        return result;
    }

    ++*walksCtr;
    unsigned line_hits = 0;
    const Cycles walk_cycles =
        priceTrace(trace, line_hits) + walkSideCycles;
    result.cycles = walk_cycles;
    result.hpa = out.pa;
    result.ok = true;
    result.path = TranslatePath::Walk;

    std::uint64_t guest_refs = 0, nested_refs = 0, native_refs = 0;
    for (const auto &ref : trace.refs) {
        switch (ref.stage) {
          case RefStage::GuestTable: ++guest_refs; break;
          case RefStage::NestedTable: ++nested_refs; break;
          case RefStage::NativeTable:
          case RefStage::ShadowTable: ++native_refs; break;
        }
    }
    *guestRefsCtr += guest_refs;
    *nestedRefsCtr += nested_refs;
    *nativeRefsCtr += native_refs;
    *calcsCtr += trace.calculations;

    // BadgerTrap-style per-walk record: what the walk touched and
    // what it cost, one line per resolved walk.
    EMV_TRACE(Walk,
              "record gva=%s mode=\"%s\" path=Walk refs=%zu "
              "guest=%llu nested=%llu native=%llu calcs=%u "
              "pte_line_hits=%u cycles=%llu size=%s hpa=%s",
              hexAddr(gva).c_str(), modeName(_mode),
              trace.refs.size(),
              static_cast<unsigned long long>(guest_refs),
              static_cast<unsigned long long>(nested_refs),
              static_cast<unsigned long long>(native_refs),
              trace.calculations, line_hits,
              static_cast<unsigned long long>(walk_cycles),
              pageSizeName(out.size), hexAddr(out.pa).c_str());
    *walkCyclesScl += static_cast<double>(walk_cycles);
    *translationCyclesScl += static_cast<double>(walk_cycles);
    perWalkCyclesDist->sample(static_cast<double>(walk_cycles));

    tlbHier.insertGuest(alignDown(gva, pageBytes(out.size)),
                        alignDown(out.pa, pageBytes(out.size)),
                        out.size);
    return result;
}

double
Mmu::fractionBoth() const
{
    const double denom = static_cast<double>(
        _stats.counterValue("dd_fast_hits") +
        _stats.counterValue("ds_fast_hits") +
        _stats.counterValue("walks"));
    if (denom == 0.0)
        return 0.0;
    return static_cast<double>(_stats.counterValue("cat_both")) / denom;
}

double
Mmu::fractionVmmOnly() const
{
    const double denom = static_cast<double>(
        _stats.counterValue("dd_fast_hits") +
        _stats.counterValue("ds_fast_hits") +
        _stats.counterValue("walks"));
    if (denom == 0.0)
        return 0.0;
    return static_cast<double>(_stats.counterValue("cat_vmm_only")) /
           denom;
}

double
Mmu::fractionGuestOnly() const
{
    const double denom = static_cast<double>(
        _stats.counterValue("dd_fast_hits") +
        _stats.counterValue("ds_fast_hits") +
        _stats.counterValue("walks"));
    if (denom == 0.0)
        return 0.0;
    return static_cast<double>(_stats.counterValue("cat_guest_only")) /
           denom;
}

void
Mmu::serialize(ckpt::Encoder &enc) const
{
    enc.u8(static_cast<std::uint8_t>(_mode));
    enc.u64(nativeRoot);
    enc.u64(guestRoot);
    enc.u64(nestedRoot);
    enc.u8(nativeRootValid ? 1 : 0);
    enc.u8(guestRootValid ? 1 : 0);
    enc.u8(nestedRootValid ? 1 : 0);
    enc.u64(guestSeg.base());
    enc.u64(guestSeg.limit());
    enc.u64(guestSeg.offset());
    enc.u64(vmmSeg.base());
    enc.u64(vmmSeg.limit());
    enc.u64(vmmSeg.offset());
    _vmmFilter->serialize(enc);
    _guestFilter->serialize(enc);
    tlbHier.serialize(enc);
    guestPsc.serialize(enc);
    nestedPsc.serialize(enc);
    pteLines.serialize(enc);
    _stats.serialize(enc);
    translationLatencyHist.serialize(enc);
}

bool
Mmu::deserialize(ckpt::Decoder &dec)
{
    const std::uint8_t savedMode = dec.u8();
    if (dec.ok() && savedMode > static_cast<std::uint8_t>(
                                    Mode::GuestDirect)) {
        dec.fail("mmu: invalid mode value");
        return false;
    }
    _mode = static_cast<Mode>(savedMode);
    nativeRoot = dec.u64();
    guestRoot = dec.u64();
    nestedRoot = dec.u64();
    nativeRootValid = dec.u8() != 0;
    guestRootValid = dec.u8() != 0;
    nestedRootValid = dec.u8() != 0;
    {
        const Addr base = dec.u64();
        const Addr limit = dec.u64();
        const std::uint64_t offset = dec.u64();
        guestSeg = segment::SegmentRegs(base, limit, offset);
    }
    {
        const Addr base = dec.u64();
        const Addr limit = dec.u64();
        const std::uint64_t offset = dec.u64();
        vmmSeg = segment::SegmentRegs(base, limit, offset);
    }
    if (!_vmmFilter->deserialize(dec) ||
        !_guestFilter->deserialize(dec) ||
        !tlbHier.deserialize(dec) || !guestPsc.deserialize(dec) ||
        !nestedPsc.deserialize(dec) || !pteLines.deserialize(dec) ||
        !_stats.deserialize(dec) ||
        !translationLatencyHist.deserialize(dec))
        return false;
    // Scratch fault state never survives a translate() call; clear
    // it so a restore mid-run starts from a clean slate.
    pendingFaultSpace = FaultSpace::None;
    pendingFaultAddr = 0;
    walkSideCycles = 0;
    return dec.ok();
}

} // namespace emv::core
