/**
 * @file
 * The proposed MMU: Fig. 5's translation flow chart.
 *
 * One Mmu implements all six modes.  Switching mode only changes
 * which segment register sets are live and how the page-walk state
 * machine flattens dimensions — mirroring the paper's observation
 * that setting BASE = LIMIT "nullifies" the corresponding boxes of
 * the flow chart.
 *
 * Flow on every access:
 *   1. L1 TLB lookup (split 4K/2M/1G) — hit ends translation.
 *   2. Dual Direct only: both-segment check; a hit computes
 *      hPA = gVA + OFFSET_G + OFFSET_V and refills the L1 (a 0D
 *      walk).  The escape filter is checked in parallel.
 *   3. L2 TLB lookup (the unvirtualized direct-segment check also
 *      runs here, in parallel with the L2 — the "less intrusive
 *      hardware" of §III.D).
 *   4. Page walk, flattened per mode:
 *        Native/NativeDirect: 1D walk.
 *        BaseVirtualized:     2D walk; gPA→hPA via nested TLB
 *                             entries in the shared L2, else nested
 *                             table walk.
 *        VmmDirect:           guest walk with each gPA translated by
 *                             the VMM segment (escape filter aware),
 *                             falling back to nested paging.
 *        GuestDirect:         gPA = gVA + OFFSET_G, then nested
 *                             translation of the data gPA only.
 *        DualDirect:          Table I's "VMM only" / "Guest only" /
 *                             "Neither" categories.
 */

#pragma once

#include <memory>
#include <optional>
#include <ostream>

#include "common/stats.hh"
#include "common/telemetry.hh"
#include "common/types.hh"
#include "core/cost_model.hh"
#include "core/mode.hh"
#include "paging/nested_walker.hh"
#include "paging/walker.hh"
#include "segment/direct_segment.hh"
#include "segment/escape_filter.hh"
#include "tlb/tlb_hierarchy.hh"
#include "tlb/walk_cache.hh"

namespace emv::mem { class PhysMemory; }

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::core {

class DifferentialAuditor;

/** Construction-time knobs. */
struct MmuConfig
{
    tlb::TlbGeometry tlbGeometry{};
    CostModel costs{};

    bool walkCachesEnabled = true;      //!< Paging-structure caches.
    bool nestedTlbShared = true;        //!< Nested entries use the L2.
    unsigned pscSets = 8;               //!< Per-dimension PSC sets.
    unsigned pscWays = 4;
    unsigned pteLineSets = 512;         //!< PTE-line cache (x ways x 64B).
    unsigned pteLineWays = 8;

    unsigned filterBits = 256;          //!< Escape filter geometry.
    unsigned filterHashes = 4;
    std::uint64_t filterSeed = 0x5eedf117e2ull;
};

/** Which address space faulted during a translation. */
enum class FaultSpace { None, Guest, Nested };

/** How a translation was resolved (for stats / tests). */
enum class TranslatePath {
    L1Hit,
    DualSegment,     //!< Both segments (0D) — Table I "Both".
    NativeSegment,   //!< Unvirtualized direct segment.
    L2Hit,
    Walk,
    Fault,
};

/** @{ Printable enum names for traces and test failure messages. */
const char *toString(FaultSpace space);
const char *toString(TranslatePath path);
std::ostream &operator<<(std::ostream &os, FaultSpace space);
std::ostream &operator<<(std::ostream &os, TranslatePath path);
/** @} */

/** Result of Mmu::translate(). */
struct TranslationResult
{
    Addr hpa = 0;
    bool ok = false;
    Cycles cycles = 0;            //!< Translation overhead cycles.
    TranslatePath path = TranslatePath::Fault;
    FaultSpace faultSpace = FaultSpace::None;
    Addr faultAddr = 0;           //!< gVA or gPA that faulted.
};

/**
 * The MMU.  Owns the TLB hierarchy, walk caches, segment registers
 * and escape filters; the walkers read page tables out of host
 * physical memory.
 */
class Mmu
{
  public:
    Mmu(mem::PhysMemory &host_mem, const MmuConfig &config = {});
    ~Mmu();

    /** @{ Mode and translation-source plumbing. */
    void setMode(Mode mode);
    Mode mode() const { return _mode; }

    /** Root of the native (or shadow) 1D table, a host PA. */
    void setNativeRoot(Addr root_pa);
    /** Root of the guest page table, a *guest* PA. */
    void setGuestRoot(Addr root_gpa);
    /** Root of the nested page table, a host PA. */
    void setNestedRoot(Addr root_hpa);

    void setGuestSegment(const segment::SegmentRegs &regs);
    void setVmmSegment(const segment::SegmentRegs &regs);
    const segment::SegmentRegs &guestSegment() const
    { return guestSeg; }
    const segment::SegmentRegs &vmmSegment() const { return vmmSeg; }

    /** Escape filter over the VMM segment (Dual/VMM Direct). */
    segment::EscapeFilter &vmmFilter() { return *_vmmFilter; }
    /** Escape filter over the guest segment (Direct Segment mode). */
    segment::EscapeFilter &guestFilter() { return *_guestFilter; }

    /** @{ Graceful degradation (Table III downgrades).
     * Retire a segment: null its registers (BASE = LIMIT), clear
     * its escape filter, and flush cached translations so every
     * covered address re-walks through the page tables. */
    void retireGuestSegment();
    void retireVmmSegment();
    /** @} */
    /** @} */

    /**
     * Translate one guest virtual (or native virtual) address.
     * Faults do not modify TLB state; callers service the fault and
     * retry.
     */
    TranslationResult translate(Addr gva);

    /** Guest process context switch: guest TLB entries + guest PSC. */
    void flushGuestContext();

    /** VM switch or nested-table change: everything. */
    void flushAll();

    /** Invalidate one guest page (guest unmap / remap). */
    void invalidateGuestPage(Addr gva, PageSize size);

    /** Invalidate one nested page (VMM remap / swap / migration). */
    void invalidateNestedPage(Addr gpa, PageSize size);

    tlb::TlbHierarchy &tlbs() { return tlbHier; }
    StatGroup &stats() { return _stats; }
    const CostModel &costs() const { return config.costs; }
    const MmuConfig &configuration() const { return config; }

    /**
     * Per-translation modeled latency (cycles) of every resolved
     * translation — all paths, L1 hits included, not just walks.
     * This is the telemetry hot-path API: readers window and
     * percentile it without any string-keyed registry lookups.
     */
    const telemetry::LatencyHistogram &translationLatency() const
    { return translationLatencyHist; }
    /** Zero the latency histogram (end of warmup, with the stats). */
    void resetTranslationLatency() { translationLatencyHist.reset(); }

    /**
     * Translation fractions measured so far, for the Table IV
     * linear models: F_DD, F_VD, F_GD over all walks + DD fast hits.
     */
    double fractionBoth() const;
    double fractionVmmOnly() const;
    double fractionGuestOnly() const;

    /**
     * Checkpoint the full translation state: mode, roots, segment
     * registers, escape filters, TLB hierarchy, walk caches,
     * PTE-line cache and stats.  (Table contents live in PhysMemory;
     * the auditor is stateless and rebuilt lazily.)
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    friend class NestedPagingTranslator;
    friend class SegmentFirstTranslator;
    friend class DifferentialAuditor;

    /** translate() minus the audit hook (all the real work). */
    TranslationResult translateImpl(Addr gva);

    /** Price a trace's refs through the PTE-line cache; counts the
     *  refs that hit a cached line into @p line_hits. */
    Cycles priceTrace(const paging::WalkTrace &trace,
                      unsigned &line_hits);

    /** Mode-dispatched walk; fills trace and category stats. */
    paging::WalkOutcome doWalk(Addr gva, paging::WalkTrace &trace,
                               TranslationResult &result);

    /** gPA→hPA via nested TLB + nested table walk. */
    paging::WalkOutcome nestedToHost(Addr gpa,
                                     paging::WalkTrace &trace);

    /** gPA→hPA via VMM segment (filter-aware), else nested paging. */
    paging::WalkOutcome segmentToHost(Addr gpa,
                                      paging::WalkTrace &trace,
                                      bool &used_paging);

    /** Largest TLB granule consistent with a segment translation. */
    static PageSize segmentGranule(std::uint64_t offset);

    mem::PhysMemory &hostMem;
    MmuConfig config;
    Mode _mode = Mode::Native;

    paging::Walker walker;
    paging::NestedWalker nestedWalker;
    tlb::TlbHierarchy tlbHier;
    tlb::WalkCache guestPsc;
    tlb::WalkCache nestedPsc;
    tlb::LineCache pteLines;

    Addr nativeRoot = 0;
    Addr guestRoot = 0;
    Addr nestedRoot = 0;
    bool nativeRootValid = false;
    bool guestRootValid = false;
    bool nestedRootValid = false;

    segment::SegmentRegs guestSeg;
    segment::SegmentRegs vmmSeg;
    std::unique_ptr<segment::EscapeFilter> _vmmFilter;
    std::unique_ptr<segment::EscapeFilter> _guestFilter;

    /** Lazily built differential checker (audit mode only). */
    std::unique_ptr<DifferentialAuditor> auditor;

    /** Per-walk scratch state (reset in translate()). */
    FaultSpace pendingFaultSpace = FaultSpace::None;
    Addr pendingFaultAddr = 0;
    Cycles walkSideCycles = 0;

    StatGroup _stats{"mmu"};
    Counter *accessesCtr;
    Counter *l1HitsCtr;
    Counter *l1MissesCtr;
    Counter *l2HitsCtr;
    Counter *l2MissesCtr;
    Counter *walksCtr;
    Counter *ddFastHitsCtr;
    Counter *dsFastHitsCtr;
    Counter *catBothCtr;
    Counter *catVmmOnlyCtr;
    Counter *catGuestOnlyCtr;
    Counter *catNeitherCtr;
    Counter *guestRefsCtr;
    Counter *nestedRefsCtr;
    Counter *nativeRefsCtr;
    Counter *calcsCtr;
    Counter *nestedTlbHitsCtr;
    Counter *nestedTlbMissesCtr;
    Counter *escapeSlowCtr;
    Counter *faultsCtr;
    Scalar *walkCyclesScl;
    Scalar *translationCyclesScl;
    Distribution *perWalkCyclesDist;

    /** Cumulative per-translation latency (telemetry tail metrics). */
    telemetry::LatencyHistogram translationLatencyHist;
};

} // namespace emv::core

