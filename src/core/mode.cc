#include "core/mode.hh"

#include "common/logging.hh"

namespace emv::core {

namespace {

// Table II, with the two native modes added for completeness.
const ModeTraits kTraits[] = {
    // Native
    {"Native", 1, 4, 0, false, false, "any",
     Support::NotApplicable, Support::NotApplicable,
     Support::Unrestricted, Support::NotApplicable},
    // NativeDirect (original direct segments, §III.D)
    {"Direct Segment", 0, 0, 1, true, false, "big memory",
     Support::NotApplicable, Support::NotApplicable,
     Support::Limited, Support::NotApplicable},
    // BaseVirtualized
    {"Base Virtualized", 2, 24, 0, false, false, "any",
     Support::Unrestricted, Support::Unrestricted,
     Support::Unrestricted, Support::Unrestricted},
    // DualDirect
    {"Dual Direct", 0, 0, 1, true, true, "big memory",
     Support::Limited, Support::Limited,
     Support::Limited, Support::Limited},
    // VmmDirect
    {"VMM Direct", 1, 4, 5, false, true, "any",
     Support::Limited, Support::Limited,
     Support::Unrestricted, Support::Limited},
    // GuestDirect
    {"Guest Direct", 1, 4, 1, true, false, "big memory",
     Support::Unrestricted, Support::Unrestricted,
     Support::Limited, Support::Unrestricted},
};

} // namespace

const ModeTraits &
modeTraits(Mode mode)
{
    const auto index = static_cast<unsigned>(mode);
    emv_assert(index < std::size(kTraits), "unknown mode %u", index);
    return kTraits[index];
}

const char *
modeName(Mode mode)
{
    return modeTraits(mode).name;
}

const char *
modeBarLabel(Mode mode)
{
    switch (mode) {
      case Mode::Native: return "4K";
      case Mode::NativeDirect: return "DS";
      case Mode::BaseVirtualized: return "4K+4K";
      case Mode::DualDirect: return "DD";
      case Mode::VmmDirect: return "4K+VD";
      case Mode::GuestDirect: return "4K+GD";
    }
    return "?";
}

bool
isVirtualized(Mode mode)
{
    return mode == Mode::BaseVirtualized || mode == Mode::DualDirect ||
           mode == Mode::VmmDirect || mode == Mode::GuestDirect;
}

bool
usesGuestSegment(Mode mode)
{
    return mode == Mode::NativeDirect || mode == Mode::DualDirect ||
           mode == Mode::GuestDirect;
}

bool
usesVmmSegment(Mode mode)
{
    return mode == Mode::DualDirect || mode == Mode::VmmDirect;
}

std::ostream &
operator<<(std::ostream &os, Mode mode)
{
    return os << modeName(mode);
}

const char *
supportName(Support support)
{
    switch (support) {
      case Support::Unrestricted: return "unrestricted";
      case Support::Limited: return "limited";
      case Support::NotApplicable: return "n/a";
    }
    return "?";
}

} // namespace emv::core
