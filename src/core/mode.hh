/**
 * @file
 * Translation modes (Fig. 3) and their properties (Table II).
 *
 * The proposed hardware supports six modes per guest process: the
 * two base modes (native 1D paging, virtualized 2D nested paging),
 * the original direct-segment mode re-implemented with less
 * intrusive hardware, and the three new virtualized modes.
 */

#pragma once

#include <ostream>
#include <string>

namespace emv::core {

/** Address-translation operating mode. */
enum class Mode {
    Native,           //!< Unvirtualized 1D paging.
    NativeDirect,     //!< Unvirtualized direct segment (§III.D).
    BaseVirtualized,  //!< 2D nested paging (up to 24 refs).
    DualDirect,       //!< Guest + VMM segments: 0D (§III.A).
    VmmDirect,        //!< Paging + VMM segment: 1D (§III.B).
    GuestDirect,      //!< Guest segment + nested paging: 1D (§III.C).
};

/** Degree of support for a VMM/OS service under a mode (Table II). */
enum class Support {
    Unrestricted,
    Limited,
    NotApplicable,
};

/** Static properties of a mode — the rows of Table II. */
struct ModeTraits
{
    const char *name;
    int walkDims;            //!< Page-walk dimensionality (2/1/0).
    int walkRefs;            //!< Memory accesses for most walks.
    int baseBoundChecks;     //!< Base-bound checks per walk.
    bool guestOsChanges;     //!< Requires guest OS modifications.
    bool vmmChanges;         //!< Requires VMM modifications.
    const char *appCategory; //!< "any" or "big memory".
    Support pageSharing;
    Support ballooning;
    Support guestSwapping;
    Support vmmSwapping;
};

/** Table II row for @p mode. */
const ModeTraits &modeTraits(Mode mode);

/** Short printable name ("VMM Direct", ...). */
const char *modeName(Mode mode);

/** Name used in the paper's bar charts ("4K+VD", "DD", ...). */
const char *modeBarLabel(Mode mode);

/** True for the four virtualized modes. */
bool isVirtualized(Mode mode);

/** True for modes requiring an active guest segment. */
bool usesGuestSegment(Mode mode);

/** True for modes requiring an active VMM segment. */
bool usesVmmSegment(Mode mode);

const char *supportName(Support support);

/** Streams modeName() — trace records and test failure messages. */
std::ostream &operator<<(std::ostream &os, Mode mode);

} // namespace emv::core

