#include "core/linear_model.hh"

namespace emv::core {

double
predictDirectSegmentCycles(const ModelInputs &in)
{
    return in.cyclesPerMissNative * (1.0 - in.fractionDirectSegment) *
           in.missesNative;
}

double
predictDualDirectCycles(const ModelInputs &in)
{
    const double covered =
        in.fractionBoth + in.fractionVmmOnly + in.fractionGuestOnly;
    const double rest = covered > 1.0 ? 0.0 : 1.0 - covered;
    return ((in.cyclesPerMissNative + kDeltaVmmDirect) *
                in.fractionVmmOnly +
            (in.cyclesPerMissNative + kDeltaGuestDirect) *
                in.fractionGuestOnly +
            in.cyclesPerMissVirtualized * rest) *
           in.missesNative;
}

double
predictVmmDirectCycles(const ModelInputs &in)
{
    return ((in.cyclesPerMissNative + kDeltaVmmDirect) *
                in.fractionVmmOnly +
            in.cyclesPerMissVirtualized * (1.0 - in.fractionVmmOnly)) *
           in.missesNative;
}

double
predictGuestDirectCycles(const ModelInputs &in)
{
    return ((in.cyclesPerMissNative + kDeltaGuestDirect) *
                in.fractionGuestOnly +
            in.cyclesPerMissVirtualized *
                (1.0 - in.fractionGuestOnly)) *
           in.missesNative;
}

} // namespace emv::core
