/**
 * @file
 * Table IV: linear models for cycles spent on page walks.
 *
 * The paper predicts each proposed design's walk cycles from
 * measured native/virtualized baselines:
 *
 *   C_n, C_v — cycles per TLB miss, native / virtualized
 *   M_n      — native TLB miss count
 *   F_DS/F_DD/F_VD/F_GD — fraction of misses inside the respective
 *                         segment(s)
 *   Δ_VD = 5, Δ_GD = 1 — base-bound check overhead per walk
 *
 * We implement the same models so benches can compare analytic
 * predictions against full simulation (bench/tab04_models).
 */

#pragma once

#include <cstdint>

namespace emv::core {

/** Inputs shared by all Table IV models. */
struct ModelInputs
{
    double cyclesPerMissNative = 0.0;       //!< C_n
    double cyclesPerMissVirtualized = 0.0;  //!< C_v
    double missesNative = 0.0;              //!< M_n
    double fractionDirectSegment = 0.0;     //!< F_DS
    double fractionBoth = 0.0;              //!< F_DD
    double fractionVmmOnly = 0.0;           //!< F_VD
    double fractionGuestOnly = 0.0;         //!< F_GD
};

/** Δ values from §VII (1 cycle per base-bound check). */
constexpr double kDeltaVmmDirect = 5.0;
constexpr double kDeltaGuestDirect = 1.0;

/** Direct Segment: C_n * (1 - F_DS) * M_n. */
double predictDirectSegmentCycles(const ModelInputs &in);

/**
 * Dual Direct: [(C_n+Δ_VD)F_VD + (C_n+Δ_GD)F_GD +
 *               C_v(1-F_GD-F_VD-F_DD)] * M_n.
 */
double predictDualDirectCycles(const ModelInputs &in);

/** VMM Direct: [(C_n+Δ_VD)F_VD + C_v(1-F_VD)] * M_n. */
double predictVmmDirectCycles(const ModelInputs &in);

/** Guest Direct: [(C_n+Δ_GD)F_GD + C_v(1-F_GD)] * M_n. */
double predictGuestDirectCycles(const ModelInputs &in);

} // namespace emv::core

