#include "core/differential_auditor.hh"

#include "common/audit.hh"
#include "core/mmu.hh"

namespace emv::core {

using paging::GpaTranslator;
using paging::RefStage;
using paging::WalkOutcome;
using paging::WalkTrace;

namespace {

/** GpaTranslator that defers to the auditor's reference resolve. */
class ReferenceGpaTranslator : public GpaTranslator
{
  public:
    using Resolve = WalkOutcome (*)(const void *, Addr, WalkTrace &);

    ReferenceGpaTranslator(const void *ctx, Resolve resolve)
        : ctx(ctx), resolve(resolve)
    {}

    WalkOutcome
    toHost(Addr gpa, WalkTrace &trace) override
    {
        return resolve(ctx, gpa, trace);
    }

  private:
    const void *ctx;
    Resolve resolve;
};

} // namespace

DifferentialAuditor::DifferentialAuditor(Mmu &mmu) : mmu(mmu) {}

WalkOutcome
DifferentialAuditor::referenceToHost(Addr gpa, bool use_vmm_seg,
                                     WalkTrace &trace) const
{
    if (use_vmm_seg && mmu.vmmSeg.contains(gpa) &&
        !mmu._vmmFilter->mayContain(gpa)) {
        WalkOutcome out;
        out.pa = mmu.vmmSeg.translate(gpa);
        out.size = PageSize::Size4K;
        out.ok = true;
        return out;
    }
    if (!mmu.nestedRootValid)
        return WalkOutcome{0, PageSize::Size4K, false};
    return mmu.walker.walk(mmu.nestedRoot, gpa, RefStage::NestedTable,
                           trace, nullptr);
}

WalkOutcome
DifferentialAuditor::referenceTranslate(Addr gva) const
{
    WalkTrace trace;  // Discarded: the reference prices nothing.

    // Guest-segment fast path (NativeDirect / GuestDirect /
    // DualDirect): architecturally, a gVA inside [BASE_G, LIMIT_G)
    // whose page has not escaped translates by pure addition.
    const bool guest_seg_hit =
        (mmu._mode == Mode::NativeDirect ||
         mmu._mode == Mode::GuestDirect ||
         mmu._mode == Mode::DualDirect) &&
        mmu.guestSeg.contains(gva) &&
        !mmu._guestFilter->mayContain(gva);

    switch (mmu._mode) {
      case Mode::Native:
      case Mode::NativeDirect: {
        if (guest_seg_hit) {
            WalkOutcome out;
            out.pa = mmu.guestSeg.translate(gva);
            out.ok = true;
            return out;
        }
        if (!mmu.nativeRootValid)
            return WalkOutcome{0, PageSize::Size4K, false};
        return mmu.walker.walk(mmu.nativeRoot, gva,
                               RefStage::NativeTable, trace, nullptr);
      }

      case Mode::BaseVirtualized:
      case Mode::VmmDirect:
      case Mode::GuestDirect:
      case Mode::DualDirect: {
        const bool use_vmm_seg = mmu._mode == Mode::VmmDirect ||
                                 mmu._mode == Mode::DualDirect;
        if (guest_seg_hit) {
            const Addr gpa = mmu.guestSeg.translate(gva);
            return referenceToHost(gpa, use_vmm_seg, trace);
        }
        if (!mmu.guestRootValid)
            return WalkOutcome{0, PageSize::Size4K, false};
        struct Ctx
        {
            const DifferentialAuditor *self;
            bool useVmmSeg;
        } ctx{this, use_vmm_seg};
        ReferenceGpaTranslator tx(
            &ctx, [](const void *c, Addr gpa, WalkTrace &t) {
                const auto *cc = static_cast<const Ctx *>(c);
                return cc->self->referenceToHost(gpa, cc->useVmmSeg,
                                                 t);
            });
        return mmu.nestedWalker.walk(mmu.guestRoot, gva, tx, trace,
                                     nullptr);
      }
    }
    return WalkOutcome{0, PageSize::Size4K, false};
}

bool
DifferentialAuditor::auditTranslation(Addr gva,
                                      const TranslationResult &result)
{
    audit::detail::countCheck();
    const WalkOutcome ref = referenceTranslate(gva);
    if (ref.ok == result.ok && (!ref.ok || ref.pa == result.hpa))
        return true;

    audit::reportMismatch(emv::detail::format(
        "gva=%s mode=\"%s\" path=%s: fast path %s hpa=%s, reference "
        "2D walk %s hpa=%s",
        hexAddr(gva).c_str(), modeName(mmu._mode),
        toString(result.path), result.ok ? "ok" : "fault",
        hexAddr(result.hpa).c_str(), ref.ok ? "ok" : "fault",
        hexAddr(ref.pa).c_str()));
    return false;
}

} // namespace emv::core
