/**
 * @file
 * Differential audit of the dimensionality reductions.
 *
 * The paper's Table I/II equivalence says every fast path — L1/L2
 * TLB hits, the Dual Direct 0D both-segments hit, the unvirtualized
 * direct segment, VMM/Guest Direct flattened walks — must produce
 * the *same hPA and fault outcome* as the reference two-dimensional
 * nested walk over the current page tables; only the number of
 * references (the cost) may differ.
 *
 * The DifferentialAuditor enforces that mechanically: in audit mode
 * (emvsim audit=1, audit::setEnabled(true)) it re-translates every
 * MMU lookup through a cache-free reference translation — no TLBs,
 * no paging-structure caches, no PTE-line cache, no stat effects on
 * the MMU — and reports any divergence through
 * audit::reportMismatch() (counted as machine.audit.mismatches).
 *
 * Because TLB and PSC hits are compared against a fresh walk of the
 * live tables, a single stale cached entry anywhere in the hierarchy
 * shows up as a mismatch on its next use, making the auditor a TLB/
 * PSC coherence checker as well as a fast-path equivalence checker.
 *
 * Audit mode deliberately trades fidelity of *performance* counters
 * for correctness checking: reference re-walks read physical memory
 * through the same PhysMemory, so machine.physmem.reads is inflated
 * while auditing.  Translation results are unchanged.
 */

#pragma once

#include "common/types.hh"
#include "paging/walk.hh"

namespace emv::core {

class Mmu;
struct TranslationResult;

/** Re-translates lookups through the reference walk and compares. */
class DifferentialAuditor
{
  public:
    explicit DifferentialAuditor(Mmu &mmu);

    /**
     * Compare @p result (what the MMU returned for @p gva) against
     * the reference translation.  Counts one audit check; reports a
     * mismatch when the hPA or the fault outcome diverges.
     * @return true when the paths agree.
     */
    bool auditTranslation(Addr gva, const TranslationResult &result);

    /**
     * The cache-free reference translation of @p gva under the MMU's
     * current mode, roots, segments and escape filters.
     */
    paging::WalkOutcome referenceTranslate(Addr gva) const;

  private:
    /** Reference gPA→hPA: optional VMM segment, else nested walk. */
    paging::WalkOutcome referenceToHost(Addr gpa, bool use_vmm_seg,
                                        paging::WalkTrace &trace) const;

    Mmu &mmu;
};

} // namespace emv::core
