/**
 * @file
 * Cycle cost model for translation events.
 *
 * Prices are per-event latencies added on top of the workload's base
 * execution.  Defaults are calibrated to the paper's SandyBridge
 * testbed ballpark: an L2 TLB hit costs a handful of cycles, a walk
 * reference costs either a cache hit (~L2/L3 latency) or a memory
 * access, and each base-bound check costs one cycle (the paper's
 * pessimistic Δ assumption, §VII).
 */

#pragma once

#include "common/types.hh"

namespace emv::core {

/** All translation-path latencies in cycles. */
struct CostModel
{
    /** L1 TLB hit adds nothing over base execution. */
    Cycles l1HitCycles = 0;

    /** L2 TLB hit latency (charged on hits only; the probe on a
     *  miss overlaps the walk start). */
    Cycles l2HitCycles = 7;

    /** One base-bound check / segment addition (the paper's Δ unit:
     *  Δ_VD = 5 of these, Δ_GD = 1). */
    Cycles segmentCheckCycles = 1;

    /** Walk reference whose PTE line is cache-resident. */
    Cycles pteCacheHitCycles = 6;

    /** Walk reference that misses to memory. */
    Cycles pteMemCycles = 150;

    /** Nested-TLB (shared L2) hit during a 2D walk. */
    Cycles nestedTlbHitCycles = 7;

    /** VM exit + entry round trip (shadow-paging syncs, balloon
     *  operations, ...). */
    Cycles vmExitCycles = 2000;

    /** Guest page-fault handling (demand paging). */
    Cycles guestFaultCycles = 1500;

    /** TLB shootdown on unmap. */
    Cycles shootdownCycles = 500;
};

} // namespace emv::core

