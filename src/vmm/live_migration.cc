#include "vmm/live_migration.hh"

#include <vector>

#include "common/logging.hh"
#include "vmm/vmm.hh"

namespace emv::vmm {

LiveMigration::LiveMigration(Vm &source, Vm &destination)
    : src(source), dst(destination)
{
}

bool
LiveMigration::begin()
{
    // Table II: an active VMM segment means the VMM no longer
    // mediates gPA→hPA at 4K granularity, so it cannot track or
    // remap the pages a migration needs.  (Guest segments are fine:
    // Guest Direct keeps nested paging.)
    if (!src.activeSegmentRegion().empty()) {
        ++_stats.counter("refused_segment_active");
        return false;
    }
    emv_assert(dst.gpaSpan() >= src.gpaSpan(),
               "destination VM too small for migration");
    started = true;
    firstRoundDone = false;
    dirty.clear();
    return true;
}

void
LiveMigration::copyPage(Addr gpa)
{
    auto src_hpa = src.gpaToHpa(gpa);
    if (!src_hpa)
        return;  // Unbacked (ballooned/swapped) pages stay holes.
    if (!dst.gpaToHpa(gpa) && !dst.ensureBacked(gpa))
        emv_fatal("migration destination out of memory");
    auto dst_hpa = dst.gpaToHpa(gpa);
    // Both VMs live in the same simulated host memory; a real
    // migration would move bytes over the wire here.
    src.vmm().hostMem().copyFrame(alignDown(*dst_hpa, kPage4K),
                                  alignDown(*src_hpa, kPage4K));
    ++_stats.counter("pages_copied");
}

std::uint64_t
LiveMigration::copyRound()
{
    emv_assert(started, "copyRound before begin()");
    std::uint64_t copied = 0;
    if (!firstRoundDone) {
        for (const auto &extent : src.backingMap().extents()) {
            for (Addr off = 0; off < extent.bytes; off += kPage4K) {
                copyPage(extent.gpa + off);
                ++copied;
            }
        }
        firstRoundDone = true;
    } else {
        std::vector<Addr> batch(dirty.begin(), dirty.end());
        dirty.clear();
        for (Addr gpa : batch) {
            copyPage(gpa);
            ++copied;
        }
    }
    ++_stats.counter("rounds");
    return copied;
}

void
LiveMigration::markDirty(Addr gpa)
{
    if (started)
        dirty.insert(alignDown(gpa, kPage4K));
}

std::uint64_t
LiveMigration::finalRound()
{
    // The machine stops feeding writes before calling this (the
    // stop-and-copy pause).
    emv_assert(firstRoundDone, "finalRound before the first copy");
    return copyRound();
}

bool
LiveMigration::verify() const
{
    for (const auto &extent : src.backingMap().extents()) {
        for (Addr off = 0; off < extent.bytes; off += kPage4K) {
            const Addr gpa = extent.gpa + off;
            auto s = src.gpaToHpa(gpa);
            auto d = dst.gpaToHpa(gpa);
            if (!d)
                return false;
            auto &mem = src.vmm().hostMem();
            if (mem.hashFrame(alignDown(*s, kPage4K)) !=
                mem.hashFrame(alignDown(*d, kPage4K))) {
                return false;
            }
        }
    }
    return true;
}

} // namespace emv::vmm
