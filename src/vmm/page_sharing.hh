/**
 * @file
 * Content-based page sharing (§IX.E).
 *
 * The VMM scans backed guest frames, hashes their contents, and maps
 * identical pages copy-on-write to a single host frame [52].  The
 * paper co-schedules pairs of big-memory VMs and finds under 3%
 * savings — the bulk of memory is workload-unique data — so giving
 * sharing up inside VMM segments costs little.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace emv::vmm {

class Vm;
class Vmm;

/** Result of a sharing scan. */
struct SharingReport
{
    std::uint64_t scannedFrames = 0;
    std::uint64_t duplicateFrames = 0;  //!< Frames beyond the first
                                        //!< copy of each content.
    Addr savedBytes = 0;
    double savedFraction = 0.0;
};

/** The sharing daemon. */
class PageSharing
{
  public:
    explicit PageSharing(Vmm &vmm);

    /** Hash all backed frames of @p vms and report the potential. */
    SharingReport scan(const std::vector<Vm *> &vms) const;

    /**
     * Deduplicate: repoint identical frames to one copy (COW) and
     * free the rest.  Do not combine with segment-backed VMs or
     * host compaction (the paper's Table II "limited" entries).
     * @return Frames freed.
     */
    std::uint64_t mergeDuplicates(const std::vector<Vm *> &vms);

    /** Break COW on a guest write to @p gpa of @p vm. */
    void onGuestWrite(Vm &vm, Addr gpa);

    /** True if the host frame is currently shared COW. */
    bool isShared(Addr hpa) const;

    StatGroup &stats() { return _stats; }

  private:
    Vmm &vmm;
    /** hPA frame -> reference count (>1 means shared). */
    std::unordered_map<Addr, std::uint32_t> refCounts;
    StatGroup _stats{"sharing"};
};

} // namespace emv::vmm

