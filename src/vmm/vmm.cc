#include "vmm/vmm.hh"

#include <algorithm>

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"
#include "common/trace.hh"

namespace emv::vmm {

namespace {

unsigned
orderFor(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return 0;
      case PageSize::Size2M: return 9;
      case PageSize::Size1G: return 18;
    }
    return 0;
}

constexpr Addr kGuestHvaBase = 0x7f0000000000ull;

} // namespace

/** Nested/shadow tables live directly in host memory. */
class Vm::HostTableSpace : public paging::MemSpace
{
  public:
    explicit HostTableSpace(Vmm &vmm) : vmm(vmm) {}

    std::uint64_t
    read64(Addr addr) const override
    {
        return vmm.hostMem().read64(addr);
    }

    void
    write64(Addr addr, std::uint64_t value) override
    {
        vmm.hostMem().write64(addr, value);
    }

    Addr
    allocTableFrame() override
    {
        const Addr frame = vmm.allocTableFrameHost();
        vmm.hostMem().zeroFrame(frame);
        return frame;
    }

    void
    freeTableFrame(Addr frame) override
    {
        vmm.freeTableFrameHost(frame);
    }

  private:
    Vmm &vmm;
};

/** The guest's view of its physical memory. */
class Vm::GuestPhysAccessor : public mem::PhysAccessor
{
  public:
    explicit GuestPhysAccessor(Vm &vm) : vm(vm) {}

    std::uint64_t
    read64(Addr gpa) const override
    {
        auto hpa = vm.backing.toHpa(gpa);
        if (!hpa)
            return 0;  // Unbacked guest memory reads as zero.
        return vm._vmm.hostMem().read64(*hpa);
    }

    void
    write64(Addr gpa, std::uint64_t value) override
    {
        auto hpa = vm.backing.toHpa(gpa);
        if (!hpa) {
            if (!vm.ensureBacked(gpa))
                emv_fatal("guest write to unbackable gPA %s",
                          hexAddr(gpa).c_str());
            hpa = vm.backing.toHpa(gpa);
        }
        vm._vmm.hostMem().write64(*hpa, value);
    }

    void
    zeroFrame(Addr frame_base) override
    {
        if (!vm.backing.toHpa(frame_base) &&
            !vm.ensureBacked(frame_base)) {
            emv_fatal("guest zeroFrame of unbackable gPA %s",
                      hexAddr(frame_base).c_str());
        }
        vm._vmm.hostMem().zeroFrame(*vm.backing.toHpa(frame_base));
    }

    void
    copyFrame(Addr dst_base, Addr src_base) override
    {
        if (!vm.backing.toHpa(dst_base) && !vm.ensureBacked(dst_base))
            emv_fatal("guest copyFrame to unbackable gPA");
        auto src = vm.backing.toHpa(src_base);
        auto dst = vm.backing.toHpa(dst_base);
        if (!src) {
            vm._vmm.hostMem().zeroFrame(*dst);
            return;
        }
        vm._vmm.hostMem().copyFrame(*dst, *src);
    }

    /** The VMM hides host hard faults from the guest. */
    bool isBad(Addr) const override { return false; }
    bool anyBadInRange(Addr, Addr) const override { return false; }

  private:
    Vm &vm;
};

Vmm::Vmm(mem::PhysMemory &host_mem, Addr host_ram_bytes)
    : _hostMem(host_mem)
{
    emv_assert(host_ram_bytes <= host_mem.size(),
               "host RAM exceeds physical memory size");
    _hostBuddy =
        std::make_unique<mem::BuddyAllocator>(0, host_ram_bytes);
}

Vm &
Vmm::createVm(std::string name, const VmConfig &config)
{
    _vms.push_back(
        std::make_unique<Vm>(*this, std::move(name), config));
    EMV_TRACE(Vmm, "created VM \"%s\" ram=%llu nested=%s",
              _vms.back()->name().c_str(),
              static_cast<unsigned long long>(config.ramBytes),
              pageSizeName(config.nestedPageSize));
    return *_vms.back();
}

std::optional<Addr>
Vmm::allocHostBlock(PageSize size)
{
    for (;;) {
        auto block = _hostBuddy->allocate(orderFor(size));
        if (!block)
            return std::nullopt;
        if (!_hostMem.anyBadInRange(*block, pageBytes(size)))
            return block;
        for (Addr pa = *block; pa < *block + pageBytes(size);
             pa += kPage4K) {
            if (_hostMem.isBad(pa)) {
                retiredBadFrames.push_back(pa);
                markHostUnmovable(pa, kPage4K);
                ++_stats.counter("bad_frames_retired");
            } else {
                _hostBuddy->freeRange(pa, kPage4K);
            }
        }
    }
}

void
Vmm::freeHostBlock(Addr base, PageSize size)
{
    _hostBuddy->free(base, orderFor(size));
}

bool
Vmm::reserveHostRange(Addr base, Addr bytes)
{
    return _hostBuddy->allocateRange(base, bytes);
}

Addr
Vmm::allocTableFrameHost()
{
    if (tableFreeList.empty()) {
        constexpr Addr chunk_bytes = 4 * MiB;
        auto fit = _hostBuddy->freeIntervals().findFitLowAbove(
            chunk_bytes, kPage4K, 0);
        if (fit && _hostBuddy->allocateRange(fit->start,
                                             chunk_bytes)) {
            markHostUnmovable(fit->start, chunk_bytes);
            ++_stats.counter("table_chunks");
            for (Addr off = 0; off < chunk_bytes; off += kPage4K) {
                if (!_hostMem.isBad(fit->start + off))
                    tableFreeList.push_back(fit->start + off);
            }
        } else {
            auto frame = allocHostBlock(PageSize::Size4K);
            if (!frame)
                emv_fatal("host out of memory for table frames");
            markHostUnmovable(*frame, kPage4K);
            tableFreeList.push_back(*frame);
        }
    }
    const Addr frame = tableFreeList.back();
    tableFreeList.pop_back();
    return frame;
}

void
Vmm::freeTableFrameHost(Addr frame)
{
    tableFreeList.push_back(frame);
}

std::vector<Vm *>
Vmm::vms()
{
    std::vector<Vm *> out;
    out.reserve(_vms.size());
    for (auto &vm : _vms)
        out.push_back(vm.get());
    return out;
}

Vm::Vm(Vmm &vmm, std::string name, const VmConfig &config)
    : _vmm(vmm), _name(std::move(name)), cfg(config),
      _stats("vm." + _name)
{
    emv_assert(cfg.ramBytes > cfg.lowRamBytes,
               "VM needs RAM above the I/O gap");
    emv_assert(cfg.lowRamBytes <= cfg.ioGapStart,
               "low RAM overlaps the I/O gap");
    emv_assert(isAligned(cfg.ramBytes, kPage2M) &&
               isAligned(cfg.lowRamBytes, kPage2M) &&
               isAligned(cfg.extensionReserve, kPage2M),
               "VM memory sizes must be 2M aligned");

    const Addr high_ram = cfg.ramBytes - cfg.lowRamBytes;
    // KVM's two big slots (Fig. 10); the second is pre-extended by
    // the hot-add reserve per §VI.C.
    _slots.addSlot("low", 0, cfg.lowRamBytes, kGuestHvaBase);
    _slots.addSlot("high", cfg.ioGapEnd,
                   high_ram + cfg.extensionReserve,
                   kGuestHvaBase + cfg.ioGapEnd);

    tableSpace = std::make_unique<HostTableSpace>(vmm);
    nestedPt = std::make_unique<paging::PageTable>(*tableSpace);
    accessor = std::make_unique<GuestPhysAccessor>(*this);

    if (cfg.eagerBacking) {
        backRange(0, cfg.lowRamBytes);
        // Try to reserve the high range *and* the extension area as
        // one host block, so hot-added memory extends the same
        // extent and a single VMM segment can cover [gap end, top).
        if (cfg.contiguousHostReservation &&
            cfg.extensionReserve > 0) {
            auto &buddy = _vmm.hostBuddy();
            auto fit = buddy.freeIntervals().findFit(
                high_ram + cfg.extensionReserve,
                pageBytes(cfg.nestedPageSize));
            if (fit &&
                buddy.allocateRange(fit->start,
                                    high_ram + cfg.extensionReserve)) {
                backing.add(cfg.ioGapEnd, high_ram, fit->start);
                mapNestedRange(cfg.ioGapEnd, high_ram, fit->start);
                extensionHostBase = fit->start + high_ram;
                ++_stats.counter("contiguous_reservations");
                return;
            }
        }
        backRange(cfg.ioGapEnd, high_ram);
    }
}

Vm::~Vm() = default;

mem::PhysAccessor &
Vm::guestPhys()
{
    return *accessor;
}

std::vector<Interval>
Vm::guestRamLayout() const
{
    return {Interval{0, cfg.lowRamBytes},
            Interval{cfg.ioGapEnd,
                     cfg.ioGapEnd + (cfg.ramBytes - cfg.lowRamBytes)}};
}

Addr
Vm::gpaSpan() const
{
    return cfg.ioGapEnd + (cfg.ramBytes - cfg.lowRamBytes) +
           cfg.extensionReserve;
}

void
Vm::countExit(const char *reason)
{
    ++_stats.counter("vm_exits");
    ++_stats.counter(std::string("vm_exits_") + reason);
}

void
Vm::mapNestedRange(Addr gpa, Addr bytes, Addr hpa)
{
    Addr pos = 0;
    while (pos < bytes) {
        PageSize size = cfg.nestedPageSize;
        // Largest granule that alignment and the remainder allow.
        while (size != PageSize::Size4K &&
               (!isAligned(gpa + pos, pageBytes(size)) ||
                !isAligned(hpa + pos, pageBytes(size)) ||
                pos + pageBytes(size) > bytes)) {
            size = size == PageSize::Size1G ? PageSize::Size2M
                                            : PageSize::Size4K;
        }
        nestedPt->map(gpa + pos, hpa + pos, size);
        pos += pageBytes(size);
    }
}

void
Vm::splitNestedLeaf(Addr gpa)
{
    auto mapping = nestedPt->translate(gpa);
    if (!mapping || mapping->size == PageSize::Size4K)
        return;
    const Addr leaf_bytes = pageBytes(mapping->size);
    const Addr gpa_base = alignDown(gpa, leaf_bytes);
    const Addr hpa_base = mapping->pa - (gpa - gpa_base);
    nestedPt->unmap(gpa_base, mapping->size);
    for (Addr off = 0; off < leaf_bytes; off += kPage4K)
        nestedPt->map(gpa_base + off, hpa_base + off,
                      PageSize::Size4K);
    ++_stats.counter("nested_leaf_splits");
}

void
Vm::backRange(Addr gpa, Addr bytes)
{
    if (bytes == 0)
        return;
    auto &buddy = _vmm.hostBuddy();
    if (cfg.contiguousHostReservation) {
        // §VI.A: reserve one contiguous host block for the range.
        auto fit = buddy.freeIntervals().findFit(
            bytes, pageBytes(cfg.nestedPageSize));
        if (fit && buddy.allocateRange(fit->start, bytes)) {
            backing.add(gpa, bytes, fit->start);
            mapNestedRange(gpa, bytes, fit->start);
            ++_stats.counter("contiguous_reservations");
            return;
        }
        emv_warn("VM %s: no contiguous host block for %llu bytes; "
                 "falling back to paged backing",
                 _name.c_str(),
                 static_cast<unsigned long long>(bytes));
    }
    // Paged backing: block-by-block at the nested granularity.
    const Addr step = pageBytes(cfg.nestedPageSize);
    for (Addr pos = 0; pos < bytes; pos += step) {
        const Addr chunk = std::min(step, bytes - pos);
        auto block = _vmm.allocHostBlock(
            chunk == step ? cfg.nestedPageSize : PageSize::Size4K);
        if (!block)
            emv_fatal("host out of memory backing VM %s",
                      _name.c_str());
        backing.add(gpa + pos, chunk, *block);
        mapNestedRange(gpa + pos, chunk, *block);
    }
}

bool
Vm::ensureBacked(Addr gpa)
{
    if (!_slots.gpaToHva(gpa))
        return false;  // Outside guest memory (e.g. I/O gap).
    if (backing.toHpa(gpa)) {
        // Backed but missing its nested leaf: a dropped (corrupted)
        // nested PTE.  The BackingMap is authoritative — re-derive
        // the mapping from it instead of allocating a new frame.
        const Addr page = alignDown(gpa, kPage4K);
        if (!nestedPt->translate(page)) {
            splitNestedLeaf(page);
            nestedPt->map(page, *backing.toHpa(page),
                          PageSize::Size4K);
            countExit("nested_repair");
            ++_stats.counter("nested_mappings_repaired");
        }
        return true;
    }

    // Swapped-out page: the nested fault swaps it back in.
    const Addr swap_page = alignDown(gpa, kPage4K);
    if (auto it = swapStore.find(swap_page); it != swapStore.end()) {
        auto frame = _vmm.allocHostBlock(PageSize::Size4K);
        if (!frame)
            return false;
        for (unsigned i = 0; i < 512; ++i)
            _vmm.hostMem().write64(*frame + 8ull * i,
                                   it->second[i]);
        backing.add(swap_page, kPage4K, *frame);
        splitNestedLeaf(swap_page);
        nestedPt->map(swap_page, *frame, PageSize::Size4K);
        swapStore.erase(it);
        countExit("swap_in");
        ++_stats.counter("pages_swapped_in");
        return true;
    }

    countExit("nested_fault");
    const Addr block_bytes = pageBytes(cfg.nestedPageSize);
    const Addr base = alignDown(gpa, block_bytes);

    // Use the full nested granule only when the whole naturally
    // aligned block is inside the slot and completely unbacked;
    // otherwise back just this 4K page.
    bool whole_block_free = _slots.gpaToHva(base).has_value() &&
                            _slots.gpaToHva(base + block_bytes - 1)
                                .has_value();
    if (whole_block_free) {
        bool any = false;
        backing.forEachIn(base, block_bytes,
                          [&](const Extent &) { any = true; });
        whole_block_free = !any;
    }

    if (whole_block_free && cfg.nestedPageSize != PageSize::Size4K) {
        auto block = _vmm.allocHostBlock(cfg.nestedPageSize);
        if (block) {
            backing.add(base, block_bytes, *block);
            mapNestedRange(base, block_bytes, *block);
            return true;
        }
    }
    auto frame = _vmm.allocHostBlock(PageSize::Size4K);
    if (!frame)
        return false;
    const Addr page = alignDown(gpa, kPage4K);
    backing.add(page, kPage4K, *frame);
    splitNestedLeaf(page);
    nestedPt->map(page, *frame, PageSize::Size4K);
    return true;
}

void
Vm::repointBacking(Addr gpa, Addr new_hpa)
{
    emv_assert(isAligned(gpa, kPage4K) && isAligned(new_hpa, kPage4K),
               "repointBacking arguments must be 4K aligned");
    splitNestedLeaf(gpa);
    if (nestedPt->translate(gpa))
        nestedPt->unmap(gpa, PageSize::Size4K);
    nestedPt->map(gpa, new_hpa, PageSize::Size4K);
    backing.remove(gpa, kPage4K);
    backing.add(gpa, kPage4K, new_hpa);
    if (nestedChangeHook)
        nestedChangeHook(gpa, PageSize::Size4K);
}

bool
Vm::offlineFrame(Addr gpa)
{
    const Addr page = alignDown(gpa, kPage4K);
    auto hpa = backing.toHpa(page);
    if (!hpa)
        return false;
    auto healthy = _vmm.allocHostBlock(PageSize::Size4K);
    if (!healthy)
        return false;
    _vmm.hostMem().copyFrame(*healthy, *hpa);
    repointBacking(page, *healthy);
    // Retire the faulty frame: keep it allocated, never reuse.
    _vmm.markHostUnmovable(*hpa, kPage4K);
    ++_stats.counter("frames_offlined");
    EMV_TRACE(Vmm, "frame offlined: gpa=%s hpa %s -> %s",
              hexAddr(page).c_str(), hexAddr(*hpa).c_str(),
              hexAddr(*healthy).c_str());
    return true;
}

bool
Vm::dropNestedMapping(Addr gpa)
{
    const Addr page = alignDown(gpa, kPage4K);
    if (!backing.toHpa(page))
        return false;
    splitNestedLeaf(page);
    if (nestedPt->translate(page))
        nestedPt->unmap(page, PageSize::Size4K);
    if (nestedChangeHook)
        nestedChangeHook(page, PageSize::Size4K);
    ++_stats.counter("nested_mappings_dropped");
    EMV_TRACE(Vmm, "nested mapping dropped: gpa=%s",
              hexAddr(page).c_str());
    return true;
}

bool
Vm::swapOutPage(Addr gpa)
{
    emv_assert(isAligned(gpa, kPage4K),
               "swapOutPage needs a 4K-aligned gPA");
    if (segmentRegion.contains(gpa)) {
        // Table II: VMM swapping is limited under an active
        // segment — this frame is part of the linear backing.
        ++_stats.counter("swap_declined");
        return false;
    }
    auto hpa = backing.toHpa(gpa);
    if (!hpa)
        return false;

    auto &contents = swapStore[gpa];
    for (unsigned i = 0; i < 512; ++i)
        contents[i] = _vmm.hostMem().read64(*hpa + 8ull * i);

    splitNestedLeaf(gpa);
    nestedPt->unmap(gpa, PageSize::Size4K);
    backing.remove(gpa, kPage4K);
    _vmm.freeHostBlock(*hpa, PageSize::Size4K);
    if (nestedChangeHook)
        nestedChangeHook(gpa, PageSize::Size4K);
    ++_stats.counter("pages_swapped_out");
    return true;
}

bool
Vm::isSwappedOut(Addr gpa) const
{
    return swapStore.count(alignDown(gpa, kPage4K)) != 0;
}

bool
Vm::backWithFrame(Addr gpa, Addr hpa)
{
    emv_assert(isAligned(gpa, kPage4K) && isAligned(hpa, kPage4K),
               "backWithFrame arguments must be 4K aligned");
    if (!_slots.gpaToHva(gpa) || backing.toHpa(gpa))
        return false;
    backing.add(gpa, kPage4K, hpa);
    splitNestedLeaf(gpa);
    nestedPt->map(gpa, hpa, PageSize::Size4K);
    return true;
}

std::optional<VmmSegmentInfo>
Vm::createVmmSegment(Addr min_bytes)
{
    auto extent = backing.largestExtent();
    if (!extent || extent->bytes < min_bytes) {
        ++_stats.counter("vmm_segment_failures");
        return std::nullopt;
    }

    VmmSegmentInfo info;
    info.regs = segment::SegmentRegs::fromRanges(
        extent->gpa, extent->bytes, extent->hpa);

    // §V: faulty host frames inside the segment escape to paging —
    // remap each to healthy memory and report it for the filter.
    for (Addr bad :
         _vmm.hostMem().badFramesInRange(extent->hpa, extent->bytes)) {
        const Addr gpa_bad = extent->gpa + (bad - extent->hpa);
        auto healthy = _vmm.allocHostBlock(PageSize::Size4K);
        if (!healthy)
            emv_fatal("host out of memory remapping faulty frame");
        _vmm.hostMem().copyFrame(*healthy, bad);
        splitNestedLeaf(gpa_bad);
        nestedPt->unmap(gpa_bad, PageSize::Size4K);
        nestedPt->map(gpa_bad, *healthy, PageSize::Size4K);
        backing.remove(gpa_bad, kPage4K);
        backing.add(gpa_bad, kPage4K, *healthy);
        // Retire the faulty frame: keep it allocated, never reuse.
        _vmm.markHostUnmovable(bad, kPage4K);
        info.escapedGpas.push_back(gpa_bad);
        if (nestedChangeHook)
            nestedChangeHook(gpa_bad, PageSize::Size4K);
        ++_stats.counter("escape_remaps");
    }
    segmentRegion = Interval{extent->gpa, extent->gpa + extent->bytes};
    for (Addr gpa : info.escapedGpas) {
        EMV_CHECK(info.regs.contains(gpa),
                  "vmm segment: escaped gpa %s outside segment %s",
                  hexAddr(gpa).c_str(), info.regs.toString().c_str());
        EMV_CHECK([&] {
                      auto xlat = nestedPt->translate(gpa);
                      auto hpa = backing.toHpa(gpa);
                      return xlat && hpa && *hpa == xlat->pa;
                  }(),
                  "vmm segment: escaped gpa %s nested mapping "
                  "disagrees with backing map", hexAddr(gpa).c_str());
    }
    ++_stats.counter("vmm_segments_created");
    EMV_TRACE(Vmm, "VMM segment created: %s (%zu escapes)",
              info.regs.toString().c_str(),
              info.escapedGpas.size());
    return info;
}

void
Vm::reclaimGuestPages(const std::vector<Addr> &gpas)
{
    for (Addr gpa : gpas) {
        emv_assert(isAligned(gpa, kPage4K),
                   "balloon page %s not 4K aligned",
                   hexAddr(gpa).c_str());
        if (segmentRegion.contains(gpa)) {
            // Table II: ballooning is limited under an active VMM
            // segment — freeing this frame would puncture the
            // segment's linear backing, so keep it.
            ++_stats.counter("balloon_pages_declined");
            continue;
        }
        auto hpa = backing.toHpa(gpa);
        if (!hpa)
            continue;  // Already unbacked (extension never touched).
        splitNestedLeaf(gpa);
        nestedPt->unmap(gpa, PageSize::Size4K);
        backing.remove(gpa, kPage4K);
        _vmm.freeHostBlock(*hpa, PageSize::Size4K);
        if (nestedChangeHook)
            nestedChangeHook(gpa, PageSize::Size4K);
        ++_stats.counter("balloon_pages_reclaimed");
    }
    countExit("balloon");
}

std::optional<Addr>
Vm::grantExtension(Addr bytes)
{
    emv_assert(isAligned(bytes, kPage4K),
               "extension must be 4K aligned");
    if (extensionFaultHook && extensionFaultHook()) {
        ++_stats.counter("extension_faults_injected");
        EMV_TRACE(Vmm, "extension grant failed (injected fault)");
        return std::nullopt;
    }
    if (extensionCursor + bytes > cfg.extensionReserve) {
        ++_stats.counter("extension_failures");
        return std::nullopt;
    }
    const Addr high_ram = cfg.ramBytes - cfg.lowRamBytes;
    const Addr base = cfg.ioGapEnd + high_ram + extensionCursor;
    if (extensionHostBase) {
        // Pre-reserved host memory: back eagerly so the extension
        // coalesces with the high-RAM extent.
        const Addr hpa = extensionHostBase + extensionCursor;
        backing.add(base, bytes, hpa);
        mapNestedRange(base, bytes, hpa);
    }
    extensionCursor += bytes;
    countExit("hot_add");
    ++_stats.counter("extensions_granted");
    _stats.counter("extension_bytes") += bytes;
    return base;
}

void
Vm::reclaimGuestRange(Addr base, Addr bytes)
{
    // Free backing of a hot-unplugged range; nested mappings and
    // host frames both go.
    std::vector<Extent> doomed;
    backing.forEachIn(base, bytes,
                      [&](const Extent &e) { doomed.push_back(e); });
    for (const auto &e : doomed) {
        for (Addr off = 0; off < e.bytes; off += kPage4K) {
            splitNestedLeaf(e.gpa + off);
            nestedPt->unmap(e.gpa + off, PageSize::Size4K);
            _vmm.freeHostBlock(e.hpa + off, PageSize::Size4K);
        }
        backing.remove(e.gpa, e.bytes);
        if (nestedChangeHook)
            nestedChangeHook(e.gpa, PageSize::Size4K);
    }
    countExit("hot_remove");
    _stats.counter("range_reclaimed_bytes") += bytes;
}

std::optional<std::uint64_t>
Vm::materializeVmmSegmentBacking(Addr gpa_base, Addr bytes,
                                 std::uint64_t max_migrations)
{
    emv_assert(isAligned(gpa_base, kPage4K) &&
               isAligned(bytes, kPage4K),
               "segment backing range must be 4K aligned");
    if (compactionFaultHook && compactionFaultHook()) {
        ++_stats.counter("compaction_faults_injected");
        EMV_TRACE(Vmm, "segment materialization failed "
                  "(injected compaction fault)");
        return std::nullopt;
    }
    auto &buddy = _vmm.hostBuddy();
    const Addr align = pageBytes(cfg.nestedPageSize);
    std::uint64_t migrations = 0;

    // Phase B relocates every currently backed page of the target
    // range; budget that up front.
    std::uint64_t phase_b_pages = 0;
    backing.forEachIn(gpa_base, bytes, [&](const Extent &e) {
        phase_b_pages += e.bytes / kPage4K;
    });
    if (max_migrations && phase_b_pages > max_migrations)
        return std::nullopt;

    // --- Phase A: obtain one contiguous free host run of `bytes`.
    std::optional<Interval> run;
    if (auto fit = buddy.freeIntervals().findFit(bytes, align)) {
        const bool ok = buddy.allocateRange(fit->start, bytes);
        emv_assert(ok, "free fit vanished");
        run = Interval{fit->start, fit->start + bytes};
    } else {
        // Compact: pick the host window needing the least migration.
        const auto free_set = buddy.freeIntervals();
        const auto &unmovable = _vmm.hostUnmovable();
        std::optional<Addr> best;
        Addr best_alloc = 0;
        for (Addr w = 0; w + bytes <= buddy.size(); w += kPage2M) {
            if (!isAligned(w, align))
                continue;
            if (unmovable.intersectsRange(w, w + bytes))
                continue;
            const Addr alloc =
                bytes - free_set.coveredBytesInRange(w, w + bytes);
            if (!best || alloc < best_alloc) {
                best = w;
                best_alloc = alloc;
            }
            if (best_alloc == 0)
                break;
        }
        if (!best) {
            ++_stats.counter("compaction_failures");
            return std::nullopt;
        }
        if (max_migrations &&
            best_alloc / kPage4K + phase_b_pages > max_migrations) {
            return std::nullopt;
        }
        const Addr wstart = *best;
        const Addr wend = wstart + bytes;

        // Reserve the window's free pieces.
        for (const auto &piece : free_set.intervals()) {
            const Addr lo = std::max(piece.start, wstart);
            const Addr hi = std::min(piece.end, wend);
            if (hi > lo) {
                const bool ok = buddy.allocateRange(lo, hi - lo);
                emv_assert(ok, "window piece vanished");
            }
        }

        // Reverse-map: backed sub-extents (any VM) inside the window.
        struct Victim
        {
            Vm *vm;
            Addr gpa;
            Addr bytes;
            Addr hpa;
        };
        std::vector<Victim> victims;
        Addr victim_bytes = 0;
        for (Vm *vm : _vmm.vms()) {
            for (const auto &e : vm->backing.extents()) {
                const Addr lo = std::max(e.hpa, wstart);
                const Addr hi = std::min(e.hpa + e.bytes, wend);
                if (hi > lo) {
                    victims.push_back({vm, e.gpa + (lo - e.hpa),
                                       hi - lo, lo});
                    victim_bytes += hi - lo;
                }
            }
        }
        if (victim_bytes != best_alloc) {
            emv_warn("host compaction: %llu unowned bytes in window",
                     static_cast<unsigned long long>(
                         best_alloc - victim_bytes));
            for (const auto &piece : free_set.intervals()) {
                const Addr lo = std::max(piece.start, wstart);
                const Addr hi = std::min(piece.end, wend);
                if (hi > lo)
                    buddy.freeRange(lo, hi - lo);
            }
            ++_stats.counter("compaction_failures");
            return std::nullopt;
        }

        // Migrate victims out, 4K at a time.
        for (const auto &victim : victims) {
            for (Addr off = 0; off < victim.bytes; off += kPage4K) {
                const Addr gpa = victim.gpa + off;
                const Addr old_hpa = victim.hpa + off;
                auto newh = _vmm.allocHostBlock(PageSize::Size4K);
                if (!newh)
                    emv_fatal("host compaction out of targets");
                _vmm.hostMem().copyFrame(*newh, old_hpa);
                victim.vm->splitNestedLeaf(gpa);
                victim.vm->nestedPt->unmap(gpa, PageSize::Size4K);
                victim.vm->nestedPt->map(gpa, *newh,
                                         PageSize::Size4K);
                victim.vm->backing.remove(gpa, kPage4K);
                victim.vm->backing.add(gpa, kPage4K, *newh);
                if (victim.vm->nestedChangeHook)
                    victim.vm->nestedChangeHook(gpa,
                                                PageSize::Size4K);
                ++migrations;
            }
        }
        run = Interval{wstart, wend};
        ++_stats.counter("host_compactions");
    }

    // --- Phase B: relocate the target gPA range onto the run so it
    //     is contiguous in both spaces.
    for (Addr off = 0; off < bytes; off += kPage4K) {
        const Addr gpa = gpa_base + off;
        const Addr target = run->start + off;
        auto cur = backing.toHpa(gpa);
        if (cur && *cur == target)
            continue;
        if (cur) {
            _vmm.hostMem().copyFrame(target, *cur);
            _vmm.freeHostBlock(*cur, PageSize::Size4K);
            ++migrations;
        }
        splitNestedLeaf(gpa);
        if (nestedPt->translate(gpa))
            nestedPt->unmap(alignDown(gpa, kPage4K),
                            PageSize::Size4K);
        nestedPt->map(alignDown(gpa, kPage4K), target,
                      PageSize::Size4K);
        backing.remove(gpa, kPage4K);
        backing.add(gpa, kPage4K, target);
        if (nestedChangeHook)
            nestedChangeHook(gpa, PageSize::Size4K);
    }
    _stats.counter("pages_migrated") += migrations;
    return migrations;
}

void
Vm::serialize(ckpt::Encoder &enc) const
{
    _slots.serialize(enc);
    backing.serialize(enc);
    nestedPt->serialize(enc);
    enc.u64(extensionCursor);
    enc.u64(extensionHostBase);
    enc.u64(segmentRegion.start);
    enc.u64(segmentRegion.end);

    std::vector<Addr> swapped;
    swapped.reserve(swapStore.size());
    for (const auto &[gpa, frame] : swapStore)
        swapped.push_back(gpa);
    std::sort(swapped.begin(), swapped.end());
    enc.u64(swapped.size());
    for (Addr gpa : swapped) {
        enc.u64(gpa);
        for (std::uint64_t word : swapStore.at(gpa))
            enc.u64(word);
    }

    _stats.serialize(enc);
}

bool
Vm::deserialize(ckpt::Decoder &dec)
{
    if (!_slots.deserialize(dec) || !backing.deserialize(dec) ||
        !nestedPt->deserialize(dec))
        return false;
    extensionCursor = dec.u64();
    extensionHostBase = dec.u64();
    segmentRegion.start = dec.u64();
    segmentRegion.end = dec.u64();

    swapStore.clear();
    const std::uint64_t nswapped = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < nswapped; ++i) {
        const Addr gpa = dec.u64();
        std::array<std::uint64_t, 512> frame;
        for (auto &word : frame)
            word = dec.u64();
        if (dec.ok())
            swapStore.emplace(gpa, frame);
    }

    if (!_stats.deserialize(dec))
        return false;
    return dec.ok();
}

void
Vmm::serialize(ckpt::Encoder &enc) const
{
    _hostBuddy->serialize(enc);
    unmovableSet.serialize(enc);
    enc.u64(retiredBadFrames.size());
    for (Addr frame : retiredBadFrames)
        enc.u64(frame);
    enc.u64(tableFreeList.size());
    for (Addr frame : tableFreeList)
        enc.u64(frame);
    _stats.serialize(enc);
    enc.u64(_vms.size());
    for (const auto &vm : _vms)
        vm->serialize(enc);
}

bool
Vmm::deserialize(ckpt::Decoder &dec)
{
    if (!_hostBuddy->deserialize(dec) ||
        !unmovableSet.deserialize(dec))
        return false;
    retiredBadFrames.clear();
    const std::uint64_t nretired = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < nretired; ++i)
        retiredBadFrames.push_back(dec.u64());
    tableFreeList.clear();
    const std::uint64_t nfree = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < nfree; ++i)
        tableFreeList.push_back(dec.u64());
    if (!_stats.deserialize(dec))
        return false;
    const std::uint64_t nvms = dec.u64();
    if (dec.ok() && nvms != _vms.size()) {
        dec.fail("vmm: VM count mismatch (restore requires the "
                 "same boot configuration)");
        return false;
    }
    for (std::uint64_t i = 0; dec.ok() && i < nvms; ++i) {
        if (!_vms[static_cast<std::size_t>(i)]->deserialize(dec))
            return false;
    }
    return dec.ok();
}

} // namespace emv::vmm
