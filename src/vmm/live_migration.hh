/**
 * @file
 * Live migration by iterative pre-copy.
 *
 * The paper repeatedly trades segment performance against services
 * "like live migration that depend on 4KB nested pages" (§III.C,
 * Table II): Guest Direct keeps nested paging precisely so the VMM
 * can still write-protect, track and copy guest memory, while an
 * active VMM segment forbids it.
 *
 * LiveMigration implements the classic pre-copy loop over the
 * source VM's backing: a first full round, then rounds copying only
 * pages dirtied since the previous round (the dirty log is fed from
 * write translations by the machine layer / tests), until the dirty
 * set converges, and a final stop-and-copy round.
 */

#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/stats.hh"
#include "common/types.hh"

namespace emv::vmm {

class Vm;

/** Pre-copy migration of one VM's memory onto a destination VM. */
class LiveMigration
{
  public:
    /**
     * @param source      The running VM.  Must not have an active
     *        VMM segment (Table II: migration needs nested paging);
     *        begin() fails otherwise.
     * @param destination A VM with the same gPA geometry whose
     *        memory will receive the copy.
     */
    LiveMigration(Vm &source, Vm &destination);

    /** Start migration; false if the source's mode forbids it. */
    bool begin();

    /**
     * Copy one pre-copy round: the first round transfers every
     * backed page; later rounds only the pages dirtied since.
     * @return Pages copied this round.
     */
    std::uint64_t copyRound();

    /** Record a guest write (fed by the machine layer during
     *  migration: every Write op's gPA page). */
    void markDirty(Addr gpa);

    /** Dirty pages accumulated since the last round. */
    std::size_t dirtyPages() const { return dirty.size(); }

    /** True when the remaining dirty set is small enough to stop
     *  the guest for the final copy. */
    bool converged(std::size_t threshold) const
    { return started && dirty.size() <= threshold; }

    /**
     * Stop-and-copy: transfer the remaining dirty pages.  After
     * this, the destination holds a consistent image.
     * @return Pages copied in the final round.
     */
    std::uint64_t finalRound();

    /** Byte-compare source and destination images (testing aid). */
    bool verify() const;

    std::uint64_t totalPagesCopied() const
    { return _stats.counterValue("pages_copied"); }
    std::uint64_t rounds() const
    { return _stats.counterValue("rounds"); }

    StatGroup &stats() { return _stats; }

  private:
    /** Copy one 4K page source -> destination. */
    void copyPage(Addr gpa);

    Vm &src;
    Vm &dst;
    bool started = false;
    bool firstRoundDone = false;
    std::unordered_set<Addr> dirty;
    StatGroup _stats{"migration"};
};

} // namespace emv::vmm

