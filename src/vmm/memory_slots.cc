#include "vmm/memory_slots.hh"

#include "common/ckpt.hh"
#include "common/logging.hh"

namespace emv::vmm {

void
MemorySlots::addSlot(std::string name, Addr gpa_base, Addr bytes,
                     Addr hva_base)
{
    emv_assert(bytes > 0, "empty memory slot '%s'", name.c_str());
    for (const auto &slot : table) {
        emv_assert(gpa_base >= slot.gpaEnd() ||
                   gpa_base + bytes <= slot.gpaBase,
                   "slot '%s' overlaps '%s' in gPA", name.c_str(),
                   slot.name.c_str());
    }
    table.push_back(MemorySlot{std::move(name), gpa_base, bytes,
                               hva_base});
}

void
MemorySlots::extendSlot(const std::string &name, Addr extra_bytes)
{
    for (auto &slot : table) {
        if (slot.name != name)
            continue;
        for (const auto &other : table) {
            if (&other == &slot)
                continue;
            emv_assert(slot.gpaEnd() + extra_bytes <= other.gpaBase ||
                       other.gpaEnd() <= slot.gpaBase,
                       "slot '%s' extension collides with '%s'",
                       name.c_str(), other.name.c_str());
        }
        slot.bytes += extra_bytes;
        return;
    }
    emv_panic("extendSlot: no slot named '%s'", name.c_str());
}

std::optional<Addr>
MemorySlots::gpaToHva(Addr gpa) const
{
    for (const auto &slot : table) {
        if (slot.contains(gpa))
            return slot.hvaBase + (gpa - slot.gpaBase);
    }
    return std::nullopt;
}

std::optional<Addr>
MemorySlots::hvaToGpa(Addr hva) const
{
    for (const auto &slot : table) {
        if (hva >= slot.hvaBase && hva < slot.hvaBase + slot.bytes)
            return slot.gpaBase + (hva - slot.hvaBase);
    }
    return std::nullopt;
}

const MemorySlot *
MemorySlots::find(const std::string &name) const
{
    for (const auto &slot : table) {
        if (slot.name == name)
            return &slot;
    }
    return nullptr;
}

void
MemorySlots::serialize(ckpt::Encoder &enc) const
{
    enc.u64(table.size());
    for (const auto &slot : table) {
        enc.str(slot.name);
        enc.u64(slot.gpaBase);
        enc.u64(slot.bytes);
        enc.u64(slot.hvaBase);
    }
}

bool
MemorySlots::deserialize(ckpt::Decoder &dec)
{
    table.clear();
    const std::uint64_t n = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < n; ++i) {
        MemorySlot slot;
        slot.name = dec.str();
        slot.gpaBase = dec.u64();
        slot.bytes = dec.u64();
        slot.hvaBase = dec.u64();
        if (dec.ok())
            table.push_back(std::move(slot));
    }
    return dec.ok();
}

} // namespace emv::vmm
