#include "vmm/page_sharing.hh"

#include "common/logging.hh"
#include "vmm/vmm.hh"

namespace emv::vmm {

PageSharing::PageSharing(Vmm &vmm)
    : vmm(vmm)
{
}

SharingReport
PageSharing::scan(const std::vector<Vm *> &vms) const
{
    SharingReport report;
    std::unordered_map<std::uint64_t, std::uint64_t> content_counts;
    for (Vm *vm : vms) {
        for (const auto &extent : vm->backingMap().extents()) {
            for (Addr off = 0; off < extent.bytes; off += kPage4K) {
                const std::uint64_t hash =
                    vmm.hostMem().hashFrame(extent.hpa + off);
                ++content_counts[hash];
                ++report.scannedFrames;
            }
        }
    }
    for (const auto &[hash, count] : content_counts) {
        if (count > 1)
            report.duplicateFrames += count - 1;
    }
    report.savedBytes = report.duplicateFrames * kPage4K;
    report.savedFraction =
        report.scannedFrames
            ? static_cast<double>(report.duplicateFrames) /
                  static_cast<double>(report.scannedFrames)
            : 0.0;
    return report;
}

std::uint64_t
PageSharing::mergeDuplicates(const std::vector<Vm *> &vms)
{
    // First occurrence of each content becomes the keeper frame.
    struct Keeper
    {
        Addr hpa;
    };
    std::unordered_map<std::uint64_t, Keeper> keepers;
    std::uint64_t freed = 0;

    for (Vm *vm : vms) {
        // Snapshot extents: merging edits the backing map.
        const auto extents = vm->backingMap().extents();
        for (const auto &extent : extents) {
            for (Addr off = 0; off < extent.bytes; off += kPage4K) {
                const Addr gpa = extent.gpa + off;
                const Addr hpa = extent.hpa + off;
                const std::uint64_t hash =
                    vmm.hostMem().hashFrame(hpa);
                auto [it, inserted] =
                    keepers.try_emplace(hash, Keeper{hpa});
                if (inserted) {
                    refCounts[hpa] = 1;
                    continue;
                }
                const Addr keeper = it->second.hpa;
                if (keeper == hpa)
                    continue;
                // Repoint this gPA to the keeper frame, COW.
                vm->repointBacking(gpa, keeper);
                vmm.freeHostBlock(hpa, PageSize::Size4K);
                ++refCounts[keeper];
                ++freed;
                ++_stats.counter("frames_merged");
            }
        }
    }
    return freed;
}

void
PageSharing::onGuestWrite(Vm &vm, Addr gpa)
{
    auto hpa = vm.gpaToHpa(gpa);
    if (!hpa)
        return;
    const Addr frame = alignDown(*hpa, kPage4K);
    auto it = refCounts.find(frame);
    if (it == refCounts.end() || it->second <= 1)
        return;
    // Break COW: private copy for the writer.
    auto copy = vmm.allocHostBlock(PageSize::Size4K);
    if (!copy)
        emv_fatal("host out of memory breaking COW");
    vmm.hostMem().copyFrame(*copy, frame);
    vm.repointBacking(alignDown(gpa, kPage4K), *copy);
    --it->second;
    ++_stats.counter("cow_breaks");
}

bool
PageSharing::isShared(Addr hpa) const
{
    auto it = refCounts.find(alignDown(hpa, kPage4K));
    return it != refCounts.end() && it->second > 1;
}

} // namespace emv::vmm
