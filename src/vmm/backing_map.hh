/**
 * @file
 * Guest-physical → host-physical backing extents.
 *
 * The VMM's authoritative record of where each gPA lives in host
 * memory, kept as coalesced extents ((gpa, hpa) runs contiguous in
 * *both* spaces).  The nested page table is derived from this map;
 * VMM-segment creation is exactly the question "what is the largest
 * extent?", and ballooning/remapping/migration are hole-punching
 * and splicing operations here.
 */

#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::vmm {

/** One backing extent: [gpa, gpa+bytes) -> [hpa, hpa+bytes). */
struct Extent
{
    Addr gpa = 0;
    Addr bytes = 0;
    Addr hpa = 0;

    bool operator==(const Extent &) const = default;
};

/** Coalescing extent map. */
class BackingMap
{
  public:
    /** Add backing; must not overlap existing extents. */
    void add(Addr gpa, Addr bytes, Addr hpa);

    /** Remove backing for [gpa, gpa+bytes), splitting extents. */
    void remove(Addr gpa, Addr bytes);

    /** hPA for @p gpa, if backed. */
    std::optional<Addr> toHpa(Addr gpa) const;

    /** True if the whole range is backed (possibly discontiguously
     *  in hPA). */
    bool covered(Addr gpa, Addr bytes) const;

    /**
     * hPA of @p gpa if [gpa, gpa+bytes) is covered by one extent
     * (i.e. linear in host memory); nullopt otherwise.
     */
    std::optional<Addr> linearHpa(Addr gpa, Addr bytes) const;

    /** All extents in gPA order. */
    std::vector<Extent> extents() const;

    /** The largest extent (contiguous in both spaces). */
    std::optional<Extent> largestExtent() const;

    /** Visit the backed sub-extents intersecting [gpa, gpa+bytes). */
    void forEachIn(Addr gpa, Addr bytes,
                   const std::function<void(const Extent &)> &fn)
        const;

    /** Total backed bytes. */
    Addr totalBytes() const;

    std::size_t extentCount() const { return byGpa.size(); }
    bool empty() const { return byGpa.empty(); }

    /**
     * Audit-mode structural check (EMV_INVARIANT): extents are
     * non-empty, no gPA is double-backed (extents disjoint in gPA),
     * and gPA-adjacent extents are not hPA-contiguous (i.e. the map
     * stays maximally coalesced).  Called automatically by
     * add()/remove() under auditing.
     */
    void auditInvariants() const;

    /** Checkpoint the extent map (replaces contents on restore). */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    struct Value
    {
        Addr bytes;
        Addr hpa;
    };

    /** gpa -> (bytes, hpa). */
    std::map<Addr, Value> byGpa;
};

} // namespace emv::vmm

