#include "vmm/shadow_pager.hh"

#include "common/ckpt.hh"
#include "common/logging.hh"
#include "vmm/vmm.hh"

namespace emv::vmm {

/** Shadow tables live in host memory, allocated from the host buddy. */
class ShadowPager::ShadowTableSpace : public paging::MemSpace
{
  public:
    explicit ShadowTableSpace(Vmm &vmm) : vmm(vmm) {}

    std::uint64_t
    read64(Addr addr) const override
    {
        return vmm.hostMem().read64(addr);
    }

    void
    write64(Addr addr, std::uint64_t value) override
    {
        vmm.hostMem().write64(addr, value);
    }

    Addr
    allocTableFrame() override
    {
        const Addr frame = vmm.allocTableFrameHost();
        vmm.hostMem().zeroFrame(frame);
        return frame;
    }

    void
    freeTableFrame(Addr frame) override
    {
        vmm.freeTableFrameHost(frame);
    }

  private:
    Vmm &vmm;
};

ShadowPager::ShadowPager(Vm &vm, os::Process &proc)
    : vm(vm), proc(proc),
      space(std::make_unique<ShadowTableSpace>(vm.vmm())),
      shadowPt(std::make_unique<paging::PageTable>(*space))
{
}

ShadowPager::~ShadowPager() = default;

Addr
ShadowPager::shadowRoot() const
{
    return shadowPt->root();
}

bool
ShadowPager::syncLeaf(Addr gva)
{
    auto guest = proc.pageTable().translate(gva);
    if (!guest)
        return false;

    const Addr leaf_bytes = pageBytes(guest->size);
    const Addr gva_base = alignDown(gva, leaf_bytes);
    const Addr gpa_base = guest->pa - (gva - gva_base);

    // Drop any stale shadow mapping first.
    if (auto old = shadowPt->translate(gva_base)) {
        shadowPt->unmap(alignDown(gva_base, pageBytes(old->size)),
                        old->size);
    }

    // Keep the guest granule only when one backing extent covers
    // the whole leaf (truly linear in host memory) with matching
    // alignment; otherwise shadow at 4K.
    auto linear = vm.backingMap().linearHpa(gpa_base, leaf_bytes);
    if (linear && isAligned(*linear, leaf_bytes)) {
        shadowPt->map(gva_base, *linear, guest->size,
                      guest->writable);
        return true;
    }
    for (Addr off = 0; off < leaf_bytes; off += kPage4K) {
        auto hpa = vm.gpaToHpa(gpa_base + off);
        if (!hpa)
            continue;  // Unbacked gPA: leave a shadow hole.
        if (shadowPt->translate(gva_base + off))
            shadowPt->unmap(gva_base + off, PageSize::Size4K);
        shadowPt->map(gva_base + off, *hpa, PageSize::Size4K,
                      guest->writable);
    }
    return true;
}

void
ShadowPager::rebuildAll()
{
    // Rebuild into a fresh table (CR3-write semantics).
    shadowPt = std::make_unique<paging::PageTable>(*space);
    proc.pageTable().forEachLeaf(
        [&](const paging::PageTable::Leaf &leaf) {
            syncLeaf(leaf.va);
        });
    ++_stats.counter("rebuilds");
}

void
ShadowPager::onGuestMapped(Addr gva, Addr bytes)
{
    const Addr end = gva + bytes;
    Addr pos = alignDown(gva, kPage4K);
    while (pos < end) {
        auto guest = proc.pageTable().translate(pos);
        if (!guest) {
            pos += kPage4K;
            continue;
        }
        const Addr leaf_bytes = pageBytes(guest->size);
        syncLeaf(pos);
        // Keeping the shadow coherent traps each guest PT write.
        ++_stats.counter("sync_exits");
        pos = alignDown(pos, leaf_bytes) + leaf_bytes;
    }
}

void
ShadowPager::onGuestUnmapped(Addr gva, Addr bytes)
{
    const Addr end = gva + bytes;
    Addr pos = alignDown(gva, kPage4K);
    while (pos < end) {
        auto shadow = shadowPt->translate(pos);
        if (!shadow) {
            pos += kPage4K;
            continue;
        }
        const Addr leaf_bytes = pageBytes(shadow->size);
        shadowPt->unmap(alignDown(pos, leaf_bytes), shadow->size);
        ++_stats.counter("sync_exits");
        pos = alignDown(pos, leaf_bytes) + leaf_bytes;
    }
}

void
ShadowPager::onBackingChanged(Addr gpa, Addr bytes)
{
    // Without a reverse map the VMM conservatively rebuilds; real
    // VMMs keep rmap structures, but backing changes are rare
    // (ballooning, migration) compared to guest PT updates.
    (void)gpa;
    (void)bytes;
    rebuildAll();
}

void
ShadowPager::serialize(ckpt::Encoder &enc) const
{
    shadowPt->serialize(enc);
    _stats.serialize(enc);
}

bool
ShadowPager::deserialize(ckpt::Decoder &dec)
{
    if (!shadowPt->deserialize(dec) || !_stats.deserialize(dec))
        return false;
    return dec.ok();
}

} // namespace emv::vmm
