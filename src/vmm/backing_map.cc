#include "vmm/backing_map.hh"

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"

namespace emv::vmm {

void
BackingMap::auditInvariants() const
{
    bool first = true;
    Addr prev_gpa_end = 0;
    Addr prev_hpa_end = 0;
    for (const auto &[gpa, value] : byGpa) {
        EMV_INVARIANT(value.bytes > 0, "backing: empty extent at %s",
                      hexAddr(gpa).c_str());
        if (!first) {
            EMV_INVARIANT(gpa >= prev_gpa_end,
                          "backing: gPA %s double-backed (previous "
                          "extent ends at %s)", hexAddr(gpa).c_str(),
                          hexAddr(prev_gpa_end).c_str());
            EMV_INVARIANT(gpa != prev_gpa_end ||
                          value.hpa != prev_hpa_end,
                          "backing: uncoalesced extents meet at %s",
                          hexAddr(gpa).c_str());
        }
        prev_gpa_end = gpa + value.bytes;
        prev_hpa_end = value.hpa + value.bytes;
        first = false;
    }
}

void
BackingMap::add(Addr gpa, Addr bytes, Addr hpa)
{
    if (bytes == 0)
        return;
    // Overlap check against neighbours.
    auto next = byGpa.lower_bound(gpa);
    if (next != byGpa.end()) {
        emv_assert(gpa + bytes <= next->first,
                   "backing add overlaps extent at %s",
                   hexAddr(next->first).c_str());
    }
    if (next != byGpa.begin()) {
        auto prev = std::prev(next);
        emv_assert(prev->first + prev->second.bytes <= gpa,
                   "backing add overlaps extent at %s",
                   hexAddr(prev->first).c_str());
    }

    // Coalesce with the successor when contiguous in both spaces.
    if (next != byGpa.end() && next->first == gpa + bytes &&
        next->second.hpa == hpa + bytes) {
        bytes += next->second.bytes;
        byGpa.erase(next);
    }
    // Coalesce with the predecessor likewise.
    auto it = byGpa.lower_bound(gpa);
    if (it != byGpa.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.bytes == gpa &&
            prev->second.hpa + prev->second.bytes == hpa) {
            prev->second.bytes += bytes;
            if (audit::enabled())
                auditInvariants();
            return;
        }
    }
    byGpa.emplace(gpa, Value{bytes, hpa});
    if (audit::enabled())
        auditInvariants();
}

void
BackingMap::remove(Addr gpa, Addr bytes)
{
    if (bytes == 0)
        return;
    const Addr end = gpa + bytes;
    auto it = byGpa.upper_bound(gpa);
    if (it != byGpa.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.bytes > gpa)
            it = prev;
    }
    while (it != byGpa.end() && it->first < end) {
        const Addr estart = it->first;
        const Addr ebytes = it->second.bytes;
        const Addr ehpa = it->second.hpa;
        const Addr eend = estart + ebytes;
        it = byGpa.erase(it);
        if (estart < gpa) {
            byGpa.emplace(estart, Value{gpa - estart, ehpa});
        }
        if (eend > end) {
            byGpa.emplace(end,
                          Value{eend - end, ehpa + (end - estart)});
            break;
        }
    }
    if (audit::enabled())
        auditInvariants();
}

std::optional<Addr>
BackingMap::toHpa(Addr gpa) const
{
    auto it = byGpa.upper_bound(gpa);
    if (it == byGpa.begin())
        return std::nullopt;
    --it;
    if (gpa >= it->first + it->second.bytes)
        return std::nullopt;
    return it->second.hpa + (gpa - it->first);
}

bool
BackingMap::covered(Addr gpa, Addr bytes) const
{
    Addr pos = gpa;
    const Addr end = gpa + bytes;
    while (pos < end) {
        auto it = byGpa.upper_bound(pos);
        if (it == byGpa.begin())
            return false;
        --it;
        const Addr eend = it->first + it->second.bytes;
        if (pos >= eend)
            return false;
        pos = eend;
    }
    return true;
}

std::optional<Addr>
BackingMap::linearHpa(Addr gpa, Addr bytes) const
{
    auto it = byGpa.upper_bound(gpa);
    if (it == byGpa.begin())
        return std::nullopt;
    --it;
    if (gpa < it->first || gpa + bytes > it->first + it->second.bytes)
        return std::nullopt;
    return it->second.hpa + (gpa - it->first);
}

std::vector<Extent>
BackingMap::extents() const
{
    std::vector<Extent> out;
    out.reserve(byGpa.size());
    for (const auto &[gpa, value] : byGpa)
        out.push_back(Extent{gpa, value.bytes, value.hpa});
    return out;
}

std::optional<Extent>
BackingMap::largestExtent() const
{
    std::optional<Extent> best;
    for (const auto &[gpa, value] : byGpa) {
        if (!best || value.bytes > best->bytes)
            best = Extent{gpa, value.bytes, value.hpa};
    }
    return best;
}

void
BackingMap::forEachIn(Addr gpa, Addr bytes,
                      const std::function<void(const Extent &)> &fn)
    const
{
    const Addr end = gpa + bytes;
    auto it = byGpa.upper_bound(gpa);
    if (it != byGpa.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.bytes > gpa)
            it = prev;
    }
    for (; it != byGpa.end() && it->first < end; ++it) {
        const Addr lo = std::max(it->first, gpa);
        const Addr hi = std::min(it->first + it->second.bytes, end);
        if (hi > lo) {
            fn(Extent{lo, hi - lo,
                      it->second.hpa + (lo - it->first)});
        }
    }
}

Addr
BackingMap::totalBytes() const
{
    Addr total = 0;
    for (const auto &[gpa, value] : byGpa)
        total += value.bytes;
    return total;
}

void
BackingMap::serialize(ckpt::Encoder &enc) const
{
    enc.u64(byGpa.size());
    for (const auto &[gpa, value] : byGpa) {
        enc.u64(gpa);
        enc.u64(value.bytes);
        enc.u64(value.hpa);
    }
}

bool
BackingMap::deserialize(ckpt::Decoder &dec)
{
    byGpa.clear();
    const std::uint64_t n = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < n; ++i) {
        const Addr gpa = dec.u64();
        const Addr bytes = dec.u64();
        const Addr hpa = dec.u64();
        if (dec.ok())
            byGpa[gpa] = Value{bytes, hpa};
    }
    return dec.ok();
}

} // namespace emv::vmm
