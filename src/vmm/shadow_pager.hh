/**
 * @file
 * Shadow paging (§II.A, §IX.D) — the classic software alternative.
 *
 * The VMM composes the guest page table (gVA→gPA) with its own
 * gPA→hPA mapping into a *shadow* table (gVA→hPA) that the hardware
 * walks natively in 1D.  TLB misses are cheap; the cost moves to
 * coherence: every guest page-table update traps to the VMM so the
 * shadow can be kept in sync.  Workloads with frequent mapping
 * churn (memcached, omnetpp, ...) pay heavily; static ones do not —
 * exactly the split the paper observes.
 */

#pragma once

#include <memory>

#include "common/stats.hh"
#include "common/types.hh"
#include "os/process.hh"
#include "paging/page_table.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::vmm {

class Vm;

/** Shadow page table for one guest process. */
class ShadowPager
{
  public:
    ShadowPager(Vm &vm, os::Process &proc);
    ~ShadowPager();

    ShadowPager(const ShadowPager &) = delete;
    ShadowPager &operator=(const ShadowPager &) = delete;

    /** Host-physical root for the hardware's 1D walker. */
    Addr shadowRoot() const;

    /** Full resync from the guest table (VM start / CR3 write). */
    void rebuildAll();

    /**
     * Guest mapped [gva, gva+bytes): sync the shadow.  Each synced
     * leaf costs one VM exit (write-protected guest PT trap).
     */
    void onGuestMapped(Addr gva, Addr bytes);

    /** Guest unmapped [gva, gva+bytes). */
    void onGuestUnmapped(Addr gva, Addr bytes);

    /** Nested mapping changed under a gPA: drop affected entries. */
    void onBackingChanged(Addr gpa, Addr bytes);

    /** Coherence VM exits charged so far. */
    std::uint64_t syncExits() const
    { return _stats.counterValue("sync_exits"); }

    StatGroup &stats() { return _stats; }

    /**
     * Checkpoint shadow-table metadata and stats (the table nodes
     * live in host physical memory and travel with that chunk).
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    class ShadowTableSpace;

    /** Sync one guest leaf into the shadow; true if synced. */
    bool syncLeaf(Addr gva);

    Vm &vm;
    os::Process &proc;
    std::unique_ptr<ShadowTableSpace> space;
    std::unique_ptr<paging::PageTable> shadowPt;
    StatGroup _stats{"shadow"};
};

} // namespace emv::vmm

