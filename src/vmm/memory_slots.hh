/**
 * @file
 * KVM memory slots (Fig. 10).
 *
 * KVM maps ranges of guest physical addresses onto contiguous host
 * virtual memory of the VMM process via *memory slots*; host Linux
 * then maps hVA→hPA.  A stock VM has two large slots: [0, ~3 GB)
 * below the I/O gap and [4 GB, top) above it.  The self-ballooning
 * prototype (§VI.C) pre-extends the second slot by the largest
 * amount that hot-add may later need.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::vmm {

/** One gPA→hVA slot. */
struct MemorySlot
{
    std::string name;
    Addr gpaBase = 0;
    Addr bytes = 0;
    Addr hvaBase = 0;

    Addr gpaEnd() const { return gpaBase + bytes; }
    bool
    contains(Addr gpa) const
    {
        return gpa >= gpaBase && gpa < gpaEnd();
    }
};

/** The slot table of one VM. */
class MemorySlots
{
  public:
    /** Register a slot; gPA ranges must not overlap. */
    void addSlot(std::string name, Addr gpa_base, Addr bytes,
                 Addr hva_base);

    /** Grow a slot in place (KVM slot extension). */
    void extendSlot(const std::string &name, Addr extra_bytes);

    std::optional<Addr> gpaToHva(Addr gpa) const;
    std::optional<Addr> hvaToGpa(Addr hva) const;

    const std::vector<MemorySlot> &slots() const { return table; }
    const MemorySlot *find(const std::string &name) const;

    /** Checkpoint the slot table (replaces contents on restore). */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    std::vector<MemorySlot> table;
};

} // namespace emv::vmm

