/**
 * @file
 * The KVM-like hypervisor model.
 *
 * Vmm owns host physical memory management (a buddy allocator over
 * host RAM, with bad-frame retirement).  Each Vm owns: KVM-style
 * memory slots (Fig. 10), the authoritative gPA→hPA BackingMap, a
 * real nested page table derived from it, the VMM-segment machinery
 * (creation over contiguous backing, escape-filter remapping of
 * faulty host frames), the balloon/hotplug backend used by
 * self-ballooning (§IV/§VI.C), and host-side compaction that
 * "slowly converts" fragmented systems to segment-capable ones
 * (Table III).
 */

#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/intervals.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/buddy_allocator.hh"
#include "mem/phys_accessor.hh"
#include "mem/phys_memory.hh"
#include "os/balloon.hh"
#include "paging/page_table.hh"
#include "segment/direct_segment.hh"
#include "vmm/backing_map.hh"
#include "vmm/memory_slots.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::vmm {

class Vmm;

/** Per-VM construction parameters. */
struct VmConfig
{
    /** Total guest RAM (split around the I/O gap). */
    Addr ramBytes = 4 * GiB;

    /** RAM below the I/O gap ([0, lowRamBytes)). */
    Addr lowRamBytes = 3 * GiB;

    /** I/O gap location (x86-64: [3 GB, 4 GB)). */
    Addr ioGapStart = 3 * GiB;
    Addr ioGapEnd = 4 * GiB;

    /** gPA reserve for hot-add (§VI.C pre-extended second slot). */
    Addr extensionReserve = 0;

    /** Nested page-table mapping granularity (the "+4K/+2M/+1G" of
     *  the paper's configuration labels). */
    PageSize nestedPageSize = PageSize::Size4K;

    /** Back all guest RAM at creation (vs on nested faults). */
    bool eagerBacking = true;

    /** Reserve one contiguous host block per RAM range (§VI.A);
     *  when false, eager backing allocates page-by-page. */
    bool contiguousHostReservation = true;
};

/** VMM segment creation result. */
struct VmmSegmentInfo
{
    segment::SegmentRegs regs;
    std::vector<Addr> escapedGpas;  //!< Remapped faulty pages (§V).
};

/** One virtual machine. */
class Vm : public os::BalloonBackend
{
  public:
    Vm(Vmm &vmm, std::string name, const VmConfig &config);
    ~Vm() override;

    Vm(const Vm &) = delete;
    Vm &operator=(const Vm &) = delete;

    /** @{ Guest-visible geometry. */
    /** Initially present guest RAM ranges (around the I/O gap). */
    std::vector<Interval> guestRamLayout() const;
    /** Total gPA span (RAM + gap + extension reserve). */
    Addr gpaSpan() const;
    const MemorySlots &slots() const { return _slots; }
    /** @} */

    /** @{ Backing and nested paging. */
    /** Physical-memory view handed to the guest OS. */
    mem::PhysAccessor &guestPhys();

    /** Nested page-table root (host PA), for the MMU. */
    Addr nestedRoot() const { return nestedPt->root(); }

    /** Nested fault handler: back @p gpa, mapping nestedPageSize.
     *  @return false when gpa is outside guest memory or the host
     *  is out of memory. */
    bool ensureBacked(Addr gpa);

    std::optional<Addr> gpaToHpa(Addr gpa) const
    { return backing.toHpa(gpa); }

    const BackingMap &backingMap() const { return backing; }

    /** Repoint one 4K gPA page to a different host frame (page
     *  sharing / COW break).  Does not free the old frame. */
    void repointBacking(Addr gpa, Addr new_hpa);

    /**
     * Back one currently unbacked 4K gPA page with a specific
     * (already allocated) host frame.  Used to model pre-existing
     * neighbour-VM allocations that fragment the host.
     */
    bool backWithFrame(Addr gpa, Addr hpa);
    /** @} */

    /** @{ VMM segment (Dual/VMM Direct support). */
    /**
     * Create a VMM segment over the largest contiguous backing
     * extent.  Faulty host frames inside it are remapped to healthy
     * memory and reported for escape-filter insertion.
     * @param min_bytes Fail if the best extent is smaller.
     */
    std::optional<VmmSegmentInfo> createVmmSegment(Addr min_bytes);

    /**
     * Table III slow path: compact host memory and relocate the
     * backing of [gpa_base, gpa_base+bytes) onto one contiguous
     * host run so a VMM segment can cover it.
     *
     * @param max_migrations Work budget in pages (0 = unlimited).
     * @return Pages migrated, or nullopt on failure/over-budget.
     */
    std::optional<std::uint64_t>
    materializeVmmSegmentBacking(Addr gpa_base, Addr bytes,
                                 std::uint64_t max_migrations = 0);
    /** @} */

    /** @{ VMM-level swapping (Table II).
     *
     * Swapping reclaims a backed frame to a software swap store;
     * the next nested fault on the gPA swaps it back in.  Pages
     * inside an active VMM segment are declined — their frames
     * cannot leave the segment's linear backing, which is exactly
     * Table II's "limited" VMM swapping under Dual/VMM Direct. */
    /** Swap one 4K page out. @return false if declined/unbacked. */
    bool swapOutPage(Addr gpa);
    /** True if @p gpa currently lives in the swap store. */
    bool isSwappedOut(Addr gpa) const;
    /** Pages currently swapped out. */
    std::size_t swappedPages() const { return swapStore.size(); }
    /** @} */

    /** gPA range covered by the active VMM segment (empty if no
     *  segment was created). */
    const Interval &activeSegmentRegion() const
    { return segmentRegion; }

    /** @{ Fault recovery (graceful degradation support).
     *
     * offlineFrame() handles a DRAM hard fault on the frame backing
     * @p gpa: copy the (still readable) contents to a healthy frame,
     * repoint the backing, and retire the faulty frame so it is
     * never reallocated.  dropNestedMapping() models nested-PTE
     * corruption detection: the poisoned leaf is discarded and the
     * next nested fault re-derives it from the BackingMap (see
     * ensureBacked()'s repair path). */
    /** Migrate @p gpa's backing off its (faulty) host frame.
     *  @return false if gpa is unbacked or the host is out of
     *  healthy memory. */
    bool offlineFrame(Addr gpa);

    /** Discard the nested leaf for @p gpa without touching the
     *  backing map.  @return false if gpa is not backed. */
    bool dropNestedMapping(Addr gpa);

    /** Inject transient failures into balloon/hotplug requests:
     *  while the hook returns true, grantExtension() fails. */
    void setExtensionFaultHook(std::function<bool()> hook)
    { extensionFaultHook = std::move(hook); }

    /** Inject failures into segment-backing materialization: while
     *  the hook returns true, materializeVmmSegmentBacking() fails. */
    void setCompactionFaultHook(std::function<bool()> hook)
    { compactionFaultHook = std::move(hook); }
    /** @} */

    /** @{ Balloon/hotplug backend (guest driver calls these). */
    void reclaimGuestPages(const std::vector<Addr> &gpas) override;
    void reclaimGuestRange(Addr base, Addr bytes) override;
    std::optional<Addr> grantExtension(Addr bytes) override;
    /** @} */

    /** @{ Accounting and wiring. */
    std::uint64_t vmExits() const
    { return _stats.counterValue("vm_exits"); }

    /** Machine layer hook: nested mapping changed for a gPA page. */
    void setNestedChangeHook(
        std::function<void(Addr gpa, PageSize size)> hook)
    { nestedChangeHook = std::move(hook); }

    StatGroup &stats() { return _stats; }
    const std::string &name() const { return _name; }
    const VmConfig &config() const { return cfg; }
    Vmm &vmm() { return _vmm; }
    /** @} */

    /**
     * Checkpoint all mutable VM state: slots, backing map, nested
     * page-table metadata, extension cursors, segment region, swap
     * store and stats.  (Nested table *contents* travel with host
     * physical memory; hooks are re-wired by the owner.)
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    friend class Vmm;
    class HostTableSpace;
    class GuestPhysAccessor;

    /** Map [gpa, gpa+bytes) -> [hpa, ...) in the nested table using
     *  the largest granules that alignment allows. */
    void mapNestedRange(Addr gpa, Addr bytes, Addr hpa);

    /** Replace any large nested leaf covering @p gpa with 4K
     *  mappings so a single page can be changed. */
    void splitNestedLeaf(Addr gpa);

    /** Back a range eagerly; fatal on host exhaustion. */
    void backRange(Addr gpa, Addr bytes);

    void countExit(const char *reason);

    Vmm &_vmm;
    std::string _name;
    VmConfig cfg;
    MemorySlots _slots;
    BackingMap backing;
    std::unique_ptr<HostTableSpace> tableSpace;
    std::unique_ptr<paging::PageTable> nestedPt;
    std::unique_ptr<GuestPhysAccessor> accessor;
    Addr extensionCursor = 0;
    /** Host memory pre-reserved for the extension area when the
     *  boot reservation was contiguous; 0 = back on demand.  Keeps
     *  [ioGapEnd, top) one extent so a VMM segment can cover the
     *  whole post-reclaim high range. */
    Addr extensionHostBase = 0;
    /** gPA range of the active VMM segment.  Ballooning inside it
     *  is declined (Table II: "limited") — harvesting those frames
     *  would punch holes in the segment's linear backing. */
    Interval segmentRegion{};
    /** Swapped-out page contents, keyed by gPA page base. */
    std::unordered_map<Addr, std::array<std::uint64_t, 512>>
        swapStore;
    std::function<void(Addr, PageSize)> nestedChangeHook;
    std::function<bool()> extensionFaultHook;
    std::function<bool()> compactionFaultHook;
    StatGroup _stats;
};

/** The hypervisor: host memory authority + VM factory. */
class Vmm
{
  public:
    /**
     * @param host_mem Host physical memory.
     * @param host_ram_bytes Managed host RAM (<= host_mem.size()).
     */
    Vmm(mem::PhysMemory &host_mem, Addr host_ram_bytes);

    Vm &createVm(std::string name, const VmConfig &config);

    /** Allocate a host block, retiring faulty frames. */
    std::optional<Addr> allocHostBlock(PageSize size);
    void freeHostBlock(Addr base, PageSize size);

    /** Allocate a 4 KB frame for nested/shadow table nodes from
     *  the pooled, unmovable table area (clustered low so host
     *  compaction windows stay clean). */
    Addr allocTableFrameHost();
    void freeTableFrameHost(Addr frame);

    /** Reserve a specific host range (must be free). */
    bool reserveHostRange(Addr base, Addr bytes);

    mem::PhysMemory &hostMem() { return _hostMem; }
    mem::BuddyAllocator &hostBuddy() { return *_hostBuddy; }

    /** Unmovable host frames (nested/shadow table nodes, retired
     *  bad frames) — host compaction must avoid these. */
    void markHostUnmovable(Addr base, Addr bytes)
    { unmovableSet.insert(base, base + bytes); }
    void clearHostUnmovable(Addr base, Addr bytes)
    { unmovableSet.erase(base, base + bytes); }
    const IntervalSet &hostUnmovable() const { return unmovableSet; }

    std::vector<Vm *> vms();
    StatGroup &stats() { return _stats; }

    /**
     * Checkpoint host-memory management plus every VM (by index;
     * the VM roster itself is fixed at boot and rebuilt by
     * deterministic construction before restore).
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    mem::PhysMemory &_hostMem;
    std::unique_ptr<mem::BuddyAllocator> _hostBuddy;
    IntervalSet unmovableSet;
    std::vector<Addr> retiredBadFrames;
    std::vector<Addr> tableFreeList;
    StatGroup _stats{"vmm"};
    /** Last member: Vm teardown frees table frames through the
     *  buddy and unmovable set above. */
    std::vector<std::unique_ptr<Vm>> _vms;
};

} // namespace emv::vmm

