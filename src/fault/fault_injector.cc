#include "fault/fault_injector.hh"

#include "common/ckpt.hh"
#include "common/logging.hh"
#include "common/trace.hh"

namespace emv::fault {

namespace {

constexpr const char *kPointNames[] = {
    "balloon", "hotplug", "compaction",
};
static_assert(std::size(kPointNames) ==
              static_cast<unsigned>(FaultPoint::NumPoints));

} // namespace

const char *
faultPointName(FaultPoint point)
{
    const auto index = static_cast<unsigned>(point);
    emv_assert(index < std::size(kPointNames),
               "unknown fault point %u", index);
    return kPointNames[index];
}

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : events(plan.events()), _rng(seed)
{
    _stats.counter("scheduled_events") += events.size();
}

std::vector<FaultEvent>
FaultInjector::eventsDue(std::uint64_t op)
{
    std::vector<FaultEvent> due;
    while (pending(op)) {
        due.push_back(events[cursor]);
        ++cursor;
        ++_stats.counter("delivered_events");
        EMV_TRACE(Fault, "deliver %s x%u (scheduled op %llu, at %llu)",
                  faultKindName(due.back().kind), due.back().count,
                  static_cast<unsigned long long>(due.back().op),
                  static_cast<unsigned long long>(op));
    }
    return due;
}

void
FaultInjector::armFailures(FaultPoint point, unsigned count)
{
    {
        LockGuard lock(hookMutex);
        armed[static_cast<std::size_t>(point)] += count;
    }
    _stats.counter("armed_failures") += count;
    EMV_TRACE(Fault, "armed %u %s request failure(s)", count,
              faultPointName(point));
}

bool
FaultInjector::shouldFail(FaultPoint point)
{
    unsigned remaining;
    {
        LockGuard lock(hookMutex);
        unsigned &slot = armed[static_cast<std::size_t>(point)];
        if (slot == 0)
            return false;
        remaining = --slot;
    }
    ++_stats.counter("injected_request_failures");
    EMV_TRACE(Fault, "%s request failure injected (%u left)",
              faultPointName(point), remaining);
    return true;
}

unsigned
FaultInjector::armedFailures(FaultPoint point) const
{
    LockGuard lock(hookMutex);
    return armed[static_cast<std::size_t>(point)];
}

void
FaultInjector::serialize(ckpt::Encoder &enc) const
{
    enc.u64(events.size());
    enc.u64(cursor);
    {
        LockGuard lock(hookMutex);
        for (unsigned count : armed)
            enc.u32(count);
    }
    _rng.serialize(enc);
    _stats.serialize(enc);
}

bool
FaultInjector::deserialize(ckpt::Decoder &dec)
{
    const std::uint64_t nevents = dec.u64();
    if (dec.ok() && nevents != events.size()) {
        dec.fail("fault: event count mismatch (restore requires "
                 "the same fault plan)");
        return false;
    }
    cursor = static_cast<std::size_t>(dec.u64());
    if (dec.ok() && cursor > events.size()) {
        dec.fail("fault: cursor out of range");
        return false;
    }
    {
        LockGuard lock(hookMutex);
        for (auto &count : armed)
            count = dec.u32();
    }
    if (!_rng.deserialize(dec) || !_stats.deserialize(dec))
        return false;
    return dec.ok();
}

} // namespace emv::fault
