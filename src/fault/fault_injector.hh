/**
 * @file
 * Runtime half of fault injection: delivers a FaultPlan's events at
 * their scheduled trace ops, arms request-level failures that the
 * OS/VMM components consult through hooks, and owns the
 * "machine.fault.*" stat group (injections, retries, recoveries,
 * downgrades, terminal faults).
 *
 * The injector is policy-free: it decides *when* something fails,
 * never how the system reacts — recovery (frame offlining, mode
 * downgrades, retry-with-backoff) lives in sim/machine.cc so the
 * same schedule can be replayed under policy=failfast or
 * policy=degrade.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_safety.hh"
#include "fault/fault_plan.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::fault {

/** Cross-layer request sites that can be made to fail. */
enum class FaultPoint : unsigned {
    BalloonReclaim,  //!< BalloonDriver::inflate / selfBalloon.
    HotplugExtend,   //!< Vm::grantExtension.
    Compaction,      //!< Guest/host compaction requests.
    NumPoints,
};

const char *faultPointName(FaultPoint point);

/**
 * Drives one machine's fault schedule.
 *
 * Thread-safety: the injector is owned by one Machine and its event
 * delivery (eventsDue, serialize) is thread-confined to that
 * machine's worker thread.  The armed-failure hooks are the
 * exception — components capture `[&] { return inj.shouldFail(p); }`
 * and such a hook may outlive the wiring thread, so the armed
 * counts sit behind `hookMutex` (a leaf lock: never held across the
 * trace sink or any other emv lock).
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, std::uint64_t seed);

    /** True when an event is scheduled at or before @p op. */
    bool pending(std::uint64_t op) const
    {
        return cursor < events.size() && events[cursor].op <= op;
    }

    /** Pop and return every event due at or before @p op. */
    std::vector<FaultEvent> eventsDue(std::uint64_t op);

    /** All scheduled events delivered. */
    bool exhausted() const { return cursor >= events.size(); }

    /** @{ Armed request failures, consumed through shouldFail().
     * Components wire `[&] { return inj.shouldFail(point); }` into
     * their request entry points; each armed failure makes exactly
     * one request fail. */
    void armFailures(FaultPoint point, unsigned count)
        EMV_EXCLUDES(hookMutex);
    bool shouldFail(FaultPoint point) EMV_EXCLUDES(hookMutex);
    unsigned armedFailures(FaultPoint point) const
        EMV_EXCLUDES(hookMutex);
    /** @} */

    /** Victim selection and noise generation (seeded, so a plan
     *  replays identically). */
    Rng &rng() { return _rng; }

    StatGroup &stats() { return _stats; }

    /**
     * Checkpoint the delivery cursor, armed failures, RNG and stats.
     * The event list itself is rebuilt from the FaultPlan at
     * construction (deterministic), so only progress is stored.
     */
    void serialize(ckpt::Encoder &enc) const
        EMV_EXCLUDES(hookMutex);
    bool deserialize(ckpt::Decoder &dec) EMV_EXCLUDES(hookMutex);

  private:
    EMV_THREAD_CONFINED std::vector<FaultEvent> events;
    EMV_THREAD_CONFINED std::size_t cursor = 0;
    mutable Mutex hookMutex;
    std::array<unsigned,
               static_cast<std::size_t>(FaultPoint::NumPoints)>
        armed EMV_GUARDED_BY(hookMutex){};
    EMV_THREAD_CONFINED Rng _rng;
    EMV_THREAD_CONFINED StatGroup _stats{"fault"};
};

} // namespace emv::fault
