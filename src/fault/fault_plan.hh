/**
 * @file
 * Deterministic fault schedules (the paper's adversity, on demand).
 *
 * The evaluation's robustness story rests on faults arriving while
 * the system runs: hard DRAM faults escape a direct segment through
 * the Bloom filter (Fig. 13), fragmented or overcommitted systems
 * step down the mode lattice (Table III), and balloon/hotplug/
 * compaction requests can fail and must be retried.  A FaultPlan is
 * a seeded, sorted schedule of such events at trace-op granularity;
 * the FaultInjector (fault_injector.hh) delivers them and the
 * machine layer (sim/machine.cc) owns the recovery paths.
 *
 * Plans parse from compact specs — "dram@5000x8,filtersat@9000"
 * schedules eight DRAM hard faults before op 5000 and an
 * escape-filter saturation before op 9000 — and can be generated
 * pseudo-randomly for soak testing (tools/emv_soak.cc).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace emv::fault {

/** What goes wrong. */
enum class FaultKind {
    DramFault,        //!< Mid-run hard fault in a backed frame (§V).
    GuestPteCorrupt,  //!< A guest leaf PTE is lost (parity error).
    NestedPteCorrupt, //!< A nested leaf PTE is lost; backing stays.
    FilterSaturate,   //!< Escape filter floods to its popcount bound.
    BalloonFail,      //!< Balloon reclaim requests fail N times.
    HotplugFail,      //!< Hot-add (extension) requests fail N times.
    CompactionFail,   //!< Compaction requests fail N times.
    SlotRevoke,       //!< VMM revokes backing of a resident page.
    NumKinds,
};

/** Spec-string name ("dram", "filtersat", ...). */
const char *faultKindName(FaultKind kind);
std::optional<FaultKind> faultKindByName(const std::string &name);
std::ostream &operator<<(std::ostream &os, FaultKind kind);

/** @p count instances of @p kind arriving before trace op @p op. */
struct FaultEvent
{
    std::uint64_t op = 0;
    FaultKind kind = FaultKind::DramFault;
    unsigned count = 1;

    bool operator==(const FaultEvent &) const = default;
};

/** What the machine does when a hardware fault is injected. */
enum class FaultPolicy {
    FailFast,  //!< First hardware fault ends the run (structured).
    Degrade,   //!< Recover: offline frames, retry, downgrade modes.
};

const char *faultPolicyName(FaultPolicy policy);
std::optional<FaultPolicy> faultPolicyByName(const std::string &name);

/** Recovery-path tuning (all deterministic). */
struct RecoveryConfig
{
    /** Retry budget for failed balloon/hotplug/compaction requests
     *  before falling back (or giving up). */
    unsigned maxRetries = 3;
    /** Cycles charged for the first retry; doubles per attempt. */
    Cycles backoffBaseCycles = 20000;
    /** Cycles charged per recovered hardware fault (machine-check
     *  service + 4K frame copy + nested remap; ~2.5us at 2 GHz, the
     *  soft-offline path's memory-movement cost). */
    Cycles recoveryCycles = 5000;
    /** Escape-filter fill ratio (popcount / bits) at which the
     *  filter stops discriminating and the mode downgrades one step
     *  along the Table III lattice. */
    double filterSaturationFill = 0.5;
};

/** A sorted, reproducible schedule of fault events. */
class FaultPlan
{
  public:
    /** Insert one event, keeping the schedule sorted by op. */
    void schedule(FaultEvent event);

    /**
     * Parse "kind@op[xCOUNT],kind@op,..." (e.g.
     * "dram@5000x8,balloonfail@7000,filtersat@9000").  The empty
     * string parses to an empty plan.
     * @return nullopt on an unknown kind or malformed field.
     */
    static std::optional<FaultPlan> parse(const std::string &spec);

    /**
     * Seeded mixed schedule for soak runs: DRAM faults, PTE
     * corruptions, request failures and slot revocations spread over
     * [ops/10, ops), with an occasional filter saturation.
     * Identical (seed, ops) always yields the identical plan.
     */
    static FaultPlan random(std::uint64_t seed, std::uint64_t ops);

    /** Canonical spec string (parse(toString()) round-trips). */
    std::string toString() const;

    const std::vector<FaultEvent> &events() const { return _events; }
    bool empty() const { return _events.empty(); }

  private:
    std::vector<FaultEvent> _events;
};

} // namespace emv::fault
