#include "fault/fault_plan.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "common/rng.hh"

namespace emv::fault {

namespace {

constexpr const char *kKindNames[] = {
    "dram",        "guestpte",    "nestedpte", "filtersat",
    "balloonfail", "hotplugfail", "compactfail", "slotrevoke",
};
static_assert(std::size(kKindNames) ==
              static_cast<unsigned>(FaultKind::NumKinds));

} // namespace

const char *
faultKindName(FaultKind kind)
{
    const auto index = static_cast<unsigned>(kind);
    emv_assert(index < std::size(kKindNames),
               "unknown fault kind %u", index);
    return kKindNames[index];
}

std::optional<FaultKind>
faultKindByName(const std::string &name)
{
    for (unsigned i = 0; i < std::size(kKindNames); ++i) {
        if (name == kKindNames[i])
            return static_cast<FaultKind>(i);
    }
    return std::nullopt;
}

std::ostream &
operator<<(std::ostream &os, FaultKind kind)
{
    return os << faultKindName(kind);
}

const char *
faultPolicyName(FaultPolicy policy)
{
    return policy == FaultPolicy::FailFast ? "failfast" : "degrade";
}

std::optional<FaultPolicy>
faultPolicyByName(const std::string &name)
{
    if (name == "failfast")
        return FaultPolicy::FailFast;
    if (name == "degrade")
        return FaultPolicy::Degrade;
    return std::nullopt;
}

void
FaultPlan::schedule(FaultEvent event)
{
    emv_assert(event.count > 0, "fault event needs a count");
    auto pos = std::upper_bound(
        _events.begin(), _events.end(), event,
        [](const FaultEvent &a, const FaultEvent &b) {
            return a.op < b.op;
        });
    _events.insert(pos, event);
}

std::optional<FaultPlan>
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string field = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (field.empty())
            return std::nullopt;

        const std::size_t at = field.find('@');
        if (at == std::string::npos || at + 1 >= field.size())
            return std::nullopt;
        auto kind = faultKindByName(field.substr(0, at));
        if (!kind)
            return std::nullopt;

        std::string rest = field.substr(at + 1);
        unsigned count = 1;
        const std::size_t x = rest.find('x');
        if (x != std::string::npos) {
            if (x == 0 || x + 1 >= rest.size())
                return std::nullopt;
            const std::string count_str = rest.substr(x + 1);
            rest = rest.substr(0, x);
            char *end = nullptr;
            const unsigned long parsed =
                std::strtoul(count_str.c_str(), &end, 10);
            if (*end != '\0' || parsed == 0)
                return std::nullopt;
            count = static_cast<unsigned>(parsed);
        }
        char *end = nullptr;
        const std::uint64_t op = std::strtoull(rest.c_str(), &end, 10);
        if (end == rest.c_str() || *end != '\0')
            return std::nullopt;
        plan.schedule({op, *kind, count});
    }
    return plan;
}

FaultPlan
FaultPlan::random(std::uint64_t seed, std::uint64_t ops)
{
    emv_assert(ops >= 100, "soak plans need a non-trivial run");
    FaultPlan plan;
    Rng rng(seed);
    const std::uint64_t lo = ops / 10;
    auto at = [&] { return lo + rng.nextBelow(ops - lo); };

    // A handful of hard faults, spread out (Fig. 13's scenario).
    const unsigned dram_events = 2 + static_cast<unsigned>(
        rng.nextBelow(3));
    for (unsigned i = 0; i < dram_events; ++i) {
        plan.schedule({at(), FaultKind::DramFault,
                       1 + static_cast<unsigned>(rng.nextBelow(3))});
    }
    // PTE corruptions in both dimensions.
    plan.schedule({at(), FaultKind::GuestPteCorrupt,
                   1 + static_cast<unsigned>(rng.nextBelow(2))});
    plan.schedule({at(), FaultKind::NestedPteCorrupt,
                   1 + static_cast<unsigned>(rng.nextBelow(2))});
    // Request-level failures: retried (and survived) by the machine.
    plan.schedule({at(), FaultKind::BalloonFail, 1});
    plan.schedule({at(), FaultKind::HotplugFail, 1});
    plan.schedule({at(), FaultKind::CompactionFail, 1});
    // VMM pressure: revoke a couple of resident pages.
    plan.schedule({at(), FaultKind::SlotRevoke,
                   1 + static_cast<unsigned>(rng.nextBelow(3))});
    // Occasionally wear the filter out to exercise the downgrade
    // lattice end to end.
    if (rng.nextBelow(4) == 0)
        plan.schedule({at(), FaultKind::FilterSaturate, 1});
    return plan;
}

std::string
FaultPlan::toString() const
{
    std::string out;
    for (const auto &event : _events) {
        if (!out.empty())
            out += ',';
        out += faultKindName(event.kind);
        out += '@';
        out += std::to_string(event.op);
        if (event.count != 1) {
            out += 'x';
            out += std::to_string(event.count);
        }
    }
    return out;
}

} // namespace emv::fault
