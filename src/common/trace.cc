#include "common/trace.hh"

#include <fstream>
#include <iostream>
#include <memory>

namespace emv::trace {

namespace detail {

std::uint32_t mask = 0;

namespace {

std::unique_ptr<std::ofstream> traceFile;
std::ostream *overrideSink = nullptr;

std::ostream &
sink()
{
    if (overrideSink)
        return *overrideSink;
    if (traceFile && traceFile->is_open())
        return *traceFile;
    return std::cerr;
}

} // namespace

void
emitImpl(Flag flag, const std::string &msg)
{
    sink() << flagName(flag) << ": " << msg << '\n';
}

} // namespace detail

namespace {

constexpr const char *kFlagNames[] = {
    "Tlb",    "Walk",       "Segment", "Filter",
    "Balloon", "Compaction", "Vmm",     "Hotplug",
    "Audit",  "Fault",
};
static_assert(std::size(kFlagNames) ==
              static_cast<unsigned>(Flag::NumFlags));

} // namespace

const char *
flagName(Flag flag)
{
    const auto index = static_cast<unsigned>(flag);
    emv_assert(index < std::size(kFlagNames),
               "unknown trace flag %u", index);
    return kFlagNames[index];
}

std::optional<Flag>
flagByName(const std::string &name)
{
    for (unsigned i = 0; i < std::size(kFlagNames); ++i) {
        if (name == kFlagNames[i])
            return static_cast<Flag>(i);
    }
    return std::nullopt;
}

bool
setFlags(const std::string &csv)
{
    std::uint32_t next = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        const std::string name = csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "All") {
            next |= (1u << static_cast<unsigned>(Flag::NumFlags)) - 1;
            continue;
        }
        auto flag = flagByName(name);
        if (!flag)
            return false;
        next |= 1u << static_cast<unsigned>(*flag);
    }
    detail::mask = next;
    return true;
}

void
clearFlags()
{
    detail::mask = 0;
}

std::vector<Flag>
enabledFlags()
{
    std::vector<Flag> out;
    for (unsigned i = 0; i < static_cast<unsigned>(Flag::NumFlags);
         ++i) {
        if ((detail::mask >> i) & 1u)
            out.push_back(static_cast<Flag>(i));
    }
    return out;
}

std::string
allFlagNames()
{
    std::string out;
    for (unsigned i = 0; i < std::size(kFlagNames); ++i) {
        if (i)
            out += ',';
        out += kFlagNames[i];
    }
    return out;
}

bool
openTraceFile(const std::string &path)
{
    if (path.empty()) {
        detail::traceFile.reset();
        return true;
    }
    auto file = std::make_unique<std::ofstream>(
        path, std::ios::out | std::ios::trunc);
    if (!file->is_open())
        return false;
    detail::traceFile = std::move(file);
    return true;
}

void
setSink(std::ostream *os)
{
    detail::overrideSink = os;
}

} // namespace emv::trace
