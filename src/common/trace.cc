#include "common/trace.hh"

#include <fstream>
#include <iostream>
#include <memory>

#include "common/thread_safety.hh"

namespace emv::trace {

namespace detail {

std::atomic<std::uint32_t> mask{0};

namespace {

/** Leaf lock over the sink configuration and the stream itself:
 *  emitImpl() formats outside, then writes each record as one
 *  locked insertion so concurrent tracers never interleave lines. */
Mutex sinkMutex;

std::unique_ptr<std::ofstream> traceFile EMV_GUARDED_BY(sinkMutex);
std::ostream *overrideSink EMV_GUARDED_BY(sinkMutex) = nullptr;

std::ostream &
sink() EMV_REQUIRES(sinkMutex)
{
    if (overrideSink)
        return *overrideSink;
    if (traceFile && traceFile->is_open())
        return *traceFile;
    return std::cerr;
}

} // namespace

void
emitImpl(Flag flag, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += flagName(flag);
    line += ": ";
    line += msg;
    line += '\n';
    LockGuard lock(sinkMutex);
    sink() << line;
}

} // namespace detail

namespace {

constexpr const char *kFlagNames[] = {
    "Tlb",    "Walk",       "Segment", "Filter",
    "Balloon", "Compaction", "Vmm",     "Hotplug",
    "Audit",  "Fault",
};
static_assert(std::size(kFlagNames) ==
              static_cast<unsigned>(Flag::NumFlags));

} // namespace

const char *
flagName(Flag flag)
{
    const auto index = static_cast<unsigned>(flag);
    emv_assert(index < std::size(kFlagNames),
               "unknown trace flag %u", index);
    return kFlagNames[index];
}

std::optional<Flag>
flagByName(const std::string &name)
{
    for (unsigned i = 0; i < std::size(kFlagNames); ++i) {
        if (name == kFlagNames[i])
            return static_cast<Flag>(i);
    }
    return std::nullopt;
}

bool
setFlags(const std::string &csv)
{
    std::uint32_t next = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        const std::string name = csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "All") {
            next |= (1u << static_cast<unsigned>(Flag::NumFlags)) - 1;
            continue;
        }
        auto flag = flagByName(name);
        if (!flag)
            return false;
        next |= 1u << static_cast<unsigned>(*flag);
    }
    detail::mask.store(next, std::memory_order_relaxed);
    return true;
}

void
clearFlags()
{
    detail::mask.store(0, std::memory_order_relaxed);
}

std::vector<Flag>
enabledFlags()
{
    std::vector<Flag> out;
    const std::uint32_t m =
        detail::mask.load(std::memory_order_relaxed);
    for (unsigned i = 0; i < static_cast<unsigned>(Flag::NumFlags);
         ++i) {
        if ((m >> i) & 1u)
            out.push_back(static_cast<Flag>(i));
    }
    return out;
}

std::string
allFlagNames()
{
    std::string out;
    for (unsigned i = 0; i < std::size(kFlagNames); ++i) {
        if (i)
            out += ',';
        out += kFlagNames[i];
    }
    return out;
}

bool
openTraceFile(const std::string &path)
{
    if (path.empty()) {
        LockGuard lock(detail::sinkMutex);
        detail::traceFile.reset();
        return true;
    }
    auto file = std::make_unique<std::ofstream>(
        path, std::ios::out | std::ios::trunc);
    if (!file->is_open())
        return false;
    LockGuard lock(detail::sinkMutex);
    detail::traceFile = std::move(file);
    return true;
}

void
setSink(std::ostream *os)
{
    LockGuard lock(detail::sinkMutex);
    detail::overrideSink = os;
}

} // namespace emv::trace
