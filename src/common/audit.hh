/**
 * @file
 * Runtime correctness-audit framework.
 *
 * The paper's central claim is an *equivalence*: the 2D→1D→0D
 * dimensionality reductions change only the cost of a translation,
 * never its result.  This header gives every subsystem a uniform way
 * to state and check such contracts at runtime:
 *
 *   EMV_CHECK(cond, fmt, ...)      — a local contract ("this insert
 *                                    is page aligned").
 *   EMV_INVARIANT(cond, fmt, ...)  — a structural property of a whole
 *                                    data structure ("intervals are
 *                                    disjoint and coalesced").
 *
 * Both compile to a single test of a global flag when auditing is
 * disabled (the default), so production and benchmark runs pay one
 * predictable branch.  With auditing enabled (emvsim audit=1, or
 * audit::setEnabled(true) in tests) the condition is evaluated and
 * counted; failures are formatted, routed through the trace layer
 * (Flag::Audit) or warn(), and tallied in the process-wide
 * "machine.audit" stat group:
 *
 *   machine.audit.checks      — contracts evaluated;
 *   machine.audit.failures    — EMV_CHECK/EMV_INVARIANT violations;
 *   machine.audit.mismatches  — differential-audit divergences (a
 *                               fast path disagreeing with the
 *                               reference 2D walk; see
 *                               core/differential_auditor.hh).
 *
 * setFailFast(true) escalates any failure to panic() — useful under
 * sanitizers and in CI where the first violation should stop the run
 * with a stack.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "common/stats.hh"

namespace emv::audit {

namespace detail {
/** Non-zero when auditing is on; tested before anything else.
 *  Atomic (relaxed) so the hot-path gate is race-free when worker
 *  threads audit while a driver thread toggles; the counters behind
 *  it are mutex-guarded in audit.cc. */
extern std::atomic<std::uint32_t> auditMask;

/** Count one evaluated contract. */
void countCheck();

/** Record one failed contract: count, format, route, maybe panic. */
void failImpl(const char *kind, const char *expr, const char *file,
              int line, const std::string &msg);
} // namespace detail

/** Cheap inline gate, false in ordinary runs. */
inline bool
enabled()
{
    return __builtin_expect(
        detail::auditMask.load(std::memory_order_relaxed) != 0, 0);
}

/** Turn runtime auditing on or off (idempotent). */
void setEnabled(bool on);

/** Escalate audit failures to panic() (CI / sanitizer runs). */
void setFailFast(bool on);
bool failFast();

/** The process-wide "machine.audit" stat group. */
StatGroup &stats();

/** @{ Counter accessors (mirrors of machine.audit.*). */
std::uint64_t checkCount();
std::uint64_t failureCount();
std::uint64_t mismatchCount();
/** @} */

/** Zero the audit counters (between experiment phases / tests). */
void resetCounters();

/**
 * Record one differential-audit mismatch (counted separately from
 * contract failures; also routed through trace/warn and subject to
 * fail-fast).
 */
void reportMismatch(const std::string &msg);

} // namespace emv::audit

/**
 * Contract check: under auditing, evaluate @p cond and record a
 * formatted failure when it does not hold.  Compiles to one branch
 * when auditing is off; @p cond is then NOT evaluated, so conditions
 * may be arbitrarily expensive.
 */
#define EMV_CHECK(cond, ...)                                           \
    do {                                                               \
        if (::emv::audit::enabled()) {                                 \
            ::emv::audit::detail::countCheck();                        \
            if (!(cond)) {                                             \
                ::emv::audit::detail::failImpl(                        \
                    "check", #cond, __FILE__, __LINE__,                \
                    ::emv::detail::format(__VA_ARGS__));               \
            }                                                          \
        }                                                              \
    } while (0)

/** Structural-invariant check; identical gating to EMV_CHECK. */
#define EMV_INVARIANT(cond, ...)                                       \
    do {                                                               \
        if (::emv::audit::enabled()) {                                 \
            ::emv::audit::detail::countCheck();                        \
            if (!(cond)) {                                             \
                ::emv::audit::detail::failImpl(                        \
                    "invariant", #cond, __FILE__, __LINE__,            \
                    ::emv::detail::format(__VA_ARGS__));               \
            }                                                          \
        }                                                              \
    } while (0)
