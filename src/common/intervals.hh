/**
 * @file
 * Half-open interval set over 64-bit addresses.
 *
 * Used everywhere a module reasons about ranges of frames or pages:
 * free guest-physical ranges (self-ballooning looks for the largest
 * contiguous run), memory slots, hot-plugged regions, and segment
 * candidates.
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace emv {

namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt

/** A half-open range [start, end). */
struct Interval
{
    Addr start = 0;
    Addr end = 0;

    Addr length() const { return end - start; }
    bool empty() const { return end <= start; }
    bool contains(Addr addr) const { return addr >= start && addr < end; }

    bool operator==(const Interval &) const = default;
};

/**
 * Set of disjoint half-open intervals with coalescing insert and
 * splitting erase.
 */
class IntervalSet
{
  public:
    /** Insert [start, end), merging with any overlapping/adjacent. */
    void insert(Addr start, Addr end);

    /** Remove [start, end), splitting intervals as needed. */
    void erase(Addr start, Addr end);

    /** True if @p addr lies in some interval. */
    bool contains(Addr addr) const;

    /** True if the whole range [start, end) is covered. */
    bool containsRange(Addr start, Addr end) const;

    /** True if any byte of [start, end) is covered. */
    bool intersectsRange(Addr start, Addr end) const;

    /** Bytes of [start, end) covered by the set. */
    Addr coveredBytesInRange(Addr start, Addr end) const;

    /** Total bytes covered. */
    Addr totalLength() const;

    /** Largest single interval, if any. */
    std::optional<Interval> largest() const;

    /**
     * Smallest interval of at least @p length bytes whose start is
     * aligned to @p align; best-fit to limit fragmentation.
     */
    std::optional<Interval> findFit(Addr length, Addr align = 1) const;

    /**
     * Highest-addressed aligned fit of at least @p length bytes
     * (placed at the top of the highest interval that fits).
     */
    std::optional<Interval> findFitHigh(Addr length,
                                        Addr align = 1) const;

    /**
     * Lowest-addressed aligned fit whose start is >= @p min_start;
     * falls back to the lowest fit anywhere if none qualifies.
     */
    std::optional<Interval> findFitLowAbove(Addr length, Addr align,
                                            Addr min_start) const;

    /** All intervals in ascending order. */
    std::vector<Interval> intervals() const;

    /**
     * Audit-mode structural check (EMV_INVARIANT): every interval is
     * non-empty and the set is disjoint *and* coalesced (no two
     * intervals touch).  @p what names the owner in failure records.
     * Called automatically by insert()/erase() under auditing.
     */
    void auditInvariants(const char *what = "intervals") const;

    bool empty() const { return byStart.empty(); }
    std::size_t count() const { return byStart.size(); }
    void clear() { byStart.clear(); }

    /** Checkpoint the interval list (replaces contents on restore). */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    /** start -> end. */
    std::map<Addr, Addr> byStart;
};

} // namespace emv

