/**
 * @file
 * Process-wide hierarchical stat registry and its exporters.
 *
 * Every StatGroup registers itself here on construction and
 * deregisters on destruction, so one call can export the state of
 * the whole simulated machine.  Groups are exported under their
 * hierarchical full names ("machine.mmu", "machine.os", ...);
 * sim::Machine reparents the groups it assembles.
 *
 * Three exporters share the StatVisitor interface:
 *   - TextStatExporter: the classic "group.name value" lines;
 *   - JsonStatExporter: the emv-stats-v1 schema (see DESIGN.md);
 *   - CsvStatExporter:  "group,stat,kind,value" rows.
 */

#pragma once

#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace emv {

/** Registry of all live StatGroups (identity-based, thread-safe). */
class StatRegistry
{
  public:
    static StatRegistry &instance();

    void add(StatGroup *group);
    void remove(StatGroup *group);

    /** Live groups sorted by fullName (ties keep creation order). */
    std::vector<const StatGroup *> groups() const;

    /** Live groups whose fullName starts with @p prefix. */
    std::vector<const StatGroup *>
    groupsUnder(const std::string &prefix) const;

    /** visit() every live group in fullName order. */
    void visitAll(StatVisitor &visitor) const;

    std::size_t size() const;

  private:
    StatRegistry() = default;

    mutable std::mutex mutex;
    std::vector<StatGroup *> entries;
};

/** "group.name value" lines, one per stat (dump() format). */
class TextStatExporter : public StatVisitor
{
  public:
    explicit TextStatExporter(std::ostream &os) : os(os) {}

    void visitCounter(const StatGroup &group, const std::string &name,
                      const Counter &counter) override;
    void visitScalar(const StatGroup &group, const std::string &name,
                     const Scalar &scalar) override;
    void visitDistribution(const StatGroup &group,
                           const std::string &name,
                           const Distribution &dist) override;

  private:
    std::ostream &os;
};

/**
 * emv-stats-v1 JSON.  Wrap visits between begin()/end():
 *
 *   {"schema": "emv-stats-v1",
 *    "groups": [{"name": "machine.mmu",
 *                "counters": {"l1_hits": 12},
 *                "scalars": {"walk_cycles": 99.0},
 *                "distributions": {"cycles_per_walk":
 *                    {"count":..., "mean":..., "stddev":...,
 *                     "min":..., "max":..., "p50":..., "p90":...,
 *                     "p99":...}}}, ...]}
 */
class JsonStatExporter : public StatVisitor
{
  public:
    explicit JsonStatExporter(std::ostream &os);
    ~JsonStatExporter() override;

    void begin();
    void end();

    void beginGroup(const StatGroup &group) override;
    void endGroup(const StatGroup &group) override;
    void visitCounter(const StatGroup &group, const std::string &name,
                      const Counter &counter) override;
    void visitScalar(const StatGroup &group, const std::string &name,
                     const Scalar &scalar) override;
    void visitDistribution(const StatGroup &group,
                           const std::string &name,
                           const Distribution &dist) override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/** "group,stat,kind,value" rows with a header line. */
class CsvStatExporter : public StatVisitor
{
  public:
    explicit CsvStatExporter(std::ostream &os);

    void visitCounter(const StatGroup &group, const std::string &name,
                      const Counter &counter) override;
    void visitScalar(const StatGroup &group, const std::string &name,
                     const Scalar &scalar) override;
    void visitDistribution(const StatGroup &group,
                           const std::string &name,
                           const Distribution &dist) override;

  private:
    void row(const StatGroup &group, const std::string &stat,
             const char *kind, double value);

    std::ostream &os;
};

/** Export @p groups as text / JSON / CSV in fullName order. */
void exportStatsText(std::ostream &os,
                     const std::vector<const StatGroup *> &groups);
void exportStatsJson(std::ostream &os,
                     const std::vector<const StatGroup *> &groups);
void exportStatsCsv(std::ostream &os,
                    const std::vector<const StatGroup *> &groups);

} // namespace emv

