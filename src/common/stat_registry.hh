/**
 * @file
 * Process-wide hierarchical stat registry and its exporters.
 *
 * Every StatGroup registers itself here on construction and
 * deregisters on destruction, so one call can export the state of
 * the whole simulated machine.  Groups are exported under their
 * hierarchical full names ("machine.mmu", "machine.os", ...);
 * sim::Machine reparents the groups it assembles.
 *
 * Three exporters share the StatVisitor interface:
 *   - TextStatExporter: the classic "group.name value" lines;
 *   - JsonStatExporter: the emv-stats-v1 schema (see DESIGN.md);
 *   - CsvStatExporter:  "group,stat,kind,value" rows.
 */

#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/thread_safety.hh"

namespace emv {

/**
 * Registry of all live StatGroups (identity-based, thread-safe).
 *
 * Locking contract: `mutex` is a leaf lock guarding only the entry
 * list.  It is never held across a callback — groups(), visitAll()
 * and groupsUnder() snapshot the list under the lock, release it,
 * then sort/visit the snapshot.  Visitors may therefore re-enter
 * the registry freely (a visitor constructing or destroying a
 * StatGroup, or querying size(), cannot deadlock), and every public
 * method is annotated EMV_EXCLUDES(mutex) so the thread-safety
 * analysis rejects any future path that would call back in while
 * holding it.  Note the snapshot is of *registration*: concurrent
 * group destruction during a visit is still a use-after-free, so
 * exporters run only while the groups they cover are quiescent
 * (e.g. after worker threads joined).
 */
class StatRegistry
{
  public:
    static StatRegistry &instance();

    void add(StatGroup *group) EMV_EXCLUDES(mutex);
    void remove(StatGroup *group) EMV_EXCLUDES(mutex);

    /** Live groups sorted by fullName (ties keep creation order). */
    std::vector<const StatGroup *> groups() const
        EMV_EXCLUDES(mutex);

    /** Live groups whose fullName starts with @p prefix. */
    std::vector<const StatGroup *>
    groupsUnder(const std::string &prefix) const EMV_EXCLUDES(mutex);

    /** visit() every live group in fullName order.  The registry
     *  lock is NOT held during visits (see the class comment). */
    void visitAll(StatVisitor &visitor) const EMV_EXCLUDES(mutex);

    std::size_t size() const EMV_EXCLUDES(mutex);

  private:
    StatRegistry() = default;

    mutable Mutex mutex;
    std::vector<StatGroup *> entries EMV_GUARDED_BY(mutex);
};

/** "group.name value" lines, one per stat (dump() format). */
class TextStatExporter : public StatVisitor
{
  public:
    explicit TextStatExporter(std::ostream &os) : os(os) {}

    void visitCounter(const StatGroup &group, const std::string &name,
                      const Counter &counter) override;
    void visitScalar(const StatGroup &group, const std::string &name,
                     const Scalar &scalar) override;
    void visitDistribution(const StatGroup &group,
                           const std::string &name,
                           const Distribution &dist) override;

  private:
    std::ostream &os;
};

/**
 * emv-stats-v1 JSON.  Wrap visits between begin()/end():
 *
 *   {"schema": "emv-stats-v1",
 *    "groups": [{"name": "machine.mmu",
 *                "counters": {"l1_hits": 12},
 *                "scalars": {"walk_cycles": 99.0},
 *                "distributions": {"cycles_per_walk":
 *                    {"count":..., "mean":..., "stddev":...,
 *                     "min":..., "max":..., "p50":..., "p90":...,
 *                     "p99":...}}}, ...]}
 */
class JsonStatExporter : public StatVisitor
{
  public:
    explicit JsonStatExporter(std::ostream &os);
    ~JsonStatExporter() override;

    void begin();
    void end();

    void beginGroup(const StatGroup &group) override;
    void endGroup(const StatGroup &group) override;
    void visitCounter(const StatGroup &group, const std::string &name,
                      const Counter &counter) override;
    void visitScalar(const StatGroup &group, const std::string &name,
                     const Scalar &scalar) override;
    void visitDistribution(const StatGroup &group,
                           const std::string &name,
                           const Distribution &dist) override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/** "group,stat,kind,value" rows with a header line. */
class CsvStatExporter : public StatVisitor
{
  public:
    explicit CsvStatExporter(std::ostream &os);

    void visitCounter(const StatGroup &group, const std::string &name,
                      const Counter &counter) override;
    void visitScalar(const StatGroup &group, const std::string &name,
                     const Scalar &scalar) override;
    void visitDistribution(const StatGroup &group,
                           const std::string &name,
                           const Distribution &dist) override;

  private:
    void row(const StatGroup &group, const std::string &stat,
             const char *kind, double value);

    std::ostream &os;
};

/** Export @p groups as text / JSON / CSV in fullName order. */
void exportStatsText(std::ostream &os,
                     const std::vector<const StatGroup *> &groups);
void exportStatsJson(std::ostream &os,
                     const std::vector<const StatGroup *> &groups);
void exportStatsCsv(std::ostream &os,
                    const std::vector<const StatGroup *> &groups);

} // namespace emv

