#include "common/rng.hh"

#include "common/ckpt.hh"

#include <cmath>

namespace emv {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double theta)
{
    // Standard incremental Zipf sampler (cf. Gray et al., SIGMOD'94).
    if (n != zipfN || theta != zipfTheta) {
        zipfN = n;
        zipfTheta = theta;
        zipfZeta2 = 1.0 + std::pow(0.5, theta);
        // Harmonic-like zeta(n, theta); O(n) but computed once per
        // (n, theta) pair which workloads fix at construction.
        double zeta = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            zeta += 1.0 / std::pow(static_cast<double>(i), theta);
        zipfZetaN = zeta;
        zipfAlpha = 1.0 / (1.0 - theta);
        zipfEta = (1.0 - std::pow(2.0 / static_cast<double>(n),
                                  1.0 - theta)) /
                  (1.0 - zipfZeta2 / zeta);
    }

    const double u = nextDouble();
    const double uz = u * zipfZetaN;
    if (uz < 1.0)
        return 0;
    if (uz < zipfZeta2)
        return 1;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(zipfN) *
        std::pow(zipfEta * u - zipfEta + 1.0, zipfAlpha));
    return rank >= zipfN ? zipfN - 1 : rank;
}

void
Rng::serialize(ckpt::Encoder &enc) const
{
    for (std::uint64_t s : state)
        enc.u64(s);
    enc.u64(zipfN);
    enc.f64(zipfTheta);
    enc.f64(zipfZetaN);
    enc.f64(zipfAlpha);
    enc.f64(zipfEta);
    enc.f64(zipfZeta2);
}

bool
Rng::deserialize(ckpt::Decoder &dec)
{
    for (auto &s : state)
        s = dec.u64();
    zipfN = dec.u64();
    zipfTheta = dec.f64();
    zipfZetaN = dec.f64();
    zipfAlpha = dec.f64();
    zipfEta = dec.f64();
    zipfZeta2 = dec.f64();
    return dec.ok();
}

} // namespace emv
