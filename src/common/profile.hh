/**
 * @file
 * Lightweight simulator self-profiling.
 *
 * The ROADMAP's "fast as the hardware allows" goal needs visibility
 * into the simulator's own hot paths, not just the modeled cycles.
 * Phases are a fixed enum so the hot-path bookkeeping is two array
 * adds; prof::Scope is an RAII timer that reads the clock only when
 * profiling was enabled (one branch otherwise, so `profile=0` runs
 * are unaffected).  report() prints calls / total ms / ns per call
 * for every phase that ran.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>

namespace emv::prof {

/** Instrumented simulator phases. */
enum class Phase : unsigned {
    WorkloadGen,    //!< Workload construction / trace generation.
    MachineBuild,   //!< Machine assembly (OS, VMM, tables, segments).
    Translate,      //!< Mmu::translate calls from the run loop.
    FaultService,   //!< Guest/nested fault handling.
    Balloon,        //!< Balloon inflate / self-balloon.
    Compaction,     //!< Compaction free-run creation.
    Fragmentation,  //!< Fragmenter passes.
    StatsExport,    //!< Stat dump / JSON export.
    NumPhases,
};

namespace detail {

/** Plain (calls, ns) snapshot returned to callers. */
struct PhaseRecord
{
    std::uint64_t calls = 0;
    std::uint64_t ns = 0;
};

/** Live accumulator: lock-free relaxed adds from any thread.  The
 *  two fields are independently atomic, so a concurrent reader may
 *  see calls/ns from different instants — fine for a profile. */
struct AtomicPhaseRecord
{
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> ns{0};
};

extern std::atomic<bool> enabledFlag;
extern AtomicPhaseRecord
    records[static_cast<unsigned>(Phase::NumPhases)];

} // namespace detail

/** Globally enable/disable phase timing (off by default). */
void setEnabled(bool on);
inline bool
enabled()
{
    return detail::enabledFlag.load(std::memory_order_relaxed);
}

/** Zero all phase records. */
void reset();

/** Printable phase name ("translate", ...). */
const char *phaseName(Phase phase);

/** Accumulated (calls, ns) for @p phase. */
detail::PhaseRecord phaseRecord(Phase phase);

/**
 * Print the summary table (phase, calls, total ms, ns/call) for all
 * phases with at least one call; prints a note when profiling never
 * ran.
 */
void report(std::ostream &os);

/** RAII phase timer; no-op (one branch) when profiling is off. */
class Scope
{
  public:
    explicit Scope(Phase phase) : phase(phase)
    {
        if (enabled())
            start = std::chrono::steady_clock::now();
    }

    ~Scope()
    {
        if (!enabled())
            return;
        const auto stop = std::chrono::steady_clock::now();
        auto &rec = detail::records[static_cast<unsigned>(phase)];
        rec.calls.fetch_add(1, std::memory_order_relaxed);
        rec.ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    stop - start)
                    .count()),
            std::memory_order_relaxed);
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Phase phase;
    std::chrono::steady_clock::time_point start;
};

} // namespace emv::prof

