/**
 * @file
 * Lightweight simulator self-profiling.
 *
 * The ROADMAP's "fast as the hardware allows" goal needs visibility
 * into the simulator's own hot paths, not just the modeled cycles.
 * Phases are a fixed enum so the hot-path bookkeeping is two array
 * adds; prof::Scope is an RAII timer that reads the clock only when
 * profiling was enabled (one branch otherwise, so `profile=0` runs
 * are unaffected).  report() prints calls / total ms / ns per call
 * for every phase that ran.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>

namespace emv::prof {

/** Instrumented simulator phases. */
enum class Phase : unsigned {
    WorkloadGen,    //!< Workload construction / trace generation.
    MachineBuild,   //!< Machine assembly (OS, VMM, tables, segments).
    Translate,      //!< Mmu::translate calls from the run loop.
    FaultService,   //!< Guest/nested fault handling.
    Balloon,        //!< Balloon inflate / self-balloon.
    Compaction,     //!< Compaction free-run creation.
    Fragmentation,  //!< Fragmenter passes.
    StatsExport,    //!< Stat dump / JSON export.
    NumPhases,
};

namespace detail {

struct PhaseRecord
{
    std::uint64_t calls = 0;
    std::uint64_t ns = 0;
};

extern bool enabledFlag;
extern PhaseRecord records[static_cast<unsigned>(Phase::NumPhases)];

} // namespace detail

/** Globally enable/disable phase timing (off by default). */
void setEnabled(bool on);
inline bool enabled() { return detail::enabledFlag; }

/** Zero all phase records. */
void reset();

/** Printable phase name ("translate", ...). */
const char *phaseName(Phase phase);

/** Accumulated (calls, ns) for @p phase. */
detail::PhaseRecord phaseRecord(Phase phase);

/**
 * Print the summary table (phase, calls, total ms, ns/call) for all
 * phases with at least one call; prints a note when profiling never
 * ran.
 */
void report(std::ostream &os);

/** RAII phase timer; no-op (one branch) when profiling is off. */
class Scope
{
  public:
    explicit Scope(Phase phase) : phase(phase)
    {
        if (detail::enabledFlag)
            start = std::chrono::steady_clock::now();
    }

    ~Scope()
    {
        if (!detail::enabledFlag)
            return;
        const auto stop = std::chrono::steady_clock::now();
        auto &rec = detail::records[static_cast<unsigned>(phase)];
        ++rec.calls;
        rec.ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                stop - start)
                .count());
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Phase phase;
    std::chrono::steady_clock::time_point start;
};

} // namespace emv::prof

