#include "common/intervals.hh"

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"

namespace emv {

void
IntervalSet::auditInvariants(const char *what) const
{
    Addr prev_end = 0;
    bool first = true;
    for (const auto &[start, end] : byStart) {
        EMV_INVARIANT(end > start,
                      "%s: empty interval [%s, %s)", what,
                      hexAddr(start).c_str(), hexAddr(end).c_str());
        EMV_INVARIANT(first || start > prev_end,
                      "%s: intervals overlap or touch at %s "
                      "(previous ends at %s)", what,
                      hexAddr(start).c_str(),
                      hexAddr(prev_end).c_str());
        prev_end = end;
        first = false;
    }
}

void
IntervalSet::insert(Addr start, Addr end)
{
    if (end <= start)
        return;

    // Find the first interval that could merge: the one whose start
    // is <= end and whose end >= start.
    auto it = byStart.upper_bound(start);
    if (it != byStart.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= start) {
            start = prev->first;
            end = std::max(end, prev->second);
            it = byStart.erase(prev);
        }
    }
    while (it != byStart.end() && it->first <= end) {
        end = std::max(end, it->second);
        it = byStart.erase(it);
    }
    byStart.emplace(start, end);
    if (audit::enabled())
        auditInvariants();
}

void
IntervalSet::erase(Addr start, Addr end)
{
    if (end <= start)
        return;

    auto it = byStart.upper_bound(start);
    if (it != byStart.begin()) {
        auto prev = std::prev(it);
        if (prev->second > start)
            it = prev;
    }
    while (it != byStart.end() && it->first < end) {
        const Addr is = it->first;
        const Addr ie = it->second;
        it = byStart.erase(it);
        if (is < start)
            byStart.emplace(is, start);
        if (ie > end) {
            byStart.emplace(end, ie);
            break;
        }
    }
    if (audit::enabled())
        auditInvariants();
}

bool
IntervalSet::contains(Addr addr) const
{
    auto it = byStart.upper_bound(addr);
    if (it == byStart.begin())
        return false;
    --it;
    return addr < it->second;
}

bool
IntervalSet::containsRange(Addr start, Addr end) const
{
    if (end <= start)
        return true;
    auto it = byStart.upper_bound(start);
    if (it == byStart.begin())
        return false;
    --it;
    return start >= it->first && end <= it->second;
}

bool
IntervalSet::intersectsRange(Addr start, Addr end) const
{
    if (end <= start)
        return false;
    auto it = byStart.lower_bound(start);
    if (it != byStart.begin()) {
        auto prev = std::prev(it);
        if (prev->second > start)
            return true;
    }
    return it != byStart.end() && it->first < end;
}

Addr
IntervalSet::coveredBytesInRange(Addr start, Addr end) const
{
    if (end <= start)
        return 0;
    Addr covered = 0;
    auto it = byStart.upper_bound(start);
    if (it != byStart.begin())
        --it;
    for (; it != byStart.end() && it->first < end; ++it) {
        const Addr lo = std::max(it->first, start);
        const Addr hi = std::min(it->second, end);
        if (hi > lo)
            covered += hi - lo;
    }
    return covered;
}

Addr
IntervalSet::totalLength() const
{
    Addr total = 0;
    for (const auto &[start, end] : byStart)
        total += end - start;
    return total;
}

std::optional<Interval>
IntervalSet::largest() const
{
    std::optional<Interval> best;
    for (const auto &[start, end] : byStart) {
        if (!best || end - start > best->length())
            best = Interval{start, end};
    }
    return best;
}

std::optional<Interval>
IntervalSet::findFit(Addr length, Addr align) const
{
    emv_assert(align != 0 && (align & (align - 1)) == 0,
               "findFit alignment must be a power of two");
    std::optional<Interval> best;
    for (const auto &[start, end] : byStart) {
        const Addr aligned = alignUp(start, align);
        if (aligned >= end || end - aligned < length)
            continue;
        if (!best || end - start < best->length())
            best = Interval{start, end};
    }
    if (!best)
        return std::nullopt;
    const Addr aligned = alignUp(best->start, align);
    return Interval{aligned, aligned + length};
}

std::optional<Interval>
IntervalSet::findFitHigh(Addr length, Addr align) const
{
    emv_assert(align != 0 && (align & (align - 1)) == 0,
               "findFitHigh alignment must be a power of two");
    for (auto it = byStart.rbegin(); it != byStart.rend(); ++it) {
        const Addr start = it->first;
        const Addr end = it->second;
        if (end - start < length)
            continue;
        const Addr placed = alignDown(end - length, align);
        if (placed >= start && end - placed >= length)
            return Interval{placed, placed + length};
    }
    return std::nullopt;
}

std::optional<Interval>
IntervalSet::findFitLowAbove(Addr length, Addr align,
                             Addr min_start) const
{
    emv_assert(align != 0 && (align & (align - 1)) == 0,
               "findFitLowAbove alignment must be a power of two");
    std::optional<Interval> fallback;
    for (const auto &[start, end] : byStart) {
        // Preferred placement: at or above min_start.
        const Addr placed = alignUp(std::max(start, min_start), align);
        if (placed < end && end - placed >= length)
            return Interval{placed, placed + length};
        // Remember the lowest fit anywhere as a fallback.
        if (!fallback) {
            const Addr any = alignUp(start, align);
            if (any < end && end - any >= length)
                fallback = Interval{any, any + length};
        }
    }
    return fallback;
}

std::vector<Interval>
IntervalSet::intervals() const
{
    std::vector<Interval> out;
    out.reserve(byStart.size());
    for (const auto &[start, end] : byStart)
        out.push_back(Interval{start, end});
    return out;
}

void
IntervalSet::serialize(ckpt::Encoder &enc) const
{
    enc.u64(byStart.size());
    for (const auto &[start, end] : byStart) {
        enc.u64(start);
        enc.u64(end);
    }
}

bool
IntervalSet::deserialize(ckpt::Decoder &dec)
{
    byStart.clear();
    const std::uint64_t n = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < n; ++i) {
        const Addr start = dec.u64();
        const Addr end = dec.u64();
        if (dec.ok())
            byStart[start] = end;
    }
    return dec.ok();
}

} // namespace emv
