#include "common/stats.hh"

#include <cmath>

#include "common/ckpt.hh"
#include "common/stat_registry.hh"

namespace emv {

void
Distribution::sample(double value)
{
    if (_count == 0) {
        _min = value;
        _max = value;
    } else {
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }
    ++_count;
    _sum += value;
    const double delta = value - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (value - _mean);
    ++_buckets[bucketIndex(value)];
}

unsigned
Distribution::bucketIndex(double value)
{
    if (!(value >= 1.0))  // Also catches NaN.
        return 0;
    const int exponent = std::ilogb(value);  // floor(log2(v)) >= 0.
    const unsigned bucket = static_cast<unsigned>(exponent) + 1;
    return bucket < kBuckets ? bucket : kBuckets - 1;
}

double
Distribution::percentile(double p) const
{
    if (_count == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 1.0);
    const double target = p * static_cast<double>(_count);
    std::uint64_t cumulative = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        cumulative += _buckets[b];
        if (static_cast<double>(cumulative) >= target &&
            _buckets[b] != 0) {
            // Representative value: geometric midpoint of the
            // bucket's [2^(b-1), 2^b) range, clamped to what was
            // actually observed.
            const double rep =
                b == 0 ? 0.5 : 1.5 * std::ldexp(1.0, b - 1);
            return std::min(std::max(rep, _min), _max);
        }
    }
    return _max;
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::mean() const
{
    return _count ? _mean : 0.0;
}

double
Distribution::variance() const
{
    return _count > 1 ? _m2 / static_cast<double>(_count - 1) : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

void
Distribution::serialize(ckpt::Encoder &enc) const
{
    enc.u64(_count);
    enc.f64(_sum);
    enc.f64(_min);
    enc.f64(_max);
    enc.f64(_mean);
    enc.f64(_m2);
    for (std::uint64_t b : _buckets)
        enc.u64(b);
}

bool
Distribution::deserialize(ckpt::Decoder &dec)
{
    _count = dec.u64();
    _sum = dec.f64();
    _min = dec.f64();
    _max = dec.f64();
    _mean = dec.f64();
    _m2 = dec.f64();
    for (auto &b : _buckets)
        b = dec.u64();
    return dec.ok();
}

StatGroup::StatGroup(std::string name) : _name(std::move(name))
{
    StatRegistry::instance().add(this);
}

StatGroup::~StatGroup()
{
    StatRegistry::instance().remove(this);
}

StatGroup::StatGroup(const StatGroup &other)
    : _name(other._name), parentPrefix(other.parentPrefix),
      parentGroup(other.parentGroup),
      counters(other.counters), scalars(other.scalars),
      distributions(other.distributions)
{
    StatRegistry::instance().add(this);
}

StatGroup &
StatGroup::operator=(const StatGroup &other)
{
    if (this == &other)
        return *this;
    // Registration is identity-based; only the contents change.
    _name = other._name;
    parentPrefix = other.parentPrefix;
    parentGroup = other.parentGroup;
    counters = other.counters;
    scalars = other.scalars;
    distributions = other.distributions;
    return *this;
}

std::string
StatGroup::fullName() const
{
    if (parentGroup)
        return parentGroup->fullName() + "." + _name;
    return parentPrefix.empty() ? _name : parentPrefix + "." + _name;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters[name];
}

Scalar &
StatGroup::scalar(const std::string &name)
{
    return scalars[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return distributions[name];
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

double
StatGroup::scalarValue(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? 0.0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters)
        c.reset();
    for (auto &[name, s] : scalars)
        s.reset();
    for (auto &[name, d] : distributions)
        d.reset();
}

void
StatGroup::visit(StatVisitor &visitor) const
{
    visitor.beginGroup(*this);
    for (const auto &[name, c] : counters)
        visitor.visitCounter(*this, name, c);
    for (const auto &[name, s] : scalars)
        visitor.visitScalar(*this, name, s);
    for (const auto &[name, d] : distributions)
        visitor.visitDistribution(*this, name, d);
    visitor.endGroup(*this);
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string full = fullName();
    for (const auto &[name, c] : counters)
        os << full << '.' << name << ' ' << c.value() << '\n';
    for (const auto &[name, s] : scalars)
        os << full << '.' << name << ' ' << s.value() << '\n';
    for (const auto &[name, d] : distributions) {
        os << full << '.' << name << ".count " << d.count() << '\n';
        os << full << '.' << name << ".mean " << d.mean() << '\n';
        os << full << '.' << name << ".stddev " << d.stddev() << '\n';
        os << full << '.' << name << ".min " << d.min() << '\n';
        os << full << '.' << name << ".max " << d.max() << '\n';
    }
}

void
StatGroup::serialize(ckpt::Encoder &enc) const
{
    enc.u64(counters.size());
    for (const auto &[name, c] : counters) {
        enc.str(name);
        enc.u64(c.value());
    }
    enc.u64(scalars.size());
    for (const auto &[name, s] : scalars) {
        enc.str(name);
        enc.f64(s.value());
    }
    enc.u64(distributions.size());
    for (const auto &[name, d] : distributions) {
        enc.str(name);
        d.serialize(enc);
    }
}

bool
StatGroup::deserialize(ckpt::Decoder &dec)
{
    resetAll();
    const std::uint64_t ncounters = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < ncounters; ++i) {
        const std::string name = dec.str();
        const std::uint64_t value = dec.u64();
        if (dec.ok())
            counter(name) += value;
    }
    const std::uint64_t nscalars = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < nscalars; ++i) {
        const std::string name = dec.str();
        const double value = dec.f64();
        if (dec.ok())
            scalar(name).set(value);
    }
    const std::uint64_t ndists = dec.u64();
    for (std::uint64_t i = 0; dec.ok() && i < ndists; ++i) {
        const std::string name = dec.str();
        distribution(name).deserialize(dec);
    }
    return dec.ok();
}

ConfidenceInterval
confidence95(const std::vector<double> &samples)
{
    ConfidenceInterval ci;
    const auto n = samples.size();
    if (n == 0)
        return ci;

    double sum = 0.0;
    for (double s : samples)
        sum += s;
    ci.mean = sum / static_cast<double>(n);
    if (n < 2)
        return ci;

    double sq = 0.0;
    for (double s : samples) {
        const double d = s - ci.mean;
        sq += d * d;
    }
    const double var = sq / static_cast<double>(n - 1);
    const double sem = std::sqrt(var / static_cast<double>(n));

    // Two-sided 95% Student-t critical values; index by df, clamped.
    static const double tTable[] = {
        0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    const std::size_t df = n - 1;
    const double t = df < std::size(tTable) ? tTable[df] : 1.96;
    ci.halfWidth = t * sem;
    return ci;
}

} // namespace emv
