#include "common/stats.hh"

#include <cmath>

namespace emv {

void
Distribution::sample(double value)
{
    if (_count == 0) {
        _min = value;
        _max = value;
    } else {
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }
    ++_count;
    _sum += value;
    const double delta = value - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (value - _mean);
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::mean() const
{
    return _count ? _mean : 0.0;
}

double
Distribution::variance() const
{
    return _count > 1 ? _m2 / static_cast<double>(_count - 1) : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters[name];
}

Scalar &
StatGroup::scalar(const std::string &name)
{
    return scalars[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return distributions[name];
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

double
StatGroup::scalarValue(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? 0.0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters)
        c.reset();
    for (auto &[name, s] : scalars)
        s.reset();
    for (auto &[name, d] : distributions)
        d.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters)
        os << _name << '.' << name << ' ' << c.value() << '\n';
    for (const auto &[name, s] : scalars)
        os << _name << '.' << name << ' ' << s.value() << '\n';
    for (const auto &[name, d] : distributions) {
        os << _name << '.' << name << ".mean " << d.mean() << '\n';
        os << _name << '.' << name << ".count " << d.count() << '\n';
    }
}

ConfidenceInterval
confidence95(const std::vector<double> &samples)
{
    ConfidenceInterval ci;
    const auto n = samples.size();
    if (n == 0)
        return ci;

    double sum = 0.0;
    for (double s : samples)
        sum += s;
    ci.mean = sum / static_cast<double>(n);
    if (n < 2)
        return ci;

    double sq = 0.0;
    for (double s : samples) {
        const double d = s - ci.mean;
        sq += d * d;
    }
    const double var = sq / static_cast<double>(n - 1);
    const double sem = std::sqrt(var / static_cast<double>(n));

    // Two-sided 95% Student-t critical values; index by df, clamped.
    static const double tTable[] = {
        0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    const std::size_t df = n - 1;
    const double t = df < std::size(tTable) ? tTable[df] : 1.96;
    ci.halfWidth = t * sem;
    return ci;
}

} // namespace emv
