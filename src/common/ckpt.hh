/**
 * @file
 * emv-ckpt-v1 — versioned binary checkpoint container.
 *
 * Layout (all integers little-endian):
 *
 *   magic    8 bytes   "EMVCKPT1"
 *   version  u32       kVersion
 *   nchunks  u32
 *   chunk[nchunks]:
 *     taglen  u32
 *     tag     taglen bytes (ASCII, e.g. "machine", "rng", "params")
 *     paylen  u64
 *     payload paylen bytes
 *     crc     u32      CRC32 of payload
 *
 * Every stateful layer packs its state into one Encoder and the
 * Writer wraps it into a tagged chunk; restore walks the file once,
 * verifies every CRC up front, then hands each layer a bounds-checked
 * Decoder over its chunk.  All failure paths are structured (latched
 * error strings, never exceptions or aborts): a corrupt, truncated,
 * or version-mismatched file must surface as `ok() == false`, not UB.
 *
 * Writer::writeFile is atomic (write to "<path>.tmp", fsync, rename)
 * so a crash mid-checkpoint can never destroy the last good file.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace emv::ckpt {

/** File format version; bump on any incompatible layout change. */
inline constexpr std::uint32_t kVersion = 1;

/** 8-byte file magic. */
inline constexpr char kMagic[8] = {'E', 'M', 'V', 'C',
                                   'K', 'P', 'T', '1'};

/** CRC-32 (IEEE 802.3 polynomial, as in zlib). */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

/** Append-only little-endian byte packer. */
class Encoder
{
  public:
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** Doubles travel as their IEEE-754 bit pattern (bit-exact). */
    void f64(double v);
    /** u64 length prefix + raw bytes. */
    void str(const std::string &s);
    void bytes(const void *data, std::size_t len);

    const std::vector<std::uint8_t> &buffer() const { return buf; }

  private:
    std::vector<std::uint8_t> buf;
};

/**
 * Bounds-checked reader over one chunk payload.
 *
 * Any out-of-bounds read latches a failure: ok() goes false, error()
 * explains, and every subsequent read returns zero without touching
 * memory.  Layers check ok() once at the end of deserialize().
 */
class Decoder
{
  public:
    Decoder(const std::uint8_t *data, std::size_t len)
        : base(data), size(len)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();
    bool bytes(void *out, std::size_t len);

    bool ok() const { return _ok; }
    bool atEnd() const { return pos >= size; }
    std::size_t remaining() const { return size - pos; }
    const std::string &error() const { return _error; }

    /** Latch a failure from caller-side semantic validation. */
    void fail(const std::string &why);

  private:
    bool take(void *out, std::size_t len);

    const std::uint8_t *base;
    std::size_t size;
    std::size_t pos = 0;
    bool _ok = true;
    std::string _error;
};

/** Assembles tagged chunks and writes the container atomically. */
class Writer
{
  public:
    /** Add one chunk; duplicate tags are a caller bug (overwrites). */
    void chunk(const std::string &tag, const Encoder &enc);

    /** Serialized container bytes. */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Atomic write: "<path>.tmp" + rename.  Returns false (with
     * *error set, if non-null) on any I/O failure; the previous file
     * at `path`, if any, is left untouched on failure.
     */
    bool writeFile(const std::string &path,
                   std::string *error = nullptr) const;

  private:
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
        chunks;
};

/**
 * Parses and validates a container: magic, version, chunk framing,
 * and every chunk CRC are checked before any layer sees a byte.
 */
class Reader
{
  public:
    /** Parse from memory.  False (error() set) on any defect. */
    bool parse(const std::uint8_t *data, std::size_t len);

    /** Read + parse a file. */
    bool loadFile(const std::string &path);

    const std::string &error() const { return _error; }

    bool hasChunk(const std::string &tag) const;

    /**
     * Decoder over a chunk payload (valid while the Reader lives).
     * A missing tag yields a Decoder with a latched failure.
     */
    Decoder chunk(const std::string &tag) const;

    /** Tags in file order. */
    std::vector<std::string> tags() const;

  private:
    bool fail(const std::string &why);

    std::vector<std::string> order;
    std::map<std::string, std::vector<std::uint8_t>> chunks;
    std::string _error;
};

} // namespace emv::ckpt
