/**
 * @file
 * Time-series telemetry: windowed metric snapshots and HDR-style
 * latency histograms.
 *
 * The stat registry (stats.hh) answers "what happened over the whole
 * run"; this layer answers "how did the run evolve".  Two pieces:
 *
 *   LatencyHistogram — a log-bucketed histogram with 16 linear
 *   sub-buckets per power-of-two octave (HdrHistogram's trick).
 *   Values below 16 are exact; above that the relative quantile
 *   error is bounded by 1/16 (6.25%), a 32x tighter bound than the
 *   one-octave Distribution buckets in stats.hh.  Histograms are
 *   mergeable and subtractable, so a per-window histogram is just
 *   the difference of two cumulative snapshots.
 *
 *   TelemetryRecorder — samples a set of registered counter/scalar
 *   sources every N trace ops (the *window*), computes per-window
 *   deltas and wall-clock rates, and appends one emv-metrics-v1
 *   JSON object per window to a JSONL sink.  Each record is built
 *   in memory and written with a single fwrite + flush, so a tail
 *   reader (emv_top) never observes a torn line.
 *
 * emv-metrics-v1 record (one JSON object per line):
 *
 *   {"schema":"emv-metrics-v1","window":K,
 *    "op_start":S,"op_end":E,"wall_ns":W,
 *    "rate":{"ops_per_sec":..,"host_ns_per_op":..},
 *    "deltas":{<counter>:delta,...,<scalar>:delta,...},
 *    "gauges":{<gauge>:value,...},
 *    "mode":"DualDirect",
 *    "latency":{"count":..,"mean":..,"max":..,
 *               "p50":..,"p99":..,"p999":..},
 *    "cumulative_latency":{"count":..,"p50":..,"p99":..,"p999":..},
 *    "events":[{"op":..,"kind":"downgrade","detail":".."},...]}
 *
 * Window semantics: windows cover [K*N, (K+1)*N) in recorder op
 * space (ops seen since the recorder was attached — emvsim attaches
 * at the start of the measured interval, so op space == measured
 * ops and the sum of per-window deltas reconciles exactly with the
 * run-end emv-stats-v1 aggregates).  A final partial window, if
 * any, is emitted by finish() with op_end < (K+1)*N.
 *
 * The recorder checkpoints its window cursor, baseline snapshots
 * and pending events (serialize()/deserialize()), so a resumed run
 * continues with the next window index and — under a deterministic
 * clock — byte-identical subsequent windows.
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/thread_safety.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::telemetry {

/**
 * Log-bucketed latency histogram with bounded relative error.
 *
 * Bucketing: values in [0, 16) map to one exact bucket each; a
 * value v >= 16 with bit width (exp+1) maps to sub-bucket
 * (v >> (exp-4)) of octave exp, i.e. 16 linear sub-buckets per
 * octave.  The representative value of a bucket is its midpoint,
 * so any quantile estimate is within half a sub-bucket width —
 * a relative error of at most 1/32 — of a true sample value.
 *
 * record() is integer-only (no floating point, no branches beyond
 * min/max), cheap enough for the per-translation hot path.
 */
class LatencyHistogram
{
  public:
    static constexpr unsigned kSubBucketBits = 4;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    /** Exact buckets [0,16) + 60 octaves x 16 sub-buckets. */
    static constexpr unsigned kBucketCount =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

    void record(std::uint64_t value);
    void reset();

    std::uint64_t count() const { return _count; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t min() const { return _count ? _min : 0; }
    std::uint64_t max() const { return _max; }
    double mean() const;

    /**
     * Quantile estimate for @p p in [0, 1]: the midpoint of the
     * bucket holding the ceil(p * count)-th smallest sample,
     * clamped to the observed [min, max].  p <= 0 returns min();
     * p >= 1 returns max(); an empty histogram returns 0.
     */
    double percentile(double p) const;

    /** Merge another histogram's samples into this one. */
    void merge(const LatencyHistogram &other);

    /**
     * Bucket-wise difference `now - prev` where @p prev is an
     * earlier snapshot of the same (monotonically growing)
     * histogram.  The delta's min/max are bucket *bounds* (the
     * exact extremes of the window are not recoverable), which is
     * within the same 1/16 error envelope as the quantiles.
     */
    static LatencyHistogram delta(const LatencyHistogram &now,
                                  const LatencyHistogram &prev);

    /** Raw occupancy (tests). */
    std::uint64_t bucketCount(unsigned index) const
    { return _buckets[index]; }

    /** Bucket index for @p value (tests). */
    static unsigned bucketIndex(std::uint64_t value);
    /** Lower bound / width of bucket @p index (tests). */
    static std::uint64_t bucketLow(unsigned index);
    static std::uint64_t bucketWidth(unsigned index);

    /** Checkpoint bit-exactly (sparse: only occupied buckets). */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = 0;
    std::uint64_t _max = 0;
    std::vector<std::uint64_t> _buckets =
        std::vector<std::uint64_t>(kBucketCount, 0);
};

/**
 * A latency histogram shared between threads: the merge path of the
 * in-process parallel engine.  Worker threads run thread-confined
 * LatencyHistograms on their hot paths (record() stays lock-free)
 * and merge() them here at batch boundaries; readers take a
 * snapshot() for windowing or reporting.  The lock is a leaf lock:
 * merge/snapshot never call out while holding it.
 */
class SharedLatencyHistogram
{
  public:
    /** Fold a worker's (thread-confined) histogram in. */
    void
    merge(const LatencyHistogram &other) EMV_EXCLUDES(mutex)
    {
        LockGuard lock(mutex);
        hist.merge(other);
    }

    /** Consistent copy for windowing / percentile queries. */
    LatencyHistogram
    snapshot() const EMV_EXCLUDES(mutex)
    {
        LockGuard lock(mutex);
        return hist;
    }

    std::uint64_t
    count() const EMV_EXCLUDES(mutex)
    {
        LockGuard lock(mutex);
        return hist.count();
    }

    void
    reset() EMV_EXCLUDES(mutex)
    {
        LockGuard lock(mutex);
        hist.reset();
    }

  private:
    mutable Mutex mutex;
    LatencyHistogram hist EMV_GUARDED_BY(mutex);
};

/** Construction knobs for a TelemetryRecorder. */
struct TelemetryConfig
{
    std::string path;                  //!< JSONL sink path.
    std::uint64_t windowOps = 100000;  //!< Trace ops per window.
};

/**
 * Windowed metrics recorder; see the file comment for the record
 * schema and window semantics.
 *
 * Lifecycle: construct, register sources (addCounter/addScalar/
 * addGauge/setLatencySource/setModeSource), openSink(), then call
 * onOp() once per trace op and finish() at the end of the run.
 * For checkpoint/resume, deserialize() after the sources are
 * registered (names are matched) and before openSink().
 *
 * Thread safety: the recorder is internally synchronized — every
 * public method takes the leaf `mutex`, so N worker threads may
 * tick onOp()/event() against one shared recorder and each JSONL
 * record is still a single atomic line with strictly increasing
 * window indices.  Two caveats the annotations encode: (a) window
 * emission runs the registered source getters *under the lock*, so
 * getters must not call back into the recorder (they read counters
 * and atomics; the registry leaf-lock rule in thread_safety.hh
 * applies); (b) registration and deserialize() belong to the setup
 * phase, before the recorder is shared.
 */
class TelemetryRecorder
{
  public:
    /** Monotonic nanosecond clock; injectable for deterministic
     *  tests.  The default uses std::chrono::steady_clock. */
    using ClockFn = std::function<std::uint64_t()>;

    explicit TelemetryRecorder(const TelemetryConfig &config,
                               ClockFn clock = nullptr);
    ~TelemetryRecorder();

    TelemetryRecorder(const TelemetryRecorder &) = delete;
    TelemetryRecorder &operator=(const TelemetryRecorder &) = delete;

    /** @{ Source registration (setup phase: before openSink /
     * deserialize, and before the recorder is shared).  Counter and
     * scalar sources are delta'd per window; gauges are sampled at
     * window close.  Names become JSON member names.  Getters run
     * under the recorder lock at window close: they must not call
     * back into the recorder. */
    void addCounter(const std::string &name,
                    std::function<std::uint64_t()> get)
        EMV_EXCLUDES(mutex);
    void addScalar(const std::string &name,
                   std::function<double()> get) EMV_EXCLUDES(mutex);
    void addGauge(const std::string &name,
                  std::function<double()> get) EMV_EXCLUDES(mutex);
    /** Cumulative per-translation latency histogram to window. */
    void setLatencySource(const LatencyHistogram *hist)
        EMV_EXCLUDES(mutex);
    /** Current translation mode, emitted per window. */
    void setModeSource(std::function<std::string()> get)
        EMV_EXCLUDES(mutex);
    /** @} */

    /**
     * Open (truncate) the JSONL sink and start the wall clock.
     * False with @p error set when the file cannot be created.
     */
    bool openSink(std::string *error = nullptr) EMV_EXCLUDES(mutex);

    /** Advance one trace op; emits a record at window boundaries.
     *  Safe from any thread; one uncontended lock per op (the
     *  batched engine will tick once per decoded block instead). */
    void onOp() EMV_EXCLUDES(mutex);

    /** Mark an event (mode transition, fault) in the current window. */
    void event(const std::string &kind, const std::string &detail)
        EMV_EXCLUDES(mutex);

    /** Emit the final partial window (if non-empty) and flush. */
    void finish() EMV_EXCLUDES(mutex);

    /** Re-baseline every source without emitting (stat reset). */
    void rebase() EMV_EXCLUDES(mutex);

    std::uint64_t windowIndex() const EMV_EXCLUDES(mutex);
    std::uint64_t opsObserved() const EMV_EXCLUDES(mutex);
    std::uint64_t windowsEmitted() const EMV_EXCLUDES(mutex);

    /**
     * Checkpoint the window cursor, baseline snapshots, pending
     * events and accumulated wall time.  deserialize() validates
     * that the registered source names match the saved ones.
     */
    void serialize(ckpt::Encoder &enc) const EMV_EXCLUDES(mutex);
    bool deserialize(ckpt::Decoder &dec) EMV_EXCLUDES(mutex);

  private:
    struct PendingEvent
    {
        std::uint64_t op = 0;
        std::string kind;
        std::string detail;
    };

    void closeWindow(bool final_window) EMV_REQUIRES(mutex);
    std::uint64_t now() const;

    /** Leaf lock over all recorder state (see class comment). */
    mutable Mutex mutex;

    const TelemetryConfig config;
    const ClockFn clock;
    std::FILE *sink EMV_GUARDED_BY(mutex) = nullptr;

    std::vector<std::pair<std::string,
                          std::function<std::uint64_t()>>> counters
        EMV_GUARDED_BY(mutex);
    std::vector<std::pair<std::string,
                          std::function<double()>>> scalars
        EMV_GUARDED_BY(mutex);
    std::vector<std::pair<std::string,
                          std::function<double()>>> gauges
        EMV_GUARDED_BY(mutex);
    const LatencyHistogram *latencySource EMV_GUARDED_BY(mutex) =
        nullptr;
    std::function<std::string()> modeSource EMV_GUARDED_BY(mutex);

    /** Baselines at the current window's open. */
    std::vector<std::uint64_t> counterBase EMV_GUARDED_BY(mutex);
    std::vector<double> scalarBase EMV_GUARDED_BY(mutex);
    LatencyHistogram latencyBase EMV_GUARDED_BY(mutex);

    std::uint64_t opsSeen EMV_GUARDED_BY(mutex) = 0;
    std::uint64_t windowStartOp EMV_GUARDED_BY(mutex) = 0;
    std::uint64_t _windowIndex EMV_GUARDED_BY(mutex) = 0;
    std::uint64_t emitted EMV_GUARDED_BY(mutex) = 0;

    /** Wall time attributed to the open window before the current
     *  mark (survives checkpoints); markNs is live-process only. */
    std::uint64_t windowWallNs EMV_GUARDED_BY(mutex) = 0;
    std::uint64_t markNs EMV_GUARDED_BY(mutex) = 0;
    bool markValid EMV_GUARDED_BY(mutex) = false;

    std::vector<PendingEvent> pendingEvents EMV_GUARDED_BY(mutex);
};

} // namespace emv::telemetry
