/**
 * @file
 * Lightweight statistics registry.
 *
 * The paper's methodology is counter-driven (perf + BadgerTrap): TLB
 * misses, page-walk cycles, walk memory references.  Every simulated
 * structure owns named Counter/Scalar stats registered in a
 * StatGroup so experiments can dump and diff them uniformly.
 */

#ifndef EMV_COMMON_STATS_HH
#define EMV_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace emv {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t delta)
    { _value += delta; return *this; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Accumulating floating-point scalar (e.g. cycles). */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double delta) { _value += delta; return *this; }
    void set(double value) { _value = value; }

    double value() const { return _value; }
    void reset() { _value = 0.0; }

  private:
    double _value = 0.0;
};

/**
 * Running distribution: count, sum, min, max, mean and sample
 * variance via Welford's algorithm.
 */
class Distribution
{
  public:
    void sample(double value);
    void reset();

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const;
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0;
};

/**
 * A named collection of stats.  Structures register their counters
 * by name; dump() emits "group.name value" lines.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    Counter &counter(const std::string &name);
    Scalar &scalar(const std::string &name);
    Distribution &distribution(const std::string &name);

    /** Value of a counter (0 if never touched). */
    std::uint64_t counterValue(const std::string &name) const;
    /** Value of a scalar (0 if never touched). */
    double scalarValue(const std::string &name) const;

    void resetAll();
    void dump(std::ostream &os) const;

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::map<std::string, Counter> counters;
    std::map<std::string, Scalar> scalars;
    std::map<std::string, Distribution> distributions;
};

/**
 * Compute mean and half-width of the 95% confidence interval for a
 * set of samples (Student-t for small n, as in the paper's Fig. 13
 * error bars with 30 trials).
 */
struct ConfidenceInterval
{
    double mean = 0.0;
    double halfWidth = 0.0;
};

ConfidenceInterval confidence95(const std::vector<double> &samples);

} // namespace emv

#endif // EMV_COMMON_STATS_HH
