/**
 * @file
 * Lightweight statistics registry.
 *
 * The paper's methodology is counter-driven (perf + BadgerTrap): TLB
 * misses, page-walk cycles, walk memory references.  Every simulated
 * structure owns named Counter/Scalar stats registered in a
 * StatGroup so experiments can dump and diff them uniformly.
 *
 * Groups auto-register in the process-wide StatRegistry (see
 * stat_registry.hh) under hierarchical names: a group named "mmu"
 * reparented under "machine" exports as "machine.mmu.l1_misses".
 * Exporters walk groups through the StatVisitor interface, so text,
 * JSON and CSV output all read the same structure.
 */

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace emv {

namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t delta)
    { _value += delta; return *this; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Accumulating floating-point scalar (e.g. cycles). */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double delta) { _value += delta; return *this; }
    void set(double value) { _value = value; }

    double value() const { return _value; }
    void reset() { _value = 0.0; }

  private:
    double _value = 0.0;
};

/**
 * Running distribution: count, sum, min, max, mean and sample
 * variance via Welford's algorithm, plus power-of-two buckets for
 * approximate percentiles (bucket b holds samples in [2^(b-1), 2^b);
 * everything below 1.0 lands in bucket 0).  Percentile estimates
 * are therefore exact to within one octave — plenty for "p99 walk
 * cycles" style observability without storing samples.
 */
class Distribution
{
  public:
    static constexpr unsigned kBuckets = 64;

    void sample(double value);
    void reset();

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const;
    double variance() const;
    double stddev() const;

    /**
     * Approximate @p p quantile (p in [0, 1]) from the power-of-two
     * buckets, clamped to the observed [min, max].
     *
     * Error bound: the estimate is the geometric midpoint
     * (1.5 * 2^(b-1)) of the one-octave bucket [2^(b-1), 2^b)
     * holding the target sample, so it sits within a factor of 2 of
     * a true sample value (at most 1.5x above the bucket floor, at
     * most 1.33x below its ceiling) — a ±2x bound, never tighter
     * than the octave.  p outside [0, 1] is clamped; an empty
     * distribution returns 0.  For tighter tails (the telemetry
     * p999), use telemetry::LatencyHistogram, whose 16 sub-buckets
     * per octave bound the relative error at 1/16 instead.
     */
    double percentile(double p) const;

    /** Raw bucket occupancy (tests, exporters). */
    const std::array<std::uint64_t, kBuckets> &buckets() const
    { return _buckets; }

    /** Checkpoint all running moments + buckets bit-exactly. */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    static unsigned bucketIndex(double value);

    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0;
    std::array<std::uint64_t, kBuckets> _buckets{};
};

class StatGroup;

/**
 * Visitor over a group's stats; the exporters (text/JSON/CSV) and
 * any future sink implement this.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void beginGroup(const StatGroup &group) { (void)group; }
    virtual void endGroup(const StatGroup &group) { (void)group; }
    virtual void visitCounter(const StatGroup &group,
                              const std::string &name,
                              const Counter &counter) = 0;
    virtual void visitScalar(const StatGroup &group,
                             const std::string &name,
                             const Scalar &scalar) = 0;
    virtual void visitDistribution(const StatGroup &group,
                                   const std::string &name,
                                   const Distribution &dist) = 0;
};

/**
 * A named collection of stats.  Structures register their counters
 * by name; dump() emits "group.name value" lines.  Every live group
 * is tracked by the process-wide StatRegistry; setParent() prefixes
 * the exported name ("machine" + "mmu" -> "machine.mmu").
 *
 * Thread-safety: registration/deregistration go through the
 * (synchronized) StatRegistry, so groups may be constructed and
 * destroyed from any thread.  The stats *inside* a group are plain
 * counters owned by the component's thread; cross-thread increments
 * need an external lock (see audit.cc) and exports run only at
 * quiescence.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &other);
    StatGroup &operator=(const StatGroup &other);

    Counter &counter(const std::string &name);
    Scalar &scalar(const std::string &name);
    Distribution &distribution(const std::string &name);

    /** Value of a counter (0 if never touched). */
    std::uint64_t counterValue(const std::string &name) const;
    /** Value of a scalar (0 if never touched). */
    double scalarValue(const std::string &name) const;

    void resetAll();
    void dump(std::ostream &os) const;

    /** Walk all stats through @p visitor (alphabetical per kind). */
    void visit(StatVisitor &visitor) const;

    const std::string &name() const { return _name; }

    /** Hierarchy prefix; fullName() becomes "<prefix>.<name>". */
    void setParent(const std::string &prefix)
    { parentPrefix = prefix; parentGroup = nullptr; }
    /**
     * Parent by group: fullName() recurses through @p group, so
     * reparenting an ancestor renames the whole subtree.  The parent
     * must outlive name queries on this group (member declaration
     * order gives this for the owner/child layout used here).
     */
    void setParent(const StatGroup *group)
    { parentGroup = group; parentPrefix.clear(); }
    const std::string &parent() const { return parentPrefix; }
    std::string fullName() const;

    /**
     * Checkpoint every stat by name.  deserialize() resets the group
     * first, so stats present at save time are restored bit-exactly
     * and stats created later start from zero as usual.
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    std::string _name;
    std::string parentPrefix;
    const StatGroup *parentGroup = nullptr;
    std::map<std::string, Counter> counters;
    std::map<std::string, Scalar> scalars;
    std::map<std::string, Distribution> distributions;
};

/**
 * Compute mean and half-width of the 95% confidence interval for a
 * set of samples (Student-t for small n, as in the paper's Fig. 13
 * error bars with 30 trials).
 */
struct ConfidenceInterval
{
    double mean = 0.0;
    double halfWidth = 0.0;
};

ConfidenceInterval confidence95(const std::vector<double> &samples);

} // namespace emv

