/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic() is for emv bugs (never the user's fault; aborts).
 * fatal() is for unusable user configuration (clean exit(1)).
 * warn() / inform() report conditions without stopping.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace emv {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort on an internal invariant violation (an emv bug). */
#define emv_panic(...)                                                 \
    ::emv::detail::panicImpl(__FILE__, __LINE__,                       \
                             ::emv::detail::format(__VA_ARGS__))

/** Exit cleanly on an unusable user configuration. */
#define emv_fatal(...)                                                 \
    ::emv::detail::fatalImpl(__FILE__, __LINE__,                       \
                             ::emv::detail::format(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define emv_warn(...)                                                  \
    ::emv::detail::warnImpl(::emv::detail::format(__VA_ARGS__))

/** Report normal operating status. */
#define emv_inform(...)                                                \
    ::emv::detail::informImpl(::emv::detail::format(__VA_ARGS__))

/** panic() when @p cond is false; message describes the invariant. */
#define emv_assert(cond, ...)                                          \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::emv::detail::panicImpl(__FILE__, __LINE__,               \
                ::emv::detail::format(__VA_ARGS__));                   \
        }                                                              \
    } while (0)

/** Globally silence warn()/inform() (used by benches). */
void setQuietLogging(bool quiet);
bool quietLogging();

} // namespace emv

