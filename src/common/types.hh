/**
 * @file
 * Fundamental address and page-size types shared by every emv module.
 *
 * The paper distinguishes three address spaces: guest virtual (gVA),
 * guest physical (gPA) and host physical (hPA).  We give each its own
 * strong type so that a gPA can never silently flow into an API that
 * expects an hPA — the class of bug that would invalidate a
 * translation-correctness study.
 */

#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace emv {

/** Raw 64-bit address payload. */
using Addr = std::uint64_t;

/** Simulated cycle count. */
using Cycles = std::uint64_t;

/** Page sizes supported by x86-64 paging. */
enum class PageSize : std::uint8_t {
    Size4K,
    Size2M,
    Size1G,
};

/** Number of bytes for a PageSize. */
constexpr Addr
pageBytes(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return 1ull << 12;
      case PageSize::Size2M: return 1ull << 21;
      case PageSize::Size1G: return 1ull << 30;
    }
    return 1ull << 12;
}

/** Number of page-offset bits for a PageSize. */
constexpr unsigned
pageShift(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return 12;
      case PageSize::Size2M: return 21;
      case PageSize::Size1G: return 30;
    }
    return 12;
}

/** Human-readable name ("4K", "2M", "1G"). */
const char *pageSizeName(PageSize size);

constexpr Addr kPage4K = 1ull << 12;
constexpr Addr kPage2M = 1ull << 21;
constexpr Addr kPage1G = 1ull << 30;

constexpr Addr KiB = 1ull << 10;
constexpr Addr MiB = 1ull << 20;
constexpr Addr GiB = 1ull << 30;

/** Round @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, Addr align)
{
    return addr & ~(align - 1);
}

/** Round @p addr up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr addr, Addr align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** True if @p addr is a multiple of @p align (power of two). */
constexpr bool
isAligned(Addr addr, Addr align)
{
    return (addr & (align - 1)) == 0;
}

/**
 * Strongly typed address.  The Tag parameter makes GuestVirtAddr,
 * GuestPhysAddr and HostPhysAddr mutually incompatible at compile
 * time while remaining trivially copyable 8-byte values.
 */
template <typename Tag>
class TypedAddr
{
  public:
    constexpr TypedAddr() = default;
    constexpr explicit TypedAddr(Addr value) : _value(value) {}

    constexpr Addr value() const { return _value; }

    constexpr auto operator<=>(const TypedAddr &) const = default;

    constexpr TypedAddr operator+(Addr delta) const
    { return TypedAddr(_value + delta); }
    constexpr TypedAddr operator-(Addr delta) const
    { return TypedAddr(_value - delta); }
    constexpr Addr operator-(TypedAddr other) const
    { return _value - other._value; }

    /** Page-align this address down for the given page size. */
    constexpr TypedAddr pageBase(PageSize size) const
    { return TypedAddr(alignDown(_value, pageBytes(size))); }

    /** Offset within the page of the given size. */
    constexpr Addr pageOffset(PageSize size) const
    { return _value & (pageBytes(size) - 1); }

  private:
    Addr _value = 0;
};

struct GuestVirtTag {};
struct GuestPhysTag {};
struct HostPhysTag {};

/** Guest virtual address (gVA). */
using GuestVirtAddr = TypedAddr<GuestVirtTag>;
/** Guest physical address (gPA). */
using GuestPhysAddr = TypedAddr<GuestPhysTag>;
/** Host physical address (hPA). */
using HostPhysAddr = TypedAddr<HostPhysTag>;

/** Format an address as 0x-prefixed hex. */
std::string hexAddr(Addr addr);

} // namespace emv

namespace std {

template <typename Tag>
struct hash<emv::TypedAddr<Tag>>
{
    size_t operator()(const emv::TypedAddr<Tag> &addr) const noexcept
    {
        return std::hash<emv::Addr>()(addr.value());
    }
};

} // namespace std

