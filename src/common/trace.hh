/**
 * @file
 * Debug-trace flags in the gem5 tradition.
 *
 * Each subsystem owns a named flag; EMV_TRACE(Walk, ...) compiles to
 * a single test of a global bitmask before any argument is
 * formatted, so disabled tracing costs one predictable branch on the
 * hot path.  Flags are enabled at runtime from a comma-separated
 * list ("Tlb,Walk", or "All"), and records go to stderr or to a
 * trace file.
 *
 * The Walk flag additionally produces BadgerTrap-style structured
 * records: one line per page walk with the gVA, the path taken, the
 * per-dimension reference counts, PSC/PTE-line hits and priced
 * cycles (emitted by core/mmu.cc).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace emv::trace {

/** One bit per traceable subsystem. */
enum class Flag : unsigned {
    Tlb,         //!< TLB hierarchy lookups, fills, flushes.
    Walk,        //!< Page walks: per-ref lines + per-walk records.
    Segment,     //!< Direct-segment register changes and checks.
    Filter,      //!< Escape-filter inserts and positives.
    Balloon,     //!< Balloon driver inflate/self-balloon.
    Compaction,  //!< Compaction daemon windows and migrations.
    Vmm,         //!< VMM slot/backing/segment events.
    Hotplug,     //!< Memory hot-add/remove, I/O-gap reclaim.
    Audit,       //!< EMV_CHECK/EMV_INVARIANT and differential-audit
                 //!< failure records (see common/audit.hh).
    Fault,       //!< Fault injection and recovery: DRAM faults,
                 //!< retries, downgrades (see fault/fault_plan.hh).
    NumFlags,
};

namespace detail {
/** Enabled-flag bitmask; zero (the common case) short-circuits.
 *  Atomic so worker threads may gate on it while the driver thread
 *  reconfigures; relaxed is enough — the mask is a filter, not a
 *  synchronization point.  The sink behind emitImpl() is guarded by
 *  a mutex in trace.cc and each record is written as one line. */
extern std::atomic<std::uint32_t> mask;
void emitImpl(Flag flag, const std::string &msg);
} // namespace detail

/** Cheap inline gate; false for every flag almost always. */
inline bool
enabled(Flag flag)
{
    const std::uint32_t m =
        detail::mask.load(std::memory_order_relaxed);
    return __builtin_expect(m != 0, 0) &&
           (m >> static_cast<unsigned>(flag)) & 1u;
}

/** Printable flag name ("Tlb", "Walk", ...). */
const char *flagName(Flag flag);

/** Parse one flag name (case sensitive, as documented). */
std::optional<Flag> flagByName(const std::string &name);

/**
 * Enable flags from a comma-separated list ("Tlb,Walk"; "All"
 * enables everything; "" disables everything).
 * @return false (and leaves flags untouched) on an unknown name.
 */
bool setFlags(const std::string &csv);

/** Disable all flags. */
void clearFlags();

/** Currently enabled flags, in declaration order. */
std::vector<Flag> enabledFlags();

/** Comma-separated list of every known flag (for usage strings). */
std::string allFlagNames();

/**
 * Send records to @p path (truncates).  Pass "" to return to
 * stderr.  @return false when the file cannot be opened.
 */
bool openTraceFile(const std::string &path);

/** Redirect records to an arbitrary stream (tests). nullptr resets
 *  to the stderr/file sink. */
void setSink(std::ostream *os);

/** Emit one record: "<flag>: <msg>\n".  Callers gate on enabled(). */
inline void
emit(Flag flag, const std::string &msg)
{
    detail::emitImpl(flag, msg);
}

} // namespace emv::trace

/**
 * Trace macro: formats printf-style arguments only when @p flag is
 * enabled.  Usage: EMV_TRACE(Walk, "gva=%#llx refs=%u", gva, refs);
 */
#define EMV_TRACE(flag, ...)                                           \
    do {                                                               \
        if (::emv::trace::enabled(::emv::trace::Flag::flag)) {         \
            ::emv::trace::emit(::emv::trace::Flag::flag,               \
                               ::emv::detail::format(__VA_ARGS__));    \
        }                                                              \
    } while (0)

