/**
 * @file
 * Tiny header-only JSON writer, validator and reader.
 *
 * The observability layer (stat export, bench artifacts, the emvsim
 * smoke test) needs machine-readable output without external
 * dependencies.  This implements the minimum honestly: a streaming
 * writer with correct string/number escaping, and a strict
 * recursive-descent parser used both as a well-formedness checker
 * and to read values back in tests (round-tripping the exported
 * stats).  Numbers parse to double; integers up to 2^53 survive
 * exactly, which covers every counter the simulator emits in
 * practice.
 */

#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace emv::json {

/**
 * Streaming writer.  Callers open/close objects and arrays; the
 * writer tracks nesting and comma placement.
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os, bool pretty = true)
        : os(os), pretty(pretty)
    {
    }

    Writer &beginObject() { open('{'); return *this; }
    Writer &endObject() { close('}'); return *this; }
    Writer &beginArray() { open('['); return *this; }
    Writer &endArray() { close(']'); return *this; }

    /** Key of the next member (objects only). */
    Writer &
    key(const std::string &name)
    {
        separate();
        writeString(name);
        os << (pretty ? ": " : ":");
        pendingKey = true;
        return *this;
    }

    Writer &value(const std::string &s) { separate(); writeString(s); return *this; }
    Writer &value(const char *s) { return value(std::string(s)); }
    Writer &value(bool b) { separate(); os << (b ? "true" : "false"); return *this; }

    Writer &
    value(double d)
    {
        separate();
        if (!std::isfinite(d)) {
            // JSON has no NaN/Inf; emit null rather than garbage.
            os << "null";
            return *this;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        os << buf;
        return *this;
    }

    Writer &
    value(std::uint64_t u)
    {
        separate();
        os << u;
        return *this;
    }

    Writer &value(std::int64_t i) { separate(); os << i; return *this; }
    Writer &value(int i) { return value(static_cast<std::int64_t>(i)); }
    Writer &value(unsigned u) { return value(static_cast<std::uint64_t>(u)); }

    /** key + value in one call. */
    template <typename T>
    Writer &
    member(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** Terminate the document with a newline (files end cleanly). */
    void finish() { os << '\n'; }

  private:
    void
    open(char c)
    {
        separate();
        os << c;
        stack.push_back(c);
        first = true;
    }

    void
    close(char c)
    {
        stack.pop_back();
        if (pretty && !first)
            indent();
        os << c;
        first = false;
    }

    /** Comma/newline bookkeeping before any value or key. */
    void
    separate()
    {
        if (pendingKey) {
            // Value directly follows its key, no comma.
            pendingKey = false;
            return;
        }
        if (!stack.empty()) {
            if (!first)
                os << ',';
            if (pretty)
                indent();
        }
        first = false;
    }

    void
    indent()
    {
        os << '\n' << std::string(2 * stack.size(), ' ');
    }

    void
    writeString(const std::string &s)
    {
        os << '"';
        for (char raw : s) {
            const unsigned char c = static_cast<unsigned char>(raw);
            switch (c) {
              case '"': os << "\\\""; break;
              case '\\': os << "\\\\"; break;
              case '\n': os << "\\n"; break;
              case '\r': os << "\\r"; break;
              case '\t': os << "\\t"; break;
              default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os << buf;
                } else {
                    os << raw;
                }
            }
        }
        os << '"';
    }

    std::ostream &os;
    bool pretty;
    bool first = true;
    bool pendingKey = false;
    std::vector<char> stack;
};

/** Parsed JSON value (tests, the smoke-test checker). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &name) const
    {
        if (kind != Kind::Object)
            return nullptr;
        auto it = object.find(name);
        return it == object.end() ? nullptr : &it->second;
    }
};

namespace detail {

class Parser
{
  public:
    Parser(const char *begin, const char *end,
           bool rejectDuplicateKeys = false)
        : p(begin), end(end), rejectDuplicateKeys(rejectDuplicateKeys)
    {
    }

    bool
    parseDocument(Value &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        return p == end;  // No trailing garbage.
    }

  private:
    static constexpr int kMaxDepth = 64;

    void
    skipWs()
    {
        while (p != end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            ++p;
    }

    bool
    literal(const char *word)
    {
        const char *q = p;
        while (*word) {
            if (q == end || *q != *word)
                return false;
            ++q;
            ++word;
        }
        p = q;
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > kMaxDepth || p == end)
            return false;
        switch (*p) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = Value::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out, int depth)
    {
        out.kind = Value::Kind::Object;
        ++p;  // '{'
        skipWs();
        if (p != end && *p == '}') {
            ++p;
            return true;
        }
        while (true) {
            skipWs();
            if (p == end || *p != '"')
                return false;
            std::string name;
            if (!parseString(name))
                return false;
            skipWs();
            if (p == end || *p != ':')
                return false;
            ++p;
            skipWs();
            Value member;
            if (!parseValue(member, depth + 1))
                return false;
            const bool inserted =
                out.object.emplace(std::move(name),
                                   std::move(member)).second;
            if (!inserted && rejectDuplicateKeys)
                return false;
            skipWs();
            if (p == end)
                return false;
            if (*p == ',') {
                ++p;
                continue;
            }
            if (*p == '}') {
                ++p;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray(Value &out, int depth)
    {
        out.kind = Value::Kind::Array;
        ++p;  // '['
        skipWs();
        if (p != end && *p == ']') {
            ++p;
            return true;
        }
        while (true) {
            skipWs();
            Value element;
            if (!parseValue(element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (p == end)
                return false;
            if (*p == ',') {
                ++p;
                continue;
            }
            if (*p == ']') {
                ++p;
                return true;
            }
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        ++p;  // '"'
        while (p != end && *p != '"') {
            const unsigned char c = static_cast<unsigned char>(*p);
            if (c < 0x20)
                return false;  // Raw control char.
            if (*p == '\\') {
                ++p;
                if (p == end)
                    return false;
                switch (*p) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        ++p;
                        if (p == end || !std::isxdigit(
                                static_cast<unsigned char>(*p)))
                            return false;
                        const char h = *p;
                        code = code * 16 +
                               (h <= '9' ? h - '0'
                                         : (h | 0x20) - 'a' + 10);
                    }
                    // Keep it simple: re-emit BMP code points as
                    // UTF-8; the exporter never writes surrogates.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default: return false;
                }
                ++p;
            } else {
                out += *p;
                ++p;
            }
        }
        if (p == end)
            return false;
        ++p;  // Closing '"'.
        return true;
    }

    bool
    parseNumber(Value &out)
    {
        const char *start = p;
        if (p != end && *p == '-')
            ++p;
        if (p == end || !std::isdigit(static_cast<unsigned char>(*p)))
            return false;
        // No leading zeros: "0" or [1-9][0-9]*.
        if (*p == '0') {
            ++p;
        } else {
            while (p != end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        if (p != end && *p == '.') {
            ++p;
            if (p == end ||
                !std::isdigit(static_cast<unsigned char>(*p)))
                return false;
            while (p != end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        if (p != end && (*p == 'e' || *p == 'E')) {
            ++p;
            if (p != end && (*p == '+' || *p == '-'))
                ++p;
            if (p == end ||
                !std::isdigit(static_cast<unsigned char>(*p)))
                return false;
            while (p != end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        out.kind = Value::Kind::Number;
        out.number = std::strtod(std::string(start, p).c_str(),
                                 nullptr);
        return true;
    }

    const char *p;
    const char *end;
    bool rejectDuplicateKeys;
};

} // namespace detail

/**
 * Strict parse; nullopt-style via the bool return.  With
 * @p rejectDuplicateKeys the parse also fails when an object repeats
 * a member name (RFC 8259 leaves this "implementation-defined"; our
 * exporters never emit duplicates, so validators treat them as
 * corruption).  The default keeps the first occurrence, matching the
 * lenient readers in tests.
 */
inline bool
parse(const std::string &text, Value &out,
      bool rejectDuplicateKeys = false)
{
    detail::Parser parser(text.data(), text.data() + text.size(),
                          rejectDuplicateKeys);
    return parser.parseDocument(out);
}

/** True when @p text is one well-formed JSON document. */
inline bool
wellFormed(const std::string &text)
{
    Value ignored;
    return parse(text, ignored);
}

} // namespace emv::json

