#include "common/audit.hh"

#include "common/thread_safety.hh"
#include "common/trace.hh"

namespace emv::audit {

namespace {

std::atomic<bool> failFastFlag{false};

/**
 * Counters live in a function-local StatGroup so the first audit use
 * (possibly from a static initializer in a test) still finds the
 * registry alive, and the group survives until process exit.
 *
 * The audit counters are the one stat group shared by every worker
 * thread, so their increments go through `mutex` (a leaf lock, per
 * thread_safety.hh: never held across emitRecord(), which takes the
 * trace sink lock).  Exporters read them through the registry
 * without this lock — only at quiescence, like all stat exports.
 */
struct AuditStats
{
    // The group's *structure* (name, parent, counter set) is fixed
    // during construction and never changes after; only the counter
    // values move, and those go through the guarded pointers below.
    // Exporters read it registry-side at quiescence.
    EMV_THREAD_CONFINED StatGroup group{"audit"};
    Mutex mutex;
    Counter *const checks EMV_PT_GUARDED_BY(mutex) =
        &group.counter("checks");
    Counter *const failures EMV_PT_GUARDED_BY(mutex) =
        &group.counter("failures");
    Counter *const mismatches EMV_PT_GUARDED_BY(mutex) =
        &group.counter("mismatches");

    AuditStats() { group.setParent("machine"); }
};

AuditStats &
auditStats()
{
    static AuditStats stats;
    return stats;
}

/** Route one audit record: trace sink if Audit is on, else warn(). */
void
emitRecord(const std::string &msg)
{
    if (trace::enabled(trace::Flag::Audit))
        trace::emit(trace::Flag::Audit, msg);
    else
        emv_warn("%s", msg.c_str());
}

} // namespace

namespace detail {

std::atomic<std::uint32_t> auditMask{0};

void
countCheck()
{
    auto &stats = auditStats();
    LockGuard lock(stats.mutex);
    ++*stats.checks;
}

void
failImpl(const char *kind, const char *expr, const char *file,
         int line, const std::string &msg)
{
    {
        auto &stats = auditStats();
        LockGuard lock(stats.mutex);
        ++*stats.failures;
    }
    const std::string record = emv::detail::format(
        "%s failed: %s (%s) at %s:%d", kind, msg.c_str(), expr, file,
        line);
    emitRecord(record);
    if (failFastFlag.load(std::memory_order_relaxed))
        emv_panic("audit %s", record.c_str());
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::auditMask.store(on ? 1u : 0u,
                            std::memory_order_relaxed);
    if (on)
        auditStats();  // Materialize machine.audit in the registry.
}

void
setFailFast(bool on)
{
    failFastFlag.store(on, std::memory_order_relaxed);
}

bool
failFast()
{
    return failFastFlag.load(std::memory_order_relaxed);
}

StatGroup &
stats()
{
    return auditStats().group;
}

std::uint64_t
checkCount()
{
    auto &stats = auditStats();
    LockGuard lock(stats.mutex);
    return stats.checks->value();
}

std::uint64_t
failureCount()
{
    auto &stats = auditStats();
    LockGuard lock(stats.mutex);
    return stats.failures->value();
}

std::uint64_t
mismatchCount()
{
    auto &stats = auditStats();
    LockGuard lock(stats.mutex);
    return stats.mismatches->value();
}

void
resetCounters()
{
    auto &stats = auditStats();
    LockGuard lock(stats.mutex);
    stats.group.resetAll();
}

void
reportMismatch(const std::string &msg)
{
    {
        auto &stats = auditStats();
        LockGuard lock(stats.mutex);
        ++*stats.mismatches;
    }
    emitRecord("mismatch: " + msg);
    if (failFastFlag.load(std::memory_order_relaxed))
        emv_panic("audit mismatch: %s", msg.c_str());
}

} // namespace emv::audit
