#include "common/audit.hh"

#include "common/trace.hh"

namespace emv::audit {

namespace {

bool failFastFlag = false;

/**
 * Counters live in a function-local StatGroup so the first audit use
 * (possibly from a static initializer in a test) still finds the
 * registry alive, and the group survives until process exit.
 */
struct AuditStats
{
    StatGroup group{"audit"};
    Counter &checks = group.counter("checks");
    Counter &failures = group.counter("failures");
    Counter &mismatches = group.counter("mismatches");

    AuditStats() { group.setParent("machine"); }
};

AuditStats &
auditStats()
{
    static AuditStats stats;
    return stats;
}

/** Route one audit record: trace sink if Audit is on, else warn(). */
void
emitRecord(const std::string &msg)
{
    if (trace::enabled(trace::Flag::Audit))
        trace::emit(trace::Flag::Audit, msg);
    else
        emv_warn("%s", msg.c_str());
}

} // namespace

namespace detail {

std::uint32_t auditMask = 0;

void
countCheck()
{
    ++auditStats().checks;
}

void
failImpl(const char *kind, const char *expr, const char *file,
         int line, const std::string &msg)
{
    ++auditStats().failures;
    const std::string record = emv::detail::format(
        "%s failed: %s (%s) at %s:%d", kind, msg.c_str(), expr, file,
        line);
    emitRecord(record);
    if (failFastFlag)
        emv_panic("audit %s", record.c_str());
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::auditMask = on ? 1u : 0u;
    if (on)
        auditStats();  // Materialize machine.audit in the registry.
}

void
setFailFast(bool on)
{
    failFastFlag = on;
}

bool
failFast()
{
    return failFastFlag;
}

StatGroup &
stats()
{
    return auditStats().group;
}

std::uint64_t
checkCount()
{
    return auditStats().checks.value();
}

std::uint64_t
failureCount()
{
    return auditStats().failures.value();
}

std::uint64_t
mismatchCount()
{
    return auditStats().mismatches.value();
}

void
resetCounters()
{
    auditStats().group.resetAll();
}

void
reportMismatch(const std::string &msg)
{
    ++auditStats().mismatches;
    emitRecord("mismatch: " + msg);
    if (failFastFlag)
        emv_panic("audit mismatch: %s", msg.c_str());
}

} // namespace emv::audit
