/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (workload address
 * streams, fragmentation injection, bad-page selection, Bloom-filter
 * hash matrices) draws from an explicitly seeded Rng so that every
 * experiment is exactly reproducible from its printed seed.
 */

#pragma once

#include <cstdint>

namespace emv {

namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt

/**
 * xoshiro256** generator seeded through SplitMix64.
 *
 * Small, fast, and high quality; good enough for workload synthesis
 * and far more reproducible across platforms than std::mt19937
 * pipelines through distribution objects.
 *
 * Thread-safety: none by design.  Each Rng is a deterministic
 * stream owned by exactly one component (machine, workload,
 * injector) and advanced only from that owner's thread; sharing a
 * stream across threads would make the draw order — and therefore
 * every checkpoint — schedule-dependent.  The threaded runner gives
 * each Machine its own seed instead of sharing streams.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound) with rejection for unbiasedness. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p);

    /**
     * Zipfian rank in [0, n) with exponent @p theta, via rejection
     * inversion (Gray et al.)-style approximation suitable for the
     * large n used by key-value workloads.
     */
    std::uint64_t nextZipf(std::uint64_t n, double theta);

    /**
     * Checkpoint the full generator state (xoshiro words + cached
     * Zipf parameters) so a restored stream continues bit-exactly.
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    std::uint64_t state[4];

    /** Cached parameters for nextZipf (recomputed when n changes). */
    std::uint64_t zipfN = 0;
    double zipfTheta = 0.0;
    double zipfZetaN = 0.0;
    double zipfAlpha = 0.0;
    double zipfEta = 0.0;
    double zipfZeta2 = 0.0;
};

/** SplitMix64 step, exposed for seeding derived generators. */
std::uint64_t splitMix64(std::uint64_t &state);

} // namespace emv

