/**
 * @file
 * Clang thread-safety (capability) annotations and an annotated
 * mutex, ahead of the in-process parallel engine (ROADMAP item 1).
 *
 * The threaded shard runner will run one Machine per worker thread;
 * everything a Machine touches is thread-confined *except* the
 * process-wide services: the StatRegistry, the telemetry recorder
 * and its merge paths, the trace/logging sinks, the audit counters
 * and the profiler records.  This header gives those services a
 * vocabulary to *prove* their locking discipline at compile time
 * instead of asserting it in comments:
 *
 *   EMV_CAPABILITY("mutex")  — marks a type as a lockable capability;
 *   EMV_GUARDED_BY(mu)       — data member readable/writable only
 *                              while holding mu;
 *   EMV_PT_GUARDED_BY(mu)    — pointee (not the pointer) guarded;
 *   EMV_REQUIRES(mu)         — function must be called with mu held;
 *   EMV_ACQUIRE / EMV_RELEASE— function acquires / releases mu;
 *   EMV_EXCLUDES(mu)         — function must NOT be called with mu
 *                              held (documents non-reentrancy);
 *   EMV_THREAD_CONFINED      — documentation-only: the member belongs
 *                              to the owning thread and is never
 *                              shared; emv_lint's unguarded-member
 *                              rule accepts it in mutex-owning
 *                              classes in place of EMV_GUARDED_BY.
 *
 * The attributes are Clang-only: under `clang++ -Wthread-safety`
 * (cmake -DEMV_THREAD_SAFETY=ON, or the `thread-safety` preset, or
 * the CI job of the same name) every unlocked access to annotated
 * state is a compile error; under GCC every macro expands to
 * nothing and the code is unchanged.
 *
 * Lock-ordering contract (enforced by annotation, documented here
 * once): every lock in this codebase is a *leaf* lock.  No code
 * holding one of these mutexes may call back into user-supplied
 * code (visitors, telemetry source getters, fault hooks) or acquire
 * a second emv lock.  Methods that run callbacks therefore snapshot
 * the guarded state under the lock, release it, and iterate the
 * snapshot (see StatRegistry::visitAll) — which is also why the
 * public entry points carry EMV_EXCLUDES(mutex) rather than
 * EMV_REQUIRES(mutex).
 */

#pragma once

#include <mutex>

#if defined(__clang__)
#define EMV_TS_ATTR(x) __attribute__((x))
#else
#define EMV_TS_ATTR(x)  // GCC: no capability analysis; expand empty.
#endif

#define EMV_CAPABILITY(x) EMV_TS_ATTR(capability(x))
#define EMV_SCOPED_CAPABILITY EMV_TS_ATTR(scoped_lockable)
#define EMV_GUARDED_BY(x) EMV_TS_ATTR(guarded_by(x))
#define EMV_PT_GUARDED_BY(x) EMV_TS_ATTR(pt_guarded_by(x))
#define EMV_ACQUIRE(...) EMV_TS_ATTR(acquire_capability(__VA_ARGS__))
#define EMV_RELEASE(...) EMV_TS_ATTR(release_capability(__VA_ARGS__))
#define EMV_TRY_ACQUIRE(...) \
    EMV_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define EMV_REQUIRES(...) \
    EMV_TS_ATTR(requires_capability(__VA_ARGS__))
#define EMV_EXCLUDES(...) EMV_TS_ATTR(locks_excluded(__VA_ARGS__))
#define EMV_RETURN_CAPABILITY(x) EMV_TS_ATTR(lock_returned(x))
#define EMV_NO_THREAD_SAFETY_ANALYSIS \
    EMV_TS_ATTR(no_thread_safety_analysis)

/** Documentation-only: owner-thread state in a mutex-owning class
 *  (no attribute exists for confinement; emv_lint reads it). */
#define EMV_THREAD_CONFINED

namespace emv {

/**
 * std::mutex wrapped as an annotated capability.  libstdc++'s
 * std::mutex carries no capability attributes, so guarding members
 * with it directly would make every EMV_GUARDED_BY a
 * -Wthread-safety-attributes warning; this wrapper is the one
 * blessed lock type for annotated classes.
 */
class EMV_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() EMV_ACQUIRE() { m.lock(); }
    void unlock() EMV_RELEASE() { m.unlock(); }
    bool tryLock() EMV_TRY_ACQUIRE(true) { return m.try_lock(); }

  private:
    std::mutex m;
};

/** RAII scope lock over Mutex (annotated std::lock_guard). */
class EMV_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mutex) EMV_ACQUIRE(mutex)
        : mutex(mutex)
    {
        mutex.lock();
    }

    ~LockGuard() EMV_RELEASE() { mutex.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mutex;
};

} // namespace emv
