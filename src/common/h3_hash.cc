#include "common/h3_hash.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace emv {

H3Hash::H3Hash(unsigned output_bits, std::uint64_t seed)
    : bits(output_bits)
{
    emv_assert(output_bits >= 1 && output_bits <= 32,
               "H3 output width %u out of range [1, 32]", output_bits);
    std::uint64_t sm = seed;
    const std::uint32_t mask =
        output_bits == 32 ? 0xffffffffu : ((1u << output_bits) - 1);
    for (auto &column : matrix)
        column = static_cast<std::uint32_t>(splitMix64(sm)) & mask;
}

std::uint32_t
H3Hash::operator()(std::uint64_t key) const
{
    std::uint32_t result = 0;
    std::uint64_t k = key;
    // XOR the column for every set key bit.
    for (unsigned i = 0; k != 0; ++i, k >>= 1) {
        if (k & 1)
            result ^= matrix[i];
    }
    return result;
}

H3Family::H3Family(unsigned num_hashes, unsigned output_bits,
                   std::uint64_t seed)
{
    hashes.reserve(num_hashes);
    std::uint64_t sm = seed;
    for (unsigned i = 0; i < num_hashes; ++i)
        hashes.emplace_back(output_bits, splitMix64(sm));
}

std::uint32_t
H3Family::hash(unsigned index, std::uint64_t key) const
{
    emv_assert(index < hashes.size(), "H3 family index %u out of range",
               index);
    return hashes[index](key);
}

} // namespace emv
