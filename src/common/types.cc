#include "common/types.hh"

#include <cstdio>

namespace emv {

const char *
pageSizeName(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return "4K";
      case PageSize::Size2M: return "2M";
      case PageSize::Size1G: return "1G";
    }
    return "?";
}

std::string
hexAddr(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace emv
