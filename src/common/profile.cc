#include "common/profile.hh"

#include <cstdio>

#include "common/logging.hh"

namespace emv::prof {

namespace detail {

std::atomic<bool> enabledFlag{false};
AtomicPhaseRecord records[static_cast<unsigned>(Phase::NumPhases)];

} // namespace detail

namespace {

constexpr const char *kPhaseNames[] = {
    "workload_gen", "machine_build", "translate",
    "fault_service", "balloon",      "compaction",
    "fragmentation", "stats_export",
};
static_assert(std::size(kPhaseNames) ==
              static_cast<unsigned>(Phase::NumPhases));

} // namespace

void
setEnabled(bool on)
{
    detail::enabledFlag.store(on, std::memory_order_relaxed);
}

void
reset()
{
    for (auto &rec : detail::records) {
        rec.calls.store(0, std::memory_order_relaxed);
        rec.ns.store(0, std::memory_order_relaxed);
    }
}

const char *
phaseName(Phase phase)
{
    const auto index = static_cast<unsigned>(phase);
    emv_assert(index < std::size(kPhaseNames),
               "unknown profile phase %u", index);
    return kPhaseNames[index];
}

detail::PhaseRecord
phaseRecord(Phase phase)
{
    const auto &rec = detail::records[static_cast<unsigned>(phase)];
    return {rec.calls.load(std::memory_order_relaxed),
            rec.ns.load(std::memory_order_relaxed)};
}

void
report(std::ostream &os)
{
    bool any = false;
    for (const auto &rec : detail::records)
        any = any ||
              rec.calls.load(std::memory_order_relaxed) != 0;
    if (!any) {
        os << "profile: no instrumented phases ran "
              "(enable with profile=1 before the run)\n";
        return;
    }

    os << "-- simulator profile --\n";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-14s %12s %12s %12s\n",
                  "phase", "calls", "total ms", "ns/call");
    os << buf;
    for (unsigned i = 0;
         i < static_cast<unsigned>(Phase::NumPhases); ++i) {
        const auto rec = phaseRecord(static_cast<Phase>(i));
        if (rec.calls == 0)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "%-14s %12llu %12.2f %12.1f\n", kPhaseNames[i],
                      static_cast<unsigned long long>(rec.calls),
                      static_cast<double>(rec.ns) / 1e6,
                      static_cast<double>(rec.ns) /
                          static_cast<double>(rec.calls));
        os << buf;
    }
}

} // namespace emv::prof
