#include "common/profile.hh"

#include <cstdio>

#include "common/logging.hh"

namespace emv::prof {

namespace detail {

bool enabledFlag = false;
PhaseRecord records[static_cast<unsigned>(Phase::NumPhases)];

} // namespace detail

namespace {

constexpr const char *kPhaseNames[] = {
    "workload_gen", "machine_build", "translate",
    "fault_service", "balloon",      "compaction",
    "fragmentation", "stats_export",
};
static_assert(std::size(kPhaseNames) ==
              static_cast<unsigned>(Phase::NumPhases));

} // namespace

void
setEnabled(bool on)
{
    detail::enabledFlag = on;
}

void
reset()
{
    for (auto &rec : detail::records)
        rec = detail::PhaseRecord{};
}

const char *
phaseName(Phase phase)
{
    const auto index = static_cast<unsigned>(phase);
    emv_assert(index < std::size(kPhaseNames),
               "unknown profile phase %u", index);
    return kPhaseNames[index];
}

detail::PhaseRecord
phaseRecord(Phase phase)
{
    return detail::records[static_cast<unsigned>(phase)];
}

void
report(std::ostream &os)
{
    bool any = false;
    for (const auto &rec : detail::records)
        any = any || rec.calls != 0;
    if (!any) {
        os << "profile: no instrumented phases ran "
              "(enable with profile=1 before the run)\n";
        return;
    }

    os << "-- simulator profile --\n";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-14s %12s %12s %12s\n",
                  "phase", "calls", "total ms", "ns/call");
    os << buf;
    for (unsigned i = 0;
         i < static_cast<unsigned>(Phase::NumPhases); ++i) {
        const auto &rec = detail::records[i];
        if (rec.calls == 0)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "%-14s %12llu %12.2f %12.1f\n", kPhaseNames[i],
                      static_cast<unsigned long long>(rec.calls),
                      static_cast<double>(rec.ns) / 1e6,
                      static_cast<double>(rec.ns) /
                          static_cast<double>(rec.calls));
        os << buf;
    }
}

} // namespace emv::prof
