/**
 * @file
 * H3 universal hash family.
 *
 * The escape filter (paper §V, §IX.C) is a 256-bit hardware parallel
 * Bloom filter with four H3 hash functions, following the signature
 * implementation study of Sanchez et al. [44].  An H3 hash of an
 * n-bit key is the XOR of per-bit random column vectors: for key
 * bits b_i, h(key) = XOR over set bits of matrix row q_i.  This is
 * trivially parallel in hardware (one XOR tree) which is why the
 * paper picks it.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace emv {

/**
 * One H3 hash function over 64-bit keys producing values in
 * [0, 2^outputBits).
 */
class H3Hash
{
  public:
    /**
     * @param output_bits Width of the hash output in bits (<= 32).
     * @param seed        Seed for the random matrix.
     */
    H3Hash(unsigned output_bits, std::uint64_t seed);

    /** Hash a 64-bit key. */
    std::uint32_t operator()(std::uint64_t key) const;

    unsigned outputBits() const { return bits; }

  private:
    unsigned bits;
    /** One random column per input bit. */
    std::uint32_t matrix[64];
};

/** A family of independent H3 functions sharing an output width. */
class H3Family
{
  public:
    H3Family(unsigned num_hashes, unsigned output_bits,
             std::uint64_t seed);

    std::uint32_t hash(unsigned index, std::uint64_t key) const;
    unsigned size() const
    { return static_cast<unsigned>(hashes.size()); }

  private:
    std::vector<H3Hash> hashes;
};

} // namespace emv

