#include "common/telemetry.hh"

#include <bit>
#include <chrono>
#include <cmath>
#include <sstream>

#include "common/ckpt.hh"
#include "common/json.hh"

namespace emv::telemetry {

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

unsigned
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<unsigned>(value);
    const unsigned exp =
        63u - static_cast<unsigned>(std::countl_zero(value));
    const unsigned shift = exp - kSubBucketBits;
    return (shift << kSubBucketBits) +
           static_cast<unsigned>(value >> shift);
}

std::uint64_t
LatencyHistogram::bucketLow(unsigned index)
{
    if (index < kSubBuckets)
        return index;
    const unsigned shift = (index >> kSubBucketBits) - 1;
    const std::uint64_t mantissa =
        index - (static_cast<std::uint64_t>(shift) << kSubBucketBits);
    return mantissa << shift;
}

std::uint64_t
LatencyHistogram::bucketWidth(unsigned index)
{
    if (index < kSubBuckets)
        return 1;
    const unsigned shift = (index >> kSubBucketBits) - 1;
    return std::uint64_t{1} << shift;
}

void
LatencyHistogram::record(std::uint64_t value)
{
    if (_count == 0 || value < _min)
        _min = value;
    if (value > _max)
        _max = value;
    ++_count;
    _sum += value;
    ++_buckets[bucketIndex(value)];
}

void
LatencyHistogram::reset()
{
    _count = 0;
    _sum = 0;
    _min = 0;
    _max = 0;
    std::fill(_buckets.begin(), _buckets.end(), 0);
}

double
LatencyHistogram::mean() const
{
    return _count ? static_cast<double>(_sum) /
                        static_cast<double>(_count)
                  : 0.0;
}

double
LatencyHistogram::percentile(double p) const
{
    if (_count == 0)
        return 0.0;
    if (p <= 0.0)
        return static_cast<double>(min());
    if (p >= 1.0)
        return static_cast<double>(max());
    const double count = static_cast<double>(_count);
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(p * count));
    if (rank < 1)
        rank = 1;
    if (rank > _count)
        rank = _count;
    std::uint64_t cumulative = 0;
    for (unsigned b = 0; b < kBucketCount; ++b) {
        cumulative += _buckets[b];
        if (cumulative >= rank) {
            const std::uint64_t width = bucketWidth(b);
            const double rep =
                width == 1
                    ? static_cast<double>(bucketLow(b))
                    : static_cast<double>(bucketLow(b)) +
                          static_cast<double>(width) / 2.0;
            const double lo = static_cast<double>(min());
            const double hi = static_cast<double>(max());
            return std::min(std::max(rep, lo), hi);
        }
    }
    return static_cast<double>(max());
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other._count == 0)
        return;
    if (_count == 0 || other._min < _min)
        _min = other._min;
    if (other._max > _max)
        _max = other._max;
    _count += other._count;
    _sum += other._sum;
    for (unsigned b = 0; b < kBucketCount; ++b)
        _buckets[b] += other._buckets[b];
}

LatencyHistogram
LatencyHistogram::delta(const LatencyHistogram &now,
                        const LatencyHistogram &prev)
{
    LatencyHistogram out;
    out._count = now._count >= prev._count
                     ? now._count - prev._count
                     : 0;
    out._sum = now._sum >= prev._sum ? now._sum - prev._sum : 0;
    unsigned first = kBucketCount;
    unsigned last = 0;
    for (unsigned b = 0; b < kBucketCount; ++b) {
        const std::uint64_t d =
            now._buckets[b] >= prev._buckets[b]
                ? now._buckets[b] - prev._buckets[b]
                : 0;
        out._buckets[b] = d;
        if (d != 0) {
            if (first == kBucketCount)
                first = b;
            last = b;
        }
    }
    if (out._count != 0 && first != kBucketCount) {
        // Exact window extremes are not recoverable from cumulative
        // snapshots; use the occupied buckets' bounds instead.
        out._min = bucketLow(first);
        out._max = bucketLow(last) + bucketWidth(last) - 1;
    }
    return out;
}

void
LatencyHistogram::serialize(ckpt::Encoder &enc) const
{
    enc.u64(_count);
    enc.u64(_sum);
    enc.u64(_min);
    enc.u64(_max);
    std::uint32_t occupied = 0;
    for (unsigned b = 0; b < kBucketCount; ++b)
        occupied += _buckets[b] != 0;
    enc.u32(occupied);
    for (unsigned b = 0; b < kBucketCount; ++b) {
        if (_buckets[b] != 0) {
            enc.u32(b);
            enc.u64(_buckets[b]);
        }
    }
}

bool
LatencyHistogram::deserialize(ckpt::Decoder &dec)
{
    reset();
    _count = dec.u64();
    _sum = dec.u64();
    _min = dec.u64();
    _max = dec.u64();
    const std::uint32_t occupied = dec.u32();
    for (std::uint32_t i = 0; i < occupied && dec.ok(); ++i) {
        const std::uint32_t b = dec.u32();
        const std::uint64_t n = dec.u64();
        if (b >= kBucketCount) {
            dec.fail("latency histogram: bucket index out of range");
            return false;
        }
        _buckets[b] = n;
    }
    return dec.ok();
}

// ---------------------------------------------------------------------
// TelemetryRecorder
// ---------------------------------------------------------------------

namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

TelemetryRecorder::TelemetryRecorder(const TelemetryConfig &config,
                                     ClockFn clock)
    : config(config),
      clock(clock ? std::move(clock) : ClockFn(&steadyNowNs))
{
}

TelemetryRecorder::~TelemetryRecorder()
{
    LockGuard lock(mutex);
    if (sink)
        std::fclose(sink);
}

void
TelemetryRecorder::addCounter(const std::string &name,
                              std::function<std::uint64_t()> get)
{
    LockGuard lock(mutex);
    counterBase.push_back(get ? get() : 0);
    counters.emplace_back(name, std::move(get));
}

void
TelemetryRecorder::addScalar(const std::string &name,
                             std::function<double()> get)
{
    LockGuard lock(mutex);
    scalarBase.push_back(get ? get() : 0.0);
    scalars.emplace_back(name, std::move(get));
}

void
TelemetryRecorder::addGauge(const std::string &name,
                            std::function<double()> get)
{
    LockGuard lock(mutex);
    gauges.emplace_back(name, std::move(get));
}

void
TelemetryRecorder::setLatencySource(const LatencyHistogram *hist)
{
    LockGuard lock(mutex);
    latencySource = hist;
    if (hist)
        latencyBase = *hist;
}

void
TelemetryRecorder::setModeSource(std::function<std::string()> get)
{
    LockGuard lock(mutex);
    modeSource = std::move(get);
}

bool
TelemetryRecorder::openSink(std::string *error)
{
    LockGuard lock(mutex);
    if (sink) {
        std::fclose(sink);
        sink = nullptr;
    }
    sink = std::fopen(config.path.c_str(), "wb");
    if (!sink) {
        if (error)
            *error = "cannot create '" + config.path + "'";
        return false;
    }
    markNs = now();
    markValid = true;
    return true;
}

void
TelemetryRecorder::onOp()
{
    LockGuard lock(mutex);
    ++opsSeen;
    if (opsSeen - windowStartOp >= config.windowOps)
        closeWindow(false);
}

void
TelemetryRecorder::event(const std::string &kind,
                         const std::string &detail)
{
    LockGuard lock(mutex);
    pendingEvents.push_back({opsSeen, kind, detail});
}

void
TelemetryRecorder::finish()
{
    LockGuard lock(mutex);
    closeWindow(true);
    if (sink) {
        std::fflush(sink);
        std::fclose(sink);
        sink = nullptr;
    }
}

void
TelemetryRecorder::rebase()
{
    LockGuard lock(mutex);
    for (std::size_t i = 0; i < counters.size(); ++i)
        counterBase[i] = counters[i].second();
    for (std::size_t i = 0; i < scalars.size(); ++i)
        scalarBase[i] = scalars[i].second();
    if (latencySource)
        latencyBase = *latencySource;
}

std::uint64_t
TelemetryRecorder::windowIndex() const
{
    LockGuard lock(mutex);
    return _windowIndex;
}

std::uint64_t
TelemetryRecorder::opsObserved() const
{
    LockGuard lock(mutex);
    return opsSeen;
}

std::uint64_t
TelemetryRecorder::windowsEmitted() const
{
    LockGuard lock(mutex);
    return emitted;
}

std::uint64_t
TelemetryRecorder::now() const
{
    return clock();
}

void
TelemetryRecorder::closeWindow(bool final_window)
{
    const std::uint64_t ops_in_window = opsSeen - windowStartOp;
    if (ops_in_window == 0)
        return;
    (void)final_window;

    if (markValid) {
        const std::uint64_t n = now();
        windowWallNs += n >= markNs ? n - markNs : 0;
        markNs = n;
    }

    std::ostringstream line;
    json::Writer w(line, /*pretty=*/false);
    w.beginObject();
    w.member("schema", "emv-metrics-v1");
    w.member("window", _windowIndex);
    w.member("op_start", windowStartOp);
    w.member("op_end", opsSeen);
    w.member("wall_ns", windowWallNs);

    const double wall = static_cast<double>(windowWallNs);
    const double ops = static_cast<double>(ops_in_window);
    w.key("rate");
    w.beginObject();
    w.member("ops_per_sec", wall > 0.0 ? ops * 1e9 / wall : 0.0);
    w.member("host_ns_per_op", wall > 0.0 ? wall / ops : 0.0);
    w.endObject();

    w.key("deltas");
    w.beginObject();
    for (std::size_t i = 0; i < counters.size(); ++i) {
        const std::uint64_t current = counters[i].second();
        const std::uint64_t base = counterBase[i];
        w.member(counters[i].first,
                 current >= base ? current - base : 0);
        counterBase[i] = current;
    }
    for (std::size_t i = 0; i < scalars.size(); ++i) {
        const double current = scalars[i].second();
        const double d = current - scalarBase[i];
        w.member(scalars[i].first, d > 0.0 ? d : 0.0);
        scalarBase[i] = current;
    }
    w.endObject();

    w.key("gauges");
    w.beginObject();
    for (const auto &[name, get] : gauges)
        w.member(name, get());
    w.endObject();

    w.member("mode", modeSource ? modeSource() : std::string());

    if (latencySource) {
        const LatencyHistogram windowed =
            LatencyHistogram::delta(*latencySource, latencyBase);
        w.key("latency");
        w.beginObject();
        w.member("count", windowed.count());
        w.member("mean", windowed.mean());
        w.member("max", static_cast<std::uint64_t>(windowed.max()));
        w.member("p50", windowed.percentile(0.50));
        w.member("p99", windowed.percentile(0.99));
        w.member("p999", windowed.percentile(0.999));
        w.endObject();
        w.key("cumulative_latency");
        w.beginObject();
        w.member("count", latencySource->count());
        w.member("mean", latencySource->mean());
        w.member("max", latencySource->max());
        w.member("p50", latencySource->percentile(0.50));
        w.member("p99", latencySource->percentile(0.99));
        w.member("p999", latencySource->percentile(0.999));
        w.endObject();
        latencyBase = *latencySource;
    }

    w.key("events");
    w.beginArray();
    for (const auto &ev : pendingEvents) {
        w.beginObject();
        w.member("op", ev.op);
        w.member("kind", ev.kind);
        w.member("detail", ev.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    if (sink) {
        // One fwrite per record: a tailing reader never sees a torn
        // line, and a crash loses at most the open window.
        const std::string text = line.str() + "\n";
        std::fwrite(text.data(), 1, text.size(), sink);
        std::fflush(sink);
    }

    windowStartOp = opsSeen;
    ++_windowIndex;
    ++emitted;
    windowWallNs = 0;
    pendingEvents.clear();
}

void
TelemetryRecorder::serialize(ckpt::Encoder &enc) const
{
    LockGuard lock(mutex);
    enc.u32(1);  // Telemetry chunk layout version.
    enc.u64(config.windowOps);
    enc.u64(opsSeen);
    enc.u64(windowStartOp);
    enc.u64(_windowIndex);
    enc.u64(emitted);
    // Fold the live mark into the persisted wall time so a resumed
    // window accounts the pre-interruption host time it consumed.
    std::uint64_t wall = windowWallNs;
    if (markValid) {
        const std::uint64_t n = now();
        wall += n >= markNs ? n - markNs : 0;
    }
    enc.u64(wall);

    enc.u32(static_cast<std::uint32_t>(counters.size()));
    for (std::size_t i = 0; i < counters.size(); ++i) {
        enc.str(counters[i].first);
        enc.u64(counterBase[i]);
    }
    enc.u32(static_cast<std::uint32_t>(scalars.size()));
    for (std::size_t i = 0; i < scalars.size(); ++i) {
        enc.str(scalars[i].first);
        enc.f64(scalarBase[i]);
    }
    latencyBase.serialize(enc);

    enc.u32(static_cast<std::uint32_t>(pendingEvents.size()));
    for (const auto &ev : pendingEvents) {
        enc.u64(ev.op);
        enc.str(ev.kind);
        enc.str(ev.detail);
    }
}

bool
TelemetryRecorder::deserialize(ckpt::Decoder &dec)
{
    LockGuard lock(mutex);
    const std::uint32_t version = dec.u32();
    if (dec.ok() && version != 1) {
        dec.fail("telemetry: unsupported chunk version " +
                 std::to_string(version));
        return false;
    }
    const std::uint64_t saved_window_ops = dec.u64();
    if (dec.ok() && saved_window_ops != config.windowOps) {
        dec.fail("telemetry: window size changed across resume (" +
                 std::to_string(saved_window_ops) + " vs " +
                 std::to_string(config.windowOps) + ")");
        return false;
    }
    opsSeen = dec.u64();
    windowStartOp = dec.u64();
    _windowIndex = dec.u64();
    emitted = dec.u64();
    windowWallNs = dec.u64();
    markValid = false;  // openSink() restarts the live mark.

    const std::uint32_t n_counters = dec.u32();
    if (dec.ok() && n_counters != counters.size()) {
        dec.fail("telemetry: counter source count mismatch");
        return false;
    }
    for (std::uint32_t i = 0; i < n_counters && dec.ok(); ++i) {
        const std::string name = dec.str();
        const std::uint64_t base = dec.u64();
        if (dec.ok() && name != counters[i].first) {
            dec.fail("telemetry: counter source '" +
                     counters[i].first + "' was '" + name +
                     "' at save time");
            return false;
        }
        counterBase[i] = base;
    }
    const std::uint32_t n_scalars = dec.u32();
    if (dec.ok() && n_scalars != scalars.size()) {
        dec.fail("telemetry: scalar source count mismatch");
        return false;
    }
    for (std::uint32_t i = 0; i < n_scalars && dec.ok(); ++i) {
        const std::string name = dec.str();
        const double base = dec.f64();
        if (dec.ok() && name != scalars[i].first) {
            dec.fail("telemetry: scalar source '" +
                     scalars[i].first + "' was '" + name +
                     "' at save time");
            return false;
        }
        scalarBase[i] = base;
    }
    if (!latencyBase.deserialize(dec))
        return false;

    pendingEvents.clear();
    const std::uint32_t n_events = dec.u32();
    for (std::uint32_t i = 0; i < n_events && dec.ok(); ++i) {
        PendingEvent ev;
        ev.op = dec.u64();
        ev.kind = dec.str();
        ev.detail = dec.str();
        pendingEvents.push_back(std::move(ev));
    }
    return dec.ok();
}

} // namespace emv::telemetry
