#include "common/stat_registry.hh"

#include <algorithm>

#include "common/json.hh"

namespace emv {

StatRegistry &
StatRegistry::instance()
{
    // Leaked singleton: StatGroups with static storage duration may
    // deregister after normal static destruction would have run.
    static StatRegistry *registry = new StatRegistry;
    return *registry;
}

void
StatRegistry::add(StatGroup *group)
{
    LockGuard lock(mutex);
    entries.push_back(group);
}

void
StatRegistry::remove(StatGroup *group)
{
    LockGuard lock(mutex);
    entries.erase(std::remove(entries.begin(), entries.end(), group),
                  entries.end());
}

std::vector<const StatGroup *>
StatRegistry::groups() const
{
    std::vector<const StatGroup *> out;
    {
        // Snapshot under the leaf lock; sort (and let callers
        // visit) outside it so callbacks may re-enter the registry.
        LockGuard lock(mutex);
        out.assign(entries.begin(), entries.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const StatGroup *a, const StatGroup *b) {
                         return a->fullName() < b->fullName();
                     });
    return out;
}

std::vector<const StatGroup *>
StatRegistry::groupsUnder(const std::string &prefix) const
{
    std::vector<const StatGroup *> out;
    for (const StatGroup *group : groups()) {
        const std::string full = group->fullName();
        if (full.size() >= prefix.size() &&
            full.compare(0, prefix.size(), prefix) == 0) {
            out.push_back(group);
        }
    }
    return out;
}

void
StatRegistry::visitAll(StatVisitor &visitor) const
{
    for (const StatGroup *group : groups())
        group->visit(visitor);
}

std::size_t
StatRegistry::size() const
{
    LockGuard lock(mutex);
    return entries.size();
}

void
TextStatExporter::visitCounter(const StatGroup &group,
                               const std::string &name,
                               const Counter &counter)
{
    os << group.fullName() << '.' << name << ' ' << counter.value()
       << '\n';
}

void
TextStatExporter::visitScalar(const StatGroup &group,
                              const std::string &name,
                              const Scalar &scalar)
{
    os << group.fullName() << '.' << name << ' ' << scalar.value()
       << '\n';
}

void
TextStatExporter::visitDistribution(const StatGroup &group,
                                    const std::string &name,
                                    const Distribution &dist)
{
    const std::string stem = group.fullName() + "." + name;
    os << stem << ".count " << dist.count() << '\n';
    os << stem << ".mean " << dist.mean() << '\n';
    os << stem << ".stddev " << dist.stddev() << '\n';
    os << stem << ".min " << dist.min() << '\n';
    os << stem << ".max " << dist.max() << '\n';
}

struct JsonStatExporter::Impl
{
    explicit Impl(std::ostream &os) : writer(os) {}

    json::Writer writer;
    bool began = false;
    bool inGroup = false;
    // Stats arrive grouped by kind (counters, then scalars, then
    // distributions), matching StatGroup::visit order.
    enum class Section { None, Counters, Scalars, Distributions };
    Section section = Section::None;

    void
    switchSection(Section next)
    {
        if (section == next)
            return;
        if (section != Section::None)
            writer.endObject();
        switch (next) {
          case Section::Counters: writer.key("counters"); break;
          case Section::Scalars: writer.key("scalars"); break;
          case Section::Distributions:
            writer.key("distributions");
            break;
          case Section::None: section = next; return;
        }
        writer.beginObject();
        section = next;
    }
};

JsonStatExporter::JsonStatExporter(std::ostream &os)
    : impl(std::make_unique<Impl>(os))
{
}

JsonStatExporter::~JsonStatExporter() = default;

void
JsonStatExporter::begin()
{
    impl->began = true;
    impl->writer.beginObject();
    impl->writer.member("schema", "emv-stats-v1");
    impl->writer.key("groups");
    impl->writer.beginArray();
}

void
JsonStatExporter::end()
{
    impl->writer.endArray();
    impl->writer.endObject();
}

void
JsonStatExporter::beginGroup(const StatGroup &group)
{
    impl->writer.beginObject();
    impl->writer.member("name", group.fullName());
    impl->inGroup = true;
    impl->section = Impl::Section::None;
}

void
JsonStatExporter::endGroup(const StatGroup &group)
{
    (void)group;
    impl->switchSection(Impl::Section::None);
    impl->writer.endObject();
    impl->inGroup = false;
}

void
JsonStatExporter::visitCounter(const StatGroup &group,
                               const std::string &name,
                               const Counter &counter)
{
    (void)group;
    impl->switchSection(Impl::Section::Counters);
    impl->writer.member(name, counter.value());
}

void
JsonStatExporter::visitScalar(const StatGroup &group,
                              const std::string &name,
                              const Scalar &scalar)
{
    (void)group;
    impl->switchSection(Impl::Section::Scalars);
    impl->writer.member(name, scalar.value());
}

void
JsonStatExporter::visitDistribution(const StatGroup &group,
                                    const std::string &name,
                                    const Distribution &dist)
{
    (void)group;
    impl->switchSection(Impl::Section::Distributions);
    impl->writer.key(name);
    impl->writer.beginObject();
    impl->writer.member("count", dist.count());
    impl->writer.member("mean", dist.mean());
    impl->writer.member("stddev", dist.stddev());
    impl->writer.member("min", dist.min());
    impl->writer.member("max", dist.max());
    impl->writer.member("p50", dist.percentile(0.50));
    impl->writer.member("p90", dist.percentile(0.90));
    impl->writer.member("p99", dist.percentile(0.99));
    impl->writer.endObject();
}

CsvStatExporter::CsvStatExporter(std::ostream &os) : os(os)
{
    os << "group,stat,kind,value\n";
}

void
CsvStatExporter::row(const StatGroup &group, const std::string &stat,
                     const char *kind, double value)
{
    os << group.fullName() << ',' << stat << ',' << kind << ','
       << value << '\n';
}

void
CsvStatExporter::visitCounter(const StatGroup &group,
                              const std::string &name,
                              const Counter &counter)
{
    row(group, name, "counter",
        static_cast<double>(counter.value()));
}

void
CsvStatExporter::visitScalar(const StatGroup &group,
                             const std::string &name,
                             const Scalar &scalar)
{
    row(group, name, "scalar", scalar.value());
}

void
CsvStatExporter::visitDistribution(const StatGroup &group,
                                   const std::string &name,
                                   const Distribution &dist)
{
    row(group, name + ".count", "distribution",
        static_cast<double>(dist.count()));
    row(group, name + ".mean", "distribution", dist.mean());
    row(group, name + ".stddev", "distribution", dist.stddev());
    row(group, name + ".min", "distribution", dist.min());
    row(group, name + ".max", "distribution", dist.max());
    row(group, name + ".p50", "distribution", dist.percentile(0.50));
    row(group, name + ".p90", "distribution", dist.percentile(0.90));
    row(group, name + ".p99", "distribution", dist.percentile(0.99));
}

void
exportStatsText(std::ostream &os,
                const std::vector<const StatGroup *> &groups)
{
    TextStatExporter exporter(os);
    for (const StatGroup *group : groups)
        group->visit(exporter);
}

void
exportStatsJson(std::ostream &os,
                const std::vector<const StatGroup *> &groups)
{
    JsonStatExporter exporter(os);
    exporter.begin();
    for (const StatGroup *group : groups)
        group->visit(exporter);
    exporter.end();
    os << '\n';
}

void
exportStatsCsv(std::ostream &os,
               const std::vector<const StatGroup *> &groups)
{
    CsvStatExporter exporter(os);
    for (const StatGroup *group : groups)
        group->visit(exporter);
}

} // namespace emv
