/**
 * @file
 * emv-ckpt-v1 container implementation (see ckpt.hh for the layout).
 */

#include "common/ckpt.hh"

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace emv::ckpt {

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table =
        makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// --------------------------------------------------------------- Encoder

void
Encoder::u8(std::uint8_t v)
{
    buf.push_back(v);
}

void
Encoder::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Encoder::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Encoder::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
Encoder::str(const std::string &s)
{
    u64(s.size());
    bytes(s.data(), s.size());
}

void
Encoder::bytes(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf.insert(buf.end(), p, p + len);
}

// --------------------------------------------------------------- Decoder

bool
Decoder::take(void *out, std::size_t len)
{
    if (!_ok)
        return false;
    if (len > size - pos || pos > size) {
        fail("read past end of chunk");
        return false;
    }
    std::memcpy(out, base + pos, len);
    pos += len;
    return true;
}

std::uint8_t
Decoder::u8()
{
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
}

std::uint32_t
Decoder::u32()
{
    std::uint8_t raw[4];
    if (!take(raw, sizeof(raw)))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
    return v;
}

std::uint64_t
Decoder::u64()
{
    std::uint8_t raw[8];
    if (!take(raw, sizeof(raw)))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
    return v;
}

double
Decoder::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
Decoder::str()
{
    const std::uint64_t len = u64();
    if (!_ok)
        return {};
    if (len > size - pos) {
        fail("string length past end of chunk");
        return {};
    }
    std::string s(reinterpret_cast<const char *>(base + pos),
                  static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return s;
}

bool
Decoder::bytes(void *out, std::size_t len)
{
    return take(out, len);
}

void
Decoder::fail(const std::string &why)
{
    if (_ok) {
        _ok = false;
        _error = why;
    }
}

// ---------------------------------------------------------------- Writer

void
Writer::chunk(const std::string &tag, const Encoder &enc)
{
    for (auto &c : chunks) {
        if (c.first == tag) {
            c.second = enc.buffer();
            return;
        }
    }
    chunks.emplace_back(tag, enc.buffer());
}

std::vector<std::uint8_t>
Writer::serialize() const
{
    Encoder out;
    out.bytes(kMagic, sizeof(kMagic));
    out.u32(kVersion);
    out.u32(static_cast<std::uint32_t>(chunks.size()));
    for (const auto &[tag, payload] : chunks) {
        out.u32(static_cast<std::uint32_t>(tag.size()));
        out.bytes(tag.data(), tag.size());
        out.u64(payload.size());
        out.bytes(payload.data(), payload.size());
        out.u32(crc32(payload.data(), payload.size()));
    }
    return out.buffer();
}

bool
Writer::writeFile(const std::string &path, std::string *error) const
{
    const std::vector<std::uint8_t> data = serialize();
    const std::string tmp = path + ".tmp";

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        if (error)
            *error = "cannot open '" + tmp +
                     "': " + std::strerror(errno);
        return false;
    }
    bool ok = data.empty() ||
              std::fwrite(data.data(), 1, data.size(), f) ==
                  data.size();
    ok = (std::fflush(f) == 0) && ok;
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        if (error)
            *error = "short write to '" + tmp +
                     "': " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "rename '" + tmp + "' -> '" + path +
                     "': " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

// ---------------------------------------------------------------- Reader

bool
Reader::fail(const std::string &why)
{
    _error = why;
    order.clear();
    chunks.clear();
    return false;
}

bool
Reader::parse(const std::uint8_t *data, std::size_t len)
{
    order.clear();
    chunks.clear();
    _error.clear();

    Decoder d(data, len);
    char magic[8];
    if (!d.bytes(magic, sizeof(magic)))
        return fail("truncated file: missing magic");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return fail("bad magic: not an emv-ckpt file");
    const std::uint32_t version = d.u32();
    if (!d.ok())
        return fail("truncated file: missing version");
    if (version != kVersion)
        return fail("unsupported checkpoint version " +
                    std::to_string(version) + " (expected " +
                    std::to_string(kVersion) + ")");
    const std::uint32_t nchunks = d.u32();
    if (!d.ok())
        return fail("truncated file: missing chunk count");

    for (std::uint32_t i = 0; i < nchunks; ++i) {
        const std::uint32_t taglen = d.u32();
        if (!d.ok() || taglen > d.remaining() || taglen == 0 ||
            taglen > 256)
            return fail("chunk " + std::to_string(i) +
                        ": bad tag length");
        std::string tag(taglen, '\0');
        d.bytes(tag.data(), taglen);
        const std::uint64_t paylen = d.u64();
        if (!d.ok() || paylen > d.remaining())
            return fail("chunk '" + tag +
                        "': truncated payload");
        std::vector<std::uint8_t> payload(
            static_cast<std::size_t>(paylen));
        if (paylen)
            d.bytes(payload.data(), payload.size());
        const std::uint32_t storedCrc = d.u32();
        if (!d.ok())
            return fail("chunk '" + tag + "': truncated CRC");
        const std::uint32_t actual =
            crc32(payload.data(), payload.size());
        if (actual != storedCrc)
            return fail("chunk '" + tag + "': CRC mismatch");
        if (chunks.count(tag))
            return fail("chunk '" + tag + "': duplicate tag");
        order.push_back(tag);
        chunks.emplace(tag, std::move(payload));
    }
    if (!d.atEnd())
        return fail("trailing bytes after last chunk");
    return true;
}

bool
Reader::loadFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return fail("cannot open '" + path +
                    "': " + std::strerror(errno));
    std::vector<std::uint8_t> data;
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.insert(data.end(), buf, buf + n);
    const bool readOk = std::ferror(f) == 0;
    std::fclose(f);
    if (!readOk)
        return fail("read error on '" + path + "'");
    return parse(data.data(), data.size());
}

bool
Reader::hasChunk(const std::string &tag) const
{
    return chunks.count(tag) != 0;
}

Decoder
Reader::chunk(const std::string &tag) const
{
    auto it = chunks.find(tag);
    if (it == chunks.end()) {
        Decoder d(nullptr, 0);
        d.fail("missing chunk '" + tag + "'");
        return d;
    }
    return Decoder(it->second.data(), it->second.size());
}

std::vector<std::string>
Reader::tags() const
{
    return order;
}

} // namespace emv::ckpt
