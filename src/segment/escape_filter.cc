#include "segment/escape_filter.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"
#include "common/trace.hh"

namespace emv::segment {

namespace {

unsigned
log2Bits(unsigned bits)
{
    unsigned out = 0;
    while ((1u << out) < bits)
        ++out;
    return out;
}

} // namespace

EscapeFilter::EscapeFilter(unsigned bits, unsigned num_hashes,
                           std::uint64_t seed)
    : bits(bits), hashes(num_hashes, log2Bits(bits), seed),
      words((bits + 63) / 64, 0)
{
    emv_assert(bits >= 64 && (bits & (bits - 1)) == 0,
               "escape filter size must be a power of two >= 64");
    emv_assert(num_hashes >= 1, "escape filter needs >= 1 hash");
}

void
EscapeFilter::insertPage(Addr addr)
{
    const std::uint64_t page = addr >> 12;
    for (unsigned h = 0; h < hashes.size(); ++h) {
        const unsigned bit = hashes.hash(h, page) & (bits - 1);
        words[bit >> 6] |= 1ull << (bit & 63);
    }
    ++inserted;
    ++_stats.counter("inserts");
    // A Bloom filter may report false positives (harmless: the page
    // escapes to paging) but never false negatives — a miss on an
    // inserted page would translate through the stale segment mapping.
    EMV_CHECK(mayContain(addr),
              "escape filter false negative for page %s",
              hexAddr(addr).c_str());
    EMV_INVARIANT(popcount() <= std::min<unsigned>(
                      bits, inserted * numHashes()),
                  "escape filter has %u bits set after %u inserts "
                  "with %u hashes", popcount(), inserted, numHashes());
    EMV_TRACE(Filter, "insert page=%s inserted=%llu set_bits=%u",
              hexAddr(addr).c_str(),
              static_cast<unsigned long long>(inserted), popcount());
}

bool
EscapeFilter::mayContain(Addr addr) const
{
    if (inserted == 0)
        return false;
    const std::uint64_t page = addr >> 12;
    for (unsigned h = 0; h < hashes.size(); ++h) {
        const unsigned bit = hashes.hash(h, page) & (bits - 1);
        if (!(words[bit >> 6] & (1ull << (bit & 63))))
            return false;
    }
    ++_stats.counter("positives");
    return true;
}

void
EscapeFilter::clear()
{
    EMV_TRACE(Filter, "clear (had %llu pages)",
              static_cast<unsigned long long>(inserted));
    for (auto &word : words)
        word = 0;
    inserted = 0;
}

unsigned
EscapeFilter::popcount() const
{
    unsigned total = 0;
    for (auto word : words)
        total += static_cast<unsigned>(std::popcount(word));
    return total;
}

double
EscapeFilter::fillRatio() const
{
    return static_cast<double>(popcount()) /
           static_cast<double>(bits);
}

double
EscapeFilter::expectedFalsePositiveRate() const
{
    const double k = static_cast<double>(hashes.size());
    const double n = static_cast<double>(inserted);
    const double m = static_cast<double>(bits);
    const double fill = 1.0 - std::exp(-k * n / m);
    return std::pow(fill, k);
}

void
EscapeFilter::serialize(ckpt::Encoder &enc) const
{
    enc.u32(bits);
    enc.u32(inserted);
    enc.u64(words.size());
    for (std::uint64_t w : words)
        enc.u64(w);
    _stats.serialize(enc);
}

bool
EscapeFilter::deserialize(ckpt::Decoder &dec)
{
    const unsigned savedBits = dec.u32();
    if (dec.ok() && savedBits != bits) {
        dec.fail("escape_filter: size mismatch");
        return false;
    }
    inserted = dec.u32();
    const std::uint64_t n = dec.u64();
    if (dec.ok() && n != words.size()) {
        dec.fail("escape_filter: word count mismatch");
        return false;
    }
    for (auto &w : words)
        w = dec.u64();
    if (!_stats.deserialize(dec))
        return false;
    return dec.ok();
}

} // namespace emv::segment
