/**
 * @file
 * Direct-segment register file (§II.B, §III).
 *
 * Three registers per hardware context map a contiguous chunk of one
 * address space onto a contiguous chunk of the next: BASE and LIMIT
 * bound the source range, OFFSET is the (two's-complement) distance
 * to the destination.  An address V with BASE <= V < LIMIT
 * translates to V + OFFSET by pure addition — no TLB entry, no walk.
 *
 * The proposed hardware has two such register sets: the *guest
 * segment* (BASE_G/LIMIT_G/OFFSET_G, gVA→gPA) and the *VMM segment*
 * (BASE_V/LIMIT_V/OFFSET_V, gPA→hPA).  Setting BASE == LIMIT
 * disables a set — the paper's trick for nullifying modes.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace emv::segment {

/** One BASE/LIMIT/OFFSET register set. */
class SegmentRegs
{
  public:
    /** Disabled segment (BASE == LIMIT == 0). */
    constexpr SegmentRegs() = default;

    /**
     * @param base   First source address covered.
     * @param limit  One past the last source address covered.
     * @param offset Destination minus source (wrapping uint64).
     */
    constexpr SegmentRegs(Addr base, Addr limit, std::uint64_t offset)
        : _base(base), _limit(limit), _offset(offset)
    {}

    /** Build from source base/length and destination base. */
    static constexpr SegmentRegs
    fromRanges(Addr src_base, Addr length, Addr dst_base)
    {
        return SegmentRegs(src_base, src_base + length,
                           dst_base - src_base);
    }

    /** True when BASE < LIMIT (paper: BASE==LIMIT disables). */
    constexpr bool enabled() const { return _base < _limit; }

    /** Base-bound check: BASE <= addr < LIMIT. */
    constexpr bool
    contains(Addr addr) const
    {
        return enabled() && addr >= _base && addr < _limit;
    }

    /** Translate (caller must have checked contains()). */
    constexpr Addr translate(Addr addr) const { return addr + _offset; }

    /** Disable (BASE = LIMIT = 0). */
    void clear() { _base = 0; _limit = 0; _offset = 0; }

    constexpr Addr base() const { return _base; }
    constexpr Addr limit() const { return _limit; }
    constexpr std::uint64_t offset() const { return _offset; }
    constexpr Addr length() const
    { return enabled() ? _limit - _base : 0; }

    std::string toString() const;

    constexpr bool operator==(const SegmentRegs &) const = default;

  private:
    Addr _base = 0;
    Addr _limit = 0;
    std::uint64_t _offset = 0;
};

} // namespace emv::segment

