/**
 * @file
 * Escape filter (§V): holes in a direct segment.
 *
 * A single bad physical page would otherwise forbid a multi-GB
 * direct segment.  The escape filter is a small hardware Bloom
 * filter checked in parallel with the segment registers: pages whose
 * page number hits the filter "escape" to conventional paging, where
 * the OS/VMM has remapped them to healthy frames.  False positives
 * are safe (the VMM maps those pages too) and merely cost a walk.
 *
 * The paper's configuration — a 256-bit parallel Bloom filter with
 * four H3 hash functions [44] — keeps the false-positive penalty
 * near zero for up to 16 faulty pages (Fig. 13).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/h3_hash.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::segment {

/** Bloom filter over page numbers. */
class EscapeFilter
{
  public:
    /**
     * @param bits       Filter size in bits (power of two; paper: 256).
     * @param num_hashes H3 hash functions (paper: 4).
     * @param seed       Seed for the H3 matrices.
     */
    explicit EscapeFilter(unsigned bits = 256, unsigned num_hashes = 4,
                          std::uint64_t seed = 0x1234);

    /** Add the page containing @p addr to the filter. */
    void insertPage(Addr addr);

    /** True if the page containing @p addr *may* be escaped. */
    bool mayContain(Addr addr) const;

    /** Drop all escaped pages (segment rebuilt). */
    void clear();

    /** Bits set (for occupancy diagnostics). */
    unsigned popcount() const;

    /** Fraction of filter bits set, popcount() / sizeBits(). */
    double fillRatio() const;

    /**
     * True once fillRatio() reaches @p max_fill: the popcount bound
     * past which lookups degenerate into false positives and the
     * filter no longer discriminates — the trigger for retiring the
     * segment it guards (Table III downgrade).
     */
    bool saturated(double max_fill) const
    { return fillRatio() >= max_fill; }

    /** Number of pages inserted since the last clear(). */
    unsigned insertedPages() const { return inserted; }

    /**
     * Analytic false-positive probability for the current number of
     * inserted pages: (1 - e^(-k*n/m))^k.
     */
    double expectedFalsePositiveRate() const;

    unsigned sizeBits() const { return bits; }
    unsigned numHashes() const { return hashes.size(); }

    StatGroup &stats() { return _stats; }

    /**
     * Checkpoint the bit words, insert count and stats.  The H3
     * matrices are rebuilt deterministically from the construction
     * seed and are intentionally not stored.
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    unsigned bits;
    unsigned inserted = 0;
    H3Family hashes;
    std::vector<std::uint64_t> words;
    mutable StatGroup _stats{"escape_filter"};
};

} // namespace emv::segment

