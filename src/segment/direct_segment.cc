#include "segment/direct_segment.hh"

#include "common/logging.hh"

namespace emv::segment {

std::string
SegmentRegs::toString() const
{
    if (!enabled())
        return "[disabled]";
    return detail::format("[%s, %s) +%s", hexAddr(_base).c_str(),
                          hexAddr(_limit).c_str(),
                          hexAddr(_offset).c_str());
}

} // namespace emv::segment
