/**
 * @file
 * Set-associative TLB with LRU replacement.
 *
 * One structure serves two entry kinds, mirroring the evaluation
 * platform (Table VI: "EPT TLB/NTLB shares the TLB — no separate
 * structure"):
 *
 *  - Guest entries: complete gVA→hPA translations;
 *  - Nested entries: gPA→hPA translations cached during 2D walks.
 *
 * Because nested entries occupy the same ways as guest entries, a
 * virtualized run loses effective TLB capacity — the mechanism
 * behind the paper's observed 1.3–1.6x TLB-miss inflation (§IX.A).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::tlb {

/** What a TLB entry translates. */
enum class EntryKind : std::uint8_t {
    Guest,   //!< gVA→hPA (or native VA→PA).
    Nested,  //!< gPA→hPA, cached by the 2D walker.
};

/** Successful lookup result. */
struct TlbHit
{
    Addr frame = 0;           //!< Base of the translated page.
    PageSize size = PageSize::Size4K;
};

/**
 * A single set-associative translation buffer.  Entries carry their
 * page size; lookups probe one size class at a time (the caller
 * decides which classes this structure holds).
 */
class Tlb
{
  public:
    Tlb(std::string name, unsigned sets, unsigned ways);

    /**
     * Probe for the page of @p size containing @p addr.
     * @return The mapping on a hit (LRU updated).
     */
    std::optional<TlbHit> lookup(EntryKind kind, Addr addr,
                                 PageSize size);

    /** Probe all three size classes, largest benefit first. */
    std::optional<TlbHit> lookupAny(EntryKind kind, Addr addr);

    /** Install a mapping (replaces LRU in the set). */
    void insert(EntryKind kind, Addr addr, Addr frame, PageSize size);

    /** Invalidate one page. */
    void flushPage(EntryKind kind, Addr addr, PageSize size);

    /** Invalidate all entries of @p kind. */
    void flushKind(EntryKind kind);

    /** Invalidate everything. */
    void flushAll();

    /** Number of valid entries of @p kind (occupancy accounting). */
    std::size_t occupancy(EntryKind kind) const;

    unsigned sets() const { return numSets; }
    unsigned ways() const { return numWays; }

    StatGroup &stats() { return _stats; }

    /**
     * Checkpoint entries, LRU clock and stats.  deserialize() fails
     * (structured, no UB) if the saved geometry differs.
     */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        Addr frame = 0;
        std::uint64_t lru = 0;
        PageSize size = PageSize::Size4K;
        EntryKind kind = EntryKind::Guest;
        bool valid = false;
    };

    unsigned setOf(std::uint64_t vpn, EntryKind kind,
                   PageSize size) const;

    std::string name;
    unsigned numSets;
    unsigned numWays;
    std::uint64_t tick = 0;
    std::vector<Entry> entries;
    StatGroup _stats;

    // Hot-path counters bound once (std::map references are stable).
    Counter *hitsCtr;
    Counter *missesCtr;
    Counter *insertsCtr;
    Counter *evictionsCtr;
};

} // namespace emv::tlb

