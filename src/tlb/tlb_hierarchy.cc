#include "tlb/tlb_hierarchy.hh"

#include "common/trace.hh"

namespace emv::tlb {

TlbHierarchy::TlbHierarchy(const TlbGeometry &g)
    : l1Tlb4K("l1tlb4k", g.l1Sets4K, g.l1Ways4K),
      l1Tlb2M("l1tlb2m", g.l1Sets2M, g.l1Ways2M),
      l1Tlb1G("l1tlb1g", g.l1Sets1G, g.l1Ways1G),
      l2Tlb("l2tlb", g.l2Sets, g.l2Ways)
{
}

void
TlbHierarchy::setStatsParent(const StatGroup *parent)
{
    l1Tlb4K.stats().setParent(parent);
    l1Tlb2M.stats().setParent(parent);
    l1Tlb1G.stats().setParent(parent);
    l2Tlb.stats().setParent(parent);
}

Tlb &
TlbHierarchy::l1For(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return l1Tlb4K;
      case PageSize::Size2M: return l1Tlb2M;
      case PageSize::Size1G: return l1Tlb1G;
    }
    return l1Tlb4K;
}

std::optional<TlbHit>
TlbHierarchy::lookupL1(Addr gva)
{
    // The split L1s are probed in parallel in hardware; at most one
    // can match because a virtual page has a single mapping size.
    if (auto hit = l1Tlb1G.lookup(EntryKind::Guest, gva,
                                  PageSize::Size1G)) {
        return hit;
    }
    if (auto hit = l1Tlb2M.lookup(EntryKind::Guest, gva,
                                  PageSize::Size2M)) {
        return hit;
    }
    return l1Tlb4K.lookup(EntryKind::Guest, gva, PageSize::Size4K);
}

std::optional<TlbHit>
TlbHierarchy::lookupL2(Addr gva)
{
    // Table VI: the unified L2 holds 4K translations only; 2M
    // entries live solely in the 32-entry L1 and 1G entries in the
    // 4-entry L1.  This is why large pages reduce misses through
    // *reach*, not capacity — and why 1G pages can hurt (§VIII).
    return l2Tlb.lookup(EntryKind::Guest, gva, PageSize::Size4K);
}

std::optional<TlbHit>
TlbHierarchy::lookupNested(Addr gpa)
{
    if (auto hit = l2Tlb.lookup(EntryKind::Nested, gpa,
                                PageSize::Size2M)) {
        return hit;
    }
    return l2Tlb.lookup(EntryKind::Nested, gpa, PageSize::Size4K);
}

void
TlbHierarchy::insertGuest(Addr gva, Addr hframe, PageSize size)
{
    EMV_TRACE(Tlb, "fill guest gva=%s frame=%s size=%s",
              hexAddr(gva).c_str(), hexAddr(hframe).c_str(),
              pageSizeName(size));
    l1For(size).insert(EntryKind::Guest, gva, hframe, size);
    if (size == PageSize::Size4K)
        l2Tlb.insert(EntryKind::Guest, gva, hframe, size);
}

void
TlbHierarchy::insertNested(Addr gpa, Addr hframe, PageSize size)
{
    EMV_TRACE(Tlb, "fill nested gpa=%s frame=%s size=%s",
              hexAddr(gpa).c_str(), hexAddr(hframe).c_str(),
              pageSizeName(size));
    if (size != PageSize::Size1G)
        l2Tlb.insert(EntryKind::Nested, gpa, hframe, size);
}

void
TlbHierarchy::flushGuest()
{
    EMV_TRACE(Tlb, "flush guest (context switch)");
    l1Tlb4K.flushKind(EntryKind::Guest);
    l1Tlb2M.flushKind(EntryKind::Guest);
    l1Tlb1G.flushKind(EntryKind::Guest);
    l2Tlb.flushKind(EntryKind::Guest);
}

void
TlbHierarchy::flushAll()
{
    EMV_TRACE(Tlb, "flush all");
    l1Tlb4K.flushAll();
    l1Tlb2M.flushAll();
    l1Tlb1G.flushAll();
    l2Tlb.flushAll();
}

void
TlbHierarchy::flushGuestPage(Addr gva, PageSize size)
{
    EMV_TRACE(Tlb, "flush guest page gva=%s size=%s",
              hexAddr(gva).c_str(), pageSizeName(size));
    l1For(size).flushPage(EntryKind::Guest, gva, size);
    l2Tlb.flushPage(EntryKind::Guest, gva, size);
}

void
TlbHierarchy::flushNestedPage(Addr gpa, PageSize size)
{
    EMV_TRACE(Tlb, "flush nested page gpa=%s size=%s",
              hexAddr(gpa).c_str(), pageSizeName(size));
    l2Tlb.flushPage(EntryKind::Nested, gpa, size);
}

void
TlbHierarchy::serialize(ckpt::Encoder &enc) const
{
    l1Tlb4K.serialize(enc);
    l1Tlb2M.serialize(enc);
    l1Tlb1G.serialize(enc);
    l2Tlb.serialize(enc);
}

bool
TlbHierarchy::deserialize(ckpt::Decoder &dec)
{
    return l1Tlb4K.deserialize(dec) && l1Tlb2M.deserialize(dec) &&
           l1Tlb1G.deserialize(dec) && l2Tlb.deserialize(dec);
}

} // namespace emv::tlb
