#include "tlb/walk_cache.hh"

#include <utility>

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"

namespace emv::tlb {

namespace {

/** Cheap 64-bit mix for set indexing. */
inline std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
}

} // namespace

WalkCache::WalkCache(unsigned sets, unsigned ways, std::string name)
    : numSets(sets), numWays(ways), entries(sets * ways),
      _stats(std::move(name)),
      hitsCtr(&_stats.counter("hits")),
      missesCtr(&_stats.counter("misses"))
{
    emv_assert(sets > 0 && (sets & (sets - 1)) == 0,
               "walk cache sets must be a power of two");
    emv_assert(ways > 0, "walk cache needs at least one way");
}

unsigned
WalkCache::setOf(std::uint64_t key) const
{
    return static_cast<unsigned>(mix(key) & (numSets - 1));
}

std::optional<Addr>
WalkCache::lookup(std::uint64_t key)
{
    Entry *set = &entries[setOf(key) * numWays];
    for (unsigned w = 0; w < numWays; ++w) {
        if (set[w].valid && set[w].key == key) {
            set[w].lru = ++tick;
            ++*hitsCtr;
            return set[w].value;
        }
    }
    ++*missesCtr;
    return std::nullopt;
}

void
WalkCache::insert(std::uint64_t key, Addr next_table)
{
    EMV_CHECK(isAligned(next_table, kPage4K),
              "%s: cached table pointer %s not 4K aligned",
              _stats.name().c_str(), hexAddr(next_table).c_str());
    Entry *set = &entries[setOf(key) * numWays];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < numWays; ++w) {
        if (set[w].valid && set[w].key == key) {
            set[w].value = next_table;
            set[w].lru = ++tick;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lru < victim->lru)
            victim = &set[w];
    }
    victim->key = key;
    victim->value = next_table;
    victim->lru = ++tick;
    victim->valid = true;
}

void
WalkCache::flush()
{
    for (auto &entry : entries)
        entry.valid = false;
    ++_stats.counter("flushes");
}

LineCache::LineCache(unsigned sets, unsigned ways, std::string name)
    : numSets(sets), numWays(ways), entries(sets * ways),
      _stats(std::move(name)),
      hitsCtr(&_stats.counter("hits")),
      missesCtr(&_stats.counter("misses"))
{
    emv_assert(sets > 0 && (sets & (sets - 1)) == 0,
               "line cache sets must be a power of two");
    emv_assert(ways > 0, "line cache needs at least one way");
}

bool
LineCache::access(Addr pa)
{
    const std::uint64_t line = pa >> 6;
    const unsigned set_idx =
        static_cast<unsigned>(mix(line) & (numSets - 1));
    Entry *set = &entries[set_idx * numWays];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < numWays; ++w) {
        if (set[w].valid && set[w].tag == line) {
            set[w].lru = ++tick;
            ++*hitsCtr;
            return true;
        }
        if (!set[w].valid) {
            victim = &set[w];
            continue;
        }
        if (victim->valid && set[w].lru < victim->lru)
            victim = &set[w];
    }
    victim->tag = line;
    victim->lru = ++tick;
    victim->valid = true;
    ++*missesCtr;
    return false;
}

void
LineCache::flush()
{
    for (auto &entry : entries)
        entry.valid = false;
    ++_stats.counter("flushes");
}

void
WalkCache::serialize(ckpt::Encoder &enc) const
{
    enc.u32(numSets);
    enc.u32(numWays);
    enc.u64(tick);
    enc.u64(entries.size());
    for (const auto &e : entries) {
        enc.u64(e.key);
        enc.u64(e.value);
        enc.u64(e.lru);
        enc.u8(e.valid ? 1 : 0);
    }
    _stats.serialize(enc);
}

bool
WalkCache::deserialize(ckpt::Decoder &dec)
{
    const unsigned savedSets = dec.u32();
    const unsigned savedWays = dec.u32();
    if (dec.ok() && (savedSets != numSets || savedWays != numWays)) {
        dec.fail("walkcache: geometry mismatch");
        return false;
    }
    tick = dec.u64();
    const std::uint64_t n = dec.u64();
    if (dec.ok() && n != entries.size()) {
        dec.fail("walkcache: entry count mismatch");
        return false;
    }
    for (std::uint64_t i = 0; dec.ok() && i < n; ++i) {
        Entry &e = entries[static_cast<std::size_t>(i)];
        e.key = dec.u64();
        e.value = dec.u64();
        e.lru = dec.u64();
        e.valid = dec.u8() != 0;
    }
    if (!_stats.deserialize(dec))
        return false;
    return dec.ok();
}

void
LineCache::serialize(ckpt::Encoder &enc) const
{
    enc.u32(numSets);
    enc.u32(numWays);
    enc.u64(tick);
    enc.u64(entries.size());
    for (const auto &e : entries) {
        enc.u64(e.tag);
        enc.u64(e.lru);
        enc.u8(e.valid ? 1 : 0);
    }
    _stats.serialize(enc);
}

bool
LineCache::deserialize(ckpt::Decoder &dec)
{
    const unsigned savedSets = dec.u32();
    const unsigned savedWays = dec.u32();
    if (dec.ok() && (savedSets != numSets || savedWays != numWays)) {
        dec.fail("linecache: geometry mismatch");
        return false;
    }
    tick = dec.u64();
    const std::uint64_t n = dec.u64();
    if (dec.ok() && n != entries.size()) {
        dec.fail("linecache: entry count mismatch");
        return false;
    }
    for (std::uint64_t i = 0; dec.ok() && i < n; ++i) {
        Entry &e = entries[static_cast<std::size_t>(i)];
        e.tag = dec.u64();
        e.lru = dec.u64();
        e.valid = dec.u8() != 0;
    }
    if (!_stats.deserialize(dec))
        return false;
    return dec.ok();
}

} // namespace emv::tlb
