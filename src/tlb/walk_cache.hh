/**
 * @file
 * MMU caches: paging-structure cache and PTE-line cache.
 *
 * The paper's measured 2D walks cost ~2.4x native per miss, not the
 * worst-case 6x, because real hardware caches intermediate
 * translations (translation caching [7], large-reach MMU caches
 * [12]) and holds hot PTE cache lines in the data-cache hierarchy.
 * Two structures model this:
 *
 *  - WalkCache: a paging-structure cache mapping (level, va-prefix)
 *    to the next table base, letting walks skip upper levels;
 *  - LineCache: a small cache of 64-byte PTE lines deciding whether
 *    each remaining walk reference is priced as a cache hit or a
 *    memory access.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace emv {
namespace ckpt {
class Encoder;
class Decoder;
} // namespace ckpt
} // namespace emv

namespace emv::tlb {

/**
 * Set-associative cache of page-walk intermediate results.
 *
 * A hit for key (level L, va prefix) yields the base address of the
 * table to be indexed at level L-1, skipping reads of levels > L-1.
 */
class WalkCache
{
  public:
    WalkCache(unsigned sets, unsigned ways,
              std::string name = "walkcache");

    /** Compose the lookup key for @p level and address @p va. */
    static std::uint64_t
    key(int level, Addr va)
    {
        // Prefix consumed by levels above and including this one.
        // Levels run 1..4, so the tag needs three bits — two would
        // alias level 4 into the prefix and confuse neighbouring
        // 512 GB regions.
        const unsigned shift = 12 + 9 * static_cast<unsigned>(level - 1);
        return ((va >> shift) << 3) | static_cast<unsigned>(level);
    }

    std::optional<Addr> lookup(std::uint64_t key);
    void insert(std::uint64_t key, Addr next_table);
    void flush();

    StatGroup &stats() { return _stats; }

    /** Checkpoint entries, LRU clock and stats. */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        Addr value = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    unsigned setOf(std::uint64_t key) const;

    unsigned numSets;
    unsigned numWays;
    std::uint64_t tick = 0;
    std::vector<Entry> entries;
    StatGroup _stats;
    Counter *hitsCtr;
    Counter *missesCtr;
};

/**
 * Small set-associative cache of 64-byte lines standing in for PTE
 * residency in the data-cache hierarchy.  access() returns whether
 * the line was already present and inserts it.
 */
class LineCache
{
  public:
    LineCache(unsigned sets, unsigned ways,
              std::string name = "linecache");

    /** Touch the line containing @p pa; @return true on hit. */
    bool access(Addr pa);
    void flush();

    StatGroup &stats() { return _stats; }

    /** Checkpoint entries, LRU clock and stats. */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    unsigned numSets;
    unsigned numWays;
    std::uint64_t tick = 0;
    std::vector<Entry> entries;
    StatGroup _stats;
    Counter *hitsCtr;
    Counter *missesCtr;
};

} // namespace emv::tlb

