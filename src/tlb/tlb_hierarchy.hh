/**
 * @file
 * Two-level TLB hierarchy matching the evaluation platform.
 *
 * Table VI geometry (Intel Xeon E5-2430, SandyBridge):
 *   L1 D-TLB: 4K 64-entry 4-way; 2M 32-entry 4-way; 1G 4-entry FA
 *   L2 TLB:   512-entry 4-way, shared with nested (gPA→hPA) entries
 */

#pragma once

#include <memory>
#include <optional>

#include "tlb/tlb.hh"

namespace emv::tlb {

/** Geometry knobs for the hierarchy. */
struct TlbGeometry
{
    unsigned l1Sets4K = 16;  //!< 16 sets x 4 ways = 64 entries.
    unsigned l1Ways4K = 4;
    unsigned l1Sets2M = 8;   //!< 8 x 4 = 32 entries.
    unsigned l1Ways2M = 4;
    unsigned l1Sets1G = 1;   //!< Fully associative, 4 entries.
    unsigned l1Ways1G = 4;
    unsigned l2Sets = 128;   //!< 128 x 4 = 512 entries.
    unsigned l2Ways = 4;
};

/** L1 (split by page size) + unified L2 shared with nested entries. */
class TlbHierarchy
{
  public:
    explicit TlbHierarchy(const TlbGeometry &geometry = {});

    /** Probe all L1 structures for a guest translation. */
    std::optional<TlbHit> lookupL1(Addr gva);

    /** Probe the L2 for a guest translation. */
    std::optional<TlbHit> lookupL2(Addr gva);

    /** Probe the L2 for a nested (gPA→hPA) translation. */
    std::optional<TlbHit> lookupNested(Addr gpa);

    /** Install a guest translation in L1 (and L2 as victim buffer). */
    void insertGuest(Addr gva, Addr hframe, PageSize size);

    /** Install a nested translation in the shared L2. */
    void insertNested(Addr gpa, Addr hframe, PageSize size);

    /** Guest context switch: drop guest translations (no ASIDs). */
    void flushGuest();

    /** VM switch / nested table change: drop everything. */
    void flushAll();

    /** Invalidate one guest page across levels. */
    void flushGuestPage(Addr gva, PageSize size);

    /** Invalidate one nested page in the L2. */
    void flushNestedPage(Addr gpa, PageSize size);

    Tlb &l1For(PageSize size);
    Tlb &l2() { return l2Tlb; }

    /** Reparent every TLB's stat group under @p parent. */
    void setStatsParent(const StatGroup *parent);

    /** Checkpoint all four TLBs. */
    void serialize(ckpt::Encoder &enc) const;
    bool deserialize(ckpt::Decoder &dec);

  private:
    Tlb l1Tlb4K;
    Tlb l1Tlb2M;
    Tlb l1Tlb1G;
    Tlb l2Tlb;
};

} // namespace emv::tlb

