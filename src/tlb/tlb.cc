#include "tlb/tlb.hh"

#include "common/audit.hh"
#include "common/ckpt.hh"
#include "common/logging.hh"

namespace emv::tlb {

namespace {

inline std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
}

} // namespace

Tlb::Tlb(std::string name, unsigned sets, unsigned ways)
    : name(std::move(name)), numSets(sets), numWays(ways),
      entries(sets * ways), _stats(this->name),
      hitsCtr(&_stats.counter("hits")),
      missesCtr(&_stats.counter("misses")),
      insertsCtr(&_stats.counter("inserts")),
      evictionsCtr(&_stats.counter("evictions"))
{
    emv_assert(sets > 0 && (sets & (sets - 1)) == 0,
               "TLB sets must be a power of two");
    emv_assert(ways > 0, "TLB needs at least one way");
}

unsigned
Tlb::setOf(std::uint64_t vpn, EntryKind kind, PageSize size) const
{
    if (numSets == 1)
        return 0;
    const std::uint64_t k =
        (vpn << 4) | (static_cast<std::uint64_t>(kind) << 2) |
        static_cast<std::uint64_t>(size);
    return static_cast<unsigned>(mix(k) & (numSets - 1));
}

std::optional<TlbHit>
Tlb::lookup(EntryKind kind, Addr addr, PageSize size)
{
    const std::uint64_t vpn = addr >> pageShift(size);
    Entry *set = &entries[setOf(vpn, kind, size) * numWays];
    for (unsigned w = 0; w < numWays; ++w) {
        Entry &e = set[w];
        if (e.valid && e.kind == kind && e.size == size &&
            e.vpn == vpn) {
            e.lru = ++tick;
            ++*hitsCtr;
            return TlbHit{e.frame, e.size};
        }
    }
    ++*missesCtr;
    return std::nullopt;
}

std::optional<TlbHit>
Tlb::lookupAny(EntryKind kind, Addr addr)
{
    for (PageSize size : {PageSize::Size1G, PageSize::Size2M,
                          PageSize::Size4K}) {
        // lookupAny counts a single logical probe; suppress the
        // per-size miss counting by probing manually.
        const std::uint64_t vpn = addr >> pageShift(size);
        Entry *set = &entries[setOf(vpn, kind, size) * numWays];
        for (unsigned w = 0; w < numWays; ++w) {
            Entry &e = set[w];
            if (e.valid && e.kind == kind && e.size == size &&
                e.vpn == vpn) {
                e.lru = ++tick;
                ++*hitsCtr;
                return TlbHit{e.frame, e.size};
            }
        }
    }
    ++*missesCtr;
    return std::nullopt;
}

void
Tlb::insert(EntryKind kind, Addr addr, Addr frame, PageSize size)
{
    emv_assert(isAligned(frame, pageBytes(size)),
               "TLB insert: frame %s not aligned to %s",
               hexAddr(frame).c_str(), pageSizeName(size));
    const std::uint64_t vpn = addr >> pageShift(size);
    Entry *set = &entries[setOf(vpn, kind, size) * numWays];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < numWays; ++w) {
        Entry &e = set[w];
        if (e.valid && e.kind == kind && e.size == size &&
            e.vpn == vpn) {
            e.frame = frame;
            e.lru = ++tick;
            return;
        }
        if (!e.valid) {
            victim = &e;
            continue;
        }
        if (victim->valid && e.lru < victim->lru)
            victim = &e;
    }
    if (victim->valid)
        ++*evictionsCtr;
    victim->vpn = vpn;
    victim->frame = frame;
    victim->size = size;
    victim->kind = kind;
    victim->lru = ++tick;
    victim->valid = true;
    ++*insertsCtr;
    EMV_INVARIANT([&] {
                      unsigned copies = 0;
                      for (unsigned w = 0; w < numWays; ++w) {
                          const Entry &e = set[w];
                          copies += e.valid && e.kind == kind &&
                                    e.size == size && e.vpn == vpn;
                      }
                      return copies == 1;
                  }(),
                  "%s: duplicate entries for vpn %s after insert",
                  name.c_str(), hexAddr(vpn).c_str());
}

void
Tlb::flushPage(EntryKind kind, Addr addr, PageSize size)
{
    const std::uint64_t vpn = addr >> pageShift(size);
    Entry *set = &entries[setOf(vpn, kind, size) * numWays];
    for (unsigned w = 0; w < numWays; ++w) {
        Entry &e = set[w];
        if (e.valid && e.kind == kind && e.size == size &&
            e.vpn == vpn) {
            e.valid = false;
        }
    }
}

void
Tlb::flushKind(EntryKind kind)
{
    for (auto &e : entries) {
        if (e.kind == kind)
            e.valid = false;
    }
    ++_stats.counter("kind_flushes");
}

void
Tlb::flushAll()
{
    for (auto &e : entries)
        e.valid = false;
    ++_stats.counter("full_flushes");
}

std::size_t
Tlb::occupancy(EntryKind kind) const
{
    std::size_t n = 0;
    for (const auto &e : entries)
        n += (e.valid && e.kind == kind) ? 1 : 0;
    return n;
}

void
Tlb::serialize(ckpt::Encoder &enc) const
{
    enc.u32(numSets);
    enc.u32(numWays);
    enc.u64(tick);
    enc.u64(entries.size());
    for (const auto &e : entries) {
        enc.u64(e.vpn);
        enc.u64(e.frame);
        enc.u64(e.lru);
        enc.u8(static_cast<std::uint8_t>(e.size));
        enc.u8(static_cast<std::uint8_t>(e.kind));
        enc.u8(e.valid ? 1 : 0);
    }
    _stats.serialize(enc);
}

bool
Tlb::deserialize(ckpt::Decoder &dec)
{
    const unsigned savedSets = dec.u32();
    const unsigned savedWays = dec.u32();
    if (dec.ok() && (savedSets != numSets || savedWays != numWays)) {
        dec.fail("tlb '" + name + "': geometry mismatch");
        return false;
    }
    tick = dec.u64();
    const std::uint64_t n = dec.u64();
    if (dec.ok() && n != entries.size()) {
        dec.fail("tlb '" + name + "': entry count mismatch");
        return false;
    }
    for (std::uint64_t i = 0; dec.ok() && i < n; ++i) {
        Entry &e = entries[static_cast<std::size_t>(i)];
        e.vpn = dec.u64();
        e.frame = dec.u64();
        e.lru = dec.u64();
        e.size = static_cast<PageSize>(dec.u8());
        e.kind = static_cast<EntryKind>(dec.u8());
        e.valid = dec.u8() != 0;
    }
    if (!_stats.deserialize(dec))
        return false;
    return dec.ok();
}

} // namespace emv::tlb
