/**
 * @file
 * Example: a big-memory service in a VM, across translation modes.
 *
 * Walks through the paper's motivating scenario: a memcached-style
 * key-value cache whose working set dwarfs TLB reach, run natively
 * and in a VM under each mode.  Prints the overhead decomposition
 * (translation, faults, VM exits) and the coverage fractions that
 * drive the Table IV models.
 *
 * Run: ./bigmemory_vm [scale=0.25] [ops=800000]
 */

#include <cstdio>
#include <iostream>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace emv;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.25;
    params.warmupOps = 200000;
    params.measureOps = 800000;
    params.parseArgs(argc, argv);

    auto probe = workload::makeWorkload(
        workload::WorkloadKind::Memcached, params.seed, params.scale);
    std::printf("Scenario: memcached-like cache, %s footprint, "
                "Zipf-skewed GETs with slab churn\n\n",
                sim::bytesStr(probe->info().footprintBytes).c_str());

    sim::Table table({"config", "translation", "VM exits", "total",
                      "L2 misses", "cyc/walk", "F_VD", "F_GD",
                      "F_DD"});

    for (const char *label : {"4K", "2M", "DS", "4K+4K", "4K+2M",
                              "sh4K", "4K+VD", "4K+GD", "DD"}) {
        auto cell = sim::runCell(workload::WorkloadKind::Memcached,
                                 *sim::specFromLabel(label), params);
        const auto &r = cell.run;
        table.addRow({label, sim::pct(r.translationOverhead()),
                      sim::pct(r.vmExitCycles / r.baseCycles),
                      sim::pct(r.totalOverhead()),
                      std::to_string(r.l2Misses),
                      sim::fmt(r.cyclesPerWalk, 1),
                      sim::pct(r.fractionVmmOnly),
                      sim::pct(r.fractionGuestOnly),
                      sim::pct(r.fractionBoth)});
        std::fprintf(stderr, "%s done\n", label);
    }
    table.print(std::cout);

    std::printf(
        "\nReading guide:\n"
        "  - 4K+4K shows the 2D-walk tax the paper motivates;\n"
        "  - sh4K (shadow paging) trades walks for VM-exit churn "
        "costs;\n"
        "  - 4K+VD needs no guest changes and tracks native 4K;\n"
        "  - DD's F_DD column shows the fraction of misses resolved "
        "by two adds.\n");
    return 0;
}
