/**
 * @file
 * Quickstart: build one small VM, translate the same trace under
 * every mode, and print what the paper's Fig. 2/3 promise — 2D
 * walks cost up to 24 memory references, the proposed modes
 * flatten them to 4 or 0.
 *
 * Run: ./quickstart
 */

#include <cstdio>
#include <iostream>

#include "common/logging.hh"
#include "core/mode.hh"
#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "sim/report.hh"
#include "workload/workload.hh"

using namespace emv;

int
main()
{
    setQuietLogging(true);
    std::printf("emv quickstart: one workload, six translation "
                "modes\n\n");

    const std::vector<std::string> labels = {
        "4K",     // native paging
        "DS",     // native direct segment
        "4K+4K",  // base virtualized (2D walks)
        "4K+VD",  // VMM Direct
        "4K+GD",  // Guest Direct
        "DD",     // Dual Direct
    };

    sim::RunParams params;
    params.scale = 0.03;  // ~250 MB footprint: laptop-friendly.
    params.warmupOps = 200000;
    params.measureOps = 500000;

    sim::Table table({"config", "mode", "overhead", "walks",
                      "cycles/walk", "refs/walk"});

    for (const auto &label : labels) {
        auto spec = sim::specFromLabel(label);
        auto wl = workload::makeWorkload(
            workload::WorkloadKind::Gups, params.seed, params.scale);
        sim::Machine machine(sim::makeMachineConfig(*spec, params),
                             *wl);
        machine.run(params.warmupOps);
        machine.resetStats();
        auto run = machine.run(params.measureOps);

        const auto &stats = machine.mmu().stats();
        const double refs =
            static_cast<double>(stats.counterValue("guest_refs") +
                                stats.counterValue("nested_refs") +
                                stats.counterValue("native_refs"));
        const double refs_per_walk =
            run.walks ? refs / static_cast<double>(run.walks) : 0.0;

        table.addRow({label, core::modeName(spec->mode),
                      sim::pct(run.translationOverhead()),
                      std::to_string(run.walks),
                      sim::fmt(run.cyclesPerWalk, 1),
                      sim::fmt(refs_per_walk, 1)});
    }

    table.print(std::cout);
    std::printf("\nA 2D walk (4K+4K) should show ~15-24 refs/walk "
                "before MMU caching;\nVD/GD flatten it toward 4, DD "
                "toward 0.\n");
    return 0;
}
