/**
 * @file
 * Example: holes in a direct segment via the escape filter (§V).
 *
 * Shows, at the API level, exactly what the hardware does: poison
 * host frames inside the VMM segment's backing, let the VMM remap
 * them and register the escaped gPAs in the 256-bit Bloom filter,
 * then translate addresses and watch which path each takes.
 *
 * Run: ./escape_filter_demo
 */

#include <cstdio>

#include "common/logging.hh"
#include "core/mmu.hh"
#include "sim/machine.hh"
#include "sim/report.hh"
#include "workload/workload.hh"

using namespace emv;

int
main()
{
    setQuietLogging(true);

    auto wl = workload::makeWorkload(workload::WorkloadKind::Gups, 9,
                                     0.05);
    sim::MachineConfig cfg;
    cfg.mode = core::Mode::DualDirect;
    cfg.badFrames = 8;
    cfg.badFrameSeed = 1234;
    sim::Machine machine(cfg, *wl);

    auto &filter = machine.mmu().vmmFilter();
    std::printf("escape filter: %u bits, %u H3 hashes, %u pages "
                "inserted, %u bits set\n",
                filter.sizeBits(), filter.numHashes(),
                filter.insertedPages(), filter.popcount());
    std::printf("analytic false-positive rate: %s\n\n",
                sim::pct(filter.expectedFalsePositiveRate()).c_str());

    std::printf("host bad frames: %zu (injected into the segment "
                "backing)\n",
                machine.hostMem().badFrameCount());
    std::printf("VMM segment:     %s\n\n",
                machine.vmmSegment().toString().c_str());

    // Drive the workload and classify every translation path.
    std::uint64_t zero_d = 0, walks = 0, l1 = 0, other = 0;
    for (int i = 0; i < 200000; ++i) {
        auto op = wl->next();
        if (op.kind == workload::Op::Kind::Remap)
            continue;
        auto result = machine.mmu().translate(op.va);
        while (!result.ok) {
            // Demand-map stragglers through the machine's OS.
            machine.os().handleFault(machine.process(),
                                     result.faultAddr);
            result = machine.mmu().translate(op.va);
        }
        switch (result.path) {
          case core::TranslatePath::DualSegment: ++zero_d; break;
          case core::TranslatePath::Walk: ++walks; break;
          case core::TranslatePath::L1Hit: ++l1; break;
          default: ++other; break;
        }
    }

    const auto &stats = machine.mmu().stats();
    std::printf("translation paths over 200k accesses:\n");
    std::printf("  L1 TLB hits:               %llu\n",
                static_cast<unsigned long long>(l1));
    std::printf("  0D dual-segment hits:      %llu\n",
                static_cast<unsigned long long>(zero_d));
    std::printf("  page walks (escapes + FPs + non-segment): %llu\n",
                static_cast<unsigned long long>(walks));
    std::printf("  other (L2 hits):           %llu\n",
                static_cast<unsigned long long>(other));
    std::printf("  escape-filter slow paths:  %llu\n",
                static_cast<unsigned long long>(
                    stats.counterValue("escape_slow_paths")));
    std::printf("\nEvery escaped page still translated correctly — "
                "the VMM remapped it to a\nhealthy frame and the "
                "nested page table served it.  A single bad page "
                "no\nlonger forbids a multi-GB segment.\n");
    return 0;
}
