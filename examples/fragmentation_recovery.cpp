/**
 * @file
 * Example: recovering direct segments on a fragmented system.
 *
 * Demonstrates the §IV toolbox end to end on one machine:
 *
 *   1. boot a VM whose guest physical memory is badly fragmented —
 *      the guest segment cannot be created, Dual Direct degrades;
 *   2. run self-ballooning (balloon out scattered pages, hot-add
 *      contiguous gPA) and rebuild the guest segment;
 *   3. fragment the host too, start over in Guest Direct, and use
 *      host memory compaction to materialize a VMM segment,
 *      upgrading to Dual Direct (Table III's "slowly converted").
 *
 * Run: ./fragmentation_recovery [scale=0.15]
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace emv;

namespace {

double
measure(sim::Machine &machine, const sim::RunParams &params)
{
    machine.run(params.warmupOps);
    machine.resetStats();
    return machine.run(params.measureOps).translationOverhead();
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.15;
    params.warmupOps = 100000;
    params.measureOps = 400000;
    params.parseArgs(argc, argv);

    // ---------------------------------------------------------- 1
    std::printf("=== Part 1: guest physical memory is fragmented\n");
    auto wl = workload::makeWorkload(workload::WorkloadKind::Gups,
                                     params.seed, params.scale);
    auto cfg = sim::makeMachineConfig(*sim::specFromLabel("DD"),
                                      params);
    cfg.guestFragmentation.enabled = true;
    cfg.guestFragmentation.maxRunBytes = 16 * MiB;
    cfg.extensionReserve =
        alignUp(wl->info().footprintBytes + 64 * MiB, kPage2M);
    sim::Machine machine(cfg, *wl);

    std::printf("guest segment after boot: %s\n",
                machine.guestSegment().toString().c_str());
    std::printf("largest free guest run:   %s (need %s)\n",
                sim::bytesStr(machine.os().buddy().largestFreeRun())
                    .c_str(),
                sim::bytesStr(wl->info().footprintBytes).c_str());
    std::printf("overhead without segment: %s\n\n",
                sim::pct(measure(machine, params)).c_str());

    // ---------------------------------------------------------- 2
    std::printf("=== Part 2: self-ballooning (Fig. 9)\n");
    const bool ballooned = machine.selfBalloonGuestSegment();
    std::printf("self-balloon: %s\n", ballooned ? "ok" : "FAILED");
    std::printf("guest segment now:        %s\n",
                machine.guestSegment().toString().c_str());
    std::printf("VM exits so far:          %llu\n",
                static_cast<unsigned long long>(
                    machine.vm()->vmExits()));
    std::printf("overhead with Dual Direct: %s\n\n",
                sim::pct(measure(machine, params)).c_str());

    // ---------------------------------------------------------- 3
    std::printf("=== Part 3: host fragmented; compaction upgrade\n");
    auto wl2 = workload::makeWorkload(workload::WorkloadKind::Gups,
                                      params.seed, params.scale);
    auto cfg2 = sim::makeMachineConfig(*sim::specFromLabel("4K+GD"),
                                       params);
    cfg2.contiguousHostReservation = false;
    cfg2.hostFragmentation.enabled = true;
    cfg2.hostFragmentation.maxRunBytes = 64 * MiB;
    sim::Machine machine2(cfg2, *wl2);

    std::printf("mode after boot:          %s\n",
                core::modeName(machine2.config().mode));
    std::printf("overhead in Guest Direct: %s\n",
                sim::pct(measure(machine2, params)).c_str());

    auto migrated = machine2.upgradeWithHostCompaction();
    if (migrated) {
        std::printf("host compaction migrated %llu pages\n",
                    static_cast<unsigned long long>(*migrated));
    } else {
        std::printf("host compaction FAILED\n");
    }
    std::printf("mode now:                 %s\n",
                core::modeName(machine2.config().mode));
    std::printf("VMM segment:              %s\n",
                machine2.vmmSegment().toString().c_str());
    std::printf("overhead in Dual Direct:  %s\n",
                sim::pct(measure(machine2, params)).c_str());
    return 0;
}
