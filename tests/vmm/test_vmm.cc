/** @file Unit tests for the VMM: backing, nested paging, segments,
 *  ballooning backend and host compaction. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "vmm/vmm.hh"
#include "../test_support.hh"

namespace emv::vmm {
namespace {

class VmmTest : public ::testing::Test
{
  protected:
    // A scaled-down machine: 1.5 GB host, small VM around a small
    // "gap" so tests stay fast.
    static constexpr Addr kHostRam = 1536 * MiB;

    VmmTest() : host(kHostRam), vmm(host, kHostRam) {}

    VmConfig
    smallVmConfig()
    {
        VmConfig cfg;
        cfg.ramBytes = 512 * MiB;
        cfg.lowRamBytes = 96 * MiB;
        cfg.ioGapStart = 96 * MiB;
        cfg.ioGapEnd = 128 * MiB;
        cfg.nestedPageSize = PageSize::Size4K;
        return cfg;
    }

    mem::PhysMemory host;
    Vmm vmm;
};

TEST_F(VmmTest, CheckpointRoundTripRequiresSameVmRoster)
{
    auto &vm = vmm.createVm("a", smallVmConfig());
    vm.guestPhys().write64(50 * MiB, 0x1234'5678u);
    const auto bytes = test::ckptBytes(vmm);

    // Restore follows the fresh-boot path: recreate the same VMs,
    // then deserialize overwrites backing, nested tables and stats.
    // (Frame *contents* live in PhysMemory, which the Machine layer
    // checkpoints separately — only the mappings are checked here.)
    mem::PhysMemory host2(kHostRam);
    Vmm other(host2, kHostRam);
    auto &vm2 = other.createVm("a", smallVmConfig());
    ASSERT_TRUE(test::ckptRestore(bytes, other));
    EXPECT_EQ(test::ckptBytes(other), bytes);
    EXPECT_EQ(vm2.gpaToHpa(50 * MiB), vm.gpaToHpa(50 * MiB));
    EXPECT_EQ(vm2.vmExits(), vm.vmExits());

    // A different VM roster is a structured failure.
    mem::PhysMemory host3(kHostRam);
    Vmm empty(host3, kHostRam);
    EXPECT_FALSE(test::ckptRestore(bytes, empty));
}

TEST_F(VmmTest, EagerBackingCoversAllRam)
{
    auto &vm = vmm.createVm("a", smallVmConfig());
    EXPECT_TRUE(vm.backingMap().covered(0, 96 * MiB));
    EXPECT_TRUE(vm.backingMap().covered(128 * MiB, 416 * MiB));
    EXPECT_FALSE(vm.gpaToHpa(100 * MiB).has_value());  // I/O gap.
}

TEST_F(VmmTest, NestedTableMatchesBackingMap)
{
    auto &vm = vmm.createVm("a", smallVmConfig());
    // Spot-check nested translations against the backing map via a
    // software walk of the real nested table.
    paging::PageTable *nested = nullptr;
    (void)nested;
    for (Addr gpa : {Addr(0), Addr(50 * MiB), Addr(130 * MiB),
                     Addr(500 * MiB)}) {
        auto hpa = vm.gpaToHpa(gpa);
        ASSERT_TRUE(hpa.has_value()) << gpa;
        // Write through the guest accessor and read back from the
        // host at the mapped location.
        vm.guestPhys().write64(alignDown(gpa, 8), 0xabcd0000 + gpa);
        EXPECT_EQ(host.read64(alignDown(*hpa, 8)), 0xabcd0000 + gpa);
    }
}

TEST_F(VmmTest, GuestRamLayoutAndSpan)
{
    auto &vm = vmm.createVm("a", smallVmConfig());
    auto layout = vm.guestRamLayout();
    ASSERT_EQ(layout.size(), 2u);
    EXPECT_EQ(layout[0].start, 0u);
    EXPECT_EQ(layout[0].end, 96 * MiB);
    EXPECT_EQ(layout[1].start, 128 * MiB);
    EXPECT_EQ(vm.gpaSpan(), 128 * MiB + 416 * MiB);
}

TEST_F(VmmTest, OnDemandBackingViaNestedFault)
{
    auto cfg = smallVmConfig();
    cfg.eagerBacking = false;
    auto &vm = vmm.createVm("a", cfg);
    EXPECT_FALSE(vm.gpaToHpa(10 * MiB).has_value());
    EXPECT_TRUE(vm.ensureBacked(10 * MiB));
    EXPECT_TRUE(vm.gpaToHpa(10 * MiB).has_value());
    EXPECT_GT(vm.vmExits(), 0u);
}

TEST_F(VmmTest, EnsureBackedRejectsIoGapAndBeyond)
{
    auto cfg = smallVmConfig();
    cfg.eagerBacking = false;
    auto &vm = vmm.createVm("a", cfg);
    EXPECT_FALSE(vm.ensureBacked(100 * MiB));      // In the gap.
    EXPECT_FALSE(vm.ensureBacked(vm.gpaSpan()));   // Past the end.
}

TEST_F(VmmTest, NestedLargePages)
{
    auto cfg = smallVmConfig();
    cfg.nestedPageSize = PageSize::Size2M;
    auto &vm = vmm.createVm("a", cfg);
    EXPECT_TRUE(vm.backingMap().covered(0, 96 * MiB));
    // 2M-backed VM should produce far fewer extents/maps; check a
    // translation still works.
    vm.guestPhys().write64(64 * MiB, 42);
    auto hpa = vm.gpaToHpa(64 * MiB);
    ASSERT_TRUE(hpa.has_value());
    EXPECT_EQ(host.read64(*hpa), 42u);
}

TEST_F(VmmTest, CreateVmmSegmentOverContiguousBacking)
{
    auto &vm = vmm.createVm("a", smallVmConfig());
    auto info = vm.createVmmSegment(416 * MiB);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->regs.enabled());
    EXPECT_GE(info->regs.length(), 416 * MiB);
    EXPECT_TRUE(info->escapedGpas.empty());
    // The segment translation agrees with the backing map.
    const Addr gpa = info->regs.base() + 0x5000;
    EXPECT_EQ(info->regs.translate(gpa), vm.gpaToHpa(gpa).value());
}

TEST_F(VmmTest, VmmSegmentFailsWithoutContiguity)
{
    auto cfg = smallVmConfig();
    cfg.contiguousHostReservation = false;
    // Fragment the host so eager backing is scattered.
    mem::BuddyAllocator &buddy = vmm.hostBuddy();
    for (Addr a = 0; a < kHostRam; a += 8 * MiB)
        ASSERT_TRUE(buddy.allocateRange(a, kPage4K));
    setQuietLogging(true);
    auto &vm = vmm.createVm("a", cfg);
    setQuietLogging(false);
    EXPECT_FALSE(vm.createVmmSegment(416 * MiB).has_value());
}

TEST_F(VmmTest, BadFramesEscapeOnSegmentCreation)
{
    auto &vm = vmm.createVm("a", smallVmConfig());
    auto extent = vm.backingMap().largestExtent();
    ASSERT_TRUE(extent.has_value());
    // Poison two frames inside the future segment.
    const Addr bad1 = extent->hpa + 16 * MiB;
    const Addr bad2 = extent->hpa + 200 * MiB;
    host.write64(bad1, 0x1111);
    host.write64(bad2, 0x2222);
    host.markBad(bad1);
    host.markBad(bad2);

    auto info = vm.createVmmSegment(extent->bytes);
    ASSERT_TRUE(info.has_value());
    ASSERT_EQ(info->escapedGpas.size(), 2u);
    for (Addr gpa : info->escapedGpas) {
        // Escaped pages now map to healthy frames...
        auto hpa = vm.gpaToHpa(gpa);
        ASSERT_TRUE(hpa.has_value());
        EXPECT_FALSE(host.isBad(*hpa));
        // ...with contents preserved...
        EXPECT_TRUE(host.read64(*hpa) == 0x1111 ||
                    host.read64(*hpa) == 0x2222);
        // ...and differ from the segment's linear mapping.
        EXPECT_NE(*hpa, info->regs.translate(gpa));
    }
}

TEST_F(VmmTest, BalloonReclaimFreesHostMemory)
{
    auto &vm = vmm.createVm("a", smallVmConfig());
    const Addr free_before = vmm.hostBuddy().freeBytes();
    std::vector<Addr> pages;
    for (Addr gpa = 8 * MiB; gpa < 9 * MiB; gpa += kPage4K)
        pages.push_back(gpa);
    vm.reclaimGuestPages(pages);
    EXPECT_EQ(vmm.hostBuddy().freeBytes(),
              free_before + 1 * MiB);
    EXPECT_FALSE(vm.gpaToHpa(8 * MiB).has_value());
    // Neighbouring pages are still backed.
    EXPECT_TRUE(vm.gpaToHpa(9 * MiB).has_value());
    EXPECT_GT(vm.vmExits(), 0u);
}

TEST_F(VmmTest, GrantExtensionWithinReserve)
{
    auto cfg = smallVmConfig();
    cfg.extensionReserve = 64 * MiB;
    auto &vm = vmm.createVm("a", cfg);
    auto base1 = vm.grantExtension(32 * MiB);
    ASSERT_TRUE(base1.has_value());
    EXPECT_EQ(*base1, 128 * MiB + 416 * MiB);
    auto base2 = vm.grantExtension(32 * MiB);
    ASSERT_TRUE(base2.has_value());
    EXPECT_EQ(*base2, *base1 + 32 * MiB);
    EXPECT_FALSE(vm.grantExtension(kPage4K).has_value());
}

TEST_F(VmmTest, ContiguousExtensionCoalescesWithHighRam)
{
    auto cfg = smallVmConfig();
    cfg.extensionReserve = 64 * MiB;
    auto &vm = vmm.createVm("a", cfg);
    auto base = vm.grantExtension(64 * MiB);
    ASSERT_TRUE(base.has_value());
    // The whole high range + extension is one extent: a single VMM
    // segment can cover it (the point of §VI.C).
    auto largest = vm.backingMap().largestExtent();
    ASSERT_TRUE(largest.has_value());
    EXPECT_EQ(largest->gpa, 128 * MiB);
    EXPECT_EQ(largest->bytes, 416 * MiB + 64 * MiB);
}

TEST_F(VmmTest, RepointBackingChangesOnePage)
{
    auto &vm = vmm.createVm("a", smallVmConfig());
    const Addr gpa = 20 * MiB;
    const Addr old_hpa = vm.gpaToHpa(gpa).value();
    auto fresh = vmm.allocHostBlock(PageSize::Size4K);
    ASSERT_TRUE(fresh.has_value());
    vm.repointBacking(gpa, *fresh);
    EXPECT_EQ(vm.gpaToHpa(gpa).value(), *fresh);
    EXPECT_NE(vm.gpaToHpa(gpa).value(), old_hpa);
    EXPECT_EQ(vm.gpaToHpa(gpa + kPage4K).value(),
              old_hpa + kPage4K);
}

TEST_F(VmmTest, HostCompactionMaterializesSegmentBacking)
{
    auto cfg = smallVmConfig();
    cfg.contiguousHostReservation = false;  // Scattered backing.
    // Pre-fragment the host.
    for (Addr a = 256 * MiB; a < kHostRam; a += 8 * MiB)
        ASSERT_TRUE(vmm.hostBuddy().allocateRange(a, kPage4K));
    setQuietLogging(true);
    auto &vm = vmm.createVm("a", cfg);
    setQuietLogging(false);
    ASSERT_FALSE(vm.createVmmSegment(128 * MiB).has_value());

    // Write markers to survive migration.
    vm.guestPhys().write64(130 * MiB, 0xfeed);
    vm.guestPhys().write64(200 * MiB, 0xface);

    auto migrated =
        vm.materializeVmmSegmentBacking(128 * MiB, 128 * MiB);
    ASSERT_TRUE(migrated.has_value());
    EXPECT_GT(*migrated, 0u);

    auto info = vm.createVmmSegment(128 * MiB);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->regs.base(), 128 * MiB);
    // Contents survived.
    EXPECT_EQ(vm.guestPhys().read64(130 * MiB), 0xfeedu);
    EXPECT_EQ(vm.guestPhys().read64(200 * MiB), 0xfaceu);
    // Backing is genuinely linear now.
    EXPECT_EQ(vm.gpaToHpa(128 * MiB).value() + 10 * MiB,
              vm.gpaToHpa(138 * MiB).value());
}

TEST_F(VmmTest, CompactionBudgetRefuses)
{
    auto cfg = smallVmConfig();
    cfg.contiguousHostReservation = false;
    for (Addr a = 256 * MiB; a < kHostRam; a += 8 * MiB)
        ASSERT_TRUE(vmm.hostBuddy().allocateRange(a, kPage4K));
    setQuietLogging(true);
    auto &vm = vmm.createVm("a", cfg);
    setQuietLogging(false);
    EXPECT_FALSE(
        vm.materializeVmmSegmentBacking(128 * MiB, 128 * MiB, 10)
            .has_value());
}

TEST_F(VmmTest, NestedChangeHookFires)
{
    auto &vm = vmm.createVm("a", smallVmConfig());
    std::vector<Addr> invalidated;
    vm.setNestedChangeHook(
        [&](Addr gpa, PageSize) { invalidated.push_back(gpa); });
    vm.reclaimGuestPages({8 * MiB});
    ASSERT_EQ(invalidated.size(), 1u);
    EXPECT_EQ(invalidated[0], 8 * MiB);
}

TEST_F(VmmTest, AllocHostBlockRetiresBadFrames)
{
    // Poison the next frame allocation would return (top-down).
    host.markBad(kHostRam - kPage4K);
    auto block = vmm.allocHostBlock(PageSize::Size4K);
    ASSERT_TRUE(block.has_value());
    EXPECT_FALSE(host.isBad(*block));
    EXPECT_EQ(vmm.stats().counterValue("bad_frames_retired"), 1u);
}

} // namespace
} // namespace emv::vmm
