/** @file Unit tests for pre-copy live migration and VMM swapping
 *  (the Table II services the modes trade away). */

#include <gtest/gtest.h>

#include "vmm/live_migration.hh"
#include "vmm/vmm.hh"

namespace emv::vmm {
namespace {

class LiveMigrationTest : public ::testing::Test
{
  protected:
    static constexpr Addr kHostRam = 1 * GiB;

    LiveMigrationTest() : host(kHostRam), vmm(host, kHostRam) {}

    Vm &
    makeVm(const char *name)
    {
        VmConfig cfg;
        cfg.ramBytes = 128 * MiB;
        cfg.lowRamBytes = 32 * MiB;
        cfg.ioGapStart = 32 * MiB;
        cfg.ioGapEnd = 64 * MiB;
        return vmm.createVm(name, cfg);
    }

    mem::PhysMemory host;
    Vmm vmm;
};

TEST_F(LiveMigrationTest, FullImageMigrates)
{
    auto &src = makeVm("src");
    auto &dst = makeVm("dst");
    for (Addr gpa = 64 * MiB; gpa < 96 * MiB; gpa += kPage4K)
        src.guestPhys().write64(gpa, gpa * 3 + 1);

    LiveMigration migration(src, dst);
    ASSERT_TRUE(migration.begin());
    const auto copied = migration.copyRound();
    EXPECT_EQ(copied, src.backingMap().totalBytes() / kPage4K);
    EXPECT_TRUE(migration.verify());
    // Destination really holds the bytes.
    EXPECT_EQ(dst.guestPhys().read64(80 * MiB), 80 * MiB * 3 + 1);
}

TEST_F(LiveMigrationTest, DirtyRoundsConverge)
{
    auto &src = makeVm("src");
    auto &dst = makeVm("dst");
    for (Addr gpa = 64 * MiB; gpa < 80 * MiB; gpa += kPage4K)
        src.guestPhys().write64(gpa, gpa);

    LiveMigration migration(src, dst);
    ASSERT_TRUE(migration.begin());
    migration.copyRound();

    // The guest keeps writing during migration.
    for (Addr gpa = 70 * MiB; gpa < 71 * MiB; gpa += kPage4K) {
        src.guestPhys().write64(gpa, 0xd1d1d1d1);
        migration.markDirty(gpa);
    }
    EXPECT_FALSE(migration.verify());  // Stale pages at dst.
    EXPECT_EQ(migration.dirtyPages(), 256u);
    EXPECT_FALSE(migration.converged(10));

    const auto copied = migration.copyRound();
    EXPECT_EQ(copied, 256u);
    EXPECT_TRUE(migration.converged(10));
    EXPECT_EQ(migration.finalRound(), 0u);
    EXPECT_TRUE(migration.verify());
    EXPECT_EQ(dst.guestPhys().read64(70 * MiB), 0xd1d1d1d1u);
}

TEST_F(LiveMigrationTest, RefusedUnderActiveVmmSegment)
{
    auto &src = makeVm("src");
    auto &dst = makeVm("dst");
    ASSERT_TRUE(src.createVmmSegment(32 * MiB).has_value());
    LiveMigration migration(src, dst);
    // Table II: Dual/VMM Direct's segment forbids migration.
    EXPECT_FALSE(migration.begin());
    EXPECT_EQ(migration.stats().counterValue(
                  "refused_segment_active"),
              1u);
}

TEST_F(LiveMigrationTest, BalloonedHolesStayHoles)
{
    auto &src = makeVm("src");
    auto &dst = makeVm("dst");
    std::vector<Addr> ballooned;
    for (Addr gpa = 70 * MiB; gpa < 71 * MiB; gpa += kPage4K)
        ballooned.push_back(gpa);
    src.reclaimGuestPages(ballooned);

    LiveMigration migration(src, dst);
    ASSERT_TRUE(migration.begin());
    migration.copyRound();
    EXPECT_TRUE(migration.verify());
}

class SwapTest : public LiveMigrationTest
{
};

TEST_F(SwapTest, SwapOutDropsBackingAndPreservesContents)
{
    auto &vm = makeVm("vm");
    vm.guestPhys().write64(80 * MiB, 0xabcdef);
    const Addr free_before = vmm.hostBuddy().freeBytes();
    ASSERT_TRUE(vm.swapOutPage(80 * MiB));
    EXPECT_TRUE(vm.isSwappedOut(80 * MiB));
    EXPECT_FALSE(vm.gpaToHpa(80 * MiB).has_value());
    EXPECT_EQ(vmm.hostBuddy().freeBytes(), free_before + kPage4K);

    // The nested fault path swaps it back in with contents intact.
    ASSERT_TRUE(vm.ensureBacked(80 * MiB));
    EXPECT_FALSE(vm.isSwappedOut(80 * MiB));
    EXPECT_EQ(vm.guestPhys().read64(80 * MiB), 0xabcdefu);
    EXPECT_GT(vm.stats().counterValue("pages_swapped_in"), 0u);
}

TEST_F(SwapTest, SwapDeclinedInsideVmmSegment)
{
    auto &vm = makeVm("vm");
    auto info = vm.createVmmSegment(32 * MiB);
    ASSERT_TRUE(info.has_value());
    const Addr inside = info->regs.base() + 4 * MiB;
    EXPECT_FALSE(vm.swapOutPage(inside));
    EXPECT_EQ(vm.stats().counterValue("swap_declined"), 1u);
    // Pages outside the segment still swap.
    Addr outside = 1 * MiB;
    ASSERT_FALSE(info->regs.contains(outside));
    EXPECT_TRUE(vm.swapOutPage(outside));
}

TEST_F(SwapTest, SwapUnbackedFails)
{
    auto &vm = makeVm("vm");
    std::vector<Addr> pages{80 * MiB};
    vm.reclaimGuestPages(pages);
    EXPECT_FALSE(vm.swapOutPage(80 * MiB));
}

} // namespace
} // namespace emv::vmm
