/** @file Unit tests for shadow paging (§II.A, §IX.D). */

#include <gtest/gtest.h>

#include "os/guest_os.hh"
#include "paging/walker.hh"
#include "vmm/shadow_pager.hh"
#include "vmm/vmm.hh"
#include "../test_support.hh"

namespace emv::vmm {
namespace {

class ShadowPagerTest : public ::testing::Test
{
  protected:
    static constexpr Addr kHostRam = 1 * GiB;

    ShadowPagerTest()
        : host(kHostRam), vmm(host, kHostRam)
    {
        VmConfig cfg;
        cfg.ramBytes = 256 * MiB;
        cfg.lowRamBytes = 64 * MiB;
        cfg.ioGapStart = 64 * MiB;
        cfg.ioGapEnd = 96 * MiB;
        vm = &vmm.createVm("a", cfg);
        os = std::make_unique<os::GuestOs>(
            vm->guestPhys(), vm->gpaSpan(), vm->guestRamLayout());
        proc = &os->createProcess();
        os->defineRegion(*proc, "heap", 1 * GiB, 16 * MiB,
                         PageSize::Size4K);
    }

    mem::PhysMemory host;
    Vmm vmm;
    Vm *vm;
    std::unique_ptr<os::GuestOs> os;
    os::Process *proc;
};

TEST_F(ShadowPagerTest, CheckpointRoundTripPreservesShadowTable)
{
    os->populateRange(*proc, 1 * GiB, 1 * MiB);
    ShadowPager a(*vm, *proc);
    a.rebuildAll();
    const auto bytes = test::ckptBytes(a);

    ShadowPager b(*vm, *proc);
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    EXPECT_EQ(b.shadowRoot(), a.shadowRoot());
    EXPECT_EQ(b.syncExits(), a.syncExits());

    // The restored shadow table still composes both dimensions.
    paging::Walker walker(host);
    paging::WalkTrace trace;
    auto out = walker.walk(b.shadowRoot(), 1 * GiB,
                           paging::RefStage::ShadowTable, trace);
    ASSERT_TRUE(out.ok);
    auto guest = proc->pageTable().translate(1 * GiB);
    ASSERT_TRUE(guest.has_value());
    EXPECT_EQ(out.pa, vm->gpaToHpa(guest->pa).value());
}

TEST_F(ShadowPagerTest, RebuildComposesGuestAndNested)
{
    os->populateRange(*proc, 1 * GiB, 1 * MiB);
    ShadowPager pager(*vm, *proc);
    pager.rebuildAll();

    // Shadow translation == guest translation composed with gPA→hPA.
    for (Addr off = 0; off < 1 * MiB; off += 64 * kPage4K) {
        const Addr gva = 1 * GiB + off;
        auto guest = proc->pageTable().translate(gva);
        ASSERT_TRUE(guest.has_value());
        auto expect_hpa = vm->gpaToHpa(guest->pa);
        ASSERT_TRUE(expect_hpa.has_value());
        // Walk the shadow table directly (it lives in host memory).
        paging::Walker walker(host);
        paging::WalkTrace trace;
        auto out = walker.walk(pager.shadowRoot(), gva,
                               paging::RefStage::ShadowTable, trace);
        ASSERT_TRUE(out.ok);
        EXPECT_EQ(out.pa, *expect_hpa);
        // A shadow walk is 1D: at most 4 references.
        EXPECT_LE(trace.refs.size(), 4u);
    }
}

TEST_F(ShadowPagerTest, SyncExitsChargedPerLeaf)
{
    ShadowPager pager(*vm, *proc);
    os->populateRange(*proc, 1 * GiB, 1 * MiB);
    pager.onGuestMapped(1 * GiB, 1 * MiB);
    EXPECT_EQ(pager.syncExits(), 256u);  // One per 4K leaf.
}

TEST_F(ShadowPagerTest, UnmapDropsShadowEntries)
{
    os->populateRange(*proc, 1 * GiB, 1 * MiB);
    ShadowPager pager(*vm, *proc);
    pager.rebuildAll();
    os->unmapRange(*proc, 1 * GiB, 1 * MiB);
    pager.onGuestUnmapped(1 * GiB, 1 * MiB);

    paging::Walker walker(host);
    paging::WalkTrace trace;
    auto out = walker.walk(pager.shadowRoot(), 1 * GiB,
                           paging::RefStage::ShadowTable, trace);
    EXPECT_FALSE(out.ok);
}

TEST_F(ShadowPagerTest, ShadowKeeps2MGranuleWhenBackingContiguous)
{
    // Guest maps 2M pages; eager contiguous backing keeps gPA→hPA
    // linear, so the shadow can use 2M leaves too.
    os->defineRegion(*proc, "big", 2 * GiB, 8 * MiB,
                     PageSize::Size2M);
    os->populateRange(*proc, 2 * GiB, 8 * MiB);
    ShadowPager pager(*vm, *proc);
    pager.rebuildAll();

    paging::Walker walker(host);
    paging::WalkTrace trace;
    auto out = walker.walk(pager.shadowRoot(), 2 * GiB,
                           paging::RefStage::ShadowTable, trace);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.size, PageSize::Size2M);
}

TEST_F(ShadowPagerTest, ShadowSplitsWhenBackingPunctured)
{
    os->defineRegion(*proc, "big", 2 * GiB, 2 * MiB,
                     PageSize::Size2M);
    os->populateRange(*proc, 2 * GiB, 2 * MiB);
    // Punch a hole in the backing under the 2M guest page.
    auto guest = proc->pageTable().translate(2 * GiB);
    ASSERT_TRUE(guest.has_value());
    auto fresh = vmm.allocHostBlock(PageSize::Size4K);
    ASSERT_TRUE(fresh.has_value());
    vm->repointBacking(guest->pa + 4 * kPage4K, *fresh);

    ShadowPager pager(*vm, *proc);
    pager.rebuildAll();
    paging::Walker walker(host);
    paging::WalkTrace trace;
    auto out = walker.walk(pager.shadowRoot(), 2 * GiB,
                           paging::RefStage::ShadowTable, trace);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.size, PageSize::Size4K);
    // The punctured page still translates correctly.
    paging::WalkTrace trace2;
    auto hole = walker.walk(pager.shadowRoot(),
                            2 * GiB + 4 * kPage4K,
                            paging::RefStage::ShadowTable, trace2);
    ASSERT_TRUE(hole.ok);
    EXPECT_EQ(alignDown(hole.pa, kPage4K), *fresh);
}

TEST_F(ShadowPagerTest, BackingChangeTriggersRebuild)
{
    os->populateRange(*proc, 1 * GiB, 1 * MiB);
    ShadowPager pager(*vm, *proc);
    pager.rebuildAll();
    const auto rebuilds =
        pager.stats().counterValue("rebuilds");
    pager.onBackingChanged(0, kPage4K);
    EXPECT_EQ(pager.stats().counterValue("rebuilds"), rebuilds + 1);
}

} // namespace
} // namespace emv::vmm
