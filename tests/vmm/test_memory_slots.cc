/** @file Unit tests for KVM-style memory slots (Fig. 10). */

#include <gtest/gtest.h>

#include "vmm/memory_slots.hh"
#include "../test_support.hh"

namespace emv::vmm {
namespace {

TEST(MemorySlotsTest, TwoSlotLayout)
{
    // The stock KVM layout: one slot below the gap, one above.
    MemorySlots slots;
    slots.addSlot("low", 0, 3 * GiB, 0x7f0000000000);
    slots.addSlot("high", 4 * GiB, 4 * GiB,
                  0x7f0000000000 + 4 * GiB);
    EXPECT_EQ(slots.slots().size(), 2u);
    EXPECT_TRUE(slots.gpaToHva(0).has_value());
    EXPECT_FALSE(slots.gpaToHva(3 * GiB).has_value());  // I/O gap.
    EXPECT_TRUE(slots.gpaToHva(5 * GiB).has_value());
}

TEST(MemorySlotsTest, TranslationIsLinearWithinSlot)
{
    MemorySlots slots;
    slots.addSlot("s", 4 * GiB, 1 * GiB, 0x1000000000);
    EXPECT_EQ(slots.gpaToHva(4 * GiB + 0x123).value(),
              0x1000000123u);
    EXPECT_EQ(slots.hvaToGpa(0x1000000123).value(),
              4 * GiB + 0x123);
}

TEST(MemorySlotsTest, RoundTrip)
{
    MemorySlots slots;
    slots.addSlot("a", 0, 1 * GiB, 0x100000000000);
    slots.addSlot("b", 4 * GiB, 2 * GiB, 0x200000000000);
    for (Addr gpa : {Addr(0), Addr(12345 * kPage4K),
                     Addr(4 * GiB + 7 * kPage4K)}) {
        auto hva = slots.gpaToHva(gpa);
        ASSERT_TRUE(hva.has_value());
        EXPECT_EQ(slots.hvaToGpa(*hva).value(), gpa);
    }
}

TEST(MemorySlotsTest, ExtendSlot)
{
    // §VI.C: the second slot is extended for hot-add.
    MemorySlots slots;
    slots.addSlot("high", 4 * GiB, 1 * GiB, 0x1000000000);
    EXPECT_FALSE(slots.gpaToHva(5 * GiB).has_value());
    slots.extendSlot("high", 1 * GiB);
    EXPECT_TRUE(slots.gpaToHva(5 * GiB).has_value());
    EXPECT_EQ(slots.find("high")->bytes, 2 * GiB);
}

TEST(MemorySlotsTest, FindByName)
{
    MemorySlots slots;
    slots.addSlot("low", 0, 1 * GiB, 0);
    EXPECT_NE(slots.find("low"), nullptr);
    EXPECT_EQ(slots.find("nope"), nullptr);
}

TEST(MemorySlotsDeathTest, OverlapPanics)
{
    MemorySlots slots;
    slots.addSlot("a", 0, 2 * GiB, 0);
    EXPECT_DEATH(slots.addSlot("b", 1 * GiB, 1 * GiB, 0),
                 "overlaps");
}

TEST(MemorySlotsDeathTest, ExtensionCollisionPanics)
{
    MemorySlots slots;
    slots.addSlot("a", 0, 1 * GiB, 0);
    slots.addSlot("b", 1 * GiB, 1 * GiB, 0x100000000);
    EXPECT_DEATH(slots.extendSlot("a", 1 * GiB), "collides");
}

TEST(MemorySlotsTest, CheckpointRoundTrip)
{
    MemorySlots a;
    a.addSlot("low", 0, 1 * GiB, 0x100000000000);
    a.addSlot("high", 4 * GiB, 2 * GiB, 0x200000000000);
    const auto bytes = test::ckptBytes(a);

    MemorySlots b;
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    ASSERT_EQ(b.slots().size(), 2u);
    EXPECT_EQ(b.gpaToHva(0x123).value(), 0x100000000123u);
    EXPECT_EQ(b.find("high")->bytes, 2 * GiB);
}

} // namespace
} // namespace emv::vmm
