/** @file Unit tests for the gPA→hPA backing-extent map. */

#include <gtest/gtest.h>

#include "vmm/backing_map.hh"
#include "../test_support.hh"

namespace emv::vmm {
namespace {

TEST(BackingMapTest, EmptyMapsNothing)
{
    BackingMap map;
    EXPECT_TRUE(map.empty());
    EXPECT_FALSE(map.toHpa(0).has_value());
    EXPECT_FALSE(map.covered(0, kPage4K));
    EXPECT_EQ(map.totalBytes(), 0u);
}

TEST(BackingMapTest, SimpleTranslation)
{
    BackingMap map;
    map.add(0x10000, 0x4000, 0x90000);
    EXPECT_EQ(map.toHpa(0x10000).value(), 0x90000u);
    EXPECT_EQ(map.toHpa(0x13fff).value(), 0x93fffu);
    EXPECT_FALSE(map.toHpa(0x14000).has_value());
    EXPECT_FALSE(map.toHpa(0xffff).has_value());
}

TEST(BackingMapTest, CoalescesContiguousInBothSpaces)
{
    BackingMap map;
    map.add(0, 0x1000, 0x10000);
    map.add(0x1000, 0x1000, 0x11000);
    EXPECT_EQ(map.extentCount(), 1u);
    EXPECT_EQ(map.totalBytes(), 0x2000u);
}

TEST(BackingMapTest, NoCoalesceWhenHostDiscontiguous)
{
    BackingMap map;
    map.add(0, 0x1000, 0x10000);
    map.add(0x1000, 0x1000, 0x20000);  // gPA adjacent, hPA not.
    EXPECT_EQ(map.extentCount(), 2u);
    EXPECT_EQ(map.toHpa(0x1000).value(), 0x20000u);
}

TEST(BackingMapTest, CoalescesWithPredecessorOnInsertBetween)
{
    BackingMap map;
    map.add(0, 0x1000, 0x10000);
    map.add(0x2000, 0x1000, 0x12000);
    map.add(0x1000, 0x1000, 0x11000);  // Bridges both neighbours.
    EXPECT_EQ(map.extentCount(), 1u);
    EXPECT_EQ(map.totalBytes(), 0x3000u);
}

TEST(BackingMapTest, RemoveSplitsExtent)
{
    BackingMap map;
    map.add(0, 0x10000, 0x50000);
    map.remove(0x4000, 0x2000);
    EXPECT_EQ(map.extentCount(), 2u);
    EXPECT_EQ(map.toHpa(0x3fff).value(), 0x53fffu);
    EXPECT_FALSE(map.toHpa(0x4000).has_value());
    EXPECT_FALSE(map.toHpa(0x5fff).has_value());
    EXPECT_EQ(map.toHpa(0x6000).value(), 0x56000u);
}

TEST(BackingMapTest, RemoveAcrossExtents)
{
    BackingMap map;
    map.add(0, 0x2000, 0x10000);
    map.add(0x4000, 0x2000, 0x20000);
    map.remove(0x1000, 0x4000);
    EXPECT_EQ(map.totalBytes(), 0x2000u);
    EXPECT_TRUE(map.toHpa(0).has_value());
    EXPECT_TRUE(map.toHpa(0x5000).has_value());
}

TEST(BackingMapTest, CoveredRequiresFullBacking)
{
    BackingMap map;
    map.add(0, 0x2000, 0x10000);
    map.add(0x2000, 0x2000, 0x30000);  // Separate extent.
    EXPECT_TRUE(map.covered(0, 0x4000));
    map.remove(0x2000, kPage4K);
    EXPECT_FALSE(map.covered(0, 0x4000));
}

TEST(BackingMapTest, LargestExtent)
{
    BackingMap map;
    map.add(0, 0x1000, 0x10000);
    map.add(0x10000, 0x8000, 0x40000);
    auto largest = map.largestExtent();
    ASSERT_TRUE(largest.has_value());
    EXPECT_EQ(largest->gpa, 0x10000u);
    EXPECT_EQ(largest->bytes, 0x8000u);
    EXPECT_EQ(largest->hpa, 0x40000u);
}

TEST(BackingMapTest, ForEachInClipsToRange)
{
    BackingMap map;
    map.add(0, 0x4000, 0x10000);
    map.add(0x8000, 0x4000, 0x20000);
    std::vector<Extent> seen;
    map.forEachIn(0x2000, 0x8000,
                  [&](const Extent &e) { seen.push_back(e); });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].gpa, 0x2000u);
    EXPECT_EQ(seen[0].bytes, 0x2000u);
    EXPECT_EQ(seen[0].hpa, 0x12000u);
    EXPECT_EQ(seen[1].gpa, 0x8000u);
    EXPECT_EQ(seen[1].bytes, 0x2000u);
}

TEST(BackingMapDeathTest, OverlappingAddPanics)
{
    BackingMap map;
    map.add(0, 0x4000, 0x10000);
    EXPECT_DEATH(map.add(0x2000, 0x1000, 0x50000), "overlaps");
}

TEST(BackingMapTest, CheckpointRoundTripReplacesContents)
{
    BackingMap a;
    a.add(0, 0x2000, 0x10000);
    a.add(0x8000, 0x1000, 0x40000);
    const auto bytes = test::ckptBytes(a);

    BackingMap b;
    b.add(0x100000, 0x1000, 0x90000);  // Stale; replaced.
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    EXPECT_EQ(b.extentCount(), 2u);
    EXPECT_EQ(b.toHpa(0x1008).value(), 0x11008u);
    EXPECT_EQ(b.toHpa(0x8000).value(), 0x40000u);
    EXPECT_FALSE(b.toHpa(0x100000).has_value());
}

} // namespace
} // namespace emv::vmm
