/** @file Unit tests for content-based page sharing (§IX.E). */

#include <gtest/gtest.h>

#include "vmm/page_sharing.hh"
#include "vmm/vmm.hh"

namespace emv::vmm {
namespace {

class PageSharingTest : public ::testing::Test
{
  protected:
    static constexpr Addr kHostRam = 1 * GiB;

    PageSharingTest() : host(kHostRam), vmm(host, kHostRam) {}

    Vm &
    makeVm(const char *name)
    {
        VmConfig cfg;
        cfg.ramBytes = 64 * MiB;
        cfg.lowRamBytes = 16 * MiB;
        cfg.ioGapStart = 16 * MiB;
        cfg.ioGapEnd = 32 * MiB;
        return vmm.createVm(name, cfg);
    }

    /** Write distinct content to every 4K page in a gPA range. */
    static void
    fillUnique(Vm &vm, Addr gpa, Addr bytes, std::uint64_t tag)
    {
        for (Addr off = 0; off < bytes; off += kPage4K)
            vm.guestPhys().write64(gpa + off, tag ^ (gpa + off));
    }

    mem::PhysMemory host;
    Vmm vmm;
};

TEST_F(PageSharingTest, ScanCountsFrames)
{
    auto &a = makeVm("a");
    PageSharing sharing(vmm);
    auto report = sharing.scan({&a});
    EXPECT_EQ(report.scannedFrames, 64 * MiB / kPage4K);
}

TEST_F(PageSharingTest, UntouchedMemoryIsFullyShareable)
{
    // All-zero frames dedupe to one copy: the trivial upper bound.
    auto &a = makeVm("a");
    PageSharing sharing(vmm);
    auto report = sharing.scan({&a});
    EXPECT_EQ(report.duplicateFrames, report.scannedFrames - 1);
}

TEST_F(PageSharingTest, UniqueContentIsNotShareable)
{
    // §IX.E: big-memory data is workload-unique — little sharing.
    auto &a = makeVm("a");
    auto &b = makeVm("b");
    fillUnique(a, 0, 16 * MiB, 0x1111);
    fillUnique(a, 32 * MiB, 48 * MiB, 0x1111);
    fillUnique(b, 0, 16 * MiB, 0x2222);
    fillUnique(b, 32 * MiB, 48 * MiB, 0x2222);
    PageSharing sharing(vmm);
    auto report = sharing.scan({&a, &b});
    EXPECT_EQ(report.duplicateFrames, 0u);
    EXPECT_DOUBLE_EQ(report.savedFraction, 0.0);
}

TEST_F(PageSharingTest, IdenticalOsPagesShareAcrossVms)
{
    // "OS code pages can be easily shared": same kernel image in
    // both VMs' low memory.
    auto &a = makeVm("a");
    auto &b = makeVm("b");
    for (Addr off = 0; off < 4 * MiB; off += kPage4K) {
        a.guestPhys().write64(off, 0xc0de ^ off);
        b.guestPhys().write64(off, 0xc0de ^ off);
    }
    fillUnique(a, 32 * MiB, 48 * MiB, 0xaaaa);
    fillUnique(b, 32 * MiB, 48 * MiB, 0xbbbb);
    fillUnique(a, 4 * MiB, 12 * MiB, 0xaaaa);
    fillUnique(b, 4 * MiB, 12 * MiB, 0xbbbb);

    PageSharing sharing(vmm);
    auto report = sharing.scan({&a, &b});
    EXPECT_EQ(report.duplicateFrames, 4 * MiB / kPage4K);
    EXPECT_LT(report.savedFraction, 0.05);  // <3%-ish of total.
}

TEST_F(PageSharingTest, MergeFreesDuplicates)
{
    auto &a = makeVm("a");
    auto &b = makeVm("b");
    // Make everything unique except one 1 MB identical stretch.
    fillUnique(a, 0, 16 * MiB, 0x1);
    fillUnique(b, 0, 16 * MiB, 0x2);
    fillUnique(a, 32 * MiB, 48 * MiB, 0x1);
    fillUnique(b, 32 * MiB, 48 * MiB, 0x2);
    for (Addr off = 0; off < 1 * MiB; off += kPage4K) {
        // Unique per page, but identical across the two VMs.
        a.guestPhys().write64(40 * MiB + off, 0x5a3e0000 + off);
        b.guestPhys().write64(40 * MiB + off, 0x5a3e0000 + off);
    }

    PageSharing sharing(vmm);
    const Addr free_before = vmm.hostBuddy().freeBytes();
    const auto freed = sharing.mergeDuplicates({&a, &b});
    EXPECT_EQ(freed, 1 * MiB / kPage4K);
    EXPECT_EQ(vmm.hostBuddy().freeBytes(), free_before + 1 * MiB);

    // Both VMs still read their (shared) content.
    EXPECT_EQ(a.guestPhys().read64(40 * MiB), 0x5a3e0000u);
    EXPECT_EQ(b.guestPhys().read64(40 * MiB), 0x5a3e0000u);
    EXPECT_EQ(a.gpaToHpa(40 * MiB).value(),
              b.gpaToHpa(40 * MiB).value());
    EXPECT_TRUE(sharing.isShared(a.gpaToHpa(40 * MiB).value()));
}

TEST_F(PageSharingTest, CowBreaksOnWrite)
{
    auto &a = makeVm("a");
    auto &b = makeVm("b");
    fillUnique(a, 0, 16 * MiB, 0x1);
    fillUnique(b, 0, 16 * MiB, 0x2);
    fillUnique(a, 32 * MiB, 48 * MiB, 0x1);
    fillUnique(b, 32 * MiB, 48 * MiB, 0x2);
    a.guestPhys().write64(40 * MiB, 0x77);
    b.guestPhys().write64(40 * MiB, 0x77);

    PageSharing sharing(vmm);
    sharing.mergeDuplicates({&a, &b});
    ASSERT_EQ(a.gpaToHpa(40 * MiB).value(),
              b.gpaToHpa(40 * MiB).value());

    // VM b writes: COW break gives it a private copy.
    sharing.onGuestWrite(b, 40 * MiB);
    b.guestPhys().write64(40 * MiB, 0x99);
    EXPECT_NE(a.gpaToHpa(40 * MiB).value(),
              b.gpaToHpa(40 * MiB).value());
    EXPECT_EQ(a.guestPhys().read64(40 * MiB), 0x77u);
    EXPECT_EQ(b.guestPhys().read64(40 * MiB), 0x99u);
}

} // namespace
} // namespace emv::vmm
