/** @file Unit tests for simulated physical memory. */

#include <gtest/gtest.h>

#include "mem/phys_memory.hh"
#include "../test_support.hh"

namespace emv::mem {
namespace {

TEST(PhysMemoryTest, UntouchedReadsZero)
{
    PhysMemory mem(1 * MiB);
    EXPECT_EQ(mem.read64(0), 0u);
    EXPECT_EQ(mem.read64(0x8000), 0u);
    EXPECT_EQ(mem.residentFrames(), 0u);
}

TEST(PhysMemoryTest, WriteThenRead)
{
    PhysMemory mem(1 * MiB);
    mem.write64(0x1000, 0xdeadbeefcafebabeull);
    EXPECT_EQ(mem.read64(0x1000), 0xdeadbeefcafebabeull);
    EXPECT_EQ(mem.read64(0x1008), 0u);
    EXPECT_EQ(mem.residentFrames(), 1u);
}

TEST(PhysMemoryTest, SparseMaterialization)
{
    PhysMemory mem(1 * GiB);
    mem.write64(0, 1);
    mem.write64(512 * MiB, 2);
    EXPECT_EQ(mem.residentFrames(), 2u);
}

TEST(PhysMemoryTest, ZeroFrame)
{
    PhysMemory mem(1 * MiB);
    mem.write64(0x2000, 7);
    mem.write64(0x2ff8, 9);
    mem.zeroFrame(0x2000);
    EXPECT_EQ(mem.read64(0x2000), 0u);
    EXPECT_EQ(mem.read64(0x2ff8), 0u);
}

TEST(PhysMemoryTest, CopyFrame)
{
    PhysMemory mem(1 * MiB);
    mem.write64(0x1000, 11);
    mem.write64(0x1ff8, 22);
    mem.copyFrame(0x3000, 0x1000);
    EXPECT_EQ(mem.read64(0x3000), 11u);
    EXPECT_EQ(mem.read64(0x3ff8), 22u);
}

TEST(PhysMemoryTest, CopyFromUntouchedZeroes)
{
    PhysMemory mem(1 * MiB);
    mem.write64(0x3000, 5);
    mem.copyFrame(0x3000, 0x7000);
    EXPECT_EQ(mem.read64(0x3000), 0u);
}

TEST(PhysMemoryTest, HashDistinguishesContent)
{
    PhysMemory mem(1 * MiB);
    mem.write64(0x1000, 1);
    mem.write64(0x2000, 2);
    EXPECT_NE(mem.hashFrame(0x1000), mem.hashFrame(0x2000));
}

TEST(PhysMemoryTest, HashEqualForEqualContent)
{
    PhysMemory mem(1 * MiB);
    mem.write64(0x1008, 42);
    mem.write64(0x2008, 42);
    EXPECT_EQ(mem.hashFrame(0x1000), mem.hashFrame(0x2000));
    // Untouched frames hash like all-zero frames.
    EXPECT_EQ(mem.hashFrame(0x4000), mem.hashFrame(0x5000));
}

TEST(PhysMemoryTest, BadFrames)
{
    PhysMemory mem(1 * MiB);
    EXPECT_FALSE(mem.isBad(0x5000));
    mem.markBad(0x5123);
    EXPECT_TRUE(mem.isBad(0x5000));
    EXPECT_TRUE(mem.isBad(0x5fff));
    EXPECT_FALSE(mem.isBad(0x6000));
    EXPECT_EQ(mem.badFrameCount(), 1u);
    mem.clearBad(0x5000);
    EXPECT_FALSE(mem.isBad(0x5000));
}

TEST(PhysMemoryTest, AnyBadInRange)
{
    PhysMemory mem(1 * MiB);
    mem.markBad(0x40000);
    EXPECT_TRUE(mem.anyBadInRange(0x40000, kPage4K));
    EXPECT_TRUE(mem.anyBadInRange(0x3f000, 2 * kPage4K));
    EXPECT_FALSE(mem.anyBadInRange(0x41000, kPage4K));
}

TEST(PhysMemoryTest, BadFramesInRangeSorted)
{
    PhysMemory mem(1 * MiB);
    mem.markBad(0x9000);
    mem.markBad(0x3000);
    mem.markBad(0x6000);
    auto bad = mem.badFramesInRange(0, 1 * MiB);
    ASSERT_EQ(bad.size(), 3u);
    EXPECT_EQ(bad[0], 0x3000u);
    EXPECT_EQ(bad[1], 0x6000u);
    EXPECT_EQ(bad[2], 0x9000u);
}

TEST(PhysMemoryTest, CountsAccesses)
{
    PhysMemory mem(1 * MiB);
    mem.read64(0);
    mem.read64(8);
    mem.write64(16, 1);
    EXPECT_EQ(mem.stats().counterValue("reads"), 2u);
    EXPECT_EQ(mem.stats().counterValue("writes"), 1u);
}

TEST(PhysMemoryDeathTest, OutOfBoundsPanics)
{
    PhysMemory mem(1 * MiB);
    EXPECT_DEATH(mem.read64(2 * MiB), "beyond memory");
}

TEST(PhysMemoryDeathTest, MisalignedPanics)
{
    PhysMemory mem(1 * MiB);
    EXPECT_DEATH(mem.read64(4), "misaligned");
}

TEST(PhysMemoryTest, CheckpointRoundTripReplacesFrames)
{
    PhysMemory a(1 * MiB);
    a.write64(0x1000, 0xdeadbeefcafebabeull);
    a.write64(0x8ff8, 7);
    const auto bytes = test::ckptBytes(a);

    PhysMemory b(1 * MiB);
    b.write64(0x2000, 5);  // Stale resident frame; dropped.
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    EXPECT_EQ(b.read64(0x1000), 0xdeadbeefcafebabeull);
    EXPECT_EQ(b.read64(0x8ff8), 7u);
    EXPECT_EQ(b.read64(0x2000), 0u);
    EXPECT_EQ(b.residentFrames(), a.residentFrames());
}

TEST(PhysMemoryTest, CheckpointRejectsSizeMismatch)
{
    PhysMemory a(1 * MiB);
    PhysMemory b(2 * MiB);
    EXPECT_FALSE(test::ckptRestore(test::ckptBytes(a), b));
}

} // namespace
} // namespace emv::mem
