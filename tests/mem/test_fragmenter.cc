/** @file Unit tests for fragmentation injection. */

#include <gtest/gtest.h>

#include "mem/fragmenter.hh"

namespace emv::mem {
namespace {

TEST(FragmenterTest, FragmentToRunBoundsLargestRun)
{
    BuddyAllocator buddy(0, 64 * MiB);
    Fragmenter frag(5);
    auto pins = frag.fragmentToRun(buddy, 4 * MiB);
    EXPECT_LE(buddy.largestFreeRun(), 4 * MiB);
    EXPECT_FALSE(pins.empty());
}

TEST(FragmenterTest, ReleaseRestoresContiguity)
{
    BuddyAllocator buddy(0, 64 * MiB);
    Fragmenter frag(5);
    auto pins = frag.fragmentToRun(buddy, 2 * MiB);
    Fragmenter::release(buddy, pins);
    EXPECT_EQ(buddy.largestFreeRun(), 64 * MiB);
}

TEST(FragmenterTest, PinsLittleMemory)
{
    BuddyAllocator buddy(0, 64 * MiB);
    Fragmenter frag(7);
    auto pins = frag.fragmentToRun(buddy, 4 * MiB);
    // Fragmentation needs only scattered single pages, not bulk.
    EXPECT_LT(pins.size() * kPage4K, 2 * MiB);
    EXPECT_GT(buddy.freeBytes(), 60 * MiB);
}

TEST(FragmenterTest, DeterministicForSeed)
{
    BuddyAllocator a(0, 32 * MiB), b(0, 32 * MiB);
    auto pa = Fragmenter(9).fragmentToRun(a, 1 * MiB);
    auto pb = Fragmenter(9).fragmentToRun(b, 1 * MiB);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_EQ(pa[i].base, pb[i].base);
}

TEST(FragmenterTest, PinFractionPinsRequestedAmount)
{
    BuddyAllocator buddy(0, 32 * MiB);
    Fragmenter frag(11);
    auto pins = frag.pinFraction(buddy, 0.25);
    const Addr pinned = pins.size() * kPage4K;
    EXPECT_NEAR(static_cast<double>(pinned),
                0.25 * 32 * MiB, 2.0 * kPage4K);
}

TEST(FragmenterTest, PinFractionZeroIsNoop)
{
    BuddyAllocator buddy(0, 32 * MiB);
    Fragmenter frag(13);
    auto pins = frag.pinFraction(buddy, 0.0);
    EXPECT_TRUE(pins.empty());
    EXPECT_EQ(buddy.freeBytes(), 32 * MiB);
}

TEST(FragmenterTest, AlreadySmallRunIsNoop)
{
    BuddyAllocator buddy(0, 8 * MiB);
    Fragmenter frag(15);
    auto pins = frag.fragmentToRun(buddy, 16 * MiB);
    EXPECT_TRUE(pins.empty());
}

} // namespace
} // namespace emv::mem
