/** @file Unit tests for the buddy frame allocator. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "mem/buddy_allocator.hh"
#include "../test_support.hh"

namespace emv::mem {
namespace {

TEST(BuddyTest, FreshAllocatorIsAllFree)
{
    BuddyAllocator buddy(0, 16 * MiB);
    EXPECT_EQ(buddy.freeBytes(), 16 * MiB);
    EXPECT_EQ(buddy.largestFreeRun(), 16 * MiB);
    EXPECT_DOUBLE_EQ(buddy.fragmentationIndex(), 0.0);
}

TEST(BuddyTest, AllocateReturnsAlignedBlocks)
{
    BuddyAllocator buddy(0, 16 * MiB);
    for (unsigned order : {0u, 3u, 9u}) {
        auto block = buddy.allocate(order);
        ASSERT_TRUE(block.has_value());
        EXPECT_TRUE(isAligned(*block, kPage4K << order));
    }
}

TEST(BuddyTest, AllocateIsTopDown)
{
    BuddyAllocator buddy(0, 16 * MiB);
    auto first = buddy.allocate(0);
    auto second = buddy.allocate(0);
    ASSERT_TRUE(first && second);
    EXPECT_EQ(*first, 16 * MiB - kPage4K);
    EXPECT_LT(*second, *first);
}

TEST(BuddyTest, FreeBytesTracksAllocations)
{
    BuddyAllocator buddy(0, 16 * MiB);
    auto a = buddy.allocate(4);  // 64K
    EXPECT_EQ(buddy.freeBytes(), 16 * MiB - 64 * KiB);
    buddy.free(*a, 4);
    EXPECT_EQ(buddy.freeBytes(), 16 * MiB);
}

TEST(BuddyTest, CoalescingRestoresLargestRun)
{
    BuddyAllocator buddy(0, 16 * MiB);
    std::vector<Addr> blocks;
    for (int i = 0; i < 64; ++i)
        blocks.push_back(*buddy.allocate(0));
    for (Addr block : blocks)
        buddy.free(block, 0);
    EXPECT_EQ(buddy.largestFreeRun(), 16 * MiB);
}

TEST(BuddyTest, ExhaustionReturnsNullopt)
{
    BuddyAllocator buddy(0, 64 * KiB);
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(buddy.allocate(0).has_value());
    EXPECT_FALSE(buddy.allocate(0).has_value());
}

TEST(BuddyTest, NoDoubleAllocation)
{
    BuddyAllocator buddy(0, 4 * MiB);
    std::set<Addr> seen;
    while (auto block = buddy.allocate(0))
        EXPECT_TRUE(seen.insert(*block).second);
    EXPECT_EQ(seen.size(), 1024u);
}

TEST(BuddyTest, AllocateRangeExact)
{
    BuddyAllocator buddy(0, 16 * MiB);
    EXPECT_TRUE(buddy.allocateRange(1 * MiB, 2 * MiB));
    EXPECT_FALSE(buddy.rangeFree(1 * MiB, 2 * MiB));
    EXPECT_EQ(buddy.freeBytes(), 14 * MiB);
    // Overlapping reservation fails.
    EXPECT_FALSE(buddy.allocateRange(2 * MiB, 1 * MiB));
    buddy.freeRange(1 * MiB, 2 * MiB);
    EXPECT_EQ(buddy.largestFreeRun(), 16 * MiB);
}

TEST(BuddyTest, AllocateRangeOutsideFails)
{
    BuddyAllocator buddy(kPage4K, 1 * MiB);
    EXPECT_FALSE(buddy.allocateRange(0, kPage4K));
    EXPECT_FALSE(buddy.allocateRange(2 * MiB, kPage4K));
}

TEST(BuddyTest, NonZeroBase)
{
    BuddyAllocator buddy(8 * MiB, 8 * MiB);
    auto block = buddy.allocate(0);
    ASSERT_TRUE(block.has_value());
    EXPECT_GE(*block, 8 * MiB);
    EXPECT_LT(*block, 16 * MiB);
    buddy.free(*block, 0);
    EXPECT_EQ(buddy.largestFreeRun(), 8 * MiB);
}

TEST(BuddyTest, NonPowerOfTwoSize)
{
    BuddyAllocator buddy(0, 12 * MiB + 8 * KiB);
    EXPECT_EQ(buddy.freeBytes(), 12 * MiB + 8 * KiB);
    Addr total = 0;
    while (auto b = buddy.allocate(0)) {
        (void)b;
        total += kPage4K;
    }
    EXPECT_EQ(total, 12 * MiB + 8 * KiB);
}

TEST(BuddyTest, FragmentationIndexRises)
{
    BuddyAllocator buddy(0, 16 * MiB);
    // Pin every other 4K page of the top half.
    for (Addr a = 8 * MiB; a < 16 * MiB; a += 2 * kPage4K)
        ASSERT_TRUE(buddy.allocateRange(a, kPage4K));
    EXPECT_GT(buddy.fragmentationIndex(), 0.3);
    EXPECT_EQ(buddy.largestFreeRun(), 8 * MiB);
}

TEST(BuddyTest, OrderForBytes)
{
    EXPECT_EQ(BuddyAllocator::orderForBytes(1), 0u);
    EXPECT_EQ(BuddyAllocator::orderForBytes(kPage4K), 0u);
    EXPECT_EQ(BuddyAllocator::orderForBytes(kPage4K + 1), 1u);
    EXPECT_EQ(BuddyAllocator::orderForBytes(kPage2M), 9u);
    EXPECT_EQ(BuddyAllocator::orderForBytes(kPage1G), 18u);
}

TEST(BuddyTest, FreeIntervalsMatchAccounting)
{
    BuddyAllocator buddy(0, 8 * MiB);
    buddy.allocateRange(1 * MiB, 1 * MiB);
    buddy.allocateRange(4 * MiB, 2 * MiB);
    auto free_set = buddy.freeIntervals();
    EXPECT_EQ(free_set.totalLength(), buddy.freeBytes());
    EXPECT_FALSE(free_set.contains(1 * MiB + 1));
    EXPECT_TRUE(free_set.contains(3 * MiB));
}

/** Property sweep: random alloc/free keeps invariants. */
class BuddyPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BuddyPropertyTest, RandomAllocFreeConservesBytes)
{
    Rng rng(GetParam());
    BuddyAllocator buddy(0, 32 * MiB);
    struct Block { Addr base; unsigned order; };
    std::vector<Block> live;
    for (int step = 0; step < 3000; ++step) {
        if (live.empty() || rng.nextBool(0.55)) {
            const unsigned order =
                static_cast<unsigned>(rng.nextBelow(6));
            if (auto block = buddy.allocate(order))
                live.push_back({*block, order});
        } else {
            const auto idx = rng.nextBelow(live.size());
            buddy.free(live[idx].base, live[idx].order);
            live[idx] = live.back();
            live.pop_back();
        }
        Addr live_bytes = 0;
        for (const auto &blk : live)
            live_bytes += kPage4K << blk.order;
        ASSERT_EQ(buddy.freeBytes() + live_bytes, 32 * MiB);
    }
    // Freeing everything restores a single run.
    for (const auto &blk : live)
        buddy.free(blk.base, blk.order);
    EXPECT_EQ(buddy.largestFreeRun(), 32 * MiB);
}

TEST_P(BuddyPropertyTest, LiveBlocksNeverOverlap)
{
    Rng rng(GetParam() ^ 0xabcdef);
    BuddyAllocator buddy(0, 16 * MiB);
    std::set<Addr> live_pages;
    struct Block { Addr base; unsigned order; };
    std::vector<Block> live;
    for (int step = 0; step < 1500; ++step) {
        if (live.empty() || rng.nextBool(0.6)) {
            const unsigned order =
                static_cast<unsigned>(rng.nextBelow(4));
            auto block = buddy.allocate(order);
            if (!block)
                continue;
            for (Addr p = *block;
                 p < *block + (kPage4K << order); p += kPage4K) {
                ASSERT_TRUE(live_pages.insert(p).second)
                    << "overlap at " << std::hex << p;
            }
            live.push_back({*block, order});
        } else {
            const auto idx = rng.nextBelow(live.size());
            for (Addr p = live[idx].base;
                 p < live[idx].base + (kPage4K << live[idx].order);
                 p += kPage4K) {
                live_pages.erase(p);
            }
            buddy.free(live[idx].base, live[idx].order);
            live[idx] = live.back();
            live.pop_back();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(BuddyTest, CheckpointRoundTripPreservesFreeLists)
{
    BuddyAllocator a(0, 16 * MiB);
    a.allocate(0);
    a.allocate(4);
    auto block = a.allocate(2);
    ASSERT_TRUE(block.has_value());
    a.free(*block, 2);
    const auto bytes = test::ckptBytes(a);

    BuddyAllocator b(0, 16 * MiB);
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    EXPECT_EQ(b.freeBytes(), a.freeBytes());
    EXPECT_EQ(b.largestFreeRun(), a.largestFreeRun());
    // The restored allocator hands out the same next block.
    EXPECT_EQ(b.allocate(0), a.allocate(0));
}

TEST(BuddyTest, CheckpointRejectsRangeMismatch)
{
    BuddyAllocator a(0, 16 * MiB);
    BuddyAllocator b(0, 8 * MiB);
    EXPECT_FALSE(test::ckptRestore(test::ckptBytes(a), b));
}

} // namespace
} // namespace emv::mem
