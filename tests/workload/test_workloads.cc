/** @file Unit tests for the workload trace generators (Table V). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/workload.hh"
#include "../test_support.hh"

namespace emv::workload {
namespace {

/** Bind a workload's regions at synthetic bases. */
std::vector<Addr>
bind(Workload &wl)
{
    std::vector<Addr> bases;
    Addr next = 1ull << 40;
    for (const auto &spec : wl.regions()) {
        bases.push_back(next);
        next += spec.bytes + (1ull << 36);
    }
    wl.bindRegions(bases);
    return bases;
}

bool
inRegions(const Workload &wl, const std::vector<Addr> &bases,
          Addr va)
{
    const auto &specs = wl.regions();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (va >= bases[i] && va < bases[i] + specs[i].bytes)
            return true;
    }
    return false;
}

/** Per-kind parameterized properties. */
class WorkloadPropertyTest
    : public ::testing::TestWithParam<WorkloadKind>
{
};

TEST_P(WorkloadPropertyTest, AllAccessesLieInDeclaredRegions)
{
    auto wl = makeWorkload(GetParam(), 1, 0.02);
    auto bases = bind(*wl);
    for (int i = 0; i < 50000; ++i) {
        const Op op = wl->next();
        if (op.kind == Op::Kind::Remap) {
            EXPECT_TRUE(inRegions(*wl, bases, op.va));
            EXPECT_TRUE(inRegions(*wl, bases,
                                  op.va + op.bytes - 1));
        } else {
            ASSERT_TRUE(inRegions(*wl, bases, op.va))
                << workloadName(GetParam()) << " op " << i;
        }
    }
}

TEST_P(WorkloadPropertyTest, DeterministicForSeed)
{
    auto a = makeWorkload(GetParam(), 7, 0.02);
    auto b = makeWorkload(GetParam(), 7, 0.02);
    bind(*a);
    bind(*b);
    for (int i = 0; i < 5000; ++i) {
        const Op oa = a->next();
        const Op ob = b->next();
        ASSERT_EQ(oa.va, ob.va);
        ASSERT_EQ(static_cast<int>(oa.kind),
                  static_cast<int>(ob.kind));
    }
}

TEST_P(WorkloadPropertyTest, ScaleControlsFootprint)
{
    auto small = makeWorkload(GetParam(), 1, 0.01);
    auto large = makeWorkload(GetParam(), 1, 0.05);
    EXPECT_LT(small->info().footprintBytes,
              large->info().footprintBytes);
}

TEST_P(WorkloadPropertyTest, InfoIsSane)
{
    auto wl = makeWorkload(GetParam(), 1, 0.02);
    EXPECT_FALSE(wl->info().name.empty());
    EXPECT_GT(wl->info().baseCyclesPerAccess, 0.0);
    EXPECT_GT(wl->info().footprintBytes, 0u);
    EXPECT_EQ(wl->info().bigMemory, isBigMemory(GetParam()));
    // Regions are 2M-aligned sizes (mapping-friendly).
    for (const auto &spec : wl->regions())
        EXPECT_TRUE(isAligned(spec.bytes, kPage2M));
}

TEST_P(WorkloadPropertyTest, BigMemoryWorkloadsHavePrimaryRegion)
{
    auto wl = makeWorkload(GetParam(), 1, 0.02);
    bool has_primary = false;
    for (const auto &spec : wl->regions())
        has_primary |= spec.primary;
    // Every workload declares one primary region (compute workloads
    // have heaps too; DS suitability is a policy question).
    EXPECT_TRUE(has_primary);
}

TEST_P(WorkloadPropertyTest, CheckpointRoundTripResumesStream)
{
    auto a = makeWorkload(GetParam(), 7, 0.02);
    bind(*a);
    for (int i = 0; i < 5000; ++i)
        a->next();
    const auto bytes = test::ckptBytes(*a);

    // Restore into a freshly-constructed, freshly-bound generator:
    // the op stream must continue exactly where the original left
    // off, including churn/remap phase state.
    auto b = makeWorkload(GetParam(), 7, 0.02);
    bind(*b);
    ASSERT_TRUE(test::ckptRestore(bytes, *b));
    EXPECT_EQ(test::ckptBytes(*b), bytes);
    for (int i = 0; i < 2000; ++i) {
        const Op oa = a->next();
        const Op ob = b->next();
        ASSERT_EQ(static_cast<int>(oa.kind),
                  static_cast<int>(ob.kind)) << "op " << i;
        ASSERT_EQ(oa.va, ob.va) << "op " << i;
        ASSERT_EQ(oa.bytes, ob.bytes) << "op " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, WorkloadPropertyTest,
    ::testing::Values(WorkloadKind::Gups, WorkloadKind::Graph500,
                      WorkloadKind::Memcached, WorkloadKind::NpbCg,
                      WorkloadKind::CactusADM,
                      WorkloadKind::GemsFDTD, WorkloadKind::Mcf,
                      WorkloadKind::Omnetpp, WorkloadKind::Canneal,
                      WorkloadKind::Streamcluster),
    [](const auto &info) {
        std::string name = workloadName(info.param);
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(WorkloadTest, GupsIsMostlyRandomReads)
{
    auto wl = makeWorkload(WorkloadKind::Gups, 1, 0.02);
    bind(*wl);
    std::set<Addr> pages;
    int reads = 0, writes = 0;
    for (int i = 0; i < 20000; ++i) {
        const Op op = wl->next();
        pages.insert(op.va >> 12);
        reads += op.kind == Op::Kind::Read ? 1 : 0;
        writes += op.kind == Op::Kind::Write ? 1 : 0;
    }
    // RMW pattern: near-equal reads and writes.
    EXPECT_NEAR(writes, reads, reads / 2);
    // Random access: touches a large fraction of distinct pages.
    EXPECT_GT(pages.size(), 5000u);
}

TEST(WorkloadTest, StreamclusterIsMostlySequential)
{
    auto wl = makeWorkload(WorkloadKind::Streamcluster, 1, 0.02);
    bind(*wl);
    std::set<Addr> pages;
    for (int i = 0; i < 20000; ++i)
        pages.insert(wl->next().va >> 12);
    // Streaming: few distinct pages relative to access count.
    EXPECT_LT(pages.size(), 2000u);
}

TEST(WorkloadTest, MemcachedEmitsChurn)
{
    auto wl = makeWorkload(WorkloadKind::Memcached, 1, 0.02);
    bind(*wl);
    int remaps = 0;
    for (int i = 0; i < 600000; ++i)
        remaps += wl->next().kind == Op::Kind::Remap ? 1 : 0;
    EXPECT_GE(remaps, 2);
}

TEST(WorkloadTest, OmnetppChurnsFasterThanMemcached)
{
    auto mc = makeWorkload(WorkloadKind::Memcached, 1, 0.02);
    auto om = makeWorkload(WorkloadKind::Omnetpp, 1, 0.02);
    bind(*mc);
    bind(*om);
    int mc_remaps = 0, om_remaps = 0;
    for (int i = 0; i < 300000; ++i) {
        mc_remaps += mc->next().kind == Op::Kind::Remap ? 1 : 0;
        om_remaps += om->next().kind == Op::Kind::Remap ? 1 : 0;
    }
    EXPECT_GT(om_remaps, mc_remaps);
}

TEST(WorkloadTest, MemcachedIsSkewed)
{
    auto wl = makeWorkload(WorkloadKind::Memcached, 1, 0.02);
    bind(*wl);
    std::map<Addr, int> page_counts;
    for (int i = 0; i < 60000; ++i) {
        const Op op = wl->next();
        if (op.kind != Op::Kind::Remap)
            ++page_counts[op.va >> 12];
    }
    // Zipf: the hottest page should be touched far more often than
    // the median.
    int hottest = 0;
    for (const auto &[page, count] : page_counts)
        hottest = std::max(hottest, count);
    EXPECT_GT(hottest, 100);
}

TEST(WorkloadTest, SuiteListsMatchPaper)
{
    EXPECT_EQ(bigMemoryWorkloads().size(), 4u);
    EXPECT_EQ(computeWorkloads().size(), 6u);
    for (auto kind : bigMemoryWorkloads())
        EXPECT_TRUE(isBigMemory(kind));
    for (auto kind : computeWorkloads())
        EXPECT_FALSE(isBigMemory(kind));
}

TEST(WorkloadTest, CactusStencilHasStridedNeighbours)
{
    auto wl = makeWorkload(WorkloadKind::CactusADM, 1, 0.05);
    auto bases = bind(*wl);
    // Collect the first stencil group and check plane-stride spread.
    std::set<Addr> distinct_pages;
    for (int i = 0; i < 7; ++i)
        distinct_pages.insert(wl->next().va >> 12);
    EXPECT_GE(distinct_pages.size(), 4u);
    (void)bases;
}

} // namespace
} // namespace emv::workload
