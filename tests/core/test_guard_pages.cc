/** @file
 * §V extension: escape filters at both levels — guard pages inside
 * a guest segment escape to conventional guest paging.
 */

#include <gtest/gtest.h>

#include "core/mmu.hh"
#include "os/guest_os.hh"
#include "vmm/vmm.hh"

namespace emv::core {
namespace {

class GuardPageTest : public ::testing::Test
{
  protected:
    GuardPageTest()
        : host(1 * GiB), vmm(host, 1 * GiB)
    {
        vmm::VmConfig cfg;
        cfg.ramBytes = 256 * MiB;
        cfg.lowRamBytes = 32 * MiB;
        cfg.ioGapStart = 32 * MiB;
        cfg.ioGapEnd = 64 * MiB;
        vm = &vmm.createVm("vm", cfg);
        os = std::make_unique<os::GuestOs>(
            vm->guestPhys(), vm->gpaSpan(), vm->guestRamLayout());
        proc = &os->createProcess();
        os->defineRegion(*proc, "heap", 1 * GiB, 16 * MiB,
                         PageSize::Size4K, /*primary=*/true);
        auto seg = os->createGuestSegment(*proc);
        EXPECT_TRUE(seg.has_value());

        MmuConfig mcfg;
        mcfg.walkCachesEnabled = false;
        mcfg.nestedTlbShared = false;
        mmu = std::make_unique<Mmu>(host, mcfg);
        mmu->setMode(Mode::GuestDirect);
        mmu->setNestedRoot(vm->nestedRoot());
        mmu->setGuestRoot(proc->pageTable().root());
        mmu->setGuestSegment(proc->guestSegment());
    }

    mem::PhysMemory host;
    vmm::Vmm vmm;
    vmm::Vm *vm;
    std::unique_ptr<os::GuestOs> os;
    os::Process *proc;
    std::unique_ptr<Mmu> mmu;
};

TEST_F(GuardPageTest, GuardPageEscapesToGuestPaging)
{
    const Addr guard = 1 * GiB + 64 * kPage4K;
    // The guest OS escapes the guard page and maps it via its page
    // table to a *different* gPA (e.g. read-only zero page).
    mmu->guestFilter().insertPage(guard);
    auto alt = os->allocDataBlock(PageSize::Size4K);
    ASSERT_TRUE(alt.has_value());
    proc->pageTable().map(guard, *alt, PageSize::Size4K,
                          /*writable=*/false);

    // Non-guard pages still ride the segment.
    auto normal = mmu->translate(1 * GiB + 0x3000);
    ASSERT_TRUE(normal.ok);
    EXPECT_EQ(mmu->stats().counterValue("cat_guest_only"), 1u);

    // The guard page walks the guest page table instead.
    auto escaped = mmu->translate(guard + 0x10);
    ASSERT_TRUE(escaped.ok);
    EXPECT_EQ(mmu->stats().counterValue("cat_neither"), 1u);
    EXPECT_EQ(escaped.hpa, vm->gpaToHpa(*alt + 0x10).value());
    // And lands somewhere other than the segment's linear target.
    const Addr seg_gpa = proc->guestSegment().translate(guard);
    EXPECT_NE(escaped.hpa, vm->gpaToHpa(seg_gpa).value() + 0x10);
}

TEST_F(GuardPageTest, DualDirectGuardPageAlsoEscapes)
{
    auto info = vm->createVmmSegment(64 * MiB);
    ASSERT_TRUE(info.has_value());
    mmu->setMode(Mode::DualDirect);
    mmu->setGuestRoot(proc->pageTable().root());
    mmu->setGuestSegment(proc->guestSegment());
    mmu->setVmmSegment(info->regs);

    const Addr guard = 1 * GiB + 80 * kPage4K;
    mmu->guestFilter().insertPage(guard);
    auto alt = os->allocDataBlock(PageSize::Size4K);
    ASSERT_TRUE(alt.has_value());
    proc->pageTable().map(guard, *alt, PageSize::Size4K, false);

    // Normal page: 0D fast path.
    auto normal = mmu->translate(1 * GiB + 0x5000);
    ASSERT_TRUE(normal.ok);
    EXPECT_EQ(normal.path, TranslatePath::DualSegment);

    // Guard page: full walk through the guest table.
    auto escaped = mmu->translate(guard);
    ASSERT_TRUE(escaped.ok);
    EXPECT_NE(escaped.path, TranslatePath::DualSegment);
    EXPECT_EQ(escaped.hpa, vm->gpaToHpa(*alt).value());
}

} // namespace
} // namespace emv::core
