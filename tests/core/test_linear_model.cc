/** @file Unit tests for the Table IV linear models. */

#include <gtest/gtest.h>

#include "core/linear_model.hh"

namespace emv::core {
namespace {

ModelInputs
baseInputs()
{
    ModelInputs in;
    in.cyclesPerMissNative = 100.0;
    in.cyclesPerMissVirtualized = 240.0;  // The paper's ~2.4x.
    in.missesNative = 1e6;
    return in;
}

TEST(LinearModelTest, DirectSegmentFullCoverageIsFree)
{
    auto in = baseInputs();
    in.fractionDirectSegment = 1.0;
    EXPECT_DOUBLE_EQ(predictDirectSegmentCycles(in), 0.0);
}

TEST(LinearModelTest, DirectSegmentZeroCoverageIsNative)
{
    auto in = baseInputs();
    in.fractionDirectSegment = 0.0;
    EXPECT_DOUBLE_EQ(predictDirectSegmentCycles(in), 100.0 * 1e6);
}

TEST(LinearModelTest, DirectSegmentPartial)
{
    auto in = baseInputs();
    in.fractionDirectSegment = 0.99;  // Basu et al.'s 99%.
    EXPECT_NEAR(predictDirectSegmentCycles(in), 0.01 * 100.0 * 1e6,
                1.0);
}

TEST(LinearModelTest, VmmDirectUsesDelta5)
{
    auto in = baseInputs();
    in.fractionVmmOnly = 1.0;
    EXPECT_DOUBLE_EQ(predictVmmDirectCycles(in),
                     (100.0 + 5.0) * 1e6);
}

TEST(LinearModelTest, GuestDirectUsesDelta1)
{
    auto in = baseInputs();
    in.fractionGuestOnly = 1.0;
    EXPECT_DOUBLE_EQ(predictGuestDirectCycles(in),
                     (100.0 + 1.0) * 1e6);
}

TEST(LinearModelTest, ZeroCoverageDegradesToVirtualized)
{
    auto in = baseInputs();
    EXPECT_DOUBLE_EQ(predictVmmDirectCycles(in), 240.0 * 1e6);
    EXPECT_DOUBLE_EQ(predictGuestDirectCycles(in), 240.0 * 1e6);
    EXPECT_DOUBLE_EQ(predictDualDirectCycles(in), 240.0 * 1e6);
}

TEST(LinearModelTest, DualDirectBothFractionIsFree)
{
    auto in = baseInputs();
    in.fractionBoth = 1.0;
    // Misses covered by both segments cost nothing in Table IV.
    EXPECT_DOUBLE_EQ(predictDualDirectCycles(in), 0.0);
}

TEST(LinearModelTest, DualDirectMixesAllFourTerms)
{
    auto in = baseInputs();
    in.fractionBoth = 0.90;
    in.fractionVmmOnly = 0.04;
    in.fractionGuestOnly = 0.03;
    const double expect =
        (105.0 * 0.04 + 101.0 * 0.03 + 240.0 * 0.03) * 1e6;
    EXPECT_NEAR(predictDualDirectCycles(in), expect, 1.0);
}

TEST(LinearModelTest, OrderingDualBeatsSinglesBeatsBase)
{
    auto in = baseInputs();
    in.fractionBoth = 0.9;
    in.fractionVmmOnly = 0.05;
    in.fractionGuestOnly = 0.04;
    const double dd = predictDualDirectCycles(in);

    auto vd_in = baseInputs();
    vd_in.fractionVmmOnly = 0.95;
    const double vd = predictVmmDirectCycles(vd_in);

    const double base = 240.0 * 1e6;
    EXPECT_LT(dd, vd);
    EXPECT_LT(vd, base);
}

TEST(LinearModelTest, MonotoneInCoverage)
{
    double last = 1e18;
    for (double f = 0.0; f <= 1.0; f += 0.1) {
        auto in = baseInputs();
        in.fractionVmmOnly = f;
        const double cycles = predictVmmDirectCycles(in);
        EXPECT_LT(cycles, last + 1e-9);
        last = cycles;
    }
}

TEST(LinearModelTest, DeltasMatchPaper)
{
    EXPECT_DOUBLE_EQ(kDeltaVmmDirect, 5.0);
    EXPECT_DOUBLE_EQ(kDeltaGuestDirect, 1.0);
}

} // namespace
} // namespace emv::core
