/** @file
 * Unit tests for the MMU's per-mode translation flow (Fig. 5,
 * Table I).  The fixture hand-builds a nested page table, a guest
 * page table whose nodes live in guest-physical memory, and both
 * segment register sets, then checks every mode's paths, costs and
 * category accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/mmu.hh"
#include "mem/phys_memory.hh"
#include "paging/page_table.hh"
#include "../test_support.hh"

namespace emv::core {
namespace {

using paging::MemSpace;
using paging::PageTable;
using segment::SegmentRegs;
using tlb::TlbGeometry;

/** gPA-addressed space routed through a nested page table. */
class GpaSpace : public MemSpace
{
  public:
    GpaSpace(mem::PhysMemory &host, const PageTable &nested,
             Addr bump_base)
        : host(host), nested(nested), next(bump_base)
    {
    }

    std::uint64_t
    read64(Addr gpa) const override
    {
        return host.read64(nested.translate(gpa)->pa);
    }

    void
    write64(Addr gpa, std::uint64_t value) override
    {
        host.write64(nested.translate(gpa)->pa, value);
    }

    Addr
    allocTableFrame() override
    {
        const Addr gpa = next;
        next += kPage4K;
        for (unsigned i = 0; i < 512; ++i)
            write64(gpa + 8ull * i, 0);
        return gpa;
    }

    void freeTableFrame(Addr) override {}

  private:
    mem::PhysMemory &host;
    const PageTable &nested;
    Addr next;
};

class MmuTest : public ::testing::Test
{
  protected:
    // Layout: gPA [0, 64M) backed at hPA [16M, 80M), linearly.
    static constexpr Addr kGuestBytes = 64 * MiB;
    static constexpr Addr kHostBase = 16 * MiB;
    // Guest segment: gVA [1G, 1G+16M) -> gPA [8M, 24M).
    static constexpr Addr kSegVa = 1 * GiB;
    static constexpr Addr kSegBytes = 16 * MiB;
    static constexpr Addr kSegGpa = 8 * MiB;

    MmuTest()
        : host(512 * MiB), hostSpace(host, 256 * MiB),
          nestedPt(hostSpace)
    {
        for (Addr gpa = 0; gpa < kGuestBytes; gpa += kPage4K)
            nestedPt.map(gpa, kHostBase + gpa, PageSize::Size4K);
        gpaSpace = std::make_unique<GpaSpace>(host, nestedPt,
                                              40 * MiB);
        guestPt = std::make_unique<PageTable>(*gpaSpace);
        // A paged guest mapping outside the guest segment.
        guestPt->map(0x2000, 0x30000, PageSize::Size4K);
        // Guest PT also maps the segment region (§VI.B emulation).
        for (Addr off = 0; off < 1 * MiB; off += kPage4K) {
            guestPt->map(kSegVa + off, kSegGpa + off,
                         PageSize::Size4K);
        }
    }

    std::unique_ptr<Mmu>
    makeMmu(Mode mode, const MmuConfig &base = {})
    {
        auto mmu = std::make_unique<Mmu>(host, base);
        mmu->setMode(mode);
        mmu->setNestedRoot(nestedPt.root());
        mmu->setGuestRoot(guestPt->root());
        mmu->setNativeRoot(nestedPt.root());  // For native tests.
        if (usesGuestSegment(mode)) {
            mmu->setGuestSegment(SegmentRegs::fromRanges(
                kSegVa, kSegBytes, kSegGpa));
        }
        if (usesVmmSegment(mode)) {
            mmu->setVmmSegment(SegmentRegs::fromRanges(
                0, kGuestBytes, kHostBase));
        }
        return mmu;
    }

    mem::PhysMemory host;
    test::BumpMemSpace hostSpace;
    PageTable nestedPt;
    std::unique_ptr<GpaSpace> gpaSpace;
    std::unique_ptr<PageTable> guestPt;
};

TEST_F(MmuTest, NativeWalkThenL1Hit)
{
    // Native mode: walk the "nested" table as a plain 1D table.
    auto mmu = makeMmu(Mode::Native);
    auto first = mmu->translate(0x123456);
    ASSERT_TRUE(first.ok);
    EXPECT_EQ(first.path, TranslatePath::Walk);
    EXPECT_EQ(first.hpa, kHostBase + 0x123456);
    auto second = mmu->translate(0x123458);
    EXPECT_EQ(second.path, TranslatePath::L1Hit);
    EXPECT_EQ(second.cycles, 0u);
    EXPECT_EQ(mmu->stats().counterValue("walks"), 1u);
}

TEST_F(MmuTest, NativeFaultOnUnmapped)
{
    auto mmu = makeMmu(Mode::Native);
    auto result = mmu->translate(kGuestBytes + 0x1000);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.path, TranslatePath::Fault);
    EXPECT_EQ(result.faultSpace, FaultSpace::Guest);
    EXPECT_EQ(mmu->stats().counterValue("faults"), 1u);
}

TEST_F(MmuTest, BaseVirtualizedComposesBothDimensions)
{
    auto mmu = makeMmu(Mode::BaseVirtualized);
    auto result = mmu->translate(0x2abc);
    ASSERT_TRUE(result.ok);
    // gVA 0x2abc -> gPA 0x30abc -> hPA base + 0x30abc.
    EXPECT_EQ(result.hpa, kHostBase + 0x30abc);
    EXPECT_EQ(result.path, TranslatePath::Walk);
    EXPECT_GT(mmu->stats().counterValue("guest_refs"), 0u);
    EXPECT_GT(mmu->stats().counterValue("nested_refs"), 0u);
}

TEST_F(MmuTest, BaseVirtualizedFirstWalkMakes24Refs)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    cfg.nestedTlbShared = false;
    auto mmu = makeMmu(Mode::BaseVirtualized, cfg);
    auto result = mmu->translate(0x2abc);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(mmu->stats().counterValue("guest_refs"), 4u);
    EXPECT_EQ(mmu->stats().counterValue("nested_refs"), 20u);
}

TEST_F(MmuTest, NestedTlbCachesSecondDimension)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    auto mmu = makeMmu(Mode::BaseVirtualized, cfg);
    mmu->translate(0x2abc);
    const auto miss_refs = mmu->stats().counterValue("nested_refs");
    // Translate a *different* page whose walk revisits the same
    // guest-table gPAs: nested TLB entries now cover them.
    guestPt->map(0x3000, 0x31000, PageSize::Size4K);
    mmu->translate(0x3abc);
    const auto second_refs =
        mmu->stats().counterValue("nested_refs") - miss_refs;
    EXPECT_LT(second_refs, 20u);
    EXPECT_GT(mmu->stats().counterValue("nested_tlb_hits"), 0u);
}

TEST_F(MmuTest, VmmDirectFlattensToFourRefsAndFiveCalcs)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    auto mmu = makeMmu(Mode::VmmDirect, cfg);
    auto result = mmu->translate(0x2abc);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.hpa, kHostBase + 0x30abc);
    // §III.B: 4 memory accesses, 5 base-bound checks.
    EXPECT_EQ(mmu->stats().counterValue("guest_refs"), 4u);
    EXPECT_EQ(mmu->stats().counterValue("nested_refs"), 0u);
    EXPECT_EQ(mmu->stats().counterValue("calculations"), 5u);
    EXPECT_EQ(mmu->stats().counterValue("cat_vmm_only"), 1u);
}

TEST_F(MmuTest, VmmDirectEscapedPageFallsBackToNestedPaging)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    auto mmu = makeMmu(Mode::VmmDirect, cfg);
    // Escape the data page's gPA.
    mmu->vmmFilter().insertPage(0x30000);
    auto result = mmu->translate(0x2abc);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.hpa, kHostBase + 0x30abc);
    EXPECT_GT(mmu->stats().counterValue("escape_slow_paths"), 0u);
    EXPECT_GT(mmu->stats().counterValue("nested_refs"), 0u);
    EXPECT_EQ(mmu->stats().counterValue("cat_neither"), 1u);
}

TEST_F(MmuTest, GuestDirectUsesOneCalcAndNestedWalk)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    cfg.nestedTlbShared = false;
    auto mmu = makeMmu(Mode::GuestDirect, cfg);
    auto result = mmu->translate(kSegVa + 0x5123);
    ASSERT_TRUE(result.ok);
    // gVA -> gPA by segment, then nested walk of the data gPA.
    EXPECT_EQ(result.hpa, kHostBase + kSegGpa + 0x5123);
    EXPECT_EQ(mmu->stats().counterValue("guest_refs"), 0u);
    EXPECT_EQ(mmu->stats().counterValue("nested_refs"), 4u);
    EXPECT_EQ(mmu->stats().counterValue("calculations"), 1u);
    EXPECT_EQ(mmu->stats().counterValue("cat_guest_only"), 1u);
}

TEST_F(MmuTest, GuestDirectOutsideSegmentDoes2DWalk)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    cfg.nestedTlbShared = false;
    auto mmu = makeMmu(Mode::GuestDirect, cfg);
    auto result = mmu->translate(0x2abc);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(mmu->stats().counterValue("cat_neither"), 1u);
    EXPECT_EQ(mmu->stats().counterValue("guest_refs"), 4u);
}

TEST_F(MmuTest, DualDirectBothIsZeroDWalk)
{
    auto mmu = makeMmu(Mode::DualDirect);
    auto result = mmu->translate(kSegVa + 0x7777);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.path, TranslatePath::DualSegment);
    EXPECT_EQ(result.hpa, kHostBase + kSegGpa + 0x7777);
    // Table II: one base-bound check, zero memory references.
    EXPECT_EQ(result.cycles, mmu->costs().segmentCheckCycles);
    EXPECT_EQ(mmu->stats().counterValue("cat_both"), 1u);
    EXPECT_EQ(mmu->stats().counterValue("walks"), 0u);
    // The 0D path refills the L1.
    auto second = mmu->translate(kSegVa + 0x7778);
    EXPECT_EQ(second.path, TranslatePath::L1Hit);
}

TEST_F(MmuTest, DualDirectGuestOnlyWhenPageEscaped)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    cfg.nestedTlbShared = false;
    auto mmu = makeMmu(Mode::DualDirect, cfg);
    const Addr gva = kSegVa + 0x9000;
    mmu->vmmFilter().insertPage(kSegGpa + 0x9000);
    auto result = mmu->translate(gva);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.path, TranslatePath::Walk);
    EXPECT_EQ(result.hpa, kHostBase + kSegGpa + 0x9000);
    EXPECT_EQ(mmu->stats().counterValue("cat_guest_only"), 1u);
}

TEST_F(MmuTest, DualDirectVmmOnlyOutsideGuestSegment)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    auto mmu = makeMmu(Mode::DualDirect, cfg);
    auto result = mmu->translate(0x2abc);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(mmu->stats().counterValue("cat_vmm_only"), 1u);
    EXPECT_EQ(result.hpa, kHostBase + 0x30abc);
}

TEST_F(MmuTest, NativeDirectSegmentHit)
{
    auto mmu = makeMmu(Mode::NativeDirect);
    // In native DS mode the guest segment maps VA->PA directly.
    auto result = mmu->translate(kSegVa + 0x4321);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.path, TranslatePath::NativeSegment);
    EXPECT_EQ(result.hpa, kSegGpa + 0x4321);
    EXPECT_EQ(result.cycles, mmu->costs().segmentCheckCycles);
}

TEST_F(MmuTest, NativeDirectEscapedPageWalksPageTable)
{
    auto mmu = makeMmu(Mode::NativeDirect);
    mmu->setNativeRoot(nestedPt.root());
    mmu->guestFilter().insertPage(kSegVa + 0x4000);
    auto result = mmu->translate(kSegVa + 0x4001);
    // The native table doesn't map kSegVa; expect a fault — proving
    // the escape path really left the segment.
    EXPECT_FALSE(result.ok);
    EXPECT_GT(mmu->stats().counterValue("escape_slow_paths"), 0u);
}

TEST_F(MmuTest, L2HitRefillsL1)
{
    TlbGeometry tiny;
    tiny.l1Sets4K = 1;
    tiny.l1Ways4K = 1;
    MmuConfig cfg;
    cfg.tlbGeometry = tiny;
    auto mmu = makeMmu(Mode::Native, cfg);
    mmu->translate(0x1000);
    mmu->translate(0x200000);  // Evicts the 1-entry L1.
    auto result = mmu->translate(0x1000);
    EXPECT_EQ(result.path, TranslatePath::L2Hit);
    EXPECT_EQ(result.cycles, mmu->costs().l2HitCycles);
}

TEST_F(MmuTest, FlushGuestContextDropsTranslations)
{
    auto mmu = makeMmu(Mode::Native);
    mmu->translate(0x1000);
    mmu->flushGuestContext();
    auto result = mmu->translate(0x1000);
    EXPECT_EQ(result.path, TranslatePath::Walk);
}

TEST_F(MmuTest, InvalidateGuestPageIsTargeted)
{
    auto mmu = makeMmu(Mode::Native);
    mmu->translate(0x1000);
    mmu->translate(0x123000);
    mmu->invalidateGuestPage(0x1000, PageSize::Size4K);
    EXPECT_EQ(mmu->translate(0x1000).path, TranslatePath::Walk);
    EXPECT_EQ(mmu->translate(0x123000).path, TranslatePath::L1Hit);
}

TEST_F(MmuTest, ModeSwitchFlushesEverything)
{
    auto mmu = makeMmu(Mode::Native);
    mmu->translate(0x1000);
    mmu->setMode(Mode::BaseVirtualized);
    auto result = mmu->translate(0x2000);
    EXPECT_EQ(result.path, TranslatePath::Walk);
}

TEST_F(MmuTest, WalkCyclesPriceCacheHitsAndMisses)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    auto mmu = makeMmu(Mode::Native, cfg);
    auto first = mmu->translate(0x5000);
    // Cold walk: 4 refs, all missing the PTE-line cache.
    EXPECT_EQ(first.cycles, 4 * cfg.costs.pteMemCycles);
    mmu->flushGuestContext();
    auto second = mmu->translate(0x5000);
    // Warm walk: the same four lines are resident now.
    EXPECT_EQ(second.cycles, 4 * cfg.costs.pteCacheHitCycles);
}

TEST_F(MmuTest, FractionsReflectCategories)
{
    auto mmu = makeMmu(Mode::DualDirect);
    mmu->translate(kSegVa + 0x1000);  // Both.
    mmu->translate(0x2abc);           // VMM only.
    EXPECT_NEAR(mmu->fractionBoth(), 0.5, 1e-9);
    EXPECT_NEAR(mmu->fractionVmmOnly(), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(mmu->fractionGuestOnly(), 0.0);
}

TEST_F(MmuTest, SegmentGranulePropagation)
{
    // A 2M-aligned VMM segment offset lets nested translations
    // cover 2M granules even from a 4K nested table.
    MmuConfig cfg;
    auto mmu = makeMmu(Mode::VmmDirect, cfg);
    auto result = mmu->translate(0x2abc);
    ASSERT_TRUE(result.ok);
    // Guest leaf is 4K, so the inserted entry granule is 4K: a
    // neighbouring VA in the same 4K page hits, the next page
    // misses.
    EXPECT_EQ(mmu->translate(0x2fff).path, TranslatePath::L1Hit);
    EXPECT_NE(mmu->translate(0x3000).path, TranslatePath::L1Hit);
}

TEST_F(MmuTest, CheckpointRoundTripPreservesTlbsAndMode)
{
    auto a = makeMmu(Mode::BaseVirtualized);
    ASSERT_TRUE(a->translate(0x2abc).ok);
    const auto bytes = test::ckptBytes(*a);

    // Restore into an MMU booted in a different mode: the serialized
    // mode wins, and the warm TLB state comes back with it.
    auto b = makeMmu(Mode::Native);
    ASSERT_TRUE(test::ckptRestore(bytes, *b));
    EXPECT_EQ(test::ckptBytes(*b), bytes);
    EXPECT_EQ(b->mode(), Mode::BaseVirtualized);
    auto warm = b->translate(0x2abd);
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.path, TranslatePath::L1Hit);
    EXPECT_EQ(b->stats().counterValue("walks"),
              a->stats().counterValue("walks"));
}

TEST_F(MmuTest, CheckpointRejectsTruncatedState)
{
    auto a = makeMmu(Mode::DualDirect);
    auto bytes = test::ckptBytes(*a);
    bytes.resize(bytes.size() / 2);
    auto b = makeMmu(Mode::DualDirect);
    EXPECT_FALSE(test::ckptRestore(bytes, *b));
}

TEST_F(MmuTest, DualDirectDisabledVmmSegmentActsAsGuestDirect)
{
    MmuConfig cfg;
    cfg.walkCachesEnabled = false;
    cfg.nestedTlbShared = false;
    auto mmu = makeMmu(Mode::DualDirect, cfg);
    mmu->setVmmSegment(SegmentRegs());  // BASE == LIMIT.
    auto result = mmu->translate(kSegVa + 0x5000);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.path, TranslatePath::Walk);
    EXPECT_EQ(mmu->stats().counterValue("cat_guest_only"), 1u);
    EXPECT_EQ(mmu->stats().counterValue("nested_refs"), 4u);
}

} // namespace
} // namespace emv::core
