/** @file
 * Tests for the differential auditor (core/differential_auditor.hh):
 * every fast-path translation re-derived through the reference 2D
 * nested walk must agree, and a corrupted translation structure must
 * be flagged as a mismatch.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/audit.hh"
#include "common/logging.hh"
#include "core/mmu.hh"
#include "mem/phys_memory.hh"
#include "paging/page_table.hh"
#include "../test_support.hh"

namespace emv::core {
namespace {

using paging::MemSpace;
using paging::PageTable;
using segment::SegmentRegs;

/** gPA-addressed space routed through the nested page table. */
class GpaSpace : public MemSpace
{
  public:
    GpaSpace(mem::PhysMemory &host, const PageTable &nested,
             Addr bump_base)
        : host(host), nested(nested), next(bump_base)
    {
    }

    std::uint64_t
    read64(Addr gpa) const override
    {
        return host.read64(nested.translate(gpa)->pa);
    }

    void
    write64(Addr gpa, std::uint64_t value) override
    {
        host.write64(nested.translate(gpa)->pa, value);
    }

    Addr
    allocTableFrame() override
    {
        const Addr gpa = next;
        next += kPage4K;
        for (unsigned i = 0; i < 512; ++i)
            write64(gpa + 8ull * i, 0);
        return gpa;
    }

    void freeTableFrame(Addr) override {}

  private:
    mem::PhysMemory &host;
    const PageTable &nested;
    Addr next;
};

class DifferentialAuditTest : public ::testing::Test
{
  protected:
    // Layout mirrors test_mmu: gPA [0, 64M) backed linearly at
    // hPA [16M, 80M); guest segment gVA [1G, 1G+16M) -> gPA [8M, ..).
    static constexpr Addr kGuestBytes = 64 * MiB;
    static constexpr Addr kHostBase = 16 * MiB;
    static constexpr Addr kSegVa = 1 * GiB;
    static constexpr Addr kSegBytes = 16 * MiB;
    static constexpr Addr kSegGpa = 8 * MiB;

    DifferentialAuditTest()
        : host(512 * MiB), hostSpace(host, 256 * MiB),
          nestedPt(hostSpace)
    {
        setQuietLogging(true);
        for (Addr gpa = 0; gpa < kGuestBytes; gpa += kPage4K)
            nestedPt.map(gpa, kHostBase + gpa, PageSize::Size4K);
        gpaSpace = std::make_unique<GpaSpace>(host, nestedPt,
                                              40 * MiB);
        guestPt = std::make_unique<PageTable>(*gpaSpace);
        guestPt->map(0x2000, 0x30000, PageSize::Size4K);
        for (Addr off = 0; off < 1 * MiB; off += kPage4K) {
            guestPt->map(kSegVa + off, kSegGpa + off,
                         PageSize::Size4K);
        }
        audit::setFailFast(false);
        audit::setEnabled(true);
        audit::resetCounters();
    }

    ~DifferentialAuditTest() override
    {
        audit::setEnabled(false);
        audit::resetCounters();
    }

    std::unique_ptr<Mmu>
    makeMmu(Mode mode)
    {
        auto mmu = std::make_unique<Mmu>(host, MmuConfig{});
        mmu->setMode(mode);
        mmu->setNestedRoot(nestedPt.root());
        mmu->setGuestRoot(guestPt->root());
        mmu->setNativeRoot(nestedPt.root());
        if (usesGuestSegment(mode)) {
            mmu->setGuestSegment(SegmentRegs::fromRanges(
                kSegVa, kSegBytes, kSegGpa));
        }
        if (usesVmmSegment(mode)) {
            mmu->setVmmSegment(SegmentRegs::fromRanges(
                0, kGuestBytes, kHostBase));
        }
        return mmu;
    }

    mem::PhysMemory host;
    test::BumpMemSpace hostSpace;
    PageTable nestedPt;
    std::unique_ptr<GpaSpace> gpaSpace;
    std::unique_ptr<PageTable> guestPt;
};

TEST_F(DifferentialAuditTest, AllModesAgreeWithTheReferenceWalk)
{
    for (Mode mode :
         {Mode::Native, Mode::NativeDirect, Mode::BaseVirtualized,
          Mode::DualDirect, Mode::VmmDirect, Mode::GuestDirect}) {
        SCOPED_TRACE(modeName(mode));
        audit::resetCounters();
        auto mmu = makeMmu(mode);
        // Paged mapping, segment region, repeat (TLB hits), fault.
        // Plain Native has no mapping at kSegVa (only the paged
        // [0, 64M) table): it must fault there, and the reference
        // walk must agree that it faults.
        const bool seg_mapped = mode != Mode::Native;
        EXPECT_TRUE(mmu->translate(0x2abc).ok);
        EXPECT_EQ(mmu->translate(kSegVa + 0x5123).ok, seg_mapped);
        EXPECT_TRUE(mmu->translate(0x2abc).ok);
        EXPECT_EQ(mmu->translate(kSegVa + 0x5123).ok, seg_mapped);
        EXPECT_FALSE(mmu->translate(0x40000000ull + 2 * GiB).ok);
        EXPECT_GT(audit::checkCount(), 0u);
        EXPECT_EQ(audit::mismatchCount(), 0u)
            << "fast path diverged from the 2D reference";
        EXPECT_EQ(audit::failureCount(), 0u);
    }
}

TEST_F(DifferentialAuditTest, EveryTranslationIsAudited)
{
    auto mmu = makeMmu(Mode::BaseVirtualized);
    for (Addr off = 0; off < 16 * kPage4K; off += 0x100)
        mmu->translate(kSegVa + off);
    EXPECT_EQ(audit::stats().counterValue("mismatches"), 0u);
    EXPECT_GE(audit::checkCount(), 256u);
}

TEST_F(DifferentialAuditTest, StaleTlbAfterPteCorruptionIsCaught)
{
    auto mmu = makeMmu(Mode::BaseVirtualized);
    auto before = mmu->translate(0x2abc);
    ASSERT_TRUE(before.ok);
    ASSERT_EQ(audit::mismatchCount(), 0u);

    // Corrupt the guest PTE behind the MMU's back: the leaf for
    // gVA 0x2000 now points at gPA 0x31000, but no TLB shootdown is
    // performed, so the fast path keeps serving the stale frame.
    guestPt->unmap(0x2000, PageSize::Size4K);
    guestPt->map(0x2000, 0x31000, PageSize::Size4K);

    auto after = mmu->translate(0x2abc);
    EXPECT_TRUE(after.ok);
    EXPECT_EQ(after.hpa, before.hpa);  // Stale result survived.
    EXPECT_GE(audit::mismatchCount(), 1u)
        << "differential auditor missed a stale translation";
}

TEST_F(DifferentialAuditTest, AuditIsSilentWhenDisabled)
{
    audit::setEnabled(false);
    auto mmu = makeMmu(Mode::DualDirect);
    EXPECT_TRUE(mmu->translate(kSegVa + 0x123).ok);
    EXPECT_EQ(audit::checkCount(), 0u);
    EXPECT_EQ(audit::mismatchCount(), 0u);
}

} // namespace
} // namespace emv::core
