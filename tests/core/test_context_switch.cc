/** @file
 * Guest context switching: per-process page tables and guest
 * segment registers (§III.A/C: "the guest segment register values
 * are set per guest process and must be set during guest OS context
 * switches").
 */

#include <gtest/gtest.h>

#include "core/mmu.hh"
#include "os/guest_os.hh"
#include "vmm/vmm.hh"

namespace emv::core {
namespace {

class ContextSwitchTest : public ::testing::Test
{
  protected:
    static constexpr Addr kHostRam = 1 * GiB;

    ContextSwitchTest()
        : host(kHostRam), vmm(host, kHostRam)
    {
        vmm::VmConfig cfg;
        cfg.ramBytes = 256 * MiB;
        cfg.lowRamBytes = 64 * MiB;
        cfg.ioGapStart = 64 * MiB;
        cfg.ioGapEnd = 96 * MiB;
        vm = &vmm.createVm("vm", cfg);
        os = std::make_unique<os::GuestOs>(
            vm->guestPhys(), vm->gpaSpan(), vm->guestRamLayout());
        mmu = std::make_unique<Mmu>(host);
        mmu->setNestedRoot(vm->nestedRoot());
    }

    /** Program the MMU for a process (what the guest OS does on a
     *  context switch). */
    void
    switchTo(os::Process &proc, Mode mode)
    {
        mmu->setMode(mode);
        mmu->setGuestRoot(proc.pageTable().root());
        mmu->setGuestSegment(proc.guestSegment());
        mmu->flushGuestContext();
    }

    mem::PhysMemory host;
    vmm::Vmm vmm;
    vmm::Vm *vm;
    std::unique_ptr<os::GuestOs> os;
    std::unique_ptr<Mmu> mmu;
};

TEST_F(ContextSwitchTest, ProcessesHaveIsolatedMappings)
{
    auto &p1 = os->createProcess();
    auto &p2 = os->createProcess();
    os->defineRegion(p1, "heap", 1 * GiB, 4 * MiB,
                     PageSize::Size4K);
    os->defineRegion(p2, "heap", 1 * GiB, 4 * MiB,
                     PageSize::Size4K);
    os->populateRange(p1, 1 * GiB, 4 * MiB);
    os->populateRange(p2, 1 * GiB, 4 * MiB);

    switchTo(p1, Mode::BaseVirtualized);
    auto r1 = mmu->translate(1 * GiB + 0x123);
    ASSERT_TRUE(r1.ok);

    switchTo(p2, Mode::BaseVirtualized);
    auto r2 = mmu->translate(1 * GiB + 0x123);
    ASSERT_TRUE(r2.ok);

    // Same gVA, different processes, different host frames.
    EXPECT_NE(r1.hpa, r2.hpa);
}

TEST_F(ContextSwitchTest, SwitchFlushesGuestTlbEntries)
{
    auto &p1 = os->createProcess();
    auto &p2 = os->createProcess();
    os->defineRegion(p1, "heap", 1 * GiB, 4 * MiB,
                     PageSize::Size4K);
    os->defineRegion(p2, "heap", 1 * GiB, 4 * MiB,
                     PageSize::Size4K);
    os->populateRange(p1, 1 * GiB, 4 * MiB);
    os->populateRange(p2, 1 * GiB, 4 * MiB);

    switchTo(p1, Mode::BaseVirtualized);
    mmu->translate(1 * GiB);
    EXPECT_EQ(mmu->translate(1 * GiB).path, TranslatePath::L1Hit);

    // Without the flush, p2 would hit p1's stale entry.
    switchTo(p2, Mode::BaseVirtualized);
    auto result = mmu->translate(1 * GiB);
    EXPECT_EQ(result.path, TranslatePath::Walk);
    auto check = p2.pageTable().translate(1 * GiB);
    ASSERT_TRUE(check.has_value());
    EXPECT_EQ(result.hpa, vm->gpaToHpa(check->pa).value());
}

TEST_F(ContextSwitchTest, PerProcessGuestSegments)
{
    // One big-memory process with a guest segment, one ordinary
    // process without (Guest Direct is per-process).
    auto &big = os->createProcess();
    os->defineRegion(big, "heap", 1 * GiB, 8 * MiB,
                     PageSize::Size4K, /*primary=*/true);
    ASSERT_TRUE(os->createGuestSegment(big).has_value());

    auto &small = os->createProcess();
    os->defineRegion(small, "heap", 1 * GiB, 2 * MiB,
                     PageSize::Size4K);
    os->populateRange(small, 1 * GiB, 2 * MiB);

    switchTo(big, Mode::GuestDirect);
    auto seg_result = mmu->translate(1 * GiB + 0x5000);
    ASSERT_TRUE(seg_result.ok);
    EXPECT_EQ(mmu->stats().counterValue("cat_guest_only"), 1u);

    switchTo(small, Mode::GuestDirect);
    // small has no segment: its registers are disabled, so the
    // same gVA goes through the 2D walk instead.
    EXPECT_FALSE(small.guestSegment().enabled());
    auto walk_result = mmu->translate(1 * GiB + 0x5000);
    ASSERT_TRUE(walk_result.ok);
    EXPECT_EQ(mmu->stats().counterValue("cat_neither"), 1u);
    EXPECT_NE(walk_result.hpa, seg_result.hpa);
}

TEST_F(ContextSwitchTest, NestedStateSurvivesGuestSwitch)
{
    // A guest context switch must not flush nested (gPA->hPA)
    // entries — those belong to the VM, not the process.
    auto &p1 = os->createProcess();
    os->defineRegion(p1, "heap", 1 * GiB, 4 * MiB,
                     PageSize::Size4K);
    os->populateRange(p1, 1 * GiB, 4 * MiB);
    switchTo(p1, Mode::BaseVirtualized);
    mmu->translate(1 * GiB);
    const auto nested_before =
        mmu->tlbs().l2().occupancy(tlb::EntryKind::Nested);
    ASSERT_GT(nested_before, 0u);

    mmu->flushGuestContext();
    EXPECT_EQ(mmu->tlbs().l2().occupancy(tlb::EntryKind::Nested),
              nested_before);
    EXPECT_EQ(mmu->tlbs().l2().occupancy(tlb::EntryKind::Guest), 0u);
}

} // namespace
} // namespace emv::core
