/** @file Unit tests for mode traits (Table II). */

#include <gtest/gtest.h>

#include "core/mode.hh"

namespace emv::core {
namespace {

TEST(ModeTest, WalkDimensions)
{
    EXPECT_EQ(modeTraits(Mode::BaseVirtualized).walkDims, 2);
    EXPECT_EQ(modeTraits(Mode::DualDirect).walkDims, 0);
    EXPECT_EQ(modeTraits(Mode::VmmDirect).walkDims, 1);
    EXPECT_EQ(modeTraits(Mode::GuestDirect).walkDims, 1);
}

TEST(ModeTest, WalkRefsMatchTableII)
{
    EXPECT_EQ(modeTraits(Mode::BaseVirtualized).walkRefs, 24);
    EXPECT_EQ(modeTraits(Mode::DualDirect).walkRefs, 0);
    EXPECT_EQ(modeTraits(Mode::VmmDirect).walkRefs, 4);
    EXPECT_EQ(modeTraits(Mode::GuestDirect).walkRefs, 4);
}

TEST(ModeTest, BaseBoundChecksMatchTableII)
{
    EXPECT_EQ(modeTraits(Mode::BaseVirtualized).baseBoundChecks, 0);
    EXPECT_EQ(modeTraits(Mode::DualDirect).baseBoundChecks, 1);
    EXPECT_EQ(modeTraits(Mode::VmmDirect).baseBoundChecks, 5);
    EXPECT_EQ(modeTraits(Mode::GuestDirect).baseBoundChecks, 1);
}

TEST(ModeTest, ModificationRequirements)
{
    // Table II: who needs changing.
    EXPECT_FALSE(modeTraits(Mode::BaseVirtualized).guestOsChanges);
    EXPECT_FALSE(modeTraits(Mode::BaseVirtualized).vmmChanges);
    EXPECT_TRUE(modeTraits(Mode::DualDirect).guestOsChanges);
    EXPECT_TRUE(modeTraits(Mode::DualDirect).vmmChanges);
    EXPECT_FALSE(modeTraits(Mode::VmmDirect).guestOsChanges);
    EXPECT_TRUE(modeTraits(Mode::VmmDirect).vmmChanges);
    EXPECT_TRUE(modeTraits(Mode::GuestDirect).guestOsChanges);
    EXPECT_FALSE(modeTraits(Mode::GuestDirect).vmmChanges);
}

TEST(ModeTest, ApplicationCategories)
{
    EXPECT_STREQ(modeTraits(Mode::VmmDirect).appCategory, "any");
    EXPECT_STREQ(modeTraits(Mode::DualDirect).appCategory,
                 "big memory");
    EXPECT_STREQ(modeTraits(Mode::GuestDirect).appCategory,
                 "big memory");
}

TEST(ModeTest, ServiceSupport)
{
    // Guest Direct keeps nested paging: sharing/ballooning stay
    // unrestricted; VMM Direct gives them up.
    EXPECT_EQ(modeTraits(Mode::GuestDirect).pageSharing,
              Support::Unrestricted);
    EXPECT_EQ(modeTraits(Mode::VmmDirect).pageSharing,
              Support::Limited);
    EXPECT_EQ(modeTraits(Mode::VmmDirect).guestSwapping,
              Support::Unrestricted);
    EXPECT_EQ(modeTraits(Mode::DualDirect).ballooning,
              Support::Limited);
}

TEST(ModeTest, Predicates)
{
    EXPECT_FALSE(isVirtualized(Mode::Native));
    EXPECT_FALSE(isVirtualized(Mode::NativeDirect));
    EXPECT_TRUE(isVirtualized(Mode::BaseVirtualized));
    EXPECT_TRUE(isVirtualized(Mode::DualDirect));

    EXPECT_TRUE(usesGuestSegment(Mode::NativeDirect));
    EXPECT_TRUE(usesGuestSegment(Mode::DualDirect));
    EXPECT_TRUE(usesGuestSegment(Mode::GuestDirect));
    EXPECT_FALSE(usesGuestSegment(Mode::VmmDirect));

    EXPECT_TRUE(usesVmmSegment(Mode::DualDirect));
    EXPECT_TRUE(usesVmmSegment(Mode::VmmDirect));
    EXPECT_FALSE(usesVmmSegment(Mode::GuestDirect));
}

TEST(ModeTest, NamesAndLabels)
{
    EXPECT_STREQ(modeName(Mode::DualDirect), "Dual Direct");
    EXPECT_STREQ(modeBarLabel(Mode::VmmDirect), "4K+VD");
    EXPECT_STREQ(modeBarLabel(Mode::BaseVirtualized), "4K+4K");
    EXPECT_STREQ(supportName(Support::Limited), "limited");
}

} // namespace
} // namespace emv::core
