/** @file
 * Property tests: the hardware walkers must agree with software
 * page-table composition under randomized mappings.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "paging/nested_walker.hh"
#include "paging/page_table.hh"
#include "paging/walker.hh"
#include "../test_support.hh"

namespace emv::paging {
namespace {

class WalkPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WalkPropertyTest, WalkerMatchesTranslateOnRandomMappings)
{
    mem::PhysMemory mem(512 * MiB);
    test::BumpMemSpace space(mem, 256 * MiB);
    PageTable pt(space);
    Walker walker(mem);
    Rng rng(GetParam());

    // Random mix of 4K and 2M mappings across a wide VA range.
    std::vector<Addr> mapped;
    for (int i = 0; i < 300; ++i) {
        if (rng.nextBool(0.2)) {
            const Addr va =
                alignDown(rng.nextBelow(1ull << 40), kPage2M);
            const Addr pa =
                alignDown(rng.nextBelow(128 * MiB), kPage2M);
            if (!pt.leafRangeOccupied(va, PageSize::Size2M)) {
                pt.map(va, pa, PageSize::Size2M);
                mapped.push_back(va);
            }
        } else {
            const Addr va =
                alignDown(rng.nextBelow(1ull << 40), kPage4K);
            const Addr pa =
                alignDown(rng.nextBelow(128 * MiB), kPage4K);
            if (!pt.leafRangeOccupied(va, PageSize::Size4K) &&
                !pt.translate(va)) {
                pt.map(va, pa, PageSize::Size4K);
                mapped.push_back(va);
            }
        }
    }

    tlb::WalkCache cache(8, 4);
    for (Addr va : mapped) {
        const Addr probe = va + rng.nextBelow(kPage4K);
        auto sw = pt.translate(probe);
        ASSERT_TRUE(sw.has_value());
        WalkTrace trace;
        auto hw = walker.walk(pt.root(), probe,
                              RefStage::NativeTable, trace, &cache);
        ASSERT_TRUE(hw.ok);
        ASSERT_EQ(hw.pa, sw->pa) << hexAddr(probe);
        ASSERT_EQ(hw.size, sw->size);
        ASSERT_LE(trace.refs.size(), 4u);
    }
}

TEST_P(WalkPropertyTest, NestedWalkEqualsComposition)
{
    mem::PhysMemory host(512 * MiB);
    test::BumpMemSpace host_space(host, 256 * MiB);
    PageTable nested(host_space);
    Rng rng(GetParam() ^ 0x5a5a);

    // Nested table: random permutation backing of gPA [0, 32M).
    std::vector<Addr> frames;
    for (Addr f = 0; f < 32 * MiB; f += kPage4K)
        frames.push_back(16 * MiB + f);
    for (std::size_t i = frames.size(); i > 1; --i)
        std::swap(frames[i - 1], frames[rng.nextBelow(i)]);
    for (Addr gpa = 0; gpa < 32 * MiB; gpa += kPage4K)
        nested.map(gpa, frames[gpa / kPage4K], PageSize::Size4K);

    // Guest table whose nodes live behind the nested mapping.
    class Space : public MemSpace
    {
      public:
        Space(mem::PhysMemory &host, PageTable &nested, Addr bump)
            : host(host), nested(nested), next(bump)
        {
        }
        std::uint64_t
        read64(Addr gpa) const override
        {
            return host.read64(nested.translate(gpa)->pa);
        }
        void
        write64(Addr gpa, std::uint64_t value) override
        {
            host.write64(nested.translate(gpa)->pa, value);
        }
        Addr
        allocTableFrame() override
        {
            Addr gpa = next;
            next += kPage4K;
            for (unsigned i = 0; i < 512; ++i)
                write64(gpa + 8ull * i, 0);
            return gpa;
        }
        void freeTableFrame(Addr) override {}

      private:
        mem::PhysMemory &host;
        PageTable &nested;
        Addr next;
    } guest_space(host, nested, 16 * MiB);

    PageTable guest(guest_space);
    std::vector<std::pair<Addr, Addr>> pairs;
    for (int i = 0; i < 200; ++i) {
        const Addr va =
            alignDown(rng.nextBelow(1ull << 38), kPage4K);
        const Addr gpa =
            alignDown(rng.nextBelow(16 * MiB), kPage4K);
        if (!guest.translate(va)) {
            guest.map(va, gpa, PageSize::Size4K);
            pairs.emplace_back(va, gpa);
        }
    }

    class Tx : public GpaTranslator
    {
      public:
        Tx(mem::PhysMemory &host, Addr root)
            : walker(host), root(root)
        {
        }
        WalkOutcome
        toHost(Addr gpa, WalkTrace &trace) override
        {
            return walker.walk(root, gpa, RefStage::NestedTable,
                               trace);
        }

      private:
        Walker walker;
        Addr root;
    } tx(host, nested.root());

    NestedWalker nested_walker(host);
    for (const auto &[va, gpa] : pairs) {
        const Addr probe = va + rng.nextBelow(kPage4K);
        WalkTrace trace;
        auto hw = nested_walker.walk(guest.root(), probe, tx, trace);
        ASSERT_TRUE(hw.ok);
        const Addr expect =
            nested.translate(gpa + (probe - va))->pa;
        ASSERT_EQ(hw.pa, expect) << hexAddr(probe);
        ASSERT_LE(trace.refs.size(), 24u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkPropertyTest,
                         ::testing::Values(11, 22, 33));

} // namespace
} // namespace emv::paging
