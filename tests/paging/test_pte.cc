/** @file Unit tests for x86-64 PTE encodings and geometry. */

#include <gtest/gtest.h>

#include "paging/pte.hh"

namespace emv::paging {
namespace {

TEST(PteGeometryTest, TableIndexExtractsNineBitFields)
{
    // va = PML4[3] PDPT[5] PD[7] PT[9] offset 0x123.
    const Addr va = (3ull << 39) | (5ull << 30) | (7ull << 21) |
                    (9ull << 12) | 0x123;
    EXPECT_EQ(tableIndex(va, 4), 3u);
    EXPECT_EQ(tableIndex(va, 3), 5u);
    EXPECT_EQ(tableIndex(va, 2), 7u);
    EXPECT_EQ(tableIndex(va, 1), 9u);
}

TEST(PteGeometryTest, IndexMaxValues)
{
    const Addr va = (511ull << 39) | (511ull << 30) |
                    (511ull << 21) | (511ull << 12);
    for (int level = 1; level <= 4; ++level)
        EXPECT_EQ(tableIndex(va, level), 511u);
}

TEST(PteGeometryTest, LeafSizeAndLevelAreInverse)
{
    EXPECT_EQ(leafSize(1), PageSize::Size4K);
    EXPECT_EQ(leafSize(2), PageSize::Size2M);
    EXPECT_EQ(leafSize(3), PageSize::Size1G);
    for (PageSize size : {PageSize::Size4K, PageSize::Size2M,
                          PageSize::Size1G}) {
        EXPECT_EQ(leafSize(leafLevel(size)), size);
    }
}

TEST(PteEncodingTest, TableEntryBits)
{
    const auto raw = Pte::makeTable(0x1234000);
    Pte pte{raw};
    EXPECT_TRUE(pte.present());
    EXPECT_TRUE(pte.writable());
    EXPECT_TRUE(pte.user());
    EXPECT_FALSE(pte.pageSize());
    EXPECT_EQ(pte.frame(), 0x1234000u);
}

TEST(PteEncodingTest, LeafEntryBits)
{
    const auto raw4k = Pte::makeLeaf(0x5000, 1, true, true);
    EXPECT_FALSE(Pte{raw4k}.pageSize());  // PS only above level 1.
    const auto raw2m = Pte::makeLeaf(0x200000, 2, false, true);
    Pte pte{raw2m};
    EXPECT_TRUE(pte.pageSize());
    EXPECT_FALSE(pte.writable());
    EXPECT_EQ(pte.frame(), 0x200000u);
}

TEST(PteEncodingTest, FrameMaskKeepsBits12To51)
{
    const Addr high_frame = 0x000ffffffffff000ull;
    Pte pte{Pte::makeLeaf(high_frame, 1, true, true)};
    EXPECT_EQ(pte.frame(), high_frame);
    // Offset bits never leak into the frame field.
    Pte dirty{Pte::makeLeaf(0x5000, 1, true, true) | 0x5};
    EXPECT_EQ(dirty.frame(), 0x5000u);
}

TEST(PteEncodingTest, NonPresentIsZero)
{
    Pte pte{0};
    EXPECT_FALSE(pte.present());
    EXPECT_FALSE(pte.pageSize());
}

} // namespace
} // namespace emv::paging
