/** @file Unit tests for the 1D page-table walker. */

#include <gtest/gtest.h>

#include "paging/page_table.hh"
#include "paging/walker.hh"
#include "../test_support.hh"

namespace emv::paging {
namespace {

class WalkerTest : public ::testing::Test
{
  protected:
    WalkerTest()
        : mem(256 * MiB), space(mem, 128 * MiB), pt(space),
          walker(mem)
    {
    }

    mem::PhysMemory mem;
    test::BumpMemSpace space;
    PageTable pt;
    Walker walker;
};

TEST_F(WalkerTest, FourReferencesFor4KPage)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    WalkTrace trace;
    auto out = walker.walk(pt.root(), 0x1234, RefStage::NativeTable,
                           trace);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.pa, 0x2234u);
    EXPECT_EQ(out.size, PageSize::Size4K);
    // The paper's native walk: up to 4 memory references.
    EXPECT_EQ(trace.refs.size(), 4u);
    EXPECT_EQ(trace.calculations, 0u);
}

TEST_F(WalkerTest, RefLevelsDescend)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    WalkTrace trace;
    walker.walk(pt.root(), 0x1000, RefStage::NativeTable, trace);
    ASSERT_EQ(trace.refs.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(trace.refs[i].level, 4 - i);
        EXPECT_EQ(trace.refs[i].stage, RefStage::NativeTable);
    }
}

TEST_F(WalkerTest, ThreeReferencesFor2MPage)
{
    pt.map(0x40000000, 0x200000, PageSize::Size2M);
    WalkTrace trace;
    auto out = walker.walk(pt.root(), 0x40012345,
                           RefStage::NativeTable, trace);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.size, PageSize::Size2M);
    EXPECT_EQ(trace.refs.size(), 3u);
}

TEST_F(WalkerTest, TwoReferencesFor1GPage)
{
    pt.map(0x40000000, 0x40000000, PageSize::Size1G);
    WalkTrace trace;
    auto out = walker.walk(pt.root(), 0x40000004,
                           RefStage::NativeTable, trace);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.size, PageSize::Size1G);
    EXPECT_EQ(trace.refs.size(), 2u);
}

TEST_F(WalkerTest, UnmappedFaults)
{
    WalkTrace trace;
    auto out = walker.walk(pt.root(), 0xdead000,
                           RefStage::NativeTable, trace);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(trace.refs.size(), 1u);  // Root entry read, absent.
}

TEST_F(WalkerTest, FaultDepthMatchesPopulatedLevels)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    WalkTrace trace;
    // Same L1 table, different entry: walks all 4 levels, faults at
    // the leaf.
    auto out = walker.walk(pt.root(), 0x5000, RefStage::NativeTable,
                           trace);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(trace.refs.size(), 4u);
}

TEST_F(WalkerTest, WalkCacheSkipsUpperLevels)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    pt.map(0x2000, 0x3000, PageSize::Size4K);
    tlb::WalkCache cache(4, 4);
    WalkTrace first;
    walker.walk(pt.root(), 0x1000, RefStage::NativeTable, first,
                &cache);
    EXPECT_EQ(first.refs.size(), 4u);
    WalkTrace second;
    // Neighbouring page shares levels 4..2: only the L1 read left.
    walker.walk(pt.root(), 0x2000, RefStage::NativeTable, second,
                &cache);
    EXPECT_EQ(second.refs.size(), 1u);
    EXPECT_EQ(second.refs[0].level, 1);
}

TEST_F(WalkerTest, WalkCacheMissesAcrossDistantAddresses)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    pt.map(0x40000000000, 0x3000, PageSize::Size4K);
    tlb::WalkCache cache(4, 4);
    WalkTrace first, second;
    walker.walk(pt.root(), 0x1000, RefStage::NativeTable, first,
                &cache);
    // Different PML4 entry: no shared prefix below the root.
    walker.walk(pt.root(), 0x40000000000, RefStage::NativeTable,
                second, &cache);
    EXPECT_EQ(second.refs.size(), 4u);
}

TEST_F(WalkerTest, AgreesWithSoftwareTranslate)
{
    pt.map(0x7f0000000000, 0x12345000, PageSize::Size4K);
    WalkTrace trace;
    auto hw = walker.walk(pt.root(), 0x7f00000006a8,
                          RefStage::NativeTable, trace);
    auto sw = pt.translate(0x7f00000006a8);
    ASSERT_TRUE(hw.ok);
    ASSERT_TRUE(sw.has_value());
    EXPECT_EQ(hw.pa, sw->pa);
}

TEST_F(WalkerTest, CountStageHelper)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    WalkTrace trace;
    walker.walk(pt.root(), 0x1000, RefStage::ShadowTable, trace);
    EXPECT_EQ(trace.countStage(RefStage::ShadowTable), 4u);
    EXPECT_EQ(trace.countStage(RefStage::NestedTable), 0u);
}

} // namespace
} // namespace emv::paging
