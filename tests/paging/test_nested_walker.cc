/** @file Unit tests for the 2D nested walker — Fig. 2's reference
 *  counts are verified here. */

#include <gtest/gtest.h>

#include "paging/nested_walker.hh"
#include "paging/page_table.hh"
#include "paging/walker.hh"
#include "../test_support.hh"

namespace emv::paging {
namespace {

/** gPA space implemented through a real nested page table. */
class NestedMemSpace : public MemSpace
{
  public:
    NestedMemSpace(mem::PhysMemory &host, const PageTable &nested_pt,
                   Addr gpa_bump_base)
        : host(host), nestedPt(nested_pt), next(gpa_bump_base)
    {
    }

    std::uint64_t
    read64(Addr gpa) const override
    {
        auto t = nestedPt.translate(gpa);
        EXPECT_TRUE(t.has_value());
        return host.read64(t->pa);
    }

    void
    write64(Addr gpa, std::uint64_t value) override
    {
        auto t = nestedPt.translate(gpa);
        ASSERT_TRUE(t.has_value());
        host.write64(t->pa, value);
    }

    Addr
    allocTableFrame() override
    {
        const Addr gpa = next;
        next += kPage4K;
        for (unsigned i = 0; i < 512; ++i)
            write64(gpa + 8ull * i, 0);
        return gpa;
    }

    void freeTableFrame(Addr) override {}

  private:
    mem::PhysMemory &host;
    const PageTable &nestedPt;
    Addr next;
};

/** Second dimension through real nested-table walks. */
class PagingGpaTranslator : public GpaTranslator
{
  public:
    PagingGpaTranslator(mem::PhysMemory &host, Addr nested_root)
        : walker(host), nestedRoot(nested_root)
    {
    }

    WalkOutcome
    toHost(Addr gpa, WalkTrace &trace) override
    {
        return walker.walk(nestedRoot, gpa, RefStage::NestedTable,
                           trace);
    }

  private:
    Walker walker;
    Addr nestedRoot;
};

/** Second dimension through a linear segment (VMM Direct style). */
class SegmentGpaTranslator : public GpaTranslator
{
  public:
    explicit SegmentGpaTranslator(Addr offset) : offset(offset) {}

    WalkOutcome
    toHost(Addr gpa, WalkTrace &trace) override
    {
        ++trace.calculations;
        return WalkOutcome{gpa + offset, PageSize::Size1G, true};
    }

  private:
    Addr offset;
};

class NestedWalkerTest : public ::testing::Test
{
  protected:
    static constexpr Addr kGuestMemBytes = 64 * MiB;
    static constexpr Addr kHostBacking = 16 * MiB;

    NestedWalkerTest()
        : host(512 * MiB), hostSpace(host, 256 * MiB),
          nestedPt(hostSpace)
    {
        // Back guest physical [0, 64M) at host [16M, 80M), 4K pages.
        for (Addr gpa = 0; gpa < kGuestMemBytes; gpa += kPage4K)
            nestedPt.map(gpa, kHostBacking + gpa, PageSize::Size4K);
        guestSpace = std::make_unique<NestedMemSpace>(
            host, nestedPt, /*gpa_bump_base=*/32 * MiB);
        guestPt = std::make_unique<PageTable>(*guestSpace);
    }

    mem::PhysMemory host;
    test::BumpMemSpace hostSpace;
    PageTable nestedPt;
    std::unique_ptr<NestedMemSpace> guestSpace;
    std::unique_ptr<PageTable> guestPt;
};

TEST_F(NestedWalkerTest, TwoDWalkMakes24References)
{
    guestPt->map(0x1000, 0x2000, PageSize::Size4K);
    NestedWalker nested_walker(host);
    PagingGpaTranslator tx(host, nestedPt.root());
    WalkTrace trace;
    auto out = nested_walker.walk(guestPt->root(), 0x1234, tx, trace);
    ASSERT_TRUE(out.ok);
    // Fig. 2: 4 guest levels x (4 nested refs + 1 guest read)
    // + 4 nested refs for the final data gPA = 24.
    EXPECT_EQ(trace.refs.size(), 24u);
    EXPECT_EQ(trace.countStage(RefStage::GuestTable), 4u);
    EXPECT_EQ(trace.countStage(RefStage::NestedTable), 20u);
}

TEST_F(NestedWalkerTest, TranslationComposesCorrectly)
{
    guestPt->map(0x400000, 0x10000, PageSize::Size4K);
    NestedWalker nested_walker(host);
    PagingGpaTranslator tx(host, nestedPt.root());
    WalkTrace trace;
    auto out = nested_walker.walk(guestPt->root(), 0x400abc, tx,
                                  trace);
    ASSERT_TRUE(out.ok);
    // gVA 0x400abc -> gPA 0x10abc -> hPA backing + 0x10abc.
    EXPECT_EQ(out.pa, kHostBacking + 0x10abcu);
    EXPECT_EQ(out.size, PageSize::Size4K);
}

TEST_F(NestedWalkerTest, GuestFaultStopsWalk)
{
    NestedWalker nested_walker(host);
    PagingGpaTranslator tx(host, nestedPt.root());
    WalkTrace trace;
    auto out =
        nested_walker.walk(guestPt->root(), 0xdead0000, tx, trace);
    EXPECT_FALSE(out.ok);
    // Root pointer nested-translated (4 refs) + 1 guest read that
    // found a non-present entry.
    EXPECT_EQ(trace.refs.size(), 5u);
}

TEST_F(NestedWalkerTest, SegmentTranslatorFlattensTo4Refs)
{
    guestPt->map(0x1000, 0x2000, PageSize::Size4K);
    NestedWalker nested_walker(host);
    SegmentGpaTranslator tx(kHostBacking);
    WalkTrace trace;
    auto out = nested_walker.walk(guestPt->root(), 0x1111, tx, trace);
    ASSERT_TRUE(out.ok);
    // VMM Direct (§III.B): 4 memory accesses + 5 calculations.
    EXPECT_EQ(trace.refs.size(), 4u);
    EXPECT_EQ(trace.calculations, 5u);
    EXPECT_EQ(out.pa, kHostBacking + 0x2111u);
}

TEST_F(NestedWalkerTest, GuestLargePageShortensGuestDimension)
{
    guestPt->map(0x40000000, 0x200000, PageSize::Size2M);
    NestedWalker nested_walker(host);
    PagingGpaTranslator tx(host, nestedPt.root());
    WalkTrace trace;
    auto out = nested_walker.walk(guestPt->root(), 0x40000010, tx,
                                  trace);
    ASSERT_TRUE(out.ok);
    // 3 guest levels x 5 + final 4 = 19 refs.
    EXPECT_EQ(trace.refs.size(), 19u);
    // Combined granule limited by the 4K nested leaves.
    EXPECT_EQ(out.size, PageSize::Size4K);
}

TEST_F(NestedWalkerTest, CombinedSizeIsMinOfDimensions)
{
    guestPt->map(0x40000000, 0x200000, PageSize::Size2M);
    NestedWalker nested_walker(host);
    SegmentGpaTranslator tx(kHostBacking);  // Reports 1G granule.
    WalkTrace trace;
    auto out = nested_walker.walk(guestPt->root(), 0x40000010, tx,
                                  trace);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.size, PageSize::Size2M);
}

TEST_F(NestedWalkerTest, GuestPscSkipsNestedWork)
{
    guestPt->map(0x1000, 0x2000, PageSize::Size4K);
    guestPt->map(0x2000, 0x3000, PageSize::Size4K);
    NestedWalker nested_walker(host);
    PagingGpaTranslator tx(host, nestedPt.root());
    tlb::WalkCache psc(4, 4);
    WalkTrace first;
    nested_walker.walk(guestPt->root(), 0x1000, tx, first, &psc);
    EXPECT_EQ(first.refs.size(), 24u);
    WalkTrace second;
    nested_walker.walk(guestPt->root(), 0x2000, tx, second, &psc);
    // PSC hit at guest level 2: 1 guest level x 5 + final 4 = 9.
    EXPECT_EQ(second.refs.size(), 9u);
}

} // namespace
} // namespace emv::paging
