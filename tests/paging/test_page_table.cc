/** @file Unit tests for the x86-64 page-table builder. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "paging/page_table.hh"
#include "paging/pte.hh"
#include "../test_support.hh"

namespace emv::paging {
namespace {

class PageTableTest : public ::testing::Test
{
  protected:
    PageTableTest()
        : mem(256 * MiB), space(mem, 128 * MiB), pt(space)
    {
    }

    mem::PhysMemory mem;
    test::BumpMemSpace space;
    PageTable pt;
};

TEST_F(PageTableTest, CheckpointRoundTripSharesRadixFrames)
{
    pt.map(0x400000, 0x10000, PageSize::Size4K);
    pt.map(0x40000000, 0x200000, PageSize::Size2M);
    const auto bytes = test::ckptBytes(pt);

    // The radix nodes themselves live in the MemSpace (checkpointed
    // with physical memory); the table object only restores its
    // root and counters, then walks the shared frames.
    PageTable other(space);
    ASSERT_TRUE(test::ckptRestore(bytes, other));
    EXPECT_EQ(test::ckptBytes(other), bytes);
    EXPECT_EQ(other.root(), pt.root());
    EXPECT_EQ(other.mappedLeaves(), pt.mappedLeaves());
    EXPECT_EQ(other.tableNodes(), pt.tableNodes());
    EXPECT_EQ(other.translate(0x400123)->pa, 0x10123u);
    EXPECT_EQ(other.translate(0x40012345)->pa, 0x212345u);
}

TEST_F(PageTableTest, FreshTableTranslatesNothing)
{
    EXPECT_FALSE(pt.translate(0).has_value());
    EXPECT_FALSE(pt.translate(0x7fffffffffff).has_value());
    EXPECT_EQ(pt.mappedLeaves(), 0u);
    EXPECT_EQ(pt.tableNodes(), 1u);  // Just the root.
}

TEST_F(PageTableTest, Map4KAndTranslate)
{
    pt.map(0x400000, 0x10000, PageSize::Size4K);
    auto t = pt.translate(0x400123);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, 0x10123u);
    EXPECT_EQ(t->size, PageSize::Size4K);
    EXPECT_TRUE(t->writable);
    EXPECT_FALSE(pt.translate(0x401000).has_value());
}

TEST_F(PageTableTest, Map2MLeaf)
{
    pt.map(0x40000000, 0x200000, PageSize::Size2M);
    auto t = pt.translate(0x40012345);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, 0x212345u);
    EXPECT_EQ(t->size, PageSize::Size2M);
    // A 2M leaf needs no level-1 table: root + L3 + L2.
    EXPECT_EQ(pt.tableNodes(), 3u);
}

TEST_F(PageTableTest, Map1GLeaf)
{
    pt.map(0, 0x40000000, PageSize::Size1G);
    auto t = pt.translate(0x3fffffff);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, 0x7fffffffu);
    EXPECT_EQ(t->size, PageSize::Size1G);
    EXPECT_EQ(pt.tableNodes(), 2u);  // Root + PDPT.
}

TEST_F(PageTableTest, ReadOnlyMapping)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K, /*writable=*/false);
    auto t = pt.translate(0x1000);
    ASSERT_TRUE(t.has_value());
    EXPECT_FALSE(t->writable);
}

TEST_F(PageTableTest, HighCanonicalAddresses)
{
    const Addr high_va = 0x7ffffffff000;  // Top of 47-bit space.
    pt.map(high_va, 0x5000, PageSize::Size4K);
    auto t = pt.translate(high_va + 0xabc);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, 0x5abcu);
}

TEST_F(PageTableTest, UnmapRemovesLeaf)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_TRUE(pt.unmap(0x1000, PageSize::Size4K));
    EXPECT_FALSE(pt.translate(0x1000).has_value());
    EXPECT_EQ(pt.mappedLeaves(), 0u);
}

TEST_F(PageTableTest, UnmapMissingReturnsFalse)
{
    EXPECT_FALSE(pt.unmap(0x1000, PageSize::Size4K));
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_FALSE(pt.unmap(0x200000, PageSize::Size4K));
    // Unmapping the enclosing 2M page of a 4K mapping is a no-op
    // (the leaf lives one level lower).
    EXPECT_FALSE(pt.unmap(0, PageSize::Size2M));
    EXPECT_TRUE(pt.translate(0x1000).has_value());
}

TEST_F(PageTableTest, UnmapReclaimsEmptyNodes)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    const auto nodes_with_mapping = pt.tableNodes();
    EXPECT_EQ(nodes_with_mapping, 4u);
    pt.unmap(0x1000, PageSize::Size4K);
    EXPECT_EQ(pt.tableNodes(), 1u);
    EXPECT_EQ(space.freed, 3u);
}

TEST_F(PageTableTest, SiblingKeepsSharedNodes)
{
    pt.map(0x1000, 0x10000, PageSize::Size4K);
    pt.map(0x2000, 0x11000, PageSize::Size4K);
    pt.unmap(0x1000, PageSize::Size4K);
    // The shared L1 table still holds the sibling.
    ASSERT_TRUE(pt.translate(0x2000).has_value());
    EXPECT_EQ(pt.tableNodes(), 4u);
}

TEST_F(PageTableTest, UpdateCountTracksMapUnmap)
{
    pt.map(0x1000, 0x10000, PageSize::Size4K);
    pt.map(0x2000, 0x11000, PageSize::Size4K);
    pt.unmap(0x1000, PageSize::Size4K);
    EXPECT_EQ(pt.updateCount(), 3u);
}

TEST_F(PageTableTest, ForEachLeafVisitsAllInOrder)
{
    pt.map(0x40000000, 0x200000, PageSize::Size2M);
    pt.map(0x1000, 0x10000, PageSize::Size4K);
    pt.map(0x2000, 0x11000, PageSize::Size4K);
    std::vector<Addr> vas;
    pt.forEachLeaf([&](const PageTable::Leaf &leaf) {
        vas.push_back(leaf.va);
    });
    ASSERT_EQ(vas.size(), 3u);
    EXPECT_EQ(vas[0], 0x1000u);
    EXPECT_EQ(vas[1], 0x2000u);
    EXPECT_EQ(vas[2], 0x40000000u);
}

TEST_F(PageTableTest, MixedSizesCoexist)
{
    pt.map(0x40000000, 0x40000000, PageSize::Size1G);
    pt.map(0x80000000, 0x200000, PageSize::Size2M);
    pt.map(0x80200000 + 0x1000, 0, PageSize::Size4K);
    EXPECT_EQ(pt.translate(0x40000010)->pa, 0x40000010u);
    EXPECT_EQ(pt.translate(0x80000010)->pa, 0x200010u);
    EXPECT_EQ(pt.translate(0x80201008)->pa, 0x8u);
}

TEST_F(PageTableTest, RandomizedMapUnmapConsistency)
{
    Rng rng(31);
    std::map<Addr, Addr> ref;  // va page -> pa page
    for (int step = 0; step < 2000; ++step) {
        const Addr va = rng.nextBelow(4096) * kPage4K;
        if (rng.nextBool(0.6)) {
            if (ref.count(va))
                continue;
            const Addr pa = rng.nextBelow(16384) * kPage4K;
            pt.map(va, pa, PageSize::Size4K);
            ref[va] = pa;
        } else if (!ref.empty()) {
            auto it = ref.begin();
            std::advance(it,
                         static_cast<long>(rng.nextBelow(ref.size())));
            pt.unmap(it->first, PageSize::Size4K);
            ref.erase(it);
        }
    }
    for (const auto &[va, pa] : ref) {
        auto t = pt.translate(va);
        ASSERT_TRUE(t.has_value());
        ASSERT_EQ(t->pa, pa);
    }
    EXPECT_EQ(pt.mappedLeaves(), ref.size());
}

TEST_F(PageTableTest, TableBytesMatchesNodes)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_EQ(pt.tableBytes(), pt.tableNodes() * kPage4K);
}

using PageTableDeathTest = PageTableTest;

TEST_F(PageTableDeathTest, DoubleMapPanics)
{
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_DEATH(pt.map(0x1000, 0x3000, PageSize::Size4K),
                 "already mapped");
}

TEST_F(PageTableDeathTest, ConflictingLeafLevelsPanic)
{
    pt.map(0x40000000, 0x200000, PageSize::Size2M);
    EXPECT_DEATH(pt.map(0x40000000, 0x1000, PageSize::Size4K),
                 "conflicts");
}

TEST_F(PageTableDeathTest, MisalignedMapPanics)
{
    EXPECT_DEATH(pt.map(0x1234, 0x2000, PageSize::Size4K),
                 "not aligned");
}

} // namespace
} // namespace emv::paging
