/** @file Unit tests for direct-segment registers. */

#include <gtest/gtest.h>

#include "segment/direct_segment.hh"

namespace emv::segment {
namespace {

TEST(SegmentRegsTest, DefaultDisabled)
{
    SegmentRegs regs;
    EXPECT_FALSE(regs.enabled());
    EXPECT_FALSE(regs.contains(0));
    EXPECT_EQ(regs.length(), 0u);
}

TEST(SegmentRegsTest, BaseEqualsLimitDisables)
{
    // The paper's trick: BASE = LIMIT nullifies a mode's hardware.
    SegmentRegs regs(0x1000, 0x1000, 0x5000);
    EXPECT_FALSE(regs.enabled());
    EXPECT_FALSE(regs.contains(0x1000));
}

TEST(SegmentRegsTest, ContainsIsHalfOpen)
{
    SegmentRegs regs(0x1000, 0x3000, 0);
    EXPECT_FALSE(regs.contains(0xfff));
    EXPECT_TRUE(regs.contains(0x1000));
    EXPECT_TRUE(regs.contains(0x2fff));
    EXPECT_FALSE(regs.contains(0x3000));
}

TEST(SegmentRegsTest, TranslateAddsOffset)
{
    auto regs = SegmentRegs::fromRanges(0x10000, 0x4000, 0x90000);
    EXPECT_TRUE(regs.contains(0x10000));
    EXPECT_TRUE(regs.contains(0x13fff));
    EXPECT_FALSE(regs.contains(0x14000));
    EXPECT_EQ(regs.translate(0x10000), 0x90000u);
    EXPECT_EQ(regs.translate(0x13abc), 0x93abcu);
}

TEST(SegmentRegsTest, NegativeOffsetWraps)
{
    // Destination below source: two's-complement offset.
    auto regs = SegmentRegs::fromRanges(0x100000, 0x1000, 0x20000);
    EXPECT_EQ(regs.translate(0x100123), 0x20123u);
}

TEST(SegmentRegsTest, FromRangesFields)
{
    auto regs = SegmentRegs::fromRanges(0x4000, 0x2000, 0x10000);
    EXPECT_EQ(regs.base(), 0x4000u);
    EXPECT_EQ(regs.limit(), 0x6000u);
    EXPECT_EQ(regs.length(), 0x2000u);
}

TEST(SegmentRegsTest, ClearDisables)
{
    auto regs = SegmentRegs::fromRanges(0x4000, 0x2000, 0x10000);
    regs.clear();
    EXPECT_FALSE(regs.enabled());
    EXPECT_EQ(regs, SegmentRegs());
}

TEST(SegmentRegsTest, ToString)
{
    SegmentRegs regs;
    EXPECT_EQ(regs.toString(), "[disabled]");
    auto on = SegmentRegs::fromRanges(0x1000, 0x1000, 0x5000);
    EXPECT_NE(on.toString().find("0x1000"), std::string::npos);
}

TEST(SegmentRegsTest, HugeSegment)
{
    // 64 GB segment: typical big-memory primary region.
    auto regs = SegmentRegs::fromRanges(1ull << 40, 64 * GiB,
                                        4 * GiB);
    EXPECT_TRUE(regs.contains((1ull << 40) + 63 * GiB));
    EXPECT_EQ(regs.translate((1ull << 40) + 63 * GiB),
              4 * GiB + 63 * GiB);
}

} // namespace
} // namespace emv::segment
