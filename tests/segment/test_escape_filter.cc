/** @file Unit tests for the escape filter (§V, §IX.C). */

#include <gtest/gtest.h>

#include "common/audit.hh"
#include "common/rng.hh"
#include "segment/escape_filter.hh"
#include "../test_support.hh"

namespace emv::segment {
namespace {

TEST(EscapeFilterTest, EmptyFilterContainsNothing)
{
    EscapeFilter filter;
    EXPECT_FALSE(filter.mayContain(0x1000));
    EXPECT_EQ(filter.insertedPages(), 0u);
    EXPECT_EQ(filter.popcount(), 0u);
}

TEST(EscapeFilterTest, NoFalseNegatives)
{
    // Bloom filters may lie positively, never negatively.
    EscapeFilter filter;
    Rng rng(3);
    std::vector<Addr> pages;
    for (int i = 0; i < 16; ++i)
        pages.push_back(rng.nextBelow(1ull << 40) << 12);
    for (Addr page : pages)
        filter.insertPage(page);
    for (Addr page : pages) {
        EXPECT_TRUE(filter.mayContain(page));
        EXPECT_TRUE(filter.mayContain(page + 0xabc));  // Same page.
    }
}

TEST(EscapeFilterTest, InsertRunsTheAuditChecksWhenEnabled)
{
    audit::setEnabled(true);
    audit::resetCounters();
    EscapeFilter filter;
    Rng rng(7);
    for (int i = 0; i < 16; ++i)
        filter.insertPage(rng.nextBelow(1ull << 40) << 12);
    audit::setEnabled(false);
    // Each insert re-proves no-false-negative and the popcount bound.
    EXPECT_EQ(audit::checkCount(), 32u);
    EXPECT_EQ(audit::failureCount(), 0u);
}

TEST(EscapeFilterTest, PaperGeometryDefaults)
{
    EscapeFilter filter;
    EXPECT_EQ(filter.sizeBits(), 256u);
    EXPECT_EQ(filter.numHashes(), 4u);
}

TEST(EscapeFilterTest, SixteenFaultsKeepLowFalsePositives)
{
    // §IX.C: 256 bits / 4 hashes tolerates 16 faulty pages with
    // near-zero false-positive impact.
    EscapeFilter filter(256, 4, 0x1234);
    Rng rng(17);
    for (int i = 0; i < 16; ++i)
        filter.insertPage(rng.nextBelow(1ull << 36) << 12);

    std::uint64_t false_positives = 0;
    const std::uint64_t probes = 100000;
    for (std::uint64_t i = 0; i < probes; ++i) {
        // Fresh pages not in the inserted set (different range).
        const Addr page = ((1ull << 40) + i) << 12;
        false_positives += filter.mayContain(page) ? 1 : 0;
    }
    const double rate = static_cast<double>(false_positives) /
                        static_cast<double>(probes);
    // Analytic rate for n=16, m=256, k=4 is ~0.24%; allow slack.
    EXPECT_LT(rate, 0.02);
    EXPECT_NEAR(rate, filter.expectedFalsePositiveRate(), 0.01);
}

TEST(EscapeFilterTest, ClearEmptiesFilter)
{
    EscapeFilter filter;
    filter.insertPage(0x5000);
    filter.clear();
    EXPECT_FALSE(filter.mayContain(0x5000));
    EXPECT_EQ(filter.popcount(), 0u);
    EXPECT_EQ(filter.insertedPages(), 0u);
}

TEST(EscapeFilterTest, PopcountBoundedByHashesTimesInserts)
{
    EscapeFilter filter;
    for (int i = 0; i < 8; ++i)
        filter.insertPage(static_cast<Addr>(i) << 12);
    EXPECT_LE(filter.popcount(), 8u * 4u);
    EXPECT_GE(filter.popcount(), 4u);  // At least one insert's bits.
}

TEST(EscapeFilterTest, ExpectedRateGrowsWithInserts)
{
    EscapeFilter filter;
    double last = filter.expectedFalsePositiveRate();
    for (int i = 0; i < 64; ++i) {
        filter.insertPage(static_cast<Addr>(i * 7 + 1) << 12);
        const double rate = filter.expectedFalsePositiveRate();
        EXPECT_GE(rate, last);
        last = rate;
    }
    EXPECT_GT(last, 0.1);  // Saturating filter becomes useless.
}

TEST(EscapeFilterTest, FillRatioTracksPopcount)
{
    EscapeFilter filter;
    EXPECT_DOUBLE_EQ(filter.fillRatio(), 0.0);
    EXPECT_FALSE(filter.saturated(0.5));

    filter.insertPage(0x1000);
    EXPECT_DOUBLE_EQ(filter.fillRatio(),
                     static_cast<double>(filter.popcount()) /
                         static_cast<double>(filter.sizeBits()));

    filter.clear();
    EXPECT_DOUBLE_EQ(filter.fillRatio(), 0.0);
}

TEST(EscapeFilterTest, SaturationCrossesTheFillBound)
{
    // Flood towards the popcount bound the way an injected
    // filter-saturation fault does; the no-false-negative invariant
    // must hold the whole way (checked by the audit layer), and the
    // saturated() predicate must flip exactly when fillRatio()
    // crosses the configured bound — the trigger for a Table III
    // mode downgrade.
    audit::setEnabled(true);
    audit::resetCounters();

    EscapeFilter filter;
    Rng rng(29);
    std::vector<Addr> pages;
    bool was_saturated = filter.saturated(0.5);
    EXPECT_FALSE(was_saturated);
    for (unsigned i = 0; i < filter.sizeBits() && !was_saturated;
         ++i) {
        const Addr page = rng.nextBelow(1ull << 36) << 12;
        filter.insertPage(page);
        pages.push_back(page);
        was_saturated = filter.saturated(0.5);
        EXPECT_EQ(was_saturated, filter.fillRatio() >= 0.5);
    }
    EXPECT_TRUE(was_saturated);
    // 4 hashes set at most 4 bits per insert: 256 * 0.5 / 4 = 32
    // inserts minimum before half the bits can be lit.
    EXPECT_GE(pages.size(), filter.sizeBits() / 2 /
                                filter.numHashes());

    // Saturated or not, a Bloom filter never forgets an insert.
    for (Addr page : pages)
        EXPECT_TRUE(filter.mayContain(page));

    audit::setEnabled(false);
    EXPECT_GT(audit::checkCount(), 0u);
    EXPECT_EQ(audit::failureCount(), 0u);
}

/** Property sweep over filter geometries (ablation backing). */
class FilterGeometryTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(FilterGeometryTest, MeasuredRateTracksAnalytic)
{
    const auto [bits, hashes] = GetParam();
    EscapeFilter filter(bits, hashes, 0xfeed);
    Rng rng(23);
    for (int i = 0; i < 16; ++i)
        filter.insertPage(rng.nextBelow(1ull << 36) << 12);

    std::uint64_t fp = 0;
    const std::uint64_t probes = 50000;
    for (std::uint64_t i = 0; i < probes; ++i)
        fp += filter.mayContain(((1ull << 41) + i) << 12) ? 1 : 0;
    const double measured =
        static_cast<double>(fp) / static_cast<double>(probes);
    const double analytic = filter.expectedFalsePositiveRate();
    EXPECT_NEAR(measured, analytic, 0.05 + analytic * 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FilterGeometryTest,
    ::testing::Values(std::make_tuple(64u, 2u),
                      std::make_tuple(128u, 2u),
                      std::make_tuple(256u, 4u),
                      std::make_tuple(512u, 4u),
                      std::make_tuple(1024u, 4u)));

TEST(EscapeFilterDeathTest, BadGeometryPanics)
{
    EXPECT_DEATH(EscapeFilter(100, 4), "power of two");
    EXPECT_DEATH(EscapeFilter(256, 0), ">= 1 hash");
}

TEST(EscapeFilterTest, CheckpointRoundTripPreservesBits)
{
    EscapeFilter a;
    Rng rng(5);
    std::vector<Addr> pages;
    for (int i = 0; i < 12; ++i)
        pages.push_back(rng.nextBelow(1ull << 40) << 12);
    for (Addr page : pages)
        a.insertPage(page);
    const auto bytes = test::ckptBytes(a);

    EscapeFilter b;
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    EXPECT_EQ(b.insertedPages(), a.insertedPages());
    EXPECT_EQ(b.popcount(), a.popcount());
    for (Addr page : pages)
        EXPECT_TRUE(b.mayContain(page));
}

TEST(EscapeFilterTest, CheckpointRejectsGeometryMismatch)
{
    EscapeFilter a(256, 2);
    EscapeFilter b(512, 2);
    EXPECT_FALSE(test::ckptRestore(test::ckptBytes(a), b));
}

} // namespace
} // namespace emv::segment
