namespace emv {

unsigned
badEntropy()
{
    std::random_device rd;
    return rd();
}

} // namespace emv
