namespace emv {

int
uncovered()
{
    return 42;
}

} // namespace emv
