namespace emv {

namespace {
constexpr unsigned kScale = 2;
} // namespace

unsigned
cleanTwice(unsigned x)
{
    return kScale * x;
}

} // namespace emv
