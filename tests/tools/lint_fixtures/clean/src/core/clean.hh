#pragma once

namespace emv {

inline constexpr unsigned kCleanAnswer = 42;

/** Annotated shared cache: every member declares its locking
 *  story, so unguarded-member stays quiet. */
class CleanCache
{
  public:
    unsigned value() const;

  private:
    mutable Mutex mutex;
    unsigned cached EMV_GUARDED_BY(mutex) = 0;
    EMV_THREAD_CONFINED unsigned scratch = 0;
    const unsigned limit = 8;
};

} // namespace emv
