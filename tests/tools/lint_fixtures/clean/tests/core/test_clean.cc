// Coverage marker for clean.cc (fixture trees are never compiled).
