namespace emv {

void
badRecover(bool broken)
{
    if (broken)
        emv_fatal("cannot recover");
}

} // namespace emv
