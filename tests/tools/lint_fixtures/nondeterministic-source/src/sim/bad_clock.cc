namespace emv {

long
badNowNs()
{
    return std::chrono::steady_clock::now()
        .time_since_epoch()
        .count();
}

} // namespace emv
