namespace emv {

void
Mmu::translate(unsigned refs)
{
    stats.counter("walk_refs") += refs;
}

} // namespace emv
