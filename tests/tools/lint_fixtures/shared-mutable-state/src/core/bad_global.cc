namespace emv {

unsigned long globalWalkCount = 0;

} // namespace emv
