#pragma once

namespace emv {

class HalfCheckpointed
{
  public:
    void serialize(ckpt::Encoder &enc) const;
};

} // namespace emv
