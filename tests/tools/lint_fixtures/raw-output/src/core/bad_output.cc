namespace emv {

void
badPrint(int value)
{
    std::cout << value;
}

} // namespace emv
