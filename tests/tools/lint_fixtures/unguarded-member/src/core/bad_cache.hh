#pragma once

namespace emv {

class BadCache
{
  public:
    int get() const;

  private:
    mutable Mutex mutex;
    int entries EMV_GUARDED_BY(mutex) = 0;
    int value = 0;
};

} // namespace emv
