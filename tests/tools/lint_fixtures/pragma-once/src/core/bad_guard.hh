#ifndef EMV_CORE_BAD_GUARD_HH
#define EMV_CORE_BAD_GUARD_HH

namespace emv {
struct Guarded {};
} // namespace emv

#endif
