namespace emv {

void
badStatName(StatGroup &group)
{
    group.counter("BadCamelName") += 1;
}

} // namespace emv
