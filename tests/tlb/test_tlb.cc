/** @file Unit tests for the set-associative TLB. */

#include <gtest/gtest.h>

#include "tlb/tlb.hh"
#include "../test_support.hh"

namespace emv::tlb {
namespace {

TEST(TlbTest, MissOnEmpty)
{
    Tlb tlb("t", 16, 4);
    EXPECT_FALSE(tlb.lookup(EntryKind::Guest, 0x1000,
                            PageSize::Size4K));
}

TEST(TlbTest, HitAfterInsert)
{
    Tlb tlb("t", 16, 4);
    tlb.insert(EntryKind::Guest, 0x1000, 0xa000, PageSize::Size4K);
    auto hit = tlb.lookup(EntryKind::Guest, 0x1abc,
                          PageSize::Size4K);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->frame, 0xa000u);
    EXPECT_EQ(hit->size, PageSize::Size4K);
}

TEST(TlbTest, KindsAreIsolated)
{
    Tlb tlb("t", 16, 4);
    tlb.insert(EntryKind::Guest, 0x1000, 0xa000, PageSize::Size4K);
    EXPECT_FALSE(tlb.lookup(EntryKind::Nested, 0x1000,
                            PageSize::Size4K));
    tlb.insert(EntryKind::Nested, 0x1000, 0xb000, PageSize::Size4K);
    EXPECT_EQ(tlb.lookup(EntryKind::Guest, 0x1000,
                         PageSize::Size4K)->frame, 0xa000u);
    EXPECT_EQ(tlb.lookup(EntryKind::Nested, 0x1000,
                         PageSize::Size4K)->frame, 0xb000u);
}

TEST(TlbTest, SizesAreIsolated)
{
    Tlb tlb("t", 16, 4);
    tlb.insert(EntryKind::Guest, 0x200000, 0x400000,
               PageSize::Size2M);
    EXPECT_FALSE(tlb.lookup(EntryKind::Guest, 0x200000,
                            PageSize::Size4K));
    auto hit = tlb.lookup(EntryKind::Guest, 0x3fffff,
                          PageSize::Size2M);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->frame, 0x400000u);
}

TEST(TlbTest, LookupAnyFindsAllSizes)
{
    Tlb tlb("t", 16, 4);
    tlb.insert(EntryKind::Guest, 0, 0x40000000, PageSize::Size1G);
    auto hit = tlb.lookupAny(EntryKind::Guest, 0x12345678);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->size, PageSize::Size1G);
}

TEST(TlbTest, LruEvictionWithinSet)
{
    Tlb tlb("t", 1, 2);  // Single set, 2 ways.
    tlb.insert(EntryKind::Guest, 0x1000, 0xa000, PageSize::Size4K);
    tlb.insert(EntryKind::Guest, 0x2000, 0xb000, PageSize::Size4K);
    // Touch the first so the second becomes LRU.
    tlb.lookup(EntryKind::Guest, 0x1000, PageSize::Size4K);
    tlb.insert(EntryKind::Guest, 0x3000, 0xc000, PageSize::Size4K);
    EXPECT_TRUE(tlb.lookup(EntryKind::Guest, 0x1000,
                           PageSize::Size4K));
    EXPECT_FALSE(tlb.lookup(EntryKind::Guest, 0x2000,
                            PageSize::Size4K));
    EXPECT_TRUE(tlb.lookup(EntryKind::Guest, 0x3000,
                           PageSize::Size4K));
}

TEST(TlbTest, ReinsertUpdatesFrame)
{
    Tlb tlb("t", 16, 4);
    tlb.insert(EntryKind::Guest, 0x1000, 0xa000, PageSize::Size4K);
    tlb.insert(EntryKind::Guest, 0x1000, 0xb000, PageSize::Size4K);
    EXPECT_EQ(tlb.lookup(EntryKind::Guest, 0x1000,
                         PageSize::Size4K)->frame, 0xb000u);
    EXPECT_EQ(tlb.occupancy(EntryKind::Guest), 1u);
}

TEST(TlbTest, FlushPage)
{
    Tlb tlb("t", 16, 4);
    tlb.insert(EntryKind::Guest, 0x1000, 0xa000, PageSize::Size4K);
    tlb.insert(EntryKind::Guest, 0x2000, 0xb000, PageSize::Size4K);
    tlb.flushPage(EntryKind::Guest, 0x1000, PageSize::Size4K);
    EXPECT_FALSE(tlb.lookup(EntryKind::Guest, 0x1000,
                            PageSize::Size4K));
    EXPECT_TRUE(tlb.lookup(EntryKind::Guest, 0x2000,
                           PageSize::Size4K));
}

TEST(TlbTest, FlushKindLeavesOtherKind)
{
    Tlb tlb("t", 16, 4);
    tlb.insert(EntryKind::Guest, 0x1000, 0xa000, PageSize::Size4K);
    tlb.insert(EntryKind::Nested, 0x1000, 0xb000, PageSize::Size4K);
    tlb.flushKind(EntryKind::Guest);
    EXPECT_EQ(tlb.occupancy(EntryKind::Guest), 0u);
    EXPECT_EQ(tlb.occupancy(EntryKind::Nested), 1u);
}

TEST(TlbTest, FlushAll)
{
    Tlb tlb("t", 16, 4);
    tlb.insert(EntryKind::Guest, 0x1000, 0xa000, PageSize::Size4K);
    tlb.insert(EntryKind::Nested, 0x2000, 0xb000, PageSize::Size4K);
    tlb.flushAll();
    EXPECT_EQ(tlb.occupancy(EntryKind::Guest), 0u);
    EXPECT_EQ(tlb.occupancy(EntryKind::Nested), 0u);
}

TEST(TlbTest, CapacityIsSetsTimesWays)
{
    Tlb tlb("t", 4, 4);
    for (Addr page = 0; page < 64; ++page) {
        tlb.insert(EntryKind::Guest, page * kPage4K, page * kPage4K,
                   PageSize::Size4K);
    }
    EXPECT_EQ(tlb.occupancy(EntryKind::Guest), 16u);
}

TEST(TlbTest, SharedCapacityPressure)
{
    // Nested entries evict guest entries in a shared structure —
    // the miss-inflation mechanism of §IX.A.
    Tlb tlb("t", 1, 4);
    for (int i = 0; i < 4; ++i) {
        tlb.insert(EntryKind::Guest, static_cast<Addr>(i) * kPage4K,
                   0, PageSize::Size4K);
    }
    EXPECT_EQ(tlb.occupancy(EntryKind::Guest), 4u);
    for (int i = 0; i < 3; ++i) {
        tlb.insert(EntryKind::Nested,
                   static_cast<Addr>(i + 100) * kPage4K, 0,
                   PageSize::Size4K);
    }
    EXPECT_EQ(tlb.occupancy(EntryKind::Guest), 1u);
    EXPECT_EQ(tlb.occupancy(EntryKind::Nested), 3u);
}

TEST(TlbTest, StatsCountHitsAndMisses)
{
    Tlb tlb("t", 16, 4);
    tlb.lookup(EntryKind::Guest, 0x1000, PageSize::Size4K);
    tlb.insert(EntryKind::Guest, 0x1000, 0xa000, PageSize::Size4K);
    tlb.lookup(EntryKind::Guest, 0x1000, PageSize::Size4K);
    EXPECT_EQ(tlb.stats().counterValue("misses"), 1u);
    EXPECT_EQ(tlb.stats().counterValue("hits"), 1u);
    EXPECT_EQ(tlb.stats().counterValue("inserts"), 1u);
}

TEST(TlbDeathTest, MisalignedFramePanics)
{
    Tlb tlb("t", 16, 4);
    EXPECT_DEATH(tlb.insert(EntryKind::Guest, 0x200000, 0x1000,
                            PageSize::Size2M),
                 "not aligned");
}

TEST(TlbTest, CheckpointRoundTripPreservesEntriesAndLru)
{
    Tlb a("t", 1, 2);  // Single set so LRU order is observable.
    a.insert(EntryKind::Guest, 0x1000, 0xa000, PageSize::Size4K);
    a.insert(EntryKind::Guest, 0x2000, 0xb000, PageSize::Size4K);
    a.lookup(EntryKind::Guest, 0x1000, PageSize::Size4K);
    const auto bytes = test::ckptBytes(a);

    Tlb b("t", 1, 2);
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    // The restored LRU clock must evict the same victim the saved
    // TLB would: 0x2000 is least recently used.
    b.insert(EntryKind::Guest, 0x3000, 0xc000, PageSize::Size4K);
    EXPECT_TRUE(b.lookup(EntryKind::Guest, 0x1000,
                         PageSize::Size4K).has_value());
    EXPECT_FALSE(b.lookup(EntryKind::Guest, 0x2000,
                          PageSize::Size4K).has_value());
}

TEST(TlbTest, CheckpointRejectsGeometryMismatch)
{
    Tlb a("t", 16, 4);
    Tlb b("t", 8, 4);
    EXPECT_FALSE(test::ckptRestore(test::ckptBytes(a), b));
}

} // namespace
} // namespace emv::tlb
