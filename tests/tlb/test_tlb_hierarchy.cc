/** @file Unit tests for the two-level TLB hierarchy (Table VI). */

#include <gtest/gtest.h>

#include "tlb/tlb_hierarchy.hh"
#include "../test_support.hh"

namespace emv::tlb {
namespace {

TEST(TlbHierarchyTest, GuestInsertHitsBothLevels)
{
    TlbHierarchy tlbs;
    tlbs.insertGuest(0x1000, 0xa000, PageSize::Size4K);
    EXPECT_TRUE(tlbs.lookupL1(0x1000).has_value());
    EXPECT_TRUE(tlbs.lookupL2(0x1fff).has_value());
}

TEST(TlbHierarchyTest, L1SplitByPageSize)
{
    TlbHierarchy tlbs;
    tlbs.insertGuest(0, 0x40000000, PageSize::Size1G);
    tlbs.insertGuest(0x80000000, 0x200000, PageSize::Size2M);
    tlbs.insertGuest(0xc0000000, 0x1000, PageSize::Size4K);
    EXPECT_EQ(tlbs.lookupL1(0x100)->size, PageSize::Size1G);
    EXPECT_EQ(tlbs.lookupL1(0x80000100)->size, PageSize::Size2M);
    EXPECT_EQ(tlbs.lookupL1(0xc0000100)->size, PageSize::Size4K);
}

TEST(TlbHierarchyTest, OneGigEntriesNotInL2)
{
    // SandyBridge's L2 holds no 1G entries — the "limited 1GB TLB
    // entries" effect behind the paper's 1G+1G observation.
    TlbHierarchy tlbs;
    tlbs.insertGuest(0, 0x40000000, PageSize::Size1G);
    EXPECT_TRUE(tlbs.lookupL1(0x100).has_value());
    EXPECT_FALSE(tlbs.lookupL2(0x100).has_value());
}

TEST(TlbHierarchyTest, L1OneGigCapacityIsFour)
{
    TlbHierarchy tlbs;
    for (Addr i = 0; i < 8; ++i)
        tlbs.insertGuest(i * kPage1G, i * kPage1G, PageSize::Size1G);
    int hits = 0;
    for (Addr i = 0; i < 8; ++i)
        hits += tlbs.lookupL1(i * kPage1G).has_value() ? 1 : 0;
    EXPECT_EQ(hits, 4);
}

TEST(TlbHierarchyTest, NestedEntriesLiveInL2Only)
{
    TlbHierarchy tlbs;
    tlbs.insertNested(0x1000, 0xb000, PageSize::Size4K);
    EXPECT_FALSE(tlbs.lookupL1(0x1000).has_value());
    EXPECT_FALSE(tlbs.lookupL2(0x1000).has_value());
    auto hit = tlbs.lookupNested(0x1234);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->frame, 0xb000u);
}

TEST(TlbHierarchyTest, NestedAndGuestShareL2Capacity)
{
    TlbGeometry tiny;
    tiny.l2Sets = 1;
    tiny.l2Ways = 4;
    TlbHierarchy tlbs(tiny);
    for (Addr i = 0; i < 4; ++i)
        tlbs.insertGuest(i * kPage4K, 0, PageSize::Size4K);
    for (Addr i = 0; i < 4; ++i)
        tlbs.insertNested((i + 64) * kPage4K, 0, PageSize::Size4K);
    // Nested inserts evicted guest L2 entries.
    int guest_l2_hits = 0;
    for (Addr i = 0; i < 4; ++i)
        guest_l2_hits += tlbs.lookupL2(i * kPage4K) ? 1 : 0;
    EXPECT_EQ(guest_l2_hits, 0);
}

TEST(TlbHierarchyTest, FlushGuestKeepsNested)
{
    TlbHierarchy tlbs;
    tlbs.insertGuest(0x1000, 0xa000, PageSize::Size4K);
    tlbs.insertNested(0x2000, 0xb000, PageSize::Size4K);
    tlbs.flushGuest();
    EXPECT_FALSE(tlbs.lookupL1(0x1000).has_value());
    EXPECT_FALSE(tlbs.lookupL2(0x1000).has_value());
    EXPECT_TRUE(tlbs.lookupNested(0x2000).has_value());
}

TEST(TlbHierarchyTest, FlushAll)
{
    TlbHierarchy tlbs;
    tlbs.insertGuest(0x1000, 0xa000, PageSize::Size4K);
    tlbs.insertNested(0x2000, 0xb000, PageSize::Size4K);
    tlbs.flushAll();
    EXPECT_FALSE(tlbs.lookupL1(0x1000).has_value());
    EXPECT_FALSE(tlbs.lookupNested(0x2000).has_value());
}

TEST(TlbHierarchyTest, FlushGuestPageInvalidatesBothLevels)
{
    TlbHierarchy tlbs;
    tlbs.insertGuest(0x1000, 0xa000, PageSize::Size4K);
    tlbs.flushGuestPage(0x1000, PageSize::Size4K);
    EXPECT_FALSE(tlbs.lookupL1(0x1000).has_value());
    EXPECT_FALSE(tlbs.lookupL2(0x1000).has_value());
}

TEST(TlbHierarchyTest, FlushNestedPage)
{
    TlbHierarchy tlbs;
    tlbs.insertNested(0x3000, 0xc000, PageSize::Size4K);
    tlbs.flushNestedPage(0x3000, PageSize::Size4K);
    EXPECT_FALSE(tlbs.lookupNested(0x3000).has_value());
}

TEST(TlbHierarchyTest, DefaultGeometryMatchesTableVI)
{
    TlbHierarchy tlbs;
    EXPECT_EQ(tlbs.l1For(PageSize::Size4K).sets() *
                  tlbs.l1For(PageSize::Size4K).ways(),
              64u);
    EXPECT_EQ(tlbs.l1For(PageSize::Size2M).sets() *
                  tlbs.l1For(PageSize::Size2M).ways(),
              32u);
    EXPECT_EQ(tlbs.l1For(PageSize::Size1G).sets() *
                  tlbs.l1For(PageSize::Size1G).ways(),
              4u);
    EXPECT_EQ(tlbs.l2().sets() * tlbs.l2().ways(), 512u);
}

TEST(TlbHierarchyTest, CheckpointRoundTrip)
{
    TlbHierarchy a;
    a.insertGuest(0x1000, 0xa000, PageSize::Size4K);
    a.insertGuest(0x80000000, 0x200000, PageSize::Size2M);
    a.insertNested(0x5000, 0xb000, PageSize::Size4K);
    a.lookupL1(0x1000);
    const auto bytes = test::ckptBytes(a);

    TlbHierarchy b;
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    EXPECT_EQ(b.lookupL1(0x1000)->frame, 0xa000u);
    EXPECT_EQ(b.lookupL1(0x80000100)->size, PageSize::Size2M);
    EXPECT_EQ(b.lookupNested(0x5000)->frame, 0xb000u);
}

} // namespace
} // namespace emv::tlb
