/** @file Unit tests for the paging-structure and PTE-line caches. */

#include <gtest/gtest.h>

#include "tlb/walk_cache.hh"
#include "../test_support.hh"

namespace emv::tlb {
namespace {

TEST(WalkCacheTest, MissThenHit)
{
    WalkCache cache(4, 4);
    const auto key = WalkCache::key(2, 0x40000000);
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.insert(key, 0xbeef000);
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 0xbeef000u);
}

TEST(WalkCacheTest, KeysEncodeLevelAndPrefix)
{
    // Same VA, different level -> different keys.
    EXPECT_NE(WalkCache::key(2, 0x40000000),
              WalkCache::key(3, 0x40000000));
    // Same level, addresses within one covered span share a key.
    EXPECT_EQ(WalkCache::key(2, 0x40000000),
              WalkCache::key(2, 0x401fffff));
    EXPECT_NE(WalkCache::key(2, 0x40000000),
              WalkCache::key(2, 0x40200000));
}

TEST(WalkCacheTest, InsertUpdatesExisting)
{
    WalkCache cache(4, 4);
    const auto key = WalkCache::key(3, 0);
    cache.insert(key, 0x1000);
    cache.insert(key, 0x2000);
    EXPECT_EQ(*cache.lookup(key), 0x2000u);
}

TEST(WalkCacheTest, Flush)
{
    WalkCache cache(4, 4);
    cache.insert(WalkCache::key(2, 0), 0x1000);
    cache.flush();
    EXPECT_FALSE(cache.lookup(WalkCache::key(2, 0)).has_value());
}

TEST(WalkCacheTest, LruEviction)
{
    WalkCache cache(1, 2);
    const auto k1 = WalkCache::key(2, 0);
    const auto k2 = WalkCache::key(2, 1ull << 21);
    const auto k3 = WalkCache::key(2, 2ull << 21);
    cache.insert(k1, 1);
    cache.insert(k2, 2);
    cache.lookup(k1);
    cache.insert(k3, 3);
    EXPECT_TRUE(cache.lookup(k1).has_value());
    EXPECT_FALSE(cache.lookup(k2).has_value());
}

TEST(LineCacheTest, FirstAccessMisses)
{
    LineCache cache(16, 4);
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
}

TEST(LineCacheTest, LineGranularityIs64Bytes)
{
    LineCache cache(16, 4);
    cache.access(0x1000);
    EXPECT_TRUE(cache.access(0x103f));
    EXPECT_FALSE(cache.access(0x1040));
}

TEST(LineCacheTest, CapacityEviction)
{
    LineCache cache(1, 2);
    // Fill with >2 lines mapping to the single set; the set only
    // keeps 2.
    int hits = 0;
    for (Addr a = 0; a < 8 * 64; a += 64)
        hits += cache.access(a) ? 1 : 0;
    EXPECT_EQ(hits, 0);
    int second_pass_hits = 0;
    for (Addr a = 0; a < 8 * 64; a += 64)
        second_pass_hits += cache.access(a) ? 1 : 0;
    EXPECT_LT(second_pass_hits, 8);
}

TEST(LineCacheTest, Flush)
{
    LineCache cache(16, 4);
    cache.access(0x2000);
    cache.flush();
    EXPECT_FALSE(cache.access(0x2000));
}

TEST(LineCacheTest, StatsTrackHitRatio)
{
    LineCache cache(16, 4);
    cache.access(0x1000);
    cache.access(0x1000);
    cache.access(0x1000);
    EXPECT_EQ(cache.stats().counterValue("misses"), 1u);
    EXPECT_EQ(cache.stats().counterValue("hits"), 2u);
}

TEST(WalkCacheTest, CheckpointRoundTrip)
{
    WalkCache a(4, 4);
    a.insert(WalkCache::key(2, 0x40000000), 0xbeef000);
    a.insert(WalkCache::key(3, 0), 0x1000);
    a.lookup(WalkCache::key(2, 0x40000000));
    const auto bytes = test::ckptBytes(a);

    WalkCache b(4, 4);
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    EXPECT_EQ(*b.lookup(WalkCache::key(2, 0x40000000)), 0xbeef000u);
    EXPECT_EQ(*b.lookup(WalkCache::key(3, 0)), 0x1000u);
}

TEST(WalkCacheTest, CheckpointRejectsGeometryMismatch)
{
    WalkCache a(4, 4);
    WalkCache b(8, 4);
    EXPECT_FALSE(test::ckptRestore(test::ckptBytes(a), b));
}

TEST(LineCacheTest, CheckpointRoundTrip)
{
    LineCache a(16, 4);
    a.access(0x1000);
    a.access(0x2040);
    const auto bytes = test::ckptBytes(a);

    LineCache b(16, 4);
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(test::ckptBytes(b), bytes);
    // Lines resident in the saved cache hit in the restored one.
    EXPECT_TRUE(b.access(0x1000));
    EXPECT_TRUE(b.access(0x2040));
    EXPECT_FALSE(b.access(0x9000));
}

} // namespace
} // namespace emv::tlb
