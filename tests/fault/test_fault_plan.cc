/** @file Unit tests for fault plans: parsing, ordering, seeding. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fault/fault_plan.hh"

namespace emv::fault {
namespace {

TEST(FaultPlanTest, ParsesKindsOpsAndCounts)
{
    auto plan = FaultPlan::parse(
        "dram@5000x8,balloonfail@7000,filtersat@9000");
    ASSERT_TRUE(plan.has_value());
    ASSERT_EQ(plan->events().size(), 3u);
    EXPECT_EQ(plan->events()[0],
              (FaultEvent{5000, FaultKind::DramFault, 8}));
    EXPECT_EQ(plan->events()[1],
              (FaultEvent{7000, FaultKind::BalloonFail, 1}));
    EXPECT_EQ(plan->events()[2],
              (FaultEvent{9000, FaultKind::FilterSaturate, 1}));
}

TEST(FaultPlanTest, EmptySpecIsAnEmptyPlan)
{
    auto plan = FaultPlan::parse("");
    ASSERT_TRUE(plan.has_value());
    EXPECT_TRUE(plan->empty());
}

TEST(FaultPlanTest, RejectsMalformedSpecs)
{
    for (const char *spec :
         {"dram", "dram@", "@5000", "bogus@5000", "dram@5000x",
          "dram@5000x0", "dram@x3", "dram@5000junk", ",",
          "dram@5000,,dram@6000", "dram@5000 x2"}) {
        EXPECT_FALSE(FaultPlan::parse(spec).has_value())
            << "spec '" << spec << "' should be rejected";
    }
}

TEST(FaultPlanTest, ScheduleKeepsEventsSortedByOp)
{
    FaultPlan plan;
    plan.schedule({9000, FaultKind::FilterSaturate, 1});
    plan.schedule({1000, FaultKind::DramFault, 2});
    plan.schedule({5000, FaultKind::SlotRevoke, 1});
    ASSERT_EQ(plan.events().size(), 3u);
    EXPECT_EQ(plan.events()[0].op, 1000u);
    EXPECT_EQ(plan.events()[1].op, 5000u);
    EXPECT_EQ(plan.events()[2].op, 9000u);
}

TEST(FaultPlanTest, ToStringRoundTrips)
{
    const std::string spec =
        "dram@100x3,guestpte@200,slotrevoke@300x2";
    auto plan = FaultPlan::parse(spec);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->toString(), spec);
    auto reparsed = FaultPlan::parse(plan->toString());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->events(), plan->events());
}

TEST(FaultPlanTest, RandomPlansAreDeterministicPerSeed)
{
    const auto a = FaultPlan::random(7, 10000);
    const auto b = FaultPlan::random(7, 10000);
    const auto c = FaultPlan::random(8, 10000);
    EXPECT_EQ(a.toString(), b.toString());
    EXPECT_NE(a.toString(), c.toString());
    EXPECT_FALSE(a.empty());
    for (const auto &event : a.events()) {
        EXPECT_GE(event.op, 1000u);
        EXPECT_LT(event.op, 10000u);
        EXPECT_GE(event.count, 1u);
    }
}

TEST(FaultPlanTest, KindAndPolicyNamesRoundTrip)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(FaultKind::NumKinds); ++i) {
        const auto kind = static_cast<FaultKind>(i);
        auto back = faultKindByName(faultKindName(kind));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(faultKindByName("bogus").has_value());

    for (auto policy : {FaultPolicy::FailFast, FaultPolicy::Degrade}) {
        auto back = faultPolicyByName(faultPolicyName(policy));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, policy);
    }
    EXPECT_FALSE(faultPolicyByName("bogus").has_value());
}

} // namespace
} // namespace emv::fault
