/** @file Unit tests for the fault injector's delivery mechanics. */

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "../test_support.hh"

namespace emv::fault {
namespace {

FaultPlan
threeEventPlan()
{
    auto plan =
        FaultPlan::parse("dram@100x2,balloonfail@200,filtersat@300");
    EXPECT_TRUE(plan.has_value());
    return *plan;
}

TEST(FaultInjectorTest, DeliversEventsInOrderAndPopsThem)
{
    FaultInjector inj(threeEventPlan(), 1);
    EXPECT_FALSE(inj.pending(99));
    EXPECT_TRUE(inj.pending(100));

    auto due = inj.eventsDue(250);
    ASSERT_EQ(due.size(), 2u);
    EXPECT_EQ(due[0].kind, FaultKind::DramFault);
    EXPECT_EQ(due[0].count, 2u);
    EXPECT_EQ(due[1].kind, FaultKind::BalloonFail);

    // Popped events never come back.
    EXPECT_FALSE(inj.pending(250));
    EXPECT_FALSE(inj.exhausted());

    due = inj.eventsDue(1000);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].kind, FaultKind::FilterSaturate);
    EXPECT_TRUE(inj.exhausted());
    EXPECT_TRUE(inj.eventsDue(1000000).empty());
}

TEST(FaultInjectorTest, EmptyPlanIsImmediatelyExhausted)
{
    FaultInjector inj(FaultPlan{}, 1);
    EXPECT_TRUE(inj.exhausted());
    EXPECT_FALSE(inj.pending(0));
    EXPECT_TRUE(inj.eventsDue(1000).empty());
}

TEST(FaultInjectorTest, ArmedFailuresAreConsumedOneRequestEach)
{
    FaultInjector inj(FaultPlan{}, 1);
    EXPECT_FALSE(inj.shouldFail(FaultPoint::BalloonReclaim));

    inj.armFailures(FaultPoint::BalloonReclaim, 2);
    EXPECT_EQ(inj.armedFailures(FaultPoint::BalloonReclaim), 2u);
    // Arming one point leaves the others alone.
    EXPECT_EQ(inj.armedFailures(FaultPoint::HotplugExtend), 0u);
    EXPECT_FALSE(inj.shouldFail(FaultPoint::HotplugExtend));

    EXPECT_TRUE(inj.shouldFail(FaultPoint::BalloonReclaim));
    EXPECT_TRUE(inj.shouldFail(FaultPoint::BalloonReclaim));
    EXPECT_FALSE(inj.shouldFail(FaultPoint::BalloonReclaim));
    EXPECT_EQ(inj.armedFailures(FaultPoint::BalloonReclaim), 0u);
}

TEST(FaultInjectorTest, CountsDeliveriesInStats)
{
    FaultInjector inj(threeEventPlan(), 1);
    EXPECT_EQ(inj.stats().counterValue("scheduled_events"), 3u);
    (void)inj.eventsDue(300);
    EXPECT_EQ(inj.stats().counterValue("delivered_events"), 3u);

    inj.armFailures(FaultPoint::Compaction, 1);
    EXPECT_EQ(inj.stats().counterValue("armed_failures"), 1u);
    (void)inj.shouldFail(FaultPoint::Compaction);
    EXPECT_EQ(
        inj.stats().counterValue("injected_request_failures"), 1u);
}

TEST(FaultInjectorTest, RngIsDeterministicPerSeed)
{
    FaultInjector a(FaultPlan{}, 42);
    FaultInjector b(FaultPlan{}, 42);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.rng().nextBelow(1u << 20),
                  b.rng().nextBelow(1u << 20));
}

TEST(FaultInjectorTest, CheckpointRoundTripResumesSchedule)
{
    FaultInjector a(threeEventPlan(), 1);
    // Consume the first two events, leaving filtersat@300 pending.
    ASSERT_EQ(a.eventsDue(250).size(), 2u);
    const auto bytes = test::ckptBytes(a);

    FaultInjector b(threeEventPlan(), 1);
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    EXPECT_EQ(emv::test::ckptBytes(b), bytes);
    // Already-delivered events never come back; the rest fire.
    EXPECT_FALSE(b.pending(250));
    EXPECT_TRUE(b.pending(300));
    ASSERT_EQ(b.eventsDue(1000).size(), 1u);
    EXPECT_TRUE(b.exhausted());
}

TEST(FaultInjectorTest, CheckpointRejectsDifferentPlan)
{
    FaultInjector a(threeEventPlan(), 1);
    FaultInjector b(FaultPlan{}, 1);
    EXPECT_FALSE(test::ckptRestore(test::ckptBytes(a), b));
}

} // namespace
} // namespace emv::fault
