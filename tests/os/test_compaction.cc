/** @file Unit tests for the compaction daemon (§IV). */

#include <gtest/gtest.h>

#include "mem/phys_accessor.hh"
#include "os/compaction.hh"
#include "os/guest_os.hh"
#include "../test_support.hh"

namespace emv::os {
namespace {

class CompactionTest : public ::testing::Test
{
  protected:
    static constexpr Addr kSpan = 256 * MiB;

    CompactionTest()
        : mem(kSpan), accessor(mem),
          os(accessor, kSpan, {{0, kSpan}})
    {
    }

    /** Map a region and return the process. */
    Process &
    makeLoadedProcess(Addr bytes)
    {
        auto &proc = os.createProcess();
        os.defineRegion(proc, "heap", 1 * GiB, bytes,
                        PageSize::Size4K);
        os.populateRange(proc, 1 * GiB, bytes);
        return proc;
    }

    mem::PhysMemory mem;
    mem::HostPhysAccessor accessor;
    GuestOs os;
};

TEST_F(CompactionTest, NoWorkWhenRunExists)
{
    CompactionDaemon daemon(os);
    auto run = daemon.createFreeRun(64 * MiB);
    ASSERT_TRUE(run.has_value());
    EXPECT_EQ(daemon.migratedPages(), 0u);
}

TEST_F(CompactionTest, EstimateIsZeroWhenFree)
{
    CompactionDaemon daemon(os);
    EXPECT_EQ(daemon.estimateMigrations(64 * MiB).value_or(999), 0u);
}

TEST_F(CompactionTest, MigratesPagesToCreateRun)
{
    // Fill most of memory with mapped data, then free every other
    // 2M chunk: free space is plentiful but discontiguous.
    auto &proc = makeLoadedProcess(192 * MiB);
    for (Addr off = 0; off < 192 * MiB; off += 4 * MiB)
        os.unmapRange(proc, 1 * GiB + off, 2 * MiB);
    ASSERT_LT(os.buddy().largestFreeRun(), 96 * MiB);

    CompactionDaemon daemon(os);
    auto run = daemon.createFreeRun(96 * MiB);
    ASSERT_TRUE(run.has_value());
    EXPECT_EQ(run->length(), 96 * MiB);
    EXPECT_TRUE(os.buddy().rangeFree(run->start, 96 * MiB));
    EXPECT_GT(daemon.migratedPages(), 0u);
}

TEST_F(CompactionTest, MappingsSurviveMigration)
{
    auto &proc = makeLoadedProcess(128 * MiB);
    // Write a marker through each page's physical address, then
    // free alternating chunks to fragment.
    for (Addr off = 0; off < 128 * MiB; off += 4 * MiB)
        os.unmapRange(proc, 1 * GiB + off, 2 * MiB);
    std::map<Addr, std::uint64_t> markers;
    for (Addr off = 2 * MiB; off < 128 * MiB; off += 4 * MiB) {
        const Addr va = 1 * GiB + off;
        auto t = proc.pageTable().translate(va);
        ASSERT_TRUE(t.has_value());
        mem.write64(t->pa, va);
        markers[va] = va;
    }

    CompactionDaemon daemon(os);
    auto run = daemon.createFreeRun(64 * MiB);
    ASSERT_TRUE(run.has_value());

    // Every mapping still resolves and the content moved with it.
    for (const auto &[va, marker] : markers) {
        auto t = proc.pageTable().translate(va);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(mem.read64(t->pa), marker);
    }
}

TEST_F(CompactionTest, RemapHookFires)
{
    auto &proc = makeLoadedProcess(64 * MiB);
    for (Addr off = 0; off < 64 * MiB; off += 4 * MiB)
        os.unmapRange(proc, 1 * GiB + off, 2 * MiB);
    std::uint64_t remaps = 0;
    CompactionDaemon daemon(
        os, [&](Process &, Addr, PageSize) { ++remaps; });
    auto run = daemon.createFreeRun(48 * MiB);
    ASSERT_TRUE(run.has_value());
    EXPECT_EQ(remaps, daemon.migratedPages());
}

TEST_F(CompactionTest, RespectsUnmovableRegions)
{
    // Fill nearly all memory so no big free run survives below.
    auto &proc = makeLoadedProcess(224 * MiB);
    for (Addr off = 0; off < 224 * MiB; off += 4 * MiB)
        os.unmapRange(proc, 1 * GiB + off, 2 * MiB);

    // Make everything below 128M unmovable; the run must be above.
    os.markUnmovable(0, 128 * MiB);
    CompactionDaemon daemon(os);
    auto run = daemon.createFreeRun(64 * MiB);
    ASSERT_TRUE(run.has_value());
    EXPECT_GE(run->start, 128 * MiB);
}

TEST_F(CompactionTest, BudgetRefusal)
{
    auto &proc = makeLoadedProcess(224 * MiB);
    for (Addr off = 0; off < 224 * MiB; off += 4 * MiB)
        os.unmapRange(proc, 1 * GiB + off, 2 * MiB);
    CompactionDaemon daemon(os);
    auto estimate = daemon.estimateMigrations(96 * MiB);
    ASSERT_TRUE(estimate.has_value());
    ASSERT_GT(*estimate, 1u);
    // A budget below the estimate refuses without doing work.
    EXPECT_FALSE(
        daemon.createFreeRun(96 * MiB, *estimate - 1).has_value());
    EXPECT_EQ(daemon.migratedPages(), 0u);
    // A sufficient budget succeeds.
    EXPECT_TRUE(
        daemon.createFreeRun(96 * MiB, *estimate + 512).has_value());
}

TEST_F(CompactionTest, SegmentCreationAfterCompaction)
{
    // Table III flow: fragmented memory -> compaction -> segment.
    auto &proc = makeLoadedProcess(224 * MiB);
    for (Addr off = 0; off < 224 * MiB; off += 4 * MiB)
        os.unmapRange(proc, 1 * GiB + off, 2 * MiB);

    auto &big = os.createProcess();
    os.defineRegion(big, "heap", 2 * GiB, 80 * MiB,
                    PageSize::Size4K, true);
    ASSERT_FALSE(os.createGuestSegment(big).has_value());

    CompactionDaemon daemon(os);
    ASSERT_TRUE(daemon.createFreeRun(80 * MiB).has_value());
    EXPECT_TRUE(os.createGuestSegment(big).has_value());
}

TEST_F(CompactionTest, CheckpointRoundTripPreservesMigrations)
{
    makeLoadedProcess(128 * MiB);
    CompactionDaemon a(os);
    a.createFreeRun(16 * MiB);
    const auto bytes = emv::test::ckptBytes(a);

    CompactionDaemon b(os);
    ASSERT_TRUE(emv::test::ckptRestore(bytes, b));
    EXPECT_EQ(emv::test::ckptBytes(b), bytes);
    EXPECT_EQ(b.migratedPages(), a.migratedPages());
}

} // namespace
} // namespace emv::os
