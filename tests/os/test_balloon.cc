/** @file Unit tests for ballooning, self-ballooning and I/O-gap
 *  reclamation (§IV, §VI.C). */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/phys_accessor.hh"
#include "os/balloon.hh"
#include "os/guest_os.hh"
#include "os/hotplug.hh"
#include "../test_support.hh"

namespace emv::os {
namespace {

/** Scripted VMM backend for guest-side tests. */
class FakeBackend : public BalloonBackend
{
  public:
    explicit FakeBackend(Addr extension_base, Addr reserve)
        : cursor(extension_base), remaining(reserve)
    {
    }

    void
    reclaimGuestPages(const std::vector<Addr> &gpas) override
    {
        reclaimed.insert(reclaimed.end(), gpas.begin(), gpas.end());
    }

    void
    reclaimGuestRange(Addr base, Addr bytes) override
    {
        rangeReclaims.push_back({base, base + bytes});
    }

    std::optional<Addr>
    grantExtension(Addr bytes) override
    {
        if (bytes > remaining)
            return std::nullopt;
        const Addr base = cursor;
        cursor += bytes;
        remaining -= bytes;
        return base;
    }

    std::vector<Addr> reclaimed;
    std::vector<Interval> rangeReclaims;
    Addr cursor;
    Addr remaining;
};

class BalloonTest : public ::testing::Test
{
  protected:
    static constexpr Addr kRam = 128 * MiB;
    static constexpr Addr kSpan = 512 * MiB;

    BalloonTest()
        : mem(kSpan), accessor(mem),
          os(accessor, kSpan, {{0, kRam}}),
          backend(kRam, 256 * MiB)
    {
    }

    mem::PhysMemory mem;
    mem::HostPhysAccessor accessor;
    GuestOs os;
    FakeBackend backend;
};

TEST_F(BalloonTest, CheckpointRoundTripPreservesPinnedPages)
{
    BalloonDriver a(os, backend);
    a.inflate(2 * MiB);
    const auto bytes = emv::test::ckptBytes(a);

    BalloonDriver b(os, backend);
    ASSERT_TRUE(emv::test::ckptRestore(bytes, b));
    EXPECT_EQ(emv::test::ckptBytes(b), bytes);
    EXPECT_EQ(b.inflatedBytes(), 2 * MiB);
    EXPECT_EQ(b.pinnedPages(), a.pinnedPages());
}

TEST_F(BalloonTest, InflateHandsPagesToVmm)
{
    BalloonDriver driver(os, backend);
    const Addr got = driver.inflate(8 * MiB);
    EXPECT_EQ(got, 8 * MiB);
    EXPECT_EQ(backend.reclaimed.size(), 2048u);
    EXPECT_EQ(driver.inflatedBytes(), 8 * MiB);
    EXPECT_EQ(os.buddy().freeBytes(), kRam - 8 * MiB);
}

TEST_F(BalloonTest, InflatedPagesArePinnedUnmovable)
{
    BalloonDriver driver(os, backend);
    driver.inflate(1 * MiB);
    for (Addr page : driver.pinnedPages())
        EXPECT_TRUE(os.unmovable().contains(page));
}

TEST_F(BalloonTest, InflateStopsAtExhaustion)
{
    BalloonDriver driver(os, backend);
    setQuietLogging(true);
    const Addr got = driver.inflate(kRam + 64 * MiB);
    setQuietLogging(false);
    EXPECT_EQ(got, kRam);
    EXPECT_EQ(os.buddy().freeBytes(), 0u);
}

TEST_F(BalloonTest, SelfBalloonCreatesContiguousRange)
{
    // Fragment guest memory so no 32M run exists.
    for (Addr a = 0; a < kRam; a += 2 * MiB)
        ASSERT_TRUE(os.buddy().allocateRange(a, kPage4K));
    ASSERT_LT(os.buddy().largestFreeRun(), 32 * MiB);

    BalloonDriver driver(os, backend);
    auto ext = driver.selfBalloon(32 * MiB);
    ASSERT_TRUE(ext.has_value());
    EXPECT_EQ(ext->length(), 32 * MiB);
    // The new range is allocatable, contiguous guest memory.
    EXPECT_TRUE(os.ram().containsRange(ext->start, ext->end));
    EXPECT_TRUE(os.buddy().rangeFree(ext->start, 32 * MiB));
    EXPECT_GE(os.buddy().largestFreeRun(), 32 * MiB);
    // And the VMM got the fragmented pages back.
    EXPECT_EQ(backend.reclaimed.size(), 32 * MiB / kPage4K);
}

TEST_F(BalloonTest, SelfBalloonFailsWhenVmmCannotExtend)
{
    FakeBackend stingy(kRam, 0);
    BalloonDriver driver(os, stingy);
    EXPECT_FALSE(driver.selfBalloon(16 * MiB).has_value());
}

TEST_F(BalloonTest, SelfBalloonNetGuestMemoryIsUnchanged)
{
    BalloonDriver driver(os, backend);
    const Addr before = os.buddy().freeBytes();
    auto ext = driver.selfBalloon(16 * MiB);
    ASSERT_TRUE(ext.has_value());
    // Ballooned out 16M, hot-added 16M.
    EXPECT_EQ(os.buddy().freeBytes(), before);
}

class IoGapTest : public ::testing::Test
{
  protected:
    static constexpr Addr kGapStart = 96 * MiB;   // Scaled-down gap.
    static constexpr Addr kGapEnd = 128 * MiB;
    static constexpr Addr kHigh = 128 * MiB;      // RAM above gap.
    static constexpr Addr kSpan = 1 * GiB;

    IoGapTest()
        : mem(kSpan), accessor(mem),
          os(accessor, kSpan,
             {{0, kGapStart}, {kGapEnd, kGapEnd + kHigh}}),
          backend(kGapEnd + kHigh, 512 * MiB)
    {
    }

    mem::PhysMemory mem;
    mem::HostPhysAccessor accessor;
    GuestOs os;
    FakeBackend backend;
};

TEST_F(IoGapTest, ReclaimMovesBelowGapMemoryUp)
{
    const Addr keep = 16 * MiB;
    auto result = reclaimIoGap(os, backend, kGapStart, keep);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->movedBytes, kGapStart - keep);
    // Below-gap memory shrank to the kernel keep.
    EXPECT_TRUE(os.ram().containsRange(0, keep));
    EXPECT_FALSE(os.ram().contains(keep));
    // The extension appears at the top and is contiguous with the
    // high range.
    EXPECT_TRUE(os.ram().containsRange(kGapEnd,
                                       kGapEnd + kHigh +
                                           result->movedBytes));
    // One guest segment could now cover everything above the gap.
    auto largest = os.buddy().freeIntervals().largest();
    ASSERT_TRUE(largest.has_value());
    EXPECT_GE(largest->length(), kHigh + result->movedBytes);
    // The VMM was told to drop the unplugged range's backing.
    ASSERT_EQ(backend.rangeReclaims.size(), 1u);
    EXPECT_EQ(backend.rangeReclaims[0].start, keep);
}

TEST_F(IoGapTest, ReclaimFailsWhenBelowGapBusy)
{
    ASSERT_TRUE(os.buddy().allocateRange(32 * MiB, kPage4K));
    setQuietLogging(true);
    auto result = reclaimIoGap(os, backend, kGapStart, 16 * MiB);
    setQuietLogging(false);
    EXPECT_FALSE(result.has_value());
}

TEST_F(IoGapTest, ReclaimRollsBackWhenVmmCannotExtend)
{
    FakeBackend stingy(kGapEnd + kHigh, 0);
    auto result = reclaimIoGap(os, stingy, kGapStart, 16 * MiB);
    EXPECT_FALSE(result.has_value());
    // Memory is back where it started.
    EXPECT_TRUE(os.ram().containsRange(0, kGapStart));
    EXPECT_EQ(os.buddy().freeBytes(), kGapStart + kHigh);
}

TEST_F(IoGapTest, KeepLargerThanGapFails)
{
    EXPECT_FALSE(
        reclaimIoGap(os, backend, kGapStart, kGapStart).has_value());
}

} // namespace
} // namespace emv::os
