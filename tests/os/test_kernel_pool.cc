/** @file Unit tests for the pooled kernel-frame allocator. */

#include <gtest/gtest.h>

#include "mem/phys_accessor.hh"
#include "os/guest_os.hh"

namespace emv::os {
namespace {

class KernelPoolTest : public ::testing::Test
{
  protected:
    static constexpr Addr kSpan = 256 * MiB;

    KernelPoolTest() : mem(kSpan), accessor(mem) {}

    mem::PhysMemory mem;
    mem::HostPhysAccessor accessor;
};

TEST_F(KernelPoolTest, FramesClusterAtConfiguredBase)
{
    OsConfig cfg;
    cfg.kernelAllocBase = 128 * MiB;
    GuestOs os(accessor, kSpan, {{0, kSpan}}, cfg);
    for (int i = 0; i < 64; ++i) {
        auto frame = os.allocKernelFrame();
        ASSERT_TRUE(frame.has_value());
        EXPECT_GE(*frame, 128 * MiB);
        EXPECT_LT(*frame, 128 * MiB + cfg.kernelChunkBytes);
    }
}

TEST_F(KernelPoolTest, DefaultBaseClustersLow)
{
    GuestOs os(accessor, kSpan, {{0, kSpan}});
    auto frame = os.allocKernelFrame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_LT(*frame, 8 * MiB);
}

TEST_F(KernelPoolTest, PoolIsUnmovable)
{
    GuestOs os(accessor, kSpan, {{0, kSpan}});
    auto frame = os.allocKernelFrame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(os.unmovable().contains(*frame));
}

TEST_F(KernelPoolTest, FreedFramesAreRecycled)
{
    GuestOs os(accessor, kSpan, {{0, kSpan}});
    auto a = os.allocKernelFrame();
    ASSERT_TRUE(a.has_value());
    os.freeKernelFrame(*a);
    auto b = os.allocKernelFrame();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
}

TEST_F(KernelPoolTest, PoolGrowsByChunks)
{
    OsConfig cfg;
    cfg.kernelChunkBytes = 1 * MiB;
    GuestOs os(accessor, kSpan, {{0, kSpan}}, cfg);
    const Addr free_before = os.buddy().freeBytes();
    // Drain more than one chunk's worth of frames.
    const int frames = static_cast<int>(cfg.kernelChunkBytes /
                                        kPage4K) +
                       8;
    for (int i = 0; i < frames; ++i)
        ASSERT_TRUE(os.allocKernelFrame().has_value());
    EXPECT_EQ(os.buddy().freeBytes(), free_before - 2 * MiB);
}

TEST_F(KernelPoolTest, SkipsBadFramesInChunk)
{
    OsConfig cfg;
    cfg.kernelAllocBase = 64 * MiB;
    mem.markBad(64 * MiB + 3 * kPage4K);
    GuestOs os(accessor, kSpan, {{0, kSpan}}, cfg);
    for (int i = 0; i < 200; ++i) {
        auto frame = os.allocKernelFrame();
        ASSERT_TRUE(frame.has_value());
        EXPECT_NE(*frame, 64 * MiB + 3 * kPage4K);
    }
}

} // namespace
} // namespace emv::os
